// Package repro's benchmark harness regenerates every table and figure
// of the paper's evaluation (go test -bench=. -benchmem). The heavy
// measurement stages run once per process and are shared; each benchmark
// then times its aggregation step and prints the artifact.
package repro

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bloom"
	"repro/internal/edgy"
	"repro/internal/experiments"
	"repro/internal/ipv6"
	"repro/internal/loopscan"
	"repro/internal/lpm"
	"repro/internal/perm"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/uint128"
	"repro/internal/xmap"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// benchSuite returns the shared suite, sized between the unit-test Quick
// configuration and the full default so benches finish promptly.
func benchSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		suite = experiments.New(experiments.Options{
			Seed: 2021, Scale: 0.0005, WindowWidth: 11, MaxDevicesPerISP: 400,
			BGPASes: 120, BGPWindowWidth: 7,
		})
	})
	return suite
}

var printed sync.Map

// printOnce emits an artifact a single time per process.
func printOnce(key, text string) {
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

func benchArtifact(b *testing.B, key string, fn func() (string, error)) {
	b.Helper()
	s := benchSuite()
	_ = s
	// Warm the pipeline outside the timed region.
	text, err := fn()
	if err != nil {
		b.Fatal(err)
	}
	printOnce(key, text)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI(b *testing.B) {
	benchArtifact(b, "tableI", benchSuite().TableI)
}

func BenchmarkTableII(b *testing.B) {
	benchArtifact(b, "tableII", func() (string, error) {
		t, _, err := benchSuite().TableII()
		return t, err
	})
}

func BenchmarkTableIII(b *testing.B) {
	benchArtifact(b, "tableIII", func() (string, error) {
		t, _, err := benchSuite().TableIII()
		return t, err
	})
}

func BenchmarkTableIV(b *testing.B) {
	benchArtifact(b, "tableIV", benchSuite().TableIV)
}

func BenchmarkTableV(b *testing.B) {
	benchArtifact(b, "tableV", func() (string, error) {
		t, _, err := benchSuite().TableV()
		return t, err
	})
}

func BenchmarkTableVI(b *testing.B) {
	benchArtifact(b, "tableVI", benchSuite().TableVI)
}

func BenchmarkTableVII(b *testing.B) {
	benchArtifact(b, "tableVII", func() (string, error) {
		t, _, err := benchSuite().TableVII()
		return t, err
	})
}

func BenchmarkTableVIII(b *testing.B) {
	benchArtifact(b, "tableVIII", benchSuite().TableVIII)
}

func BenchmarkFigure2(b *testing.B) {
	benchArtifact(b, "figure2", benchSuite().Figure2)
}

func BenchmarkFigure3(b *testing.B) {
	benchArtifact(b, "figure3", benchSuite().Figure3)
}

func BenchmarkTableIX(b *testing.B) {
	benchArtifact(b, "tableIX", func() (string, error) {
		t, _, err := benchSuite().TableIX()
		return t, err
	})
}

func BenchmarkTableX(b *testing.B) {
	benchArtifact(b, "tableX", func() (string, error) {
		t, _, err := benchSuite().TableX()
		return t, err
	})
}

func BenchmarkFigure5(b *testing.B) {
	benchArtifact(b, "figure5", benchSuite().Figure5)
}

func BenchmarkTableXI(b *testing.B) {
	benchArtifact(b, "tableXI", func() (string, error) {
		t, _, err := benchSuite().TableXI()
		return t, err
	})
}

func BenchmarkFigure6(b *testing.B) {
	benchArtifact(b, "figure6", benchSuite().Figure6)
}

func BenchmarkTableXII(b *testing.B) {
	benchArtifact(b, "tableXII", func() (string, error) {
		t, _, err := benchSuite().TableXII()
		return t, err
	})
}

// benchBatch returns the scanner drain window (send burst size) the
// throughput benchmarks run with: the XMAP_BENCH_BATCH environment
// variable when set (CI exercises 1 — per-probe sends — against the
// default), otherwise 0 for the scanner's default window.
func benchBatch(b *testing.B) int {
	v := os.Getenv("XMAP_BENCH_BATCH")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		b.Fatalf("bad XMAP_BENCH_BATCH %q", v)
	}
	return n
}

// BenchmarkScannerThroughput measures end-to-end probes per second
// against the simulator (Section IV-E: the paper sends 25 kpps against
// the real Internet; the simulated substrate is the bottleneck here).
func BenchmarkScannerThroughput(b *testing.B) {
	dep, err := topo.Build(topo.Config{
		Seed: 3, Scale: 0.0005, WindowWidth: 14, MaxDevicesPerISP: 4000, OnlyISPs: []int{13},
	})
	if err != nil {
		b.Fatal(err)
	}
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	b.ResetTimer()
	sent := uint64(0)
	for sent < uint64(b.N) {
		scanner, err := xmap.New(xmap.Config{
			Window:     isp.Window,
			Seed:       []byte(fmt.Sprintf("tp-%d", sent)),
			DrainEvery: benchBatch(b),
			MaxTargets: uint64(b.N) - sent,
		}, drv)
		if err != nil {
			b.Fatal(err)
		}
		stats, err := scanner.Run(context.Background(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Sent == 0 {
			b.Fatal("no probes sent")
		}
		sent += stats.Sent
	}
	b.ReportMetric(float64(sent), "probes")
	b.ReportMetric(float64(dep.Engine.Counters().Events)/float64(sent), "events/probe")
}

// BenchmarkScannerDefended is BenchmarkScannerThroughput with the
// adversarial defenses armed (Config.Defend): the alias detector rides
// every validated reply and the shedding check every drain. Against the
// honest benchmark deployment the detector's trie stays empty, so this
// measures the pure bookkeeping overhead — the contract is a few
// percent over BenchmarkScannerThroughput in the same run. (The name
// deliberately avoids bench.sh's gate pattern: the defended path is a
// contract between these two benchmarks, not a snapshot series.)
func BenchmarkScannerDefended(b *testing.B) {
	dep, err := topo.Build(topo.Config{
		Seed: 3, Scale: 0.0005, WindowWidth: 14, MaxDevicesPerISP: 4000, OnlyISPs: []int{13},
	})
	if err != nil {
		b.Fatal(err)
	}
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	b.ReportAllocs()
	b.ResetTimer()
	sent := uint64(0)
	for sent < uint64(b.N) {
		scanner, err := xmap.New(xmap.Config{
			Window:     isp.Window,
			Seed:       []byte(fmt.Sprintf("tpd-%d", sent)),
			DrainEvery: benchBatch(b),
			MaxTargets: uint64(b.N) - sent,
			Defend:     true,
		}, drv)
		if err != nil {
			b.Fatal(err)
		}
		stats, err := scanner.Run(context.Background(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Sent == 0 {
			b.Fatal("no probes sent")
		}
		if stats.AliasDetected != 0 || stats.Quarantined != 0 {
			b.Fatalf("defenses tripped on the honest deployment: detected=%d quarantined=%d",
				stats.AliasDetected, stats.Quarantined)
		}
		sent += stats.Sent
	}
	b.ReportMetric(float64(sent), "probes")
}

// BenchmarkScannerThroughputInterpreted is BenchmarkScannerThroughput
// with the compiled forwarding fast path disabled: every link crossing
// is its own pumped event. The gap between the two benchmarks — both
// in ns/op and in the events/probe metric — is the fast path's win, and
// the alloc gate holds the interpreted engine to zero steady-state
// allocations too.
func BenchmarkScannerThroughputInterpreted(b *testing.B) {
	dep, err := topo.Build(topo.Config{
		Seed: 3, Scale: 0.0005, WindowWidth: 14, MaxDevicesPerISP: 4000, OnlyISPs: []int{13},
	})
	if err != nil {
		b.Fatal(err)
	}
	dep.Engine.SetFastPath(false)
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	b.ResetTimer()
	sent := uint64(0)
	for sent < uint64(b.N) {
		scanner, err := xmap.New(xmap.Config{
			Window:     isp.Window,
			Seed:       []byte(fmt.Sprintf("tpx-%d", sent)),
			DrainEvery: benchBatch(b),
			MaxTargets: uint64(b.N) - sent,
		}, drv)
		if err != nil {
			b.Fatal(err)
		}
		stats, err := scanner.Run(context.Background(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Sent == 0 {
			b.Fatal("no probes sent")
		}
		sent += stats.Sent
	}
	b.ReportMetric(float64(sent), "probes")
	b.ReportMetric(float64(dep.Engine.Counters().Events)/float64(sent), "events/probe")
}

// BenchmarkScannerThroughputInstrumented is BenchmarkScannerThroughput
// with the full telemetry stack attached — sharded counters, histograms,
// the flight-recorder ring, the engine collector and a (quiet) monitor.
// The contract it guards: instrumentation stays allocation-free and
// within a few percent of the bare scanner (compare ns/op against
// BenchmarkScannerThroughput in the same run).
func BenchmarkScannerThroughputInstrumented(b *testing.B) {
	dep, err := topo.Build(topo.Config{
		Seed: 3, Scale: 0.0005, WindowWidth: 14, MaxDevicesPerISP: 4000, OnlyISPs: []int{13},
	})
	if err != nil {
		b.Fatal(err)
	}
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	reg := telemetry.New(telemetry.Options{Shards: 1})
	drv.RegisterTelemetry(reg)
	// Cadence beyond b.N keeps the monitor on its allocation-free
	// not-due path, the steady state between status lines.
	mon := telemetry.NewMonitor(reg, io.Discard, 1<<30)
	b.ReportAllocs()
	b.ResetTimer()
	sent := uint64(0)
	for sent < uint64(b.N) {
		scanner, err := xmap.New(xmap.Config{
			Window:     isp.Window,
			Seed:       []byte(fmt.Sprintf("tpi-%d", sent)),
			DrainEvery: benchBatch(b),
			MaxTargets: uint64(b.N) - sent,
			Telemetry:  reg,
			Monitor:    mon,
		}, drv)
		if err != nil {
			b.Fatal(err)
		}
		stats, err := scanner.Run(context.Background(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Sent == 0 {
			b.Fatal("no probes sent")
		}
		sent += stats.Sent
	}
	b.StopTimer()
	if got := reg.CounterTotal(telemetry.ScanSent); got != sent {
		b.Fatalf("telemetry counted %d sends, scanner sent %d", got, sent)
	}
	b.ReportMetric(float64(sent), "probes")
}

// BenchmarkScannerTraced is BenchmarkScannerThroughput with the
// probe-lifecycle tracer attached at the production sampling rate
// (1/1024) plus the stall watchdog's stage/beat bookkeeping. The
// contract it guards: tracing stays allocation-free (fixed-size span
// slots, no per-span boxing) and within a few percent of the bare
// scanner — compare ns/op against BenchmarkScannerThroughput in the
// same run. The bare benchmarks never attach a tracer, so the 423
// ns/probe gate measures the feature compiled in but switched off.
func BenchmarkScannerTraced(b *testing.B) {
	dep, err := topo.Build(topo.Config{
		Seed: 3, Scale: 0.0005, WindowWidth: 14, MaxDevicesPerISP: 4000, OnlyISPs: []int{13},
	})
	if err != nil {
		b.Fatal(err)
	}
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	tracer := telemetry.NewTracer(telemetry.TracerOptions{
		Seed:        []byte("bench-trace"),
		SampleShift: 10, // 1/1024, the production default
		ScanStreams: 1,
		SimStreams:  1,
	})
	drv.RegisterTracer(tracer)
	wd := telemetry.NewWatchdog(1, 8, tracer)
	b.ReportAllocs()
	b.ResetTimer()
	sent := uint64(0)
	for sent < uint64(b.N) {
		scanner, err := xmap.New(xmap.Config{
			Window:     isp.Window,
			Seed:       []byte(fmt.Sprintf("tpt-%d", sent)),
			DrainEvery: benchBatch(b),
			MaxTargets: uint64(b.N) - sent,
			Tracer:     tracer,
			Watchdog:   wd,
		}, drv)
		if err != nil {
			b.Fatal(err)
		}
		stats, err := scanner.Run(context.Background(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Sent == 0 {
			b.Fatal("no probes sent")
		}
		sent += stats.Sent
	}
	b.StopTimer()
	// At 1/1024 sampling a large-N run must have traced something; a
	// zero here means the sampler or the wiring silently detached.
	if b.N > 100000 && tracer.SpansRecorded() == 0 {
		b.Fatal("tracer recorded no spans")
	}
	b.ReportMetric(float64(sent), "probes")
	b.ReportMetric(float64(tracer.SpansRecorded()), "spans")
}

// BenchmarkScannerThroughputSharded is the same measurement against an
// 8-shard EngineGroup deployment: eight scanner goroutines pump eight
// serialization domains concurrently through a GroupDriver. Compare
// probes/sec against BenchmarkScannerThroughput for the sharding
// speedup.
func BenchmarkScannerThroughputSharded(b *testing.B) {
	const shards = 8
	dep, err := topo.Build(topo.Config{
		Seed: 3, Scale: 0.0005, WindowWidth: 14, MaxDevicesPerISP: 4000, OnlyISPs: []int{13},
		Shards: shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	isp := dep.ISPs[0]
	drv := xmap.NewGroupDriver(dep.Group, dep.Edge)
	b.ResetTimer()
	sent := uint64(0)
	for sent < uint64(b.N) {
		remaining := uint64(b.N) - sent
		stats, err := xmap.ScanParallel(context.Background(), xmap.Config{
			Window:     isp.Window,
			Seed:       []byte(fmt.Sprintf("tps-%d", sent)),
			DrainEvery: benchBatch(b),
			MaxTargets: (remaining + shards - 1) / shards,
			RingSize:   1024,
		}, drv, shards, nil)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Sent == 0 {
			b.Fatal("no probes sent")
		}
		sent += stats.Sent
	}
	b.ReportMetric(float64(sent), "probes")
	b.ReportMetric(float64(dep.Group.Counters().Events)/float64(sent), "events/probe")
}

// BenchmarkAmplification measures the per-packet cost of the loop attack
// and prints the achieved amplification factor (Section VI-A: >200).
func BenchmarkAmplification(b *testing.B) {
	dep, err := topo.Build(topo.Config{
		Seed: 5, Scale: 0.0005, WindowWidth: 10, MaxDevicesPerISP: 200, OnlyISPs: []int{12},
	})
	if err != nil {
		b.Fatal(err)
	}
	var victim *topo.Device
	for _, d := range dep.ISPs[0].Devices {
		if d.VulnLAN {
			victim = d
			break
		}
	}
	if victim == nil {
		b.Fatal("no vulnerable device")
	}
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	deleg := victim.CPE.Delegated()
	n, _ := deleg.NumSub(64)
	sub, err := deleg.Sub(64, n.Sub64(1))
	if err != nil {
		b.Fatal(err)
	}
	target := ipv6.SLAAC(sub, 0xbad)
	res, err := loopscan.MeasureAmplification(drv, target, victim.AccessLink)
	if err != nil {
		b.Fatal(err)
	}
	printOnce("amplification", fmt.Sprintf(
		"Amplification: one packet moved %d packets (%d bytes) on the victim link -> %.0fx",
		res.LinkPackets, res.LinkBytes, res.Factor))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loopscan.MeasureAmplification(drv, target, victim.AccessLink); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Factor, "amp-factor")
}

// --- Ablation benches (DESIGN.md "design choices") ---

// BenchmarkAblationIteration compares the cyclic-group permutation
// against sequential iteration, and prints the subnet-load dispersal
// that justifies the permutation (the paper's "traffic is spread to
// different sub-networks").
func BenchmarkAblationIteration(b *testing.B) {
	size := uint128.One.Lsh(24)
	b.Run("cyclic", func(b *testing.B) {
		c, err := perm.NewCycle(size, []byte("ablate"))
		if err != nil {
			b.Fatal(err)
		}
		it := c.Iterate()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := it.Next(); !ok {
				it = c.Iterate()
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		it := perm.NewSequential(size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := it.Next(); !ok {
				it = perm.NewSequential(size)
			}
		}
	})

	// Dispersal: among the first 4096 targets, the worst-case number
	// landing in one /8-of-the-space bucket.
	burst := func(next func() (uint128.Uint128, bool)) int {
		counts := map[uint64]int{}
		worst := 0
		for i := 0; i < 4096; i++ {
			v, ok := next()
			if !ok {
				break
			}
			bucket := v.Rsh(16).Lo // 256 buckets over the 2^24 space
			counts[bucket]++
			if counts[bucket] > worst {
				worst = counts[bucket]
			}
		}
		return worst
	}
	c, err := perm.NewCycle(size, []byte("ablate"))
	if err != nil {
		b.Fatal(err)
	}
	itC := c.Iterate()
	itS := perm.NewSequential(size)
	printOnce("ablate-iter", fmt.Sprintf(
		"Ablation(iteration): worst per-/8-bucket load in first 4096 probes: cyclic=%d sequential=%d",
		burst(itC.Next), burst(itS.Next)))
}

// BenchmarkAblationDedup compares exact-map and Bloom-filter response
// dedup.
func BenchmarkAblationDedup(b *testing.B) {
	mkAddrs := func(n int) []ipv6.Addr {
		rng := rand.New(rand.NewSource(1))
		out := make([]ipv6.Addr, n)
		for i := range out {
			out[i] = ipv6.AddrFrom128(uint128.New(rng.Uint64(), rng.Uint64()))
		}
		return out
	}
	addrs := mkAddrs(1 << 16)
	b.Run("map", func(b *testing.B) {
		m := make(map[ipv6.Addr]struct{}, len(addrs))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := addrs[i%len(addrs)]
			if _, ok := m[a]; !ok {
				m[a] = struct{}{}
			}
		}
	})
	b.Run("bloom", func(b *testing.B) {
		f, err := bloom.New(uint64(len(addrs)), 1e-4)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := addrs[i%len(addrs)]
			u := a.Uint128()
			if !f.ContainsUint64Pair(u.Hi, u.Lo) {
				f.AddUint64Pair(u.Hi, u.Lo)
			}
		}
	})
}

// BenchmarkAblationValidation compares stateless HMAC validation against
// a stateful per-target table, the ZMap design decision XMap inherits.
func BenchmarkAblationValidation(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	targets := make([]ipv6.Addr, 1<<16)
	for i := range targets {
		targets[i] = ipv6.AddrFrom128(uint128.New(rng.Uint64(), rng.Uint64()))
	}
	b.Run("stateless-hmac", func(b *testing.B) {
		key := []byte("seed")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mac := hmac.New(sha256.New, key)
			a := targets[i%len(targets)].Bytes()
			mac.Write(a[:])
			_ = mac.Sum(nil)
		}
	})
	b.Run("stateful-table", func(b *testing.B) {
		// The alternative: remember every in-flight probe.
		table := make(map[ipv6.Addr]uint32, len(targets))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := targets[i%len(targets)]
			table[a] = uint32(i)
			_ = table[a]
		}
		b.ReportMetric(float64(len(table)*24), "state-bytes")
	})
}

// BenchmarkAblationLPM compares the routing trie against a linear table.
func BenchmarkAblationLPM(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	type entry struct {
		p ipv6.Prefix
		v int
	}
	entries := make([]entry, 4096)
	trie := lpm.New[int]()
	for i := range entries {
		p := ipv6.MustPrefix(ipv6.AddrFrom128(uint128.New(rng.Uint64(), 0)), 32+rng.Intn(33))
		entries[i] = entry{p, i}
		trie.Insert(p, i)
	}
	addrs := make([]ipv6.Addr, 1024)
	for i := range addrs {
		addrs[i] = ipv6.AddrFrom128(uint128.New(rng.Uint64(), rng.Uint64()))
	}
	b.Run("trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trie.Lookup(addrs[i%len(addrs)])
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := addrs[i%len(addrs)]
			best, bits := -1, -1
			for _, e := range entries {
				if e.p.Bits() > bits && e.p.Contains(a) {
					best, bits = e.v, e.p.Bits()
				}
			}
			_ = best
		}
	})
}

// BenchmarkDiscoveryEndToEnd is the full Table II pipeline: deployment
// scan at bench scale, per probe.
func BenchmarkDiscoveryEndToEnd(b *testing.B) {
	dep, err := topo.Build(topo.Config{
		Seed: 9, Scale: 0.0005, WindowWidth: 12, MaxDevicesPerISP: 1000, OnlyISPs: []int{13},
	})
	if err != nil {
		b.Fatal(err)
	}
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	b.ResetTimer()
	done := 0
	for done < b.N {
		scanner, err := xmap.New(xmap.Config{
			Window:     isp.Window,
			Seed:       []byte(fmt.Sprintf("e2e-%d", done)),
			MaxTargets: uint64(b.N - done),
		}, drv)
		if err != nil {
			b.Fatal(err)
		}
		var recs []*analysis.PeripheryRecord
		stats, err := scanner.Run(context.Background(), func(r xmap.Response) {
			recs = append(recs, analysis.Enrich(r, dep.OUI, isp.Spec.Index))
		})
		if err != nil {
			b.Fatal(err)
		}
		done += int(stats.Sent)
		if stats.Sent == 0 {
			break
		}
	}
}

// BenchmarkBaselineComparison reproduces the Section III efficiency
// claim: probes spent per discovered periphery, XMap's
// unreachable-message technique vs the traceroute baseline ([77]).
func BenchmarkBaselineComparison(b *testing.B) {
	dep, err := topo.Build(topo.Config{
		Seed: 61, Scale: 0.0005, WindowWidth: 10, MaxDevicesPerISP: 200, OnlyISPs: []int{13},
	})
	if err != nil {
		b.Fatal(err)
	}
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)

	var targets []ipv6.Addr
	size, _ := isp.Window.Size()
	for i := uint64(0); i < size.Lo; i++ {
		sub, err := isp.Window.Sub(uint128.From64(i))
		if err != nil {
			b.Fatal(err)
		}
		targets = append(targets, ipv6.SLAAC(sub, 0x7777_0000|i))
	}

	b.Run("traceroute-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := edgy.NewTracer(drv)
			census, err := tr.Discover(targets)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(census.ProbesPerLastHop(), "probes/lasthop")
			printOnce("baseline", fmt.Sprintf(
				"Baseline comparison: traceroute spent %d probes for %d last hops (%.1f/hop, %d transit interfaces as noise)",
				census.Probes, len(census.LastHops), census.ProbesPerLastHop(), len(census.Interfaces)))
		}
	})
	b.Run("xmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scanner, err := xmap.New(xmap.Config{Window: isp.Window, Seed: []byte(fmt.Sprintf("cmp%d", i))}, drv)
			if err != nil {
				b.Fatal(err)
			}
			stats, err := scanner.Run(context.Background(), nil)
			if err != nil {
				b.Fatal(err)
			}
			if stats.Unique > 0 {
				b.ReportMetric(float64(stats.Sent)/float64(stats.Unique), "probes/lasthop")
				printOnce("baseline-xmap", fmt.Sprintf(
					"Baseline comparison: xmap spent %d probes for %d last hops (%.1f/hop)",
					stats.Sent, stats.Unique, float64(stats.Sent)/float64(stats.Unique)))
			}
		}
	})
}
