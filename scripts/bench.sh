#!/usr/bin/env bash
# bench.sh — run the repository benchmark suite and capture the results
# as a JSON snapshot (BENCH_<date>.json by default), so the performance
# trajectory is tracked repo-side.
#
# Usage:
#   scripts/bench.sh            # full run, writes BENCH_<date>.json
#   scripts/bench.sh -short     # one iteration per benchmark (CI smoke:
#                               # validates the harness, numbers are noise)
#   scripts/bench.sh [-short] out.json
#
# Each entry records name, ns/op, B/op, allocs/op and probes/sec
# (derived as 1e9/ns_per_op for benchmarks that report a "probes"
# metric). The snapshot also embeds the growth-seed baseline so
# before/after is visible in one file.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime=2s
short=0
if [ "${1:-}" = "-short" ]; then
    short=1
    benchtime=1x
    shift
fi
out="${1:-BENCH_$(date +%F).json}"

pattern='ScannerThroughput|EnginePump'
raw=$(go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem ./... 2>/dev/null | grep '^Benchmark' || true)
if [ -z "$raw" ]; then
    echo "bench.sh: no benchmark output" >&2
    exit 1
fi

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
gover=$(go env GOVERSION)

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date +%F)"
    printf '  "commit": "%s",\n' "$commit"
    printf '  "go": "%s",\n' "$gover"
    printf '  "short": %s,\n' "$([ "$short" = 1 ] && echo true || echo false)"
    printf '  "benchmarks": [\n'
    printf '%s\n' "$raw" | awk '
        {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns = ""; b = ""; a = ""; probes = 0
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op") ns = $i
                if ($(i+1) == "B/op") b = $i
                if ($(i+1) == "allocs/op") a = $i
                if ($(i+1) == "probes") probes = 1
            }
            if (ns == "") next
            if (out != "") printf "%s,\n", out
            out = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", name, ns, b == "" ? "null" : b, a == "" ? "null" : a)
            if (probes && ns + 0 > 0)
                out = out sprintf(", \"probes_per_sec\": %d", 1e9 / ns)
            out = out "}"
        }
        END { if (out != "") printf "%s\n", out }
    '
    printf '  ],\n'
    # Growth-seed numbers (commit 3e0df98) and the pre-telemetry scanner
    # (commit 6e4dfca), for before/after comparison.
    printf '  "baseline": [\n'
    printf '    {"name": "BenchmarkScannerThroughput", "commit": "3e0df98", "ns_per_op": 6135, "bytes_per_op": 2699, "allocs_per_op": 49, "probes_per_sec": 163000},\n'
    printf '    {"name": "BenchmarkScannerThroughput", "commit": "6e4dfca", "ns_per_op": 2208, "bytes_per_op": 57, "allocs_per_op": 0, "probes_per_sec": 452898}\n'
    printf '  ]\n'
    printf '}\n'
} >"$out"

echo "wrote $out"
