#!/usr/bin/env bash
# bench.sh — run the repository benchmark suite and capture the results
# as a JSON snapshot (BENCH_<date>.json by default), so the performance
# trajectory is tracked repo-side.
#
# Usage:
#   scripts/bench.sh                   # full run, writes BENCH_<date>.json
#   scripts/bench.sh -short            # one iteration per benchmark (CI smoke:
#                                      # validates the harness, numbers are noise)
#   scripts/bench.sh [-short] out.json
#   scripts/bench.sh -check [baseline.json]
#                                      # regression gate: rerun the suite and
#                                      # fail if any benchmark regresses >15%
#                                      # in ns/op, grows bytes/op >15%+8B, or
#                                      # allocates more per op than the
#                                      # baseline snapshot. Default baseline:
#                                      # the newest *previous* BENCH_*.json —
#                                      # today's own snapshot is skipped
#                                      # unless it is the only one, so a
#                                      # same-day "snapshot then check" cycle
#                                      # still compares against history
#                                      # instead of trivially against itself.
#
# Each entry records name, ns/op, B/op, allocs/op, probes/sec (derived
# as 1e9/ns_per_op for benchmarks that report a "probes" metric) and
# events_per_probe (the simulator's pumped-events-per-probe ratio, the
# quantity the forwarding fast path compresses). The -check gate also
# fails if events_per_probe rises >10% over the baseline — unlike the
# timing and bytes gates this is a deterministic count, so it holds in
# -short runs too. Snapshots take the per-benchmark minimum of three timed runs (the
# least-noise estimate on a shared machine), so they are stable enough
# to gate against. The snapshot also embeds the growth-seed baseline so
# before/after is visible in one file.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime=2s
short=0
check=0
while [ $# -gt 0 ]; do
    case "$1" in
    -short)
        short=1
        benchtime=1x
        shift
        ;;
    -check)
        check=1
        shift
        ;;
    *)
        break
        ;;
    esac
done

pattern='ScannerThroughput|ScannerTraced|EnginePump'

run_suite() {
    go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -count "${1:-1}" -benchmem ./... 2>/dev/null |
        grep '^Benchmark' || true
}

if [ "$check" = 1 ]; then
    baseline="${1:-}"
    if [ -z "$baseline" ]; then
        # Newest snapshot that is not today's: a fresh same-day snapshot
        # would make the gate compare the code against itself and pass
        # vacuously. Fall back to today's only when nothing older exists.
        today="BENCH_$(date +%F).json"
        baseline=$(ls -1 BENCH_*.json 2>/dev/null | grep -Fvx "$today" | sort | tail -1 || true)
        if [ -z "$baseline" ]; then
            baseline=$(ls -1 BENCH_*.json 2>/dev/null | sort | tail -1 || true)
        fi
    fi
    if [ -z "$baseline" ] || [ ! -f "$baseline" ]; then
        echo "bench.sh: no baseline snapshot found (run scripts/bench.sh first)" >&2
        exit 1
    fi
    # A -short baseline records one-iteration timings — pure noise — so
    # only the allocation comparison is meaningful against it.
    base_short=$(grep -o '"short": *[a-z]*' "$baseline" | head -1 | grep -o 'true\|false')
    # In -check -short mode (CI smoke) the fresh numbers are noise too.
    timing_ok=1
    if [ "$base_short" = "true" ] || [ "$short" = 1 ]; then
        timing_ok=0
    fi
    echo "bench.sh: regression check against $baseline (timing gate: $([ $timing_ok = 1 ] && echo on || echo 'off — short run'))"
    # Three runs per benchmark, compared on the per-benchmark minimum:
    # the minimum is the least-noise estimate of the code's true cost on
    # a shared machine, and the 15% budget is meant for real regressions,
    # not scheduler jitter. The -short smoke still needs enough
    # iterations to amortize per-scan setup out of allocs/op (1x would
    # blame scanner construction on the steady state), so it runs 10000
    # iterations once instead of wall-clock-timed thrice.
    runs=3
    if [ "$short" = 1 ]; then
        runs=1
        benchtime=10000x
    fi
    raw=$(run_suite "$runs")
    if [ -z "$raw" ]; then
        echo "bench.sh: no benchmark output" >&2
        exit 1
    fi
    printf '%s\n' "$raw" | awk -v baseline="$baseline" -v timing_ok="$timing_ok" '
        BEGIN {
            # Parse the machine-written snapshot: one benchmark object per
            # line inside the "benchmarks" array (the "baseline" array at
            # the end lists historic commits and is skipped).
            inbench = 0
            while ((getline line < baseline) > 0) {
                if (line ~ /"benchmarks": \[/) { inbench = 1; continue }
                if (inbench && line ~ /\]/) { inbench = 0 }
                if (!inbench) continue
                if (match(line, /"name": "[^"]*"/)) {
                    name = substr(line, RSTART + 9, RLENGTH - 10)
                    ns = field(line, "ns_per_op")
                    allocs = field(line, "allocs_per_op")
                    ev = field(line, "events_per_probe")
                    bytes = field(line, "bytes_per_op")
                    base_ns[name] = ns
                    base_allocs[name] = allocs
                    base_ev[name] = ev
                    base_bytes[name] = bytes
                }
            }
            close(baseline)
        }
        function field(line, key,    rest) {
            if (!match(line, "\"" key "\": [0-9.]+")) return ""
            rest = substr(line, RSTART, RLENGTH)
            sub(/.*: /, "", rest)
            return rest
        }
        {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns = ""; a = ""; ev = ""; b = ""
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op") ns = $i
                if ($(i+1) == "allocs/op") a = $i
                if ($(i+1) == "events/probe") ev = $i
                if ($(i+1) == "B/op") b = $i
            }
            if (ns == "" || !(name in base_ns)) next
            if (!(name in best_ns) || ns + 0 < best_ns[name] + 0) best_ns[name] = ns
            if (a != "" && (!(name in best_allocs) || a + 0 < best_allocs[name] + 0)) best_allocs[name] = a
            if (ev != "" && (!(name in best_ev) || ev + 0 < best_ev[name] + 0)) best_ev[name] = ev
            if (b != "" && (!(name in best_b) || b + 0 < best_b[name] + 0)) best_b[name] = b
            if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
        }
        END {
            for (i = 1; i <= n; i++) {
                name = order[i]
                ns = best_ns[name]; a = (name in best_allocs) ? best_allocs[name] : ""
                compared++
                status = "ok"
                if (timing_ok && base_ns[name] + 0 > 0 && ns + 0 > base_ns[name] * 1.15) {
                    status = sprintf("THROUGHPUT REGRESSION (>15%%: %.0f -> %.0f ns/op)", base_ns[name], ns)
                    failed++
                }
                if (a != "" && base_allocs[name] != "" && a + 0 > base_allocs[name] + 0) {
                    status = sprintf("ALLOC REGRESSION (%s -> %s allocs/op)", base_allocs[name], a)
                    failed++
                }
                # bytes/op is amortized pool/GC traffic; allow 15% plus a
                # flat 8-byte slack so near-zero baselines do not flag on
                # a one-byte wiggle. Like the timing gate it only holds in
                # full runs: -short iteration counts do not amortize
                # per-scan setup (dedup filter allocation) out of B/op.
                if (timing_ok && name in best_b && base_bytes[name] != "" && best_b[name] + 0 > base_bytes[name] * 1.15 + 8) {
                    status = sprintf("BYTES REGRESSION (>15%%+8B: %s -> %s B/op)", base_bytes[name], best_b[name])
                    failed++
                }
                if (name in best_ev && base_ev[name] != "" && best_ev[name] + 0 > base_ev[name] * 1.10) {
                    status = sprintf("EVENTS REGRESSION (>10%%: %s -> %s events/probe)", base_ev[name], best_ev[name])
                    failed++
                }
                printf "  %-45s ns/op %10s (base %10s)  allocs %3s (base %3s)  %s\n", \
                    name, ns, base_ns[name], a, base_allocs[name], status
            }
            if (compared == 0) {
                print "bench.sh: no benchmarks matched the baseline" > "/dev/stderr"
                exit 1
            }
            if (failed > 0) {
                printf "bench.sh: %d regression(s) against %s\n", failed, baseline > "/dev/stderr"
                exit 1
            }
            printf "bench.sh: %d benchmark(s) within budget\n", compared
        }
    '
    exit $?
fi

out="${1:-BENCH_$(date +%F).json}"
# Full snapshots take the minimum of three timed runs per benchmark so
# the recorded numbers are stable enough to serve as -check baselines;
# -short keeps a single pass (its numbers are noise by design).
snap_runs=3
if [ "$short" = 1 ]; then
    snap_runs=1
fi
raw=$(run_suite "$snap_runs")
if [ -z "$raw" ]; then
    echo "bench.sh: no benchmark output" >&2
    exit 1
fi

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
gover=$(go env GOVERSION)

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date +%F)"
    printf '  "commit": "%s",\n' "$commit"
    printf '  "go": "%s",\n' "$gover"
    printf '  "short": %s,\n' "$([ "$short" = 1 ] && echo true || echo false)"
    printf '  "benchmarks": [\n'
    printf '%s\n' "$raw" | awk '
        {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns = ""; b = ""; a = ""; ev = ""
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op") ns = $i
                if ($(i+1) == "B/op") b = $i
                if ($(i+1) == "allocs/op") a = $i
                if ($(i+1) == "probes") has_probes[name] = 1
                if ($(i+1) == "events/probe") ev = $i
            }
            if (ns == "") next
            # Per-benchmark minimum across the repeated runs.
            if (!(name in best_ns) || ns + 0 < best_ns[name] + 0) best_ns[name] = ns
            if (b != "" && (!(name in best_b) || b + 0 < best_b[name] + 0)) best_b[name] = b
            if (a != "" && (!(name in best_a) || a + 0 < best_a[name] + 0)) best_a[name] = a
            if (ev != "" && (!(name in best_ev) || ev + 0 < best_ev[name] + 0)) best_ev[name] = ev
            if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
        }
        END {
            for (i = 1; i <= n; i++) {
                name = order[i]
                ns = best_ns[name]
                out = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
                    name, ns, (name in best_b) ? best_b[name] : "null", (name in best_a) ? best_a[name] : "null")
                if ((name in has_probes) && ns + 0 > 0)
                    out = out sprintf(", \"probes_per_sec\": %d", 1e9 / ns)
                if (name in best_ev)
                    out = out sprintf(", \"events_per_probe\": %s", best_ev[name])
                out = out "}"
                printf "%s%s\n", out, (i < n) ? "," : ""
            }
        }
    '
    printf '  ],\n'
    # Growth-seed numbers (commit 3e0df98) and the pre-telemetry scanner
    # (commit 6e4dfca), for before/after comparison.
    printf '  "baseline": [\n'
    printf '    {"name": "BenchmarkScannerThroughput", "commit": "3e0df98", "ns_per_op": 6135, "bytes_per_op": 2699, "allocs_per_op": 49, "probes_per_sec": 163000},\n'
    printf '    {"name": "BenchmarkScannerThroughput", "commit": "6e4dfca", "ns_per_op": 2208, "bytes_per_op": 57, "allocs_per_op": 0, "probes_per_sec": 452898}\n'
    printf '  ]\n'
    printf '}\n'
} >"$out"

echo "wrote $out"
