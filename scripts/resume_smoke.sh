#!/usr/bin/env bash
# resume_smoke.sh — kill-and-resume smoke test against the real CLI.
#
# Runs the same deterministic simulated scan three ways:
#   reference  one uninterrupted scan of the window
#   leg 1      the scan with -checkpoint, stopped halfway by -max-targets
#              (the checkpoint file is flushed on exit, like SIGINT)
#   leg 2      a fresh process with -resume finishing the window
#
# and asserts the responder set of leg1 ∪ leg2 is byte-identical to the
# reference. Everything is seeded, so any diff is a real regression in
# the checkpoint/resume path, never flake.
#
# Usage: scripts/resume_smoke.sh [seed]
set -euo pipefail
cd "$(dirname "$0")/.."

seed="${1:-7}"
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/xmap" ./cmd/xmap

common=(-seed "$seed" -quiet -output csv)
responders() { tail -n +2 "$1" | cut -d, -f1 | sort -u; }

"$work/xmap" "${common[@]}" >"$work/reference.csv"
total=$(responders "$work/reference.csv" | wc -l)

"$work/xmap" "${common[@]}" -checkpoint "$work/scan.ckpt" -checkpoint-every 256 \
    -max-targets 2048 >"$work/leg1.csv"
"$work/xmap" "${common[@]}" -checkpoint "$work/scan.ckpt" -resume >"$work/leg2.csv"

responders "$work/reference.csv" >"$work/want"
cat "$work/leg1.csv" "$work/leg2.csv" | tail -n +2 | grep -v '^responder,' \
    | cut -d, -f1 | sort -u >"$work/got"

if ! diff -u "$work/want" "$work/got"; then
    echo "resume_smoke: killed+resumed responder set diverged from the uninterrupted scan (seed $seed)" >&2
    exit 1
fi

# The resumed leg must not re-report responders leg 1 already emitted.
if [ -n "$(comm -12 <(responders "$work/leg1.csv") <(responders "$work/leg2.csv"))" ]; then
    echo "resume_smoke: resume re-reported responders from before the kill (seed $seed)" >&2
    exit 1
fi

echo "resume_smoke: OK — $total responders identical across kill+resume (seed $seed)"
