package lpm

import (
	"math/rand"
	"testing"

	"repro/internal/ipv6"
	"repro/internal/uint128"
)

func TestLookupLongestWins(t *testing.T) {
	tbl := New[string]()
	tbl.Insert(ipv6.MustParsePrefix("::/0"), "default")
	tbl.Insert(ipv6.MustParsePrefix("2001:db8::/32"), "isp")
	tbl.Insert(ipv6.MustParsePrefix("2001:db8:1234::/48"), "region")
	tbl.Insert(ipv6.MustParsePrefix("2001:db8:1234:5678::/64"), "wan")

	cases := []struct{ addr, want string }{
		{"2001:db8:1234:5678::1", "wan"},
		{"2001:db8:1234:9999::1", "region"},
		{"2001:db8:ffff::1", "isp"},
		{"2001:db9::1", "default"},
		{"::1", "default"},
	}
	for _, c := range cases {
		v, ok := tbl.Lookup(ipv6.MustParseAddr(c.addr))
		if !ok || v != c.want {
			t.Errorf("Lookup(%s) = %q,%v; want %q", c.addr, v, ok, c.want)
		}
	}
}

func TestLookupNoMatch(t *testing.T) {
	tbl := New[int]()
	tbl.Insert(ipv6.MustParsePrefix("2001:db8::/32"), 1)
	if _, ok := tbl.Lookup(ipv6.MustParseAddr("fe80::1")); ok {
		t.Error("matched outside installed prefixes")
	}
}

func TestLookupPrefixReturnsMatch(t *testing.T) {
	tbl := New[int]()
	tbl.Insert(ipv6.MustParsePrefix("2001:db8::/32"), 1)
	tbl.Insert(ipv6.MustParsePrefix("2001:db8:aaaa::/48"), 2)
	p, v, ok := tbl.LookupPrefix(ipv6.MustParseAddr("2001:db8:aaaa:1::5"))
	if !ok || v != 2 || p.String() != "2001:db8:aaaa::/48" {
		t.Errorf("LookupPrefix = %s, %d, %v", p, v, ok)
	}
	if _, _, ok := tbl.LookupPrefix(ipv6.MustParseAddr("fe80::1")); ok {
		t.Error("LookupPrefix matched nothing installed")
	}
}

func TestInsertReplaceAndRemove(t *testing.T) {
	tbl := New[int]()
	p := ipv6.MustParsePrefix("2001:db8::/32")
	tbl.Insert(p, 1)
	tbl.Insert(p, 2)
	if tbl.Len() != 1 {
		t.Errorf("Len = %d after replace", tbl.Len())
	}
	if v, _ := tbl.Exact(p); v != 2 {
		t.Errorf("Exact = %d", v)
	}
	if !tbl.Remove(p) {
		t.Error("Remove returned false")
	}
	if tbl.Remove(p) {
		t.Error("double Remove returned true")
	}
	if tbl.Len() != 0 {
		t.Errorf("Len = %d after remove", tbl.Len())
	}
	if _, ok := tbl.Lookup(ipv6.MustParseAddr("2001:db8::1")); ok {
		t.Error("removed prefix still matches")
	}
}

func TestExactVsLookup(t *testing.T) {
	tbl := New[int]()
	tbl.Insert(ipv6.MustParsePrefix("2001:db8::/32"), 1)
	if _, ok := tbl.Exact(ipv6.MustParsePrefix("2001:db8::/48")); ok {
		t.Error("Exact matched a non-installed longer prefix")
	}
	if _, ok := tbl.Exact(ipv6.MustParsePrefix("2001:db8::/16")); ok {
		t.Error("Exact matched a non-installed shorter prefix")
	}
}

func TestHostRoutes(t *testing.T) {
	tbl := New[string]()
	a := ipv6.MustParseAddr("2001:db8::42")
	tbl.Insert(ipv6.MustPrefix(a, 128), "host")
	tbl.Insert(ipv6.MustParsePrefix("2001:db8::/32"), "net")
	if v, _ := tbl.Lookup(a); v != "host" {
		t.Errorf("host route lost: %q", v)
	}
	if v, _ := tbl.Lookup(a.Next()); v != "net" {
		t.Errorf("neighbor matched host route: %q", v)
	}
}

func TestWalkVisitsAll(t *testing.T) {
	tbl := New[int]()
	want := map[string]int{
		"::/0":               0,
		"2001:db8::/32":      1,
		"2001:db8:1::/48":    2,
		"2001:db8:1:2::/64":  3,
		"fe80::/10":          4,
		"2001:db8::dead/128": 5,
	}
	for s, v := range want {
		tbl.Insert(ipv6.MustParsePrefix(s), v)
	}
	got := map[string]int{}
	tbl.Walk(func(p ipv6.Prefix, v int) bool {
		got[p.String()] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Walk visited %d prefixes, want %d: %v", len(got), len(want), got)
	}
	for s, v := range want {
		if got[s] != v {
			t.Errorf("Walk[%s] = %d, want %d", s, got[s], v)
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tbl := New[int]()
	tbl.Insert(ipv6.MustParsePrefix("::/0"), 0)
	tbl.Insert(ipv6.MustParsePrefix("2001:db8::/32"), 1)
	n := 0
	tbl.Walk(func(ipv6.Prefix, int) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("Walk visited %d after stop", n)
	}
}

// TestAgainstLinearReference cross-checks random lookups against a naive
// linear scan over installed prefixes.
func TestAgainstLinearReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := New[int]()
	type entry struct {
		p ipv6.Prefix
		v int
	}
	var entries []entry
	for i := 0; i < 300; i++ {
		bits := rng.Intn(129)
		addr := ipv6.AddrFrom128(uint128.New(rng.Uint64(), rng.Uint64()))
		p := ipv6.MustPrefix(addr, bits)
		// Skip duplicates so values stay unambiguous.
		dup := false
		for _, e := range entries {
			if e.p == p {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		entries = append(entries, entry{p, i})
		tbl.Insert(p, i)
	}
	linear := func(a ipv6.Addr) (int, bool) {
		best, bits, found := 0, -1, false
		for _, e := range entries {
			if e.p.Contains(a) && e.p.Bits() > bits {
				best, bits, found = e.v, e.p.Bits(), true
			}
		}
		return best, found
	}
	for i := 0; i < 2000; i++ {
		var a ipv6.Addr
		if i%2 == 0 && len(entries) > 0 {
			// Bias half the probes into installed prefixes.
			e := entries[rng.Intn(len(entries))]
			off := uint128.New(rng.Uint64(), rng.Uint64())
			host := 128 - e.p.Bits()
			if host < 128 {
				off = off.And(uint128.Max.Rsh(uint(128 - host)))
			}
			a = ipv6.AddrFrom128(e.p.Addr().Uint128().Or(off))
		} else {
			a = ipv6.AddrFrom128(uint128.New(rng.Uint64(), rng.Uint64()))
		}
		wantV, wantOK := linear(a)
		gotV, gotOK := tbl.Lookup(a)
		if wantOK != gotOK || (wantOK && wantV != gotV) {
			t.Fatalf("Lookup(%s) = %d,%v; linear says %d,%v", a, gotV, gotOK, wantV, wantOK)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl := New[int]()
	for i := 0; i < 10000; i++ {
		addr := ipv6.AddrFrom128(uint128.New(rng.Uint64(), 0))
		tbl.Insert(ipv6.MustPrefix(addr, 32+rng.Intn(33)), i)
	}
	addrs := make([]ipv6.Addr, 1024)
	for i := range addrs {
		addrs[i] = ipv6.AddrFrom128(uint128.New(rng.Uint64(), rng.Uint64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(addrs[i%len(addrs)])
	}
}
