// Package lpm implements a longest-prefix-match table over IPv6 prefixes
// as a binary (bit-at-a-time) trie. Every router in the network simulator
// holds one as its forwarding table; the analysis code uses it for
// prefix-to-metadata lookups (GeoIP, BGP origin).
package lpm

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/ipv6"
	"repro/internal/uint128"
)

// Table is a longest-prefix-match table mapping prefixes to values of
// type V. The zero value is not usable; call New.
type Table[V any] struct {
	root *node[V]
	size int

	// small mirrors the trie, sorted longest-prefix-first, while the
	// table holds at most smallMax entries; forwarding tables in the
	// simulator are almost always tiny, and a linear scan over a few
	// prefixes beats a 32–128-step trie walk. Once the table outgrows
	// smallMax the mirror is dropped for good (overflowed), and lookups
	// fall back to the trie. The mirror is only mutated by Insert and
	// Remove, so concurrent read-only lookups stay safe.
	small      []smallEntry[V]
	overflowed bool

	// maxBits tracks the longest prefix ever inserted (Remove leaves it
	// as a conservative upper bound). Route-compilation wideness checks
	// use it: with maxBits <= 64, every address of one /64 matches the
	// same entry.
	maxBits int
}

type smallEntry[V any] struct {
	p ipv6.Prefix
	v V
}

const smallMax = 16

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// New returns an empty table.
func New[V any]() *Table[V] {
	return &Table[V]{root: &node[V]{}}
}

// Len returns the number of installed prefixes.
func (t *Table[V]) Len() int { return t.size }

// Insert installs or replaces the value for p.
func (t *Table[V]) Insert(p ipv6.Prefix, v V) {
	n := t.root
	u := p.Addr().Uint128()
	for i := 0; i < p.Bits(); i++ {
		b := u.Bit(uint(127 - i))
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = v, true
	if p.Bits() > t.maxBits {
		t.maxBits = p.Bits()
	}
	t.smallInsert(p, v)
}

// MaxBits returns an upper bound on the length of any installed prefix
// (0 for an empty table).
func (t *Table[V]) MaxBits() int { return t.maxBits }

// UniformWidth returns the smallest prefix length w such that every
// address sharing a's first w bits takes the same Lookup decision: the
// region prefix(a, w) lies inside the matched prefix (if any) and
// overlaps no other installed prefix. Route compilation uses it to key
// flow-cache entries at the widest sound granularity. Tables past the
// small-mirror bound fall back to the conservative MaxBits answer
// (which may exceed 64, telling the caller the region is unusable).
func (t *Table[V]) UniformWidth(a ipv6.Addr) int {
	if t.overflowed {
		if t.maxBits <= 64 {
			return 64
		}
		return t.maxBits
	}
	w := 1
	u := a.Uint128()
	for i := range t.small {
		p := &t.small[i].p
		c := commonBits(u, p.Addr().Uint128())
		if c >= p.Bits() {
			// An ancestor of a: the region must stay inside it (the
			// deepest ancestor is the LPM match).
			if p.Bits() > w {
				w = p.Bits()
			}
		} else if c+1 > w {
			// Disjoint: the region must stop before the first bit
			// where a and p diverge.
			w = c + 1
		}
	}
	return w
}

// commonBits counts the leading bits a and b share.
func commonBits(a, b uint128.Uint128) int {
	if x := a.Hi ^ b.Hi; x != 0 {
		return bits.LeadingZeros64(x)
	}
	if x := a.Lo ^ b.Lo; x != 0 {
		return 64 + bits.LeadingZeros64(x)
	}
	return 128
}

func (t *Table[V]) smallInsert(p ipv6.Prefix, v V) {
	if t.overflowed {
		return
	}
	for i := range t.small {
		if t.small[i].p == p {
			t.small[i].v = v
			return
		}
	}
	if len(t.small) == smallMax {
		t.overflowed = true
		t.small = nil
		return
	}
	pos := 0
	for pos < len(t.small) && t.small[pos].p.Bits() >= p.Bits() {
		pos++
	}
	t.small = append(t.small, smallEntry[V]{})
	copy(t.small[pos+1:], t.small[pos:])
	t.small[pos] = smallEntry[V]{p: p, v: v}
}

// Remove deletes the exact prefix p, reporting whether it was present.
// Trie nodes are not compacted; tables in this repository only grow.
func (t *Table[V]) Remove(p ipv6.Prefix) bool {
	n := t.root
	u := p.Addr().Uint128()
	for i := 0; i < p.Bits(); i++ {
		b := u.Bit(uint(127 - i))
		if n.child[b] == nil {
			return false
		}
		n = n.child[b]
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	for i := range t.small {
		if t.small[i].p == p {
			t.small = append(t.small[:i], t.small[i+1:]...)
			break
		}
	}
	return true
}

// Lookup returns the value of the longest installed prefix containing a,
// and ok=false if no prefix matches.
func (t *Table[V]) Lookup(a ipv6.Addr) (V, bool) {
	if !t.overflowed {
		for i := range t.small {
			if t.small[i].p.Contains(a) {
				return t.small[i].v, true
			}
		}
		var zero V
		return zero, false
	}
	var (
		best  V
		found bool
	)
	n := t.root
	u := a.Uint128()
	for i := 0; ; i++ {
		if n.set {
			best, found = n.val, true
		}
		if i == 128 {
			break
		}
		b := u.Bit(uint(127 - i))
		if n.child[b] == nil {
			break
		}
		n = n.child[b]
	}
	return best, found
}

// LookupPrefix returns the value and the matched prefix itself.
func (t *Table[V]) LookupPrefix(a ipv6.Addr) (ipv6.Prefix, V, bool) {
	var (
		best     V
		bestBits = -1
	)
	n := t.root
	u := a.Uint128()
	for i := 0; ; i++ {
		if n.set {
			best, bestBits = n.val, i
		}
		if i == 128 {
			break
		}
		b := u.Bit(uint(127 - i))
		if n.child[b] == nil {
			break
		}
		n = n.child[b]
	}
	if bestBits < 0 {
		var zero V
		return ipv6.Prefix{}, zero, false
	}
	p, err := ipv6.NewPrefix(a, bestBits)
	if err != nil {
		panic(fmt.Sprintf("lpm: internal prefix error: %v", err))
	}
	return p, best, true
}

// Exact returns the value installed for exactly p.
func (t *Table[V]) Exact(p ipv6.Prefix) (V, bool) {
	n := t.root
	u := p.Addr().Uint128()
	for i := 0; i < p.Bits(); i++ {
		b := u.Bit(uint(127 - i))
		if n.child[b] == nil {
			var zero V
			return zero, false
		}
		n = n.child[b]
	}
	if !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Walk visits every installed prefix in lexicographic bit order.
func (t *Table[V]) Walk(fn func(ipv6.Prefix, V) bool) {
	var rec func(n *node[V], addr ipv6.Addr, depth int) bool
	rec = func(n *node[V], addr ipv6.Addr, depth int) bool {
		if n == nil {
			return true
		}
		if n.set {
			p, err := ipv6.NewPrefix(addr, depth)
			if err != nil {
				panic(fmt.Sprintf("lpm: internal prefix error: %v", err))
			}
			if !fn(p, n.val) {
				return false
			}
		}
		if depth == 128 {
			return true
		}
		if !rec(n.child[0], addr, depth+1) {
			return false
		}
		one := ipv6.AddrFrom128(addr.Uint128().SetBit(uint(127-depth), 1))
		return rec(n.child[1], one, depth+1)
	}
	rec(t.root, ipv6.Addr{}, 0)
}

// String renders the table for debugging.
func (t *Table[V]) String() string {
	var b strings.Builder
	t.Walk(func(p ipv6.Prefix, v V) bool {
		fmt.Fprintf(&b, "%s -> %v\n", p, v)
		return true
	})
	return b.String()
}
