package lpm

import "repro/internal/ipv6"

// Linear is a reference longest-prefix-match implementation backed by a
// flat slice scanned on every lookup. It exists as the differential
// oracle for Table: same API, obviously-correct O(n) semantics, so the
// two can be run over identical inserts and queries and diffed.
type Linear[V any] struct {
	entries []linEntry[V]
}

type linEntry[V any] struct {
	prefix ipv6.Prefix
	val    V
}

// NewLinear returns an empty table.
func NewLinear[V any]() *Linear[V] {
	return &Linear[V]{}
}

// Len returns the number of installed prefixes.
func (t *Linear[V]) Len() int { return len(t.entries) }

// Insert installs or replaces the value for p.
func (t *Linear[V]) Insert(p ipv6.Prefix, v V) {
	for i := range t.entries {
		if t.entries[i].prefix == p {
			t.entries[i].val = v
			return
		}
	}
	t.entries = append(t.entries, linEntry[V]{prefix: p, val: v})
}

// Remove deletes the exact prefix p, reporting whether it was present.
func (t *Linear[V]) Remove(p ipv6.Prefix) bool {
	for i := range t.entries {
		if t.entries[i].prefix == p {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			return true
		}
	}
	return false
}

// Lookup returns the value of the longest installed prefix containing a.
func (t *Linear[V]) Lookup(a ipv6.Addr) (V, bool) {
	_, v, ok := t.LookupPrefix(a)
	return v, ok
}

// LookupPrefix returns the matched prefix and its value.
func (t *Linear[V]) LookupPrefix(a ipv6.Addr) (ipv6.Prefix, V, bool) {
	var (
		best     linEntry[V]
		bestBits = -1
	)
	for _, e := range t.entries {
		if e.prefix.Bits() > bestBits && e.prefix.Contains(a) {
			best, bestBits = e, e.prefix.Bits()
		}
	}
	if bestBits < 0 {
		var zero V
		return ipv6.Prefix{}, zero, false
	}
	return best.prefix, best.val, true
}

// Exact returns the value installed for exactly p.
func (t *Linear[V]) Exact(p ipv6.Prefix) (V, bool) {
	for _, e := range t.entries {
		if e.prefix == p {
			return e.val, true
		}
	}
	var zero V
	return zero, false
}
