// Package tga implements a seed-based target generation algorithm in the
// family the paper's related work surveys (Entropy/IP, 6Gen, 6Tree):
// learn per-nybble value distributions from seed addresses, then sample
// candidate 128-bit targets from the learned distribution.
//
// The paper's Section I claim — such approaches are "significantly
// constrained by either seeds diversity or algorithm complexity" — is
// reproduced by the comparison tests: a model trained on one ISP's seeds
// keeps resampling the neighborhoods of those seeds, rediscovering the
// same peripheries, while the periphery scan covers every delegation
// with one probe each.
package tga

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/ipv6"
)

// nybbles is the number of 4-bit positions in an IPv6 address.
const nybbles = 32

// Model holds per-position nybble frequencies.
type Model struct {
	counts [nybbles][16]int
	seeds  int
}

// Train builds a model from seed addresses.
func Train(seeds []ipv6.Addr) (*Model, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("tga: no seeds")
	}
	m := &Model{seeds: len(seeds)}
	for _, a := range seeds {
		b := a.Bytes()
		for i := 0; i < nybbles; i++ {
			var nyb byte
			if i%2 == 0 {
				nyb = b[i/2] >> 4
			} else {
				nyb = b[i/2] & 0xf
			}
			m.counts[i][nyb]++
		}
	}
	return m, nil
}

// Seeds returns the training-set size.
func (m *Model) Seeds() int { return m.seeds }

// Entropy returns the empirical entropy (bits, 0..4) of one nybble
// position — the Entropy/IP fingerprint of where addresses vary.
func (m *Model) Entropy(pos int) float64 {
	if pos < 0 || pos >= nybbles {
		return 0
	}
	var h float64
	for _, c := range m.counts[pos] {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(m.seeds)
		h -= p * math.Log2(p)
	}
	return h
}

// Generate samples n candidate addresses, each nybble drawn
// independently from its learned distribution (the core simplification
// all of these generators make, and the source of their seed-diversity
// ceiling).
func (m *Model) Generate(rng *rand.Rand, n int) []ipv6.Addr {
	out := make([]ipv6.Addr, 0, n)
	for k := 0; k < n; k++ {
		var b [16]byte
		for i := 0; i < nybbles; i++ {
			nyb := m.sample(rng, i)
			if i%2 == 0 {
				b[i/2] |= nyb << 4
			} else {
				b[i/2] |= nyb
			}
		}
		out = append(out, ipv6.AddrFromBytes(b[:]))
	}
	return out
}

// sample draws one nybble value for a position.
func (m *Model) sample(rng *rand.Rand, pos int) byte {
	r := rng.Intn(m.seeds)
	for v, c := range m.counts[pos] {
		if r < c {
			return byte(v)
		}
		r -= c
	}
	return 0
}

// TopPrefixes reports the most concentrated /length prefixes among the
// seeds — a diagnostic showing how narrowly the model's probability mass
// sits (6Tree-style space partitioning would find the same clusters).
func (m *Model) TopPrefixes(seeds []ipv6.Addr, length, n int) []ipv6.Prefix {
	counts := map[ipv6.Prefix]int{}
	for _, a := range seeds {
		p, err := ipv6.NewPrefix(a, length)
		if err != nil {
			continue
		}
		counts[p]++
	}
	type pc struct {
		p ipv6.Prefix
		c int
	}
	list := make([]pc, 0, len(counts))
	for p, c := range counts {
		list = append(list, pc{p, c})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].c != list[j].c {
			return list[i].c > list[j].c
		}
		return list[i].p.Addr().Less(list[j].p.Addr())
	})
	if n > len(list) {
		n = len(list)
	}
	out := make([]ipv6.Prefix, 0, n)
	for _, e := range list[:n] {
		out = append(out, e.p)
	}
	return out
}
