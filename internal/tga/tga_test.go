package tga

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/ipv6"
	"repro/internal/topo"
	"repro/internal/wire"
	"repro/internal/xmap"
)

func TestTrainRequiresSeeds(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("empty seed set accepted")
	}
}

func TestGenerateStaysInSeedPrefix(t *testing.T) {
	// All seeds share a /32: every candidate must too (the per-nybble
	// model can only emit observed values).
	rng := rand.New(rand.NewSource(1))
	base := ipv6.MustParsePrefix("2001:db8::/32")
	var seeds []ipv6.Addr
	for i := 0; i < 100; i++ {
		seeds = append(seeds, ipv6.SLAAC(base, rng.Uint64()).WithIID(rng.Uint64()))
	}
	m, err := Train(seeds)
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range m.Generate(rng, 500) {
		if !base.Contains(cand) {
			t.Fatalf("candidate %s escaped seed prefix", cand)
		}
	}
}

func TestEntropyShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := ipv6.MustParsePrefix("2001:db8:1111:2222::/64")
	var seeds []ipv6.Addr
	for i := 0; i < 200; i++ {
		seeds = append(seeds, ipv6.SLAAC(base, rng.Uint64()))
	}
	m, err := Train(seeds)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed prefix nybbles: zero entropy. Random IID nybbles: near 4.
	for pos := 0; pos < 16; pos++ {
		if h := m.Entropy(pos); h != 0 {
			t.Errorf("prefix nybble %d entropy = %v", pos, h)
		}
	}
	var iidH float64
	for pos := 16; pos < 32; pos++ {
		iidH += m.Entropy(pos)
	}
	if iidH/16 < 3.2 {
		t.Errorf("IID mean entropy = %v, want ~4", iidH/16)
	}
	if m.Entropy(-1) != 0 || m.Entropy(99) != 0 {
		t.Error("out-of-range entropy not 0")
	}
}

func TestTopPrefixes(t *testing.T) {
	a := ipv6.MustParsePrefix("2001:db8:aaaa::/48")
	b := ipv6.MustParsePrefix("2001:db8:bbbb::/48")
	var seeds []ipv6.Addr
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		seeds = append(seeds, ipv6.SLAAC(a, rng.Uint64()))
	}
	for i := 0; i < 10; i++ {
		seeds = append(seeds, ipv6.SLAAC(b, rng.Uint64()))
	}
	m, err := Train(seeds)
	if err != nil {
		t.Fatal(err)
	}
	top := m.TopPrefixes(seeds, 48, 2)
	if len(top) != 2 || top[0] != a || top[1] != b {
		t.Errorf("top = %v", top)
	}
}

// TestSeedDiversityCeiling reproduces the paper's core criticism: with
// equal probe budgets over a populated ISP, the seed-trained generator
// rediscovers the neighborhoods of its seeds while the periphery scan
// enumerates every delegation.
func TestSeedDiversityCeiling(t *testing.T) {
	dep, err := topo.Build(topo.Config{
		Seed: 71, Scale: 0.0005, WindowWidth: 10,
		MaxDevicesPerISP: 250, OnlyISPs: []int{13},
	})
	if err != nil {
		t.Fatal(err)
	}
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	budget := 1 << 10 // both approaches get one window's worth of probes

	// Seeds: a biased sample — the first 10% of devices (in practice,
	// hitlist seeds cluster in a few networks).
	var seeds []ipv6.Addr
	for i, d := range isp.Devices {
		if i >= len(isp.Devices)/10 {
			break
		}
		seeds = append(seeds, d.WANAddr)
	}
	model, err := Train(seeds)
	if err != nil {
		t.Fatal(err)
	}

	// TGA pass: probe each candidate, count distinct peripheries that
	// answer (by any ICMPv6 evidence).
	rng := rand.New(rand.NewSource(9))
	tgaFound := map[ipv6.Addr]bool{}
	for _, cand := range model.Generate(rng, budget) {
		pkt, err := wire.BuildEchoRequest(dep.Edge.Addr(), cand, 64, 0x7067, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		dep.Engine.Inject(dep.Edge.Iface(), pkt)
		for _, raw := range dep.Edge.Drain() {
			sum, err := wire.ParsePacket(raw)
			if err != nil || sum.ICMP == nil {
				continue
			}
			if _, ok := dep.DeviceByWAN(sum.IP.Src); ok {
				tgaFound[sum.IP.Src] = true
			}
		}
	}

	// Periphery scan with the same budget.
	scanner, err := xmap.New(xmap.Config{Window: isp.Window, Seed: []byte("tga-cmp")}, drv)
	if err != nil {
		t.Fatal(err)
	}
	xmapFound := map[ipv6.Addr]bool{}
	if _, err := scanner.Run(context.Background(), func(r xmap.Response) {
		if _, ok := dep.DeviceByWAN(r.Responder); ok {
			xmapFound[r.Responder] = true
		}
	}); err != nil {
		t.Fatal(err)
	}

	if len(xmapFound) < len(isp.Devices)*9/10 {
		t.Fatalf("periphery scan found %d of %d", len(xmapFound), len(isp.Devices))
	}
	if len(tgaFound)*2 >= len(xmapFound) {
		t.Errorf("TGA found %d peripheries vs scan's %d; expected the seed ceiling to bite",
			len(tgaFound), len(xmapFound))
	}
}
