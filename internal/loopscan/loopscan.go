// Package loopscan implements the Section VI routing-loop measurement:
// the h / h+2 hop-limit probe pair that confirms a forwarding loop, the
// window sweeps over ISP blocks and BGP-advertised prefixes, and the
// amplification accounting of the attack itself.
package loopscan

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"hash"

	"repro/internal/ipv6"
	"repro/internal/netsim"
	"repro/internal/perm"
	"repro/internal/telemetry"
	"repro/internal/uint128"
	"repro/internal/wire"
	"repro/internal/xmap"
)

// DefaultHopLimit is the probe hop limit h. The paper selects 32: large
// enough to cross the Internet (Yarrp6's fill-mode data shows all paths
// <32), small enough to bound the loop traffic a probe induces.
const DefaultHopLimit = 32

// Verdict classifies one probed address.
type Verdict int

// Verdicts.
const (
	VerdictSilent      Verdict = iota + 1 // no response
	VerdictUnreachable                    // healthy: destination unreachable
	VerdictLoop                           // confirmed: time exceeded twice from one device
	VerdictTransient                      // time exceeded once, unconfirmed
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictSilent:
		return "silent"
	case VerdictUnreachable:
		return "unreachable"
	case VerdictLoop:
		return "loop"
	case VerdictTransient:
		return "transient"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// CheckResult is the outcome for one target address.
type CheckResult struct {
	Target    ipv6.Addr
	Responder ipv6.Addr
	Verdict   Verdict
}

// Detector probes for loops through a scan driver. A Detector is not
// safe for concurrent use: probes share reusable HMAC scratch state.
type Detector struct {
	drv xmap.PacketDriver
	// HopLimit is h (default DefaultHopLimit).
	HopLimit uint8
	// Tel, when set, counts probes, responses and confirmed loops into a
	// telemetry shard (loop.* counters). Nil detaches instrumentation.
	Tel *telemetry.Shard
	seq uint16

	// idMac is keyed once and Reset per probe, keeping the validation-ID
	// derivation off the per-probe allocation path (as in xmap.Scanner).
	idMac  hash.Hash
	macSum [sha256.Size]byte
	macIn  [16]byte
}

// NewDetector creates a detector.
func NewDetector(drv xmap.PacketDriver) *Detector {
	return &Detector{
		drv:      drv,
		HopLimit: DefaultHopLimit,
		idMac:    hmac.New(sha256.New, []byte("loopscan")),
	}
}

// probe sends one echo request with the given hop limit and returns the
// first matching ICMPv6 response.
func (d *Detector) probe(dst ipv6.Addr, hopLimit uint8) (responder ipv6.Addr, icmpType uint8, ok bool, err error) {
	d.seq++
	id := d.validationID(dst)
	pkt, err := wire.BuildEchoRequest(d.drv.SourceAddr(), dst, hopLimit, id, d.seq, nil)
	if err != nil {
		return ipv6.Addr{}, 0, false, err
	}
	if err := d.drv.Send(pkt); err != nil {
		return ipv6.Addr{}, 0, false, err
	}
	d.Tel.Inc(telemetry.LoopProbes)
	for _, raw := range d.drv.Recv() {
		sum, perr := wire.ParsePacket(raw)
		if perr != nil || sum.ICMP == nil {
			continue
		}
		switch sum.ICMP.Type {
		case wire.ICMPDestUnreach, wire.ICMPTimeExceeded:
			inv, perr := wire.ParseInvoking(sum.ICMP.Body)
			if perr != nil || inv.IP.Dst != dst || inv.EchoID != id {
				continue
			}
			return sum.IP.Src, sum.ICMP.Type, true, nil
		case wire.ICMPEchoReply:
			if sum.IP.Src == dst {
				return sum.IP.Src, wire.ICMPEchoReply, true, nil
			}
		}
	}
	return ipv6.Addr{}, 0, false, nil
}

// validationID derives the echo identifier from the target.
func (d *Detector) validationID(dst ipv6.Addr) uint16 {
	d.idMac.Reset()
	d.macIn = dst.Bytes()
	d.idMac.Write(d.macIn[:])
	s := d.idMac.Sum(d.macSum[:0])
	return uint16(s[0])<<8 | uint16(s[1])
}

// CheckAddr applies the paper's method to one address: a Time Exceeded
// reply to hop limit h, confirmed by a second Time Exceeded from the
// same device at h+2, proves a loop (a linear path would have delivered
// or erred identically at both hop limits only from the same distance —
// the +2 step keeps loop parity so the same device answers).
func (d *Detector) CheckAddr(dst ipv6.Addr) (CheckResult, error) {
	res := CheckResult{Target: dst, Verdict: VerdictSilent}
	from, typ, ok, err := d.probe(dst, d.HopLimit)
	if err != nil {
		return res, err
	}
	if !ok {
		return res, nil
	}
	d.Tel.Inc(telemetry.LoopResponses)
	res.Responder = from
	if typ != wire.ICMPTimeExceeded {
		res.Verdict = VerdictUnreachable
		return res, nil
	}
	from2, typ2, ok2, err := d.probe(dst, d.HopLimit+2)
	if err != nil {
		return res, err
	}
	if ok2 {
		d.Tel.Inc(telemetry.LoopResponses)
	}
	if ok2 && typ2 == wire.ICMPTimeExceeded && from2 == from {
		res.Verdict = VerdictLoop
		d.Tel.Inc(telemetry.LoopConfirmed)
		return res, nil
	}
	res.Verdict = VerdictTransient
	return res, nil
}

// HopInfo is the aggregated view of one observed last hop.
type HopInfo struct {
	Addr ipv6.Addr
	// Vulnerable is set if any probe through this hop confirmed a loop.
	Vulnerable bool
	// SameCount/DiffCount split targets by /64 equality with the hop
	// (Table XI's same/diff columns).
	SameCount, DiffCount int
}

// ScanResult aggregates a loop sweep.
type ScanResult struct {
	Targets   uint64
	Responses uint64
	Hops      map[ipv6.Addr]*HopInfo
}

// VulnerableHops returns the hops with confirmed loops.
func (r *ScanResult) VulnerableHops() []*HopInfo {
	var out []*HopInfo
	for _, h := range r.Hops {
		if h.Vulnerable {
			out = append(out, h)
		}
	}
	return out
}

// ScanWindows sweeps each window: every sub-prefix probed once at a
// pseudo-random host address, loop-checked per CheckAddr.
func (d *Detector) ScanWindows(windows []ipv6.Window, seed []byte) (*ScanResult, error) {
	res := &ScanResult{Hops: make(map[ipv6.Addr]*HopInfo)}
	// One keyed HMAC and staging/digest scratch for the whole sweep
	// instead of fresh allocations per target.
	mac := hmac.New(sha256.New, seed)
	var sum [sha256.Size]byte
	in := make([]byte, 16)
	for _, w := range windows {
		size, ok := w.Size()
		if !ok {
			return nil, fmt.Errorf("loopscan: window %s too large", w)
		}
		cycle, err := perm.NewCycle(size, append([]byte("loop-"), seed...))
		if err != nil {
			return nil, fmt.Errorf("loopscan: permutation for %s: %w", w, err)
		}
		it := cycle.Iterate()
		for {
			idx, ok := it.Next()
			if !ok {
				break
			}
			sub, err := w.Sub(idx)
			if err != nil {
				return nil, err
			}
			dst := targetInMac(sub, mac, in, sum[:0])
			res.Targets++
			cr, err := d.CheckAddr(dst)
			if err != nil {
				return nil, err
			}
			if cr.Verdict == VerdictSilent {
				continue
			}
			res.Responses++
			hop := res.Hops[cr.Responder]
			if hop == nil {
				hop = &HopInfo{Addr: cr.Responder}
				res.Hops[cr.Responder] = hop
			}
			if cr.Verdict == VerdictLoop {
				hop.Vulnerable = true
			}
			if cr.Responder.Prefix64() == dst.Prefix64() {
				hop.SameCount++
			} else {
				hop.DiffCount++
			}
		}
	}
	return res, nil
}

// targetIn derives the pseudo-random in-prefix host address.
func targetIn(sub ipv6.Prefix, seed []byte) ipv6.Addr {
	return targetInMac(sub, hmac.New(sha256.New, seed), nil, nil)
}

// targetInMac is targetIn against a reusable keyed HMAC. in (len 16)
// stages the address bytes and scratch receives the digest; passing
// both hoisted buffers keeps the per-target call allocation-free, since
// a local array written through the hash.Hash interface would be forced
// to the heap. Either may be nil.
func targetInMac(sub ipv6.Prefix, mac hash.Hash, in, scratch []byte) ipv6.Addr {
	mac.Reset()
	b := sub.Addr().Bytes()
	if len(in) >= 16 {
		copy(in, b[:])
		mac.Write(in[:16])
	} else {
		mac.Write(b[:])
	}
	sum := mac.Sum(scratch)
	host := uint128.FromBytes(sum[:16])
	hostBits := uint(128 - sub.Bits())
	if hostBits < 128 {
		host = host.And(uint128.Max.Rsh(128 - hostBits))
	}
	if host.IsZero() {
		host = uint128.One
	}
	return ipv6.AddrFrom128(sub.Addr().Uint128().Or(host))
}

// AmplificationResult quantifies one attack packet's effect.
type AmplificationResult struct {
	// LinkPackets is how many packets the victim access link carried.
	LinkPackets uint64
	// LinkBytes is the byte volume on that link.
	LinkBytes uint64
	// Factor is packets carried per attacker packet sent.
	Factor float64
}

// MeasureAmplification sends a single maximum-hop-limit packet to dst and
// reports the traffic it induced on the victim link — the paper's ">200"
// amplification factor measurement (Section VI-A: each packet traverses
// the ISP-CPE link 255-n times).
func MeasureAmplification(drv xmap.PacketDriver, dst ipv6.Addr, victim *netsim.Link) (AmplificationResult, error) {
	before := snapshot(victim)
	pkt, err := wire.BuildEchoRequest(drv.SourceAddr(), dst, wire.MaxHopLimit, 0xa77a, 1, nil)
	if err != nil {
		return AmplificationResult{}, err
	}
	if err := drv.Send(pkt); err != nil {
		return AmplificationResult{}, err
	}
	drv.Recv() // drain any terminal error
	after := snapshot(victim)
	res := AmplificationResult{
		LinkPackets: after.pkts - before.pkts,
		LinkBytes:   after.bytes - before.bytes,
	}
	res.Factor = float64(res.LinkPackets)
	return res, nil
}

// MeasureAmplificationSpoofed repeats the measurement with a spoofed
// source address that itself falls in a looping prefix: the terminal
// Time Exceeded error is then routed back into the loop and ping-pongs a
// second time, "doubling the loop times" as Section VI-A notes for ASes
// without source address validation.
func MeasureAmplificationSpoofed(drv xmap.PacketDriver, dst, spoofedSrc ipv6.Addr, victim *netsim.Link) (AmplificationResult, error) {
	before := snapshot(victim)
	pkt, err := wire.BuildEchoRequest(spoofedSrc, dst, wire.MaxHopLimit, 0xa77b, 1, nil)
	if err != nil {
		return AmplificationResult{}, err
	}
	if err := drv.Send(pkt); err != nil {
		return AmplificationResult{}, err
	}
	drv.Recv()
	after := snapshot(victim)
	res := AmplificationResult{
		LinkPackets: after.pkts - before.pkts,
		LinkBytes:   after.bytes - before.bytes,
	}
	res.Factor = float64(res.LinkPackets)
	return res, nil
}

type linkCounters struct{ pkts, bytes uint64 }

func snapshot(l *netsim.Link) linkCounters {
	a := l.StatsFrom(l.Ends()[0])
	b := l.StatsFrom(l.Ends()[1])
	return linkCounters{pkts: a.Packets + b.Packets, bytes: a.Bytes + b.Bytes}
}

// Attack floods count crafted packets at the targets in round-robin,
// returning the total victim-link traffic — the DoS scenario of Figure 4
// driven at volume. Research use against one's own simulated network
// only; the real-world counterpart is precisely what the paper discloses
// as a vulnerability.
func Attack(drv xmap.PacketDriver, targets []ipv6.Addr, count int, victim *netsim.Link) (AmplificationResult, error) {
	if len(targets) == 0 || count <= 0 {
		return AmplificationResult{}, fmt.Errorf("loopscan: nothing to send")
	}
	before := snapshot(victim)
	for i := 0; i < count; i++ {
		dst := targets[i%len(targets)]
		pkt, err := wire.BuildEchoRequest(drv.SourceAddr(), dst, wire.MaxHopLimit, uint16(i), uint16(i>>16), nil)
		if err != nil {
			return AmplificationResult{}, err
		}
		if err := drv.Send(pkt); err != nil {
			return AmplificationResult{}, err
		}
		drv.Recv()
	}
	after := snapshot(victim)
	res := AmplificationResult{
		LinkPackets: after.pkts - before.pkts,
		LinkBytes:   after.bytes - before.bytes,
	}
	res.Factor = float64(res.LinkPackets) / float64(count)
	return res, nil
}
