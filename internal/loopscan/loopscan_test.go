package loopscan

import (
	"testing"

	"repro/internal/ipv6"
	"repro/internal/topo"
	"repro/internal/xmap"
)

// fixture builds China Unicom broadband — the ISP with the highest loop
// rate (78.9% of last hops, Table XI).
func fixture(t *testing.T) (*topo.Deployment, *Detector) {
	t.Helper()
	dep, err := topo.Build(topo.Config{
		Seed: 41, Scale: 0.0001, WindowWidth: 10,
		MaxDevicesPerISP: 120, OnlyISPs: []int{12},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dep, NewDetector(xmap.NewSimDriver(dep.Engine, dep.Edge))
}

func TestCheckAddrVerdicts(t *testing.T) {
	dep, det := fixture(t)
	var vulnDev, safeDev *topo.Device
	for _, d := range dep.ISPs[0].Devices {
		if d.VulnLAN && vulnDev == nil {
			vulnDev = d
		}
		if !d.Vulnerable() && safeDev == nil {
			safeDev = d
		}
	}
	if vulnDev == nil || safeDev == nil {
		t.Fatal("fixture lacks vulnerable or safe device")
	}

	// A not-used address inside the vulnerable device's delegation loops.
	vulnTarget := targetIn(vulnDev.CPE.Delegated(), []byte("x"))
	res, err := det.CheckAddr(vulnTarget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictLoop {
		t.Errorf("vulnerable device verdict = %s", res.Verdict)
	}
	if res.Responder != vulnDev.WANAddr {
		t.Errorf("loop responder = %s, want CPE %s", res.Responder, vulnDev.WANAddr)
	}

	// The same probe at a healthy device draws an unreachable.
	safeTarget := targetIn(safeDev.CPE.Delegated(), []byte("x"))
	res, err = det.CheckAddr(safeTarget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictUnreachable {
		t.Errorf("healthy device verdict = %s", res.Verdict)
	}
}

func TestCheckAddrSilent(t *testing.T) {
	_, det := fixture(t)
	res, err := det.CheckAddr(ipv6.MustParseAddr("3fff::1"))
	if err != nil {
		t.Fatal(err)
	}
	// The core has no route; it answers no-route unreachable — which is
	// not a loop. Depending on topology it may also be silent.
	if res.Verdict == VerdictLoop {
		t.Errorf("unrouted space reported as loop")
	}
}

func TestScanWindowsFindsVulnerablePopulation(t *testing.T) {
	dep, det := fixture(t)
	isp := dep.ISPs[0]
	res, err := det.ScanWindows([]ipv6.Window{isp.Window}, []byte("seed"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != 1024 {
		t.Errorf("targets = %d", res.Targets)
	}

	wantVuln := map[ipv6.Addr]bool{}
	for _, d := range isp.Devices {
		if d.Vulnerable() {
			wantVuln[d.WANAddr] = true
		}
	}
	gotVuln := map[ipv6.Addr]bool{}
	for _, h := range res.VulnerableHops() {
		gotVuln[h.Addr] = true
	}
	missed, extra := 0, 0
	for a := range wantVuln {
		if !gotVuln[a] {
			missed++
		}
	}
	for a := range gotVuln {
		if !wantVuln[a] {
			extra++
		}
	}
	// A single probe per sub-prefix can land in the device's in-use
	// subnet or its WAN /64 and draw an NDP unreachable instead of a
	// loop: the method inherently undercounts by ~1/16 per such region
	// (the paper's sweep shares this property). Allow that, no more.
	if float64(missed) > 0.2*float64(len(wantVuln)) {
		t.Errorf("scan missed %d of %d vulnerable devices", missed, len(wantVuln))
	}
	if extra != 0 {
		t.Errorf("scan flagged %d non-vulnerable responders", extra)
	}
}

func TestSameDiffSplitForLoops(t *testing.T) {
	dep, det := fixture(t)
	isp := dep.ISPs[0]
	res, err := det.ScanWindows([]ipv6.Window{isp.Window}, []byte("seed"))
	if err != nil {
		t.Fatal(err)
	}
	same, diff := 0, 0
	for _, h := range res.VulnerableHops() {
		same += h.SameCount
		diff += h.DiffCount
	}
	if same+diff == 0 {
		t.Fatal("no loop observations")
	}
	// CN broadband: WAN /64 inside the /60 delegation, so ~1/16 of loop
	// probes land in the responder's own /64 (Table XI shows 3.9%).
	frac := float64(same) / float64(same+diff)
	if frac > 0.2 {
		t.Errorf("same fraction = %.2f, want small (~1/16)", frac)
	}
}

func TestMeasureAmplification(t *testing.T) {
	dep, _ := fixture(t)
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	var dev *topo.Device
	for _, d := range dep.ISPs[0].Devices {
		if d.VulnLAN {
			dev = d
			break
		}
	}
	if dev == nil {
		t.Fatal("no vulnerable device")
	}
	res, err := MeasureAmplification(drv, targetIn(dev.CPE.Delegated(), []byte("amp")), dev.AccessLink)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's amplification factor is >200 (255 minus the hop count
	// to the ISP router).
	if res.Factor < 200 {
		t.Errorf("amplification factor = %v, want >200", res.Factor)
	}
	if res.LinkBytes == 0 {
		t.Error("no bytes accounted")
	}
}

func TestAttackRoundRobin(t *testing.T) {
	dep, _ := fixture(t)
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	var dev *topo.Device
	for _, d := range dep.ISPs[0].Devices {
		if d.VulnLAN {
			dev = d
			break
		}
	}
	if dev == nil {
		t.Fatal("no vulnerable device")
	}
	targets := []ipv6.Addr{
		targetIn(dev.CPE.Delegated(), []byte("a")),
		targetIn(dev.CPE.Delegated(), []byte("b")),
	}
	res, err := Attack(drv, targets, 10, dev.AccessLink)
	if err != nil {
		t.Fatal(err)
	}
	if res.Factor < 200 {
		t.Errorf("attack factor = %v", res.Factor)
	}
	if res.LinkPackets < 2000 {
		t.Errorf("attack moved only %d packets", res.LinkPackets)
	}
	if _, err := Attack(drv, nil, 5, dev.AccessLink); err == nil {
		t.Error("empty target list accepted")
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictSilent: "silent", VerdictUnreachable: "unreachable",
		VerdictLoop: "loop", VerdictTransient: "transient",
	} {
		if v.String() != want {
			t.Errorf("String(%d) = %q", v, v.String())
		}
	}
}

func TestSpoofedSourceDoubling(t *testing.T) {
	dep, _ := fixture(t)
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	var dev *topo.Device
	for _, d := range dep.ISPs[0].Devices {
		if d.VulnLAN {
			dev = d
			break
		}
	}
	if dev == nil {
		t.Fatal("no vulnerable device")
	}
	target := targetIn(dev.CPE.Delegated(), []byte("spoof"))
	direct, err := MeasureAmplification(drv, target, dev.AccessLink)
	if err != nil {
		t.Fatal(err)
	}
	// Spoofed source inside the same looping delegation: the terminal
	// Time Exceeded is routed back into the loop and dies there too.
	spoofSrc := targetIn(dev.CPE.Delegated(), []byte("spoof-src"))
	spoofed, err := MeasureAmplificationSpoofed(drv, target, spoofSrc, dev.AccessLink)
	if err != nil {
		t.Fatal(err)
	}
	if spoofed.Factor < 1.5*direct.Factor {
		t.Errorf("spoofed factor %.0f not ~2x direct %.0f", spoofed.Factor, direct.Factor)
	}
}
