// Package filter implements XMap's output-filter expression language —
// the "expression structure to filter specific fields" of Section IV-B.
// Scan operators write e.g.
//
//	kind == "dest-unreach" && code == 3 && !same_prefix64
//
// and only matching responses reach the output module.
//
// Grammar (precedence low to high):
//
//	expr    := or
//	or      := and { "||" and }
//	and     := unary { "&&" unary }
//	unary   := "!" unary | "(" expr ")" | comparison | field
//	compare := field op literal
//	op      := == != < <= > >= contains
//
// Fields are resolved against a Record; literals are integers, quoted
// strings, or true/false. A bare boolean field is a valid expression.
package filter

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Value is a field or literal value: int64, string, or bool.
type Value interface{}

// Record resolves field names during evaluation.
type Record interface {
	// Field returns the value of name, ok=false if the field does not
	// exist.
	Field(name string) (Value, bool)
}

// MapRecord adapts a plain map.
type MapRecord map[string]Value

// Field implements Record.
func (m MapRecord) Field(name string) (Value, bool) {
	v, ok := m[name]
	return v, ok
}

// Expr is a compiled filter.
type Expr struct {
	root node
	src  string
}

// String returns the original source.
func (e *Expr) String() string { return e.src }

// Eval evaluates the filter against r. Evaluation errors (missing field,
// type mismatch) are returned rather than silently treated as false.
func (e *Expr) Eval(r Record) (bool, error) {
	v, err := e.root.eval(r)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("filter: expression is not boolean (got %T)", v)
	}
	return b, nil
}

// node is an AST node.
type node interface {
	eval(Record) (Value, error)
}

type litNode struct{ v Value }

func (n litNode) eval(Record) (Value, error) { return n.v, nil }

type fieldNode struct{ name string }

func (n fieldNode) eval(r Record) (Value, error) {
	v, ok := r.Field(n.name)
	if !ok {
		return nil, fmt.Errorf("filter: unknown field %q", n.name)
	}
	return v, nil
}

type notNode struct{ sub node }

func (n notNode) eval(r Record) (Value, error) {
	v, err := n.sub.eval(r)
	if err != nil {
		return nil, err
	}
	b, ok := v.(bool)
	if !ok {
		return nil, fmt.Errorf("filter: ! applied to non-boolean %T", v)
	}
	return !b, nil
}

type boolNode struct {
	op   string // "&&" or "||"
	l, r node
}

func (n boolNode) eval(r Record) (Value, error) {
	lv, err := n.l.eval(r)
	if err != nil {
		return nil, err
	}
	lb, ok := lv.(bool)
	if !ok {
		return nil, fmt.Errorf("filter: %s applied to non-boolean %T", n.op, lv)
	}
	// Short circuit.
	if n.op == "&&" && !lb {
		return false, nil
	}
	if n.op == "||" && lb {
		return true, nil
	}
	rv, err := n.r.eval(r)
	if err != nil {
		return nil, err
	}
	rb, ok := rv.(bool)
	if !ok {
		return nil, fmt.Errorf("filter: %s applied to non-boolean %T", n.op, rv)
	}
	return rb, nil
}

type cmpNode struct {
	op   string
	l, r node
}

func (n cmpNode) eval(r Record) (Value, error) {
	lv, err := n.l.eval(r)
	if err != nil {
		return nil, err
	}
	rv, err := n.r.eval(r)
	if err != nil {
		return nil, err
	}
	return compare(n.op, lv, rv)
}

func compare(op string, l, r Value) (Value, error) {
	if li, ok := l.(int); ok {
		l = int64(li)
	}
	switch lv := l.(type) {
	case int64:
		rvI, ok := toInt(r)
		if !ok {
			return nil, fmt.Errorf("filter: comparing int with %T", r)
		}
		switch op {
		case "==":
			return lv == rvI, nil
		case "!=":
			return lv != rvI, nil
		case "<":
			return lv < rvI, nil
		case "<=":
			return lv <= rvI, nil
		case ">":
			return lv > rvI, nil
		case ">=":
			return lv >= rvI, nil
		}
		return nil, fmt.Errorf("filter: operator %q not valid for int", op)
	case string:
		rvS, ok := r.(string)
		if !ok {
			return nil, fmt.Errorf("filter: comparing string with %T", r)
		}
		switch op {
		case "==":
			return lv == rvS, nil
		case "!=":
			return lv != rvS, nil
		case "contains":
			return strings.Contains(lv, rvS), nil
		case "<":
			return lv < rvS, nil
		case ">":
			return lv > rvS, nil
		}
		return nil, fmt.Errorf("filter: operator %q not valid for string", op)
	case bool:
		rvB, ok := r.(bool)
		if !ok {
			return nil, fmt.Errorf("filter: comparing bool with %T", r)
		}
		switch op {
		case "==":
			return lv == rvB, nil
		case "!=":
			return lv != rvB, nil
		}
		return nil, fmt.Errorf("filter: operator %q not valid for bool", op)
	}
	return nil, fmt.Errorf("filter: unsupported value type %T", l)
}

func toInt(v Value) (int64, bool) {
	switch t := v.(type) {
	case int64:
		return t, true
	case int:
		return int64(t), true
	}
	return 0, false
}

// --- lexer ---

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokString
	tokOp // == != < <= > >= && || !
	tokLParen
	tokRParen
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			l.pos++
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case strings.ContainsRune("=!<>&|", rune(c)):
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexInt()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		default:
			return nil, fmt.Errorf("filter: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: l.pos})
	l.pos += len(text)
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("filter: unterminated string at %d", start)
}

func (l *lexer) lexOp() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "==", "!=", "<=", ">=", "&&", "||":
		l.emit(tokOp, two)
		return nil
	}
	switch l.src[l.pos] {
	case '<', '>', '!':
		l.emit(tokOp, string(l.src[l.pos]))
		return nil
	}
	return fmt.Errorf("filter: bad operator at %d", l.pos)
}

func (l *lexer) lexInt() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokInt, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) &&
		(unicode.IsLetter(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// Parse compiles a filter expression.
func Parse(src string) (*Expr, error) {
	if strings.TrimSpace(src) == "" {
		return nil, fmt.Errorf("filter: empty expression")
	}
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("filter: trailing input %q at %d", t.text, t.pos)
	}
	return &Expr{root: root, src: src}, nil
}

// MustParse is Parse, panicking on error (for constants in tests).
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) parseOr() (node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && p.peek().text == "||" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = boolNode{op: "||", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && p.peek().text == "&&" {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = boolNode{op: "&&", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (node, error) {
	t := p.peek()
	switch {
	case t.kind == tokOp && t.text == "!":
		p.next()
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notNode{sub: sub}, nil
	case t.kind == tokLParen:
		p.next()
		sub, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("filter: missing ')' at %d", p.peek().pos)
		}
		p.next()
		return sub, nil
	}
	return p.parseComparison()
}

// comparisonOps are the binary comparison operators.
var comparisonOps = map[string]bool{
	"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true,
}

func (p *parser) parseComparison() (node, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	isCmp := (t.kind == tokOp && comparisonOps[t.text]) ||
		(t.kind == tokIdent && t.text == "contains")
	if !isCmp {
		return left, nil // bare boolean field
	}
	p.next()
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return cmpNode{op: t.text, l: left, r: right}, nil
}

func (p *parser) parseOperand() (node, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("filter: bad integer %q at %d", t.text, t.pos)
		}
		return litNode{v: v}, nil
	case tokString:
		return litNode{v: t.text}, nil
	case tokIdent:
		switch t.text {
		case "true":
			return litNode{v: true}, nil
		case "false":
			return litNode{v: false}, nil
		}
		return fieldNode{name: t.text}, nil
	}
	return nil, fmt.Errorf("filter: unexpected token %q at %d", t.text, t.pos)
}
