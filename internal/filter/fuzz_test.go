package filter

import "testing"

// FuzzParse must reject or compile arbitrary expression text without
// panicking, and compiled expressions must evaluate without panicking.
func FuzzParse(f *testing.F) {
	f.Add(`kind == "dest-unreach" && code == 3`)
	f.Add(`!(a || b) && c != -42`)
	f.Add(`s contains "x"`)
	f.Add(`((((`)
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		_, _ = e.Eval(MapRecord{"a": true, "b": false, "c": int64(1), "s": "xy", "kind": "k", "code": int64(3)})
	})
}
