package filter

import (
	"strings"
	"testing"
)

var sample = MapRecord{
	"responder":     "2001:db8::1",
	"kind":          "dest-unreach",
	"code":          int64(3),
	"same_prefix64": false,
	"alive":         true,
	"hits":          int64(12),
}

func evalOK(t *testing.T, src string) bool {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	got, err := e.Eval(sample)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return got
}

func TestBasicComparisons(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`code == 3`, true},
		{`code != 3`, false},
		{`code < 4`, true},
		{`code <= 3`, true},
		{`code > 3`, false},
		{`code >= 4`, false},
		{`kind == "dest-unreach"`, true},
		{`kind != "echo-reply"`, true},
		{`kind contains "unreach"`, true},
		{`kind contains "exceeded"`, false},
		{`responder contains "db8"`, true},
		{`same_prefix64 == false`, true},
		{`alive == true`, true},
		{`hits >= 10`, true},
	}
	for _, c := range cases {
		if got := evalOK(t, c.src); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestBooleanCombinators(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`alive`, true},
		{`!alive`, false},
		{`!same_prefix64`, true},
		{`alive && code == 3`, true},
		{`alive && code == 4`, false},
		{`code == 4 || code == 3`, true},
		{`code == 4 || code == 5`, false},
		{`!(code == 4) && (alive || same_prefix64)`, true},
		{`alive && !same_prefix64 && kind == "dest-unreach"`, true},
		// Precedence: && binds tighter than ||.
		{`code == 4 || alive && !same_prefix64`, true},
	}
	for _, c := range cases {
		if got := evalOK(t, c.src); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right side references a missing field; short-circuiting must
	// avoid evaluating it.
	e := MustParse(`code == 3 || nonexistent == 1`)
	got, err := e.Eval(sample)
	if err != nil || !got {
		t.Errorf("short-circuit || failed: %v %v", got, err)
	}
	e = MustParse(`code == 4 && nonexistent == 1`)
	got, err = e.Eval(sample)
	if err != nil || got {
		t.Errorf("short-circuit && failed: %v %v", got, err)
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []string{
		`nonexistent == 1`, // unknown field
		`code == "three"`,  // type mismatch
		`kind > 3`,         // type mismatch
		`code && alive`,    // non-boolean operand
		`!code`,            // ! on int
		`kind contains 3`,  // contains with int
		`alive < true`,     // invalid bool operator
		`code`,             // bare non-boolean expression
	}
	for _, src := range cases {
		e, err := Parse(src)
		if err != nil {
			continue // also acceptable: rejected at parse time
		}
		if _, err := e.Eval(sample); err == nil {
			t.Errorf("%q evaluated without error", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`   `,
		`(code == 3`,
		`code == `,
		`code @ 3`,
		`"unterminated`,
		`code == 3 extra`,
		`&& code`,
		`code === 3`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	rec := MapRecord{"s": `a"b`}
	e := MustParse(`s == "a\"b"`)
	got, err := e.Eval(rec)
	if err != nil || !got {
		t.Errorf("escape handling: %v %v", got, err)
	}
}

func TestNegativeIntegers(t *testing.T) {
	rec := MapRecord{"v": int64(-5)}
	if got := mustEval(t, `v == -5`, rec); !got {
		t.Error("v == -5 false")
	}
	if got := mustEval(t, `v < -1`, rec); !got {
		t.Error("v < -1 false")
	}
}

func mustEval(t *testing.T, src string, r Record) bool {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestIntFieldOfGoInt(t *testing.T) {
	rec := MapRecord{"v": 7} // plain int, not int64
	e := MustParse(`v == 7`)
	// Left side is the literal type driver; field int is coerced.
	got, err := e.Eval(rec)
	if err != nil {
		// Comparing int field on the left: compare() dispatches on the
		// left type; plain int lands in the unsupported branch unless
		// coerced. Accept either behavior but not a wrong answer.
		t.Skipf("plain int unsupported: %v", err)
	}
	if !got {
		t.Error("v == 7 false")
	}
}

func TestExprString(t *testing.T) {
	src := `kind == "loop" && code >= 1`
	if got := MustParse(src).String(); got != src {
		t.Errorf("String() = %q", got)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse(`(((`)
}

func TestWhitespaceTolerance(t *testing.T) {
	if !evalOK(t, "  code\t==\n3  ") {
		t.Error("whitespace-heavy expression failed")
	}
}

func TestContainsIsCaseSensitive(t *testing.T) {
	if evalOK(t, `kind contains "UNREACH"`) {
		t.Error("contains ignored case")
	}
	if !strings.Contains("dest-unreach", "unreach") {
		t.Fatal("sanity")
	}
}
