package wire

import (
	"encoding/binary"
	"fmt"
)

// The IPv4 layer exists for the paper's motivating contrast (Section II):
// a NAT'd IPv4 CPE exposes one address and hides everything behind it,
// while the IPv6 periphery holds a globally routable prefix. XMap itself
// is address-family agnostic ("192.168.0.0/20-25" in Section IV-B), so
// the scanner needs both wire formats.

// IPv4Addr is a 32-bit address.
type IPv4Addr uint32

// IPv4AddrFrom assembles an address from octets.
func IPv4AddrFrom(a, b, c, d byte) IPv4Addr {
	return IPv4Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String renders dotted-quad form.
func (a IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// IPv4HeaderLen is the length of an option-less IPv4 header.
const IPv4HeaderLen = 20

// IPv4Header is the fixed 20-byte IPv4 header (no options).
type IPv4Header struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src, Dst IPv4Addr
}

// ICMPv4 message types used by the scanner.
const (
	ICMP4EchoReply    = 0
	ICMP4DestUnreach  = 3
	ICMP4EchoRequest  = 8
	ICMP4TimeExceeded = 11
)

// ICMPv4 Destination Unreachable codes.
const (
	Unreach4Net  = 0
	Unreach4Host = 1
	Unreach4Port = 3
)

// checksum16 is the RFC 1071 checksum without a pseudo-header (IPv4
// header and ICMPv4 use it directly).
func checksum16(b []byte) uint16 {
	var sum uint64
	for len(b) >= 2 {
		sum += uint64(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint64(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Marshal serializes the packet (header checksum computed).
func (h *IPv4Header) Marshal(payload []byte) ([]byte, error) {
	if IPv4HeaderLen+len(payload) > 0xffff {
		return nil, fmt.Errorf("wire: IPv4 payload too long: %d", len(payload))
	}
	b := make([]byte, IPv4HeaderLen+len(payload))
	b[0] = 4<<4 | 5 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(IPv4HeaderLen+len(payload)))
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	b[8] = h.TTL
	b[9] = h.Protocol
	binary.BigEndian.PutUint32(b[12:16], uint32(h.Src))
	binary.BigEndian.PutUint32(b[16:20], uint32(h.Dst))
	binary.BigEndian.PutUint16(b[10:12], checksum16(b[:IPv4HeaderLen]))
	copy(b[IPv4HeaderLen:], payload)
	return b, nil
}

// ParseIPv4 decodes a packet, validating version, length and header
// checksum.
func ParseIPv4(b []byte) (IPv4Header, []byte, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4Header{}, nil, fmt.Errorf("wire: packet too short for IPv4 header: %d", len(b))
	}
	if b[0]>>4 != 4 {
		return IPv4Header{}, nil, fmt.Errorf("wire: IP version %d, want 4", b[0]>>4)
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < IPv4HeaderLen || ihl > len(b) {
		return IPv4Header{}, nil, fmt.Errorf("wire: bad IHL %d", ihl)
	}
	if checksum16(b[:ihl]) != 0 {
		return IPv4Header{}, nil, fmt.Errorf("wire: IPv4 header checksum mismatch")
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < ihl || total > len(b) {
		return IPv4Header{}, nil, fmt.Errorf("wire: IPv4 total length %d invalid", total)
	}
	h := IPv4Header{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:6]),
		TTL:      b[8],
		Protocol: b[9],
		Src:      IPv4Addr(binary.BigEndian.Uint32(b[12:16])),
		Dst:      IPv4Addr(binary.BigEndian.Uint32(b[16:20])),
	}
	return h, b[ihl:total], nil
}

// ICMPv4 is a generic ICMPv4 message.
type ICMPv4 struct {
	Type, Code uint8
	Body       []byte // excludes the 4-byte type/code/checksum header
}

// Marshal serializes with checksum.
func (m *ICMPv4) Marshal() []byte {
	b := make([]byte, 4+len(m.Body))
	b[0], b[1] = m.Type, m.Code
	copy(b[4:], m.Body)
	binary.BigEndian.PutUint16(b[2:4], checksum16(b))
	return b
}

// ParseICMPv4 decodes and verifies an ICMPv4 message.
func ParseICMPv4(b []byte) (ICMPv4, error) {
	if len(b) < 8 {
		return ICMPv4{}, fmt.Errorf("wire: ICMPv4 message too short: %d", len(b))
	}
	if checksum16(b) != 0 {
		return ICMPv4{}, fmt.Errorf("wire: ICMPv4 checksum mismatch")
	}
	return ICMPv4{Type: b[0], Code: b[1], Body: b[4:]}, nil
}

// BuildEchoRequest4 assembles a complete IPv4 ICMP echo request.
func BuildEchoRequest4(src, dst IPv4Addr, ttl uint8, id, seq uint16, data []byte) ([]byte, error) {
	body := make([]byte, 4+len(data))
	binary.BigEndian.PutUint16(body[0:2], id)
	binary.BigEndian.PutUint16(body[2:4], seq)
	copy(body[4:], data)
	m := ICMPv4{Type: ICMP4EchoRequest, Body: body}
	h := IPv4Header{TTL: ttl, Protocol: 1, Src: src, Dst: dst}
	return h.Marshal(m.Marshal())
}

// BuildEchoReply4 assembles the reply.
func BuildEchoReply4(src, dst IPv4Addr, ttl uint8, id, seq uint16, data []byte) ([]byte, error) {
	body := make([]byte, 4+len(data))
	binary.BigEndian.PutUint16(body[0:2], id)
	binary.BigEndian.PutUint16(body[2:4], seq)
	copy(body[4:], data)
	m := ICMPv4{Type: ICMP4EchoReply, Body: body}
	h := IPv4Header{TTL: ttl, Protocol: 1, Src: src, Dst: dst}
	return h.Marshal(m.Marshal())
}

// BuildICMP4Error assembles a Destination Unreachable or Time Exceeded
// error quoting the invoking header + 8 bytes, per RFC 792.
func BuildICMP4Error(src, dst IPv4Addr, typ, code uint8, invoking []byte) ([]byte, error) {
	quote := invoking
	if len(quote) > IPv4HeaderLen+8 {
		quote = quote[:IPv4HeaderLen+8]
	}
	body := make([]byte, 4+len(quote))
	copy(body[4:], quote)
	m := ICMPv4{Type: typ, Code: code, Body: body}
	h := IPv4Header{TTL: 64, Protocol: 1, Src: src, Dst: dst}
	return h.Marshal(m.Marshal())
}

// Summary4 is the decoded view of an IPv4 packet.
type Summary4 struct {
	IP      IPv4Header
	ICMP    *ICMPv4
	Payload []byte
	// EchoID/EchoSeq are set for echo request/reply messages.
	EchoID, EchoSeq uint16
	// Quoted holds the invoking header recovered from an error body,
	// with the invoking echo identifier/sequence when quoted.
	Quoted          *IPv4Header
	QuotedEchoID    uint16
	QuotedEchoSeq   uint16
	QuotedEchoValid bool
}

// ParsePacket4 decodes an IPv4 packet one layer down (ICMP only; the
// NAT contrast needs nothing else).
func ParsePacket4(b []byte) (*Summary4, error) {
	h, payload, err := ParseIPv4(b)
	if err != nil {
		return nil, err
	}
	s := &Summary4{IP: h, Payload: payload}
	if h.Protocol != 1 {
		return s, nil
	}
	m, err := ParseICMPv4(payload)
	if err != nil {
		return nil, err
	}
	s.ICMP = &m
	switch m.Type {
	case ICMP4EchoRequest, ICMP4EchoReply:
		if len(m.Body) >= 4 {
			s.EchoID = binary.BigEndian.Uint16(m.Body[0:2])
			s.EchoSeq = binary.BigEndian.Uint16(m.Body[2:4])
		}
	case ICMP4DestUnreach, ICMP4TimeExceeded:
		if len(m.Body) >= 4+IPv4HeaderLen {
			if qh, rest, qerr := parseIPv4HeaderOnly(m.Body[4:]); qerr == nil {
				s.Quoted = &qh
				// RFC 792 quotes 8 payload bytes: enough for the
				// invoking ICMP header's id/seq.
				if qh.Protocol == 1 && len(rest) >= 8 &&
					(rest[0] == ICMP4EchoRequest || rest[0] == ICMP4EchoReply) {
					s.QuotedEchoID = binary.BigEndian.Uint16(rest[4:6])
					s.QuotedEchoSeq = binary.BigEndian.Uint16(rest[6:8])
					s.QuotedEchoValid = true
				}
			}
		}
	}
	return s, nil
}

// parseIPv4HeaderOnly decodes a possibly truncated quoted header without
// enforcing the total-length bound (error quotes carry only 8 payload
// bytes).
func parseIPv4HeaderOnly(b []byte) (IPv4Header, []byte, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4Header{}, nil, fmt.Errorf("wire: quoted IPv4 header too short")
	}
	if b[0]>>4 != 4 {
		return IPv4Header{}, nil, fmt.Errorf("wire: quoted packet not IPv4")
	}
	h := IPv4Header{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:6]),
		TTL:      b[8],
		Protocol: b[9],
		Src:      IPv4Addr(binary.BigEndian.Uint32(b[12:16])),
		Dst:      IPv4Addr(binary.BigEndian.Uint32(b[16:20])),
	}
	return h, b[IPv4HeaderLen:], nil
}
