package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ipv6"
)

// putIPv6 writes the fixed header for a payloadLen-byte payload into
// b[:HeaderLen]. Callers guarantee len(b) >= HeaderLen.
func putIPv6(b []byte, h *IPv6Header, payloadLen int) {
	b[0] = 6<<4 | h.TrafficClass>>4
	b[1] = h.TrafficClass<<4 | uint8(h.FlowLabel>>16)
	binary.BigEndian.PutUint16(b[2:4], uint16(h.FlowLabel))
	binary.BigEndian.PutUint16(b[4:6], uint16(payloadLen))
	b[6] = h.NextHeader
	b[7] = h.HopLimit
	src, dst := h.Src.Bytes(), h.Dst.Bytes()
	copy(b[8:24], src[:])
	copy(b[24:40], dst[:])
}

// buildEcho assembles a complete echo request/reply in one allocation:
// the Build* convenience wrappers are the per-probe hot path, so they
// marshal the header and message directly into the final buffer instead
// of composing the layer-by-layer Marshal calls.
func buildEcho(scratch []byte, typ uint8, src, dst ipv6.Addr, hopLimit uint8, id, seq uint16, data []byte) ([]byte, error) {
	payloadLen := 8 + len(data)
	if payloadLen > 0xffff {
		return nil, fmt.Errorf("wire: payload length %d exceeds 65535", payloadLen)
	}
	n := HeaderLen + payloadLen
	var pkt []byte
	if cap(scratch) >= n {
		pkt = scratch[:n]
	} else {
		pkt = make([]byte, n)
	}
	h := IPv6Header{NextHeader: ProtoICMPv6, HopLimit: hopLimit, Src: src, Dst: dst}
	putIPv6(pkt, &h, payloadLen)
	m := pkt[HeaderLen:]
	// Every byte is written explicitly (not relying on a zeroed
	// allocation) so reused scratch buffers produce identical packets.
	m[0], m[1], m[2], m[3] = typ, 0, 0, 0
	binary.BigEndian.PutUint16(m[4:6], id)
	binary.BigEndian.PutUint16(m[6:8], seq)
	copy(m[8:], data)
	binary.BigEndian.PutUint16(m[2:4], Checksum(src, dst, ProtoICMPv6, m))
	return pkt, nil
}

// BuildEchoRequest assembles a complete IPv6 ICMPv6 Echo Request packet.
func BuildEchoRequest(src, dst ipv6.Addr, hopLimit uint8, id, seq uint16, data []byte) ([]byte, error) {
	return buildEcho(nil, ICMPEchoRequest, src, dst, hopLimit, id, seq, data)
}

// AppendEchoRequest is BuildEchoRequest building into buf when its
// capacity suffices (allocating otherwise), for callers that recycle
// probe buffers.
func AppendEchoRequest(buf []byte, src, dst ipv6.Addr, hopLimit uint8, id, seq uint16, data []byte) ([]byte, error) {
	return buildEcho(buf, ICMPEchoRequest, src, dst, hopLimit, id, seq, data)
}

// BuildEchoReply assembles an Echo Reply mirroring the request's id/seq.
func BuildEchoReply(src, dst ipv6.Addr, hopLimit uint8, id, seq uint16, data []byte) ([]byte, error) {
	return buildEcho(nil, ICMPEchoReply, src, dst, hopLimit, id, seq, data)
}

// AppendEchoReply is BuildEchoReply building into buf when its capacity
// suffices (allocating otherwise), for responders that recycle reply
// buffers.
func AppendEchoReply(buf []byte, src, dst ipv6.Addr, hopLimit uint8, id, seq uint16, data []byte) ([]byte, error) {
	return buildEcho(buf, ICMPEchoReply, src, dst, hopLimit, id, seq, data)
}

// ErrorLen returns the on-wire length of an ICMPv6 error quoting the
// invoking packet, so callers can pre-size a scratch buffer.
func ErrorLen(invoking []byte) int {
	n := len(invoking)
	if n > maxInvoking {
		n = maxInvoking
	}
	return HeaderLen + 8 + n
}

// buildError assembles a Destination Unreachable / Time Exceeded error
// quoting the invoking packet, into scratch when its capacity suffices
// (one allocation otherwise).
func buildError(scratch []byte, typ, code uint8, src, dst ipv6.Addr, hopLimit uint8, invoking []byte) ([]byte, error) {
	if len(invoking) > maxInvoking {
		invoking = invoking[:maxInvoking]
	}
	payloadLen := 8 + len(invoking)
	n := HeaderLen + payloadLen
	var pkt []byte
	if cap(scratch) >= n {
		pkt = scratch[:n]
	} else {
		pkt = make([]byte, n)
	}
	h := IPv6Header{NextHeader: ProtoICMPv6, HopLimit: hopLimit, Src: src, Dst: dst}
	putIPv6(pkt, &h, payloadLen)
	m := pkt[HeaderLen:]
	// Every byte is written explicitly (not relying on a zeroed
	// allocation) so reused scratch buffers produce identical packets.
	m[0], m[1] = typ, code
	m[2], m[3], m[4], m[5], m[6], m[7] = 0, 0, 0, 0, 0, 0
	copy(m[8:], invoking)
	binary.BigEndian.PutUint16(m[2:4], Checksum(src, dst, ProtoICMPv6, m))
	return pkt, nil
}

// BuildDestUnreach assembles a Destination Unreachable error in response
// to the invoking packet, per RFC 4443 section 3.1.
func BuildDestUnreach(src, dst ipv6.Addr, hopLimit, code uint8, invoking []byte) ([]byte, error) {
	return buildError(nil, ICMPDestUnreach, code, src, dst, hopLimit, invoking)
}

// AppendDestUnreach is BuildDestUnreach building into buf when its
// capacity suffices, for callers that recycle packet buffers.
func AppendDestUnreach(buf []byte, src, dst ipv6.Addr, hopLimit, code uint8, invoking []byte) ([]byte, error) {
	return buildError(buf, ICMPDestUnreach, code, src, dst, hopLimit, invoking)
}

// BuildTimeExceeded assembles a Time Exceeded error (hop limit exhausted)
// in response to the invoking packet, per RFC 4443 section 3.3.
func BuildTimeExceeded(src, dst ipv6.Addr, hopLimit uint8, invoking []byte) ([]byte, error) {
	return buildError(nil, ICMPTimeExceeded, TimeExceedHopLimit, src, dst, hopLimit, invoking)
}

// AppendTimeExceeded is BuildTimeExceeded building into buf when its
// capacity suffices, for callers that recycle packet buffers.
func AppendTimeExceeded(buf []byte, src, dst ipv6.Addr, hopLimit uint8, invoking []byte) ([]byte, error) {
	return buildError(buf, ICMPTimeExceeded, TimeExceedHopLimit, src, dst, hopLimit, invoking)
}

// BuildUDP assembles a complete IPv6 UDP packet in one allocation.
func BuildUDP(src, dst ipv6.Addr, hopLimit uint8, srcPort, dstPort uint16, payload []byte) ([]byte, error) {
	payloadLen := 8 + len(payload)
	if payloadLen > 0xffff {
		return nil, fmt.Errorf("wire: UDP payload too long: %d", len(payload))
	}
	pkt := make([]byte, HeaderLen+payloadLen)
	h := IPv6Header{NextHeader: ProtoUDP, HopLimit: hopLimit, Src: src, Dst: dst}
	putIPv6(pkt, &h, payloadLen)
	u := pkt[HeaderLen:]
	binary.BigEndian.PutUint16(u[0:2], srcPort)
	binary.BigEndian.PutUint16(u[2:4], dstPort)
	binary.BigEndian.PutUint16(u[4:6], uint16(payloadLen))
	copy(u[8:], payload)
	csum := Checksum(src, dst, ProtoUDP, u)
	if csum == 0 {
		csum = 0xffff // RFC 8200: zero checksum is forbidden for UDP/IPv6
	}
	binary.BigEndian.PutUint16(u[6:8], csum)
	return pkt, nil
}

// BuildTCP assembles a complete IPv6 TCP packet in one allocation.
func BuildTCP(src, dst ipv6.Addr, hopLimit uint8, t TCPHeader, payload []byte) ([]byte, error) {
	payloadLen := 20 + len(payload)
	if payloadLen > 0xffff {
		return nil, fmt.Errorf("wire: TCP payload too long: %d", len(payload))
	}
	pkt := make([]byte, HeaderLen+payloadLen)
	h := IPv6Header{NextHeader: ProtoTCP, HopLimit: hopLimit, Src: src, Dst: dst}
	putIPv6(pkt, &h, payloadLen)
	seg := pkt[HeaderLen:]
	binary.BigEndian.PutUint16(seg[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(seg[2:4], t.DstPort)
	binary.BigEndian.PutUint32(seg[4:8], t.Seq)
	binary.BigEndian.PutUint32(seg[8:12], t.Ack)
	seg[12] = 5 << 4 // data offset: 5 words
	seg[13] = t.Flags
	binary.BigEndian.PutUint16(seg[14:16], t.Window)
	copy(seg[20:], payload)
	binary.BigEndian.PutUint16(seg[16:18], Checksum(src, dst, ProtoTCP, seg))
	return pkt, nil
}

// Summary is a decoded view of a packet used by receive paths to dispatch
// without each caller re-walking the layers.
type Summary struct {
	IP IPv6Header
	// Exactly one of the following is populated, per IP.NextHeader.
	ICMP *ICMPv6
	UDP  *UDPHeader
	TCP  *TCPHeader
	// Payload is the layer-4 payload (ICMPv6 body, UDP data, TCP data).
	Payload []byte

	// Backing storage for the layer-4 pointers, so Parse fills a
	// caller-owned Summary without allocating per packet.
	icmp ICMPv6
	udp  UDPHeader
	tcp  TCPHeader
}

// Parse decodes an IPv6 packet one layer down into s, reusing s's
// storage. Receive loops keep one Summary across packets to stay off
// the heap; the layer-4 pointers and Payload alias b.
func (s *Summary) Parse(b []byte) error {
	h, payload, err := ParseIPv6(b)
	if err != nil {
		return err
	}
	s.IP = h
	s.ICMP, s.UDP, s.TCP, s.Payload = nil, nil, nil, nil
	switch h.NextHeader {
	case ProtoICMPv6:
		m, err := ParseICMPv6(h.Src, h.Dst, payload)
		if err != nil {
			return err
		}
		s.icmp = m
		s.ICMP = &s.icmp
		s.Payload = m.Body
	case ProtoUDP:
		u, data, err := ParseUDP(h.Src, h.Dst, payload)
		if err != nil {
			return err
		}
		s.udp = u
		s.UDP = &s.udp
		s.Payload = data
	case ProtoTCP:
		t, data, err := ParseTCP(h.Src, h.Dst, payload)
		if err != nil {
			return err
		}
		s.tcp = t
		s.TCP = &s.tcp
		s.Payload = data
	case ProtoNone:
		s.Payload = payload
	default:
		return fmt.Errorf("wire: unsupported next header %d", h.NextHeader)
	}
	return nil
}

// ParsePacket decodes an IPv6 packet one layer down.
func ParsePacket(b []byte) (*Summary, error) {
	s := new(Summary)
	if err := s.Parse(b); err != nil {
		return nil, err
	}
	return s, nil
}

// InvokingSummary decodes the invoking packet quoted inside an ICMPv6
// error message body. The quote may be truncated, so layer-4 checksum
// verification is skipped: only the IPv6 header and ports are recovered.
type InvokingSummary struct {
	IP      IPv6Header
	SrcPort uint16 // valid for quoted UDP/TCP
	DstPort uint16
	EchoID  uint16 // valid for quoted ICMPv6 echo
	EchoSeq uint16
}

// ParseInvoking decodes the (possibly truncated) invoking packet from an
// ICMPv6 error body.
func ParseInvoking(body []byte) (InvokingSummary, error) {
	eb, err := ParseErrorBody(body)
	if err != nil {
		return InvokingSummary{}, err
	}
	inv := eb.Invoking
	if len(inv) < HeaderLen {
		return InvokingSummary{}, fmt.Errorf("wire: quoted packet too short: %d bytes", len(inv))
	}
	if inv[0]>>4 != 6 {
		return InvokingSummary{}, fmt.Errorf("wire: quoted packet not IPv6")
	}
	var out InvokingSummary
	out.IP.TrafficClass = inv[0]<<4 | inv[1]>>4
	out.IP.NextHeader = inv[6]
	out.IP.HopLimit = inv[7]
	out.IP.Src = ipv6.AddrFromBytes(inv[8:24])
	out.IP.Dst = ipv6.AddrFromBytes(inv[24:40])
	l4 := inv[HeaderLen:]
	switch out.IP.NextHeader {
	case ProtoUDP, ProtoTCP:
		if len(l4) >= 4 {
			out.SrcPort = uint16(l4[0])<<8 | uint16(l4[1])
			out.DstPort = uint16(l4[2])<<8 | uint16(l4[3])
		}
	case ProtoICMPv6:
		if len(l4) >= 8 && (l4[0] == ICMPEchoRequest || l4[0] == ICMPEchoReply) {
			out.EchoID = uint16(l4[4])<<8 | uint16(l4[5])
			out.EchoSeq = uint16(l4[6])<<8 | uint16(l4[7])
		}
	}
	return out, nil
}
