package wire

import (
	"fmt"

	"repro/internal/ipv6"
)

// BuildEchoRequest assembles a complete IPv6 ICMPv6 Echo Request packet.
func BuildEchoRequest(src, dst ipv6.Addr, hopLimit uint8, id, seq uint16, data []byte) ([]byte, error) {
	e := Echo{ID: id, Seq: seq, Data: data}
	m := ICMPv6{Type: ICMPEchoRequest, Body: e.MarshalBody()}
	h := IPv6Header{NextHeader: ProtoICMPv6, HopLimit: hopLimit, Src: src, Dst: dst}
	return h.Marshal(m.Marshal(src, dst))
}

// BuildEchoReply assembles an Echo Reply mirroring the request's id/seq.
func BuildEchoReply(src, dst ipv6.Addr, hopLimit uint8, id, seq uint16, data []byte) ([]byte, error) {
	e := Echo{ID: id, Seq: seq, Data: data}
	m := ICMPv6{Type: ICMPEchoReply, Body: e.MarshalBody()}
	h := IPv6Header{NextHeader: ProtoICMPv6, HopLimit: hopLimit, Src: src, Dst: dst}
	return h.Marshal(m.Marshal(src, dst))
}

// BuildDestUnreach assembles a Destination Unreachable error in response
// to the invoking packet, per RFC 4443 section 3.1.
func BuildDestUnreach(src, dst ipv6.Addr, hopLimit, code uint8, invoking []byte) ([]byte, error) {
	body := ErrorBody{Invoking: invoking}
	m := ICMPv6{Type: ICMPDestUnreach, Code: code, Body: body.MarshalBody()}
	h := IPv6Header{NextHeader: ProtoICMPv6, HopLimit: hopLimit, Src: src, Dst: dst}
	return h.Marshal(m.Marshal(src, dst))
}

// BuildTimeExceeded assembles a Time Exceeded error (hop limit exhausted)
// in response to the invoking packet, per RFC 4443 section 3.3.
func BuildTimeExceeded(src, dst ipv6.Addr, hopLimit uint8, invoking []byte) ([]byte, error) {
	body := ErrorBody{Invoking: invoking}
	m := ICMPv6{Type: ICMPTimeExceeded, Code: TimeExceedHopLimit, Body: body.MarshalBody()}
	h := IPv6Header{NextHeader: ProtoICMPv6, HopLimit: hopLimit, Src: src, Dst: dst}
	return h.Marshal(m.Marshal(src, dst))
}

// BuildUDP assembles a complete IPv6 UDP packet.
func BuildUDP(src, dst ipv6.Addr, hopLimit uint8, srcPort, dstPort uint16, payload []byte) ([]byte, error) {
	u := UDPHeader{SrcPort: srcPort, DstPort: dstPort}
	seg, err := u.Marshal(src, dst, payload)
	if err != nil {
		return nil, err
	}
	h := IPv6Header{NextHeader: ProtoUDP, HopLimit: hopLimit, Src: src, Dst: dst}
	return h.Marshal(seg)
}

// BuildTCP assembles a complete IPv6 TCP packet.
func BuildTCP(src, dst ipv6.Addr, hopLimit uint8, t TCPHeader, payload []byte) ([]byte, error) {
	h := IPv6Header{NextHeader: ProtoTCP, HopLimit: hopLimit, Src: src, Dst: dst}
	return h.Marshal(t.Marshal(src, dst, payload))
}

// Summary is a decoded view of a packet used by receive paths to dispatch
// without each caller re-walking the layers.
type Summary struct {
	IP IPv6Header
	// Exactly one of the following is populated, per IP.NextHeader.
	ICMP *ICMPv6
	UDP  *UDPHeader
	TCP  *TCPHeader
	// Payload is the layer-4 payload (ICMPv6 body, UDP data, TCP data).
	Payload []byte
}

// ParsePacket decodes an IPv6 packet one layer down.
func ParsePacket(b []byte) (*Summary, error) {
	h, payload, err := ParseIPv6(b)
	if err != nil {
		return nil, err
	}
	s := &Summary{IP: h}
	switch h.NextHeader {
	case ProtoICMPv6:
		m, err := ParseICMPv6(h.Src, h.Dst, payload)
		if err != nil {
			return nil, err
		}
		s.ICMP = &m
		s.Payload = m.Body
	case ProtoUDP:
		u, data, err := ParseUDP(h.Src, h.Dst, payload)
		if err != nil {
			return nil, err
		}
		s.UDP = &u
		s.Payload = data
	case ProtoTCP:
		t, data, err := ParseTCP(h.Src, h.Dst, payload)
		if err != nil {
			return nil, err
		}
		s.TCP = &t
		s.Payload = data
	case ProtoNone:
		s.Payload = payload
	default:
		return nil, fmt.Errorf("wire: unsupported next header %d", h.NextHeader)
	}
	return s, nil
}

// InvokingSummary decodes the invoking packet quoted inside an ICMPv6
// error message body. The quote may be truncated, so layer-4 checksum
// verification is skipped: only the IPv6 header and ports are recovered.
type InvokingSummary struct {
	IP      IPv6Header
	SrcPort uint16 // valid for quoted UDP/TCP
	DstPort uint16
	EchoID  uint16 // valid for quoted ICMPv6 echo
	EchoSeq uint16
}

// ParseInvoking decodes the (possibly truncated) invoking packet from an
// ICMPv6 error body.
func ParseInvoking(body []byte) (InvokingSummary, error) {
	eb, err := ParseErrorBody(body)
	if err != nil {
		return InvokingSummary{}, err
	}
	inv := eb.Invoking
	if len(inv) < HeaderLen {
		return InvokingSummary{}, fmt.Errorf("wire: quoted packet too short: %d bytes", len(inv))
	}
	if inv[0]>>4 != 6 {
		return InvokingSummary{}, fmt.Errorf("wire: quoted packet not IPv6")
	}
	var out InvokingSummary
	out.IP.TrafficClass = inv[0]<<4 | inv[1]>>4
	out.IP.NextHeader = inv[6]
	out.IP.HopLimit = inv[7]
	out.IP.Src = ipv6.AddrFromBytes(inv[8:24])
	out.IP.Dst = ipv6.AddrFromBytes(inv[24:40])
	l4 := inv[HeaderLen:]
	switch out.IP.NextHeader {
	case ProtoUDP, ProtoTCP:
		if len(l4) >= 4 {
			out.SrcPort = uint16(l4[0])<<8 | uint16(l4[1])
			out.DstPort = uint16(l4[2])<<8 | uint16(l4[3])
		}
	case ProtoICMPv6:
		if len(l4) >= 8 && (l4[0] == ICMPEchoRequest || l4[0] == ICMPEchoReply) {
			out.EchoID = uint16(l4[4])<<8 | uint16(l4[5])
			out.EchoSeq = uint16(l4[6])<<8 | uint16(l4[7])
		}
	}
	return out, nil
}
