package wire

import (
	"testing"
	"testing/quick"
)

var (
	v4Src = IPv4AddrFrom(198, 51, 100, 7)
	v4Dst = IPv4AddrFrom(203, 0, 113, 42)
)

func TestIPv4AddrString(t *testing.T) {
	if got := v4Src.String(); got != "198.51.100.7" {
		t.Errorf("String = %q", got)
	}
	if got := IPv4Addr(0).String(); got != "0.0.0.0" {
		t.Errorf("zero = %q", got)
	}
}

func TestIPv4HeaderRoundTrip(t *testing.T) {
	f := func(tos uint8, id uint16, ttl, proto uint8, src, dst uint32, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		h := IPv4Header{TOS: tos, ID: id, TTL: ttl, Protocol: proto, Src: IPv4Addr(src), Dst: IPv4Addr(dst)}
		b, err := h.Marshal(payload)
		if err != nil {
			return false
		}
		got, pl, err := ParseIPv4(b)
		if err != nil {
			return false
		}
		if got != h || len(pl) != len(payload) {
			return false
		}
		for i := range pl {
			if pl[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseIPv4Rejects(t *testing.T) {
	h := IPv4Header{TTL: 64, Protocol: 1, Src: v4Src, Dst: v4Dst}
	good, err := h.Marshal([]byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParseIPv4(good[:10]); err == nil {
		t.Error("short packet accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 6 << 4
	if _, _, err := ParseIPv4(bad); err == nil {
		t.Error("IPv6 version accepted")
	}
	bad2 := append([]byte(nil), good...)
	bad2[8] ^= 0xff // corrupt TTL without fixing checksum
	if _, _, err := ParseIPv4(bad2); err == nil {
		t.Error("checksum corruption accepted")
	}
}

func TestEcho4RoundTrip(t *testing.T) {
	pkt, err := BuildEchoRequest4(v4Src, v4Dst, 64, 0xbeef, 9, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParsePacket4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if s.ICMP.Type != ICMP4EchoRequest || s.EchoID != 0xbeef || s.EchoSeq != 9 {
		t.Errorf("summary = %+v", s)
	}
	if s.IP.Src != v4Src || s.IP.Dst != v4Dst {
		t.Errorf("addrs = %s -> %s", s.IP.Src, s.IP.Dst)
	}
}

func TestICMP4ChecksumRejected(t *testing.T) {
	pkt, err := BuildEchoRequest4(v4Src, v4Dst, 64, 1, 1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	pkt[len(pkt)-1] ^= 0x1
	if _, err := ParsePacket4(pkt); err == nil {
		t.Error("corrupted ICMPv4 accepted")
	}
}

func TestICMP4ErrorQuote(t *testing.T) {
	probe, err := BuildEchoRequest4(v4Src, v4Dst, 64, 0xcafe, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	router := IPv4AddrFrom(10, 0, 0, 1)
	errPkt, err := BuildICMP4Error(router, v4Src, ICMP4TimeExceeded, 0, probe)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParsePacket4(errPkt)
	if err != nil {
		t.Fatal(err)
	}
	if s.ICMP.Type != ICMP4TimeExceeded {
		t.Fatalf("type = %d", s.ICMP.Type)
	}
	if s.Quoted == nil || s.Quoted.Dst != v4Dst || s.Quoted.Src != v4Src {
		t.Fatalf("quoted = %+v", s.Quoted)
	}
	if !s.QuotedEchoValid || s.QuotedEchoID != 0xcafe || s.QuotedEchoSeq != 3 {
		t.Errorf("quoted echo = %v %x/%d", s.QuotedEchoValid, s.QuotedEchoID, s.QuotedEchoSeq)
	}
	// The quote is truncated to header + 8 bytes per RFC 792.
	if len(s.ICMP.Body) > 4+IPv4HeaderLen+8 {
		t.Errorf("quote too long: %d", len(s.ICMP.Body))
	}
}

func TestChecksum16Zeroes(t *testing.T) {
	b := []byte{0x45, 0x00, 0x00, 0x1c, 0, 0, 0, 0, 64, 1, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8}
	c := checksum16(b)
	b[10], b[11] = byte(c>>8), byte(c)
	if checksum16(b) != 0 {
		t.Error("checksum does not verify to zero")
	}
}
