// Package wire implements the on-the-wire packet formats the scanner and
// the network simulator exchange: the fixed IPv6 header (RFC 8200),
// ICMPv6 (RFC 4443), UDP and TCP headers, and the IPv6 pseudo-header
// checksum. Packets cross the xmap.Driver boundary as raw bytes, so both
// sides round-trip through these codecs exactly as a real deployment
// round-trips through the kernel and NIC.
package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ipv6"
)

// IPv6 next-header (protocol) numbers used in this repository.
const (
	ProtoTCP    = 6
	ProtoUDP    = 17
	ProtoICMPv6 = 58
	ProtoNone   = 59
)

// HeaderLen is the length of the fixed IPv6 header.
const HeaderLen = 40

// MaxHopLimit is the maximum value of the Hop Limit field.
const MaxHopLimit = 255

// IPv6Header is the fixed 40-byte IPv6 header.
type IPv6Header struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     ipv6.Addr
}

// Marshal appends the header followed by payload and returns the packet.
// The payload length field is computed from payload.
func (h *IPv6Header) Marshal(payload []byte) ([]byte, error) {
	if len(payload) > 0xffff {
		return nil, fmt.Errorf("wire: payload length %d exceeds 65535", len(payload))
	}
	if h.FlowLabel > 0xfffff {
		return nil, fmt.Errorf("wire: flow label %#x exceeds 20 bits", h.FlowLabel)
	}
	b := make([]byte, HeaderLen+len(payload))
	b[0] = 6<<4 | h.TrafficClass>>4
	b[1] = h.TrafficClass<<4 | uint8(h.FlowLabel>>16)
	binary.BigEndian.PutUint16(b[2:4], uint16(h.FlowLabel))
	binary.BigEndian.PutUint16(b[4:6], uint16(len(payload)))
	b[6] = h.NextHeader
	b[7] = h.HopLimit
	src, dst := h.Src.Bytes(), h.Dst.Bytes()
	copy(b[8:24], src[:])
	copy(b[24:40], dst[:])
	copy(b[40:], payload)
	return b, nil
}

// ParseIPv6 decodes the fixed header and returns it with the payload
// slice (aliasing b). The payload is truncated to the header's payload
// length; packets shorter than that length are rejected.
func ParseIPv6(b []byte) (IPv6Header, []byte, error) {
	if len(b) < HeaderLen {
		return IPv6Header{}, nil, fmt.Errorf("wire: packet too short for IPv6 header: %d bytes", len(b))
	}
	if b[0]>>4 != 6 {
		return IPv6Header{}, nil, fmt.Errorf("wire: IP version %d, want 6", b[0]>>4)
	}
	var h IPv6Header
	h.TrafficClass = b[0]<<4 | b[1]>>4
	h.FlowLabel = uint32(b[1]&0x0f)<<16 | uint32(binary.BigEndian.Uint16(b[2:4]))
	plen := int(binary.BigEndian.Uint16(b[4:6]))
	h.NextHeader = b[6]
	h.HopLimit = b[7]
	h.Src = ipv6.AddrFromBytes(b[8:24])
	h.Dst = ipv6.AddrFromBytes(b[24:40])
	if len(b)-HeaderLen < plen {
		return IPv6Header{}, nil, fmt.Errorf("wire: truncated payload: have %d, header says %d", len(b)-HeaderLen, plen)
	}
	return h, b[HeaderLen : HeaderLen+plen], nil
}

// ForwardDst extracts just the destination address of an IPv6 packet,
// applying the same version/length validation as ParseIPv6. Transit
// nodes route on the destination alone, and skipping the rest of the
// header materialization matters on the per-hop fast path.
func ForwardDst(b []byte) (ipv6.Addr, bool) {
	if len(b) < HeaderLen || b[0]>>4 != 6 {
		return ipv6.Addr{}, false
	}
	if len(b)-HeaderLen < int(binary.BigEndian.Uint16(b[4:6])) {
		return ipv6.Addr{}, false
	}
	return ipv6.AddrFromBytes(b[24:40]), true
}

// Checksum computes the Internet checksum (RFC 1071) of the upper-layer
// packet body over the IPv6 pseudo-header (RFC 8200 section 8.1).
func Checksum(src, dst ipv6.Addr, proto uint8, body []byte) uint16 {
	return FoldSum(PseudoSum(src, dst, proto, len(body)) + SumWords(body))
}

// PseudoSum returns the partial checksum sum of the IPv6 pseudo-header
// for an upper-layer packet of the given length. Combine with SumWords
// partial sums and finish with FoldSum; incremental callers (the
// simulator's compiled error templates) cache it so only the varying
// byte region is re-summed per packet.
func PseudoSum(src, dst ipv6.Addr, proto uint8, length int) uint64 {
	// Accumulate 32-bit words: 2^16 ≡ 1 (mod 65535), so the end-around
	// fold in FoldSum reduces a sum of 32-bit words to the same value as
	// the RFC's 16-bit word sum, at half the loop iterations.
	// Eight-byte reads, added as two 32-bit words each: at most
	// ~2^32 such adds fit in the uint64 accumulator, far beyond any
	// packet, so no intermediate folding is needed.
	var sum uint64
	s, d := src.Bytes(), dst.Bytes()
	for i := 0; i < 16; i += 8 {
		v := binary.BigEndian.Uint64(s[i : i+8])
		w := binary.BigEndian.Uint64(d[i : i+8])
		sum += v>>32 + v&0xffffffff + w>>32 + w&0xffffffff
	}
	return sum + uint64(length) + uint64(proto)
}

// SumWords returns the partial 16-bit-word sum of b. Sums over disjoint
// regions add as long as every region but the last starts and ends on a
// 16-bit boundary.
func SumWords(b []byte) uint64 {
	var sum uint64
	for len(b) >= 8 {
		v := binary.BigEndian.Uint64(b[:8])
		sum += v>>32 + v&0xffffffff
		b = b[8:]
	}
	if len(b) >= 4 {
		sum += uint64(binary.BigEndian.Uint32(b[:4]))
		b = b[4:]
	}
	if len(b) >= 2 {
		sum += uint64(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint64(b[0]) << 8
	}
	return sum
}

// FoldSum reduces a partial sum to the final complemented 16-bit
// Internet checksum.
func FoldSum(sum uint64) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// ICMPv6 message types (RFC 4443).
const (
	ICMPDestUnreach  = 1
	ICMPPacketTooBig = 2
	ICMPTimeExceeded = 3
	ICMPParamProblem = 4
	ICMPEchoRequest  = 128
	ICMPEchoReply    = 129
)

// ICMPv6 Destination Unreachable codes (RFC 4443 section 3.1).
const (
	UnreachNoRoute       = 0
	UnreachAdminProhibit = 1
	UnreachBeyondScope   = 2
	UnreachAddress       = 3
	UnreachPort          = 4
	UnreachPolicyFail    = 5
	UnreachRejectRoute   = 6
)

// ICMPv6 Time Exceeded codes (RFC 4443 section 3.3).
const (
	TimeExceedHopLimit = 0
	TimeExceedReasm    = 1
)

// ICMPv6 is a generic ICMPv6 message. Body excludes the 4-byte
// type/code/checksum header.
type ICMPv6 struct {
	Type, Code uint8
	Body       []byte
}

// Marshal serializes m with a checksum computed over the pseudo-header
// for the given endpoints.
func (m *ICMPv6) Marshal(src, dst ipv6.Addr) []byte {
	b := make([]byte, 4+len(m.Body))
	b[0], b[1] = m.Type, m.Code
	copy(b[4:], m.Body)
	csum := Checksum(src, dst, ProtoICMPv6, b)
	binary.BigEndian.PutUint16(b[2:4], csum)
	return b
}

// ParseICMPv6 decodes an ICMPv6 message and verifies its checksum against
// the pseudo-header of the enclosing packet.
func ParseICMPv6(src, dst ipv6.Addr, b []byte) (ICMPv6, error) {
	if len(b) < 8 {
		return ICMPv6{}, fmt.Errorf("wire: ICMPv6 message too short: %d bytes", len(b))
	}
	if Checksum(src, dst, ProtoICMPv6, b) != 0 {
		return ICMPv6{}, fmt.Errorf("wire: ICMPv6 checksum mismatch")
	}
	return ICMPv6{Type: b[0], Code: b[1], Body: b[4:]}, nil
}

// Echo is the body of an ICMPv6 Echo Request/Reply.
type Echo struct {
	ID, Seq uint16
	Data    []byte
}

// MarshalBody serializes the echo body (identifier, sequence, data).
func (e *Echo) MarshalBody() []byte {
	b := make([]byte, 4+len(e.Data))
	binary.BigEndian.PutUint16(b[0:2], e.ID)
	binary.BigEndian.PutUint16(b[2:4], e.Seq)
	copy(b[4:], e.Data)
	return b
}

// ParseEcho decodes an echo body.
func ParseEcho(body []byte) (Echo, error) {
	if len(body) < 4 {
		return Echo{}, fmt.Errorf("wire: echo body too short: %d bytes", len(body))
	}
	return Echo{
		ID:   binary.BigEndian.Uint16(body[0:2]),
		Seq:  binary.BigEndian.Uint16(body[2:4]),
		Data: body[4:],
	}, nil
}

// ErrorBody is the body of Destination Unreachable / Time Exceeded
// messages: 4 unused bytes then as much of the invoking packet as fits
// within the minimum MTU (RFC 4443: as much as possible without exceeding
// 1280 bytes for the whole error packet).
type ErrorBody struct {
	Invoking []byte // the offending packet, possibly truncated
}

// maxInvoking keeps the error packet (40 IPv6 + 8 ICMPv6) within 1280.
const maxInvoking = 1280 - HeaderLen - 8

// MarshalBody serializes the error body, truncating the invoking packet.
func (e *ErrorBody) MarshalBody() []byte {
	inv := e.Invoking
	if len(inv) > maxInvoking {
		inv = inv[:maxInvoking]
	}
	b := make([]byte, 4+len(inv))
	copy(b[4:], inv)
	return b
}

// ParseErrorBody decodes the body of an ICMPv6 error message.
func ParseErrorBody(body []byte) (ErrorBody, error) {
	if len(body) < 4 {
		return ErrorBody{}, fmt.Errorf("wire: ICMPv6 error body too short: %d bytes", len(body))
	}
	return ErrorBody{Invoking: body[4:]}, nil
}

// UDPHeader is the 8-byte UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
}

// Marshal serializes the UDP datagram with checksum.
func (u *UDPHeader) Marshal(src, dst ipv6.Addr, payload []byte) ([]byte, error) {
	if 8+len(payload) > 0xffff {
		return nil, fmt.Errorf("wire: UDP payload too long: %d", len(payload))
	}
	b := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(8+len(payload)))
	copy(b[8:], payload)
	csum := Checksum(src, dst, ProtoUDP, b)
	if csum == 0 {
		csum = 0xffff // RFC 8200: zero checksum is forbidden for UDP/IPv6
	}
	binary.BigEndian.PutUint16(b[6:8], csum)
	return b, nil
}

// ParseUDP decodes a UDP datagram and verifies length and checksum.
func ParseUDP(src, dst ipv6.Addr, b []byte) (UDPHeader, []byte, error) {
	if len(b) < 8 {
		return UDPHeader{}, nil, fmt.Errorf("wire: UDP datagram too short: %d bytes", len(b))
	}
	ln := int(binary.BigEndian.Uint16(b[4:6]))
	if ln < 8 || ln > len(b) {
		return UDPHeader{}, nil, fmt.Errorf("wire: UDP length field %d invalid for %d bytes", ln, len(b))
	}
	if Checksum(src, dst, ProtoUDP, b[:ln]) != 0 {
		return UDPHeader{}, nil, fmt.Errorf("wire: UDP checksum mismatch")
	}
	h := UDPHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
	}
	return h, b[8:ln], nil
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
)

// TCPHeader is a 20-byte TCP header (no options).
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

// Marshal serializes the TCP segment with checksum.
func (t *TCPHeader) Marshal(src, dst ipv6.Addr, payload []byte) []byte {
	b := make([]byte, 20+len(payload))
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = 5 << 4 // data offset: 5 words
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	copy(b[20:], payload)
	csum := Checksum(src, dst, ProtoTCP, b)
	binary.BigEndian.PutUint16(b[16:18], csum)
	return b
}

// ParseTCP decodes a TCP segment, verifying the checksum and skipping any
// options indicated by the data offset.
func ParseTCP(src, dst ipv6.Addr, b []byte) (TCPHeader, []byte, error) {
	if len(b) < 20 {
		return TCPHeader{}, nil, fmt.Errorf("wire: TCP segment too short: %d bytes", len(b))
	}
	if Checksum(src, dst, ProtoTCP, b) != 0 {
		return TCPHeader{}, nil, fmt.Errorf("wire: TCP checksum mismatch")
	}
	off := int(b[12]>>4) * 4
	if off < 20 || off > len(b) {
		return TCPHeader{}, nil, fmt.Errorf("wire: TCP data offset %d invalid", off)
	}
	h := TCPHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		Flags:   b[13],
		Window:  binary.BigEndian.Uint16(b[14:16]),
	}
	return h, b[off:], nil
}
