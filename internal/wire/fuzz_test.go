package wire

import (
	"math/rand"
	"testing"
)

// FuzzParsePacket must never panic on arbitrary bytes; errors are fine.
func FuzzParsePacket(f *testing.F) {
	good, err := BuildEchoRequest(srcA, dstA, 64, 1, 1, []byte("seed"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	udp, err := BuildUDP(srcA, dstA, 64, 1000, 53, []byte("q"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(udp)
	tcp, err := BuildTCP(srcA, dstA, 64, TCPHeader{SrcPort: 1, DstPort: 2, Flags: TCPSyn}, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tcp)
	f.Add([]byte{})
	f.Add([]byte{0x60})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParsePacket(data)
	})
}

// FuzzParsePacket4 covers the IPv4 decoder.
func FuzzParsePacket4(f *testing.F) {
	good, err := BuildEchoRequest4(v4Src, v4Dst, 64, 1, 1, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	errPkt, err := BuildICMP4Error(v4Src, v4Dst, ICMP4TimeExceeded, 0, good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(errPkt)
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParsePacket4(data)
	})
}

// FuzzParseInvoking covers the quoted-packet decoder.
func FuzzParseInvoking(f *testing.F) {
	probe, err := BuildEchoRequest(srcA, dstA, 64, 2, 2, nil)
	if err != nil {
		f.Fatal(err)
	}
	body := (&ErrorBody{Invoking: probe}).MarshalBody()
	f.Add(body)
	f.Add(body[:10])
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseInvoking(data)
	})
}

// TestParsersSurviveRandomBytes hammers every decoder with deterministic
// garbage; absence of panics is the assertion.
func TestParsersSurviveRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		n := rng.Intn(200)
		b := make([]byte, n)
		rng.Read(b)
		_, _ = ParsePacket(b)
		_, _ = ParsePacket4(b)
		_, _ = ParseInvoking(b)
		_, _ = ParseEcho(b)
		_, _ = ParseErrorBody(b)
		_, _, _ = ParseUDP(srcA, dstA, b)
		_, _, _ = ParseTCP(srcA, dstA, b)
		_, _ = ParseICMPv6(srcA, dstA, b)
		_, _ = ParseICMPv4(b)
	}
}

// TestMutatedValidPackets flips bits in valid packets: decoders must
// reject or decode, never panic.
func TestMutatedValidPackets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	builders := []func() ([]byte, error){
		func() ([]byte, error) { return BuildEchoRequest(srcA, dstA, 64, 1, 2, []byte("abc")) },
		func() ([]byte, error) { return BuildUDP(srcA, dstA, 64, 5, 53, []byte("payload")) },
		func() ([]byte, error) {
			return BuildTCP(srcA, dstA, 64, TCPHeader{SrcPort: 9, DstPort: 80, Flags: TCPSyn | TCPAck}, []byte("x"))
		},
		func() ([]byte, error) {
			inner, err := BuildEchoRequest(srcA, dstA, 64, 3, 4, nil)
			if err != nil {
				return nil, err
			}
			return BuildDestUnreach(dstA, srcA, 255, UnreachAddress, inner)
		},
	}
	for _, build := range builders {
		for trial := 0; trial < 2000; trial++ {
			pkt, err := build()
			if err != nil {
				t.Fatal(err)
			}
			// Flip 1-4 random bits.
			for k := 0; k < 1+rng.Intn(4); k++ {
				i := rng.Intn(len(pkt))
				pkt[i] ^= 1 << rng.Intn(8)
			}
			_, _ = ParsePacket(pkt)
		}
	}
}
