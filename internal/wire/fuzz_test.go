package wire

import (
	"math/rand"
	"testing"

	"repro/internal/ipv6"
)

// FuzzParsePacket must never panic on arbitrary bytes; errors are fine.
func FuzzParsePacket(f *testing.F) {
	good, err := BuildEchoRequest(srcA, dstA, 64, 1, 1, []byte("seed"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	udp, err := BuildUDP(srcA, dstA, 64, 1000, 53, []byte("q"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(udp)
	tcp, err := BuildTCP(srcA, dstA, 64, TCPHeader{SrcPort: 1, DstPort: 2, Flags: TCPSyn}, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tcp)
	f.Add([]byte{})
	f.Add([]byte{0x60})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParsePacket(data)
	})
}

// FuzzParsePacket4 covers the IPv4 decoder.
func FuzzParsePacket4(f *testing.F) {
	good, err := BuildEchoRequest4(v4Src, v4Dst, 64, 1, 1, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	errPkt, err := BuildICMP4Error(v4Src, v4Dst, ICMP4TimeExceeded, 0, good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(errPkt)
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParsePacket4(data)
	})
}

// FuzzParseInvoking covers the quoted-packet decoder.
func FuzzParseInvoking(f *testing.F) {
	probe, err := BuildEchoRequest(srcA, dstA, 64, 2, 2, nil)
	if err != nil {
		f.Fatal(err)
	}
	body := (&ErrorBody{Invoking: probe}).MarshalBody()
	f.Add(body)
	f.Add(body[:10])
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseInvoking(data)
	})
}

// FuzzParseICMPv6Error covers the scanner's reply-validation chain —
// the checksum-verifying ICMPv6 parse plus the quoted-packet decode —
// which every hostile reply reaches. The corpus mirrors the malformed
// responder model: corrupted checksum, truncated body, forged embedded
// quote, plus oversized and stub inputs. Errors are fine; panics never.
func FuzzParseICMPv6Error(f *testing.F) {
	inner, err := BuildEchoRequest(srcA, dstA, 64, 7, 9, []byte("quote"))
	if err != nil {
		f.Fatal(err)
	}
	good, err := BuildDestUnreach(dstA, srcA, 255, UnreachAddress, inner)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	// Malformed variant 0: one checksum byte flipped.
	bad := append([]byte(nil), good...)
	bad[HeaderLen+2] ^= 0xff
	f.Add(bad)
	// Malformed variant 1: truncated to a 4-byte ICMPv6 stub, payload
	// length patched to match.
	trunc := append([]byte(nil), good[:HeaderLen+4]...)
	trunc[4], trunc[5] = 0, 4
	f.Add(trunc)
	// Malformed variant 2: checksum-valid error quoting a forged inner
	// source (the strict embedded-quote check's target).
	forged, err := BuildEchoRequest(dstA, dstA, 64, 7, 9, []byte("quote"))
	if err != nil {
		f.Fatal(err)
	}
	forgedErr, err := BuildDestUnreach(dstA, srcA, 255, UnreachAddress, forged)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(forgedErr)
	// Oversized: trailing junk past the declared payload length.
	f.Add(append(append([]byte(nil), good...), make([]byte, 2000)...))
	f.Add(good[:HeaderLen])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Summary
		if err := s.Parse(data); err == nil && s.ICMP != nil && s.ICMP.Type < 128 {
			_, _ = ParseInvoking(s.ICMP.Body)
		}
		if len(data) >= HeaderLen {
			src := ipv6.AddrFromBytes(data[8:24])
			dst := ipv6.AddrFromBytes(data[24:40])
			if m, err := ParseICMPv6(src, dst, data[HeaderLen:]); err == nil && m.Type < 128 {
				_, _ = ParseErrorBody(m.Body)
			}
		}
	})
}

// TestParsersSurviveRandomBytes hammers every decoder with deterministic
// garbage; absence of panics is the assertion.
func TestParsersSurviveRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		n := rng.Intn(200)
		b := make([]byte, n)
		rng.Read(b)
		_, _ = ParsePacket(b)
		_, _ = ParsePacket4(b)
		_, _ = ParseInvoking(b)
		_, _ = ParseEcho(b)
		_, _ = ParseErrorBody(b)
		_, _, _ = ParseUDP(srcA, dstA, b)
		_, _, _ = ParseTCP(srcA, dstA, b)
		_, _ = ParseICMPv6(srcA, dstA, b)
		_, _ = ParseICMPv4(b)
	}
}

// TestMutatedValidPackets flips bits in valid packets: decoders must
// reject or decode, never panic.
func TestMutatedValidPackets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	builders := []func() ([]byte, error){
		func() ([]byte, error) { return BuildEchoRequest(srcA, dstA, 64, 1, 2, []byte("abc")) },
		func() ([]byte, error) { return BuildUDP(srcA, dstA, 64, 5, 53, []byte("payload")) },
		func() ([]byte, error) {
			return BuildTCP(srcA, dstA, 64, TCPHeader{SrcPort: 9, DstPort: 80, Flags: TCPSyn | TCPAck}, []byte("x"))
		},
		func() ([]byte, error) {
			inner, err := BuildEchoRequest(srcA, dstA, 64, 3, 4, nil)
			if err != nil {
				return nil, err
			}
			return BuildDestUnreach(dstA, srcA, 255, UnreachAddress, inner)
		},
	}
	for _, build := range builders {
		for trial := 0; trial < 2000; trial++ {
			pkt, err := build()
			if err != nil {
				t.Fatal(err)
			}
			// Flip 1-4 random bits.
			for k := 0; k < 1+rng.Intn(4); k++ {
				i := rng.Intn(len(pkt))
				pkt[i] ^= 1 << rng.Intn(8)
			}
			_, _ = ParsePacket(pkt)
		}
	}
}
