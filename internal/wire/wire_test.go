package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ipv6"
	"repro/internal/uint128"
)

var (
	srcA = ipv6.MustParseAddr("2001:db8::1")
	dstA = ipv6.MustParseAddr("2001:db8:1234:5678:aaaa:bbbb:cccc:dddd")
)

func randAddr(r *rand.Rand) ipv6.Addr {
	return ipv6.AddrFrom128(uint128.New(r.Uint64(), r.Uint64()))
}

func TestIPv6HeaderRoundTrip(t *testing.T) {
	f := func(tc uint8, fl uint32, nh, hl uint8, srcHi, srcLo, dstHi, dstLo uint64, payload []byte) bool {
		h := IPv6Header{
			TrafficClass: tc,
			FlowLabel:    fl & 0xfffff,
			NextHeader:   nh,
			HopLimit:     hl,
			Src:          ipv6.AddrFrom128(uint128.New(srcHi, srcLo)),
			Dst:          ipv6.AddrFrom128(uint128.New(dstHi, dstLo)),
		}
		b, err := h.Marshal(payload)
		if err != nil {
			return len(payload) > 0xffff
		}
		got, pl, err := ParseIPv6(b)
		return err == nil && got == h && bytes.Equal(pl, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseIPv6Rejects(t *testing.T) {
	h := IPv6Header{NextHeader: ProtoNone, HopLimit: 64, Src: srcA, Dst: dstA}
	good, err := h.Marshal([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	// Too short.
	if _, _, err := ParseIPv6(good[:20]); err == nil {
		t.Error("short packet accepted")
	}
	// Wrong version.
	bad := append([]byte(nil), good...)
	bad[0] = 4 << 4
	if _, _, err := ParseIPv6(bad); err == nil {
		t.Error("IPv4 version accepted")
	}
	// Truncated payload.
	bad2 := append([]byte(nil), good...)
	if _, _, err := ParseIPv6(bad2[:len(bad2)-2]); err == nil {
		t.Error("truncated payload accepted")
	}
	// Flow label overflow at marshal.
	h2 := h
	h2.FlowLabel = 1 << 20
	if _, err := h2.Marshal(nil); err == nil {
		t.Error("oversized flow label accepted")
	}
}

func TestChecksumVerifiesToZero(t *testing.T) {
	f := func(body []byte, proto uint8) bool {
		if len(body) < 2 {
			return true
		}
		// Zero the checksum slot, compute, insert, re-sum must be 0.
		b := append([]byte(nil), body...)
		b[0], b[1] = 0, 0
		c := Checksum(srcA, dstA, proto, b)
		b[0], b[1] = byte(c>>8), byte(c)
		return Checksum(srcA, dstA, proto, b) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length bodies are padded with a zero byte per RFC 1071.
	a := Checksum(srcA, dstA, ProtoUDP, []byte{0xab})
	b := Checksum(srcA, dstA, ProtoUDP, []byte{0xab, 0x00})
	// The lengths differ, so sums differ by the length field; just check
	// both run and the one-byte case matches a hand computation of the
	// same body zero-padded with adjusted length.
	if a == 0 || b == 0 {
		t.Error("degenerate checksum")
	}
}

func TestEchoRoundTrip(t *testing.T) {
	pkt, err := BuildEchoRequest(srcA, dstA, 64, 0x1234, 7, []byte("probe-data"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParsePacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if s.ICMP == nil || s.ICMP.Type != ICMPEchoRequest || s.ICMP.Code != 0 {
		t.Fatalf("bad ICMP layer: %+v", s.ICMP)
	}
	e, err := ParseEcho(s.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != 0x1234 || e.Seq != 7 || string(e.Data) != "probe-data" {
		t.Errorf("echo = %+v", e)
	}
}

func TestICMPChecksumRejected(t *testing.T) {
	pkt, err := BuildEchoRequest(srcA, dstA, 64, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	pkt[len(pkt)-1] ^= 0xff // corrupt
	if _, err := ParsePacket(pkt); err == nil {
		t.Error("corrupted ICMPv6 accepted")
	}
}

func TestDestUnreachQuotesInvoking(t *testing.T) {
	probe, err := BuildEchoRequest(srcA, dstA, 64, 0xbeef, 42, []byte("xyz"))
	if err != nil {
		t.Fatal(err)
	}
	router := ipv6.MustParseAddr("2001:db8:1234:5678::ce")
	errPkt, err := BuildDestUnreach(router, srcA, 255, UnreachAddress, probe)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParsePacket(errPkt)
	if err != nil {
		t.Fatal(err)
	}
	if s.ICMP.Type != ICMPDestUnreach || s.ICMP.Code != UnreachAddress {
		t.Fatalf("type/code = %d/%d", s.ICMP.Type, s.ICMP.Code)
	}
	inv, err := ParseInvoking(s.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if inv.IP.Src != srcA || inv.IP.Dst != dstA {
		t.Errorf("invoking src/dst = %s/%s", inv.IP.Src, inv.IP.Dst)
	}
	if inv.EchoID != 0xbeef || inv.EchoSeq != 42 {
		t.Errorf("invoking echo id/seq = %x/%d", inv.EchoID, inv.EchoSeq)
	}
}

func TestErrorBodyTruncatesTo1280(t *testing.T) {
	big := make([]byte, 2000)
	for i := range big {
		big[i] = byte(i)
	}
	e := ErrorBody{Invoking: big}
	body := e.MarshalBody()
	if len(body) != 4+maxInvoking {
		t.Errorf("body length = %d, want %d", len(body), 4+maxInvoking)
	}
	// Total error packet must not exceed the IPv6 minimum MTU.
	pkt, err := BuildTimeExceeded(srcA, dstA, 255, big)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) > 1280 {
		t.Errorf("error packet %d bytes exceeds 1280", len(pkt))
	}
}

func TestUDPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		pkt, err := BuildUDP(srcA, dstA, 64, sp, dp, payload)
		if err != nil {
			return false
		}
		s, err := ParsePacket(pkt)
		if err != nil {
			return false
		}
		return s.UDP.SrcPort == sp && s.UDP.DstPort == dp && bytes.Equal(s.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUDPChecksumRejected(t *testing.T) {
	pkt, err := BuildUDP(srcA, dstA, 64, 1000, 53, []byte("query"))
	if err != nil {
		t.Fatal(err)
	}
	pkt[len(pkt)-1] ^= 0x55
	if _, err := ParsePacket(pkt); err == nil {
		t.Error("corrupted UDP accepted")
	}
}

func TestUDPBadLengthField(t *testing.T) {
	pkt, err := BuildUDP(srcA, dstA, 64, 1, 2, []byte("abcd"))
	if err != nil {
		t.Fatal(err)
	}
	_, payload, err := ParseIPv6(pkt)
	if err != nil {
		t.Fatal(err)
	}
	seg := append([]byte(nil), payload...)
	seg[4], seg[5] = 0xff, 0xff // length > segment
	if _, _, err := ParseUDP(srcA, dstA, seg); err == nil {
		t.Error("bad UDP length accepted")
	}
	seg[4], seg[5] = 0, 4 // length < 8
	if _, _, err := ParseUDP(srcA, dstA, seg); err == nil {
		t.Error("undersized UDP length accepted")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		th := TCPHeader{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags, Window: win}
		pkt, err := BuildTCP(srcA, dstA, 64, th, payload)
		if err != nil {
			return false
		}
		s, err := ParsePacket(pkt)
		if err != nil {
			return false
		}
		return *s.TCP == th && bytes.Equal(s.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTCPChecksumRejected(t *testing.T) {
	th := TCPHeader{SrcPort: 40000, DstPort: 80, Seq: 99, Flags: TCPSyn, Window: 65535}
	pkt, err := BuildTCP(srcA, dstA, 64, th, nil)
	if err != nil {
		t.Fatal(err)
	}
	pkt[45] ^= 0x01
	if _, err := ParsePacket(pkt); err == nil {
		t.Error("corrupted TCP accepted")
	}
}

func TestParsePacketUnknownProto(t *testing.T) {
	h := IPv6Header{NextHeader: 250, HopLimit: 1, Src: srcA, Dst: dstA}
	pkt, err := h.Marshal([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParsePacket(pkt); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestParseInvokingTruncatedQuote(t *testing.T) {
	// A quote shorter than one IPv6 header is rejected.
	body := make([]byte, 4+20)
	if _, err := ParseInvoking(body); err == nil {
		t.Error("short quote accepted")
	}
	// A quote with only the IPv6 header (no L4 bytes) still yields the
	// addresses.
	probe, err := BuildUDP(srcA, dstA, 64, 1111, 2222, nil)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := append(make([]byte, 4), probe[:HeaderLen]...)
	inv, err := ParseInvoking(trimmed)
	if err != nil {
		t.Fatal(err)
	}
	if inv.IP.Dst != dstA || inv.SrcPort != 0 {
		t.Errorf("partial quote = %+v", inv)
	}
}

func TestSummaryRandomAddresses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		s, d := randAddr(rng), randAddr(rng)
		pkt, err := BuildEchoRequest(s, d, uint8(rng.Intn(256)), uint16(rng.Intn(65536)), uint16(i), []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		sum, err := ParsePacket(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if sum.IP.Src != s || sum.IP.Dst != d {
			t.Fatalf("addr mismatch")
		}
	}
}
