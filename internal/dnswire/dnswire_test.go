package dnswire

import (
	"bytes"
	"testing"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "www.example.com", TypeA, ClassIN)
	b, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 0x1234 || m.Flags&FlagRD == 0 {
		t.Errorf("header = %+v", m)
	}
	if len(m.Questions) != 1 {
		t.Fatalf("questions = %d", len(m.Questions))
	}
	got := m.Questions[0]
	if got.Name != "www.example.com" || got.Type != TypeA || got.Class != ClassIN {
		t.Errorf("question = %+v", got)
	}
}

func TestResponseWithAnswerRoundTrip(t *testing.T) {
	resp := &Message{
		ID:    7,
		Flags: FlagQR | FlagRA | RcodeNoError,
		Questions: []Question{
			{Name: "example.com", Type: TypeA, Class: ClassIN},
		},
		Answers: []RR{
			{Name: "example.com", Type: TypeA, Class: ClassIN, TTL: 300, Data: []byte{93, 184, 216, 34}},
		},
		Authority: []RR{
			{Name: "example.com", Type: TypePTR, Class: ClassIN, TTL: 60, Data: []byte{0}},
		},
		Extra: []RR{
			{Name: ".", Type: TypeTXT, Class: ClassIN, TTL: 0, Data: []byte{2, 'h', 'i'}},
		},
	}
	b, err := resp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 1 || len(m.Authority) != 1 || len(m.Extra) != 1 {
		t.Fatalf("sections = %d/%d/%d", len(m.Answers), len(m.Authority), len(m.Extra))
	}
	a := m.Answers[0]
	if a.Name != "example.com" || a.TTL != 300 || !bytes.Equal(a.Data, []byte{93, 184, 216, 34}) {
		t.Errorf("answer = %+v", a)
	}
	if m.Extra[0].Name != "." {
		t.Errorf("root name = %q", m.Extra[0].Name)
	}
}

func TestVersionBindQuery(t *testing.T) {
	q := NewVersionBindQuery(9)
	if q.Questions[0].Name != "version.bind" || q.Questions[0].Class != ClassCH || q.Questions[0].Type != TypeTXT {
		t.Errorf("question = %+v", q.Questions[0])
	}
}

func TestTXTDataRoundTrip(t *testing.T) {
	d, err := TXTData("dnsmasq-2.45", "extra")
	if err != nil {
		t.Fatal(err)
	}
	strs, err := ParseTXTData(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(strs) != 2 || strs[0] != "dnsmasq-2.45" || strs[1] != "extra" {
		t.Errorf("strs = %v", strs)
	}
	if _, err := ParseTXTData([]byte{5, 'a'}); err == nil {
		t.Error("truncated TXT accepted")
	}
	long := make([]byte, 300)
	if _, err := TXTData(string(long)); err == nil {
		t.Error("oversized TXT string accepted")
	}
}

func TestCompressionPointerParsing(t *testing.T) {
	// Hand-built response: question example.com A IN, answer name is a
	// pointer to offset 12.
	b := []byte{
		0x00, 0x01, // ID
		0x80, 0x00, // QR
		0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
		7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0,
		0x00, 0x01, 0x00, 0x01, // A IN
		0xc0, 12, // pointer to offset 12
		0x00, 0x01, 0x00, 0x01, // A IN
		0x00, 0x00, 0x01, 0x2c, // TTL 300
		0x00, 0x04, 1, 2, 3, 4,
	}
	m, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Answers[0].Name != "example.com" {
		t.Errorf("compressed name = %q", m.Answers[0].Name)
	}
}

func TestCompressionPointerLoopRejected(t *testing.T) {
	b := []byte{
		0x00, 0x01, 0x80, 0x00,
		0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0xc0, 12, // pointer to itself
		0x00, 0x01, 0x00, 0x01,
	}
	if _, err := Parse(b); err == nil {
		t.Error("pointer loop accepted")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		// Header claims one question but no body.
		{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0},
		// Label length runs past end.
		{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 60, 'a'},
		// Reserved label type.
		{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0x80, 0, 0, 1, 0, 1},
	}
	for i, b := range cases {
		if _, err := Parse(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMarshalRejectsBadNames(t *testing.T) {
	for _, name := range []string{"a..b", string(make([]byte, 70)) + ".com"} {
		q := NewQuery(1, name, TypeA, ClassIN)
		if _, err := q.Marshal(); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
}

func TestRcode(t *testing.T) {
	m := &Message{Flags: FlagQR | RcodeNXDomain}
	if m.Rcode() != RcodeNXDomain {
		t.Errorf("Rcode = %d", m.Rcode())
	}
}

func TestTrailingDotEquivalence(t *testing.T) {
	a := NewQuery(1, "example.com.", TypeA, ClassIN)
	b := NewQuery(1, "example.com", TypeA, ClassIN)
	ba, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Error("trailing dot changed encoding")
	}
}
