package dnswire

import "testing"

// FuzzParse exercises the message decoder, including compression-pointer
// handling, on arbitrary bytes.
func FuzzParse(f *testing.F) {
	q, err := NewQuery(1, "www.example.com", TypeA, ClassIN).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(q)
	resp := &Message{
		ID: 2, Flags: FlagQR,
		Questions: []Question{{Name: "x.y", Type: TypeAAAA, Class: ClassIN}},
		Answers:   []RR{{Name: "x.y", Type: TypeAAAA, Class: ClassIN, TTL: 1, Data: make([]byte, 16)}},
	}
	rb, err := resp.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rb)
	// A compression pointer chain.
	f.Add([]byte{0, 1, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 12, 0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		// Anything that parses must re-marshal without panicking
		// (round-trip equality is not required: compression is lost).
		_, _ = m.Marshal()
	})
}

// FuzzParseTXTData covers the TXT rdata decoder.
func FuzzParseTXTData(f *testing.F) {
	d, err := TXTData("dnsmasq-2.45")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(d)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseTXTData(data)
	})
}
