// Package dnswire implements the DNS wire format (RFC 1035) to the extent
// the measurement needs: the scanner's probe module sends A and
// version.bind/CH/TXT queries, and the simulated periphery DNS forwarders
// answer them. Parsing follows compression pointers; encoding emits
// uncompressed names.
package dnswire

import (
	"fmt"
	"strings"
)

// Common type and class codes.
const (
	TypeA    = 1
	TypePTR  = 12
	TypeTXT  = 16
	TypeAAAA = 28
	TypeANY  = 255
	ClassIN  = 1
	ClassCH  = 3 // CHAOS, used for version.bind
)

// Response codes.
const (
	RcodeNoError  = 0
	RcodeFormErr  = 1
	RcodeServFail = 2
	RcodeNXDomain = 3
	RcodeNotImp   = 4
	RcodeRefused  = 5
)

// Header flag bits (within the 16-bit flags field).
const (
	FlagQR = 1 << 15 // response
	FlagAA = 1 << 10 // authoritative answer
	FlagTC = 1 << 9  // truncated
	FlagRD = 1 << 8  // recursion desired
	FlagRA = 1 << 7  // recursion available
)

// Question is one query entry.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// RR is a resource record.
type RR struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	Data  []byte
}

// Message is a DNS message.
type Message struct {
	ID        uint16
	Flags     uint16
	Questions []Question
	Answers   []RR
	Authority []RR
	Extra     []RR
}

// Rcode extracts the response code from the flags.
func (m *Message) Rcode() int { return int(m.Flags & 0xf) }

// appendName encodes a domain name in uncompressed wire form.
func appendName(b []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 {
				return nil, fmt.Errorf("dnswire: empty label in %q", name)
			}
			if len(label) > 63 {
				return nil, fmt.Errorf("dnswire: label %q too long", label)
			}
			b = append(b, byte(len(label)))
			b = append(b, label...)
		}
	}
	return append(b, 0), nil
}

// parseName decodes a possibly compressed name starting at off, returning
// the name and the offset just past it in the uncompressed stream.
func parseName(msg []byte, off int) (string, int, error) {
	var (
		sb     strings.Builder
		jumped bool
		retOff = off
		hops   int
	)
	for {
		if off >= len(msg) {
			return "", 0, fmt.Errorf("dnswire: name runs past message end")
		}
		l := int(msg[off])
		switch {
		case l == 0:
			if !jumped {
				retOff = off + 1
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			return name, retOff, nil
		case l&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return "", 0, fmt.Errorf("dnswire: truncated compression pointer")
			}
			ptr := (l&0x3f)<<8 | int(msg[off+1])
			if !jumped {
				retOff = off + 2
				jumped = true
			}
			if hops++; hops > 32 {
				return "", 0, fmt.Errorf("dnswire: compression pointer loop")
			}
			if ptr >= off && !jumped {
				return "", 0, fmt.Errorf("dnswire: forward compression pointer")
			}
			off = ptr
		case l&0xc0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type %#x", l&0xc0)
		default:
			if off+1+l > len(msg) {
				return "", 0, fmt.Errorf("dnswire: label runs past message end")
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(msg[off+1 : off+1+l])
			off += 1 + l
		}
	}
}

func put16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func put32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Marshal serializes the message.
func (m *Message) Marshal() ([]byte, error) {
	b := make([]byte, 0, 128)
	b = put16(b, m.ID)
	b = put16(b, m.Flags)
	b = put16(b, uint16(len(m.Questions)))
	b = put16(b, uint16(len(m.Answers)))
	b = put16(b, uint16(len(m.Authority)))
	b = put16(b, uint16(len(m.Extra)))
	var err error
	for _, q := range m.Questions {
		if b, err = appendName(b, q.Name); err != nil {
			return nil, err
		}
		b = put16(b, q.Type)
		b = put16(b, q.Class)
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Extra} {
		for _, rr := range sec {
			if b, err = appendName(b, rr.Name); err != nil {
				return nil, err
			}
			b = put16(b, rr.Type)
			b = put16(b, rr.Class)
			b = put32(b, rr.TTL)
			if len(rr.Data) > 0xffff {
				return nil, fmt.Errorf("dnswire: rdata too long")
			}
			b = put16(b, uint16(len(rr.Data)))
			b = append(b, rr.Data...)
		}
	}
	return b, nil
}

// Parse decodes a DNS message.
func Parse(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("dnswire: message too short: %d bytes", len(b))
	}
	rd16 := func(off int) uint16 { return uint16(b[off])<<8 | uint16(b[off+1]) }
	m := &Message{ID: rd16(0), Flags: rd16(2)}
	qd, an, ns, ar := int(rd16(4)), int(rd16(6)), int(rd16(8)), int(rd16(10))
	off := 12
	for i := 0; i < qd; i++ {
		name, n, err := parseName(b, off)
		if err != nil {
			return nil, err
		}
		off = n
		if off+4 > len(b) {
			return nil, fmt.Errorf("dnswire: truncated question")
		}
		m.Questions = append(m.Questions, Question{Name: name, Type: rd16(off), Class: rd16(off + 2)})
		off += 4
	}
	parseRRs := func(count int) ([]RR, error) {
		var rrs []RR
		for i := 0; i < count; i++ {
			name, n, err := parseName(b, off)
			if err != nil {
				return nil, err
			}
			off = n
			if off+10 > len(b) {
				return nil, fmt.Errorf("dnswire: truncated resource record")
			}
			rr := RR{
				Name:  name,
				Type:  rd16(off),
				Class: rd16(off + 2),
				TTL:   uint32(rd16(off+4))<<16 | uint32(rd16(off+6)),
			}
			rdlen := int(rd16(off + 8))
			off += 10
			if off+rdlen > len(b) {
				return nil, fmt.Errorf("dnswire: rdata runs past message end")
			}
			rr.Data = b[off : off+rdlen]
			off += rdlen
			rrs = append(rrs, rr)
		}
		return rrs, nil
	}
	var err error
	if m.Answers, err = parseRRs(an); err != nil {
		return nil, err
	}
	if m.Authority, err = parseRRs(ns); err != nil {
		return nil, err
	}
	if m.Extra, err = parseRRs(ar); err != nil {
		return nil, err
	}
	return m, nil
}

// NewQuery builds a standard recursive query for (name, type, class).
func NewQuery(id uint16, name string, qtype, qclass uint16) *Message {
	return &Message{
		ID:        id,
		Flags:     FlagRD,
		Questions: []Question{{Name: name, Type: qtype, Class: qclass}},
	}
}

// NewVersionBindQuery builds the classic software-version fingerprint
// query: version.bind. CH TXT.
func NewVersionBindQuery(id uint16) *Message {
	return NewQuery(id, "version.bind", TypeTXT, ClassCH)
}

// TXTData encodes strings as TXT rdata (length-prefixed character
// strings).
func TXTData(strs ...string) ([]byte, error) {
	var b []byte
	for _, s := range strs {
		if len(s) > 255 {
			return nil, fmt.Errorf("dnswire: TXT string too long")
		}
		b = append(b, byte(len(s)))
		b = append(b, s...)
	}
	return b, nil
}

// ParseTXTData decodes TXT rdata into its strings.
func ParseTXTData(b []byte) ([]string, error) {
	var out []string
	for len(b) > 0 {
		l := int(b[0])
		if 1+l > len(b) {
			return nil, fmt.Errorf("dnswire: truncated TXT string")
		}
		out = append(out, string(b[1:1+l]))
		b = b[1+l:]
	}
	return out, nil
}
