package tlswire

import (
	"bytes"
	"testing"
)

func TestClientHelloRoundTrip(t *testing.T) {
	ch := &ClientHello{CipherSuites: []uint16{TLSRSAWithAES128CBCSHA, TLSECDHERSAWithAES128GCMSHA256}}
	for i := range ch.Random {
		ch.Random[i] = byte(i)
	}
	raw, err := MarshalClientHello(ch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseClientHello(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Random != ch.Random {
		t.Error("random mismatch")
	}
	if len(got.CipherSuites) != 2 || got.CipherSuites[0] != TLSRSAWithAES128CBCSHA {
		t.Errorf("ciphers = %v", got.CipherSuites)
	}
}

func TestMarshalClientHelloValidation(t *testing.T) {
	if _, err := MarshalClientHello(&ClientHello{}); err == nil {
		t.Error("empty cipher list accepted")
	}
}

func TestServerFlightRoundTrip(t *testing.T) {
	cert := []byte("CN=router.local,O=AcmeRouterCo")
	raw, err := MarshalServerFlight(TLSECDHERSAWithAES128GCMSHA256, cert)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseServerFlight(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cipher != TLSECDHERSAWithAES128GCMSHA256 {
		t.Errorf("cipher = %04x", got.Cipher)
	}
	if !bytes.Equal(got.Certificate, cert) {
		t.Errorf("cert = %q", got.Certificate)
	}
}

func TestParseRecordsRejectsTruncation(t *testing.T) {
	raw, err := MarshalServerFlight(1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 4, len(raw) - 1} {
		if _, err := ParseRecords(raw[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestParseServerFlightRequiresHello(t *testing.T) {
	// A record with only a Certificate message.
	certBody := []byte{0, 0, 4, 0, 0, 1, 'x'}
	rec, err := MarshalRecord(ContentHandshake, VersionTLS12, handshakeMsg(HandshakeCertificate, certBody))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseServerFlight(rec); err == nil {
		t.Error("flight without ServerHello accepted")
	}
}

func TestParseClientHelloOnGarbage(t *testing.T) {
	if _, err := ParseClientHello([]byte("GET / HTTP/1.1\r\n")); err == nil {
		t.Error("HTTP accepted as ClientHello")
	}
}

func TestMultipleRecordsParsed(t *testing.T) {
	a, err := MarshalRecord(ContentAlert, VersionTLS12, []byte{2, 40})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalServerFlight(1, []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ParseRecords(append(a, b...))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Type != ContentAlert {
		t.Errorf("recs = %+v", recs)
	}
	// ParseServerFlight skips the alert and still finds the hello.
	if _, err := ParseServerFlight(append(a, b...)); err != nil {
		t.Errorf("flight with leading alert rejected: %v", err)
	}
}

func TestRecordSizeLimit(t *testing.T) {
	if _, err := MarshalRecord(ContentHandshake, VersionTLS12, make([]byte, 1<<14+1)); err == nil {
		t.Error("oversized record accepted")
	}
}
