package tlswire

import "testing"

// FuzzParseServerFlight covers record and handshake framing.
func FuzzParseServerFlight(f *testing.F) {
	flight, err := MarshalServerFlight(TLSRSAWithAES128CBCSHA, []byte("CN=x"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(flight)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseServerFlight(data)
		_, _ = ParseClientHello(data)
		_, _ = ParseRecords(data)
	})
}
