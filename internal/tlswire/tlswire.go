// Package tlswire implements the minimal TLS handshake framing the TLS
// probe needs: a ClientHello the scanner sends, and a ServerHello +
// Certificate flight the simulated periphery returns. This reproduces the
// ZGrab-style "certificate request -> certificate, cipher suite" exchange
// of the paper's Table VI without a full handshake (the measurement only
// reads the certificate subject and chosen cipher).
package tlswire

import (
	"encoding/binary"
	"fmt"
)

// Record content types.
const (
	ContentHandshake = 22
	ContentAlert     = 21
)

// Handshake message types.
const (
	HandshakeClientHello = 1
	HandshakeServerHello = 2
	HandshakeCertificate = 11
	HandshakeServerDone  = 14
)

// VersionTLS12 is the legacy version field value for TLS 1.2.
const VersionTLS12 = 0x0303

// A few recognizable cipher suite ids.
const (
	TLSRSAWithAES128CBCSHA         = 0x002f
	TLSECDHERSAWithAES128GCMSHA256 = 0xc02f
)

// Record is one TLS record.
type Record struct {
	Type    uint8
	Version uint16
	Body    []byte
}

// MarshalRecord frames body as a single record.
func MarshalRecord(typ uint8, version uint16, body []byte) ([]byte, error) {
	if len(body) > 1<<14 {
		return nil, fmt.Errorf("tlswire: record body %d exceeds 2^14", len(body))
	}
	b := make([]byte, 5+len(body))
	b[0] = typ
	binary.BigEndian.PutUint16(b[1:3], version)
	binary.BigEndian.PutUint16(b[3:5], uint16(len(body)))
	copy(b[5:], body)
	return b, nil
}

// ParseRecords splits a byte stream into records.
func ParseRecords(b []byte) ([]Record, error) {
	var recs []Record
	for len(b) > 0 {
		if len(b) < 5 {
			return nil, fmt.Errorf("tlswire: truncated record header")
		}
		l := int(binary.BigEndian.Uint16(b[3:5]))
		if 5+l > len(b) {
			return nil, fmt.Errorf("tlswire: truncated record body")
		}
		recs = append(recs, Record{Type: b[0], Version: binary.BigEndian.Uint16(b[1:3]), Body: b[5 : 5+l]})
		b = b[5+l:]
	}
	return recs, nil
}

// handshakeMsg frames a handshake message (type + 24-bit length).
func handshakeMsg(typ uint8, body []byte) []byte {
	b := make([]byte, 4+len(body))
	b[0] = typ
	b[1] = byte(len(body) >> 16)
	b[2] = byte(len(body) >> 8)
	b[3] = byte(len(body))
	copy(b[4:], body)
	return b
}

// parseHandshakes splits a handshake record body into (type, body) pairs.
func parseHandshakes(b []byte) ([][2]interface{}, error) {
	var out [][2]interface{}
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("tlswire: truncated handshake header")
		}
		l := int(b[1])<<16 | int(b[2])<<8 | int(b[3])
		if 4+l > len(b) {
			return nil, fmt.Errorf("tlswire: truncated handshake body")
		}
		out = append(out, [2]interface{}{b[0], b[4 : 4+l]})
		b = b[4+l:]
	}
	return out, nil
}

// ClientHello carries the fields the probe sets.
type ClientHello struct {
	Random       [32]byte
	CipherSuites []uint16
}

// MarshalClientHello builds the full record-framed ClientHello.
func MarshalClientHello(ch *ClientHello) ([]byte, error) {
	body := make([]byte, 0, 64)
	body = append(body, byte(VersionTLS12>>8), byte(VersionTLS12&0xff))
	body = append(body, ch.Random[:]...)
	body = append(body, 0) // empty session id
	if len(ch.CipherSuites) == 0 || len(ch.CipherSuites) > 1000 {
		return nil, fmt.Errorf("tlswire: %d cipher suites", len(ch.CipherSuites))
	}
	body = append(body, byte(len(ch.CipherSuites)*2>>8), byte(len(ch.CipherSuites)*2))
	for _, cs := range ch.CipherSuites {
		body = append(body, byte(cs>>8), byte(cs))
	}
	body = append(body, 1, 0) // compression: null only
	return MarshalRecord(ContentHandshake, VersionTLS12, handshakeMsg(HandshakeClientHello, body))
}

// ParseClientHello extracts a ClientHello from raw records.
func ParseClientHello(raw []byte) (*ClientHello, error) {
	recs, err := ParseRecords(raw)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if r.Type != ContentHandshake {
			continue
		}
		msgs, err := parseHandshakes(r.Body)
		if err != nil {
			return nil, err
		}
		for _, m := range msgs {
			typ, body := m[0].(uint8), m[1].([]byte)
			if typ != HandshakeClientHello {
				continue
			}
			if len(body) < 35 {
				return nil, fmt.Errorf("tlswire: ClientHello too short")
			}
			var ch ClientHello
			copy(ch.Random[:], body[2:34])
			sidLen := int(body[34])
			off := 35 + sidLen
			if off+2 > len(body) {
				return nil, fmt.Errorf("tlswire: ClientHello truncated at ciphers")
			}
			csLen := int(binary.BigEndian.Uint16(body[off : off+2]))
			off += 2
			if off+csLen > len(body) || csLen%2 != 0 {
				return nil, fmt.Errorf("tlswire: bad cipher suite vector")
			}
			for i := 0; i < csLen; i += 2 {
				ch.CipherSuites = append(ch.CipherSuites, binary.BigEndian.Uint16(body[off+i:off+i+2]))
			}
			return &ch, nil
		}
	}
	return nil, fmt.Errorf("tlswire: no ClientHello found")
}

// ServerFlight is what the probe extracts from the server's response.
type ServerFlight struct {
	Cipher      uint16
	Certificate []byte // opaque DER-ish blob; the sim stores a text form
}

// MarshalServerFlight builds ServerHello + Certificate + ServerHelloDone
// in one record.
func MarshalServerFlight(cipher uint16, cert []byte) ([]byte, error) {
	sh := make([]byte, 0, 48)
	sh = append(sh, byte(VersionTLS12>>8), byte(VersionTLS12&0xff))
	var random [32]byte
	sh = append(sh, random[:]...)
	sh = append(sh, 0) // empty session id
	sh = append(sh, byte(cipher>>8), byte(cipher))
	sh = append(sh, 0) // null compression

	// Certificate message: 3-byte total length, then one 3-byte-length
	// certificate entry.
	certBody := make([]byte, 0, len(cert)+6)
	total := len(cert) + 3
	certBody = append(certBody, byte(total>>16), byte(total>>8), byte(total))
	certBody = append(certBody, byte(len(cert)>>16), byte(len(cert)>>8), byte(len(cert)))
	certBody = append(certBody, cert...)

	body := handshakeMsg(HandshakeServerHello, sh)
	body = append(body, handshakeMsg(HandshakeCertificate, certBody)...)
	body = append(body, handshakeMsg(HandshakeServerDone, nil)...)
	return MarshalRecord(ContentHandshake, VersionTLS12, body)
}

// ParseServerFlight extracts the negotiated cipher and first certificate.
func ParseServerFlight(raw []byte) (*ServerFlight, error) {
	recs, err := ParseRecords(raw)
	if err != nil {
		return nil, err
	}
	var out ServerFlight
	seenHello := false
	for _, r := range recs {
		if r.Type != ContentHandshake {
			continue
		}
		msgs, err := parseHandshakes(r.Body)
		if err != nil {
			return nil, err
		}
		for _, m := range msgs {
			typ, body := m[0].(uint8), m[1].([]byte)
			switch typ {
			case HandshakeServerHello:
				if len(body) < 35 {
					return nil, fmt.Errorf("tlswire: ServerHello too short")
				}
				sidLen := int(body[34])
				off := 35 + sidLen
				if off+2 > len(body) {
					return nil, fmt.Errorf("tlswire: ServerHello truncated")
				}
				out.Cipher = binary.BigEndian.Uint16(body[off : off+2])
				seenHello = true
			case HandshakeCertificate:
				if len(body) < 6 {
					return nil, fmt.Errorf("tlswire: Certificate too short")
				}
				certLen := int(body[3])<<16 | int(body[4])<<8 | int(body[5])
				if 6+certLen > len(body) {
					return nil, fmt.Errorf("tlswire: Certificate truncated")
				}
				out.Certificate = body[6 : 6+certLen]
			}
		}
	}
	if !seenHello {
		return nil, fmt.Errorf("tlswire: no ServerHello found")
	}
	return &out, nil
}
