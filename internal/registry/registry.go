// Package registry provides the lookup databases the measurement pipeline
// consults: an IEEE-OUI-style MAC-prefix-to-vendor table, a CVE-count
// table for the software versions of the paper's Table VIII, and a
// MaxMind-style prefix-to-(ASN, country) geolocation database. All three
// are synthetic stand-ins for the proprietary datasets the paper used;
// the code paths that consume them are identical.
package registry

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ipv6"
	"repro/internal/lpm"
)

// CPEVendors lists the customer-premises-equipment vendors of the paper's
// Table IV, most-frequent first.
var CPEVendors = []string{
	"China Mobile", "ZTE", "Skyworth", "Fiberhome", "Youhua Tech",
	"China Unicom", "AVM", "Technicolor", "Huawei", "StarNet",
	"TP-Link", "D-Link", "Xiaomi", "Hitron Tech", "Netgear",
	"Linksys", "Asus", "Optilink", "Tenda", "MikroTik",
}

// UEVendors lists the user-equipment vendors of Table IV.
var UEVendors = []string{
	"NTMore", "HMD Global", "Vivo", "Oppo", "Apple", "Samsung",
	"Nokia", "LG", "Motorola", "Lenovo", "Nubia", "OnePlus",
}

// OUIDB maps 24-bit MAC OUIs to vendor names, the stand-in for the IEEE
// registration-authority file the paper resolves EUI-64 MACs against.
type OUIDB struct {
	byOUI    map[uint32]string
	byVendor map[string][]uint32
}

// NewOUIDB builds the synthetic OUI registry: each known vendor receives
// a deterministic pair of OUIs.
func NewOUIDB() *OUIDB {
	db := &OUIDB{byOUI: make(map[uint32]string), byVendor: make(map[string][]uint32)}
	assign := func(vendors []string, base uint32) {
		for i, v := range vendors {
			for j := 0; j < 2; j++ {
				oui := base + uint32(i)*16 + uint32(j)
				db.byOUI[oui] = v
				db.byVendor[v] = append(db.byVendor[v], oui)
			}
		}
	}
	assign(CPEVendors, 0x001a00)
	assign(UEVendors, 0x00f600)
	return db
}

// Vendor resolves an OUI, reporting ok=false for unregistered prefixes.
func (db *OUIDB) Vendor(oui uint32) (string, bool) {
	v, ok := db.byOUI[oui]
	return v, ok
}

// VendorOfMAC resolves the vendor of a full MAC address.
func (db *OUIDB) VendorOfMAC(m ipv6.MAC) (string, bool) { return db.Vendor(m.OUI()) }

// OUIsOf returns the OUIs registered to vendor (used by the topology
// generator to mint device MACs).
func (db *OUIDB) OUIsOf(vendor string) []uint32 {
	return append([]uint32(nil), db.byVendor[vendor]...)
}

// Len returns the number of registered OUIs.
func (db *OUIDB) Len() int { return len(db.byOUI) }

// cveTable maps software families to the CVE counts of Table VIII. Keys
// are matched against lower-cased software strings by substring.
var cveTable = []struct {
	family string
	count  int
}{
	{"dnsmasq", 16},
	{"jetty", 24},
	{"miniweb", 24},
	{"micro_httpd", 24},
	{"goahead", 24},
	{"dropbear", 10},
	{"openssh", 74},
	{"freebsd", 1},
	{"vsftpd", 2},
	{"inetutils", 0},
}

// CVECount returns the number of known CVEs applicable to a software
// string (e.g. "dnsmasq-2.45" -> 16). Unknown software reports zero.
func CVECount(software string) int {
	s := strings.ToLower(software)
	for _, e := range cveTable {
		if strings.Contains(s, e.family) {
			return e.count
		}
	}
	return 0
}

// GeoEntry is one geolocation record.
type GeoEntry struct {
	ASN     int
	Country string // ISO 3166-1 alpha-2
}

// GeoDB maps prefixes to origin AS and country, the MaxMind substitute.
type GeoDB struct {
	table *lpm.Table[GeoEntry]
}

// NewGeoDB returns an empty database.
func NewGeoDB() *GeoDB { return &GeoDB{table: lpm.New[GeoEntry]()} }

// Add installs a record.
func (g *GeoDB) Add(p ipv6.Prefix, e GeoEntry) { g.table.Insert(p, e) }

// Lookup resolves an address by longest prefix match.
func (g *GeoDB) Lookup(a ipv6.Addr) (GeoEntry, bool) { return g.table.Lookup(a) }

// Len returns the number of records.
func (g *GeoDB) Len() int { return g.table.Len() }

// Countries returns the distinct country codes present.
func (g *GeoDB) Countries() []string {
	seen := map[string]bool{}
	g.table.Walk(func(_ ipv6.Prefix, e GeoEntry) bool {
		seen[e.Country] = true
		return true
	})
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// VendorIndex returns a stable index for a vendor name, used to derive
// deterministic per-vendor parameters. It errors on unknown vendors.
func VendorIndex(vendor string) (int, error) {
	for i, v := range CPEVendors {
		if v == vendor {
			return i, nil
		}
	}
	for i, v := range UEVendors {
		if v == vendor {
			return len(CPEVendors) + i, nil
		}
	}
	return 0, fmt.Errorf("registry: unknown vendor %q", vendor)
}
