package registry

import (
	"testing"

	"repro/internal/ipv6"
)

func TestOUIDBRoundTrip(t *testing.T) {
	db := NewOUIDB()
	for _, vendor := range append(append([]string{}, CPEVendors...), UEVendors...) {
		ouis := db.OUIsOf(vendor)
		if len(ouis) == 0 {
			t.Errorf("vendor %q has no OUIs", vendor)
			continue
		}
		for _, oui := range ouis {
			got, ok := db.Vendor(oui)
			if !ok || got != vendor {
				t.Errorf("Vendor(%06x) = %q,%v; want %q", oui, got, ok, vendor)
			}
		}
	}
	if db.Len() != 2*(len(CPEVendors)+len(UEVendors)) {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestOUIDBUnknown(t *testing.T) {
	db := NewOUIDB()
	if _, ok := db.Vendor(0xffffff); ok {
		t.Error("unknown OUI resolved")
	}
}

func TestVendorOfMAC(t *testing.T) {
	db := NewOUIDB()
	oui := db.OUIsOf("ZTE")[0]
	m := ipv6.MAC{byte(oui >> 16), byte(oui >> 8), byte(oui), 1, 2, 3}
	v, ok := db.VendorOfMAC(m)
	if !ok || v != "ZTE" {
		t.Errorf("VendorOfMAC = %q,%v", v, ok)
	}
}

func TestCVECounts(t *testing.T) {
	cases := []struct {
		software string
		want     int
	}{
		{"dnsmasq-2.45", 16},
		{"dnsmasq-2.78", 16},
		{"Jetty 6.1.26", 24},
		{"MiniWeb HTTP Server", 24},
		{"micro_httpd", 24},
		{"GoAhead Embedded", 24},
		{"dropbear_0.46", 10},
		{"OpenSSH_3.5", 74},
		{"FreeBSD version 6.00ls", 1},
		{"vsftpd 2.3.4", 2},
		{"GNU Inetutils 1.4.1", 0},
		{"totally-unknown 1.0", 0},
	}
	for _, c := range cases {
		if got := CVECount(c.software); got != c.want {
			t.Errorf("CVECount(%q) = %d, want %d", c.software, got, c.want)
		}
	}
}

func TestGeoDB(t *testing.T) {
	g := NewGeoDB()
	g.Add(ipv6.MustParsePrefix("2400:1::/32"), GeoEntry{ASN: 4134, Country: "CN"})
	g.Add(ipv6.MustParsePrefix("2400:2::/32"), GeoEntry{ASN: 7922, Country: "US"})
	e, ok := g.Lookup(ipv6.MustParseAddr("2400:1:abcd::1"))
	if !ok || e.ASN != 4134 || e.Country != "CN" {
		t.Errorf("Lookup = %+v,%v", e, ok)
	}
	if _, ok := g.Lookup(ipv6.MustParseAddr("2600::1")); ok {
		t.Error("unlisted space resolved")
	}
	cs := g.Countries()
	if len(cs) != 2 || cs[0] != "CN" || cs[1] != "US" {
		t.Errorf("Countries = %v", cs)
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestVendorIndexStable(t *testing.T) {
	i, err := VendorIndex("ZTE")
	if err != nil || i != 1 {
		t.Errorf("VendorIndex(ZTE) = %d,%v", i, err)
	}
	j, err := VendorIndex("Apple")
	if err != nil || j != len(CPEVendors)+4 {
		t.Errorf("VendorIndex(Apple) = %d,%v", j, err)
	}
	if _, err := VendorIndex("NoSuchVendor"); err == nil {
		t.Error("unknown vendor accepted")
	}
}
