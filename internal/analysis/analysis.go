// Package analysis turns raw measurement output (scan responses, service
// grabs, loop sweeps) into the aggregates behind each of the paper's
// tables and figures. It consumes only measured evidence — addresses,
// banners, embedded MACs — never simulator ground truth, so the pipeline
// is the same one a real deployment would run.
package analysis

import (
	"sort"

	"repro/internal/ipv6"
	"repro/internal/registry"
	"repro/internal/services"
	"repro/internal/xmap"
	"repro/internal/zgrab"
)

// PeripheryRecord is one discovered last hop enriched with everything the
// pipeline could learn about it.
type PeripheryRecord struct {
	Addr     ipv6.Addr
	ProbeDst ipv6.Addr
	Same     bool // responder /64 == probe /64 (Table II same/diff)
	Kind     xmap.ResponseKind
	Class    ipv6.IIDClass
	MAC      ipv6.MAC
	HasMAC   bool
	// VendorHW is the IEEE-OUI attribution from an EUI-64 address.
	VendorHW string
	// VendorApp is the application-level attribution from banners,
	// login pages and certificates.
	VendorApp string
	// Grab holds the per-service probe results (nil until service
	// probing ran).
	Grab *zgrab.DeviceResult
	// ISPIndex tags the record with its Table VII ISP number (0 for the
	// BGP universe).
	ISPIndex int
	// IsUEVendor marks hardware attribution to a phone maker.
	IsUEVendor bool
}

// Vendor returns the best attribution: hardware first, else application.
func (r *PeripheryRecord) Vendor() string {
	if r.VendorHW != "" {
		return r.VendorHW
	}
	return r.VendorApp
}

// AliveServices lists the services that answered.
func (r *PeripheryRecord) AliveServices() []services.ID {
	if r.Grab == nil {
		return nil
	}
	var out []services.ID
	for _, svc := range services.All {
		if res, ok := r.Grab.Results[svc]; ok && res.Alive {
			out = append(out, svc)
		}
	}
	return out
}

// Enrich builds a record from one scan response.
func Enrich(resp xmap.Response, oui *registry.OUIDB, ispIndex int) *PeripheryRecord {
	rec := &PeripheryRecord{
		Addr:     resp.Responder,
		ProbeDst: resp.ProbeDst,
		Same:     resp.SamePrefix64(),
		Kind:     resp.Kind,
		Class:    ipv6.Classify(resp.Responder),
		ISPIndex: ispIndex,
	}
	if rec.Class == ipv6.IIDEUI64 {
		if mac, ok := ipv6.MACFromEUI64(resp.Responder.IID()); ok {
			rec.MAC, rec.HasMAC = mac, true
			if vendor, ok := oui.VendorOfMAC(mac); ok {
				rec.VendorHW = vendor
				for _, ue := range registry.UEVendors {
					if vendor == ue {
						rec.IsUEVendor = true
						break
					}
				}
			}
		}
	}
	return rec
}

// AttachGrab merges service-probe results into the record.
func (r *PeripheryRecord) AttachGrab(g *zgrab.DeviceResult) {
	r.Grab = g
	if r.VendorApp == "" {
		r.VendorApp = g.Vendor
	}
}

// IIDDist is an interface-identifier class distribution (Tables III, V,
// X).
type IIDDist struct {
	Counts map[ipv6.IIDClass]int
	Total  int
}

// NewIIDDist tallies records.
func NewIIDDist(recs []*PeripheryRecord) IIDDist {
	d := IIDDist{Counts: make(map[ipv6.IIDClass]int)}
	for _, r := range recs {
		d.Counts[r.Class]++
		d.Total++
	}
	return d
}

// Pct returns the class share in percent.
func (d IIDDist) Pct(c ipv6.IIDClass) float64 {
	if d.Total == 0 {
		return 0
	}
	return 100 * float64(d.Counts[c]) / float64(d.Total)
}

// VendorCount ranks one vendor.
type VendorCount struct {
	Vendor string
	Count  int
}

// rankMap sorts a vendor->count map descending (name ascending on ties).
func rankMap(m map[string]int) []VendorCount {
	out := make([]VendorCount, 0, len(m))
	for v, n := range m {
		out = append(out, VendorCount{Vendor: v, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Vendor < out[j].Vendor
	})
	return out
}

// TableIIRow is one ISP's discovery census (Table II).
type TableIIRow struct {
	ISPIndex   int
	UniqueHops int
	SamePct    float64
	DiffPct    float64
	Unique64   int
	Pct64      float64 // unique /64s over unique hops
	EUI64      int
	EUI64Pct   float64
	UniqueMAC  int
	MACPct     float64 // unique MACs over EUI-64 addresses
}

// BuildTableII aggregates per-ISP discovery results.
func BuildTableII(recs []*PeripheryRecord) []TableIIRow {
	type acc struct {
		hops int
		same int
		p64  map[ipv6.Addr]bool
		eui  int
		macs map[ipv6.MAC]int
	}
	byISP := map[int]*acc{}
	for _, r := range recs {
		a := byISP[r.ISPIndex]
		if a == nil {
			a = &acc{p64: map[ipv6.Addr]bool{}, macs: map[ipv6.MAC]int{}}
			byISP[r.ISPIndex] = a
		}
		a.hops++
		if r.Same {
			a.same++
		}
		a.p64[r.Addr.Prefix64().Addr()] = true
		if r.Class == ipv6.IIDEUI64 {
			a.eui++
			if r.HasMAC {
				a.macs[r.MAC]++
			}
		}
	}
	var rows []TableIIRow
	for isp, a := range byISP {
		row := TableIIRow{
			ISPIndex:   isp,
			UniqueHops: a.hops,
			Unique64:   len(a.p64),
			EUI64:      a.eui,
			UniqueMAC:  len(a.macs),
		}
		if a.hops > 0 {
			row.SamePct = 100 * float64(a.same) / float64(a.hops)
			row.DiffPct = 100 - row.SamePct
			row.Pct64 = 100 * float64(len(a.p64)) / float64(a.hops)
			row.EUI64Pct = 100 * float64(a.eui) / float64(a.hops)
		}
		if a.eui > 0 {
			row.MACPct = 100 * float64(len(a.macs)) / float64(a.eui)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ISPIndex < rows[j].ISPIndex })
	return rows
}

// BuildTableIII is the all-periphery IID mix.
func BuildTableIII(recs []*PeripheryRecord) IIDDist { return NewIIDDist(recs) }

// BuildTableIV ranks identified device vendors, split CPE/UE (Table IV).
func BuildTableIV(recs []*PeripheryRecord) (cpe, ue []VendorCount) {
	cpeCounts, ueCounts := map[string]int{}, map[string]int{}
	for _, r := range recs {
		v := r.Vendor()
		if v == "" {
			continue
		}
		if r.IsUEVendor {
			ueCounts[v]++
		} else {
			cpeCounts[v]++
		}
	}
	return rankMap(cpeCounts), rankMap(ueCounts)
}

// WithAliveServices filters records to those exposing at least one
// service (the Table V / Section V population).
func WithAliveServices(recs []*PeripheryRecord) []*PeripheryRecord {
	var out []*PeripheryRecord
	for _, r := range recs {
		if len(r.AliveServices()) > 0 {
			out = append(out, r)
		}
	}
	return out
}

// BuildTableV is the IID mix of service-exposing peripheries.
func BuildTableV(recs []*PeripheryRecord) IIDDist {
	return NewIIDDist(WithAliveServices(recs))
}

// TableVIIRow is one ISP's per-service exposure (Table VII).
type TableVIIRow struct {
	ISPIndex int
	// Alive[svc] counts devices with that service answering.
	Alive map[services.ID]int
	// Total counts devices with >=1 alive service.
	Total int
	// Discovered is the ISP's discovered periphery count (denominator).
	Discovered int
}

// Pct returns the service share of discovered peripheries, in percent.
func (r TableVIIRow) Pct(svc services.ID) float64 {
	if r.Discovered == 0 {
		return 0
	}
	return 100 * float64(r.Alive[svc]) / float64(r.Discovered)
}

// TotalPct is the >=1-service share.
func (r TableVIIRow) TotalPct() float64 {
	if r.Discovered == 0 {
		return 0
	}
	return 100 * float64(r.Total) / float64(r.Discovered)
}

// BuildTableVII aggregates exposure per ISP.
func BuildTableVII(recs []*PeripheryRecord) []TableVIIRow {
	byISP := map[int]*TableVIIRow{}
	for _, r := range recs {
		row := byISP[r.ISPIndex]
		if row == nil {
			row = &TableVIIRow{ISPIndex: r.ISPIndex, Alive: map[services.ID]int{}}
			byISP[r.ISPIndex] = row
		}
		row.Discovered++
		alive := r.AliveServices()
		if len(alive) > 0 {
			row.Total++
		}
		for _, svc := range alive {
			row.Alive[svc]++
		}
	}
	var rows []TableVIIRow
	for _, row := range byISP {
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ISPIndex < rows[j].ISPIndex })
	return rows
}

// SoftwareCount ranks one software string within a service.
type SoftwareCount struct {
	Software string
	Count    int
	CVEs     int
}

// BuildTableVIII ranks the software versions seen per service and
// annotates CVE exposure (Table VIII).
func BuildTableVIII(recs []*PeripheryRecord) map[services.ID][]SoftwareCount {
	counts := map[services.ID]map[string]int{}
	for _, r := range recs {
		if r.Grab == nil {
			continue
		}
		for svc, res := range r.Grab.Results {
			if !res.Alive || res.Software == "" {
				continue
			}
			if counts[svc] == nil {
				counts[svc] = map[string]int{}
			}
			counts[svc][res.Software]++
		}
	}
	out := map[services.ID][]SoftwareCount{}
	for svc, m := range counts {
		var list []SoftwareCount
		for sw, n := range m {
			list = append(list, SoftwareCount{Software: sw, Count: n, CVEs: registry.CVECount(sw)})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].Count != list[j].Count {
				return list[i].Count > list[j].Count
			}
			return list[i].Software < list[j].Software
		})
		out[svc] = list
	}
	return out
}

// VendorServiceMatrix counts alive services per vendor (Figures 2 and 3).
type VendorServiceMatrix struct {
	// Counts[vendor][svc] is the number of that vendor's devices with
	// the service alive.
	Counts map[string]map[services.ID]int
	// Totals[vendor] is the vendor's devices with >=1 alive service.
	Totals map[string]int
}

// BuildVendorServiceMatrix aggregates vendor exposure.
func BuildVendorServiceMatrix(recs []*PeripheryRecord) VendorServiceMatrix {
	m := VendorServiceMatrix{
		Counts: map[string]map[services.ID]int{},
		Totals: map[string]int{},
	}
	for _, r := range recs {
		vendor := r.Vendor()
		if vendor == "" {
			continue
		}
		alive := r.AliveServices()
		if len(alive) == 0 {
			continue
		}
		m.Totals[vendor]++
		if m.Counts[vendor] == nil {
			m.Counts[vendor] = map[services.ID]int{}
		}
		for _, svc := range alive {
			m.Counts[vendor][svc]++
		}
	}
	return m
}

// TopVendors ranks vendors by exposed-device count (Figure 2's x axis).
func (m VendorServiceMatrix) TopVendors(n int) []VendorCount {
	ranked := rankMap(m.Totals)
	if n > 0 && len(ranked) > n {
		ranked = ranked[:n]
	}
	return ranked
}

// TopVendorsWithin ranks vendors within one service (Figure 3's bars).
func (m VendorServiceMatrix) TopVendorsWithin(svc services.ID, n int) []VendorCount {
	counts := map[string]int{}
	for vendor, per := range m.Counts {
		if c := per[svc]; c > 0 {
			counts[vendor] = c
		}
	}
	ranked := rankMap(counts)
	if n > 0 && len(ranked) > n {
		ranked = ranked[:n]
	}
	return ranked
}
