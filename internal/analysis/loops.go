package analysis

import (
	"sort"

	"repro/internal/ipv6"
	"repro/internal/loopscan"
	"repro/internal/registry"
)

// TableIXResult summarizes the BGP-universe sweep (Table IX): observed
// last hops and the loop-vulnerable subset, each with distinct-AS and
// distinct-country footprints.
type TableIXResult struct {
	TotalHops     int
	TotalASNs     int
	TotalCountry  int
	LoopHops      int
	LoopASNs      int
	LoopCountries int
}

// BuildTableIX aggregates a loop sweep against the geolocation database.
func BuildTableIX(res *loopscan.ScanResult, geo *registry.GeoDB) TableIXResult {
	allAS, allCC := map[int]bool{}, map[string]bool{}
	loopAS, loopCC := map[int]bool{}, map[string]bool{}
	out := TableIXResult{}
	for _, hop := range res.Hops {
		out.TotalHops++
		entry, ok := geo.Lookup(hop.Addr)
		if ok {
			allAS[entry.ASN] = true
			allCC[entry.Country] = true
		}
		if hop.Vulnerable {
			out.LoopHops++
			if ok {
				loopAS[entry.ASN] = true
				loopCC[entry.Country] = true
			}
		}
	}
	out.TotalASNs, out.TotalCountry = len(allAS), len(allCC)
	out.LoopASNs, out.LoopCountries = len(loopAS), len(loopCC)
	return out
}

// BuildTableX is the IID mix of loop-vulnerable last hops.
func BuildTableX(res *loopscan.ScanResult) IIDDist {
	d := IIDDist{Counts: make(map[ipv6.IIDClass]int)}
	for _, hop := range res.Hops {
		if !hop.Vulnerable {
			continue
		}
		d.Counts[ipv6.Classify(hop.Addr)]++
		d.Total++
	}
	return d
}

// RankedKey is a generic ranked label/count pair (Figure 5's bars).
type RankedKey struct {
	Label string
	Count int
}

// Figure5Result ranks loop devices by origin AS and country.
type Figure5Result struct {
	TopASNs      []RankedKey
	TopCountries []RankedKey
}

// BuildFigure5 computes the Figure 5 rankings (top n each).
func BuildFigure5(res *loopscan.ScanResult, geo *registry.GeoDB, n int) Figure5Result {
	byAS, byCC := map[string]int{}, map[string]int{}
	for _, hop := range res.Hops {
		if !hop.Vulnerable {
			continue
		}
		if entry, ok := geo.Lookup(hop.Addr); ok {
			byAS[asnLabel(entry.ASN)]++
			byCC[entry.Country]++
		}
	}
	return Figure5Result{
		TopASNs:      topRanked(byAS, n),
		TopCountries: topRanked(byCC, n),
	}
}

func asnLabel(asn int) string { return "AS" + itoa(asn) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func topRanked(m map[string]int, n int) []RankedKey {
	out := make([]RankedKey, 0, len(m))
	for k, v := range m {
		out = append(out, RankedKey{Label: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Label < out[j].Label
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TableXIRow is one ISP's loop census (Table XI).
type TableXIRow struct {
	ISPIndex int
	Unique   int
	SamePct  float64
	DiffPct  float64
}

// BuildTableXI aggregates per-ISP loop sweeps; loops maps ISP index to
// its sweep result.
func BuildTableXI(loops map[int]*loopscan.ScanResult) []TableXIRow {
	var rows []TableXIRow
	for isp, res := range loops {
		row := TableXIRow{ISPIndex: isp}
		var same, diff int
		for _, hop := range res.Hops {
			if !hop.Vulnerable {
				continue
			}
			row.Unique++
			same += hop.SameCount
			diff += hop.DiffCount
		}
		if same+diff > 0 {
			row.SamePct = 100 * float64(same) / float64(same+diff)
			row.DiffPct = 100 - row.SamePct
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ISPIndex < rows[j].ISPIndex })
	return rows
}

// Figure6Result is the loop vendor/AS matrix: per top vendor, the device
// counts within each top AS.
type Figure6Result struct {
	Vendors []string
	ASNs    []string
	// Counts[vendor][asn] -> devices.
	Counts map[string]map[string]int
	// VendorTotals across all ASes.
	VendorTotals map[string]int
}

// LoopDeviceEvidence pairs a vulnerable hop with its attribution inputs.
type LoopDeviceEvidence struct {
	Addr   ipv6.Addr
	Vendor string // from EUI-64 OUI or application evidence; may be ""
	ASN    int
}

// BuildFigure6 ranks the top nVendor vendors and nAS ASes among
// vulnerable devices and cross-tabulates them.
func BuildFigure6(devices []LoopDeviceEvidence, nVendor, nAS int) Figure6Result {
	vTotals, aTotals := map[string]int{}, map[string]int{}
	for _, d := range devices {
		if d.Vendor == "" {
			continue
		}
		vTotals[d.Vendor]++
		aTotals[asnLabel(d.ASN)]++
	}
	top := topRanked(vTotals, nVendor)
	topAS := topRanked(aTotals, nAS)

	res := Figure6Result{
		Counts:       map[string]map[string]int{},
		VendorTotals: vTotals,
	}
	for _, v := range top {
		res.Vendors = append(res.Vendors, v.Label)
		res.Counts[v.Label] = map[string]int{}
	}
	for _, a := range topAS {
		res.ASNs = append(res.ASNs, a.Label)
	}
	inTop := func(list []string, s string) bool {
		for _, x := range list {
			if x == s {
				return true
			}
		}
		return false
	}
	for _, d := range devices {
		if d.Vendor == "" || !inTop(res.Vendors, d.Vendor) {
			continue
		}
		label := asnLabel(d.ASN)
		if !inTop(res.ASNs, label) {
			continue
		}
		res.Counts[d.Vendor][label]++
	}
	return res
}
