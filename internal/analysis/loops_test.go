package analysis

import (
	"testing"

	"repro/internal/ipv6"
	"repro/internal/loopscan"
	"repro/internal/registry"
)

func loopResult(hops ...*loopscan.HopInfo) *loopscan.ScanResult {
	res := &loopscan.ScanResult{Hops: map[ipv6.Addr]*loopscan.HopInfo{}}
	for _, h := range hops {
		res.Hops[h.Addr] = h
	}
	return res
}

func hop(addr string, vuln bool, same, diff int) *loopscan.HopInfo {
	return &loopscan.HopInfo{
		Addr: ipv6.MustParseAddr(addr), Vulnerable: vuln,
		SameCount: same, DiffCount: diff,
	}
}

func testGeo() *registry.GeoDB {
	g := registry.NewGeoDB()
	g.Add(ipv6.MustParsePrefix("2400:1::/32"), registry.GeoEntry{ASN: 100, Country: "BR"})
	g.Add(ipv6.MustParsePrefix("2400:2::/32"), registry.GeoEntry{ASN: 200, Country: "CN"})
	g.Add(ipv6.MustParsePrefix("2400:3::/32"), registry.GeoEntry{ASN: 100, Country: "BR"})
	return g
}

func TestBuildTableIX(t *testing.T) {
	res := loopResult(
		hop("2400:1::1", true, 0, 1),
		hop("2400:1::2", false, 1, 0),
		hop("2400:2::1", true, 0, 2),
		hop("2400:3::1", false, 0, 1),
	)
	out := BuildTableIX(res, testGeo())
	if out.TotalHops != 4 || out.LoopHops != 2 {
		t.Errorf("out = %+v", out)
	}
	if out.TotalASNs != 2 || out.TotalCountry != 2 {
		t.Errorf("totals = %+v", out)
	}
	if out.LoopASNs != 2 || out.LoopCountries != 2 {
		t.Errorf("loops = %+v", out)
	}
}

func TestBuildTableX(t *testing.T) {
	res := loopResult(
		hop("2400:1::1", true, 0, 1),                    // low-byte
		hop("2400:1::9f3c:7a21:e0d4:5b16", true, 0, 1),  // randomized
		hop("2400:1::aaaa:bbbb:cccc:dddd", false, 0, 1), // not vulnerable: excluded
	)
	d := BuildTableX(res)
	if d.Total != 2 {
		t.Fatalf("total = %d", d.Total)
	}
	if d.Counts[ipv6.IIDLowByte] != 1 || d.Counts[ipv6.IIDRandomized] != 1 {
		t.Errorf("counts = %+v", d.Counts)
	}
}

func TestBuildFigure5(t *testing.T) {
	res := loopResult(
		hop("2400:1::1", true, 0, 1),
		hop("2400:1::2", true, 0, 1),
		hop("2400:2::1", true, 0, 1),
		hop("2400:9::1", true, 0, 1), // outside geo db
	)
	out := BuildFigure5(res, testGeo(), 10)
	if len(out.TopASNs) != 2 || out.TopASNs[0].Label != "AS100" || out.TopASNs[0].Count != 2 {
		t.Errorf("ASNs = %+v", out.TopASNs)
	}
	if len(out.TopCountries) != 2 || out.TopCountries[0].Label != "BR" {
		t.Errorf("countries = %+v", out.TopCountries)
	}
	// Truncation.
	out = BuildFigure5(res, testGeo(), 1)
	if len(out.TopASNs) != 1 || len(out.TopCountries) != 1 {
		t.Errorf("truncated = %+v", out)
	}
}

func TestBuildTableXI(t *testing.T) {
	loops := map[int]*loopscan.ScanResult{
		12: loopResult(hop("2400:1::1", true, 1, 9), hop("2400:1::2", true, 0, 10), hop("2400:1::3", false, 5, 0)),
		3:  loopResult(hop("2400:2::1", true, 4, 0)),
	}
	rows := BuildTableXI(loops)
	if len(rows) != 2 || rows[0].ISPIndex != 3 || rows[1].ISPIndex != 12 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[1].Unique != 2 {
		t.Errorf("unique = %d", rows[1].Unique)
	}
	if rows[1].SamePct != 5 || rows[1].DiffPct != 95 {
		t.Errorf("same/diff = %v/%v", rows[1].SamePct, rows[1].DiffPct)
	}
	if rows[0].SamePct != 100 {
		t.Errorf("ISP 3 same = %v", rows[0].SamePct)
	}
}

func TestBuildFigure6(t *testing.T) {
	devices := []LoopDeviceEvidence{
		{Addr: ipv6.MustParseAddr("2400:1::1"), Vendor: "ZTE", ASN: 100},
		{Addr: ipv6.MustParseAddr("2400:1::2"), Vendor: "ZTE", ASN: 100},
		{Addr: ipv6.MustParseAddr("2400:1::3"), Vendor: "ZTE", ASN: 200},
		{Addr: ipv6.MustParseAddr("2400:2::1"), Vendor: "Skyworth", ASN: 200},
		{Addr: ipv6.MustParseAddr("2400:2::2"), Vendor: "", ASN: 200}, // unattributed
	}
	out := BuildFigure6(devices, 5, 5)
	if len(out.Vendors) != 2 || out.Vendors[0] != "ZTE" {
		t.Fatalf("vendors = %+v", out.Vendors)
	}
	if out.VendorTotals["ZTE"] != 3 {
		t.Errorf("totals = %+v", out.VendorTotals)
	}
	if out.Counts["ZTE"]["AS100"] != 2 || out.Counts["ZTE"]["AS200"] != 1 {
		t.Errorf("counts = %+v", out.Counts)
	}
	if out.Counts["Skyworth"]["AS200"] != 1 {
		t.Errorf("skyworth = %+v", out.Counts["Skyworth"])
	}
	// Truncation to top-1 vendor drops Skyworth.
	out = BuildFigure6(devices, 1, 1)
	if len(out.Vendors) != 1 || out.Vendors[0] != "ZTE" {
		t.Errorf("truncated vendors = %+v", out.Vendors)
	}
}
