package analysis

import (
	"testing"

	"repro/internal/ipv6"
	"repro/internal/registry"
	"repro/internal/services"
	"repro/internal/xmap"
	"repro/internal/zgrab"
)

var oui = registry.NewOUIDB()

// mkRec builds a record from raw parts.
func mkRec(t *testing.T, responder, probeDst string, isp int) *PeripheryRecord {
	t.Helper()
	return Enrich(xmap.Response{
		Responder: ipv6.MustParseAddr(responder),
		ProbeDst:  ipv6.MustParseAddr(probeDst),
		Kind:      xmap.KindDestUnreach,
		Code:      3,
	}, oui, isp)
}

// euiAddr fabricates an EUI-64 address for the given vendor.
func euiAddr(t *testing.T, vendor string, nic uint32, prefix string) string {
	t.Helper()
	o := oui.OUIsOf(vendor)[0]
	m := ipv6.MAC{byte(o >> 16), byte(o >> 8), byte(o), byte(nic >> 16), byte(nic >> 8), byte(nic)}
	return ipv6.SLAAC(ipv6.MustParsePrefix(prefix), m.EUI64IID()).String()
}

func withGrab(rec *PeripheryRecord, alive map[services.ID]string, vendor string) *PeripheryRecord {
	g := &zgrab.DeviceResult{Addr: rec.Addr, Results: map[services.ID]zgrab.ServiceResult{}, Vendor: vendor}
	for svc, sw := range alive {
		g.Results[svc] = zgrab.ServiceResult{Service: svc, Alive: true, Software: sw}
	}
	rec.AttachGrab(g)
	return rec
}

func TestEnrichClassifiesAndAttributes(t *testing.T) {
	addr := euiAddr(t, "ZTE", 0x010203, "2001:db8:1::/64")
	rec := mkRec(t, addr, "2001:db8:2::5", 3)
	if rec.Class != ipv6.IIDEUI64 || !rec.HasMAC {
		t.Fatalf("rec = %+v", rec)
	}
	if rec.VendorHW != "ZTE" || rec.Vendor() != "ZTE" {
		t.Errorf("vendor = %q/%q", rec.VendorHW, rec.Vendor())
	}
	if rec.Same {
		t.Error("different /64 flagged same")
	}
	if rec.IsUEVendor {
		t.Error("ZTE flagged as UE vendor")
	}

	ue := mkRec(t, euiAddr(t, "Apple", 1, "2001:db8:9::/64"), "2001:db8:9::1234", 3)
	if !ue.IsUEVendor {
		t.Error("Apple not flagged as UE vendor")
	}
	if !ue.Same {
		t.Error("same /64 not flagged")
	}
}

func TestVendorFallsBackToApp(t *testing.T) {
	rec := mkRec(t, "2001:db8::9f3c:7a21:e0d4:5b16", "2001:db8::1", 1)
	if rec.Vendor() != "" {
		t.Fatalf("random IID attributed to %q", rec.Vendor())
	}
	withGrab(rec, map[services.ID]string{services.SvcHTTP80: "httpd"}, "TP-Link")
	if rec.Vendor() != "TP-Link" {
		t.Errorf("Vendor() = %q", rec.Vendor())
	}
}

func TestBuildTableIIAggregation(t *testing.T) {
	recs := []*PeripheryRecord{
		mkRec(t, euiAddr(t, "ZTE", 1, "2001:db8:a::/64"), "2001:db8:a::1", 1), // same, EUI
		mkRec(t, "2001:db8:b::1111:2222:3333:4444", "2001:db8:c::9", 1),       // diff
		mkRec(t, euiAddr(t, "ZTE", 1, "2001:db8:d::/64"), "2001:db8:d::7", 1), // same MAC as first
		mkRec(t, "2001:db8:f::aaaa:bbbb:cccc:dddd", "2001:db8:f::1", 2),       // other ISP
	}
	rows := BuildTableII(recs)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	r1 := rows[0]
	if r1.ISPIndex != 1 || r1.UniqueHops != 3 {
		t.Fatalf("row 1 = %+v", r1)
	}
	if r1.EUI64 != 2 || r1.UniqueMAC != 1 {
		t.Errorf("EUI=%d uniqMAC=%d, want 2/1 (repeated MAC)", r1.EUI64, r1.UniqueMAC)
	}
	if r1.MACPct != 50 {
		t.Errorf("MACPct = %v", r1.MACPct)
	}
	if r1.SamePct < 66 || r1.SamePct > 67 {
		t.Errorf("SamePct = %v", r1.SamePct)
	}
	if r1.Unique64 != 3 || r1.Pct64 != 100 {
		t.Errorf("/64s = %d (%.1f%%)", r1.Unique64, r1.Pct64)
	}
}

func TestIIDDist(t *testing.T) {
	recs := []*PeripheryRecord{
		mkRec(t, "2001:db8::1", "2001:db8::2", 1),                   // low-byte
		mkRec(t, "2001:db8::9f3c:7a21:e0d4:5b16", "2001:db8::3", 1), // randomized
		mkRec(t, "2001:db8::9e2d:6b10:d0c3:4a05", "2001:db8::4", 1), // randomized
	}
	d := BuildTableIII(recs)
	if d.Total != 3 {
		t.Fatalf("total = %d", d.Total)
	}
	if d.Counts[ipv6.IIDLowByte] != 1 || d.Counts[ipv6.IIDRandomized] != 2 {
		t.Errorf("counts = %+v", d.Counts)
	}
	if d.Pct(ipv6.IIDLowByte) < 33 || d.Pct(ipv6.IIDLowByte) > 34 {
		t.Errorf("pct = %v", d.Pct(ipv6.IIDLowByte))
	}
	if (IIDDist{}).Pct(ipv6.IIDEUI64) != 0 {
		t.Error("empty dist pct != 0")
	}
}

func TestBuildTableIVSplitsUE(t *testing.T) {
	recs := []*PeripheryRecord{
		mkRec(t, euiAddr(t, "ZTE", 1, "2001:db8:1::/64"), "2001:db8:1::9", 1),
		mkRec(t, euiAddr(t, "ZTE", 2, "2001:db8:2::/64"), "2001:db8:2::9", 1),
		mkRec(t, euiAddr(t, "Samsung", 3, "2001:db8:3::/64"), "2001:db8:3::9", 1),
		mkRec(t, "2001:db8:4::9f3c:7a21:e0d4:5b16", "2001:db8:4::9", 1), // unattributed
	}
	cpe, ue := BuildTableIV(recs)
	if len(cpe) != 1 || cpe[0].Vendor != "ZTE" || cpe[0].Count != 2 {
		t.Errorf("cpe = %+v", cpe)
	}
	if len(ue) != 1 || ue[0].Vendor != "Samsung" || ue[0].Count != 1 {
		t.Errorf("ue = %+v", ue)
	}
}

func TestTableVIIAndMatrix(t *testing.T) {
	a := withGrab(mkRec(t, "2001:db8:1::aaaa:bbbb:cccc:dddd", "2001:db8:1::9", 1),
		map[services.ID]string{services.SvcDNS: "dnsmasq-2.45", services.SvcHTTP80: "micro_httpd"}, "Youhua Tech")
	b := withGrab(mkRec(t, "2001:db8:2::aaaa:bbbb:cccc:eeee", "2001:db8:2::9", 1),
		map[services.ID]string{services.SvcHTTP8080: "Jetty 6.1.26"}, "China Mobile")
	c := withGrab(mkRec(t, "2001:db8:3::aaaa:bbbb:cccc:ffff", "2001:db8:3::9", 1), nil, "")
	recs := []*PeripheryRecord{a, b, c}

	rows := BuildTableVII(recs)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	row := rows[0]
	if row.Discovered != 3 || row.Total != 2 {
		t.Fatalf("row = %+v", row)
	}
	if row.Alive[services.SvcDNS] != 1 || row.Alive[services.SvcHTTP8080] != 1 {
		t.Errorf("alive = %+v", row.Alive)
	}
	if row.Pct(services.SvcDNS) < 33 || row.Pct(services.SvcDNS) > 34 {
		t.Errorf("pct = %v", row.Pct(services.SvcDNS))
	}
	if row.TotalPct() < 66 || row.TotalPct() > 67 {
		t.Errorf("total pct = %v", row.TotalPct())
	}

	m := BuildVendorServiceMatrix(recs)
	top := m.TopVendors(10)
	if len(top) != 2 {
		t.Fatalf("top = %+v", top)
	}
	within := m.TopVendorsWithin(services.SvcDNS, 10)
	if len(within) != 1 || within[0].Vendor != "Youhua Tech" {
		t.Errorf("within DNS = %+v", within)
	}

	sw := BuildTableVIII(recs)
	if len(sw[services.SvcDNS]) != 1 || sw[services.SvcDNS][0].CVEs != 16 {
		t.Errorf("sw DNS = %+v", sw[services.SvcDNS])
	}
}

func TestWithAliveServices(t *testing.T) {
	a := withGrab(mkRec(t, "2001:db8:1::1234:5678:9abc:def0", "2001:db8:1::9", 1),
		map[services.ID]string{services.SvcDNS: "x"}, "")
	b := mkRec(t, "2001:db8:2::1234:5678:9abc:def1", "2001:db8:2::9", 1)
	got := WithAliveServices([]*PeripheryRecord{a, b})
	if len(got) != 1 || got[0] != a {
		t.Errorf("got = %+v", got)
	}
}
