package bgp

import (
	"testing"
)

func TestGenerateShape(t *testing.T) {
	tbl, err := Generate(GenConfig{Seed: 1, NumASes: 500, MaxPrefixes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Adverts) < 500 {
		t.Errorf("adverts = %d", len(tbl.Adverts))
	}
	asns := tbl.ASNs()
	if len(asns) == 0 || len(asns) > 500 {
		t.Errorf("ASNs = %d", len(asns))
	}
	countries := tbl.Countries()
	if len(countries) < 20 {
		t.Errorf("countries = %d", len(countries))
	}
	// Prefixes are unique /32s.
	seen := map[string]bool{}
	for _, a := range tbl.Adverts {
		if a.Prefix.Bits() != 32 {
			t.Fatalf("prefix %s not /32", a.Prefix)
		}
		if seen[a.Prefix.String()] {
			t.Fatalf("duplicate prefix %s", a.Prefix)
		}
		seen[a.Prefix.String()] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenConfig{Seed: 7, NumASes: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenConfig{Seed: 7, NumASes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Adverts) != len(b.Adverts) {
		t.Fatal("lengths differ")
	}
	for i := range a.Adverts {
		if a.Adverts[i] != b.Adverts[i] {
			t.Fatalf("advert %d differs", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Seed: 1, NumASes: 0}); err == nil {
		t.Error("zero ASes accepted")
	}
}

func TestGeoDBMatchesTable(t *testing.T) {
	tbl, err := Generate(GenConfig{Seed: 3, NumASes: 50})
	if err != nil {
		t.Fatal(err)
	}
	g := tbl.GeoDB()
	for _, a := range tbl.Adverts {
		e, ok := g.Lookup(a.Prefix.Addr().Next())
		if !ok || e.ASN != a.ASN || e.Country != a.Country {
			t.Fatalf("geo lookup for %s = %+v,%v", a.Prefix, e, ok)
		}
	}
}
