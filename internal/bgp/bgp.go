// Package bgp synthesizes a global IPv6 BGP table — the stand-in for the
// Routeviews dump the paper scans in Section VI-B to measure how widely
// the routing-loop flaw is distributed across ASes and countries.
package bgp

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ipv6"
	"repro/internal/registry"
	"repro/internal/uint128"
)

// Advert is one advertised prefix with its origin metadata.
type Advert struct {
	Prefix  ipv6.Prefix
	ASN     int
	Country string
}

// Table is a synthetic global routing table.
type Table struct {
	Adverts []Advert
}

// loopCountryWeights biases loop-vulnerable deployments toward the
// countries of the paper's Figure 5 (BR, CN, EC, VN, US, MM, IN, GB, DE,
// CH/CZ lead the distribution).
var loopCountryWeights = []struct {
	cc     string
	weight int
}{
	{"BR", 28}, {"CN", 20}, {"EC", 12}, {"VN", 10}, {"US", 8},
	{"MM", 6}, {"IN", 5}, {"GB", 4}, {"DE", 3}, {"CH", 2}, {"CZ", 2},
}

// fillerCountries pads the universe toward the paper's 170 countries.
var fillerCountries = []string{
	"JP", "KR", "FR", "IT", "ES", "NL", "SE", "NO", "FI", "DK", "PL",
	"RU", "UA", "TR", "GR", "PT", "BE", "AT", "IE", "AU", "NZ", "CA",
	"MX", "AR", "CL", "CO", "PE", "ZA", "EG", "NG", "KE", "MA", "SA",
	"AE", "IL", "PK", "BD", "LK", "TH", "MY", "SG", "ID", "PH", "TW",
	"HK", "RO", "BG", "HU", "SK", "SI", "HR", "RS", "LT", "LV", "EE",
}

// GenConfig parameterizes table generation.
type GenConfig struct {
	Seed        int64
	NumASes     int // number of origin ASes
	MaxPrefixes int // max adverts per AS (min 1)
}

// Generate builds a deterministic synthetic table. Prefixes are /32s
// carved from 2400::/12.
func Generate(cfg GenConfig) (*Table, error) {
	if cfg.NumASes <= 0 {
		return nil, fmt.Errorf("bgp: NumASes must be positive")
	}
	if cfg.MaxPrefixes <= 0 {
		cfg.MaxPrefixes = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := ipv6.MustParsePrefix("2400::/12")

	countries := make([]string, 0, len(loopCountryWeights)+len(fillerCountries))
	for _, e := range loopCountryWeights {
		for i := 0; i < e.weight; i++ {
			countries = append(countries, e.cc)
		}
	}
	countries = append(countries, fillerCountries...)

	t := &Table{}
	next := uint64(1)
	for i := 0; i < cfg.NumASes; i++ {
		asn := 10000 + rng.Intn(200000)
		cc := countries[rng.Intn(len(countries))]
		n := 1 + rng.Intn(cfg.MaxPrefixes)
		for j := 0; j < n; j++ {
			p, err := base.Sub(32, uint128.From64(next))
			if err != nil {
				return nil, fmt.Errorf("bgp: address space exhausted: %w", err)
			}
			next++
			t.Adverts = append(t.Adverts, Advert{Prefix: p, ASN: asn, Country: cc})
		}
	}
	return t, nil
}

// GeoDB builds the geolocation database corresponding to the table.
func (t *Table) GeoDB() *registry.GeoDB {
	g := registry.NewGeoDB()
	for _, a := range t.Adverts {
		g.Add(a.Prefix, registry.GeoEntry{ASN: a.ASN, Country: a.Country})
	}
	return g
}

// ASNs returns the distinct origin ASes.
func (t *Table) ASNs() []int {
	seen := map[int]bool{}
	for _, a := range t.Adverts {
		seen[a.ASN] = true
	}
	out := make([]int, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// Countries returns the distinct countries.
func (t *Table) Countries() []string {
	seen := map[string]bool{}
	for _, a := range t.Adverts {
		seen[a.Country] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
