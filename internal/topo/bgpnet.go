package topo

import (
	"fmt"
	"math/rand"

	"repro/internal/bgp"
	"repro/internal/ipv6"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/uint128"
)

// BGPConfig parameterizes the Section VI-B BGP-universe deployment: the
// scan of every globally advertised prefix's 16-bit sub-prefix window
// that produced the paper's Table IX / Table X / Figure 5.
type BGPConfig struct {
	Seed int64
	// NumASes sizes the synthetic Routeviews table (paper: ~21k origin
	// ASes, ~101k prefixes; default 600 for simulation scale).
	NumASes int
	// WindowWidth is the per-prefix scan width (paper: 16; default 8).
	WindowWidth int
	// MeanDevices is the average responding-router count per advertised
	// prefix (paper: ~40).
	MeanDevices int
	// LoopBase is the baseline probability that a device is
	// loop-vulnerable before country/AS weighting (paper observes
	// ~3.2% of last hops).
	LoopBase float64
}

// BGPDevice is ground truth for one device in the BGP universe.
type BGPDevice struct {
	Advert bgp.Advert
	Addr   ipv6.Addr
	Class  ipv6.IIDClass
	Vuln   bool
	CPE    *netsim.CPE
}

// BGPDeployment is the instantiated BGP universe.
type BGPDeployment struct {
	Engine  *netsim.Engine
	Edge    *netsim.Edge
	Core    *netsim.Router
	Table   *bgp.Table
	Geo     *registry.GeoDB
	Devices []*BGPDevice
	// Windows lists one scan window per advertised prefix.
	Windows []ipv6.Window
}

// bgpLoopCountryMult reflects Figure 5: countries where vulnerable
// deployments concentrate.
var bgpLoopCountryMult = map[string]float64{
	"BR": 6.0, "CN": 4.5, "EC": 4.0, "VN": 3.5, "US": 2.0,
	"MM": 3.0, "IN": 1.8, "GB": 1.5, "DE": 1.2, "CH": 1.0, "CZ": 1.0,
}

// bgpIIDMix is the Table X interface-identifier mix of the BGP-universe
// last hops: manually configured infrastructure shows far more low-byte
// addresses than residential CPEs.
var bgpIIDMix = []struct {
	class ipv6.IIDClass
	frac  float64
}{
	{ipv6.IIDRandomized, 0.45},
	{ipv6.IIDLowByte, 0.30},
	{ipv6.IIDEUI64, 0.19},
	{ipv6.IIDEmbedIPv4, 0.05},
	{ipv6.IIDBytePattern, 0.01},
}

// BuildBGPUniverse instantiates the deployment.
func BuildBGPUniverse(cfg BGPConfig) (*BGPDeployment, error) {
	if cfg.NumASes == 0 {
		cfg.NumASes = 600
	}
	if cfg.WindowWidth == 0 {
		cfg.WindowWidth = 8
	}
	if cfg.WindowWidth < 4 || cfg.WindowWidth > 16 {
		return nil, fmt.Errorf("topo: BGP window width %d out of [4,16]", cfg.WindowWidth)
	}
	if cfg.MeanDevices == 0 {
		cfg.MeanDevices = 12
	}
	if cfg.LoopBase == 0 {
		cfg.LoopBase = 0.016
	}

	table, err := bgp.Generate(bgp.GenConfig{Seed: cfg.Seed, NumASes: cfg.NumASes, MaxPrefixes: 2})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	iidGen := ipv6.NewIIDGenerator(cfg.Seed + 199)
	oui := registry.NewOUIDB()

	dep := &BGPDeployment{
		Engine: netsim.New(cfg.Seed),
		Table:  table,
		Geo:    table.GeoDB(),
	}
	dep.Edge = netsim.NewEdge("scanner", ScannerAddr)
	dep.Core = netsim.NewRouter("core", netsim.ErrorPolicy{})
	coreScan := dep.Core.AddIface(ipv6.MustParseAddr("2001:beef::1"), "core:scan")
	dep.Engine.Connect(dep.Edge.Iface(), coreScan, 0)
	dep.Core.AddRoute(ipv6.MustParsePrefix("2001:beef::/64"), coreScan)
	// Border transit hop: keeps the hop-limit parity such that looping
	// packets expire at the periphery (see topo.Deployment.Border).
	border := netsim.NewRouter("border", netsim.ErrorPolicy{})
	coreBorder := dep.Core.AddIface(ipv6.MustParseAddr("2001:face::1"), "core:border")
	borderUp := border.AddIface(ipv6.MustParseAddr("2001:face::2"), "border:up")
	dep.Engine.Connect(coreBorder, borderUp, 0)
	border.AddRoute(ipv6.MustParsePrefix("::/0"), borderUp)

	// Per-AS loop multiplier: a small set of ASes are dramatically worse
	// (one vendor dominating an eyeball network), which concentrates the
	// Figure 5 top-10.
	asMult := map[int]float64{}
	for _, asn := range table.ASNs() {
		m := 0.5 + rng.Float64()
		if rng.Float64() < 0.05 {
			m *= 8 // a vulnerable-by-default vendor fleet
		}
		asMult[asn] = m
	}

	linkIdx := 0
	for _, adv := range table.Adverts {
		subLen := adv.Prefix.Bits() + cfg.WindowWidth // e.g. /32 -> /40s or /48s
		window, err := ipv6.NewWindow(adv.Prefix, subLen)
		if err != nil {
			return nil, err
		}
		dep.Windows = append(dep.Windows, window)

		isp := netsim.NewISPRouter(fmt.Sprintf("as%d-%s", adv.ASN, adv.Prefix), adv.Prefix, netsim.ErrorPolicy{
			// The BGP universe contains many networks that silently
			// filter; model a fraction to keep hit counts paper-shaped.
			Suppress: rng.Float64() < 0.2,
		})
		upNet, err := adv.Prefix.Sub(64, maxIndex(adv.Prefix, 64))
		if err != nil {
			return nil, err
		}
		borderIf := border.AddIface(ipv6.SLAAC(upNet, 1), fmt.Sprintf("border:bgp%d", linkIdx))
		ispUp := isp.AddIface(ipv6.SLAAC(upNet, 2), "isp:up")
		dep.Engine.Connect(borderIf, ispUp, 0)
		border.AddRoute(adv.Prefix, borderIf)
		dep.Core.AddRoute(adv.Prefix, coreBorder)
		isp.SetUpstream(ispUp)
		linkIdx++

		// Devices: each occupies one sub-prefix of the window.
		n := 1 + rng.Intn(cfg.MeanDevices*2)
		capacity := 1 << cfg.WindowWidth
		if n > capacity/2 {
			n = capacity / 2
		}
		perm := rng.Perm(capacity)

		mult := asMult[adv.ASN]
		if m, ok := bgpLoopCountryMult[adv.Country]; ok {
			mult *= m
		}
		loopP := cfg.LoopBase * mult
		if loopP > 0.9 {
			loopP = 0.9
		}

		for d := 0; d < n; d++ {
			deleg, err := window.Sub(uint128.From64(uint64(perm[d])))
			if err != nil {
				return nil, err
			}
			class := pickBGPClass(rng)
			vendor := registry.CPEVendors[rng.Intn(len(registry.CPEVendors))]
			ouis := oui.OUIsOf(vendor)
			iid, _ := iidGen.Generate(class, ouis[rng.Intn(len(ouis))])

			// The device answers for its whole sub-prefix; its own
			// address sits in the first /64.
			wan64, err := deleg.Sub(64, uint128.Zero)
			if err != nil {
				if deleg.Bits() == 64 {
					wan64 = deleg
				} else {
					return nil, err
				}
			}
			addr := ipv6.SLAAC(wan64, iid)
			vuln := rng.Float64() < loopP
			cpe := netsim.NewCPE(netsim.CPEConfig{
				Name:      fmt.Sprintf("bgp-%d-%d", linkIdx, d),
				WANAddr:   addr,
				WANPrefix: wan64,
				Delegated: deleg,
				Behavior:  netsim.CPEBehavior{VulnLAN: vuln},
			})
			down := isp.AddIface(ipv6.SLAAC(upNet, 3), fmt.Sprintf("isp:d%d", d))
			dep.Engine.Connect(down, cpe.WAN(), 0)
			if err := isp.Delegate(deleg, down); err != nil {
				return nil, err
			}
			dep.Devices = append(dep.Devices, &BGPDevice{
				Advert: adv, Addr: addr, Class: class, Vuln: vuln, CPE: cpe,
			})
		}
	}
	return dep, nil
}

// pickBGPClass draws from the Table X mix.
func pickBGPClass(rng *rand.Rand) ipv6.IIDClass {
	r := rng.Float64()
	for _, e := range bgpIIDMix {
		if r < e.frac {
			return e.class
		}
		r -= e.frac
	}
	return ipv6.IIDRandomized
}
