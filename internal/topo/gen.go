package topo

import (
	"fmt"
	"math/rand"

	"repro/internal/ipv6"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/services"
	"repro/internal/uint128"
)

// Config parameterizes deployment generation.
type Config struct {
	// Seed drives every random choice; equal seeds give identical
	// deployments.
	Seed int64
	// Scale multiplies the paper's per-ISP device counts (Table II).
	// The default 1/1024 turns the paper's 52.5M peripheries into ~51k
	// simulated devices.
	Scale float64
	// WindowWidth is the iterated bit width of each ISP's scan window
	// (the paper uses 32; the default here is 16, preserving shape at
	// simulation scale).
	WindowWidth int
	// MaxDevicesPerISP caps population for fast tests (0 = no cap).
	MaxDevicesPerISP int
	// OnlyISPs, when non-empty, restricts generation to these Table VII
	// indices (1-15).
	OnlyISPs []int
	// PatchLoops applies the Section VII mitigation: every CPE installs
	// the RFC 7084 unreachable route, eliminating the routing loop.
	PatchLoops bool
	// FilterPings applies the stricter Section VII mitigation: the
	// periphery stops emitting ICMPv6 errors for probes entirely
	// (re-evaluating RFC 4890's advice), which defeats discovery.
	FilterPings bool
	// Shards splits the simulated Internet across this many independent
	// engine shards (a netsim.EngineGroup with a replicated core/border
	// spine); 0 or 1 builds the classic single-engine deployment.
	// Subscriber prefixes are assigned to shards by contiguous window
	// chunk, so concurrent scanners pump disjoint serialization domains.
	// With more than one shard, inject through Deployment.Group (or
	// xmap.NewGroupDriver), which routes each probe to the owning shard.
	Shards int
	// FastPath toggles the engines' compiled forwarding fast path
	// (netsim flow cache). nil means the engine default (enabled);
	// pointing at false forces every delivery onto the interpreted
	// path, for A/B measurement and differential testing.
	FastPath *bool
	// Hostile plants adversarial responders (netsim.Hostile) inside ISP
	// scan windows: each spec reserves an aligned region of window cells
	// no honest device may occupy and delegates it to a hostile node.
	// The planted regions are recorded as ground truth on the
	// deployment, so detector oracles can score precision and recall.
	Hostile []HostileSpec
}

// HostileSpec plants one adversarial responder in one ISP's window.
type HostileSpec struct {
	// ISP is the Table VII index (1-15) of the block to poison; it must
	// be among the ISPs the build materializes.
	ISP int
	// Mode is the responder model; zero means netsim.HostileAliased.
	Mode netsim.HostileMode
	// RegionBits is the claimed region's prefix length, in
	// (windowBase, DelegLen]; zero means DelegLen (one window cell).
	RegionBits int
	// StormFactor is the netsim.HostileStorm reply multiplier.
	StormFactor int
}

// HostileRegion is ground truth for one planted adversarial responder.
type HostileRegion struct {
	Prefix ipv6.Prefix
	Mode   netsim.HostileMode
	Node   *netsim.Hostile
}

// DefaultScale is 1/1024 of the paper's population.
const DefaultScale = 1.0 / 1024

// Device is the ground truth for one generated periphery.
type Device struct {
	Spec     *ISPSpec
	Vendor   string
	IsUE     bool
	WANAddr  ipv6.Addr
	Class    ipv6.IIDClass
	MAC      ipv6.MAC
	HasMAC   bool
	Services map[services.ID]string
	VulnWAN  bool
	VulnLAN  bool
	Model    addrModel

	// CPE/UE is the simulator node (exactly one non-nil).
	CPE *netsim.CPE
	UE  *netsim.UE
	// AccessLink is the subscriber link (for amplification accounting).
	AccessLink *netsim.Link
}

// Vulnerable reports whether the device has any routing-loop flaw.
func (d *Device) Vulnerable() bool { return d.VulnWAN || d.VulnLAN }

// ISPDeployment is one generated ISP block.
type ISPDeployment struct {
	Spec   *ISPSpec
	Block  ipv6.Prefix
	Router *netsim.ISPRouter
	// Routers holds one ISP-router replica per engine shard (all with
	// the same name, block and interface addresses); Routers[0] ==
	// Router. A replica serves the subscribers whose window chunks its
	// shard owns and answers unreachable for the rest of the block.
	Routers []*netsim.ISPRouter
	Window  ipv6.Window
	Devices []*Device
	// Hostile lists the adversarial regions planted in this block.
	Hostile []HostileRegion

	downAddr ipv6.Addr // shared provider-side address of subscriber links
	// clonedMACs is the pool future devices may clone from.
	clonedMACs []ipv6.MAC
	// shards/shardShift map a window sub-prefix index to its owning
	// shard: shard = (idx >> shardShift) % shards.
	shards     int
	shardShift int
}

// shardOf returns the engine shard owning window sub-prefix index idx.
func (isp *ISPDeployment) shardOf(idx uint64) int {
	if isp.shards <= 1 {
		return 0
	}
	return int(idx>>isp.shardShift) % isp.shards
}

// Deployment is the full simulated Internet of the Table I ISPs.
type Deployment struct {
	// Engine is shard 0 — the whole deployment in a classic build.
	Engine *netsim.Engine
	// Group is the sharded execution substrate; always non-nil (a group
	// of one when Config.Shards <= 1). With more than one shard, inject
	// through the group so probes reach the shard owning their
	// destination.
	Group *netsim.EngineGroup
	Edge  *netsim.Edge
	// Core is shard 0's core router (each shard replicates the spine).
	Core *netsim.Router
	// Border is the transit hop between core and the ISPs; its presence
	// fixes the hop-limit parity so looping packets expire at the CPE
	// (whose Time Exceeded then exposes the periphery address), matching
	// the path lengths the paper observes. Shard 0's replica.
	Border *netsim.Router
	ISPs   []*ISPDeployment
	Geo    *registry.GeoDB
	OUI    *registry.OUIDB

	byWAN       map[ipv6.Addr]*Device
	cores       []*netsim.Router
	borders     []*netsim.Router
	coreBorders []*netsim.Iface
}

// ScannerAddr is the vantage address of every generated deployment.
var ScannerAddr = ipv6.MustParseAddr("2001:beef::100")

// DeviceByWAN resolves ground truth for a discovered WAN address.
func (d *Deployment) DeviceByWAN(a ipv6.Addr) (*Device, bool) {
	dev, ok := d.byWAN[a]
	return dev, ok
}

// Devices returns every generated device across ISPs.
func (d *Deployment) Devices() []*Device {
	var out []*Device
	for _, isp := range d.ISPs {
		out = append(out, isp.Devices...)
	}
	return out
}

// HostileRegions returns the planted adversarial ground truth across
// ISPs.
func (d *Deployment) HostileRegions() []HostileRegion {
	var out []HostileRegion
	for _, isp := range d.ISPs {
		out = append(out, isp.Hostile...)
	}
	return out
}

// BlockFor returns the ISP block prefix for a spec: each ISP owns the
// (0x2400+index)::/16 slice, and the block is its first /BlockLen.
func BlockFor(spec *ISPSpec) ipv6.Prefix {
	seg0 := uint16(0x2400 + spec.Index)
	return ipv6.MustPrefix(ipv6.AddrFromSegments([8]uint16{seg0}), spec.BlockLen)
}

// Build generates the deployment.
func Build(cfg Config) (*Deployment, error) {
	if cfg.Scale == 0 {
		cfg.Scale = DefaultScale
	}
	if cfg.Scale < 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("topo: scale %v out of (0,1]", cfg.Scale)
	}
	if cfg.WindowWidth == 0 {
		cfg.WindowWidth = 16
	}
	if cfg.WindowWidth < 4 || cfg.WindowWidth > 28 {
		return nil, fmt.Errorf("topo: window width %d out of [4,28]", cfg.WindowWidth)
	}
	nshards := cfg.Shards
	if nshards < 1 {
		nshards = 1
	}
	if shardBitsFor(nshards) > cfg.WindowWidth {
		return nil, fmt.Errorf("topo: %d shards exceed window width %d", nshards, cfg.WindowWidth)
	}

	dep := &Deployment{
		Group: netsim.NewEngineGroup(cfg.Seed, nshards),
		Geo:   registry.NewGeoDB(),
		OUI:   registry.NewOUIDB(),
		byWAN: make(map[ipv6.Addr]*Device),
	}
	if cfg.FastPath != nil && !*cfg.FastPath {
		dep.Group.SetFastPath(false)
	}
	dep.Engine = dep.Group.Shard(0)
	dep.Edge = netsim.NewEdge("scanner", ScannerAddr)
	scanNet := ipv6.MustParsePrefix("2001:beef::/64")
	// Replicate the core/border spine per shard: the same addresses on
	// disjoint engines, so a probe's path length — and therefore every
	// hop-limit observation — is identical whichever shard serves it.
	for s := 0; s < nshards; s++ {
		suffix := ""
		if s > 0 {
			suffix = fmt.Sprintf("%d", s)
		}
		eng := dep.Group.Shard(s)
		core := netsim.NewRouter("core"+suffix, netsim.ErrorPolicy{})
		border := netsim.NewRouter("border"+suffix, netsim.ErrorPolicy{})
		edgeIf := dep.Edge.Iface()
		if s > 0 {
			edgeIf = dep.Edge.AddIface(fmt.Sprintf("scanner:if%d", s))
		}
		coreScan := core.AddIface(ipv6.MustParseAddr("2001:beef::1"), "core:scan"+suffix)
		eng.Connect(edgeIf, coreScan, 0)
		core.AddRoute(scanNet, coreScan)
		coreBorder := core.AddIface(ipv6.MustParseAddr("2001:face::1"), "core:border"+suffix)
		borderUp := border.AddIface(ipv6.MustParseAddr("2001:face::2"), "border:up"+suffix)
		eng.Connect(coreBorder, borderUp, 0)
		border.AddRoute(ipv6.MustParsePrefix("::/0"), borderUp)
		dep.Group.SetEntry(s, edgeIf)
		dep.cores = append(dep.cores, core)
		dep.borders = append(dep.borders, border)
		dep.coreBorders = append(dep.coreBorders, coreBorder)
	}
	dep.Core, dep.Border = dep.cores[0], dep.borders[0]

	want := func(index int) bool {
		if len(cfg.OnlyISPs) == 0 {
			return true
		}
		for _, i := range cfg.OnlyISPs {
			if i == index {
				return true
			}
		}
		return false
	}

	for i := range Specs {
		spec := &Specs[i]
		if !want(spec.Index) {
			continue
		}
		isp, err := buildISP(dep, spec, cfg)
		if err != nil {
			return nil, fmt.Errorf("topo: building ISP %d (%s): %w", spec.Index, spec.Name, err)
		}
		dep.ISPs = append(dep.ISPs, isp)
	}
	return dep, nil
}

// buildISP populates one ISP block.
func buildISP(dep *Deployment, spec *ISPSpec, cfg Config) (*ISPDeployment, error) {
	rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(spec.Index)))
	iidGen := ipv6.NewIIDGenerator(cfg.Seed*2000 + int64(spec.Index))

	block := BlockFor(spec)
	dep.Geo.Add(block, registry.GeoEntry{ASN: spec.ASN, Country: spec.Country})

	// Core <-> ISP link: addresses carved from a dedicated /64 of the
	// ISP block's tail, outside any scan window.
	linkNet, err := block.Sub(64, maxIndex(block, 64))
	if err != nil {
		return nil, err
	}
	// Subscriber-facing links are unnumbered: every down interface
	// shares one provider-side address, as on a real BNG.
	downAddr := ipv6.SLAAC(linkNet, 3)

	// Scan window: the first (DelegLen-WindowWidth)-prefix of the block.
	winBase, err := block.Sub(spec.DelegLen-cfg.WindowWidth, uint128.Zero)
	if err != nil {
		return nil, err
	}
	window, err := ipv6.NewWindow(winBase, spec.DelegLen)
	if err != nil {
		return nil, err
	}

	nshards := dep.Group.NumShards()
	isp := &ISPDeployment{
		Spec: spec, Block: block, Window: window, downAddr: downAddr,
		shards:     nshards,
		shardShift: cfg.WindowWidth - shardBitsFor(nshards),
	}
	for s := 0; s < nshards; s++ {
		router := netsim.NewISPRouter(spec.Name, block, netsim.ErrorPolicy{})
		borderIf := dep.borders[s].AddIface(ipv6.SLAAC(linkNet, 1), fmt.Sprintf("border:isp%d", spec.Index))
		ispUp := router.AddIface(ipv6.SLAAC(linkNet, 2), "isp:up")
		dep.Group.Shard(s).Connect(borderIf, ispUp, 0)
		dep.borders[s].AddRoute(block, borderIf)
		dep.cores[s].AddRoute(block, dep.coreBorders[s])
		router.SetUpstream(ispUp)
		isp.Routers = append(isp.Routers, router)
	}
	isp.Router = isp.Routers[0]

	// Shard routing: the block falls back to shard 0 (link-net and
	// unassigned space outside the window answer identically on every
	// replica); the window splits into contiguous chunks assigned
	// round-robin, matching shardOf. Per-device overrides below pin
	// prefixes that land outside the device's primary chunk.
	dep.Group.Route(block, 0)
	if nshards > 1 {
		shardBits := shardBitsFor(nshards)
		for c := 0; c < 1<<shardBits; c++ {
			chunk, err := winBase.Sub(winBase.Bits()+shardBits, uint128.From64(uint64(c)))
			if err != nil {
				return nil, err
			}
			dep.Group.Route(chunk, c%nshards)
		}
	}

	n := int(float64(spec.PaperLastHops)*cfg.Scale + 0.5)
	if n < 1 {
		n = 1
	}
	if cfg.MaxDevicesPerISP > 0 && n > cfg.MaxDevicesPerISP {
		n = cfg.MaxDevicesPerISP
	}
	capacity := 1 << cfg.WindowWidth

	// Plant hostile regions first: each reserves an aligned run of
	// window cells from the top of the window downward, so honest
	// devices (whose indices come from the permutation below) can never
	// land inside an adversarial region — the ground truth stays exact.
	var used []bool
	reserved := 0
	top := capacity
	hostileN := 0
	for _, hs := range cfg.Hostile {
		if hs.ISP != spec.Index {
			continue
		}
		regionBits := hs.RegionBits
		if regionBits == 0 {
			regionBits = spec.DelegLen
		}
		if regionBits <= winBase.Bits() || regionBits > spec.DelegLen {
			return nil, fmt.Errorf("hostile region /%d outside window (/%d-%d)",
				regionBits, winBase.Bits(), spec.DelegLen)
		}
		if nshards > 1 && regionBits < winBase.Bits()+shardBitsFor(nshards) {
			return nil, fmt.Errorf("hostile region /%d wider than a /%d shard chunk",
				regionBits, winBase.Bits()+shardBitsFor(nshards))
		}
		cells := 1 << (spec.DelegLen - regionBits)
		top = (top - cells) &^ (cells - 1)
		if top < 0 {
			return nil, fmt.Errorf("hostile regions exceed window capacity %d", capacity)
		}
		if used == nil {
			used = make([]bool, capacity)
		}
		for c := top; c < top+cells; c++ {
			used[c] = true
		}
		reserved += cells
		region, err := winBase.Sub(regionBits, uint128.From64(uint64(top/cells)))
		if err != nil {
			return nil, err
		}
		mode := hs.Mode
		if mode == 0 {
			mode = netsim.HostileAliased
		}
		h := netsim.NewHostile(netsim.HostileConfig{
			Name:        fmt.Sprintf("%s-hostile%d", spec.Name, hostileN),
			Prefix:      region,
			Mode:        mode,
			Seed:        cfg.Seed*3000 + int64(spec.Index)*64 + int64(hostileN),
			StormFactor: hs.StormFactor,
		})
		shard := isp.shardOf(uint64(top))
		router := isp.Routers[shard]
		down := router.AddIface(downAddr, h.Name()+":down")
		dep.Group.Shard(shard).Connect(down, h.Iface(), 0)
		if err := router.Delegate(region, down); err != nil {
			return nil, err
		}
		if nshards > 1 {
			dep.Group.Route(region, shard)
		}
		isp.Hostile = append(isp.Hostile, HostileRegion{Prefix: region, Mode: mode, Node: h})
		hostileN++
	}

	if n*2+reserved > capacity {
		return nil, fmt.Errorf("population %d exceeds window capacity %d", n, capacity)
	}

	indices := rng.Perm(capacity)
	nextIdx := 0
	takeIdx := func() uint64 {
		for {
			v := indices[nextIdx]
			nextIdx++
			if used == nil || !used[v] {
				return uint64(v)
			}
		}
	}

	// Normalizers so per-ISP service/loop rates survive vendor weighting.
	meanSvcW := map[services.ID]float64{}
	var meanLoopW float64
	var totalShare float64
	for _, vw := range spec.VendorShare {
		totalShare += vw.Weight
	}
	for _, vw := range spec.VendorShare {
		frac := vw.Weight / totalShare
		meanLoopW += frac * loopWeight(vw.Vendor)
		for _, svc := range services.All {
			meanSvcW[svc] += frac * serviceWeight(vw.Vendor, svc)
		}
	}

	for devN := 0; devN < n; devN++ {
		dev, err := buildDevice(dep, isp, cfg, rng, iidGen, meanSvcW, meanLoopW, takeIdx, devN)
		if err != nil {
			return nil, err
		}
		isp.Devices = append(isp.Devices, dev)
		dep.byWAN[dev.WANAddr] = dev
	}
	return isp, nil
}

// routerIID is the interface identifier provider-side link addresses use;
// chosen outside every IID class the generator emits so it never collides
// with a device address.
const routerIID = 0xffff_ffff_ffff_fffe

// maxIndex returns the last sub-prefix index of the given length.
func maxIndex(p ipv6.Prefix, bits int) uint128.Uint128 {
	n, _ := p.NumSub(bits)
	return n.Sub64(1)
}

// shardBitsFor returns ceil(log2(n)): the window bits consumed by shard
// chunking.
func shardBitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

func pickVendor(rng *rand.Rand, shares []VendorWeight) string {
	var total float64
	for _, vw := range shares {
		total += vw.Weight
	}
	r := rng.Float64() * total
	for _, vw := range shares {
		if r < vw.Weight {
			return vw.Vendor
		}
		r -= vw.Weight
	}
	return shares[len(shares)-1].Vendor
}

// pickIIDClass draws a class with the ISP's EUI-64 rate and the paper's
// Table III remainder split.
func pickIIDClass(rng *rand.Rand, eui64Frac float64) ipv6.IIDClass {
	if rng.Float64() < eui64Frac {
		return ipv6.IIDEUI64
	}
	r := rng.Float64()
	switch {
	case r < 0.817:
		return ipv6.IIDRandomized
	case r < 0.817+0.113:
		return ipv6.IIDBytePattern
	case r < 0.817+0.113+0.059:
		return ipv6.IIDEmbedIPv4
	default:
		return ipv6.IIDLowByte
	}
}

func buildDevice(
	dep *Deployment, isp *ISPDeployment, cfg Config,
	rng *rand.Rand, iidGen *ipv6.IIDGenerator,
	meanSvcW map[services.ID]float64, meanLoopW float64,
	takeIdx func() uint64, devN int,
) (*Device, error) {
	spec := isp.Spec
	dev := &Device{Spec: spec}

	dev.IsUE = spec.Network == Mobile && rng.Float64() < spec.UEFrac
	eui64Frac := spec.PaperEUI64Frac
	if dev.IsUE {
		// Weight UE vendors toward the paper's Table IV ranking.
		dev.Vendor = registry.UEVendors[min(rng.Intn(len(registry.UEVendors)), rng.Intn(len(registry.UEVendors)))]
		// Handsets of the measurement era commonly derived their IID
		// from the radio MAC, which is how Table IV attributes them.
		eui64Frac = 0.35
	} else {
		dev.Vendor = pickVendor(rng, spec.VendorShare)
	}

	dev.Class = pickIIDClass(rng, eui64Frac)
	ouis := dep.OUI.OUIsOf(dev.Vendor)
	oui := ouis[rng.Intn(len(ouis))]
	iid, mac := iidGen.Generate(dev.Class, oui)
	if dev.Class == ipv6.IIDEUI64 {
		// A small share of devices clone a MAC already in the field
		// (duplicated firmware images; the paper's Table II observes
		// 3.5% repeated MACs).
		if len(isp.clonedMACs) > 0 && rng.Float64() < 0.035 {
			mac = isp.clonedMACs[rng.Intn(len(isp.clonedMACs))]
			iid = mac.EUI64IID()
		} else {
			isp.clonedMACs = append(isp.clonedMACs, mac)
		}
		dev.MAC, dev.HasMAC = mac, true
	}

	// Services.
	for _, svc := range services.All {
		base := spec.ServiceRate[svc]
		if base == 0 {
			continue
		}
		p := base * serviceWeight(dev.Vendor, svc) / meanSvcW[svc]
		if p > 0.97 {
			p = 0.97
		}
		if rng.Float64() < p {
			if dev.Services == nil {
				dev.Services = make(map[services.ID]string)
			}
			dev.Services[svc] = softwareFor(spec, dev.Vendor, svc)
		}
	}

	// Loop vulnerability.
	loopP := spec.LoopFrac * loopWeight(dev.Vendor) / meanLoopW
	vulnerable := rng.Float64() < loopP
	if cfg.PatchLoops {
		vulnerable = false
	}

	var stack netsim.LocalStack
	if len(dev.Services) > 0 {
		stack = services.NewStack(
			services.Config{Vendor: dev.Vendor, Software: dev.Services},
			[]byte(fmt.Sprintf("stack-%d-%d", spec.Index, devN)),
		)
	}

	name := fmt.Sprintf("%s-%d", spec.Name, devN)
	policy := netsim.ErrorPolicy{Suppress: cfg.FilterPings}

	switch {
	case spec.DelegLen == 64 && dev.IsUE:
		idx := takeIdx()
		shard := isp.shardOf(idx)
		router := isp.Routers[shard]
		prefix, err := isp.Window.Sub(uint128.From64(idx))
		if err != nil {
			return nil, err
		}
		dev.Model = modelShared64
		dev.WANAddr = ipv6.SLAAC(prefix, iid)
		ue := netsim.NewUE(name, dev.WANAddr, prefix, stack, policy)
		down := router.AddIface(isp.downAddr, name+":bs")
		dev.AccessLink = dep.Group.Shard(shard).Connect(down, ue.Iface(), 0)
		if err := router.Delegate(prefix, down); err != nil {
			return nil, err
		}
		dev.UE = ue

	case spec.DelegLen == 64:
		idx := takeIdx()
		shard := isp.shardOf(idx)
		router := isp.Routers[shard]
		wanPrefix, err := isp.Window.Sub(uint128.From64(idx))
		if err != nil {
			return nil, err
		}
		dev.WANAddr = ipv6.SLAAC(wanPrefix, iid)
		cpeCfg := netsim.CPEConfig{
			Name: name, WANAddr: dev.WANAddr, WANPrefix: wanPrefix,
			Stack: stack, Policy: policy,
		}
		dev.Model = modelShared64
		if rng.Float64() < spec.DualFrac {
			dev.Model = modelDual64
			lan, err := isp.Window.Sub(uint128.From64(takeIdx()))
			if err != nil {
				return nil, err
			}
			cpeCfg.Delegated = lan
			if isp.shards > 1 {
				// The LAN /64 may fall in another shard's chunk; pin it
				// to the shard holding the CPE.
				dep.Group.Route(lan, shard)
			}
		}
		if vulnerable {
			dev.VulnWAN = true
			if dev.Model == modelDual64 {
				dev.VulnLAN = true
			}
		}
		cpeCfg.Behavior = behaviorFor(dev)
		cpe := netsim.NewCPE(cpeCfg)
		down := router.AddIface(isp.downAddr, name+":down")
		dev.AccessLink = dep.Group.Shard(shard).Connect(down, cpe.WAN(), 0)
		if err := router.Delegate(wanPrefix, down); err != nil {
			return nil, err
		}
		if cpeCfg.Delegated.Bits() > 0 {
			if err := router.Delegate(cpeCfg.Delegated, down); err != nil {
				return nil, err
			}
		}
		dev.CPE = cpe

	default: // DelegLen < 64: delegated model
		idx := takeIdx()
		shard := isp.shardOf(idx)
		router := isp.Routers[shard]
		deleg, err := isp.Window.Sub(uint128.From64(idx))
		if err != nil {
			return nil, err
		}
		sub64s, _ := deleg.NumSub(64)
		pick64 := func() (ipv6.Prefix, error) {
			idx := uint128.From64(rng.Uint64()).Mod(sub64s)
			return deleg.Sub(64, idx)
		}
		var wanPrefix ipv6.Prefix
		if spec.WANInsideDelegation {
			wanPrefix, err = pick64()
			if err != nil {
				return nil, err
			}
		} else {
			// WAN /64 in a reserved region of the block outside the
			// scan window (the second window-size region).
			wanRegion, err := isp.Block.Sub(spec.DelegLen-cfg.WindowWidth, uint128.One)
			if err != nil {
				return nil, err
			}
			wanPrefix, err = wanRegion.Sub(64, uint128.From64(uint64(devN)))
			if err != nil {
				return nil, err
			}
			if isp.shards > 1 {
				// Outside the window, so outside chunk routing: pin the
				// WAN /64 to the shard holding the CPE.
				dep.Group.Route(wanPrefix, shard)
			}
		}
		dev.Model = modelDelegated
		dev.WANAddr = ipv6.SLAAC(wanPrefix, iid)
		subnet, err := pick64()
		if err != nil {
			return nil, err
		}
		if vulnerable {
			dev.VulnLAN = true
			if spec.WANInsideDelegation {
				dev.VulnWAN = true
			}
		}
		cpeCfg := netsim.CPEConfig{
			Name: name, WANAddr: dev.WANAddr, WANPrefix: wanPrefix,
			Delegated: deleg, Subnets: []ipv6.Prefix{subnet},
			LANAddr: ipv6.SLAAC(subnet, 1),
			Stack:   stack, Policy: policy,
		}
		cpeCfg.Behavior = behaviorFor(dev)
		cpe := netsim.NewCPE(cpeCfg)
		down := router.AddIface(isp.downAddr, name+":down")
		dev.AccessLink = dep.Group.Shard(shard).Connect(down, cpe.WAN(), 0)
		if err := router.Delegate(deleg, down); err != nil {
			return nil, err
		}
		if !spec.WANInsideDelegation {
			if err := router.Delegate(wanPrefix, down); err != nil {
				return nil, err
			}
		}
		dev.CPE = cpe
	}
	return dev, nil
}

// behaviorFor maps ground-truth flags to the CPE behavior struct.
func behaviorFor(dev *Device) netsim.CPEBehavior {
	b := netsim.CPEBehavior{VulnWAN: dev.VulnWAN, VulnLAN: dev.VulnLAN}
	if dev.Vendor == "Xiaomi" && dev.Vulnerable() {
		b.LoopCap = 12 // the ">10 times" mitigation class of Table XII
	}
	return b
}
