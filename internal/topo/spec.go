// Package topo generates the simulated deployments the experiments run
// against: the 15 ISP blocks of the paper's Table I populated with
// periphery devices whose prefix layout, interface-identifier mix,
// exposed services and routing-loop flaws are calibrated to the paper's
// measured distributions (Tables II-XI, Figures 2-6), plus the
// BGP-universe deployment of Section VI-B and the 95-router lab of
// Table XII.
package topo

import (
	"repro/internal/services"
)

// NetworkKind is the ISP network type of Table I.
type NetworkKind int

// Network kinds.
const (
	Broadband NetworkKind = iota + 1
	Mobile
	Enterprise
)

// String returns the paper's single-letter annotation spelled out.
func (k NetworkKind) String() string {
	switch k {
	case Broadband:
		return "Broadband"
	case Mobile:
		return "Mobile"
	case Enterprise:
		return "Enterprise"
	}
	return "Unknown"
}

// addrModel describes how a periphery's prefixes relate to the scan
// window (Section III-A's CPE/UE models as they appear to the scanner).
type addrModel int

const (
	// modelShared64: the device holds a single /64 (UE, or CPE whose WAN
	// and LAN prefix coincide); replies come from the probed /64
	// ("same" in Table II).
	modelShared64 addrModel = iota + 1
	// modelDelegated: the device holds a delegated /L (L<64); the WAN
	// /64 may sit inside the delegation (CN practice) or elsewhere in
	// the block (US practice).
	modelDelegated
	// modelDual64: WAN /64 and a separate LAN /64, both in the window
	// (the small "diff" share of /64-boundary ISPs).
	modelDual64
)

// ISPSpec is one row of Table I plus the calibration the generator needs.
type ISPSpec struct {
	Index    int    // 1-based, the paper's ISP numbering in Table VII
	Country  string // ISO code
	Network  NetworkKind
	Name     string
	ASN      int
	BlockLen int // ISP block length (Table I "Block")
	DelegLen int // inferred sub-prefix length for end users (Table I "Length")

	// PaperLastHops is the unique last-hop count of Table II, the basis
	// for scaled device populations.
	PaperLastHops int
	// PaperEUI64Frac is Table II's EUI-64 address share.
	PaperEUI64Frac float64
	// DualFrac is the share of devices holding a second, separate /64
	// delegation (produces the "diff" replies of /64-boundary ISPs).
	DualFrac float64
	// WANInsideDelegation places the WAN /64 inside the delegated
	// prefix (CN broadband practice; yields ~1/2^(64-L) "same").
	WANInsideDelegation bool
	// UEFrac is the share of devices modelled as user equipment
	// (phones); only meaningful for mobile networks.
	UEFrac float64
	// LoopFrac is the routing-loop-vulnerable share (Table XI).
	LoopFrac float64
	// ServiceRate is the per-service alive fraction (Table VII).
	ServiceRate map[services.ID]float64
	// VendorShare weights periphery vendors within this ISP.
	VendorShare []VendorWeight
}

// VendorWeight is one entry of an ISP's vendor mix.
type VendorWeight struct {
	Vendor string
	Weight float64
}

// svcRate abbreviates ServiceRate literals.
func svcRate(dns, ntp, ftp, ssh, tel, h80, tls, h8080 float64) map[services.ID]float64 {
	return map[services.ID]float64{
		services.SvcDNS: dns, services.SvcNTP: ntp, services.SvcFTP: ftp,
		services.SvcSSH: ssh, services.SvcTelnet: tel, services.SvcHTTP80: h80,
		services.SvcTLS: tls, services.SvcHTTP8080: h8080,
	}
}

// Specs is Table I with the calibration columns described above. Rates
// are fractions of discovered peripheries (Table VII), loop fractions are
// Table XI loops over Table II hops.
var Specs = []ISPSpec{
	{
		Index: 1, Country: "IN", Network: Broadband, Name: "Reliance Jio", ASN: 55836,
		BlockLen: 32, DelegLen: 64, PaperLastHops: 3_365_175, PaperEUI64Frac: 0.014,
		DualFrac: 0.002, LoopFrac: 0.0026,
		ServiceRate: svcRate(0.009, 0, 0, 0, 0, 0, 0, 0.0004),
		VendorShare: []VendorWeight{{"D-Link", 2}, {"TP-Link", 2}, {"Optilink", 3}, {"Tenda", 1}, {"MikroTik", 1}},
	},
	{
		Index: 2, Country: "IN", Network: Broadband, Name: "BSNL", ASN: 9829,
		BlockLen: 32, DelegLen: 64, PaperLastHops: 2_404, PaperEUI64Frac: 0.767,
		DualFrac: 0.656, LoopFrac: 0.135,
		ServiceRate: svcRate(0.002, 0.037, 0.009, 0.037, 0.023, 0.010, 0.008, 0.002),
		VendorShare: []VendorWeight{{"D-Link", 2}, {"MikroTik", 2}, {"TP-Link", 1}, {"Tenda", 1}},
	},
	{
		Index: 3, Country: "IN", Network: Mobile, Name: "Bharti Airtel", ASN: 45609,
		BlockLen: 32, DelegLen: 64, PaperLastHops: 22_542_690, PaperEUI64Frac: 0.014,
		DualFrac: 0.011, UEFrac: 0.01, LoopFrac: 0.0013,
		ServiceRate: svcRate(0.002, 0, 0, 0, 0, 0, 0, 0),
		VendorShare: []VendorWeight{{"Huawei", 1}, {"ZTE", 1}, {"Optilink", 1}},
	},
	{
		Index: 4, Country: "IN", Network: Mobile, Name: "Vadafone", ASN: 38266,
		BlockLen: 32, DelegLen: 64, PaperLastHops: 2_307_784, PaperEUI64Frac: 0.013,
		DualFrac: 0.002, UEFrac: 0.01, LoopFrac: 0.0001,
		ServiceRate: svcRate(0.0001, 0, 0, 0, 0, 0.0001, 0, 0.0003),
		VendorShare: []VendorWeight{{"Huawei", 1}, {"ZTE", 1}},
	},
	{
		Index: 5, Country: "US", Network: Broadband, Name: "Comcast", ASN: 7922,
		BlockLen: 24, DelegLen: 56, PaperLastHops: 87_308, PaperEUI64Frac: 0.95,
		LoopFrac:    0.0004,
		ServiceRate: svcRate(0.0001, 0.003, 0.0001, 0.0001, 0.001, 0.001, 0.001, 0.004),
		VendorShare: []VendorWeight{{"Technicolor", 3}, {"Netgear", 2}, {"Hitron Tech", 2}, {"Linksys", 1}, {"Asus", 1}},
	},
	{
		Index: 6, Country: "US", Network: Broadband, Name: "AT&T", ASN: 7018,
		BlockLen: 28, DelegLen: 60, PaperLastHops: 740_141, PaperEUI64Frac: 0.128,
		LoopFrac:    0.0022,
		ServiceRate: svcRate(0.005, 0.0004, 0.001, 0.0003, 0, 0.0005, 0.005, 0),
		VendorShare: []VendorWeight{{"Technicolor", 3}, {"D-Link", 1}, {"Netgear", 1}},
	},
	{
		Index: 7, Country: "US", Network: Broadband, Name: "Charter", ASN: 20115,
		BlockLen: 24, DelegLen: 56, PaperLastHops: 13_027, PaperEUI64Frac: 0.006,
		LoopFrac:    0.029,
		ServiceRate: svcRate(0.034, 0.004, 0, 0.004, 0, 0.002, 0.029, 0.027),
		VendorShare: []VendorWeight{{"Hitron Tech", 2}, {"Netgear", 2}, {"Asus", 1}, {"Linksys", 1}},
	},
	{
		Index: 8, Country: "US", Network: Broadband, Name: "CenturyLink", ASN: 209,
		BlockLen: 24, DelegLen: 56, PaperLastHops: 249_835, PaperEUI64Frac: 0.37,
		LoopFrac:    0.08,
		ServiceRate: svcRate(0.014, 0.060, 0.004, 0.008, 0.006, 0.0002, 0.012, 0),
		VendorShare: []VendorWeight{{"Technicolor", 2}, {"AVM", 2}, {"Netgear", 1}, {"Linksys", 1}},
	},
	{
		Index: 9, Country: "US", Network: Mobile, Name: "AT&T Mobility", ASN: 20057,
		BlockLen: 32, DelegLen: 64, PaperLastHops: 1_734_506, PaperEUI64Frac: 0.0003,
		DualFrac: 0.055, UEFrac: 0.02, LoopFrac: 0.0000012,
		ServiceRate: svcRate(0, 0, 0, 0, 0, 0.0004, 0.0004, 0.0003),
		VendorShare: []VendorWeight{{"Netgear", 1}, {"Linksys", 1}},
	},
	{
		Index: 10, Country: "US", Network: Enterprise, Name: "Mediacom", ASN: 30036,
		BlockLen: 28, DelegLen: 56, PaperLastHops: 38_399, PaperEUI64Frac: 0.004,
		LoopFrac:    0.186,
		ServiceRate: svcRate(0.002, 0.003, 0.0004, 0.030, 0.027, 0.068, 0.034, 0.001),
		VendorShare: []VendorWeight{{"MikroTik", 2}, {"Netgear", 1}, {"Technicolor", 1}},
	},
	{
		Index: 11, Country: "CN", Network: Broadband, Name: "China Telecom", ASN: 4134,
		BlockLen: 28, DelegLen: 60, PaperLastHops: 2_122_292, PaperEUI64Frac: 0.122,
		WANInsideDelegation: true, LoopFrac: 0.397,
		ServiceRate: svcRate(0.030, 0.0001, 0.0001, 0.0002, 0.0001, 0.0004, 0, 0),
		VendorShare: []VendorWeight{{"ZTE", 3}, {"Huawei", 3}, {"Fiberhome", 2}, {"TP-Link", 1}, {"Skyworth", 1}},
	},
	{
		Index: 12, Country: "CN", Network: Broadband, Name: "China Unicom", ASN: 4837,
		BlockLen: 28, DelegLen: 60, PaperLastHops: 1_273_075, PaperEUI64Frac: 0.533,
		WANInsideDelegation: true, LoopFrac: 0.789,
		ServiceRate: svcRate(0.159, 0.0001, 0.028, 0.016, 0.029, 0.166, 0.0001, 0.180),
		VendorShare: []VendorWeight{{"China Unicom", 4}, {"ZTE", 3}, {"Youhua Tech", 1}, {"Fiberhome", 1}, {"Huawei", 1}},
	},
	{
		Index: 13, Country: "CN", Network: Broadband, Name: "China Mobile", ASN: 9808,
		BlockLen: 28, DelegLen: 60, PaperLastHops: 7_316_861, PaperEUI64Frac: 0.331,
		WANInsideDelegation: true, LoopFrac: 0.53,
		ServiceRate: svcRate(0.055, 0, 0.019, 0.016, 0.019, 0.143, 0.019, 0.448),
		VendorShare: []VendorWeight{
			{"China Mobile", 50}, {"ZTE", 16}, {"Skyworth", 13}, {"Fiberhome", 7},
			{"Youhua Tech", 4}, {"StarNet", 3}, {"Huawei", 2}, {"Xiaomi", 1},
			{"TP-Link", 1}, {"Hitron Tech", 1},
		},
	},
	{
		Index: 14, Country: "CN", Network: Mobile, Name: "China Unicom Mobile", ASN: 4837,
		BlockLen: 32, DelegLen: 64, PaperLastHops: 3_696_275, PaperEUI64Frac: 0.004,
		DualFrac: 0.021, UEFrac: 0.01, LoopFrac: 0.00005,
		ServiceRate: svcRate(0.0001, 0, 0, 0, 0, 0, 0, 0),
		VendorShare: []VendorWeight{{"ZTE", 1}, {"Huawei", 1}},
	},
	{
		Index: 15, Country: "CN", Network: Mobile, Name: "China Mobile Mobile", ASN: 9808,
		BlockLen: 32, DelegLen: 64, PaperLastHops: 7_193_972, PaperEUI64Frac: 0.003,
		DualFrac: 0.016, UEFrac: 0.01, LoopFrac: 0.00005,
		ServiceRate: svcRate(0, 0, 0, 0, 0, 0, 0, 0.0001),
		VendorShare: []VendorWeight{{"ZTE", 1}, {"Huawei", 1}},
	},
}

// PaperTotalLastHops is the Table II total, used for scale computation.
const PaperTotalLastHops = 52_478_703

// vendorServiceWeight biases which vendors expose which services,
// producing the Figure 2/3 shapes. Unlisted (vendor, service) pairs get
// weight 1.
var vendorServiceWeight = map[string]map[services.ID]float64{
	"China Mobile": {services.SvcDNS: 0.4, services.SvcFTP: 0.3, services.SvcSSH: 0.2, services.SvcTelnet: 0.3, services.SvcHTTP80: 1.6, services.SvcHTTP8080: 1.8},
	"Fiberhome":    {services.SvcDNS: 3.0, services.SvcFTP: 2.5, services.SvcSSH: 3.0, services.SvcTelnet: 0.8, services.SvcHTTP80: 1.2, services.SvcHTTP8080: 0.05},
	"Youhua Tech":  {services.SvcDNS: 2.6, services.SvcFTP: 3.0, services.SvcSSH: 3.0, services.SvcTelnet: 3.0, services.SvcHTTP80: 2.0, services.SvcTLS: 0.2, services.SvcHTTP8080: 0.02},
	"ZTE":          {services.SvcDNS: 1.2, services.SvcTelnet: 2.0, services.SvcHTTP80: 1.0, services.SvcHTTP8080: 0.4},
	"Skyworth":     {services.SvcDNS: 0.3, services.SvcHTTP80: 0.7, services.SvcHTTP8080: 1.4, services.SvcSSH: 0.1, services.SvcTelnet: 0.1},
	"StarNet":      {services.SvcDNS: 0.05, services.SvcFTP: 0.05, services.SvcSSH: 0.05, services.SvcTelnet: 0.05, services.SvcHTTP80: 0.1, services.SvcTLS: 0.05, services.SvcHTTP8080: 2.6},
	"China Unicom": {services.SvcDNS: 1.6, services.SvcTelnet: 1.6, services.SvcHTTP80: 1.3},
	"AVM":          {services.SvcTLS: 2.2, services.SvcFTP: 1.5, services.SvcHTTP80: 0.8, services.SvcNTP: 1.5},
	"Hitron Tech":  {services.SvcHTTP8080: 1.2, services.SvcTLS: 1.0},
	"TP-Link":      {services.SvcHTTP80: 1.0, services.SvcTLS: 0.6},
	"Technicolor":  {services.SvcNTP: 1.5, services.SvcTLS: 1.2},
	"MikroTik":     {services.SvcSSH: 2.0, services.SvcTelnet: 1.6, services.SvcFTP: 1.4},
}

// serviceWeight returns the exposure weight for (vendor, service).
func serviceWeight(vendor string, svc services.ID) float64 {
	if m, ok := vendorServiceWeight[vendor]; ok {
		if w, ok := m[svc]; ok {
			return w
		}
	}
	return 1
}

// vendorLoopWeight biases loop vulnerability toward the Figure 6 vendors.
var vendorLoopWeight = map[string]float64{
	"China Mobile": 1.2, "ZTE": 1.4, "Skyworth": 1.6, "Youhua Tech": 1.0,
	"StarNet": 1.3, "Fiberhome": 0.6, "Huawei": 0.8, "China Unicom": 0.8,
	"Technicolor": 0.7, "AVM": 0.5, "Hitron Tech": 0.6,
}

// loopWeight returns the loop-vulnerability weight for a vendor.
func loopWeight(vendor string) float64 {
	if w, ok := vendorLoopWeight[vendor]; ok {
		return w
	}
	return 1
}

// softwareFor picks the software string for (ISP, vendor, service),
// reproducing the version landscape of Table VIII.
func softwareFor(spec *ISPSpec, vendor string, svc services.ID) string {
	switch svc {
	case services.SvcDNS:
		if spec.Country == "IN" {
			return "dnsmasq-2.75"
		}
		switch vendor {
		case "Youhua Tech":
			return "dnsmasq-2.45"
		case "Fiberhome":
			return "dnsmasq-2.47"
		case "China Mobile":
			return "dnsmasq-2.52"
		case "ZTE":
			return "dnsmasq-2.62"
		default:
			return "dnsmasq-2.78"
		}
	case services.SvcNTP:
		return "NTPv4"
	case services.SvcFTP:
		switch vendor {
		case "Youhua Tech", "Fiberhome", "China Mobile", "ZTE", "China Unicom":
			return "GNU Inetutils 1.4.1"
		case "AVM":
			return "Fritz!Box FTP"
		case "Netgear":
			return "FreeBSD version 6.00ls"
		default:
			return "vsftpd 2.3.4"
		}
	case services.SvcSSH:
		switch vendor {
		case "Youhua Tech":
			return "dropbear_0.48"
		case "Fiberhome":
			return "dropbear_0.46"
		case "MikroTik":
			return "dropbear_2012.55"
		case "AVM", "Technicolor":
			return "dropbear_2017.75"
		case "Netgear":
			return "OpenSSH_3.5"
		default:
			return "dropbear_0.52"
		}
	case services.SvcTelnet:
		switch vendor {
		case "China Unicom":
			return "China Unicom Gateway"
		case "Youhua Tech", "China Mobile":
			return "Yocto Linux"
		default:
			return "OpenWrt"
		}
	case services.SvcHTTP80:
		switch vendor {
		case "China Mobile", "Skyworth":
			return "MiniWeb HTTP Server"
		case "Youhua Tech", "ZTE", "China Unicom":
			return "micro_httpd"
		case "Fiberhome":
			return "GoAhead Embedded"
		default:
			return "micro_httpd"
		}
	case services.SvcTLS:
		return "embedded-tls"
	case services.SvcHTTP8080:
		return "Jetty 6.1.26"
	}
	return "unknown"
}
