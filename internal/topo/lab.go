package topo

import (
	"fmt"

	"repro/internal/ipv6"
	"repro/internal/netsim"
	"repro/internal/uint128"
)

// LabRouter is one device of the paper's Section VI-D case study: 95
// physical home routers from 20 vendors plus 4 open-source router OSes,
// all running firmware current as of Dec 1st 2020 — and all vulnerable to
// the routing loop on at least the WAN prefix.
type LabRouter struct {
	Brand    string
	Model    string
	Firmware string
	IsOS     bool // an open-source OS image rather than hardware
	VulnWAN  bool
	VulnLAN  bool
	// LoopCap >0 marks the Xiaomi/Gargoyle/librecmc/OpenWrt class that
	// forwards looping packets only a bounded (>10) number of times.
	LoopCap int
}

// labNamed are the explicitly-listed rows of Table XII.
var labNamed = []LabRouter{
	{Brand: "ASUS", Model: "GT-AC5300", Firmware: "3.0.0.4.384_82037", VulnWAN: true, VulnLAN: false},
	{Brand: "D-Link", Model: "COVR-3902", Firmware: "1.01", VulnWAN: true, VulnLAN: false},
	{Brand: "Huawei", Model: "WS5100", Firmware: "10.0.2.8", VulnWAN: true, VulnLAN: true},
	{Brand: "Linksys", Model: "EA8100", Firmware: "2.0.1.200539", VulnWAN: true, VulnLAN: true},
	{Brand: "Netgear", Model: "R6400v2", Firmware: "1.0.4.102_10.0.75", VulnWAN: true, VulnLAN: true},
	{Brand: "Tenda", Model: "AC23", Firmware: "16.03.07.35", VulnWAN: true, VulnLAN: false},
	{Brand: "TP-Link", Model: "TL-XDR3230", Firmware: "1.0.8", VulnWAN: true, VulnLAN: true},
	{Brand: "Xiaomi", Model: "AX5", Firmware: "1.0.33", VulnWAN: true, VulnLAN: false, LoopCap: 12},
	{Brand: "OpenWrt", Model: "19.07.4", Firmware: "r11208-ce6496d796", IsOS: true, VulnWAN: true, VulnLAN: false, LoopCap: 12},
}

// labCounts is the per-brand device count of Table XII's footer (95
// hardware routers total).
var labCounts = []struct {
	brand string
	count int
	// lanVuln: whether this brand's remaining units also loop on the
	// LAN prefix (the named rows above carry their own ground truth).
	lanVuln bool
}{
	{"ASUS", 1, false},
	{"China Mobile", 4, true},
	{"D-Link", 2, false},
	{"FAST", 1, false},
	{"Fiberhome", 2, true},
	{"H3C", 1, false},
	{"Hisense", 1, false},
	{"Huawei", 4, true},
	{"iKuai", 3, false},
	{"Linksys", 1, true},
	{"Mercury", 8, false},
	{"Mikrotik", 1, false},
	{"Netgear", 2, true},
	{"Skyworthdigital", 9, true},
	{"Tenda", 1, false},
	{"Totolink", 1, false},
	{"TP-Link", 42, true},
	{"Xiaomi", 1, false},
	{"Youhua", 1, true},
	{"ZTE", 9, true},
}

// labOSes are the four open-source router OS images.
var labOSes = []struct {
	name    string
	loopCap int
}{
	{"DD-Wrt", 0},
	{"Gargoyle", 12},
	{"librecmc", 12},
	{"OpenWrt", 12},
}

// LabRouters expands Table XII into the full 99-entry list (95 hardware
// units + 4 OS images). Named rows provide exact ground truth; the
// remaining units of each brand inherit the brand's profile.
func LabRouters() []LabRouter {
	var out []LabRouter
	named := map[string]int{} // brand -> named units consumed
	for _, r := range labNamed {
		if !r.IsOS {
			named[r.Brand]++
			out = append(out, r)
		}
	}
	for _, bc := range labCounts {
		remaining := bc.count - named[bc.brand]
		for i := 0; i < remaining; i++ {
			r := LabRouter{
				Brand:    bc.brand,
				Model:    fmt.Sprintf("%s-unit-%d", bc.brand, i+1),
				Firmware: "latest-2020-12",
				VulnWAN:  true,
				VulnLAN:  bc.lanVuln,
			}
			if bc.brand == "Xiaomi" {
				r.LoopCap = 12
			}
			out = append(out, r)
		}
	}
	for _, os := range labOSes {
		r := LabRouter{
			Brand: os.name, Model: os.name, Firmware: "latest-2020-12",
			IsOS: true, VulnWAN: true, VulnLAN: false, LoopCap: os.loopCap,
		}
		if os.name == "OpenWrt" {
			r.Firmware = "19.07.4 r11208-ce6496d796"
		}
		out = append(out, r)
	}
	return out
}

// LabEntry is one instantiated lab router in the test network.
type LabEntry struct {
	Router     LabRouter
	CPE        *netsim.CPE
	WANPrefix  ipv6.Prefix
	Delegated  ipv6.Prefix
	WANAddr    ipv6.Addr
	AccessLink *netsim.Link
}

// LabDeployment is the broadband home network of Section VI-D: every lab
// router connected behind one provider router, WAN assigned a /64 and LAN
// delegated a /60.
type LabDeployment struct {
	Engine  *netsim.Engine
	Edge    *netsim.Edge
	ISP     *netsim.ISPRouter
	Entries []*LabEntry
}

// LabBlock is the provider block the lab routers live in.
var LabBlock = ipv6.MustParsePrefix("2001:4b0::/32")

// BuildLab instantiates the Table XII test network.
func BuildLab(seed int64) (*LabDeployment, error) {
	dep := &LabDeployment{Engine: netsim.New(seed)}
	dep.Edge = netsim.NewEdge("tester", ScannerAddr)
	isp := netsim.NewISPRouter("lab-isp", LabBlock, netsim.ErrorPolicy{})
	dep.ISP = isp

	upNet, err := LabBlock.Sub(64, maxIndex(LabBlock, 64))
	if err != nil {
		return nil, err
	}
	ispUp := isp.AddIface(ipv6.SLAAC(upNet, 2), "isp:up")
	dep.Engine.Connect(dep.Edge.Iface(), ispUp, 0)
	isp.SetUpstream(ispUp)

	for i, r := range LabRouters() {
		// WAN /64s from the first /48 region; LAN /60s from the second.
		wanPrefix, err := LabBlock.Sub(64, uint128.From64(uint64(i)))
		if err != nil {
			return nil, err
		}
		lanRegion, err := LabBlock.Sub(48, uint128.One)
		if err != nil {
			return nil, err
		}
		deleg, err := lanRegion.Sub(60, uint128.From64(uint64(i)))
		if err != nil {
			return nil, err
		}
		subnet, err := deleg.Sub(64, uint128.From64(5))
		if err != nil {
			return nil, err
		}
		wanAddr := ipv6.SLAAC(wanPrefix, 0x0211_22ff_fe40_0000|uint64(i))
		cpe := netsim.NewCPE(netsim.CPEConfig{
			Name:      fmt.Sprintf("lab-%d-%s-%s", i, r.Brand, r.Model),
			WANAddr:   wanAddr,
			WANPrefix: wanPrefix,
			Delegated: deleg,
			Subnets:   []ipv6.Prefix{subnet},
			LANAddr:   ipv6.SLAAC(subnet, 1),
			Behavior:  netsim.CPEBehavior{VulnWAN: r.VulnWAN, VulnLAN: r.VulnLAN, LoopCap: r.LoopCap},
		})
		down := isp.AddIface(ipv6.SLAAC(wanPrefix, routerIID), fmt.Sprintf("isp:lab%d", i))
		link := dep.Engine.Connect(down, cpe.WAN(), 0)
		if err := isp.Delegate(wanPrefix, down); err != nil {
			return nil, err
		}
		if err := isp.Delegate(deleg, down); err != nil {
			return nil, err
		}
		dep.Entries = append(dep.Entries, &LabEntry{
			Router: r, CPE: cpe, WANPrefix: wanPrefix, Delegated: deleg,
			WANAddr: wanAddr, AccessLink: link,
		})
	}
	return dep, nil
}
