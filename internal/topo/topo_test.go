package topo

import (
	"context"
	"sync"
	"testing"

	"repro/internal/ipv6"
	"repro/internal/services"
	"repro/internal/uint128"
	"repro/internal/wire"
	"repro/internal/xmap"
)

func smallConfig() Config {
	return Config{Seed: 1, Scale: 0.0001, WindowWidth: 10, MaxDevicesPerISP: 60}
}

func TestBuildSmallDeployment(t *testing.T) {
	dep, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.ISPs) != len(Specs) {
		t.Fatalf("built %d ISPs, want %d", len(dep.ISPs), len(Specs))
	}
	for _, isp := range dep.ISPs {
		if len(isp.Devices) == 0 {
			t.Errorf("ISP %s has no devices", isp.Spec.Name)
		}
		if isp.Window.To != isp.Spec.DelegLen {
			t.Errorf("ISP %s window %s, want boundary /%d", isp.Spec.Name, isp.Window, isp.Spec.DelegLen)
		}
		if !isp.Block.Overlaps(isp.Window.Base) {
			t.Errorf("ISP %s window outside block", isp.Spec.Name)
		}
		for _, dev := range isp.Devices {
			if !isp.Block.Contains(dev.WANAddr) {
				t.Errorf("device %s outside block %s", dev.WANAddr, isp.Block)
			}
			if got := ipv6.Classify(dev.WANAddr); got != dev.Class {
				t.Errorf("device %s class %s, ground truth says %s", dev.WANAddr, got, dev.Class)
			}
			if dev.HasMAC {
				if _, ok := dep.OUI.VendorOfMAC(dev.MAC); !ok {
					t.Errorf("device MAC %s has unknown OUI", dev.MAC)
				}
			}
			if d2, ok := dep.DeviceByWAN(dev.WANAddr); !ok || d2 != dev {
				t.Errorf("DeviceByWAN(%s) broken", dev.WANAddr)
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	da, db := a.Devices(), b.Devices()
	if len(da) != len(db) {
		t.Fatalf("device counts differ: %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i].WANAddr != db[i].WANAddr || da[i].Vendor != db[i].Vendor ||
			da[i].VulnLAN != db[i].VulnLAN || da[i].VulnWAN != db[i].VulnWAN {
			t.Fatalf("device %d differs", i)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{Seed: 1, Scale: 2}); err == nil {
		t.Error("scale 2 accepted")
	}
	if _, err := Build(Config{Seed: 1, WindowWidth: 2}); err == nil {
		t.Error("window width 2 accepted")
	}
	// A window too small for the population must error.
	if _, err := Build(Config{Seed: 1, Scale: 1.0 / 64, WindowWidth: 8}); err == nil {
		t.Error("over-capacity population accepted")
	}
}

func TestOnlyISPsFilter(t *testing.T) {
	dep, err := Build(Config{Seed: 1, Scale: 0.0001, WindowWidth: 10, MaxDevicesPerISP: 60, OnlyISPs: []int{13}})
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.ISPs) != 1 || dep.ISPs[0].Spec.Index != 13 {
		t.Fatalf("ISPs = %+v", dep.ISPs)
	}
}

// TestShardedBuildMatchesSingle: the same seed built onto a 4-shard
// EngineGroup must expose the identical periphery — a parallel scan
// through the group driver discovers exactly the single-engine
// responder set, with every shard carrying traffic.
func TestShardedBuildMatchesSingle(t *testing.T) {
	scan := func(dep *Deployment, parallel bool) map[ipv6.Addr]bool {
		t.Helper()
		found := map[ipv6.Addr]bool{}
		var mu sync.Mutex
		for _, isp := range dep.ISPs {
			cfg := xmap.Config{Window: isp.Window, Seed: []byte("shard-eq")}
			handler := func(r xmap.Response) {
				mu.Lock()
				found[r.Responder] = true
				mu.Unlock()
			}
			if parallel {
				drv := xmap.NewGroupDriver(dep.Group, dep.Edge)
				if _, err := xmap.ScanParallel(context.Background(), cfg, drv, 4, handler); err != nil {
					t.Fatal(err)
				}
			} else {
				s, err := xmap.New(cfg, xmap.NewSimDriver(dep.Engine, dep.Edge))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.Run(context.Background(), handler); err != nil {
					t.Fatal(err)
				}
			}
		}
		return found
	}

	cfg := Config{Seed: 9, Scale: 0.0001, WindowWidth: 8, MaxDevicesPerISP: 30, OnlyISPs: []int{1, 12, 13}}
	single, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	sharded, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Group.NumShards() != 4 {
		t.Fatalf("group has %d shards", sharded.Group.NumShards())
	}

	a, b := scan(single, false), scan(sharded, true)
	for addr := range a {
		if !b[addr] {
			t.Errorf("sharded deployment missing responder %s", addr)
		}
	}
	for addr := range b {
		if !a[addr] {
			t.Errorf("sharded deployment has extra responder %s", addr)
		}
	}
	for s := 0; s < 4; s++ {
		if sharded.Group.Shard(s).Steps() == 0 {
			t.Errorf("shard %d processed no events; work not spread", s)
		}
	}
	// Ground truth still resolves on the sharded build.
	for _, dev := range sharded.Devices() {
		if !b[dev.WANAddr] {
			t.Errorf("device %s not discovered on sharded build", dev.WANAddr)
		}
	}
}

// TestShardedBuildValidation: more shards than window chunks is a
// configuration error, not a silent misroute.
func TestShardedBuildValidation(t *testing.T) {
	if _, err := Build(Config{Seed: 1, Scale: 0.0001, WindowWidth: 4, MaxDevicesPerISP: 4, Shards: 32}); err == nil {
		t.Error("32 shards accepted on a 4-bit window")
	}
}

// TestScanDiscoversGeneratedDevices runs the actual scanner against one
// generated ISP end to end.
func TestScanDiscoversGeneratedDevices(t *testing.T) {
	dep, err := Build(Config{Seed: 5, Scale: 0.0001, WindowWidth: 10, MaxDevicesPerISP: 40, OnlyISPs: []int{13}})
	if err != nil {
		t.Fatal(err)
	}
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	s, err := xmap.New(xmap.Config{Window: isp.Window, Seed: []byte("t")}, drv)
	if err != nil {
		t.Fatal(err)
	}
	found := map[ipv6.Addr]bool{}
	if _, err := s.Run(context.Background(), func(r xmap.Response) {
		found[r.Responder] = true
	}); err != nil {
		t.Fatal(err)
	}
	missing := 0
	for _, dev := range isp.Devices {
		if !found[dev.WANAddr] {
			missing++
		}
	}
	if missing != 0 {
		t.Errorf("%d of %d generated devices not discovered", missing, len(isp.Devices))
	}
}

func TestGeneratedServicesReachable(t *testing.T) {
	dep, err := Build(Config{Seed: 7, Scale: 0.0001, WindowWidth: 10, MaxDevicesPerISP: 60, OnlyISPs: []int{13}})
	if err != nil {
		t.Fatal(err)
	}
	var dev *Device
	for _, d := range dep.ISPs[0].Devices {
		if _, ok := d.Services[services.SvcHTTP8080]; ok {
			dev = d
			break
		}
	}
	if dev == nil {
		t.Skip("no device with HTTP-8080 in this sample")
	}
	// SYN to port 8080 must be answered with SYN/ACK through the network.
	syn, err := wire.BuildTCP(ScannerAddr, dev.WANAddr, 64,
		wire.TCPHeader{SrcPort: 40000, DstPort: 8080, Seq: 1, Flags: wire.TCPSyn}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dep.Engine.Inject(dep.Edge.Iface(), syn)
	replies := dep.Edge.Drain()
	if len(replies) != 1 {
		t.Fatalf("got %d replies to SYN", len(replies))
	}
	sum, err := wire.ParsePacket(replies[0])
	if err != nil {
		t.Fatal(err)
	}
	if sum.TCP == nil || sum.TCP.Flags&wire.TCPSyn == 0 || sum.TCP.Flags&wire.TCPAck == 0 {
		t.Errorf("reply = %+v", sum)
	}
}

func TestLabRoutersCensus(t *testing.T) {
	routers := LabRouters()
	if len(routers) != 99 {
		t.Fatalf("lab has %d entries, want 99 (95 hardware + 4 OSes)", len(routers))
	}
	hw, oses := 0, 0
	for _, r := range routers {
		if r.IsOS {
			oses++
		} else {
			hw++
		}
		if !r.VulnWAN {
			t.Errorf("%s %s not WAN-vulnerable; all 99 were", r.Brand, r.Model)
		}
	}
	if hw != 95 || oses != 4 {
		t.Errorf("hardware=%d oses=%d", hw, oses)
	}
	// Brand counts match the Table XII footer.
	byBrand := map[string]int{}
	for _, r := range routers {
		if !r.IsOS {
			byBrand[r.Brand]++
		}
	}
	for _, bc := range labCounts {
		if byBrand[bc.brand] != bc.count {
			t.Errorf("brand %s has %d units, want %d", bc.brand, byBrand[bc.brand], bc.count)
		}
	}
	if byBrand["TP-Link"] != 42 {
		t.Errorf("TP-Link = %d", byBrand["TP-Link"])
	}
}

func TestLabLoopBehaviorEndToEnd(t *testing.T) {
	dep, err := BuildLab(3)
	if err != nil {
		t.Fatal(err)
	}
	// Entry 0 is the ASUS GT-AC5300: WAN vulnerable, LAN immune.
	asus := dep.Entries[0]
	if asus.Router.Brand != "ASUS" {
		t.Fatalf("entry 0 = %s", asus.Router.Brand)
	}

	probeTo := func(dst ipv6.Addr) uint64 {
		before := asus.AccessLink.TotalPackets()
		pkt, err := wire.BuildEchoRequest(ScannerAddr, dst, 255, 1, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		dep.Engine.Inject(dep.Edge.Iface(), pkt)
		dep.Edge.Drain()
		return asus.AccessLink.TotalPackets() - before
	}

	// NX address in the WAN /64: loops.
	wanNX := ipv6.SLAAC(asus.WANPrefix, 0xdeadbeef)
	if got := probeTo(wanNX); got < 200 {
		t.Errorf("WAN-prefix probe moved %d packets on access link, want >200", got)
	}
	// Not-used prefix in the delegated /60: immune (responds unreachable).
	lanNX := ipv6.SLAAC(mustSub64(t, asus.Delegated, 9), 0x1234)
	if got := probeTo(lanNX); got > 4 {
		t.Errorf("LAN-prefix probe moved %d packets; ASUS LAN is immune", got)
	}
}

func TestLabLoopCapClass(t *testing.T) {
	dep, err := BuildLab(3)
	if err != nil {
		t.Fatal(err)
	}
	var xiaomi *LabEntry
	for _, e := range dep.Entries {
		if e.Router.Brand == "Xiaomi" && e.Router.Model == "AX5" {
			xiaomi = e
			break
		}
	}
	if xiaomi == nil {
		t.Fatal("Xiaomi AX5 not in lab")
	}
	before := xiaomi.AccessLink.TotalPackets()
	pkt, err := wire.BuildEchoRequest(ScannerAddr, ipv6.SLAAC(xiaomi.WANPrefix, 0xabcdef), 255, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	dep.Engine.Inject(dep.Edge.Iface(), pkt)
	moved := xiaomi.AccessLink.TotalPackets() - before
	if moved < 10 || moved > 40 {
		t.Errorf("Xiaomi forwarded %d packets, want >10 but bounded", moved)
	}
}

func mustSub64(t *testing.T, p ipv6.Prefix, idx uint64) ipv6.Prefix {
	t.Helper()
	sub, err := p.Sub(64, uint128.From64(idx))
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func TestBGPUniverseBuilds(t *testing.T) {
	dep, err := BuildBGPUniverse(BGPConfig{Seed: 11, NumASes: 40, WindowWidth: 6, MeanDevices: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Windows) != len(dep.Table.Adverts) {
		t.Errorf("windows %d != adverts %d", len(dep.Windows), len(dep.Table.Adverts))
	}
	if len(dep.Devices) == 0 {
		t.Fatal("no devices")
	}
	vuln := 0
	for _, d := range dep.Devices {
		if !d.Advert.Prefix.Contains(d.Addr) {
			t.Errorf("device %s outside advert %s", d.Addr, d.Advert.Prefix)
		}
		if e, ok := dep.Geo.Lookup(d.Addr); !ok || e.ASN != d.Advert.ASN {
			t.Errorf("geo lookup for %s inconsistent", d.Addr)
		}
		if d.Vuln {
			vuln++
		}
	}
	if vuln == 0 {
		t.Error("no vulnerable devices generated")
	}
	if vuln == len(dep.Devices) {
		t.Error("every device vulnerable; calibration broken")
	}
}
