package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/edgy"
	"repro/internal/ipv6"
	"repro/internal/report"
	"repro/internal/tga"
	"repro/internal/topo"
	"repro/internal/uint128"
	"repro/internal/wire"
	"repro/internal/xmap"
)

// Feasibility renders the Section III-B analysis: the scan-time
// arithmetic behind "one 1 Gbps scanner could probe all /64 sub-prefixes
// (2^40) in 8 days and all /60 sub-prefixes (2^36) in 14 hours", plus an
// empirical efficiency comparison of the periphery scan against the two
// related-work approaches implemented here (traceroute-based discovery
// and seed-trained target generation).
func (s *Suite) Feasibility() (string, error) {
	var b strings.Builder
	b.WriteString("Section III-B scanning feasibility\n\n")

	// The paper's arithmetic. A 1 Gbps scanner moves ~1.4M minimal
	// probes per second (the ZMap figure); the paper's own vantage ran
	// at 25 kpps.
	rows := report.Table{Headers: []string{"Space", "Sub-prefixes", "1 Gbps (~1.4 Mpps)", "25 kpps (paper vantage)"}}
	for _, c := range []struct {
		label string
		bits  uint
	}{
		{"/24 block at /56 boundary", 32},
		{"/24 block at /64 boundary", 40},
		{"/28 block at /60 boundary", 32},
		{"/32 block at /64 boundary", 32},
		{"all /60s of a /24", 36},
	} {
		n := uint64(1) << c.bits
		fast := time.Duration(float64(n) / 1_400_000 * float64(time.Second))
		slow := time.Duration(float64(n) / 25_000 * float64(time.Second))
		rows.AddRow(c.label, fmt.Sprintf("2^%d", c.bits), fast.Round(time.Minute).String(), slow.Round(time.Hour).String())
	}
	b.WriteString(rows.String())
	b.WriteString("(brute-forcing one /64's IID space at 1 Gbps: >400 years — the search the\n unreachable-message technique reduces to a single probe)\n\n")

	// Empirical method comparison on one populated block.
	dep, err := topo.Build(topo.Config{
		Seed: s.opts.Seed + 41, Scale: 0.0005, WindowWidth: 10,
		MaxDevicesPerISP: 250, OnlyISPs: []int{13},
	})
	if err != nil {
		return "", err
	}
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	budget, _ := isp.Window.Size()

	cmp := report.Table{Headers: []string{"Method", "Probes", "Peripheries", "Probes/periphery"}}

	// XMap periphery scan.
	scanner, err := xmap.New(xmap.Config{Window: isp.Window, Seed: []byte("feas")}, drv)
	if err != nil {
		return "", err
	}
	xmapFound := map[ipv6.Addr]bool{}
	stats, err := scanner.Run(context.Background(), func(r xmap.Response) {
		if _, ok := dep.DeviceByWAN(r.Responder); ok {
			xmapFound[r.Responder] = true
		}
	})
	if err != nil {
		return "", err
	}
	cmp.AddRow("XMap periphery scan", report.Count(int(stats.Sent)),
		report.Count(len(xmapFound)), perHop(int(stats.Sent), len(xmapFound)))

	// Traceroute baseline over the same targets.
	tracer := edgy.NewTracer(drv)
	var targets []ipv6.Addr
	for i := uint64(0); i < budget.Lo; i++ {
		sub, err := isp.Window.Sub(uint128.From64(i))
		if err != nil {
			return "", err
		}
		targets = append(targets, ipv6.SLAAC(sub, 0x6AAA_0000|i))
	}
	census, err := tracer.Discover(targets)
	if err != nil {
		return "", err
	}
	tracePeris := 0
	for addr := range census.LastHops {
		if _, ok := dep.DeviceByWAN(addr); ok {
			tracePeris++
		}
	}
	cmp.AddRow("traceroute last-hop [77]", report.Count(census.Probes),
		report.Count(tracePeris), perHop(census.Probes, tracePeris))

	// Seed-trained target generation with the same probe budget.
	var seeds []ipv6.Addr
	for i, d := range isp.Devices {
		if i >= len(isp.Devices)/10 {
			break
		}
		seeds = append(seeds, d.WANAddr)
	}
	model, err := tga.Train(seeds)
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(s.opts.Seed))
	tgaFound := map[ipv6.Addr]bool{}
	tgaProbes := 0
	for _, cand := range model.Generate(rng, int(budget.Lo)) {
		pkt, err := wire.BuildEchoRequest(dep.Edge.Addr(), cand, 64, 0x761a, 1, nil)
		if err != nil {
			return "", err
		}
		dep.Engine.Inject(dep.Edge.Iface(), pkt)
		tgaProbes++
		for _, raw := range dep.Edge.Drain() {
			sum, err := wire.ParsePacket(raw)
			if err != nil || sum.ICMP == nil {
				continue
			}
			if _, ok := dep.DeviceByWAN(sum.IP.Src); ok {
				tgaFound[sum.IP.Src] = true
			}
		}
	}
	cmp.AddRow(fmt.Sprintf("TGA (seeded with %d addrs)", len(seeds)),
		report.Count(tgaProbes), report.Count(len(tgaFound)), perHop(tgaProbes, len(tgaFound)))

	b.WriteString(cmp.String())
	b.WriteString(fmt.Sprintf("(ground truth: %d peripheries in the block)\n", len(isp.Devices)))
	return b.String(), nil
}

func perHop(probes, hops int) string {
	if hops == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(probes)/float64(hops))
}
