package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ipv6"
	"repro/internal/report"
	"repro/internal/services"
	"repro/internal/topo"
	"repro/internal/xmap"
	"repro/internal/zgrab"
)

// specByIndex resolves a Table VII ISP index.
func specByIndex(index int) *topo.ISPSpec {
	for i := range topo.Specs {
		if topo.Specs[i].Index == index {
			return &topo.Specs[i]
		}
	}
	return nil
}

// iidClasses is the rendering order of the IID tables.
var iidClasses = []ipv6.IIDClass{
	ipv6.IIDEUI64, ipv6.IIDLowByte, ipv6.IIDEmbedIPv4,
	ipv6.IIDBytePattern, ipv6.IIDRandomized,
}

// renderIIDDist renders a Table III/V/X-style distribution.
func renderIIDDist(title string, d analysis.IIDDist) string {
	t := report.Table{Title: title, Headers: []string{"IID class", "# num", "%"}}
	for _, c := range iidClasses {
		t.AddRow(c.String(), report.Count(d.Counts[c]), report.Pct(d.Pct(c)))
	}
	t.AddRow("Total", report.Count(d.Total), "100.0")
	return t.String()
}

// TableI reproduces the inferred sub-prefix lengths.
func (s *Suite) TableI() (string, error) {
	results, err := s.SubnetInference()
	if err != nil {
		return "", err
	}
	dep, err := s.Deployment()
	if err != nil {
		return "", err
	}
	t := report.Table{
		Title:   "Table I: inferred IPv6 sub-prefix length for end-users of target ISPs",
		Headers: []string{"Cty", "Network", "ISP", "ASN", "Block", "Inferred", "Paper"},
	}
	for i, isp := range dep.ISPs {
		spec := isp.Spec
		inferred := "?"
		if i < len(results) && results[i].Length > 0 {
			inferred = fmt.Sprintf("/%d", results[i].Length)
		}
		t.AddRow(spec.Country, spec.Network.String(), spec.Name,
			fmt.Sprintf("%d", spec.ASN), fmt.Sprintf("/%d", spec.BlockLen),
			inferred, fmt.Sprintf("/%d", spec.DelegLen))
	}
	return t.String(), nil
}

// TableII reproduces the periphery scan census.
func (s *Suite) TableII() (string, []analysis.TableIIRow, error) {
	recs, stats, err := s.Discovery()
	if err != nil {
		return "", nil, err
	}
	rows := analysis.BuildTableII(recs)
	t := report.Table{
		Title: "Table II: results of periphery scanning for one sample IPv6 block within each ISP",
		Headers: []string{"P", "ISP", "Scan", "LastHops", "%same", "%diff",
			"/64 uniq", "/64 %", "EUI-64", "EUI %", "MAC uniq", "MAC %"},
	}
	for _, row := range rows {
		spec := specByIndex(row.ISPIndex)
		name := "?"
		scanRange := "?"
		if spec != nil {
			name = spec.Name
			scanRange = fmt.Sprintf("/%d-%d", spec.BlockLen, spec.DelegLen)
		}
		t.AddRow(
			fmt.Sprintf("%d", row.ISPIndex), name, scanRange,
			report.Count(row.UniqueHops),
			report.Pct(row.SamePct), report.Pct(row.DiffPct),
			report.Count(row.Unique64), report.Pct(row.Pct64),
			report.Count(row.EUI64), report.Pct(row.EUI64Pct),
			report.Count(row.UniqueMAC), report.Pct(row.MACPct),
		)
	}
	var sent uint64
	for _, st := range stats {
		sent += st.Sent
	}
	text := t.String() + fmt.Sprintf("(probes sent: %s)\n", report.Count(int(sent)))
	return text, rows, nil
}

// TableIII reproduces the all-periphery IID mix.
func (s *Suite) TableIII() (string, analysis.IIDDist, error) {
	recs, err := s.Peripheries()
	if err != nil {
		return "", analysis.IIDDist{}, err
	}
	d := analysis.BuildTableIII(recs)
	return renderIIDDist("Table III: IID analysis of discovered peripheries", d), d, nil
}

// TableIV reproduces the vendor census.
func (s *Suite) TableIV() (string, error) {
	if err := s.ServiceGrabs(); err != nil {
		return "", err
	}
	recs, err := s.Peripheries()
	if err != nil {
		return "", err
	}
	cpe, ue := analysis.BuildTableIV(recs)
	var b strings.Builder
	renderVC := func(title string, list []analysis.VendorCount, max int) {
		t := report.Table{Title: title, Headers: []string{"Vendor", "Devices"}}
		total := 0
		for _, vc := range list {
			total += vc.Count
		}
		t.AddRow("Total", report.Count(total))
		for i, vc := range list {
			if max > 0 && i >= max {
				break
			}
			t.AddRow(vc.Vendor, report.Count(vc.Count))
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	b.WriteString("Table IV: top appeared periphery vendors and device number\n")
	renderVC("CPE vendors", cpe, 20)
	renderVC("UE vendors", ue, 12)
	return b.String(), nil
}

// TableV reproduces the IID mix of service-exposing peripheries.
func (s *Suite) TableV() (string, analysis.IIDDist, error) {
	if err := s.ServiceGrabs(); err != nil {
		return "", analysis.IIDDist{}, err
	}
	recs, err := s.Peripheries()
	if err != nil {
		return "", analysis.IIDDist{}, err
	}
	d := analysis.BuildTableV(recs)
	return renderIIDDist("Table V: IID analysis of peripheries with alive application services", d), d, nil
}

// tableVISpec is the probe/response definition of Table VI.
var tableVISpec = []struct {
	svc      services.ID
	request  string
	response string
}{
	{services.SvcDNS, `"A" or version query`, "answers"},
	{services.SvcNTP, "version query", "version reply"},
	{services.SvcFTP, "request for connecting", "successful response"},
	{services.SvcSSH, "version, key request", "version, key"},
	{services.SvcTelnet, "request for login", "response for login"},
	{services.SvcHTTP80, "HTTP GET request", "header, version, body"},
	{services.SvcTLS, "certificate request", "certificate, cipher suite"},
	{services.SvcHTTP8080, "HTTP GET request", "header, version, body"},
}

// stackDriver exposes one service stack as a scan driver, for
// conformance checks without a full topology.
type stackDriver struct {
	self  ipv6.Addr
	src   ipv6.Addr
	stack *services.Stack
	buf   [][]byte
}

func (d *stackDriver) Send(pkt []byte) error {
	d.buf = append(d.buf, d.stack.HandleLocal(d.self, pkt)...)
	return nil
}

func (d *stackDriver) Recv() [][]byte {
	out := d.buf
	d.buf = nil
	return out
}

func (d *stackDriver) SourceAddr() ipv6.Addr { return d.src }

// TableVI verifies each probe's request/response conformance against a
// reference device exposing all eight services.
func (s *Suite) TableVI() (string, error) {
	self := ipv6.MustParseAddr("2001:db8::1")
	stack := services.NewStack(services.Config{
		Vendor: "Reference",
		Software: map[services.ID]string{
			services.SvcDNS: "dnsmasq-2.45", services.SvcNTP: "NTPv4",
			services.SvcFTP: "GNU Inetutils 1.4.1", services.SvcSSH: "dropbear_0.46",
			services.SvcTelnet: "reference", services.SvcHTTP80: "micro_httpd",
			services.SvcTLS: "embedded", services.SvcHTTP8080: "Jetty 6.1.26",
		},
	}, []byte("table6"))
	drv := &stackDriver{self: self, src: ipv6.MustParseAddr("2001:beef::9"), stack: stack}
	prober := zgrab.New(drv)
	res, err := prober.ProbeDevice(self, nil)
	if err != nil {
		return "", err
	}
	t := report.Table{
		Title:   "Table VI: probing requests and valid responses of 8 selected services",
		Headers: []string{"Service/Port", "Request", "Valid Response", "Conforms"},
	}
	for _, row := range tableVISpec {
		ok := "no"
		if r, found := res.Results[row.svc]; found && r.Alive {
			ok = "yes"
		}
		t.AddRow(row.svc.String(), row.request, row.response, ok)
	}
	return t.String(), nil
}

// TableVII reproduces the per-ISP exposure census.
func (s *Suite) TableVII() (string, []analysis.TableVIIRow, error) {
	if err := s.ServiceGrabs(); err != nil {
		return "", nil, err
	}
	recs, err := s.Peripheries()
	if err != nil {
		return "", nil, err
	}
	rows := analysis.BuildTableVII(recs)
	headers := []string{"P", "ISP"}
	for _, svc := range services.All {
		headers = append(headers, svc.String(), "%")
	}
	headers = append(headers, "Total", "%")
	t := report.Table{
		Title:   "Table VII: results of alive services on peripheries within each ISP",
		Headers: headers,
	}
	for _, row := range rows {
		name := "?"
		if spec := specByIndex(row.ISPIndex); spec != nil {
			name = spec.Name
		}
		cells := []string{fmt.Sprintf("%d", row.ISPIndex), name}
		for _, svc := range services.All {
			cells = append(cells, report.Count(row.Alive[svc]), report.Pct(row.Pct(svc)))
		}
		cells = append(cells, report.Count(row.Total), report.Pct(row.TotalPct()))
		t.AddRow(cells...)
	}
	return t.String(), rows, nil
}

// TableVIII reproduces the software-version census.
func (s *Suite) TableVIII() (string, error) {
	if err := s.ServiceGrabs(); err != nil {
		return "", err
	}
	recs, err := s.Peripheries()
	if err != nil {
		return "", err
	}
	sw := analysis.BuildTableVIII(recs)
	t := report.Table{
		Title:   "Table VIII: top software version and device number of crucial services",
		Headers: []string{"Service", "Software & version", "# device", "# CVE"},
	}
	for _, svc := range []services.ID{services.SvcDNS, services.SvcHTTP80, services.SvcHTTP8080, services.SvcSSH, services.SvcFTP} {
		for i, sc := range sw[svc] {
			if i >= 5 {
				break
			}
			t.AddRow(svc.String(), sc.Software, report.Count(sc.Count), fmt.Sprintf("%d", sc.CVEs))
		}
	}
	return t.String(), nil
}

// Figure2 reproduces the top-10 exposed-service vendor chart.
func (s *Suite) Figure2() (string, error) {
	if err := s.ServiceGrabs(); err != nil {
		return "", err
	}
	recs, err := s.Peripheries()
	if err != nil {
		return "", err
	}
	m := analysis.BuildVendorServiceMatrix(recs)
	top := m.TopVendors(10)
	var b strings.Builder
	b.WriteString("Figure 2: top 10 periphery device vendors with exposed services\n")
	t := report.Table{Headers: append([]string{"Vendor", "Total"}, svcHeaderCells()...)}
	for _, vc := range top {
		cells := []string{vc.Vendor, report.Count(vc.Count)}
		for _, svc := range services.All {
			cells = append(cells, report.Count(m.Counts[vc.Vendor][svc]))
		}
		t.AddRow(cells...)
	}
	b.WriteString(t.String())
	return b.String(), nil
}

func svcHeaderCells() []string {
	out := make([]string, 0, len(services.All))
	for _, svc := range services.All {
		out = append(out, svc.String())
	}
	return out
}

// Figure3 reproduces the per-service vendor breakdown.
func (s *Suite) Figure3() (string, error) {
	if err := s.ServiceGrabs(); err != nil {
		return "", err
	}
	recs, err := s.Peripheries()
	if err != nil {
		return "", err
	}
	m := analysis.BuildVendorServiceMatrix(recs)
	var b strings.Builder
	b.WriteString("Figure 3: top periphery device vendors within each service\n")
	for _, svc := range services.All {
		ranked := m.TopVendorsWithin(svc, 5)
		if len(ranked) == 0 {
			continue
		}
		labels := make([]string, len(ranked))
		values := make([]int, len(ranked))
		for i, vc := range ranked {
			labels[i], values[i] = vc.Vendor, vc.Count
		}
		b.WriteString((report.Bars{Title: svc.String(), Width: 30}).Render(labels, values))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// TableIX reproduces the BGP-universe loop census.
func (s *Suite) TableIX() (string, analysis.TableIXResult, error) {
	dep, scan, err := s.BGP()
	if err != nil {
		return "", analysis.TableIXResult{}, err
	}
	res := analysis.BuildTableIX(scan, dep.Geo)
	t := report.Table{
		Title:   "Table IX: peripheries discovered from BGP advertised prefixes scanning",
		Headers: []string{"Last Hops", "# unique", "# ASN", "# Country"},
	}
	t.AddRow("Total", report.Count(res.TotalHops), report.Count(res.TotalASNs), report.Count(res.TotalCountry))
	t.AddRow("with Routing Loop", report.Count(res.LoopHops), report.Count(res.LoopASNs), report.Count(res.LoopCountries))
	return t.String(), res, nil
}

// TableX reproduces the loop-device IID mix.
func (s *Suite) TableX() (string, analysis.IIDDist, error) {
	_, scan, err := s.BGP()
	if err != nil {
		return "", analysis.IIDDist{}, err
	}
	d := analysis.BuildTableX(scan)
	return renderIIDDist("Table X: IID analysis of last hops with routing loop vulnerability", d), d, nil
}

// Figure5 reproduces the top loop ASNs and countries.
func (s *Suite) Figure5() (string, error) {
	dep, scan, err := s.BGP()
	if err != nil {
		return "", err
	}
	res := analysis.BuildFigure5(scan, dep.Geo, 10)
	var b strings.Builder
	b.WriteString("Figure 5: top 10 routing loop ASN & country\n")
	labels := make([]string, len(res.TopASNs))
	values := make([]int, len(res.TopASNs))
	for i, r := range res.TopASNs {
		labels[i], values[i] = r.Label, r.Count
	}
	b.WriteString((report.Bars{Title: "Origin ASN", Width: 30}).Render(labels, values))
	labels = labels[:0]
	values = values[:0]
	for _, r := range res.TopCountries {
		labels = append(labels, r.Label)
		values = append(values, r.Count)
	}
	b.WriteString((report.Bars{Title: "Origin Country", Width: 30}).Render(labels, values))
	return b.String(), nil
}

// TableXI reproduces the per-ISP loop census.
func (s *Suite) TableXI() (string, []analysis.TableXIRow, error) {
	loops, err := s.LoopISP()
	if err != nil {
		return "", nil, err
	}
	rows := analysis.BuildTableXI(loops)
	t := report.Table{
		Title:   "Table XI: results of periphery with routing loop within each ISP",
		Headers: []string{"P", "ISP", "# uniq", "% same", "% diff"},
	}
	for _, row := range rows {
		name := "?"
		if spec := specByIndex(row.ISPIndex); spec != nil {
			name = spec.Name
		}
		t.AddRow(fmt.Sprintf("%d", row.ISPIndex), name,
			report.Count(row.Unique), report.Pct(row.SamePct), report.Pct(row.DiffPct))
	}
	return t.String(), rows, nil
}

// Figure6 reproduces the loop vendor/AS matrix over the ISP deployments.
func (s *Suite) Figure6() (string, error) {
	loops, err := s.LoopISP()
	if err != nil {
		return "", err
	}
	dep, err := s.Deployment()
	if err != nil {
		return "", err
	}
	var evidence []analysis.LoopDeviceEvidence
	for _, res := range loops {
		for _, hop := range res.Hops {
			if !hop.Vulnerable {
				continue
			}
			ev := analysis.LoopDeviceEvidence{Addr: hop.Addr}
			if entry, ok := dep.Geo.Lookup(hop.Addr); ok {
				ev.ASN = entry.ASN
			}
			if mac, ok := ipv6.MACFromEUI64(hop.Addr.IID()); ok {
				if vendor, ok := dep.OUI.VendorOfMAC(mac); ok {
					ev.Vendor = vendor
				}
			}
			if ev.Vendor == "" {
				// Application-level attribution, as the paper does for
				// non-EUI-64 loop devices.
				prober := zgrab.New(xmap.NewSimDriver(dep.Engine, dep.Edge))
				grab, err := prober.ProbeDevice(hop.Addr, []services.ID{services.SvcHTTP80, services.SvcHTTP8080, services.SvcTLS})
				if err == nil && grab.Vendor != "" {
					ev.Vendor = grab.Vendor
				}
			}
			evidence = append(evidence, ev)
		}
	}
	res := analysis.BuildFigure6(evidence, 5, 5)
	t := report.Table{
		Title:   "Figure 6: top 5 routing loop periphery device vendors within top 5 ASes",
		Headers: append([]string{"Vendor", "Total"}, res.ASNs...),
	}
	for _, vendor := range res.Vendors {
		cells := []string{vendor, report.Count(res.VendorTotals[vendor])}
		for _, asn := range res.ASNs {
			cells = append(cells, report.Count(res.Counts[vendor][asn]))
		}
		t.AddRow(cells...)
	}
	return t.String(), nil
}

// TableXII reproduces the lab router case study.
func (s *Suite) TableXII() (string, []LabOutcome, error) {
	outcomes, err := s.Lab()
	if err != nil {
		return "", nil, err
	}
	t := report.Table{
		Title:   "Table XII: routing loop routers testing results",
		Headers: []string{"Brand", "Model", "Firmware", "WAN", "LAN", "LoopTimes"},
	}
	mark := func(v bool) string {
		if v {
			return "vuln"
		}
		return "ok"
	}
	shown := 0
	for _, o := range outcomes {
		// Print the named models and the OSes; summarize the bulk units.
		if strings.Contains(o.Router.Model, "-unit-") {
			continue
		}
		t.AddRow(o.Router.Brand, o.Router.Model, o.Router.Firmware,
			mark(o.VulnWAN), mark(o.VulnLAN), report.Count(int(o.LoopTimes)))
		shown++
	}
	vulnAll := 0
	for _, o := range outcomes {
		if o.VulnWAN || o.VulnLAN {
			vulnAll++
		}
	}
	text := t.String() + fmt.Sprintf("(%d of %d routers vulnerable; %d shown above, remainder are per-brand units)\n",
		vulnAll, len(outcomes), shown)
	return text, outcomes, nil
}

// All runs every experiment and concatenates the rendered artifacts.
func (s *Suite) All() (string, error) {
	var b strings.Builder
	sections := []func() (string, error){
		s.TableI,
		func() (string, error) { t, _, err := s.TableII(); return t, err },
		func() (string, error) { t, _, err := s.TableIII(); return t, err },
		s.TableIV,
		func() (string, error) { t, _, err := s.TableV(); return t, err },
		s.TableVI,
		func() (string, error) { t, _, err := s.TableVII(); return t, err },
		s.TableVIII,
		s.Figure2,
		s.Figure3,
		func() (string, error) { t, _, err := s.TableIX(); return t, err },
		func() (string, error) { t, _, err := s.TableX(); return t, err },
		s.Figure5,
		func() (string, error) { t, _, err := s.TableXI(); return t, err },
		s.Figure6,
		func() (string, error) { t, _, err := s.TableXII(); return t, err },
		s.Mitigation,
		s.Feasibility,
	}
	for _, fn := range sections {
		text, err := fn()
		if err != nil {
			return b.String(), err
		}
		b.WriteString(text)
		b.WriteString("\n")
	}
	return b.String(), nil
}
