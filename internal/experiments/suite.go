// Package experiments orchestrates the full reproduction: it builds the
// simulated deployments, runs the scanner, service prober and loop
// detector, and renders every table and figure of the paper's evaluation
// (the per-experiment index lives in DESIGN.md).
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/analysis"
	"repro/internal/ipv6"
	"repro/internal/loopscan"
	"repro/internal/subnet"
	"repro/internal/topo"
	"repro/internal/uint128"
	"repro/internal/xmap"
	"repro/internal/zgrab"
)

// Options sizes a reproduction run.
type Options struct {
	Seed             int64
	Scale            float64
	WindowWidth      int
	MaxDevicesPerISP int
	// BGPASes / BGPWindowWidth size the Section VI-B universe.
	BGPASes        int
	BGPWindowWidth int
	// Log receives progress lines (nil discards them).
	Log io.Writer
}

// Quick returns a configuration small enough for unit tests: every ISP
// capped at 80 devices in 10-bit windows.
func Quick() Options {
	return Options{
		Seed: 2021, Scale: 0.0002, WindowWidth: 10, MaxDevicesPerISP: 80,
		BGPASes: 60, BGPWindowWidth: 6,
	}
}

// Default returns the full simulation scale: about 1/4096 of the paper's
// population in 14-bit windows (the paper: full population, 32-bit
// windows).
func Default() Options {
	return Options{
		Seed: 2021, Scale: 1.0 / 4096, WindowWidth: 14,
		BGPASes: 600, BGPWindowWidth: 8,
	}
}

// Suite caches the expensive measurement stages so each table/figure
// renderer reuses them. All methods are safe for concurrent use.
type Suite struct {
	opts Options

	mu        sync.Mutex
	dep       *topo.Deployment
	recs      []*analysis.PeripheryRecord
	infra     map[ipv6.Addr]bool
	discStats map[int]xmap.Stats
	grabbed   bool
	loopISP   map[int]*loopscan.ScanResult
	bgpDep    *topo.BGPDeployment
	bgpScan   *loopscan.ScanResult
	lab       []LabOutcome
	subnetRes []subnet.Result
}

// New creates a suite.
func New(opts Options) *Suite { return &Suite{opts: opts} }

// Opts returns the suite configuration.
func (s *Suite) Opts() Options { return s.opts }

func (s *Suite) logf(format string, args ...interface{}) {
	if s.opts.Log != nil {
		fmt.Fprintf(s.opts.Log, format+"\n", args...)
	}
}

// Deployment lazily builds the Table I ISP deployment.
func (s *Suite) Deployment() (*topo.Deployment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deploymentLocked()
}

func (s *Suite) deploymentLocked() (*topo.Deployment, error) {
	if s.dep != nil {
		return s.dep, nil
	}
	s.logf("building ISP deployment (scale %v, %d-bit windows)", s.opts.Scale, s.opts.WindowWidth)
	dep, err := topo.Build(topo.Config{
		Seed:             s.opts.Seed,
		Scale:            s.opts.Scale,
		WindowWidth:      s.opts.WindowWidth,
		MaxDevicesPerISP: s.opts.MaxDevicesPerISP,
	})
	if err != nil {
		return nil, err
	}
	s.dep = dep
	return dep, nil
}

// Discovery runs the Table II periphery scan over every ISP window.
func (s *Suite) Discovery() ([]*analysis.PeripheryRecord, map[int]xmap.Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.discoveryLocked(); err != nil {
		return nil, nil, err
	}
	return s.recs, s.discStats, nil
}

func (s *Suite) discoveryLocked() error {
	if s.recs != nil {
		return nil
	}
	dep, err := s.deploymentLocked()
	if err != nil {
		return err
	}
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	s.discStats = make(map[int]xmap.Stats, len(dep.ISPs))
	for _, isp := range dep.ISPs {
		s.logf("scanning ISP %d (%s) window %s", isp.Spec.Index, isp.Spec.Name, isp.Window)
		scanner, err := xmap.New(xmap.Config{
			Window:     isp.Window,
			Seed:       []byte(fmt.Sprintf("discover-%d-%d", s.opts.Seed, isp.Spec.Index)),
			DedupExact: true,
		}, drv)
		if err != nil {
			return fmt.Errorf("experiments: scanner for ISP %d: %w", isp.Spec.Index, err)
		}
		index := isp.Spec.Index
		stats, err := scanner.Run(context.Background(), func(r xmap.Response) {
			s.recs = append(s.recs, analysis.Enrich(r, dep.OUI, index))
		})
		if err != nil {
			return fmt.Errorf("experiments: scanning ISP %d: %w", index, err)
		}
		s.discStats[index] = stats
		for addr, n := range scanner.ResponderCounts() {
			if n >= infraResponseThreshold {
				if s.infra == nil {
					s.infra = make(map[ipv6.Addr]bool)
				}
				s.infra[addr] = true
			}
		}
	}
	s.logf("discovery complete: %d unique last hops", len(s.recs))
	return nil
}

// infraResponseThreshold separates infrastructure from peripheries: a
// responder answering probes for this many distinct targets is a
// provider router, not a last-hop device (a periphery answers for at
// most its own delegations).
const infraResponseThreshold = 4

// Peripheries returns discovery records with infrastructure filtered out.
func (s *Suite) Peripheries() ([]*analysis.PeripheryRecord, error) {
	recs, _, err := s.Discovery()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	infra := s.infra
	s.mu.Unlock()
	var out []*analysis.PeripheryRecord
	for _, r := range recs {
		if !infra[r.Addr] {
			out = append(out, r)
		}
	}
	return out, nil
}

// ServiceGrabs probes all eight Table VI services on every discovered
// periphery and attaches the results.
func (s *Suite) ServiceGrabs() error {
	if _, _, err := s.Discovery(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.grabbed {
		return nil
	}
	prober := zgrab.New(xmap.NewSimDriver(s.dep.Engine, s.dep.Edge))
	n := 0
	for _, rec := range s.recs {
		if s.infra[rec.Addr] {
			continue
		}
		grab, err := prober.ProbeDevice(rec.Addr, nil)
		if err != nil {
			return fmt.Errorf("experiments: grabbing %s: %w", rec.Addr, err)
		}
		rec.AttachGrab(grab)
		if grab.AliveCount() > 0 {
			n++
		}
	}
	s.grabbed = true
	s.logf("service probing complete: %d peripheries with alive services", n)
	return nil
}

// LoopISP runs the Table XI loop sweep over every ISP window.
func (s *Suite) LoopISP() (map[int]*loopscan.ScanResult, error) {
	if _, err := s.Deployment(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.loopISP != nil {
		return s.loopISP, nil
	}
	det := loopscan.NewDetector(xmap.NewSimDriver(s.dep.Engine, s.dep.Edge))
	s.loopISP = make(map[int]*loopscan.ScanResult, len(s.dep.ISPs))
	for _, isp := range s.dep.ISPs {
		s.logf("loop sweep over ISP %d (%s)", isp.Spec.Index, isp.Spec.Name)
		res, err := det.ScanWindows([]ipv6.Window{isp.Window},
			[]byte(fmt.Sprintf("loop-%d-%d", s.opts.Seed, isp.Spec.Index)))
		if err != nil {
			return nil, fmt.Errorf("experiments: loop sweep ISP %d: %w", isp.Spec.Index, err)
		}
		s.loopISP[isp.Spec.Index] = res
	}
	return s.loopISP, nil
}

// BGP builds and sweeps the Section VI-B universe.
func (s *Suite) BGP() (*topo.BGPDeployment, *loopscan.ScanResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bgpScan != nil {
		return s.bgpDep, s.bgpScan, nil
	}
	s.logf("building BGP universe (%d ASes)", s.opts.BGPASes)
	dep, err := topo.BuildBGPUniverse(topo.BGPConfig{
		Seed:        s.opts.Seed + 7,
		NumASes:     s.opts.BGPASes,
		WindowWidth: s.opts.BGPWindowWidth,
	})
	if err != nil {
		return nil, nil, err
	}
	det := loopscan.NewDetector(xmap.NewSimDriver(dep.Engine, dep.Edge))
	s.logf("loop sweep over %d advertised prefixes", len(dep.Windows))
	scanRes, err := det.ScanWindows(dep.Windows, []byte(fmt.Sprintf("bgp-%d", s.opts.Seed)))
	if err != nil {
		return nil, nil, err
	}
	s.bgpDep, s.bgpScan = dep, scanRes
	return dep, scanRes, nil
}

// SubnetInference runs the Table I boundary inference per ISP.
func (s *Suite) SubnetInference() ([]subnet.Result, error) {
	if _, err := s.Deployment(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.subnetRes != nil {
		return s.subnetRes, nil
	}
	drv := xmap.NewSimDriver(s.dep.Engine, s.dep.Edge)
	for _, isp := range s.dep.ISPs {
		res, err := subnet.Infer(drv, isp.Window.Base, subnet.Options{
			Seed:           s.opts.Seed + int64(isp.Spec.Index),
			MaxPreliminary: 8 << s.opts.WindowWidth,
		})
		if err != nil {
			// Sparse blocks (BSNL-sized populations) can defeat the
			// preliminary scan, as they slow it in practice; record -1.
			s.logf("subnet inference for ISP %d failed: %v", isp.Spec.Index, err)
			res = subnet.Result{Block: isp.Window.Base, Length: -1}
		}
		s.subnetRes = append(s.subnetRes, res)
	}
	return s.subnetRes, nil
}

// LabOutcome is one Table XII row as measured in the lab network.
type LabOutcome struct {
	Router    topo.LabRouter
	VulnWAN   bool
	VulnLAN   bool
	LoopTimes uint64 // packets moved on the access link by one WAN-prefix probe
}

// Lab runs the Section VI-D case study.
func (s *Suite) Lab() ([]LabOutcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lab != nil {
		return s.lab, nil
	}
	dep, err := topo.BuildLab(s.opts.Seed)
	if err != nil {
		return nil, err
	}
	// Section VI-D methodology: send one hop-limit-255 packet per prefix
	// and observe the access link directly ("we observe their routing
	// tables and traffics"), which also catches bounded-loop devices the
	// h/h+2 probe misses.
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	for _, e := range dep.Entries {
		out := LabOutcome{Router: e.Router}

		wan, err := loopscan.MeasureAmplification(drv, ipv6.SLAAC(e.WANPrefix, 0xdead_beef_0001), e.AccessLink)
		if err != nil {
			return nil, err
		}
		out.LoopTimes = wan.LinkPackets
		out.VulnWAN = wan.LinkPackets > 4

		lanSub, err := e.Delegated.Sub(64, maxIdx(e.Delegated))
		if err != nil {
			return nil, err
		}
		lan, err := loopscan.MeasureAmplification(drv, ipv6.SLAAC(lanSub, 0xdead_beef_0002), e.AccessLink)
		if err != nil {
			return nil, err
		}
		out.VulnLAN = lan.LinkPackets > 4
		s.lab = append(s.lab, out)
	}
	return s.lab, nil
}

func maxIdx(p ipv6.Prefix) uint128.Uint128 {
	n, _ := p.NumSub(64)
	return n.Sub64(1)
}
