package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/ipv6"
	"repro/internal/loopscan"
	"repro/internal/report"
	"repro/internal/topo"
	"repro/internal/xmap"
)

// Mitigation evaluates the three Section VII countermeasures on a
// controlled deployment:
//
//  1. the RFC 7084 unreachable route, which eliminates routing loops;
//  2. periphery-side ICMPv6 error filtering, which defeats the discovery
//     technique itself (at the cost of RFC 4443 conformance);
//  3. replacing EUI-64 IIDs with opaque ones, which stops MAC/vendor
//     leakage (quantified from the discovery census).
//
// It also demonstrates the spoofed-source doubling of Section VI-A that
// motivates source-address validation as a complementary mitigation.
func (s *Suite) Mitigation() (string, error) {
	var b strings.Builder
	b.WriteString("Section VII mitigation evaluation\n")

	base := topo.Config{
		Seed: s.opts.Seed + 31, Scale: 0.0005, WindowWidth: 10,
		MaxDevicesPerISP: 200, OnlyISPs: []int{12},
	}

	sweep := func(cfg topo.Config) (*topo.Deployment, *loopscan.ScanResult, error) {
		dep, err := topo.Build(cfg)
		if err != nil {
			return nil, nil, err
		}
		det := loopscan.NewDetector(xmap.NewSimDriver(dep.Engine, dep.Edge))
		res, err := det.ScanWindows([]ipv6.Window{dep.ISPs[0].Window}, []byte("mitigate"))
		return dep, res, err
	}

	// Baseline.
	dep, baseline, err := sweep(base)
	if err != nil {
		return "", err
	}
	var victim *topo.Device
	for _, d := range dep.ISPs[0].Devices {
		if d.VulnLAN {
			victim = d
			break
		}
	}
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	t := report.Table{Headers: []string{"Configuration", "Loop-vulnerable hops", "Amplification"}}

	ampText := "-"
	if victim != nil {
		target := notUsedIn(victim)
		amp, err := loopscan.MeasureAmplification(drv, target, victim.AccessLink)
		if err != nil {
			return "", err
		}
		ampText = fmt.Sprintf("%.0fx", amp.Factor)
		// Spoofed-source doubling (requires an AS without source
		// address validation, per the paper's observation).
		spoofed, err := loopscan.MeasureAmplificationSpoofed(drv, target,
			ipv6.AddrFrom128(target.Uint128().Add64(7)), victim.AccessLink)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "spoofed-source attack: %d packets on the victim link (%.0fx, ~2x the direct attack)\n",
			spoofed.LinkPackets, spoofed.Factor)
	}
	t.AddRow("baseline (vulnerable firmware)",
		report.Count(len(baseline.VulnerableHops())), ampText)

	// Mitigation 1: RFC 7084 unreachable route.
	patchedCfg := base
	patchedCfg.PatchLoops = true
	depP, patched, err := sweep(patchedCfg)
	if err != nil {
		return "", err
	}
	ampPatched := "-"
	if victim != nil {
		// The same device position, now patched.
		var pv *topo.Device
		for _, d := range depP.ISPs[0].Devices {
			if d.WANAddr == victim.WANAddr {
				pv = d
				break
			}
		}
		if pv != nil {
			amp, err := loopscan.MeasureAmplification(
				xmap.NewSimDriver(depP.Engine, depP.Edge), notUsedIn(pv), pv.AccessLink)
			if err != nil {
				return "", err
			}
			ampPatched = fmt.Sprintf("%.0fx", amp.Factor)
		}
	}
	t.AddRow("RFC 7084 unreachable route", report.Count(len(patched.VulnerableHops())), ampPatched)

	// Mitigation 2: periphery ICMPv6 error filtering kills discovery.
	filteredCfg := base
	filteredCfg.FilterPings = true
	depF, err := topo.Build(filteredCfg)
	if err != nil {
		return "", err
	}
	scanner, err := xmap.New(xmap.Config{
		Window: depF.ISPs[0].Window, Seed: []byte("mitigate-filter"), DedupExact: true,
	}, xmap.NewSimDriver(depF.Engine, depF.Edge))
	if err != nil {
		return "", err
	}
	discovered := 0
	if _, err := scanner.Run(context.Background(), func(r xmap.Response) {
		if _, ok := depF.DeviceByWAN(r.Responder); ok {
			discovered++
		}
	}); err != nil {
		return "", err
	}
	t.AddRow("periphery ICMPv6 filtering",
		fmt.Sprintf("(peripheries discoverable: %d of %d)", discovered, len(depF.ISPs[0].Devices)), "-")

	b.WriteString(t.String())

	// Mitigation 3: the EUI-64 share that opaque IIDs would eliminate.
	recs, err := s.Peripheries()
	if err != nil {
		return "", err
	}
	eui := 0
	for _, r := range recs {
		if r.HasMAC {
			eui++
		}
	}
	fmt.Fprintf(&b,
		"EUI-64 exposure: %d of %d discovered peripheries leak their MAC (RFC 8064 opaque IIDs would eliminate this)\n",
		eui, len(recs))
	return b.String(), nil
}

// notUsedIn returns an address in a delegated-but-unused /64 of d.
func notUsedIn(d *topo.Device) ipv6.Addr {
	deleg := d.CPE.Delegated()
	n, _ := deleg.NumSub(64)
	for i := n.Sub64(1); ; i = i.Sub64(1) {
		sub, err := deleg.Sub(64, i)
		if err != nil {
			continue
		}
		if !sub.Contains(d.WANAddr) {
			return ipv6.SLAAC(sub, 0xdead_0001)
		}
	}
}
