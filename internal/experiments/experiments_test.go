package experiments

import (
	"strings"
	"testing"

	"repro/internal/ipv6"
	"repro/internal/services"
)

// suite is shared across tests (the measurement stages are cached inside
// it), so the package test binary runs the pipeline once.
var testSuite = New(Quick())

func TestTableIIShape(t *testing.T) {
	text, rows, err := testSuite.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("Table II has %d ISPs, want 15", len(rows))
	}
	byISP := map[int]int{}
	for _, r := range rows {
		byISP[r.ISPIndex] = r.UniqueHops
	}
	// Shape: the mobile /64-boundary ISPs report overwhelmingly "same",
	// the US broadband ISPs overwhelmingly "diff" (paper Table II).
	for _, r := range rows {
		switch r.ISPIndex {
		case 1, 3, 4, 14, 15: // /64-boundary with shared WAN prefix
			if r.SamePct < 90 {
				t.Errorf("ISP %d same%% = %.1f, want >90", r.ISPIndex, r.SamePct)
			}
		case 5, 6, 7, 8, 10: // US broadband/enterprise
			if r.DiffPct < 90 {
				t.Errorf("ISP %d diff%% = %.1f, want >90", r.ISPIndex, r.DiffPct)
			}
		case 11, 12, 13: // CN broadband: WAN inside delegation, ~1/16 same
			if r.SamePct > 25 {
				t.Errorf("ISP %d same%% = %.1f, want small", r.ISPIndex, r.SamePct)
			}
		}
	}
	// Comcast is the EUI-64-heavy ISP (95% in the paper).
	for _, r := range rows {
		if r.ISPIndex == 5 && r.EUI64Pct < 70 {
			t.Errorf("Comcast EUI-64%% = %.1f, want high", r.EUI64Pct)
		}
	}
	if !strings.Contains(text, "Table II") {
		t.Error("missing title")
	}
}

func TestTableIIIRandomizedDominates(t *testing.T) {
	_, dist, err := testSuite.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if dist.Total == 0 {
		t.Fatal("empty distribution")
	}
	// Paper Table III: randomized 75.5%, byte-pattern 10.4%, EUI-64 7.6%.
	if dist.Pct(ipv6.IIDRandomized) < 50 {
		t.Errorf("randomized = %.1f%%, want dominant", dist.Pct(ipv6.IIDRandomized))
	}
	if dist.Pct(ipv6.IIDEUI64) > 30 {
		t.Errorf("EUI-64 = %.1f%%, want minority", dist.Pct(ipv6.IIDEUI64))
	}
}

func TestTableVServiceExposedMix(t *testing.T) {
	_, dist, err := testSuite.TableV()
	if err != nil {
		t.Fatal(err)
	}
	if dist.Total == 0 {
		t.Fatal("no service-exposing peripheries found")
	}
	all, err := testSuite.Peripheries()
	if err != nil {
		t.Fatal(err)
	}
	if dist.Total >= len(all) {
		t.Errorf("exposed (%d) not a strict subset of discovered (%d)", dist.Total, len(all))
	}
}

func TestTableVIAllConform(t *testing.T) {
	text, err := testSuite.TableVI()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text, "no") && !strings.Contains(text, "yes") {
		t.Fatalf("no service conformed:\n%s", text)
	}
	if strings.Count(text, "yes") != len(services.All) {
		t.Errorf("not all services conform:\n%s", text)
	}
}

func TestTableVIIChinaDominatesExposure(t *testing.T) {
	_, rows, err := testSuite.TableVII()
	if err != nil {
		t.Fatal(err)
	}
	totals := map[int]float64{}
	for _, r := range rows {
		totals[r.ISPIndex] = r.TotalPct()
	}
	// Paper: China Mobile broadband (13) leads at 57.5%, Unicom (12) at
	// 24.6%; the Indian mobile ISPs are near zero.
	if totals[13] < totals[3] || totals[13] < totals[1] {
		t.Errorf("ISP 13 exposure %.1f%% should dominate IN ISPs (%v)", totals[13], totals)
	}
	if totals[13] < 20 {
		t.Errorf("ISP 13 exposure = %.1f%%, want large", totals[13])
	}
}

func TestTableIXLoopSubset(t *testing.T) {
	_, res, err := testSuite.TableIX()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalHops == 0 || res.LoopHops == 0 {
		t.Fatalf("degenerate Table IX: %+v", res)
	}
	if res.LoopHops > res.TotalHops || res.LoopASNs > res.TotalASNs || res.LoopCountries > res.TotalCountry {
		t.Errorf("loop population exceeds total: %+v", res)
	}
	if res.TotalASNs < 10 || res.TotalCountry < 5 {
		t.Errorf("universe too small: %+v", res)
	}
}

func TestTableXLowByteHeavierThanISPMix(t *testing.T) {
	_, bgpDist, err := testSuite.TableX()
	if err != nil {
		t.Fatal(err)
	}
	_, ispDist, err := testSuite.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if bgpDist.Total == 0 {
		t.Fatal("no loop devices in BGP sweep")
	}
	// Paper: the BGP universe shows far more low-byte (manually
	// configured) addresses than the residential ISP windows.
	if bgpDist.Pct(ipv6.IIDLowByte) <= ispDist.Pct(ipv6.IIDLowByte) {
		t.Errorf("BGP low-byte %.1f%% not above ISP low-byte %.1f%%",
			bgpDist.Pct(ipv6.IIDLowByte), ispDist.Pct(ipv6.IIDLowByte))
	}
}

func TestTableXIChinaBroadbandLeads(t *testing.T) {
	_, rows, err := testSuite.TableXI()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, r := range rows {
		counts[r.ISPIndex] = r.Unique
	}
	cn := counts[11] + counts[12] + counts[13]
	other := 0
	for isp, n := range counts {
		if isp != 11 && isp != 12 && isp != 13 {
			other += n
		}
	}
	if cn <= other {
		t.Errorf("CN broadband loops (%d) should dominate others (%d)", cn, other)
	}
	// CN broadband loop replies are mostly "diff" (Table XI: ~95%).
	for _, r := range rows {
		if (r.ISPIndex == 12 || r.ISPIndex == 13) && r.Unique > 5 && r.DiffPct < 70 {
			t.Errorf("ISP %d loop diff%% = %.1f, want high", r.ISPIndex, r.DiffPct)
		}
	}
}

func TestTableXIIAllRoutersVulnerable(t *testing.T) {
	_, outcomes, err := testSuite.TableXII()
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 99 {
		t.Fatalf("lab outcomes = %d", len(outcomes))
	}
	for _, o := range outcomes {
		if !o.VulnWAN {
			t.Errorf("%s %s measured WAN-immune; Table XII says all vulnerable", o.Router.Brand, o.Router.Model)
		}
		if o.VulnWAN != o.Router.VulnWAN || o.VulnLAN != o.Router.VulnLAN {
			t.Errorf("%s %s measured WAN=%v LAN=%v, ground truth WAN=%v LAN=%v",
				o.Router.Brand, o.Router.Model, o.VulnWAN, o.VulnLAN, o.Router.VulnWAN, o.Router.VulnLAN)
		}
		if o.Router.LoopCap > 0 {
			if o.LoopTimes < 10 || o.LoopTimes > 60 {
				t.Errorf("%s %s loop times = %d, want bounded >10", o.Router.Brand, o.Router.Model, o.LoopTimes)
			}
		} else if o.LoopTimes < 200 {
			t.Errorf("%s %s loop times = %d, want (255-n)-ish", o.Router.Brand, o.Router.Model, o.LoopTimes)
		}
	}
}

func TestFigure5TopCountriesShape(t *testing.T) {
	text, err := testSuite.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	// The calibration concentrates loops in the paper's Figure 5
	// countries; at least one of the top two should appear.
	if !strings.Contains(text, "BR") && !strings.Contains(text, "CN") {
		t.Errorf("Figure 5 lacks BR/CN:\n%s", text)
	}
}

func TestFiguresRender(t *testing.T) {
	for name, fn := range map[string]func() (string, error){
		"Figure2":   testSuite.Figure2,
		"Figure3":   testSuite.Figure3,
		"Figure6":   testSuite.Figure6,
		"TableIV":   testSuite.TableIV,
		"TableVIII": testSuite.TableVIII,
	} {
		text, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(text) == 0 {
			t.Errorf("%s rendered empty", name)
		}
	}
}

func TestTableIInference(t *testing.T) {
	text, err := testSuite.TableI()
	if err != nil {
		t.Fatal(err)
	}
	// Every row where inference succeeded must match the paper column;
	// count successes.
	lines := strings.Split(text, "\n")
	okRows := 0
	for _, line := range lines {
		if !strings.Contains(line, "/") || strings.HasPrefix(line, "Table") || strings.Contains(line, "Inferred") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		inferred, paper := fields[len(fields)-2], fields[len(fields)-1]
		if inferred == "?" {
			continue
		}
		if inferred != paper {
			t.Errorf("inference mismatch: %q", line)
		}
		okRows++
	}
	if okRows < 10 {
		t.Errorf("only %d of 15 inferences succeeded:\n%s", okRows, text)
	}
}

func TestMitigationReport(t *testing.T) {
	text, err := testSuite.Mitigation()
	if err != nil {
		t.Fatal(err)
	}
	// The RFC 7084 patch must eliminate every loop.
	if !strings.Contains(text, "RFC 7084 unreachable route  0 ") &&
		!strings.Contains(text, "RFC 7084 unreachable route            0") {
		// Parse defensively: find the patched row and check its count.
		found := false
		for _, line := range strings.Split(text, "\n") {
			if strings.Contains(line, "RFC 7084") {
				found = true
				fields := strings.Fields(line)
				if len(fields) < 2 || !strings.Contains(line, " 0 ") {
					t.Errorf("patched deployment still has loops: %q", line)
				}
			}
		}
		if !found {
			t.Fatalf("no RFC 7084 row in:\n%s", text)
		}
	}
	// Ping filtering must defeat discovery.
	if !strings.Contains(text, "peripheries discoverable: 0 of") {
		t.Errorf("ICMP filtering did not defeat discovery:\n%s", text)
	}
	// Spoofed-source doubling appears with a large factor.
	if !strings.Contains(text, "spoofed-source attack") {
		t.Errorf("missing spoofed-source demonstration:\n%s", text)
	}
}

func TestFeasibilityArtifact(t *testing.T) {
	text, err := testSuite.Feasibility()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's arithmetic: 32-bit window at the 25 kpps vantage takes
	// ~48 hours; the /60 sweep of a /24 at 1 Gbps ~14 hours.
	if !strings.Contains(text, "48h") {
		t.Errorf("missing 48h figure:\n%s", text)
	}
	if !strings.Contains(text, "13h38m") && !strings.Contains(text, "14h") {
		t.Errorf("missing ~14h figure:\n%s", text)
	}
	// XMap must be the most probe-efficient method in the table.
	if !strings.Contains(text, "XMap periphery scan") ||
		!strings.Contains(text, "traceroute last-hop") ||
		!strings.Contains(text, "TGA") {
		t.Errorf("missing methods:\n%s", text)
	}
}
