// Package ntpwire implements the NTPv4 packet format (RFC 5905) the NTP
// probe and the simulated periphery NTP service exchange, including the
// mode-3 client query / mode-4 server reply pair the paper's Table VI
// specifies ("version query" -> "version reply").
package ntpwire

import (
	"encoding/binary"
	"fmt"
)

// Packet modes.
const (
	ModeClient = 3
	ModeServer = 4
)

// PacketLen is the length of a basic NTP packet without extensions.
const PacketLen = 48

// Packet is an NTP packet (no extension fields, no MAC).
type Packet struct {
	LeapIndicator uint8 // 2 bits
	Version       uint8 // 3 bits
	Mode          uint8 // 3 bits
	Stratum       uint8
	Poll          int8
	Precision     int8
	RootDelay     uint32
	RootDisp      uint32
	ReferenceID   uint32
	RefTimestamp  uint64
	OrigTimestamp uint64
	RecvTimestamp uint64
	XmitTimestamp uint64
}

// Marshal serializes the packet.
func (p *Packet) Marshal() ([]byte, error) {
	if p.LeapIndicator > 3 || p.Version > 7 || p.Mode > 7 {
		return nil, fmt.Errorf("ntpwire: field out of range (li=%d ver=%d mode=%d)", p.LeapIndicator, p.Version, p.Mode)
	}
	b := make([]byte, PacketLen)
	b[0] = p.LeapIndicator<<6 | p.Version<<3 | p.Mode
	b[1] = p.Stratum
	b[2] = byte(p.Poll)
	b[3] = byte(p.Precision)
	binary.BigEndian.PutUint32(b[4:8], p.RootDelay)
	binary.BigEndian.PutUint32(b[8:12], p.RootDisp)
	binary.BigEndian.PutUint32(b[12:16], p.ReferenceID)
	binary.BigEndian.PutUint64(b[16:24], p.RefTimestamp)
	binary.BigEndian.PutUint64(b[24:32], p.OrigTimestamp)
	binary.BigEndian.PutUint64(b[32:40], p.RecvTimestamp)
	binary.BigEndian.PutUint64(b[40:48], p.XmitTimestamp)
	return b, nil
}

// Parse decodes an NTP packet.
func Parse(b []byte) (*Packet, error) {
	if len(b) < PacketLen {
		return nil, fmt.Errorf("ntpwire: packet too short: %d bytes", len(b))
	}
	return &Packet{
		LeapIndicator: b[0] >> 6,
		Version:       b[0] >> 3 & 7,
		Mode:          b[0] & 7,
		Stratum:       b[1],
		Poll:          int8(b[2]),
		Precision:     int8(b[3]),
		RootDelay:     binary.BigEndian.Uint32(b[4:8]),
		RootDisp:      binary.BigEndian.Uint32(b[8:12]),
		ReferenceID:   binary.BigEndian.Uint32(b[12:16]),
		RefTimestamp:  binary.BigEndian.Uint64(b[16:24]),
		OrigTimestamp: binary.BigEndian.Uint64(b[24:32]),
		RecvTimestamp: binary.BigEndian.Uint64(b[32:40]),
		XmitTimestamp: binary.BigEndian.Uint64(b[40:48]),
	}, nil
}

// NewClientQuery builds the version-4 mode-3 query the scanner sends.
func NewClientQuery(xmit uint64) *Packet {
	return &Packet{Version: 4, Mode: ModeClient, XmitTimestamp: xmit}
}

// NewServerReply builds a stratum-2 mode-4 reply echoing the client's
// transmit timestamp into the origin field, as RFC 5905 requires.
func NewServerReply(query *Packet, recv, xmit uint64) *Packet {
	return &Packet{
		Version:       query.Version,
		Mode:          ModeServer,
		Stratum:       2,
		ReferenceID:   0x7f7f0101,
		OrigTimestamp: query.XmitTimestamp,
		RecvTimestamp: recv,
		XmitTimestamp: xmit,
	}
}
