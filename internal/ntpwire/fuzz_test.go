package ntpwire

import (
	"bytes"
	"testing"
)

// FuzzParse exercises the NTP packet decoder on arbitrary bytes: any
// input of at least PacketLen must decode, and whatever decodes must
// survive a Marshal/Parse round trip bit-exactly over the first
// PacketLen bytes.
func FuzzParse(f *testing.F) {
	q, err := NewClientQuery(0x83aa7e80_00000000).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(q)
	r, err := NewServerReply(NewClientQuery(1), 2, 3).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(r)
	f.Add(make([]byte, PacketLen))
	f.Add(bytes.Repeat([]byte{0xff}, PacketLen+16))
	f.Add([]byte{0x1b})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			if len(data) >= PacketLen {
				t.Fatalf("Parse rejected a full-length packet: %v", err)
			}
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("Marshal failed on a parsed packet %+v: %v", p, err)
		}
		if !bytes.Equal(out, data[:PacketLen]) {
			t.Fatalf("round trip diverged:\n got %x\nwant %x", out, data[:PacketLen])
		}
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-Parse failed: %v", err)
		}
		if *p2 != *p {
			t.Fatalf("re-Parse diverged: %+v vs %+v", p2, p)
		}
	})
}
