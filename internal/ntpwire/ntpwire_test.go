package ntpwire

import (
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	f := func(li, ver, mode, stratum uint8, poll, prec int8, rd, rdisp, rid uint32, ts [4]uint64) bool {
		p := &Packet{
			LeapIndicator: li & 3, Version: ver & 7, Mode: mode & 7,
			Stratum: stratum, Poll: poll, Precision: prec,
			RootDelay: rd, RootDisp: rdisp, ReferenceID: rid,
			RefTimestamp: ts[0], OrigTimestamp: ts[1], RecvTimestamp: ts[2], XmitTimestamp: ts[3],
		}
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := Parse(b)
		return err == nil && *got == *p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarshalRejectsOutOfRange(t *testing.T) {
	for _, p := range []*Packet{
		{LeapIndicator: 4},
		{Version: 8},
		{Mode: 8},
	} {
		if _, err := p.Marshal(); err == nil {
			t.Errorf("packet %+v accepted", p)
		}
	}
}

func TestParseRejectsShort(t *testing.T) {
	if _, err := Parse(make([]byte, 47)); err == nil {
		t.Error("short packet accepted")
	}
}

func TestClientServerExchange(t *testing.T) {
	q := NewClientQuery(0xAABBCCDD11223344)
	if q.Mode != ModeClient || q.Version != 4 {
		t.Fatalf("query = %+v", q)
	}
	r := NewServerReply(q, 100, 200)
	if r.Mode != ModeServer {
		t.Errorf("reply mode = %d", r.Mode)
	}
	if r.OrigTimestamp != q.XmitTimestamp {
		t.Errorf("origin timestamp not echoed: %x", r.OrigTimestamp)
	}
	if r.Stratum == 0 || r.Stratum > 15 {
		t.Errorf("stratum = %d", r.Stratum)
	}
	if r.Version != q.Version {
		t.Errorf("version not mirrored: %d", r.Version)
	}
}
