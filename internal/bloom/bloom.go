// Package bloom implements a Bloom filter sized for response
// deduplication at scan scale, as ZMap-family scanners use to suppress
// duplicate replies without storing every responder address. The filter
// is fully serializable (Marshal/Unmarshal), so a crashed scan resumes
// with its dedup state intact.
//
// The filter is cache-line blocked: each key selects one 512-bit block
// and sets all k of its bits inside it, so an insert or query touches
// exactly one line of a filter that is otherwise far larger than any
// cache — instead of k scattered lines — and derives every bit position
// with shifts and masks instead of a modulo. The price is a modestly
// higher false-positive rate than an unblocked filter of equal size
// (block loads vary around the mean); the constructor rounds the block
// count up to a power of two, which buys most of that slack back.
package bloom

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// blockWords is the block size in 64-bit words: 8 words, one 64-byte
// cache line.
const blockWords = 8

// Filter is a blocked Bloom filter over 16-byte keys (IPv6 addresses).
// Not safe for concurrent use; the scanner owns one per receive loop.
// Hashing uses explicit uint64 seeds (not hash/maphash, whose seeds are
// opaque), so a marshaled filter round-trips bit-exactly across
// processes.
type Filter struct {
	bits  []uint64
	nbits uint64
	bmask uint64 // block count - 1 (power of two), derived from nbits
	k     int
	seed1 uint64
	seed2 uint64
	count uint64 // inserted keys (approximate population)
}

// New creates a filter dimensioned for n expected insertions at the given
// false-positive rate p (0 < p < 1), with hash seeds drawn from the
// global math/rand source. Use NewSeeded when replay determinism
// matters.
func New(n uint64, p float64) (*Filter, error) {
	return NewSeeded(n, p, rand.Uint64())
}

// NewSeeded is New with the hash seeds derived deterministically from
// seed: two filters built with equal parameters behave identically,
// insert for insert.
func NewSeeded(n uint64, p float64, seed uint64) (*Filter, error) {
	if n == 0 {
		return nil, fmt.Errorf("bloom: zero capacity")
	}
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("bloom: false-positive rate %v out of (0,1)", p)
	}
	// Optimal parameters: m = -n ln p / (ln 2)^2, k = m/n ln 2; then m
	// rounds up to a power-of-two count of 512-bit blocks so block
	// selection is a mask.
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	blocks := uint64(1)
	for blocks*512 < m {
		blocks *= 2
	}
	return &Filter{
		bits:  make([]uint64, blocks*blockWords),
		nbits: blocks * 512,
		bmask: blocks - 1,
		k:     k,
		seed1: mix64(seed ^ 0x736565642d6f6e65), // "seed-one"
		seed2: mix64(seed ^ 0x736565642d74776f), // "seed-two"
	}, nil
}

// mix64 is the splitmix64 finalizer, a full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashBytes hashes key under seed, eight bytes at a time.
func hashBytes(seed uint64, key []byte) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for len(key) >= 8 {
		h = mix64(h ^ binary.BigEndian.Uint64(key))
		key = key[8:]
	}
	if len(key) > 0 {
		var tail [8]byte
		copy(tail[:], key)
		h = mix64(h ^ binary.BigEndian.Uint64(tail[:]) ^ uint64(len(key)))
	}
	return mix64(h)
}

// hashPair hashes a 16-byte key held as two big-endian words — exactly
// hashBytes over its byte encoding, without the round trip through a
// buffer.
func hashPair(seed, hi, lo uint64) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	h = mix64(h ^ hi)
	h = mix64(h ^ lo)
	return mix64(h)
}

// hashes derives the block selector and the in-block probe stride by
// double hashing (Kirsch-Mitzenmacher).
func (f *Filter) hashes(key []byte) (h1, h2 uint64) {
	return hashBytes(f.seed1, key), hashBytes(f.seed2, key) | 1 // odd stride
}

// addHash sets the k bits of h1's block; bit i sits at in-block
// position h1>>32 + i*h2 (mod 512, an odd stride, so the probe sequence
// cycles the whole block). One cache line, no division.
func (f *Filter) addHash(h1, h2 uint64) {
	base := (h1 & f.bmask) * blockWords
	pos := h1 >> 32
	for i := 0; i < f.k; i++ {
		f.bits[base+(pos>>6&(blockWords-1))] |= 1 << (pos & 63)
		pos += h2
	}
	f.count++
}

// containsHash is the query counterpart of addHash.
func (f *Filter) containsHash(h1, h2 uint64) bool {
	base := (h1 & f.bmask) * blockWords
	pos := h1 >> 32
	for i := 0; i < f.k; i++ {
		if f.bits[base+(pos>>6&(blockWords-1))]&(1<<(pos&63)) == 0 {
			return false
		}
		pos += h2
	}
	return true
}

// addIfAbsentHash is the fused probe-and-set under one hashing pass.
func (f *Filter) addIfAbsentHash(h1, h2 uint64) bool {
	base := (h1 & f.bmask) * blockWords
	pos := h1 >> 32
	absent := false
	for i := 0; i < f.k; i++ {
		w := &f.bits[base+(pos>>6&(blockWords-1))]
		m := uint64(1) << (pos & 63)
		if *w&m == 0 {
			absent = true
			*w |= m
		}
		pos += h2
	}
	f.count++
	return absent
}

// Add inserts key.
func (f *Filter) Add(key []byte) {
	h1, h2 := f.hashes(key)
	f.addHash(h1, h2)
}

// Contains reports whether key may have been inserted (false positives
// possible near the configured rate; false negatives never).
func (f *Filter) Contains(key []byte) bool {
	h1, h2 := f.hashes(key)
	return f.containsHash(h1, h2)
}

// AddIfAbsent inserts key and reports whether it was absent before the
// call — one hashing pass replacing the Contains-then-Add pair on a
// dedup hot path. Bit-for-bit equivalent to Contains followed by Add.
func (f *Filter) AddIfAbsent(key []byte) bool {
	h1, h2 := f.hashes(key)
	return f.addIfAbsentHash(h1, h2)
}

// AddIfAbsentUint64Pair is AddIfAbsent for 128-bit keys held as two
// words.
func (f *Filter) AddIfAbsentUint64Pair(hi, lo uint64) bool {
	return f.addIfAbsentHash(hashPair(f.seed1, hi, lo), hashPair(f.seed2, hi, lo)|1)
}

// AddUint64Pair is a convenience for 128-bit keys held as two words.
func (f *Filter) AddUint64Pair(hi, lo uint64) {
	f.addHash(hashPair(f.seed1, hi, lo), hashPair(f.seed2, hi, lo)|1)
}

// ContainsUint64Pair is the query counterpart of AddUint64Pair.
func (f *Filter) ContainsUint64Pair(hi, lo uint64) bool {
	return f.containsHash(hashPair(f.seed1, hi, lo), hashPair(f.seed2, hi, lo)|1)
}

// Count returns the number of Add calls (not distinct keys).
func (f *Filter) Count() uint64 { return f.count }

// FillRatio returns the fraction of set bits, a saturation diagnostic.
func (f *Filter) FillRatio() float64 {
	var ones int
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			ones++
		}
	}
	return float64(ones) / float64(f.nbits)
}

// Serialized format: magic "BF" + version 2, then the filter parameters
// and the raw bit words, all big-endian. The header is fixed-size so the
// decoder can bound-check the payload before allocating. Version 2
// introduced the blocked bit layout; version-1 blobs place the same keys
// at different bits, so they are rejected rather than silently misread.
const (
	marshalMagic   = 0x42460002 // "BF" 0x0002
	marshalHdrLen  = 4 + 4 + 8 + 8 + 8 + 8
	maxMarshalBits = uint64(1) << 36 // 8 GiB of filter; beyond this is corruption
)

// MarshaledSize returns the exact byte length Marshal will produce.
func (f *Filter) MarshaledSize() int { return marshalHdrLen + len(f.bits)*8 }

// AppendMarshal appends the serialized filter to dst and returns the
// extended slice.
func (f *Filter) AppendMarshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, marshalMagic)
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.k))
	dst = binary.BigEndian.AppendUint64(dst, f.nbits)
	dst = binary.BigEndian.AppendUint64(dst, f.seed1)
	dst = binary.BigEndian.AppendUint64(dst, f.seed2)
	dst = binary.BigEndian.AppendUint64(dst, f.count)
	for _, w := range f.bits {
		dst = binary.BigEndian.AppendUint64(dst, w)
	}
	return dst
}

// Marshal serializes the filter.
func (f *Filter) Marshal() []byte {
	return f.AppendMarshal(make([]byte, 0, f.MarshaledSize()))
}

// Unmarshal reconstructs a filter serialized by Marshal. Malformed,
// truncated or version-skewed input yields an error, never a panic, and
// never an oversized allocation.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < marshalHdrLen {
		return nil, fmt.Errorf("bloom: truncated header: %d bytes", len(data))
	}
	if magic := binary.BigEndian.Uint32(data[0:4]); magic != marshalMagic {
		return nil, fmt.Errorf("bloom: bad magic/version %#08x", magic)
	}
	k := binary.BigEndian.Uint32(data[4:8])
	nbits := binary.BigEndian.Uint64(data[8:16])
	if k < 1 || k > 64 {
		return nil, fmt.Errorf("bloom: hash count %d out of [1,64]", k)
	}
	// The blocked layout requires whole 512-bit blocks, a power of two of
	// them (block selection is a mask).
	if nbits == 0 || nbits%512 != 0 || nbits > maxMarshalBits ||
		(nbits/512)&(nbits/512-1) != 0 {
		return nil, fmt.Errorf("bloom: bit count %d invalid", nbits)
	}
	words := int(nbits / 64)
	if got, want := len(data)-marshalHdrLen, words*8; got != want {
		return nil, fmt.Errorf("bloom: payload %d bytes, want %d", got, want)
	}
	f := &Filter{
		bits:  make([]uint64, words),
		nbits: nbits,
		bmask: nbits/512 - 1,
		k:     int(k),
		seed1: binary.BigEndian.Uint64(data[16:24]),
		seed2: binary.BigEndian.Uint64(data[24:32]),
		count: binary.BigEndian.Uint64(data[32:40]),
	}
	for i := range f.bits {
		f.bits[i] = binary.BigEndian.Uint64(data[marshalHdrLen+i*8:])
	}
	return f, nil
}
