// Package bloom implements a Bloom filter sized for response
// deduplication at scan scale, as ZMap-family scanners use to suppress
// duplicate replies without storing every responder address. The filter
// is fully serializable (Marshal/Unmarshal), so a crashed scan resumes
// with its dedup state intact.
package bloom

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Filter is a Bloom filter over 16-byte keys (IPv6 addresses). Not safe
// for concurrent use; the scanner owns one per receive loop. Hashing
// uses explicit uint64 seeds (not hash/maphash, whose seeds are opaque),
// so a marshaled filter round-trips bit-exactly across processes.
type Filter struct {
	bits  []uint64
	nbits uint64
	k     int
	seed1 uint64
	seed2 uint64
	count uint64 // inserted keys (approximate population)
}

// New creates a filter dimensioned for n expected insertions at the given
// false-positive rate p (0 < p < 1), with hash seeds drawn from the
// global math/rand source. Use NewSeeded when replay determinism
// matters.
func New(n uint64, p float64) (*Filter, error) {
	return NewSeeded(n, p, rand.Uint64())
}

// NewSeeded is New with the hash seeds derived deterministically from
// seed: two filters built with equal parameters behave identically,
// insert for insert.
func NewSeeded(n uint64, p float64, seed uint64) (*Filter, error) {
	if n == 0 {
		return nil, fmt.Errorf("bloom: zero capacity")
	}
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("bloom: false-positive rate %v out of (0,1)", p)
	}
	// Optimal parameters: m = -n ln p / (ln 2)^2, k = m/n ln 2.
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return &Filter{
		bits:  make([]uint64, (m+63)/64),
		nbits: (m + 63) / 64 * 64,
		k:     k,
		seed1: mix64(seed ^ 0x736565642d6f6e65), // "seed-one"
		seed2: mix64(seed ^ 0x736565642d74776f), // "seed-two"
	}, nil
}

// mix64 is the splitmix64 finalizer, a full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashBytes hashes key under seed, eight bytes at a time.
func hashBytes(seed uint64, key []byte) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for len(key) >= 8 {
		h = mix64(h ^ binary.BigEndian.Uint64(key))
		key = key[8:]
	}
	if len(key) > 0 {
		var tail [8]byte
		copy(tail[:], key)
		h = mix64(h ^ binary.BigEndian.Uint64(tail[:]) ^ uint64(len(key)))
	}
	return mix64(h)
}

// hashes derives k bit positions by double hashing (Kirsch-Mitzenmacher).
func (f *Filter) hashes(key []byte) (h1, h2 uint64) {
	return hashBytes(f.seed1, key), hashBytes(f.seed2, key) | 1 // odd stride
}

// Add inserts key.
func (f *Filter) Add(key []byte) {
	h1, h2 := f.hashes(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.count++
}

// Contains reports whether key may have been inserted (false positives
// possible at the configured rate; false negatives never).
func (f *Filter) Contains(key []byte) bool {
	h1, h2 := f.hashes(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// AddIfAbsent inserts key and reports whether it was absent before the
// call — one hashing pass replacing the Contains-then-Add pair on a
// dedup hot path. Bit-for-bit equivalent to Contains followed by Add.
func (f *Filter) AddIfAbsent(key []byte) bool {
	h1, h2 := f.hashes(key)
	absent := false
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		w := &f.bits[pos/64]
		m := uint64(1) << (pos % 64)
		if *w&m == 0 {
			absent = true
			*w |= m
		}
	}
	f.count++
	return absent
}

// AddIfAbsentUint64Pair is AddIfAbsent for 128-bit keys held as two
// words.
func (f *Filter) AddIfAbsentUint64Pair(hi, lo uint64) bool {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], hi)
	binary.BigEndian.PutUint64(b[8:], lo)
	return f.AddIfAbsent(b[:])
}

// AddUint64Pair is a convenience for 128-bit keys held as two words.
func (f *Filter) AddUint64Pair(hi, lo uint64) {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], hi)
	binary.BigEndian.PutUint64(b[8:], lo)
	f.Add(b[:])
}

// ContainsUint64Pair is the query counterpart of AddUint64Pair.
func (f *Filter) ContainsUint64Pair(hi, lo uint64) bool {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], hi)
	binary.BigEndian.PutUint64(b[8:], lo)
	return f.Contains(b[:])
}

// Count returns the number of Add calls (not distinct keys).
func (f *Filter) Count() uint64 { return f.count }

// FillRatio returns the fraction of set bits, a saturation diagnostic.
func (f *Filter) FillRatio() float64 {
	var ones int
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			ones++
		}
	}
	return float64(ones) / float64(f.nbits)
}

// Serialized format: magic "BF" + version 1, then the filter parameters
// and the raw bit words, all big-endian. The header is fixed-size so the
// decoder can bound-check the payload before allocating.
const (
	marshalMagic   = 0x42460001 // "BF" 0x0001
	marshalHdrLen  = 4 + 4 + 8 + 8 + 8 + 8
	maxMarshalBits = uint64(1) << 36 // 8 GiB of filter; beyond this is corruption
)

// MarshaledSize returns the exact byte length Marshal will produce.
func (f *Filter) MarshaledSize() int { return marshalHdrLen + len(f.bits)*8 }

// AppendMarshal appends the serialized filter to dst and returns the
// extended slice.
func (f *Filter) AppendMarshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, marshalMagic)
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.k))
	dst = binary.BigEndian.AppendUint64(dst, f.nbits)
	dst = binary.BigEndian.AppendUint64(dst, f.seed1)
	dst = binary.BigEndian.AppendUint64(dst, f.seed2)
	dst = binary.BigEndian.AppendUint64(dst, f.count)
	for _, w := range f.bits {
		dst = binary.BigEndian.AppendUint64(dst, w)
	}
	return dst
}

// Marshal serializes the filter.
func (f *Filter) Marshal() []byte {
	return f.AppendMarshal(make([]byte, 0, f.MarshaledSize()))
}

// Unmarshal reconstructs a filter serialized by Marshal. Malformed,
// truncated or version-skewed input yields an error, never a panic, and
// never an oversized allocation.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < marshalHdrLen {
		return nil, fmt.Errorf("bloom: truncated header: %d bytes", len(data))
	}
	if magic := binary.BigEndian.Uint32(data[0:4]); magic != marshalMagic {
		return nil, fmt.Errorf("bloom: bad magic/version %#08x", magic)
	}
	k := binary.BigEndian.Uint32(data[4:8])
	nbits := binary.BigEndian.Uint64(data[8:16])
	if k < 1 || k > 64 {
		return nil, fmt.Errorf("bloom: hash count %d out of [1,64]", k)
	}
	if nbits == 0 || nbits%64 != 0 || nbits > maxMarshalBits {
		return nil, fmt.Errorf("bloom: bit count %d invalid", nbits)
	}
	words := int(nbits / 64)
	if got, want := len(data)-marshalHdrLen, words*8; got != want {
		return nil, fmt.Errorf("bloom: payload %d bytes, want %d", got, want)
	}
	f := &Filter{
		bits:  make([]uint64, words),
		nbits: nbits,
		k:     int(k),
		seed1: binary.BigEndian.Uint64(data[16:24]),
		seed2: binary.BigEndian.Uint64(data[24:32]),
		count: binary.BigEndian.Uint64(data[32:40]),
	}
	for i := range f.bits {
		f.bits[i] = binary.BigEndian.Uint64(data[marshalHdrLen+i*8:])
	}
	return f, nil
}
