// Package bloom implements a Bloom filter sized for response
// deduplication at scan scale, as ZMap-family scanners use to suppress
// duplicate replies without storing every responder address.
package bloom

import (
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"math"
)

// Filter is a Bloom filter over 16-byte keys (IPv6 addresses). Not safe
// for concurrent use; the scanner owns one per receive loop.
type Filter struct {
	bits  []uint64
	nbits uint64
	k     int
	seed1 maphash.Seed
	seed2 maphash.Seed
	count uint64 // inserted keys (approximate population)
}

// New creates a filter dimensioned for n expected insertions at the given
// false-positive rate p (0 < p < 1).
func New(n uint64, p float64) (*Filter, error) {
	if n == 0 {
		return nil, fmt.Errorf("bloom: zero capacity")
	}
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("bloom: false-positive rate %v out of (0,1)", p)
	}
	// Optimal parameters: m = -n ln p / (ln 2)^2, k = m/n ln 2.
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return &Filter{
		bits:  make([]uint64, (m+63)/64),
		nbits: (m + 63) / 64 * 64,
		k:     k,
		seed1: maphash.MakeSeed(),
		seed2: maphash.MakeSeed(),
	}, nil
}

// hashes derives k bit positions by double hashing (Kirsch-Mitzenmacher).
func (f *Filter) hashes(key []byte) (h1, h2 uint64) {
	var mh maphash.Hash
	mh.SetSeed(f.seed1)
	mh.Write(key)
	h1 = mh.Sum64()
	mh.SetSeed(f.seed2)
	mh.Write(key)
	h2 = mh.Sum64() | 1 // odd stride
	return h1, h2
}

// Add inserts key.
func (f *Filter) Add(key []byte) {
	h1, h2 := f.hashes(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.count++
}

// Contains reports whether key may have been inserted (false positives
// possible at the configured rate; false negatives never).
func (f *Filter) Contains(key []byte) bool {
	h1, h2 := f.hashes(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// AddUint64Pair is a convenience for 128-bit keys held as two words.
func (f *Filter) AddUint64Pair(hi, lo uint64) {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], hi)
	binary.BigEndian.PutUint64(b[8:], lo)
	f.Add(b[:])
}

// ContainsUint64Pair is the query counterpart of AddUint64Pair.
func (f *Filter) ContainsUint64Pair(hi, lo uint64) bool {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], hi)
	binary.BigEndian.PutUint64(b[8:], lo)
	return f.Contains(b[:])
}

// Count returns the number of Add calls (not distinct keys).
func (f *Filter) Count() uint64 { return f.count }

// FillRatio returns the fraction of set bits, a saturation diagnostic.
func (f *Filter) FillRatio() float64 {
	var ones int
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			ones++
		}
	}
	return float64(ones) / float64(f.nbits)
}
