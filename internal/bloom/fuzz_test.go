package bloom

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzUnmarshal hardens the checkpoint decoder's filter leg: arbitrary
// input must either round-trip exactly or error — never panic, never
// allocate absurdly.
func FuzzUnmarshal(f *testing.F) {
	seedFilter, err := NewSeeded(200, 0.01, 3)
	if err != nil {
		f.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 150; i++ {
		seedFilter.AddUint64Pair(rng.Uint64(), rng.Uint64())
	}
	good := seedFilter.Marshal()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte{0x42, 0x46, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		flt, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Accepted input must be internally consistent: queries work and
		// a re-marshal reproduces the input bit for bit.
		flt.ContainsUint64Pair(1, 2)
		if !bytes.Equal(flt.Marshal(), data) {
			t.Fatalf("accepted input does not round-trip")
		}
	})
}
