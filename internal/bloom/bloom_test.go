package bloom

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0.01); err == nil {
		t.Error("zero capacity accepted")
	}
	for _, p := range []float64{0, 1, -0.5, 2} {
		if _, err := New(100, p); err == nil {
			t.Errorf("rate %v accepted", p)
		}
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f, err := New(10000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	keys := make([][]byte, 10000)
	for i := range keys {
		k := make([]byte, 16)
		binary.BigEndian.PutUint64(k[:8], rng.Uint64())
		binary.BigEndian.PutUint64(k[8:], rng.Uint64())
		keys[i] = k
		f.Add(k)
	}
	for i, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	if f.Count() != 10000 {
		t.Errorf("Count = %d", f.Count())
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n, target = 50000, 0.01
	f, err := New(n, target)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		f.AddUint64Pair(rng.Uint64(), rng.Uint64())
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		// Fresh randoms; collision with inserted keys is negligible.
		if f.ContainsUint64Pair(rng.Uint64(), rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > target*3 {
		t.Errorf("false positive rate %v, target %v", rate, target)
	}
}

func TestFillRatioReasonable(t *testing.T) {
	f, err := New(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if f.FillRatio() != 0 {
		t.Errorf("empty filter fill = %v", f.FillRatio())
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		f.AddUint64Pair(rng.Uint64(), rng.Uint64())
	}
	r := f.FillRatio()
	// At design capacity, fill is about 50%.
	if r < 0.3 || r > 0.7 {
		t.Errorf("fill ratio %v far from 0.5", r)
	}
}

func TestUint64PairMatchesBytes(t *testing.T) {
	f, err := New(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	f.AddUint64Pair(0x0102030405060708, 0x090a0b0c0d0e0f10)
	key := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	if !f.Contains(key) {
		t.Error("byte form of pair key not found")
	}
}

func BenchmarkAdd(b *testing.B) {
	f, err := New(uint64(b.N)+1, 0.001)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddUint64Pair(uint64(i), uint64(i)*2654435761)
	}
}

func BenchmarkContains(b *testing.B) {
	f, err := New(1<<20, 0.001)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1<<20; i++ {
		f.AddUint64Pair(uint64(i), uint64(i)*2654435761)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ContainsUint64Pair(uint64(i), uint64(i))
	}
}

func TestSeededDeterminism(t *testing.T) {
	build := func(seed uint64) *Filter {
		f, err := NewSeeded(1000, 0.01, seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			f.AddUint64Pair(uint64(i), uint64(i)*2654435761)
		}
		return f
	}
	a, b := build(7), build(7)
	for i := 0; i < 2000; i++ {
		if a.ContainsUint64Pair(uint64(i), uint64(i)) != b.ContainsUint64Pair(uint64(i), uint64(i)) {
			t.Fatalf("same-seed filters disagree on key %d", i)
		}
	}
	if !bytesEqual(a.Marshal(), b.Marshal()) {
		t.Error("same-seed filters marshal differently")
	}
	c := build(8)
	if bytesEqual(a.Marshal(), c.Marshal()) {
		t.Error("different seeds produced identical filters")
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMarshalRoundTrip: a decoded filter answers every query exactly as
// the original, and re-marshals to the identical bytes.
func TestMarshalRoundTrip(t *testing.T) {
	f, err := NewSeeded(5000, 0.001, 99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		f.AddUint64Pair(rng.Uint64(), rng.Uint64())
	}
	enc := f.Marshal()
	if len(enc) != f.MarshaledSize() {
		t.Fatalf("marshal %d bytes, MarshaledSize says %d", len(enc), f.MarshaledSize())
	}
	g, err := Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != f.Count() {
		t.Errorf("count %d, want %d", g.Count(), f.Count())
	}
	probe := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		hi, lo := probe.Uint64(), probe.Uint64()
		if !g.ContainsUint64Pair(hi, lo) {
			t.Fatalf("decoded filter lost key %d", i)
		}
	}
	for i := 0; i < 5000; i++ {
		hi, lo := rng.Uint64(), rng.Uint64()
		if f.ContainsUint64Pair(hi, lo) != g.ContainsUint64Pair(hi, lo) {
			t.Fatalf("decoded filter diverges on fresh key %d", i)
		}
	}
	if !bytesEqual(enc, g.Marshal()) {
		t.Error("re-marshal not bit-identical")
	}
}

// TestUnmarshalRejectsMalformed: every corruption class errors cleanly.
func TestUnmarshalRejectsMalformed(t *testing.T) {
	f, err := NewSeeded(100, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.AddUint64Pair(1, 2)
	good := f.Marshal()

	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:8],
		"truncated":   good[:len(good)-1],
		"oversized":   append(append([]byte{}, good...), 0),
		"bad magic":   append([]byte{0xde, 0xad, 0xbe, 0xef}, good[4:]...),
		"version up":  append([]byte{0x42, 0x46, 0x00, 0x03}, good[4:]...),
		"version old": append([]byte{0x42, 0x46, 0x00, 0x01}, good[4:]...),
		"zero hashes": append(append(append([]byte{}, good[:4]...), 0, 0, 0, 0), good[8:]...),
	}
	// Huge bit count must be rejected before any allocation.
	huge := append([]byte{}, good...)
	for i := 8; i < 16; i++ {
		huge[i] = 0xff
	}
	cases["huge nbits"] = huge
	// Bit count not a multiple of 64.
	odd := append([]byte{}, good...)
	odd[15] |= 1
	cases["odd nbits"] = odd

	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s input accepted", name)
		}
	}
}
