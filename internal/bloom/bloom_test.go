package bloom

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0.01); err == nil {
		t.Error("zero capacity accepted")
	}
	for _, p := range []float64{0, 1, -0.5, 2} {
		if _, err := New(100, p); err == nil {
			t.Errorf("rate %v accepted", p)
		}
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f, err := New(10000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	keys := make([][]byte, 10000)
	for i := range keys {
		k := make([]byte, 16)
		binary.BigEndian.PutUint64(k[:8], rng.Uint64())
		binary.BigEndian.PutUint64(k[8:], rng.Uint64())
		keys[i] = k
		f.Add(k)
	}
	for i, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	if f.Count() != 10000 {
		t.Errorf("Count = %d", f.Count())
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n, target = 50000, 0.01
	f, err := New(n, target)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		f.AddUint64Pair(rng.Uint64(), rng.Uint64())
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		// Fresh randoms; collision with inserted keys is negligible.
		if f.ContainsUint64Pair(rng.Uint64(), rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > target*3 {
		t.Errorf("false positive rate %v, target %v", rate, target)
	}
}

func TestFillRatioReasonable(t *testing.T) {
	f, err := New(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if f.FillRatio() != 0 {
		t.Errorf("empty filter fill = %v", f.FillRatio())
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		f.AddUint64Pair(rng.Uint64(), rng.Uint64())
	}
	r := f.FillRatio()
	// At design capacity, fill is about 50%.
	if r < 0.3 || r > 0.7 {
		t.Errorf("fill ratio %v far from 0.5", r)
	}
}

func TestUint64PairMatchesBytes(t *testing.T) {
	f, err := New(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	f.AddUint64Pair(0x0102030405060708, 0x090a0b0c0d0e0f10)
	key := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	if !f.Contains(key) {
		t.Error("byte form of pair key not found")
	}
}

func BenchmarkAdd(b *testing.B) {
	f, err := New(uint64(b.N)+1, 0.001)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddUint64Pair(uint64(i), uint64(i)*2654435761)
	}
}

func BenchmarkContains(b *testing.B) {
	f, err := New(1<<20, 0.001)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1<<20; i++ {
		f.AddUint64Pair(uint64(i), uint64(i)*2654435761)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ContainsUint64Pair(uint64(i), uint64(i))
	}
}
