package uint128

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

var bigMod = new(big.Int).Lsh(big.NewInt(1), 128) // 2^128

func (u Uint128) toBig() *big.Int { return u.Big() }

func fromBigWrap(b *big.Int) Uint128 {
	m := new(big.Int).Mod(b, bigMod)
	u, ok := FromBig(m)
	if !ok {
		panic("fromBigWrap: out of range after mod")
	}
	return u
}

// Generate lets testing/quick produce random Uint128 values.
func (Uint128) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(Uint128{Hi: r.Uint64(), Lo: r.Uint64()})
}

func TestBasicConstants(t *testing.T) {
	if !Zero.IsZero() {
		t.Error("Zero.IsZero() = false")
	}
	if One.IsZero() {
		t.Error("One.IsZero() = true")
	}
	if Max.Add(One) != Zero {
		t.Error("Max+1 != 0")
	}
	if Zero.Sub(One) != Max {
		t.Error("0-1 != Max")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(u Uint128) bool {
		b := u.Bytes()
		return FromBytes(b[:]) == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBigRoundTrip(t *testing.T) {
	f := func(u Uint128) bool {
		v, ok := FromBig(u.Big())
		return ok && v == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromBigRejects(t *testing.T) {
	if _, ok := FromBig(big.NewInt(-1)); ok {
		t.Error("FromBig(-1) accepted")
	}
	big129 := new(big.Int).Lsh(big.NewInt(1), 128)
	if _, ok := FromBig(big129); ok {
		t.Error("FromBig(2^128) accepted")
	}
}

func TestAddMatchesBig(t *testing.T) {
	f := func(u, v Uint128) bool {
		want := fromBigWrap(new(big.Int).Add(u.toBig(), v.toBig()))
		return u.Add(v) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubMatchesBig(t *testing.T) {
	f := func(u, v Uint128) bool {
		want := fromBigWrap(new(big.Int).Sub(u.toBig(), v.toBig()))
		return u.Sub(v) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulMatchesBig(t *testing.T) {
	f := func(u, v Uint128) bool {
		want := fromBigWrap(new(big.Int).Mul(u.toBig(), v.toBig()))
		return u.Mul(v) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulFullMatchesBig(t *testing.T) {
	f := func(u, v Uint128) bool {
		hi, lo := u.MulFull(v)
		got := new(big.Int).Add(new(big.Int).Lsh(hi.toBig(), 128), lo.toBig())
		want := new(big.Int).Mul(u.toBig(), v.toBig())
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivMatchesBig(t *testing.T) {
	f := func(u, v Uint128) bool {
		if v.IsZero() {
			return true
		}
		q, r := u.Div(v)
		wq, wr := new(big.Int).QuoRem(u.toBig(), v.toBig(), new(big.Int))
		return q.toBig().Cmp(wq) == 0 && r.toBig().Cmp(wr) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiv64MatchesBig(t *testing.T) {
	f := func(u Uint128, v uint64) bool {
		if v == 0 {
			return true
		}
		q, r := u.Div64(v)
		wq, wr := new(big.Int).QuoRem(u.toBig(), new(big.Int).SetUint64(v), new(big.Int))
		return q.toBig().Cmp(wq) == 0 && r == wr.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Div by zero did not panic")
		}
	}()
	One.Div(Zero)
}

func TestShiftsMatchBig(t *testing.T) {
	f := func(u Uint128, nRaw uint8) bool {
		n := uint(nRaw) % 140 // include out-of-range shifts
		l := fromBigWrap(new(big.Int).Lsh(u.toBig(), n))
		r := fromBigWrap(new(big.Int).Rsh(u.toBig(), n))
		return u.Lsh(n) == l && u.Rsh(n) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitwiseOps(t *testing.T) {
	f := func(u, v Uint128) bool {
		and := fromBigWrap(new(big.Int).And(u.toBig(), v.toBig()))
		or := fromBigWrap(new(big.Int).Or(u.toBig(), v.toBig()))
		xor := fromBigWrap(new(big.Int).Xor(u.toBig(), v.toBig()))
		return u.And(v) == and && u.Or(v) == or && u.Xor(v) == xor &&
			u.Not().Not() == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitGetSet(t *testing.T) {
	f := func(u Uint128, iRaw uint8) bool {
		i := uint(iRaw) % 128
		if u.SetBit(i, 1).Bit(i) != 1 {
			return false
		}
		if u.SetBit(i, 0).Bit(i) != 0 {
			return false
		}
		// Setting a bit to its current value is the identity.
		return u.SetBit(i, u.Bit(i)) == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountsMatchBig(t *testing.T) {
	f := func(u Uint128) bool {
		b := u.toBig()
		if u.BitLen() != b.BitLen() {
			return false
		}
		ones := 0
		for i := 0; i < b.BitLen(); i++ {
			ones += int(b.Bit(i))
		}
		return u.OnesCount() == ones
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeadingTrailingZeros(t *testing.T) {
	cases := []struct {
		u        Uint128
		lead, tz int
	}{
		{Zero, 128, 128},
		{One, 127, 0},
		{Max, 0, 0},
		{New(1, 0), 63, 64},
		{New(0, 1<<63), 64, 63},
	}
	for _, c := range cases {
		if got := c.u.LeadingZeros(); got != c.lead {
			t.Errorf("LeadingZeros(%s) = %d, want %d", c.u.Hex(), got, c.lead)
		}
		if got := c.u.TrailingZeros(); got != c.tz {
			t.Errorf("TrailingZeros(%s) = %d, want %d", c.u.Hex(), got, c.tz)
		}
	}
}

func TestMulModMatchesBig(t *testing.T) {
	f := func(u, v, m Uint128) bool {
		if m.IsZero() {
			return true
		}
		got := u.MulMod(v, m)
		want := new(big.Int).Mul(u.toBig(), v.toBig())
		want.Mod(want, m.toBig())
		return got.toBig().Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMulMod64FastPath(t *testing.T) {
	f := func(a, b, m uint64) bool {
		if m == 0 {
			return true
		}
		got := From64(a).MulMod(From64(b), From64(m))
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, new(big.Int).SetUint64(m))
		return got.toBig().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddModMatchesBig(t *testing.T) {
	f := func(u, v, m Uint128) bool {
		if m.IsZero() {
			return true
		}
		got := u.AddMod(v, m)
		want := new(big.Int).Add(u.toBig(), v.toBig())
		want.Mod(want, m.toBig())
		return got.toBig().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpModMatchesBig(t *testing.T) {
	f := func(u Uint128, e uint16, m Uint128) bool {
		if m.IsZero() {
			return true
		}
		got := u.ExpMod(From64(uint64(e)), m)
		want := new(big.Int).Exp(u.toBig(), new(big.Int).SetUint64(uint64(e)), m.toBig())
		return got.toBig().Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExpModFermat(t *testing.T) {
	// Fermat's little theorem with a known 64-bit prime: a^(p-1) == 1 mod p.
	const p = 0xffffffffffffffc5 // largest prime < 2^64
	for _, a := range []uint64{2, 3, 12345, 1 << 40} {
		got := From64(a).ExpMod(From64(p-1), From64(p))
		if got != One {
			t.Errorf("a=%d: a^(p-1) mod p = %s, want 1", a, got)
		}
	}
}

func TestStringAndHex(t *testing.T) {
	cases := []struct {
		u   Uint128
		dec string
		hex string
	}{
		{Zero, "0", "00000000000000000000000000000000"},
		{One, "1", "00000000000000000000000000000001"},
		{New(1, 0), "18446744073709551616", "00000000000000010000000000000000"},
		{Max, "340282366920938463463374607431768211455", "ffffffffffffffffffffffffffffffff"},
	}
	for _, c := range cases {
		if got := c.u.String(); got != c.dec {
			t.Errorf("String() = %q, want %q", got, c.dec)
		}
		if got := c.u.Hex(); got != c.hex {
			t.Errorf("Hex() = %q, want %q", got, c.hex)
		}
	}
}

func TestCmpOrdering(t *testing.T) {
	f := func(u, v Uint128) bool {
		c := u.Cmp(v)
		switch {
		case u == v:
			return c == 0
		case u.toBig().Cmp(v.toBig()) < 0:
			return c == -1 && u.Less(v)
		default:
			return c == 1 && !u.Less(v)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
