// Package uint128 implements a 128-bit unsigned integer.
//
// The type is the arithmetic backbone of the repository: IPv6 addresses,
// prefix windows, and the cyclic-group permutation all operate on 128-bit
// quantities. All operations are constant-size (no allocation) except the
// conversions to and from math/big.
package uint128

import (
	"encoding/binary"
	"fmt"
	"math/big"
	"math/bits"
)

// Uint128 is an unsigned 128-bit integer, stored as two 64-bit limbs.
// The zero value is the number zero and is ready to use.
type Uint128 struct {
	Hi uint64 // most-significant 64 bits
	Lo uint64 // least-significant 64 bits
}

// Common constants.
var (
	Zero = Uint128{}
	One  = Uint128{Lo: 1}
	Max  = Uint128{Hi: ^uint64(0), Lo: ^uint64(0)}
)

// New returns the Uint128 with the given high and low limbs.
func New(hi, lo uint64) Uint128 { return Uint128{Hi: hi, Lo: lo} }

// From64 returns v as a Uint128.
func From64(v uint64) Uint128 { return Uint128{Lo: v} }

// FromBytes interprets b as a big-endian 128-bit integer.
// It panics if len(b) != 16.
func FromBytes(b []byte) Uint128 {
	if len(b) != 16 {
		panic(fmt.Sprintf("uint128: FromBytes on %d bytes", len(b)))
	}
	return Uint128{
		Hi: binary.BigEndian.Uint64(b[0:8]),
		Lo: binary.BigEndian.Uint64(b[8:16]),
	}
}

// Bytes returns the big-endian 16-byte representation of u.
func (u Uint128) Bytes() [16]byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], u.Hi)
	binary.BigEndian.PutUint64(b[8:16], u.Lo)
	return b
}

// IsZero reports whether u == 0.
func (u Uint128) IsZero() bool { return u.Hi == 0 && u.Lo == 0 }

// Cmp compares u and v, returning -1 if u < v, 0 if u == v, +1 if u > v.
func (u Uint128) Cmp(v Uint128) int {
	switch {
	case u.Hi < v.Hi:
		return -1
	case u.Hi > v.Hi:
		return 1
	case u.Lo < v.Lo:
		return -1
	case u.Lo > v.Lo:
		return 1
	}
	return 0
}

// Less reports whether u < v.
func (u Uint128) Less(v Uint128) bool { return u.Cmp(v) < 0 }

// Add returns u + v, wrapping on overflow.
func (u Uint128) Add(v Uint128) Uint128 {
	lo, carry := bits.Add64(u.Lo, v.Lo, 0)
	hi, _ := bits.Add64(u.Hi, v.Hi, carry)
	return Uint128{Hi: hi, Lo: lo}
}

// AddCarry returns u + v and the carry out (0 or 1).
func (u Uint128) AddCarry(v Uint128) (Uint128, uint64) {
	lo, carry := bits.Add64(u.Lo, v.Lo, 0)
	hi, carry := bits.Add64(u.Hi, v.Hi, carry)
	return Uint128{Hi: hi, Lo: lo}, carry
}

// Add64 returns u + v, wrapping on overflow.
func (u Uint128) Add64(v uint64) Uint128 {
	lo, carry := bits.Add64(u.Lo, v, 0)
	return Uint128{Hi: u.Hi + carry, Lo: lo}
}

// Sub returns u - v, wrapping on underflow.
func (u Uint128) Sub(v Uint128) Uint128 {
	lo, borrow := bits.Sub64(u.Lo, v.Lo, 0)
	hi, _ := bits.Sub64(u.Hi, v.Hi, borrow)
	return Uint128{Hi: hi, Lo: lo}
}

// Sub64 returns u - v, wrapping on underflow.
func (u Uint128) Sub64(v uint64) Uint128 {
	lo, borrow := bits.Sub64(u.Lo, v, 0)
	return Uint128{Hi: u.Hi - borrow, Lo: lo}
}

// Mul returns the low 128 bits of u * v.
func (u Uint128) Mul(v Uint128) Uint128 {
	hi, lo := bits.Mul64(u.Lo, v.Lo)
	hi += u.Hi*v.Lo + u.Lo*v.Hi
	return Uint128{Hi: hi, Lo: lo}
}

// Mul64 returns the low 128 bits of u * v.
func (u Uint128) Mul64(v uint64) Uint128 {
	hi, lo := bits.Mul64(u.Lo, v)
	hi += u.Hi * v
	return Uint128{Hi: hi, Lo: lo}
}

// MulFull returns the full 256-bit product of u and v as (hi, lo).
func (u Uint128) MulFull(v Uint128) (hi, lo Uint128) {
	// Schoolbook multiplication over 64-bit limbs.
	h00, l00 := bits.Mul64(u.Lo, v.Lo)
	h01, l01 := bits.Mul64(u.Lo, v.Hi)
	h10, l10 := bits.Mul64(u.Hi, v.Lo)
	h11, l11 := bits.Mul64(u.Hi, v.Hi)

	lo.Lo = l00
	m, c1 := bits.Add64(h00, l01, 0)
	m, c2 := bits.Add64(m, l10, 0)
	lo.Hi = m

	h, c3 := bits.Add64(l11, h01, c1)
	h, c4 := bits.Add64(h, h10, c2)
	hi.Lo = h
	hi.Hi = h11 + c3 + c4
	return hi, lo
}

// Div returns (u / v, u % v). It panics if v == 0.
func (u Uint128) Div(v Uint128) (q, r Uint128) {
	if v.IsZero() {
		panic("uint128: division by zero")
	}
	if v.Hi == 0 {
		q, r64 := u.Div64(v.Lo)
		return q, From64(r64)
	}
	// v.Hi != 0: normalize so the divisor's top bit is set, then use a
	// single 128/128 step derived from bits.Div64.
	n := uint(bits.LeadingZeros64(v.Hi))
	v1 := v.Lsh(n)
	u1 := u.Rsh(1)
	tq, _ := bits.Div64(u1.Hi, u1.Lo, v1.Hi)
	tq >>= 63 - n
	if tq != 0 {
		tq--
	}
	q = From64(tq)
	r = u.Sub(v.Mul64(tq))
	if r.Cmp(v) >= 0 {
		q = q.Add64(1)
		r = r.Sub(v)
	}
	return q, r
}

// Div64 returns (u / v, u % v) for a 64-bit divisor. It panics if v == 0.
func (u Uint128) Div64(v uint64) (q Uint128, r uint64) {
	if v == 0 {
		panic("uint128: division by zero")
	}
	if u.Hi < v {
		lo, rem := bits.Div64(u.Hi, u.Lo, v)
		return From64(lo), rem
	}
	hi, rem := bits.Div64(0, u.Hi, v)
	lo, rem := bits.Div64(rem, u.Lo, v)
	return Uint128{Hi: hi, Lo: lo}, rem
}

// Mod returns u % v. It panics if v == 0.
func (u Uint128) Mod(v Uint128) Uint128 {
	_, r := u.Div(v)
	return r
}

// Lsh returns u << n.
func (u Uint128) Lsh(n uint) Uint128 {
	switch {
	case n >= 128:
		return Zero
	case n >= 64:
		return Uint128{Hi: u.Lo << (n - 64)}
	case n == 0:
		return u
	}
	return Uint128{Hi: u.Hi<<n | u.Lo>>(64-n), Lo: u.Lo << n}
}

// Rsh returns u >> n.
func (u Uint128) Rsh(n uint) Uint128 {
	switch {
	case n >= 128:
		return Zero
	case n >= 64:
		return Uint128{Lo: u.Hi >> (n - 64)}
	case n == 0:
		return u
	}
	return Uint128{Hi: u.Hi >> n, Lo: u.Lo>>n | u.Hi<<(64-n)}
}

// And returns u & v.
func (u Uint128) And(v Uint128) Uint128 {
	return Uint128{Hi: u.Hi & v.Hi, Lo: u.Lo & v.Lo}
}

// Or returns u | v.
func (u Uint128) Or(v Uint128) Uint128 {
	return Uint128{Hi: u.Hi | v.Hi, Lo: u.Lo | v.Lo}
}

// Xor returns u ^ v.
func (u Uint128) Xor(v Uint128) Uint128 {
	return Uint128{Hi: u.Hi ^ v.Hi, Lo: u.Lo ^ v.Lo}
}

// Not returns ^u.
func (u Uint128) Not() Uint128 {
	return Uint128{Hi: ^u.Hi, Lo: ^u.Lo}
}

// Bit returns the value (0 or 1) of the i-th bit, where bit 0 is the
// least-significant bit. It panics if i >= 128.
func (u Uint128) Bit(i uint) uint {
	if i >= 128 {
		panic("uint128: Bit index out of range")
	}
	if i >= 64 {
		return uint(u.Hi>>(i-64)) & 1
	}
	return uint(u.Lo>>i) & 1
}

// SetBit returns u with the i-th bit set to b (0 or 1).
// It panics if i >= 128 or b > 1.
func (u Uint128) SetBit(i uint, b uint) Uint128 {
	if i >= 128 || b > 1 {
		panic("uint128: SetBit argument out of range")
	}
	mask := One.Lsh(i)
	if b == 1 {
		return u.Or(mask)
	}
	return u.And(mask.Not())
}

// LeadingZeros returns the number of leading zero bits in u.
func (u Uint128) LeadingZeros() int {
	if u.Hi != 0 {
		return bits.LeadingZeros64(u.Hi)
	}
	return 64 + bits.LeadingZeros64(u.Lo)
}

// TrailingZeros returns the number of trailing zero bits in u.
func (u Uint128) TrailingZeros() int {
	if u.Lo != 0 {
		return bits.TrailingZeros64(u.Lo)
	}
	return 64 + bits.TrailingZeros64(u.Hi)
}

// BitLen returns the minimum number of bits required to represent u.
func (u Uint128) BitLen() int { return 128 - u.LeadingZeros() }

// OnesCount returns the number of one bits in u.
func (u Uint128) OnesCount() int {
	return bits.OnesCount64(u.Hi) + bits.OnesCount64(u.Lo)
}

// Big returns u as a math/big.Int.
func (u Uint128) Big() *big.Int {
	b := u.Bytes()
	return new(big.Int).SetBytes(b[:])
}

// FromBig converts b to a Uint128. It reports ok=false if b is negative or
// does not fit in 128 bits.
func FromBig(b *big.Int) (Uint128, bool) {
	if b.Sign() < 0 || b.BitLen() > 128 {
		return Zero, false
	}
	var buf [16]byte
	b.FillBytes(buf[:])
	return FromBytes(buf[:]), true
}

// String returns the decimal representation of u.
func (u Uint128) String() string {
	if u.Hi == 0 {
		return fmt.Sprintf("%d", u.Lo)
	}
	return u.Big().String()
}

// Hex returns the 32-digit zero-padded hexadecimal representation of u.
func (u Uint128) Hex() string { return fmt.Sprintf("%016x%016x", u.Hi, u.Lo) }

// MulMod returns (u * v) mod m using 256-bit intermediate precision.
// It panics if m == 0.
func (u Uint128) MulMod(v, m Uint128) Uint128 {
	if m.IsZero() {
		panic("uint128: MulMod modulo zero")
	}
	if m.Hi == 0 && u.Hi == 0 && v.Hi == 0 {
		// Fast path: everything fits in 64 bits.
		hi, lo := bits.Mul64(u.Lo, v.Lo)
		_, r := bits.Div64(hi%m.Lo, lo, m.Lo)
		return From64(r)
	}
	hi, lo := u.MulFull(v)
	return mod256(hi, lo, m)
}

// mod256 reduces the 256-bit value hi||lo modulo m by binary long division.
func mod256(hi, lo, m Uint128) Uint128 {
	// Shift-and-subtract over 256 bits. The remainder always fits in 128
	// bits once hi has been consumed bit by bit.
	var r Uint128
	for i := 255; i >= 0; i-- {
		// r = r << 1 | bit(i)
		var bit uint
		if i >= 128 {
			bit = hi.Bit(uint(i - 128))
		} else {
			bit = lo.Bit(uint(i))
		}
		// Detect overflow of r<<1: if the top bit of r is set, r<<1 > Max,
		// and since m <= Max the shifted value is certainly >= m after one
		// subtraction. Handle by subtracting m once using 129-bit logic.
		top := r.Bit(127)
		r = r.Lsh(1)
		if bit == 1 {
			r = r.Or(One)
		}
		if top == 1 {
			// r (129-bit) = 2^128 + r. Subtract m: 2^128 + r - m.
			r = r.Add(m.Not()).Add64(1) // r - m mod 2^128 == 2^128 + r - m
		}
		if r.Cmp(m) >= 0 {
			r = r.Sub(m)
		}
	}
	return r
}

// AddMod returns (u + v) mod m. It panics if m == 0.
func (u Uint128) AddMod(v, m Uint128) Uint128 {
	if m.IsZero() {
		panic("uint128: AddMod modulo zero")
	}
	u = u.Mod(m)
	v = v.Mod(m)
	s, carry := u.AddCarry(v)
	if carry == 1 || s.Cmp(m) >= 0 {
		s = s.Sub(m)
	}
	return s
}

// ExpMod returns u^e mod m by square-and-multiply. It panics if m == 0.
func (u Uint128) ExpMod(e, m Uint128) Uint128 {
	if m.IsZero() {
		panic("uint128: ExpMod modulo zero")
	}
	if m.Cmp(One) == 0 {
		return Zero
	}
	result := One
	base := u.Mod(m)
	for !e.IsZero() {
		if e.Bit(0) == 1 {
			result = result.MulMod(base, m)
		}
		base = base.MulMod(base, m)
		e = e.Rsh(1)
	}
	return result
}
