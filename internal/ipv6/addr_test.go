package ipv6

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/uint128"
)

func randAddr(r *rand.Rand) Addr {
	return AddrFrom128(uint128.New(r.Uint64(), r.Uint64()))
}

// Generate lets testing/quick produce random addresses.
func (Addr) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randAddr(r))
}

func TestStringMatchesNetip(t *testing.T) {
	// The standard library's netip formatting is RFC 5952 compliant;
	// use it as a reference implementation.
	f := func(a Addr) bool {
		b := a.Bytes()
		want := netip.AddrFrom16(b).String()
		return a.String() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStringKnownForms(t *testing.T) {
	cases := []struct{ in, want string }{
		{"::", "::"},
		{"::1", "::1"},
		{"2001:db8::", "2001:db8::"},
		{"2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"},
		{"2001:db8:0:0:1:0:0:1", "2001:db8::1:0:0:1"},
		{"1:0:0:2:0:0:0:3", "1:0:0:2::3"},
		{"fe80:0:0:0:0:0:0:0", "fe80::"},
		{"ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff", "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff"},
		{"0:1:2:3:4:5:6:7", "0:1:2:3:4:5:6:7"},
	}
	for _, c := range cases {
		a, err := ParseAddr(c.in)
		if err != nil {
			t.Errorf("ParseAddr(%q): %v", c.in, err)
			continue
		}
		if got := a.String(); got != c.want {
			t.Errorf("ParseAddr(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(a Addr) bool {
		p, err := ParseAddr(a.String())
		return err == nil && p == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"", ":", ":::", "1:2:3", "1:2:3:4:5:6:7:8:9",
		"12345::", "g::", "1::2::3", ":1::2", "1:2:3:4:5:6:7:",
		"2001:db8::1::", "::0:1:2:3:4:5:6:7",
	}
	for _, s := range bad {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) unexpectedly succeeded", s)
		}
	}
}

func TestSegmentsRoundTrip(t *testing.T) {
	f := func(a Addr) bool {
		return AddrFromSegments(a.Segments()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIIDAndWithIID(t *testing.T) {
	a := MustParseAddr("2001:db8:1234:5678:aaaa:bbbb:cccc:dddd")
	if got := a.IID(); got != 0xaaaabbbbccccdddd {
		t.Errorf("IID() = %x", got)
	}
	b := a.WithIID(0x1)
	if b.String() != "2001:db8:1234:5678::1" {
		t.Errorf("WithIID = %s", b)
	}
	if a.Prefix64().String() != "2001:db8:1234:5678::/64" {
		t.Errorf("Prefix64 = %s", a.Prefix64())
	}
}

func TestAddrOrdering(t *testing.T) {
	a := MustParseAddr("2001:db8::1")
	b := MustParseAddr("2001:db8::2")
	if !a.Less(b) || b.Less(a) || a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("ordering inconsistent")
	}
	if a.Next() != b.WithIID(2) {
		t.Errorf("Next() = %s", a.Next())
	}
}

func TestPrefixBasics(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	if p.Bits() != 32 {
		t.Fatalf("Bits = %d", p.Bits())
	}
	if !p.Contains(MustParseAddr("2001:db8:ffff::1")) {
		t.Error("Contains inside = false")
	}
	if p.Contains(MustParseAddr("2001:db9::")) {
		t.Error("Contains outside = true")
	}
	if got := p.Last().String(); got != "2001:db8:ffff:ffff:ffff:ffff:ffff:ffff" {
		t.Errorf("Last = %s", got)
	}
	// Host bits are masked off at construction.
	q := MustParsePrefix("2001:db8::1/32")
	if q != p {
		t.Errorf("masking failed: %s != %s", q, p)
	}
}

func TestPrefixSubAndIndex(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	sub, err := p.Sub(64, uint128.From64(0x12345678))
	if err != nil {
		t.Fatal(err)
	}
	if sub.String() != "2001:db8:1234:5678::/64" {
		t.Errorf("Sub = %s", sub)
	}
	idx, err := p.SubIndex(sub.Addr(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if idx != uint128.From64(0x12345678) {
		t.Errorf("SubIndex = %s", idx)
	}
	// Out-of-range index.
	if _, err := p.Sub(33, uint128.From64(2)); err == nil {
		t.Error("Sub with out-of-range index succeeded")
	}
	// Invalid lengths.
	if _, err := p.Sub(32, uint128.Zero); err == nil {
		t.Error("Sub with equal length succeeded")
	}
	if _, err := p.Sub(129, uint128.Zero); err == nil {
		t.Error("Sub with length 129 succeeded")
	}
}

func TestPrefixSubIndexInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := MustParsePrefix("2001:db8::/28")
	for i := 0; i < 500; i++ {
		bits := 29 + rng.Intn(100) // 29..128
		n, ok := p.NumSub(bits)
		if !ok {
			t.Fatalf("NumSub(%d) failed", bits)
		}
		idx := uint128.From64(rng.Uint64()).Mod(n)
		sub, err := p.Sub(bits, idx)
		if err != nil {
			t.Fatalf("Sub(%d, %s): %v", bits, idx, err)
		}
		got, err := p.SubIndex(sub.Addr(), bits)
		if err != nil {
			t.Fatalf("SubIndex: %v", err)
		}
		if got != idx {
			t.Fatalf("round trip bits=%d: got %s want %s", bits, got, idx)
		}
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("2001:db8::/32")
	b := MustParsePrefix("2001:db8:1234::/48")
	c := MustParsePrefix("2001:db9::/32")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes do not overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes overlap")
	}
}

func TestWindowParse(t *testing.T) {
	w := MustParseWindow("2001:db8::/32-64")
	if w.Width() != 32 {
		t.Errorf("Width = %d", w.Width())
	}
	sz, ok := w.Size()
	if !ok || sz != uint128.One.Lsh(32) {
		t.Errorf("Size = %s, %v", sz, ok)
	}
	if w.String() != "2001:db8::/32-64" {
		t.Errorf("String = %s", w)
	}
	sub, err := w.Sub(uint128.From64(1))
	if err != nil || sub.String() != "2001:db8:0:1::/64" {
		t.Errorf("Sub(1) = %v, %v", sub, err)
	}
	for _, bad := range []string{"2001:db8::/32", "2001:db8::/32-32", "2001:db8::/32-200", "x/32-64"} {
		if _, err := ParseWindow(bad); err == nil {
			t.Errorf("ParseWindow(%q) succeeded", bad)
		}
	}
}

func TestV4MappedMixedNotation(t *testing.T) {
	a := V4Mapped(0xcb007136) // 203.0.113.54
	if got := a.String(); got != "::ffff:203.0.113.54" {
		t.Errorf("String = %q", got)
	}
	p, err := ParseAddr("::ffff:203.0.113.54")
	if err != nil || p != a {
		t.Errorf("ParseAddr mixed = %v, %v", p, err)
	}
	// netip agrees on the rendering.
	b := a.Bytes()
	if want := netip.AddrFrom16(b).String(); want != a.String() {
		t.Errorf("netip renders %q, we render %q", want, a.String())
	}
	// Mixed notation in a full address.
	full, err := ParseAddr("64:ff9b::192.0.2.33")
	if err != nil {
		t.Fatal(err)
	}
	if full != MustParseAddr("64:ff9b::c000:221") {
		t.Errorf("NAT64 mixed = %s", full)
	}
	// AsV4 round trip.
	v4, ok := a.AsV4()
	if !ok || v4 != 0xcb007136 {
		t.Errorf("AsV4 = %x, %v", v4, ok)
	}
	if _, ok := MustParseAddr("2001:db8::1").AsV4(); ok {
		t.Error("non-mapped address claimed v4")
	}
}

func TestParseMixedNotationRejects(t *testing.T) {
	for _, bad := range []string{
		"::ffff:1.2.3", "::ffff:1.2.3.4.5", "::ffff:256.1.1.1",
		"::ffff:01.2.3.4", "::ffff:1.2.3.x", "1.2.3.4",
	} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) accepted", bad)
		}
	}
}
