// Package ipv6 implements IPv6 addressing for periphery discovery: 128-bit
// addresses, prefixes with arbitrary bit windows, RFC 5952 text formatting,
// EUI-64 interface identifiers, SLAAC-style address construction, and the
// interface-identifier (IID) classification used by the paper's analysis
// (the addr6 tool analogue).
package ipv6

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/uint128"
)

// Addr is a 128-bit IPv6 address. The zero value is the unspecified
// address "::".
type Addr struct {
	u uint128.Uint128
}

// AddrFrom128 returns the address with the given 128-bit value.
func AddrFrom128(u uint128.Uint128) Addr { return Addr{u: u} }

// AddrFromBytes interprets b (16 bytes, network order) as an address.
// It panics if len(b) != 16.
func AddrFromBytes(b []byte) Addr { return Addr{u: uint128.FromBytes(b)} }

// AddrFromSegments builds an address from its eight 16-bit segments.
func AddrFromSegments(s [8]uint16) Addr {
	var hi, lo uint64
	for i := 0; i < 4; i++ {
		hi = hi<<16 | uint64(s[i])
		lo = lo<<16 | uint64(s[i+4])
	}
	return Addr{u: uint128.New(hi, lo)}
}

// Uint128 returns the 128-bit value of a.
func (a Addr) Uint128() uint128.Uint128 { return a.u }

// Bytes returns the 16-byte network-order representation of a.
func (a Addr) Bytes() [16]byte { return a.u.Bytes() }

// Segments returns the eight 16-bit segments of a.
func (a Addr) Segments() [8]uint16 {
	var s [8]uint16
	for i := 0; i < 4; i++ {
		s[3-i] = uint16(a.u.Hi >> (16 * i))
		s[7-i] = uint16(a.u.Lo >> (16 * i))
	}
	return s
}

// IsUnspecified reports whether a is "::".
func (a Addr) IsUnspecified() bool { return a.u.IsZero() }

// IID returns the low 64 bits (the interface identifier under a /64).
func (a Addr) IID() uint64 { return a.u.Lo }

// WithIID returns a with its low 64 bits replaced by iid.
func (a Addr) WithIID(iid uint64) Addr {
	return Addr{u: uint128.New(a.u.Hi, iid)}
}

// Prefix64 returns the /64 prefix containing a.
func (a Addr) Prefix64() Prefix {
	p, _ := NewPrefix(Addr{u: uint128.New(a.u.Hi, 0)}, 64)
	return p
}

// Cmp compares two addresses numerically.
func (a Addr) Cmp(b Addr) int { return a.u.Cmp(b.u) }

// Less reports whether a sorts before b.
func (a Addr) Less(b Addr) bool { return a.u.Less(b.u) }

// Next returns the numerically next address, wrapping at the top.
func (a Addr) Next() Addr { return Addr{u: a.u.Add64(1)} }

// String renders a in RFC 5952 canonical form: lower-case hex, leading
// zeros suppressed, the longest run of two or more zero segments
// (leftmost on a tie) compressed to "::", and IPv4-mapped addresses in
// mixed notation (section 5).
func (a Addr) String() string {
	if v4, ok := a.AsV4(); ok && a.u.Lo>>32 == 0xffff {
		return fmt.Sprintf("::ffff:%d.%d.%d.%d", byte(v4>>24), byte(v4>>16), byte(v4>>8), byte(v4))
	}
	seg := a.Segments()

	// Find the longest run of zero segments with length >= 2.
	bestStart, bestLen := -1, 0
	runStart, runLen := -1, 0
	for i := 0; i < 8; i++ {
		if seg[i] == 0 {
			if runStart < 0 {
				runStart, runLen = i, 0
			}
			runLen++
			if runLen > bestLen {
				bestStart, bestLen = runStart, runLen
			}
		} else {
			runStart, runLen = -1, 0
		}
	}
	if bestLen < 2 {
		bestStart = -1
	}

	var b strings.Builder
	b.Grow(41)
	for i := 0; i < 8; i++ {
		if i == bestStart {
			b.WriteString("::")
			i += bestLen - 1
			continue
		}
		if i > 0 && !(bestStart >= 0 && i == bestStart+bestLen) {
			b.WriteByte(':')
		}
		b.WriteString(strconv.FormatUint(uint64(seg[i]), 16))
	}
	return b.String()
}

// ParseAddr parses an IPv6 address in textual form: the full grammar of
// RFC 4291 section 2.2, including "::" compression and a trailing
// IPv4 dotted-quad (mixed notation).
func ParseAddr(s string) (Addr, error) {
	orig := s
	if s == "" {
		return Addr{}, fmt.Errorf("ipv6: empty address")
	}
	// Mixed notation: rewrite a trailing dotted quad as two hex groups.
	if i := strings.LastIndexByte(s, ':'); i >= 0 && strings.Contains(s[i+1:], ".") {
		v4, err := parseDottedQuad(s[i+1:])
		if err != nil {
			return Addr{}, fmt.Errorf("ipv6: bad IPv4 suffix in %q: %w", orig, err)
		}
		s = fmt.Sprintf("%s:%x:%x", s[:i], v4>>16, v4&0xffff)
		// "::1.2.3.4" became ":" + groups; restore the compression.
		if strings.HasPrefix(s, ":") && !strings.HasPrefix(s, "::") {
			s = ":" + s
		}
	}

	var head, tail []uint16
	compressed := false

	// Handle a leading "::".
	if strings.HasPrefix(s, "::") {
		compressed = true
		s = s[2:]
		if s == "" {
			return Addr{}, nil // "::"
		}
	} else if strings.HasPrefix(s, ":") {
		return Addr{}, fmt.Errorf("ipv6: address %q begins with single colon", orig)
	}

	cur := &head
	if compressed {
		cur = &tail
	}
	for len(s) > 0 {
		i := strings.IndexByte(s, ':')
		var tok string
		if i < 0 {
			tok, s = s, ""
		} else {
			tok, s = s[:i], s[i+1:]
			if tok == "" { // "::" encountered mid-string
				if compressed {
					return Addr{}, fmt.Errorf("ipv6: address %q has multiple \"::\"", orig)
				}
				compressed = true
				cur = &tail
				if s == "" {
					break
				}
				continue
			}
			if s == "" { // trailing single colon
				return Addr{}, fmt.Errorf("ipv6: address %q ends with single colon", orig)
			}
		}
		if len(tok) > 4 {
			return Addr{}, fmt.Errorf("ipv6: segment %q too long in %q", tok, orig)
		}
		v, err := strconv.ParseUint(tok, 16, 16)
		if err != nil {
			return Addr{}, fmt.Errorf("ipv6: bad segment %q in %q", tok, orig)
		}
		*cur = append(*cur, uint16(v))
	}

	n := len(head) + len(tail)
	switch {
	case compressed && n >= 8:
		return Addr{}, fmt.Errorf("ipv6: address %q has too many segments for \"::\"", orig)
	case !compressed && n != 8:
		return Addr{}, fmt.Errorf("ipv6: address %q has %d segments, want 8", orig, n)
	}

	var seg [8]uint16
	copy(seg[:], head)
	copy(seg[8-len(tail):], tail)
	return AddrFromSegments(seg), nil
}

// V4Mapped returns the IPv4-mapped IPv6 address ::ffff:a.b.c.d for the
// 32-bit v4 address. The scanner uses this embedding to treat IPv4
// targets uniformly ("192.168.0.0/20-25" in the paper's Section IV-B).
func V4Mapped(v4 uint32) Addr {
	return AddrFrom128(uint128.New(0, 0xffff_0000_0000|uint64(v4)))
}

// AsV4 extracts the 32-bit address from an IPv4-mapped IPv6 address,
// reporting ok=false for anything outside ::ffff:0:0/96.
func (a Addr) AsV4() (uint32, bool) {
	if a.u.Hi != 0 || a.u.Lo>>32 != 0xffff {
		return 0, false
	}
	return uint32(a.u.Lo), true
}

// MustParseAddr is ParseAddr, panicking on error. For tests and constants.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// parseDottedQuad parses "a.b.c.d" strictly (no leading zeros beyond a
// bare "0", each octet 0-255).
func parseDottedQuad(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("want 4 octets, have %d", len(parts))
	}
	var v uint32
	for _, p := range parts {
		if p == "" || len(p) > 3 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("bad octet %q", p)
		}
		n, err := strconv.Atoi(p)
		if err != nil || n > 255 {
			return 0, fmt.Errorf("bad octet %q", p)
		}
		v = v<<8 | uint32(n)
	}
	return v, nil
}
