package ipv6

import (
	"testing"
	"testing/quick"
)

func TestMACStringParse(t *testing.T) {
	m := MAC{0x00, 0x1a, 0x2b, 0x3c, 0x4d, 0x5e}
	s := m.String()
	if s != "00:1a:2b:3c:4d:5e" {
		t.Errorf("String = %q", s)
	}
	p, err := ParseMAC(s)
	if err != nil || p != m {
		t.Errorf("ParseMAC(%q) = %v, %v", s, p, err)
	}
	for _, bad := range []string{"", "00:11:22:33:44", "00:11:22:33:44:55:66", "zz:11:22:33:44:55"} {
		if _, err := ParseMAC(bad); err == nil {
			t.Errorf("ParseMAC(%q) succeeded", bad)
		}
	}
}

func TestEUI64RoundTrip(t *testing.T) {
	f := func(b [6]byte) bool {
		m := MAC(b)
		iid := m.EUI64IID()
		got, ok := MACFromEUI64(iid)
		return ok && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEUI64KnownVector(t *testing.T) {
	// RFC 4291 appendix A example: 34-56-78-9A-BC-DE ->
	// 3656:78ff:fe9a:bcde (u/l bit flipped: 34^02=36).
	m := MAC{0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde}
	iid := m.EUI64IID()
	want := uint64(0x365678fffe9abcde)
	if iid != want {
		t.Errorf("EUI64IID = %016x, want %016x", iid, want)
	}
}

func TestMACFromEUI64RejectsNonEUI(t *testing.T) {
	if _, ok := MACFromEUI64(0x1234567812345678); ok {
		t.Error("accepted IID without fffe marker")
	}
}

func TestOUI(t *testing.T) {
	m := MAC{0xaa, 0xbb, 0xcc, 0x01, 0x02, 0x03}
	if m.OUI() != 0xaabbcc {
		t.Errorf("OUI = %06x", m.OUI())
	}
}

func TestSLAAC(t *testing.T) {
	p := MustParsePrefix("2001:db8:1234:5678::/64")
	a := SLAAC(p, 0x0011223344556677)
	if a.String() != "2001:db8:1234:5678:11:2233:4455:6677" {
		t.Errorf("SLAAC = %s", a)
	}
}

func TestClassifyKnownAddresses(t *testing.T) {
	cases := []struct {
		addr string
		want IIDClass
	}{
		{"2001:db8::211:22ff:fe33:4455", IIDEUI64},
		{"2001:db8::1", IIDLowByte},
		{"2001:db8::25", IIDLowByte},
		{"2001:db8::ffff", IIDLowByte},
		{"2001:db8::c0a8:101", IIDEmbedIPv4},    // 192.168.1.1 in low 32 bits
		{"2001:db8::192:168:1:1", IIDEmbedIPv4}, // octet-per-group
		{"2001:db8::abab:abab:ab12:ab34", IIDBytePattern},
		{"2001:db8::abcd:abcd:abcd:abcd", IIDBytePattern},
		{"2001:db8::9f3c:7a21:e0d4:5b16", IIDRandomized},
	}
	for _, c := range cases {
		a := MustParseAddr(c.addr)
		if got := Classify(a); got != c.want {
			t.Errorf("Classify(%s) = %s, want %s", c.addr, got, c.want)
		}
	}
}

func TestClassifyZeroIID(t *testing.T) {
	// An all-zero IID (the subnet-router anycast address) is neither
	// low-byte nor embedded IPv4; it lands in byte-pattern or randomized.
	a := MustParseAddr("2001:db8::")
	got := Classify(a)
	if got == IIDLowByte || got == IIDEmbedIPv4 || got == IIDEUI64 {
		t.Errorf("Classify(zero IID) = %s", got)
	}
}

func TestGeneratorProducesDeclaredClass(t *testing.T) {
	g := NewIIDGenerator(42)
	base := MustParsePrefix("2001:db8:1:2::/64")
	classes := []IIDClass{IIDEUI64, IIDLowByte, IIDEmbedIPv4, IIDBytePattern, IIDRandomized}
	for _, class := range classes {
		for i := 0; i < 200; i++ {
			iid, mac := g.Generate(class, 0x001a2b)
			a := SLAAC(base, iid)
			if got := Classify(a); got != class {
				t.Fatalf("Generate(%s) produced %016x classified as %s", class, iid, got)
			}
			if class == IIDEUI64 {
				if mac.OUI() != 0x001a2b {
					t.Fatalf("EUI-64 MAC OUI = %06x", mac.OUI())
				}
				rec, ok := MACFromEUI64(iid)
				if !ok || rec != mac {
					t.Fatalf("MAC round trip failed: %v %v", rec, ok)
				}
			}
		}
	}
}

func TestIIDClassString(t *testing.T) {
	for c, want := range map[IIDClass]string{
		IIDEUI64: "EUI-64", IIDLowByte: "Low-byte", IIDEmbedIPv4: "Embed-IPv4",
		IIDBytePattern: "Byte-pattern", IIDRandomized: "Randomized",
		IIDClass(0): "Unknown",
	} {
		if c.String() != want {
			t.Errorf("String(%d) = %q, want %q", c, c.String(), want)
		}
	}
}
