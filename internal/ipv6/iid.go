package ipv6

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// MAC is a 48-bit IEEE 802 hardware address.
type MAC [6]byte

// String renders m in canonical colon-separated lower-case hex form.
func (m MAC) String() string {
	var b strings.Builder
	b.Grow(17)
	for i, o := range m {
		if i > 0 {
			b.WriteByte(':')
		}
		if o < 0x10 {
			b.WriteByte('0')
		}
		b.WriteString(strconv.FormatUint(uint64(o), 16))
	}
	return b.String()
}

// ParseMAC parses a colon-separated 48-bit hardware address.
func ParseMAC(s string) (MAC, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return MAC{}, fmt.Errorf("ipv6: MAC %q must have 6 octets", s)
	}
	var m MAC
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return MAC{}, fmt.Errorf("ipv6: bad MAC octet %q in %q", p, s)
		}
		m[i] = byte(v)
	}
	return m, nil
}

// OUI returns the 24-bit organizationally unique identifier of m.
func (m MAC) OUI() uint32 {
	return uint32(m[0])<<16 | uint32(m[1])<<8 | uint32(m[2])
}

// EUI64IID converts m to the modified EUI-64 interface identifier used by
// SLAAC (RFC 4291 appendix A): insert fffe between the OUI and the NIC
// portion and flip the universal/local bit.
func (m MAC) EUI64IID() uint64 {
	return uint64(m[0]^0x02)<<56 | uint64(m[1])<<48 | uint64(m[2])<<40 |
		0xff<<32 | 0xfe<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

// MACFromEUI64 recovers the embedded MAC address from an EUI-64 IID.
// ok is false if the IID does not contain the fffe marker.
func MACFromEUI64(iid uint64) (MAC, bool) {
	if (iid>>24)&0xffff != 0xfffe {
		return MAC{}, false
	}
	return MAC{
		byte(iid>>56) ^ 0x02,
		byte(iid >> 48),
		byte(iid >> 40),
		byte(iid >> 16),
		byte(iid >> 8),
		byte(iid),
	}, true
}

// SLAAC composes the address prefix64 | iid, the stateless
// autoconfiguration step (RFC 4862). prefix64 must be a /64 or shorter;
// only its top 64 bits are used.
func SLAAC(prefix64 Prefix, iid uint64) Addr {
	return AddrFrom128(prefix64.Addr().u).WithIID(iid)
}

// IIDClass is the interface-identifier category assigned by Classify,
// matching the taxonomy of the SI6 addr6 tool used in the paper's
// Tables III, V and X.
type IIDClass int

// IID classes, in the order the paper's tables list them.
const (
	IIDEUI64       IIDClass = iota + 1 // embedded ff:fe EUI-64, MAC recoverable
	IIDLowByte                         // run of zeros then a small trailing value
	IIDEmbedIPv4                       // an IPv4 address embedded in the IID
	IIDBytePattern                     // discernible repeating byte pattern
	IIDRandomized                      // none of the above (privacy/opaque IIDs)
)

// String returns the table label for the class.
func (c IIDClass) String() string {
	switch c {
	case IIDEUI64:
		return "EUI-64"
	case IIDLowByte:
		return "Low-byte"
	case IIDEmbedIPv4:
		return "Embed-IPv4"
	case IIDBytePattern:
		return "Byte-pattern"
	case IIDRandomized:
		return "Randomized"
	default:
		return "Unknown"
	}
}

// Classify assigns a to one IID class using addr6-like heuristics over the
// low 64 bits. Order matters: EUI-64 is checked first (the marker is
// unambiguous), then low-byte, embedded IPv4, byte patterns, and finally
// the randomized catch-all.
func Classify(a Addr) IIDClass {
	iid := a.IID()
	if _, ok := MACFromEUI64(iid); ok {
		return IIDEUI64
	}
	if isLowByte(iid) {
		return IIDLowByte
	}
	if isEmbedIPv4(iid) {
		return IIDEmbedIPv4
	}
	if isBytePattern(iid) {
		return IIDBytePattern
	}
	return IIDRandomized
}

// isLowByte: the IID is a run of zeroes followed only by a low number —
// addr6 accepts up to the low two bytes being non-zero with the rest zero.
func isLowByte(iid uint64) bool {
	return iid != 0 && iid <= 0xffff
}

// isEmbedIPv4: the IID encodes an IPv4 dotted quad either in the low 32
// bits with the high 32 zero (e.g. ::c0a8:0101) or one octet per 16-bit
// segment (e.g. ::192:168:1:1 where each group <= 255).
func isEmbedIPv4(iid uint64) bool {
	if iid == 0 {
		return false
	}
	if iid>>32 == 0 {
		// Low 32 bits look like a public-ish dotted quad: require each
		// octet pattern to be plausible (first octet non-zero).
		if byte(iid>>24) != 0 && iid > 0xffff {
			return true
		}
		return false
	}
	// One IPv4 octet per 16-bit group, written so the hex digits read as
	// the decimal octet (e.g. "::192:168:1:1" has hex group 0x192).
	for shift := 0; shift < 64; shift += 16 {
		if _, ok := hexAsDecimalOctet(uint16(iid >> shift)); !ok {
			return false
		}
	}
	first, _ := hexAsDecimalOctet(uint16(iid >> 48))
	return first != 0
}

// hexAsDecimalOctet interprets the hex digits of g as a decimal number and
// reports whether they form a valid IPv4 octet (0-255).
func hexAsDecimalOctet(g uint16) (int, bool) {
	if g > 0x999 {
		return 0, false
	}
	d2, d1, d0 := int(g>>8)&0xf, int(g>>4)&0xf, int(g)&0xf
	if d2 > 9 || d1 > 9 || d0 > 9 {
		return 0, false
	}
	v := d2*100 + d1*10 + d0
	return v, v <= 255
}

// isBytePattern: some byte repeats across at least half of the IID bytes,
// or the IID consists of a repeated 16-bit group — a discernible pattern.
func isBytePattern(iid uint64) bool {
	var bs [8]byte
	for i := 0; i < 8; i++ {
		bs[7-i] = byte(iid >> (8 * i))
	}
	var counts [256]int
	for _, b := range bs {
		counts[b]++
	}
	for v, n := range counts {
		if v == 0 {
			continue // zeros alone don't make a pattern (that's low-byte territory)
		}
		if n >= 4 {
			return true
		}
	}
	// Repeated 16-bit group, e.g. abcd:abcd:abcd:abcd.
	g0 := iid >> 48
	if g0 != 0 &&
		(iid>>32)&0xffff == g0 && (iid>>16)&0xffff == g0 && iid&0xffff == g0 {
		return true
	}
	return false
}

// IIDGenerator produces interface identifiers in a chosen style; the
// topology generator uses it to populate simulated peripheries with the
// IID mix the paper observes.
type IIDGenerator struct {
	rng *rand.Rand
}

// NewIIDGenerator returns a generator seeded deterministically.
func NewIIDGenerator(seed int64) *IIDGenerator {
	return &IIDGenerator{rng: rand.New(rand.NewSource(seed))}
}

// EUI64 returns an EUI-64 IID embedding a MAC with the given OUI.
func (g *IIDGenerator) EUI64(oui uint32) (uint64, MAC) {
	m := MAC{byte(oui >> 16), byte(oui >> 8), byte(oui)}
	m[3] = byte(g.rng.Intn(256))
	m[4] = byte(g.rng.Intn(256))
	m[5] = byte(g.rng.Intn(256))
	return m.EUI64IID(), m
}

// LowByte returns a low-byte IID in [1, 0xffff].
func (g *IIDGenerator) LowByte() uint64 {
	return uint64(1 + g.rng.Intn(0xffff))
}

// EmbedIPv4 returns an IID embedding a synthetic IPv4 address in the low
// 32 bits.
func (g *IIDGenerator) EmbedIPv4() uint64 {
	o1 := 1 + g.rng.Intn(223)
	v4 := uint64(o1)<<24 | uint64(g.rng.Intn(1<<24))
	if v4 <= 0xffff { // avoid colliding with the low-byte class
		v4 |= 0x01000000
	}
	return v4
}

// BytePattern returns an IID with one byte repeated across at least half
// the positions.
func (g *IIDGenerator) BytePattern() uint64 {
	b := uint64(1 + g.rng.Intn(255))
	iid := b<<56 | b<<40 | b<<24 | b<<8
	iid |= uint64(g.rng.Intn(256))<<48 | uint64(g.rng.Intn(256))<<16
	return iid
}

// Randomized returns an opaque random IID that does not fall into the
// other classes (regenerating on the rare collision).
func (g *IIDGenerator) Randomized() uint64 {
	for {
		iid := g.rng.Uint64()
		a := AddrFrom128(Addr{}.u).WithIID(iid)
		if Classify(a) == IIDRandomized {
			return iid
		}
	}
}

// Generate returns an IID of the requested class and, for EUI-64, the
// embedded MAC (zero otherwise). oui is only used for IIDEUI64.
func (g *IIDGenerator) Generate(class IIDClass, oui uint32) (uint64, MAC) {
	switch class {
	case IIDEUI64:
		return g.EUI64(oui)
	case IIDLowByte:
		return g.LowByte(), MAC{}
	case IIDEmbedIPv4:
		return g.EmbedIPv4(), MAC{}
	case IIDBytePattern:
		return g.BytePattern(), MAC{}
	default:
		return g.Randomized(), MAC{}
	}
}
