package ipv6

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/uint128"
)

// Prefix is an IPv6 prefix: an address plus a mask length in [0,128].
// The address is always stored in masked (canonical) form.
type Prefix struct {
	addr Addr
	bits int
}

// NewPrefix returns the prefix addr/bits with the host bits zeroed.
func NewPrefix(addr Addr, bits int) (Prefix, error) {
	if bits < 0 || bits > 128 {
		return Prefix{}, fmt.Errorf("ipv6: prefix length %d out of range", bits)
	}
	return Prefix{addr: AddrFrom128(maskBits(addr.u, bits)), bits: bits}, nil
}

// MustPrefix is NewPrefix, panicking on error.
func MustPrefix(addr Addr, bits int) Prefix {
	p, err := NewPrefix(addr, bits)
	if err != nil {
		panic(err)
	}
	return p
}

func maskBits(u uint128.Uint128, bits int) uint128.Uint128 {
	if bits >= 128 {
		return u
	}
	mask := uint128.Max.Lsh(uint(128 - bits))
	return u.And(mask)
}

// Addr returns the (masked) base address of p.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length of p.
func (p Prefix) Bits() int { return p.bits }

// Contains reports whether a is within p.
func (p Prefix) Contains(a Addr) bool {
	return maskBits(a.u, p.bits) == p.addr.u
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// First returns the numerically lowest address in p.
func (p Prefix) First() Addr { return p.addr }

// Last returns the numerically highest address in p.
func (p Prefix) Last() Addr {
	if p.bits >= 128 {
		return p.addr
	}
	host := uint128.Max.Rsh(uint(p.bits))
	return AddrFrom128(p.addr.u.Or(host))
}

// Sub returns the i-th sub-prefix of length newBits within p, counting in
// address order from zero. It errors if newBits is not in (p.bits, 128]
// or i is out of range for the 2^(newBits-p.bits) sub-prefixes.
func (p Prefix) Sub(newBits int, i uint128.Uint128) (Prefix, error) {
	if newBits <= p.bits || newBits > 128 {
		return Prefix{}, fmt.Errorf("ipv6: sub-prefix length %d invalid for /%d", newBits, p.bits)
	}
	width := uint(newBits - p.bits)
	if width < 128 {
		limit := uint128.One.Lsh(width)
		if i.Cmp(limit) >= 0 {
			return Prefix{}, fmt.Errorf("ipv6: sub-prefix index %s out of range for %d-bit window", i, width)
		}
	}
	base := p.addr.u.Or(i.Lsh(uint(128 - newBits)))
	return NewPrefix(AddrFrom128(base), newBits)
}

// SubIndex returns the index of a's enclosing newBits-length sub-prefix
// within p, i.e. the inverse of Sub for addresses contained in p.
func (p Prefix) SubIndex(a Addr, newBits int) (uint128.Uint128, error) {
	if !p.Contains(a) {
		return uint128.Zero, fmt.Errorf("ipv6: %s not in %s", a, p)
	}
	if newBits <= p.bits || newBits > 128 {
		return uint128.Zero, fmt.Errorf("ipv6: sub-prefix length %d invalid for /%d", newBits, p.bits)
	}
	shifted := a.u.Rsh(uint(128 - newBits))
	width := uint(newBits - p.bits)
	if width >= 128 {
		return shifted, nil
	}
	mask := uint128.One.Lsh(width).Sub64(1)
	return shifted.And(mask), nil
}

// SubIndexIn is SubIndex without error construction, for per-packet
// lookup paths where misses are routine: ok is false when a is outside
// p or newBits is invalid for the prefix.
func (p Prefix) SubIndexIn(a Addr, newBits int) (uint128.Uint128, bool) {
	if newBits <= p.bits || newBits > 128 || !p.Contains(a) {
		return uint128.Zero, false
	}
	shifted := a.u.Rsh(uint(128 - newBits))
	width := uint(newBits - p.bits)
	if width >= 128 {
		return shifted, true
	}
	mask := uint128.One.Lsh(width).Sub64(1)
	return shifted.And(mask), true
}

// NumSub returns the number of newBits-length sub-prefixes of p, or
// (Zero, false) if the count does not fit in 128 bits (p.bits==0,
// newBits==128... actually 2^128 overflows only when width==128).
func (p Prefix) NumSub(newBits int) (uint128.Uint128, bool) {
	if newBits <= p.bits || newBits > 128 {
		return uint128.Zero, false
	}
	width := uint(newBits - p.bits)
	if width >= 128 {
		return uint128.Zero, false
	}
	return uint128.One.Lsh(width), true
}

// String renders p as "addr/bits".
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(p.bits)
}

// ParsePrefix parses "addr/bits". Host bits are zeroed.
func ParsePrefix(s string) (Prefix, error) {
	i := strings.LastIndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("ipv6: prefix %q missing '/'", s)
	}
	a, err := ParseAddr(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return Prefix{}, fmt.Errorf("ipv6: bad prefix length in %q", s)
	}
	return NewPrefix(a, bits)
}

// MustParsePrefix is ParsePrefix, panicking on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Window is a scan window over a prefix: the bit positions (from, to],
// paper notation "2001:db8::/32-64" meaning iterate all /to sub-prefixes
// of the /from prefix.
type Window struct {
	Base Prefix // the enclosing block; Base.Bits() == From
	To   int    // sub-prefix length iterated over
}

// NewWindow validates and builds a scan window.
func NewWindow(base Prefix, to int) (Window, error) {
	if to <= base.Bits() || to > 128 {
		return Window{}, fmt.Errorf("ipv6: window /%d-%d invalid", base.Bits(), to)
	}
	return Window{Base: base, To: to}, nil
}

// ParseWindow parses "addr/from-to" notation, e.g. "2001:db8::/32-64".
func ParseWindow(s string) (Window, error) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return Window{}, fmt.Errorf("ipv6: window %q missing '-'", s)
	}
	p, err := ParsePrefix(s[:i])
	if err != nil {
		return Window{}, err
	}
	to, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return Window{}, fmt.Errorf("ipv6: bad window upper bound in %q", s)
	}
	return NewWindow(p, to)
}

// MustParseWindow is ParseWindow, panicking on error.
func MustParseWindow(s string) Window {
	w, err := ParseWindow(s)
	if err != nil {
		panic(err)
	}
	return w
}

// Width returns the number of iterated bits (To - Base.Bits()).
func (w Window) Width() int { return w.To - w.Base.Bits() }

// Size returns the number of sub-prefixes in the window (2^Width), or
// false if it does not fit in 128 bits.
func (w Window) Size() (uint128.Uint128, bool) { return w.Base.NumSub(w.To) }

// Sub returns the i-th sub-prefix of the window.
func (w Window) Sub(i uint128.Uint128) (Prefix, error) { return w.Base.Sub(w.To, i) }

// String renders w in "addr/from-to" notation.
func (w Window) String() string {
	return w.Base.String() + "-" + strconv.Itoa(w.To)
}
