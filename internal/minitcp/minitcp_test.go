package minitcp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

var (
	clientAddr = ipv6.MustParseAddr("2001:beef::100")
	serverAddr = ipv6.MustParseAddr("2001:db8::1")
)

// echoService responds with a transformed request.
type echoService struct {
	banner string
	prefix string
}

func (s echoService) Banner() []byte {
	if s.banner == "" {
		return nil
	}
	return []byte(s.banner)
}

func (s echoService) Respond(req []byte) []byte {
	if s.prefix == "" {
		return nil
	}
	return append([]byte(s.prefix), req...)
}

// loopConn wires the client directly to a Server, emulating the
// simulator's lock-step delivery.
type loopConn struct {
	srv *Server
	buf [][]byte
}

func (c *loopConn) Send(pkt []byte) error {
	s, err := wire.ParsePacket(pkt)
	if err != nil || s.TCP == nil {
		return err
	}
	replies := c.srv.HandleSegment(s.IP.Dst, s.IP.Src, *s.TCP, s.Payload)
	c.buf = append(c.buf, replies...)
	return nil
}

func (c *loopConn) Recv() [][]byte {
	out := c.buf
	c.buf = nil
	return out
}

func newConn(svc Service, port uint16) *loopConn {
	srv := NewServer([]byte("test-key"))
	if svc != nil {
		srv.Register(port, svc)
	}
	return &loopConn{srv: srv}
}

func TestRequestResponse(t *testing.T) {
	c := newConn(echoService{prefix: "RESP:"}, 80)
	res, err := Exchange(c, clientAddr, serverAddr, 40000, 80, []byte("GET /"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Open {
		t.Fatal("port reported closed")
	}
	if string(res.Data) != "RESP:GET /" {
		t.Errorf("data = %q", res.Data)
	}
	if res.Banner != nil {
		t.Errorf("unexpected banner %q", res.Banner)
	}
}

func TestBannerProtocol(t *testing.T) {
	c := newConn(echoService{banner: "SSH-2.0-dropbear_0.46\r\n"}, 22)
	res, err := Exchange(c, clientAddr, serverAddr, 40001, 22, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Open || !strings.HasPrefix(string(res.Banner), "SSH-2.0-dropbear") {
		t.Errorf("res = %+v", res)
	}
}

func TestBannerThenRequest(t *testing.T) {
	c := newConn(echoService{banner: "220 ftp ready\r\n", prefix: "331 "}, 21)
	res, err := Exchange(c, clientAddr, serverAddr, 40002, 21, []byte("USER anonymous\r\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Banner) != "220 ftp ready\r\n" {
		t.Errorf("banner = %q", res.Banner)
	}
	if string(res.Data) != "331 USER anonymous\r\n" {
		t.Errorf("data = %q", res.Data)
	}
}

func TestClosedPortGetsRST(t *testing.T) {
	c := newConn(echoService{prefix: "x"}, 80)
	res, err := Exchange(c, clientAddr, serverAddr, 40003, 8080, []byte("hi"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Open {
		t.Error("closed port reported open")
	}
}

func TestNoServicesSilence(t *testing.T) {
	// A conn that drops everything: filtered port.
	drop := &dropConn{}
	res, err := Exchange(drop, clientAddr, serverAddr, 40004, 80, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Open {
		t.Error("filtered port reported open")
	}
}

type dropConn struct{}

func (dropConn) Send([]byte) error { return nil }
func (dropConn) Recv() [][]byte    { return nil }

func TestServerIgnoresForeignAck(t *testing.T) {
	srv := NewServer([]byte("k"))
	srv.Register(80, echoService{prefix: "R"})
	// A data segment with a bogus ack (not matching the cookie) must be
	// ignored, not answered.
	seg := wire.TCPHeader{SrcPort: 1234, DstPort: 80, Seq: 55, Ack: 0xdeadbeef, Flags: wire.TCPAck | wire.TCPPsh}
	replies := srv.HandleSegment(serverAddr, clientAddr, seg, []byte("req"))
	if len(replies) != 0 {
		t.Errorf("got %d replies to forged segment", len(replies))
	}
}

func TestServerRSTNotAnswered(t *testing.T) {
	srv := NewServer([]byte("k"))
	srv.Register(80, echoService{prefix: "R"})
	seg := wire.TCPHeader{SrcPort: 1234, DstPort: 80, Seq: 1, Flags: wire.TCPRst}
	if replies := srv.HandleSegment(serverAddr, clientAddr, seg, nil); len(replies) != 0 {
		t.Errorf("server answered a RST with %d packets", len(replies))
	}
	// RST to a closed port is also not answered.
	seg.DstPort = 9999
	if replies := srv.HandleSegment(serverAddr, clientAddr, seg, nil); len(replies) != 0 {
		t.Error("server answered a RST to a closed port")
	}
}

func TestSynCookieDeterministic(t *testing.T) {
	srv := NewServer([]byte("k"))
	a := srv.isn(serverAddr, clientAddr, 80, 40000)
	b := srv.isn(serverAddr, clientAddr, 80, 40000)
	if a != b {
		t.Error("ISN not deterministic")
	}
	if srv.isn(serverAddr, clientAddr, 80, 40001) == a {
		t.Error("ISN ignores ports")
	}
}

func TestEmptyResponseClosesWithFin(t *testing.T) {
	c := newConn(echoService{}, 23)
	res, err := Exchange(c, clientAddr, serverAddr, 40005, 23, []byte("req"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Open {
		t.Error("open port reported closed")
	}
	if len(res.Data) != 0 {
		t.Errorf("data = %q", res.Data)
	}
}

func TestPorts(t *testing.T) {
	srv := NewServer([]byte("k"))
	srv.Register(80, echoService{})
	srv.Register(22, echoService{})
	ports := srv.Ports()
	if len(ports) != 2 {
		t.Errorf("ports = %v", ports)
	}
}

func TestLargeResponseSingleSegment(t *testing.T) {
	big := bytes.Repeat([]byte("A"), 4000)
	c := newConn(echoService{prefix: string(big)}, 8080)
	res, err := Exchange(c, clientAddr, serverAddr, 40006, 8080, []byte("!"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != 4001 {
		t.Errorf("data length = %d", len(res.Data))
	}
}
