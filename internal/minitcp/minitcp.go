// Package minitcp implements the minimal TCP machinery the measurement
// needs: a stateless banner/request-response server embedded in simulated
// periphery devices, and a lock-step client used by the application-layer
// prober. It is deliberately not a full TCP: no retransmission, no
// windows, no reassembly — one request segment, one response segment —
// which matches what a banner-grab scanner actually exercises.
//
// The server holds no per-connection state. Its initial sequence number
// is a keyed hash of the 4-tuple (a SYN-cookie), so any segment can be
// validated against the tuple alone. This mirrors how ZMap-family tools
// scan statelessly.
package minitcp

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// Service is one TCP service on a device.
type Service interface {
	// Banner is sent unprompted when the connection is established
	// (FTP/SSH/TELNET-style greetings); nil for request-first protocols.
	Banner() []byte
	// Respond handles one client request and returns the response (nil
	// closes without data).
	Respond(req []byte) []byte
}

// Server dispatches segments for one device to its per-port services.
type Server struct {
	key      []byte
	services map[uint16]Service
}

// NewServer creates a server whose SYN-cookie key is derived from seed.
func NewServer(seed []byte) *Server {
	return &Server{key: append([]byte(nil), seed...), services: make(map[uint16]Service)}
}

// Register binds svc to port, replacing any previous binding.
func (s *Server) Register(port uint16, svc Service) { s.services[port] = svc }

// Ports returns the open ports (order unspecified).
func (s *Server) Ports() []uint16 {
	out := make([]uint16, 0, len(s.services))
	for p := range s.services {
		out = append(out, p)
	}
	return out
}

// isn computes the SYN-cookie initial sequence number for a 4-tuple.
func (s *Server) isn(self, peer ipv6.Addr, selfPort, peerPort uint16) uint32 {
	mac := hmac.New(sha256.New, s.key)
	a, b := self.Bytes(), peer.Bytes()
	mac.Write(a[:])
	mac.Write(b[:])
	var pb [4]byte
	binary.BigEndian.PutUint16(pb[:2], selfPort)
	binary.BigEndian.PutUint16(pb[2:], peerPort)
	mac.Write(pb[:])
	return binary.BigEndian.Uint32(mac.Sum(nil)[:4])
}

// HandleSegment processes one TCP segment addressed to self and returns
// raw reply packets. hopLimit is used for replies.
func (s *Server) HandleSegment(self, peer ipv6.Addr, seg wire.TCPHeader, payload []byte) [][]byte {
	svc, open := s.services[seg.DstPort]
	reply := func(t wire.TCPHeader, data []byte) [][]byte {
		pkt, err := wire.BuildTCP(self, peer, 64, t, data)
		if err != nil {
			return nil
		}
		return [][]byte{pkt}
	}

	if seg.Flags&wire.TCPRst != 0 {
		return nil // never answer a reset
	}

	if !open {
		// Closed port: RST per RFC 9293.
		rst := wire.TCPHeader{
			SrcPort: seg.DstPort, DstPort: seg.SrcPort,
			Seq: 0, Ack: seg.Seq + segLen(seg, payload),
			Flags: wire.TCPRst | wire.TCPAck,
		}
		return reply(rst, nil)
	}

	isn := s.isn(self, peer, seg.DstPort, seg.SrcPort)

	switch {
	case seg.Flags&wire.TCPSyn != 0 && seg.Flags&wire.TCPAck == 0:
		// SYN -> SYN/ACK with cookie ISN.
		return reply(wire.TCPHeader{
			SrcPort: seg.DstPort, DstPort: seg.SrcPort,
			Seq: isn, Ack: seg.Seq + 1,
			Flags:  wire.TCPSyn | wire.TCPAck,
			Window: 65535,
		}, nil)

	case seg.Flags&wire.TCPAck != 0 && len(payload) == 0 && seg.Ack == isn+1:
		// Final ACK of the handshake: emit the banner, if any.
		banner := svc.Banner()
		if banner == nil {
			return nil
		}
		return reply(wire.TCPHeader{
			SrcPort: seg.DstPort, DstPort: seg.SrcPort,
			Seq: isn + 1, Ack: seg.Seq,
			Flags:  wire.TCPPsh | wire.TCPAck,
			Window: 65535,
		}, banner)

	case seg.Flags&wire.TCPAck != 0 && len(payload) > 0:
		// A request segment. Valid acks: ISN+1 (no banner consumed) or
		// ISN+1+len(banner).
		bannerLen := uint32(0)
		if b := svc.Banner(); b != nil {
			bannerLen = uint32(len(b))
		}
		if seg.Ack != isn+1 && seg.Ack != isn+1+bannerLen {
			return nil // not our connection
		}
		resp := svc.Respond(payload)
		t := wire.TCPHeader{
			SrcPort: seg.DstPort, DstPort: seg.SrcPort,
			Seq: seg.Ack, Ack: seg.Seq + uint32(len(payload)),
			Flags:  wire.TCPPsh | wire.TCPAck | wire.TCPFin,
			Window: 65535,
		}
		if resp == nil {
			t.Flags = wire.TCPFin | wire.TCPAck
		}
		return reply(t, resp)

	case seg.Flags&wire.TCPFin != 0:
		// Client close: ack it.
		return reply(wire.TCPHeader{
			SrcPort: seg.DstPort, DstPort: seg.SrcPort,
			Seq: seg.Ack, Ack: seg.Seq + 1,
			Flags: wire.TCPAck,
		}, nil)
	}
	return nil
}

// segLen is the sequence space consumed by a segment.
func segLen(seg wire.TCPHeader, payload []byte) uint32 {
	n := uint32(len(payload))
	if seg.Flags&wire.TCPSyn != 0 {
		n++
	}
	if seg.Flags&wire.TCPFin != 0 {
		n++
	}
	return n
}

// Conn abstracts the transport under the client: send one packet, then
// collect whatever packets have arrived. The network simulator satisfies
// this with lock-step semantics.
type Conn interface {
	Send(pkt []byte) error
	Recv() [][]byte
}

// Result is the outcome of a client exchange.
type Result struct {
	Open   bool   // port answered SYN with SYN/ACK
	Banner []byte // unprompted server data after the handshake
	Data   []byte // response to the request
}

// Exchange performs a banner-grab conversation: handshake, optional
// banner read, optional request/response. A RST or silence at the SYN
// step reports Open=false. maxRounds bounds the Send/Recv iterations.
func Exchange(c Conn, src, dst ipv6.Addr, srcPort, dstPort uint16, req []byte, maxRounds int) (Result, error) {
	var res Result
	const clientISN = 0x01000000

	send := func(t wire.TCPHeader, data []byte) error {
		pkt, err := wire.BuildTCP(src, dst, 64, t, data)
		if err != nil {
			return err
		}
		return c.Send(pkt)
	}
	// collect reads arrived packets, returning decoded TCP segments from
	// dst for this flow.
	collect := func() []segment {
		var segs []segment
		for _, raw := range c.Recv() {
			s, err := wire.ParsePacket(raw)
			if err != nil || s.TCP == nil {
				continue
			}
			if s.IP.Src != dst || s.TCP.SrcPort != dstPort || s.TCP.DstPort != srcPort {
				continue
			}
			segs = append(segs, segment{h: *s.TCP, data: s.Payload})
		}
		return segs
	}

	if err := send(wire.TCPHeader{SrcPort: srcPort, DstPort: dstPort, Seq: clientISN, Flags: wire.TCPSyn, Window: 65535}, nil); err != nil {
		return res, fmt.Errorf("minitcp: send SYN: %w", err)
	}

	var serverISN uint32
	established := false
	for round := 0; round < maxRounds && !established; round++ {
		for _, seg := range collect() {
			switch {
			case seg.h.Flags&wire.TCPRst != 0:
				return res, nil // closed
			case seg.h.Flags&(wire.TCPSyn|wire.TCPAck) == wire.TCPSyn|wire.TCPAck && seg.h.Ack == clientISN+1:
				serverISN = seg.h.Seq
				established = true
			}
		}
		if !established && round == maxRounds-1 {
			return res, nil // filtered/silent
		}
	}
	res.Open = true

	// Complete the handshake; a banner may come back immediately.
	if err := send(wire.TCPHeader{SrcPort: srcPort, DstPort: dstPort, Seq: clientISN + 1, Ack: serverISN + 1, Flags: wire.TCPAck, Window: 65535}, nil); err != nil {
		return res, fmt.Errorf("minitcp: send ACK: %w", err)
	}
	for _, seg := range collect() {
		if len(seg.data) > 0 {
			res.Banner = append(res.Banner, seg.data...)
		}
	}

	if req != nil {
		ack := serverISN + 1 + uint32(len(res.Banner))
		if err := send(wire.TCPHeader{
			SrcPort: srcPort, DstPort: dstPort,
			Seq: clientISN + 1, Ack: ack,
			Flags: wire.TCPPsh | wire.TCPAck, Window: 65535,
		}, req); err != nil {
			return res, fmt.Errorf("minitcp: send request: %w", err)
		}
		done := false
		for round := 0; round < maxRounds && !done; round++ {
			for _, seg := range collect() {
				if len(seg.data) > 0 {
					res.Data = append(res.Data, seg.data...)
				}
				if seg.h.Flags&(wire.TCPFin|wire.TCPRst) != 0 {
					done = true
				}
			}
			if !done && round == maxRounds-1 {
				done = true // tolerate servers that never FIN
			}
		}
	}

	// Politely reset to tear down whatever half-state the peer holds.
	_ = send(wire.TCPHeader{SrcPort: srcPort, DstPort: dstPort, Seq: clientISN + 1, Flags: wire.TCPRst}, nil)
	return res, nil
}

type segment struct {
	h    wire.TCPHeader
	data []byte
}
