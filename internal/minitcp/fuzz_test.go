package minitcp

import (
	"testing"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// FuzzHandleSegment throws arbitrary TCP segments at a server with two
// registered services and checks that it never panics and that every
// reply it emits is a well-formed packet of the connection: checksums
// verify, ports are swapped, and the IPv6 addresses run server->client.
func FuzzHandleSegment(f *testing.F) {
	f.Add(uint16(1234), uint16(22), uint32(0), uint32(0), uint8(wire.TCPSyn), uint16(65535), []byte{})
	f.Add(uint16(1234), uint16(80), uint32(7), uint32(9), uint8(wire.TCPAck|wire.TCPPsh), uint16(512), []byte("GET / HTTP/1.0\r\n\r\n"))
	f.Add(uint16(4), uint16(9999), uint32(1), uint32(2), uint8(wire.TCPFin|wire.TCPAck), uint16(0), []byte{})
	f.Add(uint16(0), uint16(22), uint32(0), uint32(0), uint8(wire.TCPRst), uint16(0), []byte("x"))
	f.Fuzz(func(t *testing.T, srcPort, dstPort uint16, seq, ack uint32, flags uint8, window uint16, payload []byte) {
		srv := NewServer([]byte("fuzz-seed"))
		srv.Register(22, echoService{banner: "SSH-2.0-dropbear_2019.78"})
		srv.Register(80, echoService{prefix: "HTTP/1.0 200 OK\r\n\r\n"})
		self := ipv6.MustParseAddr("2001:db8::1")
		peer := ipv6.MustParseAddr("2001:beef::100")
		seg := wire.TCPHeader{
			SrcPort: srcPort, DstPort: dstPort,
			Seq: seq, Ack: ack, Flags: flags, Window: window,
		}
		for _, pkt := range srv.HandleSegment(self, peer, seg, payload) {
			sum, err := wire.ParsePacket(pkt)
			if err != nil {
				t.Fatalf("reply does not parse: %v", err)
			}
			if sum.TCP == nil {
				t.Fatalf("reply is not TCP: %+v", sum)
			}
			if sum.IP.Src != self || sum.IP.Dst != peer {
				t.Fatalf("reply addressed %s->%s, want %s->%s", sum.IP.Src, sum.IP.Dst, self, peer)
			}
			if sum.TCP.SrcPort != dstPort || sum.TCP.DstPort != srcPort {
				t.Fatalf("reply ports %d->%d, want %d->%d",
					sum.TCP.SrcPort, sum.TCP.DstPort, dstPort, srcPort)
			}
			if flags&wire.TCPRst != 0 {
				t.Fatal("server answered a RST segment")
			}
		}
	})
}

// FuzzExchange runs the full client-side state machine against the
// server over the in-memory loop connection with fuzzed request bytes
// and ports; it must never panic and any successful result's banner and
// response must have come from the registered service.
func FuzzExchange(f *testing.F) {
	f.Add(uint16(22), []byte("hello"))
	f.Add(uint16(80), []byte("GET / HTTP/1.0\r\n\r\n"))
	f.Add(uint16(81), []byte{})
	f.Fuzz(func(t *testing.T, port uint16, req []byte) {
		srv := NewServer([]byte("fuzz-seed"))
		srv.Register(22, echoService{banner: "SSH-2.0-dropbear_2019.78"})
		srv.Register(80, echoService{prefix: "HTTP/1.0 200 OK\r\n\r\n"})
		conn := &loopConn{srv: srv}
		res, err := Exchange(conn, clientAddr, serverAddr, 40000, port, req, 8)
		if err != nil {
			return
		}
		if port != 22 && port != 80 && res.Open {
			t.Fatalf("closed port %d reported open", port)
		}
	})
}
