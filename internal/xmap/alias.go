package xmap

import (
	"repro/internal/ipv6"
	"repro/internal/telemetry"
	"repro/internal/uint128"
	"repro/internal/wire"
)

// Alias-detector prefix states. A detect-prefix starts counting, moves
// to cooling when a saturation trigger fires, and resolves to blocked
// (folded into the runtime blocklist) or cleared (honest; never
// re-enters detection).
const (
	aliasCounting uint8 = iota
	aliasCooling
	aliasBlocked
	aliasCleared
)

// aliasEntry is one detect-prefix's state in the alias trie.
type aliasEntry struct {
	state uint8
	// selfEchoes counts distinct probed targets inside the prefix that
	// answered with an echo reply from the probed address itself — the
	// aliased-responder signature (honest scans probe pseudo-random
	// IIDs, which never self-answer).
	selfEchoes  uint8
	lastEchoDst ipv6.Addr
	// quarantined counts malformed/unvalidatable replies whose outer
	// source lies in the prefix.
	quarantined uint16
	// evidence accumulates cooldown-window confirmations.
	evidence uint8
	// deadline is the drain tick at which an undecided cooling prefix
	// resolves to cleared.
	deadline uint64
}

// aliasProbe tracks one outstanding cooldown probe.
type aliasProbe struct {
	key       uint64
	evidenced bool
}

// respCacheBits sizes the spoofed-source tracking table (slots = 1<<bits).
const respCacheBits = 9

// respSlot is one direct-mapped spoof-tracking entry; a zero addr marks
// the slot empty (a validated responder is never the unspecified
// address).
type respSlot struct {
	key  uint64 // responder /64 (upper 64 bits)
	addr ipv6.Addr
}

// aliasDetector is the 6Prob-style cooldown alias detector: a flat trie
// over fixed-length detect-prefixes counting hit density, with a
// cooldown re-probe window before any verdict. All state is reached
// through one pointer on the scanner, nil when defenses are off — the
// hot path then pays a single predictable branch per reply.
//
// Per-reply work is O(1) amortized: a last-responder cache absorbs the
// common same-responder run, the trie is consulted only for replies
// carrying a saturation signature or landing in a tracked prefix, and
// trie entries are created only by those signatures (an honest scan
// creates none).
type aliasDetector struct {
	bits       int // detect-prefix length, <= 64
	probes     int // cooldown probes per suspicious prefix (j)
	confirm    int // evidence needed to blocklist
	window     uint64 // cooldown length in drain ticks
	echoThresh int // distinct self-echo targets to trigger
	quarThresh int // quarantined replies to trigger

	trie map[uint64]*aliasEntry
	// resp64 records the first validated error responder seen per
	// responder /64: a second distinct responder in one /64 is the
	// spoofed-source signature (honest /64s hold at most one validated
	// responder). A fixed direct-mapped table, not a map: bounded memory
	// whatever the scan size, and a multiply-shift index instead of a map
	// probe on every new responder. A slot collision merely evicts
	// history — a spoof verdict still needs two distinct responders under
	// the SAME /64 key, so eviction can delay detection (the spoofer
	// re-triggers on its next reply burst) but never fake it.
	resp64      [1 << respCacheBits]respSlot
	outstanding map[ipv6.Addr]*aliasProbe
	pending     []ipv6.Addr
	cooling     []uint64
	blocked     []ipv6.Prefix
	ticks       uint64

	// last-responder cache: skips the resp64 map while one responder
	// (an ISP router answering unreachable for a whole block) streaks.
	lastResp     ipv6.Addr
	haveLastResp bool

	prf subPRF
}

// newAliasDetector wires the detector from a validated Config.
func newAliasDetector(cfg *Config) *aliasDetector {
	return &aliasDetector{
		bits:        cfg.AliasPrefixLen,
		probes:      cfg.CooldownProbes,
		confirm:     cfg.AliasConfirm,
		window:      uint64(cfg.CooldownWindow),
		echoThresh:  2,
		quarThresh:  3,
		trie:        make(map[uint64]*aliasEntry),
		outstanding: make(map[ipv6.Addr]*aliasProbe),
		prf:         newSubPRF(append(append([]byte{}, cfg.Seed...), "-alias-cooldown"...)),
	}
}

// keyOf maps an address to its detect-prefix key.
func (d *aliasDetector) keyOf(a ipv6.Addr) uint64 {
	return a.Uint128().Hi >> (64 - uint(d.bits))
}

// prefixOf inverts keyOf.
func (d *aliasDetector) prefixOf(key uint64) ipv6.Prefix {
	hi := key << (64 - uint(d.bits))
	p, _ := ipv6.NewPrefix(ipv6.AddrFrom128(uint128.New(hi, 0)), d.bits)
	return p
}

// entry returns (creating if needed) the trie entry for a key.
func (d *aliasDetector) entry(key uint64) *aliasEntry {
	e := d.trie[key]
	if e == nil {
		e = &aliasEntry{}
		d.trie[key] = e
	}
	return e
}

// cooldownTarget derives the i-th deterministic pseudo-random re-probe
// address inside a detect-prefix. The derivation is keyed separately
// from the scan PRF, so cooldown targets never collide with the
// permutation's probe addresses.
func (d *aliasDetector) cooldownTarget(key uint64, i int) ipv6.Addr {
	base := key << (64 - uint(d.bits))
	iidHi, iidLo, _ := d.prf.derive(base, uint64(i))
	hostHi := iidHi & (1<<(64-uint(d.bits)) - 1)
	if hostHi == 0 && iidLo == 0 {
		iidLo = 1
	}
	return ipv6.AddrFrom128(uint128.New(base|hostHi, iidLo))
}

// takePending returns and clears the cooldown probes queued for send.
func (d *aliasDetector) takePending() []ipv6.Addr {
	p := d.pending
	d.pending = d.pending[:0]
	return p
}

// BlockedPrefixes returns the detect-prefixes the runtime detector has
// folded into the blocklist, in detection order. Oracles score detector
// precision (every entry must lie inside a planted hostile region) and
// recall against it.
func (s *Scanner) BlockedPrefixes() []ipv6.Prefix {
	if s.alias == nil {
		return nil
	}
	return s.alias.blocked
}

// aliasCool moves a counting prefix into its cooldown window and queues
// the re-probe targets.
func (s *Scanner) aliasCool(key uint64, e *aliasEntry, stats *Stats) {
	d := s.alias
	e.state = aliasCooling
	e.deadline = d.ticks + d.window
	d.cooling = append(d.cooling, key)
	stats.AliasDetected++
	s.tel.Inc(telemetry.ScanAliasDetected)
	if s.tracer != nil {
		s.tracer.Anomaly(telemetry.AnomalyAlias, s.trStream, stats.Sent, d.prefixOf(key).Addr().Bytes())
	}
	for i := 0; i < d.probes; i++ {
		dst := d.cooldownTarget(key, i)
		if _, dup := d.outstanding[dst]; dup {
			continue
		}
		d.outstanding[dst] = &aliasProbe{key: key}
		d.pending = append(d.pending, dst)
	}
}

// aliasBlock folds a confirmed-saturated prefix into the runtime
// blocklist, so the permutation skips its remaining targets.
func (s *Scanner) aliasBlock(key uint64, e *aliasEntry, stats *Stats) {
	d := s.alias
	e.state = aliasBlocked
	p := d.prefixOf(key)
	s.BlockRuntime(p)
	d.blocked = append(d.blocked, p)
	stats.AliasBlocked++
	s.tel.Inc(telemetry.ScanAliasBlocked)
}

// aliasObserve feeds one validated response through the detector. It
// reports true when the response is consumed — a cooldown-probe reply,
// or a reply from a prefix already under suspicion or verdict — which
// must then not reach dedup or the handler.
func (s *Scanner) aliasObserve(resp *Response, stats *Stats) bool {
	d := s.alias
	// Cooldown-probe replies are detector traffic, never results. Each
	// outstanding probe contributes evidence at most once; duplicate
	// replies (storms) are still consumed.
	if o, ok := d.outstanding[resp.ProbeDst]; ok {
		e := d.trie[o.key]
		if e != nil && e.state == aliasCooling && !o.evidenced {
			isErr := resp.Kind == KindDestUnreach || resp.Kind == KindTimeExceeded
			// Aliased signature: a pseudo-random cooldown address
			// self-answered. Spoof signature: the error responder is a
			// never-before-seen address (an honest prefix's errors come
			// from its one already-discovered device or router).
			if (resp.Kind == KindEchoReply && resp.Responder == resp.ProbeDst) ||
				(isErr && resp.Responder != resp.ProbeDst && !s.dedup.seen(resp.Responder)) {
				o.evidenced = true
				e.evidence++
				if int(e.evidence) >= d.confirm {
					s.aliasBlock(o.key, e, stats)
				}
			}
		}
		return true
	}

	selfEcho := resp.Kind == KindEchoReply && resp.Responder == resp.ProbeDst
	isErr := resp.Kind == KindDestUnreach || resp.Kind == KindTimeExceeded
	if !selfEcho && !isErr {
		return false
	}

	if isErr && resp.Responder != resp.ProbeDst {
		// Spoofed-source trigger, behind the last-responder cache.
		if !d.haveLastResp || d.lastResp != resp.Responder {
			d.lastResp, d.haveLastResp = resp.Responder, true
			hi := resp.Responder.Uint128().Hi
			sl := &d.resp64[(hi*0x9e3779b97f4a7c15)>>(64-respCacheBits)]
			if sl.addr == (ipv6.Addr{}) || sl.key != hi {
				sl.key, sl.addr = hi, resp.Responder
			} else if sl.addr != resp.Responder {
				k := d.keyOf(resp.ProbeDst)
				if e := d.entry(k); e.state == aliasCounting {
					s.aliasCool(k, e, stats)
				}
			}
		}
	}

	if selfEcho {
		k := d.keyOf(resp.ProbeDst)
		e := d.entry(k)
		if e.state == aliasCounting && resp.ProbeDst != e.lastEchoDst {
			e.lastEchoDst = resp.ProbeDst
			e.selfEchoes++
			if int(e.selfEchoes) >= d.echoThresh {
				s.aliasCool(k, e, stats)
			}
		}
		if e.state == aliasCooling || e.state == aliasBlocked {
			return true
		}
		return false
	}

	// Error replies from a prefix under suspicion or verdict are
	// consumed so in-flight saturation traffic cannot pollute dedup.
	// The trie is empty for honest scans, so this is a len check.
	if len(d.trie) > 0 {
		if e := d.trie[d.keyOf(resp.ProbeDst)]; e != nil &&
			(e.state == aliasCooling || e.state == aliasBlocked) {
			return true
		}
	}
	return false
}

// aliasQuarantine records one unvalidatable reply: counted, attributed
// to the outer source's detect-prefix, never parsed further — the
// malformed-responder trigger and its cooldown evidence.
func (s *Scanner) aliasQuarantine(raw []byte, stats *Stats) {
	stats.Quarantined++
	s.tel.Inc(telemetry.ScanQuarantined)
	if len(raw) < wire.HeaderLen || raw[0]>>4 != 6 {
		return
	}
	src := ipv6.AddrFromBytes(raw[8:24])
	if s.tracer != nil {
		b := src.Bytes()
		if s.tracer.SampleAddr(b) {
			s.tracer.Span(s.trStream, telemetry.SpanQuarantine, stats.Sent, b, 0)
		}
		s.tracer.Anomaly(telemetry.AnomalyQuarantine, s.trStream, stats.Sent, b)
	}
	d := s.alias
	k := d.keyOf(src)
	e := d.entry(k)
	switch e.state {
	case aliasCounting:
		e.quarantined++
		if int(e.quarantined) >= d.quarThresh {
			s.aliasCool(k, e, stats)
		}
	case aliasCooling:
		if int(e.evidence) < d.confirm {
			e.evidence++
			if int(e.evidence) >= d.confirm {
				s.aliasBlock(k, e, stats)
			}
		}
	}
}

// aliasTick advances the cooldown clock one drain window: undecided
// cooling prefixes past their deadline resolve to cleared (honest), and
// outstanding probes of decided prefixes are retired.
func (s *Scanner) aliasTick() {
	d := s.alias
	d.ticks++
	if len(d.cooling) == 0 {
		return
	}
	kept := d.cooling[:0]
	expired := false
	for _, k := range d.cooling {
		e := d.trie[k]
		if e == nil || e.state != aliasCooling {
			expired = true // resolved to blocked; outstanding can retire
			continue
		}
		if d.ticks >= e.deadline {
			e.state = aliasCleared
			expired = true
			continue
		}
		kept = append(kept, k)
	}
	d.cooling = kept
	if !expired {
		return
	}
	for dst, o := range d.outstanding {
		if e := d.trie[o.key]; e == nil || e.state == aliasCleared || e.state == aliasBlocked {
			delete(d.outstanding, dst)
		}
	}
}

// shedSrc extracts the outer IPv6 source of a raw reply for the shed
// pre-pass; ok is false for packets too short to carry one.
func shedSrc(raw []byte) (ipv6.Addr, bool) {
	if len(raw) < wire.HeaderLen || raw[0]>>4 != 6 {
		return ipv6.Addr{}, false
	}
	return ipv6.AddrFromBytes(raw[8:24]), true
}

// shed drops lowest-value buffered replies when a drain floods past the
// budget, so an amplifier cannot stall the send path. Two deterministic
// tiers, cheapest information first: replies sourced inside a prefix
// already under suspicion or verdict, then replies from responders
// dedup has already seen (those would be counted duplicates at best).
// Replies from unseen responders are never shed — shedding cannot cost
// recall, only duplicate accounting.
func (s *Scanner) shed(stats *Stats, releaser Releaser) {
	need := len(s.rx) - s.cfg.ShedBudget
	before := stats.Shed
	d := s.alias
	for tier := 0; tier < 2 && need > 0; tier++ {
		kept := s.rx[:0]
		for _, raw := range s.rx {
			if need > 0 {
				src, ok := shedSrc(raw)
				drop := false
				if ok {
					switch tier {
					case 0:
						if len(d.trie) > 0 {
							if e := d.trie[d.keyOf(src)]; e != nil &&
								(e.state == aliasCooling || e.state == aliasBlocked) {
								drop = true
							}
						}
					case 1:
						drop = s.dedup.seen(src)
					}
				}
				if drop {
					need--
					stats.Shed++
					s.tel.Inc(telemetry.ScanShed)
					if releaser != nil {
						s.recycle = append(s.recycle, raw)
					}
					continue
				}
			}
			kept = append(kept, raw)
		}
		// Zero the tail so dropped buffers are not pinned by the slice.
		for i := len(kept); i < len(s.rx); i++ {
			s.rx[i] = nil
		}
		s.rx = kept
	}
	if n := stats.Shed - before; n > 0 && s.tracer != nil {
		// One span and one exemplar per shedding drain, the drop count
		// as the argument — per-packet spans would amplify the flood.
		s.tracer.Span(s.trStream, telemetry.SpanShed, stats.Sent, zeroAddr, n)
		s.tracer.Anomaly(telemetry.AnomalyShed, s.trStream, stats.Sent, zeroAddr)
	}
}
