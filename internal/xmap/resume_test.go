package xmap

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/ipv6"
)

// collectScan runs a scan to completion, returning stats and the set of
// emitted responders.
func collectScan(t *testing.T, cfg Config, drv Driver) (Stats, map[ipv6.Addr]bool) {
	t.Helper()
	s, err := New(cfg, drv)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[ipv6.Addr]bool{}
	stats, err := s.Run(context.Background(), func(r Response) { seen[r.Responder] = true })
	if err != nil {
		t.Fatal(err)
	}
	return stats, seen
}

// TestResumeMatchesUninterrupted is the kill-and-resume differential
// oracle at the single-scanner level: a scan stopped mid-cycle and
// resumed from its last periodic checkpoint must report exactly the
// responders an uninterrupted scan reports, re-sending at most one
// checkpoint interval of probes.
func TestResumeMatchesUninterrupted(t *testing.T) {
	const checkpointEvery = 32
	base := func(f *scanFixture) Config {
		return Config{Window: window(t, f), Seed: []byte("resume")}
	}

	// Leg 0: the uninterrupted reference on its own fixture.
	fRef := buildFixture(t)
	refStats, refSeen := collectScan(t, base(fRef), fRef.drv)

	// Leg 1: same scan on a fresh identical fixture, killed at target
	// 100 with periodic checkpoints. The crash discards everything after
	// the last periodic state (target 96), like a real kill -9 would.
	f := buildFixture(t)
	var states []ShardState
	cfg := base(f)
	cfg.MaxTargets = 100
	cfg.CheckpointEvery = checkpointEvery
	cfg.OnCheckpoint = func(st ShardState) { states = append(states, st) }
	s, err := New(cfg, f.drv)
	if err != nil {
		t.Fatal(err)
	}
	leg1Seen := map[ipv6.Addr]bool{}
	if _, err := s.Run(context.Background(), func(r Response) { leg1Seen[r.Responder] = true }); err != nil {
		t.Fatal(err)
	}
	if len(states) < 2 {
		t.Fatalf("only %d checkpoint states emitted", len(states))
	}
	crash := states[len(states)-2] // last periodic state, not the exit flush
	if crash.Stats.Targets != 96 {
		t.Fatalf("periodic checkpoint at %d targets, want 96", crash.Stats.Targets)
	}

	// Leg 2: resume on the same fixture (the network kept existing).
	cfg2 := base(f)
	cfg2.Resume = &crash
	s2, err := New(cfg2, f.drv)
	if err != nil {
		t.Fatal(err)
	}
	leg2Seen := map[ipv6.Addr]bool{}
	leg2Stats, err := s2.Run(context.Background(), func(r Response) { leg2Seen[r.Responder] = true })
	if err != nil {
		t.Fatal(err)
	}

	// The union of both legs' emissions equals the uninterrupted set.
	union := map[ipv6.Addr]bool{}
	for a := range leg1Seen {
		union[a] = true
	}
	for a := range leg2Seen {
		union[a] = true
	}
	if len(union) != len(refSeen) {
		t.Fatalf("union has %d responders, uninterrupted %d", len(union), len(refSeen))
	}
	for a := range refSeen {
		if !union[a] {
			t.Errorf("responder %s lost across the crash", a)
		}
	}
	// Cumulative coverage: every target probed exactly once, except the
	// re-sent tail between the checkpoint and the kill.
	if leg2Stats.Targets != refStats.Targets {
		t.Errorf("resumed scan probed %d cumulative targets, want %d", leg2Stats.Targets, refStats.Targets)
	}
	resent := leg2Stats.Sent + 100 - crash.Stats.Sent - refStats.Sent
	if resent > checkpointEvery {
		t.Errorf("crash re-sent %d probes, more than one checkpoint interval (%d)", resent, checkpointEvery)
	}
}

// TestResumeAfterCancellation: context cancellation is the signal-driven
// shutdown path; the state it emits must resume to full coverage.
func TestResumeAfterCancellation(t *testing.T) {
	f := buildFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	var last ShardState
	cfg := Config{
		Window: window(t, f), Seed: []byte("cancel"),
		CheckpointEvery: 16,
		OnCheckpoint: func(st ShardState) {
			last = st
			if st.Stats.Targets >= 48 {
				cancel() // the "signal" arrives mid-scan
			}
		},
	}
	s, err := New(cfg, f.drv)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[ipv6.Addr]bool{}
	if _, err := s.Run(ctx, func(r Response) { seen[r.Responder] = true }); err != context.Canceled {
		t.Fatalf("run returned %v, want context.Canceled", err)
	}
	if last.Done {
		t.Fatal("cancelled scan checkpointed as done")
	}

	cfg2 := Config{Window: window(t, f), Seed: []byte("cancel"), Resume: &last}
	s2, err := New(cfg2, f.drv)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s2.Run(context.Background(), func(r Response) { seen[r.Responder] = true })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Targets != 256 {
		t.Errorf("cumulative targets = %d, want 256", stats.Targets)
	}
	if len(seen) < fixtureCPEs+1 {
		t.Errorf("found %d responders across cancel+resume, want %d", len(seen), fixtureCPEs+1)
	}
}

// TestScanParallelCheckpointResume drives the whole stack: a sharded
// scan writes its checkpoint file, stops early, and a second process
// (modelled by a fresh ScanParallel call) resumes it without re-emitting
// responders the first leg already reported.
func TestScanParallelCheckpointResume(t *testing.T) {
	const shards = 4
	path := filepath.Join(t.TempDir(), "scan.ckpt")

	f := buildFixture(t)
	cfg := Config{
		Window: window(t, f), Seed: []byte("parallel-resume"),
		MaxTargets:      40, // per shard: 160 of 256 targets, then "crash"
		CheckpointEvery: 16,
		CheckpointPath:  path,
	}
	emitted := map[ipv6.Addr]int{}
	if _, err := ScanParallel(context.Background(), cfg, f.drv, shards, func(r Response) { emitted[r.Responder]++ }); err != nil {
		t.Fatal(err)
	}

	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.States) != shards {
		t.Fatalf("checkpoint has %d shard states, want %d", len(ck.States), shards)
	}
	if len(ck.Responders) != len(emitted) {
		t.Fatalf("checkpoint has %d responders, handler saw %d", len(ck.Responders), len(emitted))
	}

	cfg2 := Config{
		Window: window(t, f), Seed: []byte("parallel-resume"),
		CheckpointPath: path,
		ResumeFrom:     ck,
	}
	total, err := ScanParallel(context.Background(), cfg2, f.drv, shards, func(r Response) { emitted[r.Responder]++ })
	if err != nil {
		t.Fatal(err)
	}
	if total.Targets != 256 {
		t.Errorf("cumulative targets = %d, want 256", total.Targets)
	}
	if len(emitted) != fixtureCPEs+1 {
		t.Errorf("found %d responders, want %d", len(emitted), fixtureCPEs+1)
	}
	if total.Unique != uint64(len(emitted)) {
		t.Errorf("Unique = %d, handler saw %d", total.Unique, len(emitted))
	}
	for a, n := range emitted {
		if n != 1 {
			t.Errorf("responder %s emitted %d times across resume", a, n)
		}
	}
	// The final checkpoint marks every shard done.
	final, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range final.States {
		if !st.Done {
			t.Errorf("shard %d not marked done after completion", st.Shard)
		}
	}
}

// TestScanParallelResumeRejectsSkew: a checkpoint must not resume under
// a different identity configuration.
func TestScanParallelResumeRejectsSkew(t *testing.T) {
	f := buildFixture(t)
	cfg := Config{Window: window(t, f), Seed: []byte("skew")}
	ck := &Checkpoint{Digest: ConfigDigest(cfg, 2), Shards: 2}

	bad := cfg
	bad.Seed = []byte("other-seed")
	bad.ResumeFrom = ck
	if _, err := ScanParallel(context.Background(), bad, f.drv, 2, nil); err == nil {
		t.Error("seed skew accepted")
	}
	cfg.ResumeFrom = ck
	if _, err := ScanParallel(context.Background(), cfg, f.drv, 4, nil); err == nil {
		t.Error("shard-count skew accepted")
	}
}

// TestResumeRestoresDedup: a responder reported before the crash must
// not be re-emitted after resume even when its sub-prefix is re-probed.
func TestResumeRestoresDedup(t *testing.T) {
	for _, exact := range []bool{false, true} {
		f := buildFixture(t)
		var states []ShardState
		cfg := Config{
			Window: window(t, f), Seed: []byte("dedup-resume"),
			DedupExact: exact, MaxTargets: 220, CheckpointEvery: 16,
			OnCheckpoint: func(st ShardState) { states = append(states, st) },
		}
		s, err := New(cfg, f.drv)
		if err != nil {
			t.Fatal(err)
		}
		stats1, err := s.Run(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats1.Unique == 0 {
			t.Fatal("leg 1 found nothing; dedup restore untestable")
		}
		crash := states[len(states)-1]
		cfg2 := Config{
			Window: window(t, f), Seed: []byte("dedup-resume"),
			DedupExact: exact, Resume: &crash,
		}
		s2, err := New(cfg2, f.drv)
		if err != nil {
			t.Fatal(err)
		}
		reEmitted := 0
		stats2, err := s2.Run(context.Background(), func(r Response) { reEmitted++ })
		if err != nil {
			t.Fatal(err)
		}
		if want := stats2.Unique - stats1.Unique; uint64(reEmitted) != want {
			t.Errorf("exact=%v: leg 2 emitted %d responders, want %d new ones", exact, reEmitted, want)
		}
		if exact {
			// The restored exact set still carries response counts.
			if counts := s2.ResponderCounts(); len(counts) == 0 {
				t.Error("restored exact dedup lost responder counts")
			}
		}
	}
}

// TestResumeValidation: malformed shard states must be rejected at
// construction, not crash the scan.
func TestResumeValidation(t *testing.T) {
	f := buildFixture(t)
	base := Config{Window: window(t, f), Seed: []byte("val")}

	wrongShard := base
	wrongShard.Resume = &ShardState{Shard: 3}
	if _, err := New(wrongShard, f.drv); err == nil {
		t.Error("shard-index mismatch accepted")
	}

	kindSkew := base
	kindSkew.Resume = &ShardState{DedupKind: dedupKindExact, Dedup: (mapDedup{}).appendState(nil)}
	if _, err := New(kindSkew, f.drv); err == nil {
		t.Error("dedup kind skew accepted (bloom config, exact state)")
	}

	badDedup := base
	badDedup.DedupExact = true
	badDedup.Resume = &ShardState{DedupKind: dedupKindExact, Dedup: []byte{1, 2, 3}}
	if _, err := New(badDedup, f.drv); err == nil {
		t.Error("corrupt dedup state accepted")
	}

	retriesOff := base
	r := newRetryRing(4)
	r.push(retryEntry{dst: retryAddr(1), due: 1, attempts: 1})
	retriesOff.Resume = &ShardState{Retry: r.appendState(nil)}
	if _, err := New(retriesOff, f.drv); err == nil {
		t.Error("pending retries accepted with retries disabled")
	}
}
