package xmap

import (
	"context"
	"testing"

	"repro/internal/ipv6"
	"repro/internal/services"
	"repro/internal/topo"
	"repro/internal/wire"
)

// parseForTest decodes a packet for direct module testing.
func parseForTest(raw []byte) (*wire.Summary, error) { return wire.ParsePacket(raw) }

// topoFixture builds a China Unicom block (rich DNS exposure).
func topoFixture(t *testing.T) (*topo.Deployment, *SimDriver) {
	t.Helper()
	dep, err := topo.Build(topo.Config{
		Seed: 81, Scale: 0.0005, WindowWidth: 10,
		MaxDevicesPerISP: 200, OnlyISPs: []int{12},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dep, NewSimDriver(dep.Engine, dep.Edge)
}

// TestDNSProbeScanFindsOpenResolvers runs the dnsscan module over the
// window: devices running the DNS forwarder answer the A query directly
// at scan time (the paper's "741k open IPv6 DNS resolvers" pipeline,
// without the separate grab step).
func TestDNSProbeScanFindsOpenResolvers(t *testing.T) {
	dep, drv := topoFixture(t)
	isp := dep.ISPs[0]

	wantResolvers := map[string]bool{}
	for _, d := range isp.Devices {
		if _, ok := d.Services[services.SvcDNS]; ok {
			wantResolvers[d.WANAddr.String()] = true
		}
	}
	if len(wantResolvers) == 0 {
		t.Skip("no resolvers generated in sample")
	}

	// dnsscan runs against known addresses (a hitlist pass over the
	// discovered peripheries): verify the module per device.
	probe := NewDNSProbe("connectivity.example")
	for _, d := range isp.Devices {
		val := uint32(0xabcd0123)
		pkt, err := probe.MakeProbe(dep.Edge.Addr(), d.WANAddr, val)
		if err != nil {
			t.Fatal(err)
		}
		if err := drv.Send(pkt); err != nil {
			t.Fatal(err)
		}
		gotAnswer := false
		for _, raw := range drv.Recv() {
			sum, err := parseForTest(raw)
			if err != nil {
				continue
			}
			resp, ok := probe.Classify(sum, func(ipv6.Addr) uint32 { return val })
			if !ok {
				continue
			}
			if resp.Kind == KindUDPData {
				gotAnswer = true
			}
		}
		if want := wantResolvers[d.WANAddr.String()]; want != gotAnswer {
			t.Errorf("device %s (%v services): dns answered=%v want %v",
				d.WANAddr, len(d.Services), gotAnswer, want)
		}
	}
}

// TestNTPProbeModule exercises ntpscan against a CenturyLink-profile
// deployment (the NTP-heavy ISP).
func TestNTPProbeModule(t *testing.T) {
	dep, err := topo.Build(topo.Config{
		Seed: 83, Scale: 0.01, WindowWidth: 10,
		MaxDevicesPerISP: 300, OnlyISPs: []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	drv := NewSimDriver(dep.Engine, dep.Edge)
	probe := NewNTPProbe()
	found, want := 0, 0
	for _, d := range dep.ISPs[0].Devices {
		if _, ok := d.Services[services.SvcNTP]; ok {
			want++
		}
		val := uint32(0x5a5a1111)
		pkt, err := probe.MakeProbe(dep.Edge.Addr(), d.WANAddr, val)
		if err != nil {
			t.Fatal(err)
		}
		if err := drv.Send(pkt); err != nil {
			t.Fatal(err)
		}
		for _, raw := range drv.Recv() {
			sum, err := parseForTest(raw)
			if err != nil {
				continue
			}
			if resp, ok := probe.Classify(sum, func(ipv6.Addr) uint32 { return val }); ok && resp.Kind == KindUDPData {
				found++
			}
		}
	}
	if want == 0 {
		t.Skip("no NTP devices in sample")
	}
	if found != want {
		t.Errorf("ntpscan found %d of %d NTP servers", found, want)
	}
}

// TestUDPProbeScanEndToEnd runs a full window scan with the dnsscan
// module: closed-port devices answer with ICMPv6 port-unreachable or
// nothing; the scan must complete and classify consistently.
func TestUDPProbeScanEndToEnd(t *testing.T) {
	dep, drv := topoFixture(t)
	isp := dep.ISPs[0]
	s, err := New(Config{
		Window: isp.Window,
		Probe:  NewDNSProbe("x.example"),
		Seed:   []byte("udp-scan"),
	}, drv)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[ResponseKind]int{}
	if _, err := s.Run(context.Background(), func(r Response) { kinds[r.Kind]++ }); err != nil {
		t.Fatal(err)
	}
	// Probes to nonexistent addresses draw dest-unreach (address) from
	// CPEs: the periphery is discoverable with the UDP module too.
	if kinds[KindDestUnreach] == 0 {
		t.Errorf("kinds = %v, want unreachables", kinds)
	}
}
