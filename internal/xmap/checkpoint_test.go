package xmap

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ipv6"
	"repro/internal/uint128"
)

func sampleCheckpoint() *Checkpoint {
	c := &Checkpoint{
		Shards: 3,
		Responders: []ipv6.Addr{
			ipv6.MustParseAddr("2001:db8::1"),
			ipv6.MustParseAddr("2001:db8:0:42:a:b:c:d"),
		},
	}
	for i := range c.Digest {
		c.Digest[i] = byte(i * 7)
	}
	dedup := mapDedup{ipv6.MustParseAddr("2001:db8::1"): 3}
	c.States = []ShardState{
		{
			Shard:    0,
			Consumed: uint128.New(0, 1234),
			Stats: Stats{
				Targets: 1234, Sent: 1300, Received: 40, Unique: 6,
				Retried: 66, RetryDropped: 1, RateDown: 2,
				Elapsed: 3 * time.Second,
			},
			DedupKind: dedupKindExact,
			Dedup:     dedup.appendState(nil),
			Retry:     []byte{0, 0, 0, 0},
		},
		{Shard: 2, Done: true, Consumed: uint128.New(1, 0)},
	}
	return c
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := sampleCheckpoint()
	data := c.Marshal()
	got, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != c.Digest || got.Shards != c.Shards {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Responders) != 2 || got.Responders[1] != c.Responders[1] {
		t.Fatalf("responders mismatch: %v", got.Responders)
	}
	if len(got.States) != 2 {
		t.Fatalf("states mismatch: %d", len(got.States))
	}
	for i := range c.States {
		w, g := c.States[i], got.States[i]
		if g.Shard != w.Shard || g.Done != w.Done || g.Consumed != w.Consumed ||
			g.Stats != w.Stats || g.DedupKind != w.DedupKind ||
			!bytes.Equal(g.Dedup, w.Dedup) || !bytes.Equal(g.Retry, w.Retry) {
			t.Fatalf("state %d: got %+v, want %+v", i, g, w)
		}
	}
	if !bytes.Equal(got.Marshal(), data) {
		t.Fatal("re-marshal is not byte-identical")
	}
}

func TestUnmarshalCheckpointRejectsMalformed(t *testing.T) {
	good := sampleCheckpoint().Marshal()
	cases := map[string][]byte{
		"empty":      {},
		"header":     good[:10],
		"bad magic":  append([]byte{0xde, 0xad, 0xbe, 0xef}, good[4:]...),
		"version up": append([]byte{0x58, 0x43, 0x50, 0x02}, good[4:]...),
		"trailing":   append(append([]byte{}, good...), 1, 2, 3),
	}
	// Every truncation point must error, never panic.
	for i := 0; i < len(good); i += 7 {
		if _, err := UnmarshalCheckpoint(good[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	for name, data := range cases {
		if _, err := UnmarshalCheckpoint(data); err == nil {
			t.Errorf("%s input accepted", name)
		}
	}
	// Absurd counts must not allocate: claim 2^32-1 responders.
	huge := append([]byte{}, good[:40]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff)
	if _, err := UnmarshalCheckpoint(huge); err == nil {
		t.Error("absurd responder count accepted")
	}
	// Duplicate shard states.
	dup := sampleCheckpoint()
	dup.States[1].Shard = 0
	if _, err := UnmarshalCheckpoint(dup.Marshal()); err == nil {
		t.Error("duplicate shard state accepted")
	}
	// State for a shard outside the shard count.
	oob := sampleCheckpoint()
	oob.States[1].Shard = 3
	if _, err := UnmarshalCheckpoint(oob.Marshal()); err == nil {
		t.Error("out-of-range shard state accepted")
	}
}

func TestCheckpointFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scan.ckpt")
	c := sampleCheckpoint()
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second version; the file must read back as one
	// complete checkpoint and no temp litter may remain.
	c.States[0].Stats.Targets = 9999
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.States[0].Stats.Targets != 9999 {
		t.Fatalf("stale checkpoint read back: %+v", got.States[0].Stats)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestConfigDigestSensitivity(t *testing.T) {
	f := buildFixture(t)
	base := Config{Window: window(t, f), Seed: []byte("digest")}
	d0 := ConfigDigest(base, 4)
	if d0 != ConfigDigest(base, 4) {
		t.Fatal("digest is not deterministic")
	}
	// Operational knobs may change freely across a resume.
	ops := base
	ops.Rate = 1000
	ops.MaxTargets = 7
	ops.Retries = 3
	ops.DrainEvery = 8
	if ConfigDigest(ops, 4) != d0 {
		t.Error("operational knobs changed the digest")
	}
	// Identity parameters must not.
	seed := base
	seed.Seed = []byte("other")
	shard := ConfigDigest(base, 8)
	exact := base
	exact.DedupExact = true
	for name, d := range map[string][32]byte{
		"seed":  ConfigDigest(seed, 4),
		"shard": shard,
		"dedup": ConfigDigest(exact, 4),
	} {
		if d == d0 {
			t.Errorf("%s change kept the digest", name)
		}
	}
}

func TestCheckpointVerify(t *testing.T) {
	f := buildFixture(t)
	cfg := Config{Window: window(t, f), Seed: []byte("verify")}
	c := &Checkpoint{Digest: ConfigDigest(cfg, 2), Shards: 2}
	if err := c.Verify(cfg, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(cfg, 4); err == nil {
		t.Error("shard-count skew accepted")
	}
	cfg.Seed = []byte("different")
	if err := c.Verify(cfg, 2); err == nil {
		t.Error("digest mismatch accepted")
	}
}

func TestDedupStateRoundTrip(t *testing.T) {
	// Exact map.
	m := mapDedup{}
	for i := 0; i < 50; i++ {
		a := ipv6.AddrFrom128(uint128.New(0x2001_0db8, uint64(i*17)))
		m[a] = uint64(i + 1)
	}
	restored, err := dedupFromState(dedupKindExact, m.appendState(nil))
	if err != nil {
		t.Fatal(err)
	}
	rm := restored.(mapDedup)
	if len(rm) != len(m) {
		t.Fatalf("restored %d entries, want %d", len(rm), len(m))
	}
	for a, c := range m {
		if rm[a] != c {
			t.Fatalf("count for %s = %d, want %d", a, rm[a], c)
		}
	}
	// Bloom filter: restored filter must agree on membership.
	bd, err := newBloomDedup(uint128.From64(4096), []byte("bloomseed"))
	if err != nil {
		t.Fatal(err)
	}
	var addrs []ipv6.Addr
	for i := 0; i < 200; i++ {
		a := ipv6.AddrFrom128(uint128.New(0xfd00, uint64(i*31)))
		addrs = append(addrs, a)
		bd.add(a)
	}
	rb, err := dedupFromState(dedupKindBloom, bd.appendState(nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		if !rb.seen(a) {
			t.Fatalf("restored filter lost %s", a)
		}
	}
	// Kind skew.
	if _, err := dedupFromState(dedupKindBloom, m.appendState(nil)); err == nil {
		t.Error("map state accepted as a bloom filter")
	}
	if _, err := dedupFromState(99, nil); err == nil {
		t.Error("unknown dedup kind accepted")
	}
}

// FuzzUnmarshalCheckpoint: the decoder must never panic, and anything it
// accepts must re-marshal to a decodable equivalent.
func FuzzUnmarshalCheckpoint(f *testing.F) {
	f.Add(sampleCheckpoint().Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x58, 0x43, 0x50, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCheckpoint(data)
		if err != nil {
			return
		}
		again, err := UnmarshalCheckpoint(c.Marshal())
		if err != nil {
			t.Fatalf("accepted checkpoint did not re-decode: %v", err)
		}
		if !bytes.Equal(again.Marshal(), c.Marshal()) {
			t.Fatal("re-marshal is not stable")
		}
	})
}
