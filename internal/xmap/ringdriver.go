package xmap

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/ipv6"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// pumpBurst is how many ring entries the transmission pump forwards to
// the underlying driver per SendBatch call.
const pumpBurst = 64

// RingDriver pipelines an underlying driver behind a lock-free SPSC
// ring: SendBatch copies each packet into a pooled buffer and pushes it
// onto the ring, returning as soon as the burst is queued, while a
// dedicated pump goroutine pops bursts off the ring and forwards them
// through the underlying driver's SendBatch. Probe generation and
// transmission therefore overlap instead of lock-stepping — the
// scanner-side analogue of a NIC TX ring.
//
// Ownership: the caller's packet slices are copied and never retained
// (the Driver contract); the copies live in RingDriver-owned buffers
// that cycle scanner→ring→pump→free-ring→scanner, so the steady state
// allocates nothing. A full ring is backpressure: SendBatch spins
// (yielding) until the pump frees a slot, which composes with the
// scanner's AIMD window — a stalled pump delays the window's flush,
// delaying its drain, exactly like a slow NIC.
//
// One RingDriver serves one scanner goroutine (single producer); use
// one per shard under ScanParallel.
type RingDriver struct {
	under Driver
	rel   Releaser // under's Releaser capability, if any
	ring  *SPSC[[]byte]
	free  *SPSC[[]byte]

	// pushed counts packets accepted into the ring; completed counts
	// packets the pump has handed to the underlying driver; failed
	// counts packets the pump gave up on after a hard driver error.
	// Flush waits for completed+failed to catch up with pushed.
	pushed    atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	// stalls counts SendBatch backpressure waits (full ring).
	stalls atomic.Uint64

	// tracer, when set, records sampled ring-enqueue/ring-stall spans on
	// stream trStream; SendBatch runs on the owning scanner goroutine,
	// so the stream keeps its single writer.
	tracer   *telemetry.Tracer
	trStream int

	stop chan struct{}
	done chan struct{}
}

var _ Driver = (*RingDriver)(nil)
var _ Flusher = (*RingDriver)(nil)

// NewRingDriver inserts a ring of the given capacity (rounded up to a
// power of two) in front of under and starts the transmission pump.
// Call Close to stop the pump; packets still queued at Close time are
// flushed first.
func NewRingDriver(under Driver, size int) *RingDriver {
	if size < 2 {
		size = 2
	}
	d := &RingDriver{
		under: under,
		ring:  NewSPSC[[]byte](size),
		free:  NewSPSC[[]byte](size),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	d.rel, _ = under.(Releaser)
	go d.pump()
	return d
}

// SendBatch implements Driver: each packet is copied into a pooled
// buffer and queued for the pump. It returns len(pkts) — acceptance
// into the ring is the send, as with a kernel TX queue; transmission
// failures surface through Failed and telemetry, not per call.
func (d *RingDriver) SendBatch(pkts [][]byte) (int, error) {
	for _, pkt := range pkts {
		var traced bool
		var dst [16]byte
		if d.tracer != nil && len(pkt) >= wire.HeaderLen && pkt[0]>>4 == 6 {
			copy(dst[:], pkt[24:40])
			traced = d.tracer.SampleAddr(dst)
		}
		var buf []byte
		if b, ok := d.free.Pop(); ok && cap(b) >= len(pkt) {
			buf = b[:len(pkt)]
		} else {
			buf = make([]byte, len(pkt), max(len(pkt), 128))
		}
		copy(buf, pkt)
		stalled := false
		for !d.ring.Push(buf) {
			// Full ring: the pump is behind. Yield until it catches up —
			// the scanner-side backpressure signal.
			if traced && !stalled {
				// One stall span per packet, however long the spin lasts.
				stalled = true
				d.tracer.Span(d.trStream, telemetry.SpanRingStall, d.pushed.Load(), dst, uint64(d.ring.Len()))
			}
			d.stalls.Add(1)
			runtime.Gosched()
		}
		d.pushed.Add(1)
		if traced {
			d.tracer.Span(d.trStream, telemetry.SpanRingEnqueue, d.pushed.Load(), dst, 0)
		}
	}
	return len(pkts), nil
}

// SetTracer attaches the probe-lifecycle tracer: SendBatch then records
// a ring-enqueue span per sampled packet, and a ring-stall span when a
// sampled packet first meets a full ring. Call before the first
// SendBatch; stream is the owning shard's span stream.
func (d *RingDriver) SetTracer(tr *telemetry.Tracer, stream int) {
	d.tracer = tr
	d.trStream = stream
}

// RecvBatch implements Driver, draining the underlying driver directly:
// the receive side needs no ring, the simulator edge (and a real
// socket's kernel buffer) already decouple arrival from the drain.
func (d *RingDriver) RecvBatch(buf [][]byte) [][]byte { return d.under.RecvBatch(buf) }

// SourceAddr implements Driver.
func (d *RingDriver) SourceAddr() ipv6.Addr { return d.under.SourceAddr() }

// Release implements Releaser, forwarding to the underlying driver when
// it recycles buffers.
func (d *RingDriver) Release(pkts [][]byte) {
	if d.rel != nil {
		d.rel.Release(pkts)
	}
}

// Flush implements Flusher: it blocks until every packet accepted by
// SendBatch has been handed to the underlying driver (or failed there).
// The scanner calls it before each receive drain and before emitting a
// checkpoint, so ring contents are never silently in flight across a
// drain window or a resumable state.
func (d *RingDriver) Flush() {
	for d.completed.Load()+d.failed.Load() < d.pushed.Load() {
		runtime.Gosched()
	}
}

// Pending returns the packets accepted but not yet transmitted.
func (d *RingDriver) Pending() int {
	return int(d.pushed.Load() - d.completed.Load() - d.failed.Load())
}

// Failed returns packets dropped after a hard underlying-driver error.
func (d *RingDriver) Failed() uint64 { return d.failed.Load() }

// Stalls returns how many times SendBatch waited on a full ring.
func (d *RingDriver) Stalls() uint64 { return d.stalls.Load() }

// Close stops the pump after it drains the ring. The underlying driver
// is not closed.
func (d *RingDriver) Close() {
	close(d.stop)
	<-d.done
}

// pump is the consumer goroutine: pop a burst, forward it (retrying
// short writes), recycle the buffers.
func (d *RingDriver) pump() {
	defer close(d.done)
	batch := make([][]byte, pumpBurst)
	idle := 0
	for {
		n := d.ring.PopBatch(batch)
		if n == 0 {
			select {
			case <-d.stop:
				if d.ring.Len() == 0 {
					return
				}
				continue // stop requested mid-push: drain first
			default:
			}
			// Empty ring: yield, then back off to a sleep so an idle
			// pipeline does not burn the core the scanner needs.
			if idle++; idle > 256 {
				time.Sleep(50 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
			continue
		}
		idle = 0
		d.forward(batch[:n])
		for i := range batch[:n] {
			// Return buffers for reuse; an overflowing free ring just
			// lets the garbage collector have them.
			if !d.free.Push(batch[i][:0]) {
				break
			}
			batch[i] = nil
		}
		clear(batch[:n])
	}
}

// forward hands one burst to the underlying driver, following the
// SendBatch contract: an errored packet is skipped and counted, a
// transient short write retries the tail.
func (d *RingDriver) forward(pkts [][]byte) {
	for len(pkts) > 0 {
		n, err := d.under.SendBatch(pkts)
		d.completed.Add(uint64(n))
		pkts = pkts[n:]
		if err != nil && len(pkts) > 0 {
			d.failed.Add(1)
			pkts = pkts[1:]
			continue
		}
		if len(pkts) > 0 {
			runtime.Gosched()
		}
	}
}
