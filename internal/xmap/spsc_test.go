package xmap

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// TestSPSCCapacityRounding pins the power-of-two rounding and the minimum
// capacity.
func TestSPSCCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024},
	} {
		if got := NewSPSC[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestSPSCEmptyAndFull exercises the two boundary states: popping empty
// fails without consuming anything, pushing full fails without
// overwriting anything, and both recover after the opposite operation.
func TestSPSCEmptyAndFull(t *testing.T) {
	q := NewSPSC[int](4)
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue succeeded")
	}
	if n := q.PopBatch(make([]int, 4)); n != 0 {
		t.Fatalf("PopBatch on empty queue returned %d", n)
	}
	for i := 0; i < 4; i++ {
		if !q.Push(i) {
			t.Fatalf("Push %d on non-full queue failed", i)
		}
	}
	if q.Push(99) {
		t.Fatal("Push on full queue succeeded")
	}
	if n := q.PushBatch([]int{99, 100}); n != 0 {
		t.Fatalf("PushBatch on full queue took %d", n)
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d after fill, want 4", q.Len())
	}
	// FIFO drain; then the queue is usable again.
	for i := 0; i < 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop after drain succeeded")
	}
	if !q.Push(7) {
		t.Fatal("Push after drain failed")
	}
	if v, ok := q.Pop(); !ok || v != 7 {
		t.Fatalf("Pop = %d,%v, want 7,true", v, ok)
	}
}

// TestSPSCWraparound runs the indices far past the capacity so the
// monotonic counters wrap the buffer many times, verifying FIFO order is
// preserved across the seam.
func TestSPSCWraparound(t *testing.T) {
	q := NewSPSC[int](8)
	next := 0
	for round := 0; round < 1000; round++ {
		// Keep a partial fill so head and tail straddle the wrap point at
		// varying offsets.
		for q.Len() < 5 {
			if !q.Push(next) {
				t.Fatalf("round %d: push failed at len %d", round, q.Len())
			}
			next++
		}
		want := next - q.Len()
		for q.Len() > 2 {
			v, ok := q.Pop()
			if !ok || v != want {
				t.Fatalf("round %d: Pop = %d,%v, want %d,true", round, v, ok, want)
			}
			want++
		}
	}
}

// TestSPSCBatchOps covers PushBatch/PopBatch partial acceptance: a batch
// larger than the free space is truncated, a pop larger than the
// population is truncated, and order is preserved either way.
func TestSPSCBatchOps(t *testing.T) {
	q := NewSPSC[int](8)
	in := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	if n := q.PushBatch(in); n != 8 {
		t.Fatalf("PushBatch took %d, want 8 (capacity)", n)
	}
	dst := make([]int, 3)
	if n := q.PopBatch(dst); n != 3 {
		t.Fatalf("PopBatch = %d, want 3", n)
	}
	for i, v := range dst {
		if v != i {
			t.Fatalf("dst[%d] = %d, want %d", i, v, i)
		}
	}
	// 5 queued, 3 free: a 4-element batch is truncated to 3.
	if n := q.PushBatch([]int{100, 101, 102, 103}); n != 3 {
		t.Fatalf("PushBatch into 3 free slots took %d", n)
	}
	want := []int{3, 4, 5, 6, 7, 100, 101, 102}
	big := make([]int, 16)
	if n := q.PopBatch(big); n != len(want) {
		t.Fatalf("PopBatch = %d, want %d", n, len(want))
	}
	for i, w := range want {
		if big[i] != w {
			t.Fatalf("drain[%d] = %d, want %d", i, big[i], w)
		}
	}
}

// TestSPSCPropertyVsSliceModel drives a single-threaded queue with a
// pseudo-random mix of all four operations and checks every result
// against a plain slice model. Any divergence in acceptance counts,
// values, or Len fails.
func TestSPSCPropertyVsSliceModel(t *testing.T) {
	for _, capAsk := range []int{2, 3, 8, 64} {
		q := NewSPSC[int](capAsk)
		capacity := q.Cap()
		var model []int
		rng := rand.New(rand.NewSource(int64(0xABCD + capAsk)))
		next := 0
		for op := 0; op < 20000; op++ {
			switch rng.Intn(4) {
			case 0: // Push
				ok := q.Push(next)
				wantOK := len(model) < capacity
				if ok != wantOK {
					t.Fatalf("cap %d op %d: Push ok=%v, model ok=%v", capacity, op, ok, wantOK)
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1: // PushBatch
				k := rng.Intn(capacity + 2)
				vs := make([]int, k)
				for i := range vs {
					vs[i] = next + i
				}
				n := q.PushBatch(vs)
				wantN := min(k, capacity-len(model))
				if n != wantN {
					t.Fatalf("cap %d op %d: PushBatch(%d) = %d, model %d", capacity, op, k, n, wantN)
				}
				model = append(model, vs[:n]...)
				next += n
			case 2: // Pop
				v, ok := q.Pop()
				if ok != (len(model) > 0) {
					t.Fatalf("cap %d op %d: Pop ok=%v with model len %d", capacity, op, ok, len(model))
				}
				if ok {
					if v != model[0] {
						t.Fatalf("cap %d op %d: Pop = %d, model %d", capacity, op, v, model[0])
					}
					model = model[1:]
				}
			case 3: // PopBatch
				k := rng.Intn(capacity + 2)
				dst := make([]int, k)
				n := q.PopBatch(dst)
				wantN := min(k, len(model))
				if n != wantN {
					t.Fatalf("cap %d op %d: PopBatch(%d) = %d, model %d", capacity, op, k, n, wantN)
				}
				for i := 0; i < n; i++ {
					if dst[i] != model[i] {
						t.Fatalf("cap %d op %d: PopBatch[%d] = %d, model %d", capacity, op, i, dst[i], model[i])
					}
				}
				model = model[n:]
			}
			if q.Len() != len(model) {
				t.Fatalf("cap %d op %d: Len = %d, model %d", capacity, op, q.Len(), len(model))
			}
		}
	}
}

// TestSPSCTwoGoroutineStress is the concurrency property test: one
// producer pushes a known sequence (mixing Push and PushBatch), one
// consumer pops it (mixing Pop and PopBatch), and the consumer must see
// exactly the sequence 0..total-1 in order — no loss, no duplication, no
// reordering. Run under -race this also proves the ordering handshake
// (buffer write before tail store, head store after buffer read)
// publishes elements safely.
func TestSPSCTwoGoroutineStress(t *testing.T) {
	total := 200000
	if testing.Short() || raceEnabled {
		total = 20000
	}
	q := NewSPSC[int](64)
	var wg sync.WaitGroup
	wg.Add(2)

	go func() { // producer
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		next := 0
		for next < total {
			if rng.Intn(2) == 0 {
				if q.Push(next) {
					next++
				} else {
					// On a single-core host a full ring otherwise burns
					// the whole preemption quantum before the consumer
					// can drain it.
					runtime.Gosched()
				}
				continue
			}
			k := min(rng.Intn(16)+1, total-next)
			vs := make([]int, k)
			for i := range vs {
				vs[i] = next + i
			}
			if n := q.PushBatch(vs); n > 0 {
				next += n
			} else {
				runtime.Gosched()
			}
		}
	}()

	errc := make(chan string, 1)
	go func() { // consumer
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		want := 0
		dst := make([]int, 16)
		for want < total {
			if rng.Intn(2) == 0 {
				v, ok := q.Pop()
				if !ok {
					runtime.Gosched()
					continue
				}
				if v != want {
					select {
					case errc <- "Pop out of order":
					default:
					}
					return
				}
				want++
				continue
			}
			n := q.PopBatch(dst[:rng.Intn(16)+1])
			if n == 0 {
				runtime.Gosched()
				continue
			}
			for i := 0; i < n; i++ {
				if dst[i] != want {
					select {
					case errc <- "PopBatch out of order":
					default:
					}
					return
				}
				want++
			}
		}
	}()

	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after stress: Len = %d", q.Len())
	}
}

// TestSPSCReleasesReferences verifies popped slots are zeroed so the ring
// does not pin consumed elements (buffers) against garbage collection.
func TestSPSCReleasesReferences(t *testing.T) {
	q := NewSPSC[*int](4)
	v := new(int)
	q.Push(v)
	q.Pop()
	for i := range q.buf {
		if q.buf[i] != nil {
			t.Fatalf("slot %d still holds a reference after Pop", i)
		}
	}
	q.Push(v)
	dst := make([]*int, 1)
	q.PopBatch(dst)
	for i := range q.buf {
		if q.buf[i] != nil {
			t.Fatalf("slot %d still holds a reference after PopBatch", i)
		}
	}
}
