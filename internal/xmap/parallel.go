package xmap

import (
	"context"
	"errors"
	"sync"

	"repro/internal/ipv6"
)

// ScanParallel splits the window into shards (Config.Shards is
// overridden) and runs one scanner goroutine per shard against the same
// driver — the multi-threaded operation mode of the real tool. The
// handler receives each responder exactly once across all shards; it is
// invoked from multiple goroutines through an internal lock, so it needs
// no synchronization of its own. The driver must be safe for concurrent
// use (both bundled drivers are).
func ScanParallel(ctx context.Context, cfg Config, drv Driver, shards int, handler Handler) (Stats, error) {
	if shards <= 0 {
		shards = 1
	}
	cfg.Shards = shards

	var (
		mu       sync.Mutex
		seen     = make(map[ipv6.Addr]struct{})
		total    Stats
		firstErr error
	)
	dedupHandler := func(r Response) {
		mu.Lock()
		defer mu.Unlock()
		if _, ok := seen[r.Responder]; ok {
			total.Duplicates++
			return
		}
		seen[r.Responder] = struct{}{}
		if handler != nil {
			handler(r)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		shardCfg := cfg
		shardCfg.ShardIndex = i
		scanner, err := New(shardCfg, drv)
		if err != nil {
			return total, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats, err := scanner.Run(ctx, dedupHandler)
			mu.Lock()
			defer mu.Unlock()
			total.Targets += stats.Targets
			total.Sent += stats.Sent
			total.SendErrors += stats.SendErrors
			total.Received += stats.Received
			total.Invalid += stats.Invalid
			total.Blocked += stats.Blocked
			if stats.Elapsed > total.Elapsed {
				total.Elapsed = stats.Elapsed
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	total.Unique = uint64(len(seen))
	err := firstErr
	mu.Unlock()
	if err != nil && !errors.Is(err, context.Canceled) {
		return total, err
	}
	return total, err
}
