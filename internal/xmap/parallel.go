package xmap

import (
	"context"
	"errors"
	"sync"

	"repro/internal/ipv6"
	"repro/internal/perm"
)

// dedupStripes splits ScanParallel's cross-shard responder dedup into
// independently locked stripes so concurrent scanner goroutines rarely
// contend; a power of two keeps stripe selection a mask.
const dedupStripes = 16

// dedupStripe is one lock-striped slice of the seen-responder set.
type dedupStripe struct {
	mu   sync.Mutex
	seen map[ipv6.Addr]struct{}
	dups uint64
}

// stripeFor maps a responder to its dedup stripe.
func stripeFor(a ipv6.Addr) int {
	u := a.Uint128()
	return int((u.Lo ^ u.Hi ^ u.Lo>>17 ^ u.Hi>>31) & (dedupStripes - 1))
}

// ScanParallel splits the window into shards (Config.Shards is
// overridden) and runs one scanner goroutine per shard against the same
// driver — the multi-threaded operation mode of the real tool. The
// handler receives each responder exactly once across all shards; it is
// invoked from multiple goroutines through an internal lock, so it needs
// no synchronization of its own. The driver must be safe for concurrent
// use (all bundled drivers are); against a sharded deployment, use a
// GroupDriver so the senders pump disjoint engine shards.
//
// Stats.Duplicates sums the per-scanner duplicate counts (a responder
// answering twice within one shard's drains) and the cross-shard ones
// (a responder first seen by another shard).
//
// With Config.CheckpointPath set, every shard's periodic and exit
// checkpoint states are assembled into one file (atomically replaced on
// each update) together with the cross-shard responder set. With
// Config.ResumeFrom set, the checkpoint — digest-verified against this
// configuration — restores every shard's cursor, statistics, dedup and
// retry state, and the handler is never re-invoked for responders the
// interrupted scan already reported.
func ScanParallel(ctx context.Context, cfg Config, drv Driver, shards int, handler Handler) (Stats, error) {
	if shards <= 0 {
		shards = 1
	}
	cfg.Shards = shards
	if cfg.ResumeFrom != nil {
		if err := cfg.ResumeFrom.Verify(cfg, shards); err != nil {
			var zero Stats
			return zero, err
		}
	}
	// Build the permutation once; it is immutable and every shard
	// scanner iterates its own slice of the same cycle.
	if cfg.cycle == nil && cfg.Window.To != 0 {
		if size, ok := cfg.Window.Size(); ok {
			if cyc, err := perm.NewCycle(size, seedOrDefault(cfg.Seed)); err == nil {
				cfg.cycle = cyc
			}
			// On error, fall through: New reports it with context.
		}
	}

	var stripes [dedupStripes]dedupStripe
	for i := range stripes {
		stripes[i].seen = make(map[ipv6.Addr]struct{})
	}
	if cfg.ResumeFrom != nil {
		// Preseed the cross-shard dedup with responders the interrupted
		// scan already reported: re-probed targets must not re-emit, and
		// the final Unique count stays cumulative.
		for _, a := range cfg.ResumeFrom.Responders {
			stripes[stripeFor(a)].seen[a] = struct{}{}
		}
	}
	var ckpt *Checkpointer
	if cfg.CheckpointPath != "" {
		ckpt = NewCheckpointer(cfg.CheckpointPath, ConfigDigest(cfg, shards), shards)
		ckpt.SetResponders(func() []ipv6.Addr {
			var out []ipv6.Addr
			for i := range stripes {
				st := &stripes[i]
				st.mu.Lock()
				for a := range st.seen {
					out = append(out, a)
				}
				st.mu.Unlock()
			}
			return out
		})
		if cfg.ResumeFrom != nil {
			// Carry forward states of shards that may finish before their
			// first fresh checkpoint (or that were already done).
			for _, st := range cfg.ResumeFrom.States {
				ckpt.Update(st)
			}
		}
	}
	var (
		mu        sync.Mutex // guards total / firstErr
		handlerMu sync.Mutex // serializes handler invocations
		total     Stats
		firstErr  error
	)
	dedupHandler := func(r Response) {
		st := &stripes[stripeFor(r.Responder)]
		st.mu.Lock()
		if _, ok := st.seen[r.Responder]; ok {
			st.dups++
			st.mu.Unlock()
			return
		}
		st.seen[r.Responder] = struct{}{}
		st.mu.Unlock()
		if handler != nil {
			handlerMu.Lock()
			handler(r)
			handlerMu.Unlock()
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		shardCfg := cfg
		shardCfg.ShardIndex = i
		// Each shard writes its own tracer span stream: single-writer
		// streams keep the exported trace deterministic under concurrency.
		shardCfg.TraceStream = i
		shardCfg.CheckpointPath = ""
		shardCfg.ResumeFrom = nil
		if cfg.ResumeFrom != nil {
			if st, ok := cfg.ResumeFrom.StateFor(i); ok {
				stCopy := *st
				shardCfg.Resume = &stCopy
			}
		}
		if userSink := cfg.OnCheckpoint; ckpt != nil || userSink != nil {
			sink := ckpt
			shardCfg.OnCheckpoint = func(st ShardState) {
				if sink != nil {
					sink.Update(st)
				}
				if userSink != nil {
					userSink(st)
				}
			}
		}
		// With RingSize set, each shard gets its own transmission ring in
		// front of the shared driver: the shard's scanner goroutine
		// generates probes while the ring's pump goroutine pushes them
		// into the packet layer, and the scanner's pre-drain Flush keeps
		// checkpoint and dedup semantics identical to direct sends.
		shardDrv := drv
		var ring *RingDriver
		if cfg.RingSize > 0 {
			ring = NewRingDriver(drv, cfg.RingSize)
			if cfg.Tracer != nil {
				ring.SetTracer(cfg.Tracer, i)
			}
			shardDrv = ring
		}
		scanner, err := New(shardCfg, shardDrv)
		if err != nil {
			if ring != nil {
				ring.Close()
			}
			return total, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats, err := scanner.Run(ctx, dedupHandler)
			if ring != nil {
				// Close drains anything still queued; transmissions the
				// underlying driver then rejected surface as send errors
				// (they were already counted sent at ring acceptance, the
				// TX-queue analogue).
				ring.Close()
				stats.SendErrors += ring.Failed()
			}
			mu.Lock()
			defer mu.Unlock()
			total.Merge(stats)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}()
	}
	wg.Wait()

	for i := range stripes {
		total.Unique += uint64(len(stripes[i].seen))
		total.Duplicates += stripes[i].dups
	}
	mu.Lock()
	if ckpt != nil {
		// Rewrite once more so the file's responder set includes every
		// shard's final emissions, and surface any write failure.
		if err := ckpt.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	err := firstErr
	mu.Unlock()
	if err != nil && !errors.Is(err, context.Canceled) {
		return total, err
	}
	return total, err
}
