package xmap

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/ipv6"
	"repro/internal/uint128"
)

// ShardState is one scanner's resumable position: the permutation
// cursor, cumulative statistics, and the serialized dedup and retry
// state. A scanner emits it through Config.OnCheckpoint and accepts it
// back through Config.Resume.
type ShardState struct {
	Shard     int
	Done      bool // the shard finished its permutation walk
	Consumed  uint128.Uint128
	Stats     Stats
	DedupKind byte
	Dedup     []byte
	Retry     []byte
}

// Checkpoint is a whole scan's crash-recovery state: a digest binding it
// to the scan configuration, the cross-shard responder set already
// reported to the handler, and every shard's state.
type Checkpoint struct {
	Digest     [32]byte
	Shards     int
	Responders []ipv6.Addr
	States     []ShardState
}

// ConfigDigest fingerprints the scan parameters a checkpoint depends on:
// window, seed, probe module, shard count and dedup implementation.
// Operational knobs (rate, drain cadence, retry depth) may change across
// a resume; these may not, or the permutation, validation values and
// dedup state would silently mismatch.
func ConfigDigest(cfg Config, shards int) [32]byte {
	if shards <= 0 {
		shards = 1
	}
	probe := cfg.Probe
	if probe == nil {
		probe = &ICMPEchoProbe{}
	}
	h := sha256.New()
	h.Write([]byte("xmap-checkpoint-v1\x00"))
	base := cfg.Window.Base.Addr().Bytes()
	h.Write(base[:])
	var meta [16]byte
	binary.BigEndian.PutUint32(meta[0:], uint32(cfg.Window.Base.Bits()))
	binary.BigEndian.PutUint32(meta[4:], uint32(cfg.Window.To))
	binary.BigEndian.PutUint32(meta[8:], uint32(shards))
	if cfg.DedupExact {
		meta[12] = 1
	}
	h.Write(meta[:])
	h.Write(seedOrDefault(cfg.Seed))
	h.Write([]byte{0})
	h.Write([]byte(probe.Name()))
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Checkpoint wire format: magic+version, digest, shard count, responder
// list, shard states. Every variable-length field is bounded against the
// remaining input before allocation, so a corrupt file errors instead of
// exhausting memory.
const (
	checkpointMagic  = 0x58435001 // "XCP" 0x01
	statsFieldCount  = 15
	maxStateBlobSize = 1 << 31
)

func appendStats(dst []byte, s Stats) []byte {
	for _, v := range []uint64{
		s.Targets, s.Sent, s.SendErrors, s.Received, s.Invalid, s.Duplicates,
		s.Unique, s.Blocked, s.Retried, s.RetryDropped, s.RetryExhausted,
		s.RetryAbandoned, s.RateUp, s.RateDown, uint64(s.Elapsed),
	} {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return dst
}

// Marshal serializes the checkpoint.
func (c *Checkpoint) Marshal() []byte {
	out := binary.BigEndian.AppendUint32(nil, checkpointMagic)
	out = append(out, c.Digest[:]...)
	out = binary.BigEndian.AppendUint32(out, uint32(c.Shards))
	out = binary.BigEndian.AppendUint32(out, uint32(len(c.Responders)))
	for _, a := range c.Responders {
		b := a.Bytes()
		out = append(out, b[:]...)
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(c.States)))
	for i := range c.States {
		st := &c.States[i]
		out = binary.BigEndian.AppendUint32(out, uint32(st.Shard))
		if st.Done {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		out = binary.BigEndian.AppendUint64(out, st.Consumed.Hi)
		out = binary.BigEndian.AppendUint64(out, st.Consumed.Lo)
		out = appendStats(out, st.Stats)
		out = append(out, st.DedupKind)
		out = binary.BigEndian.AppendUint32(out, uint32(len(st.Dedup)))
		out = append(out, st.Dedup...)
		out = binary.BigEndian.AppendUint32(out, uint32(len(st.Retry)))
		out = append(out, st.Retry...)
	}
	return out
}

// ckptReader is a bounds-checked cursor over checkpoint bytes.
type ckptReader struct {
	data []byte
	err  error
}

func (r *ckptReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("xmap: checkpoint: "+format, args...)
	}
}

func (r *ckptReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data) {
		r.fail("truncated: need %d bytes, have %d", n, len(r.data))
		return nil
	}
	out := r.data[:n]
	r.data = r.data[n:]
	return out
}

func (r *ckptReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *ckptReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *ckptReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *ckptReader) blob(what string) []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if uint64(n) > maxStateBlobSize || int(n) > len(r.data) {
		r.fail("%s blob of %d bytes exceeds remaining %d", what, n, len(r.data))
		return nil
	}
	return append([]byte(nil), r.take(int(n))...)
}

func (r *ckptReader) stats() Stats {
	var f [statsFieldCount]uint64
	for i := range f {
		f[i] = r.u64()
	}
	return Stats{
		Targets: f[0], Sent: f[1], SendErrors: f[2], Received: f[3],
		Invalid: f[4], Duplicates: f[5], Unique: f[6], Blocked: f[7],
		Retried: f[8], RetryDropped: f[9], RetryExhausted: f[10],
		RetryAbandoned: f[11], RateUp: f[12], RateDown: f[13],
		Elapsed: time.Duration(f[14]),
	}
}

// UnmarshalCheckpoint decodes a checkpoint, rejecting malformed,
// truncated or version-skewed input with an error (never a panic).
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	r := &ckptReader{data: data}
	if magic := r.u32(); r.err == nil && magic != checkpointMagic {
		return nil, fmt.Errorf("xmap: checkpoint: bad magic/version %#08x", magic)
	}
	c := &Checkpoint{}
	copy(c.Digest[:], r.take(32))
	c.Shards = int(r.u32())
	if r.err == nil && (c.Shards < 1 || c.Shards > 1<<16) {
		return nil, fmt.Errorf("xmap: checkpoint: shard count %d out of range", c.Shards)
	}
	nResp := r.u32()
	if r.err == nil && uint64(nResp)*16 > uint64(len(r.data)) {
		return nil, fmt.Errorf("xmap: checkpoint: %d responders exceed remaining %d bytes", nResp, len(r.data))
	}
	for i := uint32(0); i < nResp && r.err == nil; i++ {
		c.Responders = append(c.Responders, ipv6.AddrFromBytes(r.take(16)))
	}
	nStates := r.u32()
	if r.err == nil && int(nStates) > c.Shards {
		return nil, fmt.Errorf("xmap: checkpoint: %d states for %d shards", nStates, c.Shards)
	}
	seen := map[int]bool{}
	for i := uint32(0); i < nStates && r.err == nil; i++ {
		st := ShardState{Shard: int(r.u32())}
		st.Done = r.u8() != 0
		st.Consumed = uint128.New(r.u64(), r.u64())
		st.Stats = r.stats()
		st.DedupKind = r.u8()
		st.Dedup = r.blob("dedup")
		st.Retry = r.blob("retry")
		if r.err != nil {
			break
		}
		if st.Shard < 0 || st.Shard >= c.Shards {
			return nil, fmt.Errorf("xmap: checkpoint: state for shard %d of %d", st.Shard, c.Shards)
		}
		if seen[st.Shard] {
			return nil, fmt.Errorf("xmap: checkpoint: duplicate state for shard %d", st.Shard)
		}
		seen[st.Shard] = true
		c.States = append(c.States, st)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("xmap: checkpoint: %d trailing bytes", len(r.data))
	}
	return c, nil
}

// StateFor returns the state recorded for a shard index, if present.
func (c *Checkpoint) StateFor(shard int) (*ShardState, bool) {
	for i := range c.States {
		if c.States[i].Shard == shard {
			return &c.States[i], true
		}
	}
	return nil, false
}

// WriteFile atomically persists the checkpoint: the bytes land in a
// temporary file in the same directory and replace path with a rename,
// so a crash mid-write leaves the previous checkpoint intact.
func (c *Checkpoint) WriteFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("xmap: checkpoint write: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(c.Marshal()); err != nil {
		tmp.Close()
		return fmt.Errorf("xmap: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("xmap: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("xmap: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("xmap: checkpoint rename: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and decodes a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalCheckpoint(data)
}

// Verify checks a checkpoint against the scan configuration it is about
// to resume.
func (c *Checkpoint) Verify(cfg Config, shards int) error {
	if shards <= 0 {
		shards = 1
	}
	if c.Shards != shards {
		return fmt.Errorf("xmap: checkpoint taken with %d shards, resuming with %d", c.Shards, shards)
	}
	if want := ConfigDigest(cfg, shards); c.Digest != want {
		return fmt.Errorf("xmap: checkpoint config digest mismatch (window, seed, probe, shards or dedup changed)")
	}
	return nil
}

// Checkpointer accumulates per-shard states and persists the assembled
// checkpoint on every update — the file sink behind ScanParallel's
// Config.CheckpointPath. Safe for concurrent use by shard goroutines.
type Checkpointer struct {
	mu         sync.Mutex
	path       string
	digest     [32]byte
	shards     int
	states     map[int]ShardState
	responders func() []ipv6.Addr
	writeErr   error
}

// NewCheckpointer creates a checkpointer writing to path.
func NewCheckpointer(path string, digest [32]byte, shards int) *Checkpointer {
	if shards <= 0 {
		shards = 1
	}
	return &Checkpointer{path: path, digest: digest, shards: shards, states: map[int]ShardState{}}
}

// SetResponders installs the provider of the cross-shard responder
// snapshot (ScanParallel points it at its dedup stripes).
func (c *Checkpointer) SetResponders(fn func() []ipv6.Addr) {
	c.mu.Lock()
	c.responders = fn
	c.mu.Unlock()
}

// Update records one shard's state and rewrites the checkpoint file.
func (c *Checkpointer) Update(st ShardState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.states[st.Shard] = st
	if err := c.flushLocked(); err != nil && c.writeErr == nil {
		c.writeErr = err
	}
}

// Flush rewrites the checkpoint file from the recorded states.
func (c *Checkpointer) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil && c.writeErr == nil {
		c.writeErr = err
	}
	return c.writeErr
}

// Err returns the first write error, if any.
func (c *Checkpointer) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeErr
}

func (c *Checkpointer) flushLocked() error {
	ck := Checkpoint{Digest: c.digest, Shards: c.shards}
	if c.responders != nil {
		ck.Responders = c.responders()
	}
	for i := 0; i < c.shards; i++ {
		if st, ok := c.states[i]; ok {
			ck.States = append(ck.States, st)
		}
	}
	return ck.WriteFile(c.path)
}
