package xmap

import (
	"context"
	"sync"
	"testing"

	"repro/internal/ipv6"
)

// memDriver is a concurrency-safe recording driver for ring tests. It
// can inject hard failures (failEvery) and short writes (maxPerCall).
type memDriver struct {
	mu         sync.Mutex
	pkts       [][]byte
	maxPerCall int
	failEvery  int
	seen       int
	failed     int
}

func (m *memDriver) SendBatch(pkts [][]byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	limit := len(pkts)
	if m.maxPerCall > 0 && limit > m.maxPerCall {
		limit = m.maxPerCall
	}
	for i := 0; i < limit; i++ {
		m.seen++
		if m.failEvery > 0 && m.seen%m.failEvery == 0 {
			m.failed++
			return i, errInjected
		}
		cp := make([]byte, len(pkts[i]))
		copy(cp, pkts[i])
		m.pkts = append(m.pkts, cp)
	}
	return limit, nil
}
func (m *memDriver) RecvBatch(buf [][]byte) [][]byte { return buf }
func (m *memDriver) SourceAddr() ipv6.Addr           { return ipv6.Addr{} }

func (m *memDriver) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pkts)
}

// TestRingDriverDeliversInOrder: packets pushed through the ring arrive
// at the underlying driver complete and in order, and Flush is the
// barrier that makes them all visible.
func TestRingDriverDeliversInOrder(t *testing.T) {
	under := &memDriver{}
	rd := NewRingDriver(under, 8)
	defer rd.Close()

	const total = 500
	for i := 0; i < total; i++ {
		pkt := []byte{byte(i), byte(i >> 8)}
		if n, err := rd.SendBatch([][]byte{pkt}); n != 1 || err != nil {
			t.Fatalf("SendBatch = (%d, %v)", n, err)
		}
	}
	rd.Flush()
	if rd.Pending() != 0 {
		t.Fatalf("Pending = %d after Flush", rd.Pending())
	}
	under.mu.Lock()
	defer under.mu.Unlock()
	if len(under.pkts) != total {
		t.Fatalf("underlying driver saw %d packets, want %d", len(under.pkts), total)
	}
	for i, p := range under.pkts {
		if int(p[0])|int(p[1])<<8 != i {
			t.Fatalf("packet %d out of order: got %v", i, p)
		}
	}
}

// TestRingDriverCopiesPackets: the caller may overwrite its slice the
// moment SendBatch returns; the ring must have copied.
func TestRingDriverCopiesPackets(t *testing.T) {
	under := &memDriver{}
	rd := NewRingDriver(under, 8)
	defer rd.Close()

	pkt := []byte{42}
	rd.SendBatch([][]byte{pkt})
	pkt[0] = 99 // caller reuses the buffer immediately
	rd.Flush()
	under.mu.Lock()
	defer under.mu.Unlock()
	if len(under.pkts) != 1 || under.pkts[0][0] != 42 {
		t.Fatalf("underlying saw %v, want the pre-overwrite copy [42]", under.pkts)
	}
}

// TestRingDriverRetriesShortWrites: the pump follows the same SendBatch
// contract as the scanner — a short-writing underlying driver costs
// nothing but extra calls.
func TestRingDriverRetriesShortWrites(t *testing.T) {
	under := &memDriver{maxPerCall: 3}
	rd := NewRingDriver(under, 64)
	defer rd.Close()

	batch := make([][]byte, 40)
	for i := range batch {
		batch[i] = []byte{byte(i)}
	}
	rd.SendBatch(batch)
	rd.Flush()
	if got := under.count(); got != 40 {
		t.Fatalf("underlying saw %d packets, want 40", got)
	}
	if rd.Failed() != 0 {
		t.Fatalf("Failed = %d on a short-writing (not erroring) driver", rd.Failed())
	}
}

// TestRingDriverCountsHardFailures: a hard underlying error drops
// exactly the failed packet; Failed reports it and Flush still
// terminates (completed + failed catches up with pushed).
func TestRingDriverCountsHardFailures(t *testing.T) {
	under := &memDriver{failEvery: 7}
	rd := NewRingDriver(under, 64)
	defer rd.Close()

	batch := make([][]byte, 50)
	for i := range batch {
		batch[i] = []byte{byte(i)}
	}
	rd.SendBatch(batch)
	rd.Flush()
	if rd.Pending() != 0 {
		t.Fatalf("Pending = %d after Flush", rd.Pending())
	}
	wantFailed := uint64(50 / 7)
	if rd.Failed() != wantFailed {
		t.Errorf("Failed = %d, want %d", rd.Failed(), wantFailed)
	}
	if got := under.count(); uint64(got)+rd.Failed() != 50 {
		t.Errorf("delivered %d + failed %d != 50 pushed", got, rd.Failed())
	}
}

// TestRingDriverCloseDrains: packets queued when Close is called are
// flushed, not dropped.
func TestRingDriverCloseDrains(t *testing.T) {
	under := &memDriver{}
	rd := NewRingDriver(under, 1024)
	batch := make([][]byte, 300)
	for i := range batch {
		batch[i] = []byte{byte(i)}
	}
	rd.SendBatch(batch)
	rd.Close() // no Flush first: Close itself must drain
	if got := under.count(); got != 300 {
		t.Fatalf("underlying saw %d packets after Close, want 300", got)
	}
}

// TestRingDriverBackpressure: a ring smaller than the burst forces
// SendBatch to wait on the pump; everything still arrives, and the stall
// counter records the backpressure.
func TestRingDriverBackpressure(t *testing.T) {
	under := &memDriver{maxPerCall: 2}
	rd := NewRingDriver(under, 4)
	defer rd.Close()

	batch := make([][]byte, 200)
	for i := range batch {
		batch[i] = []byte{byte(i)}
	}
	rd.SendBatch(batch)
	rd.Flush()
	if got := under.count(); got != 200 {
		t.Fatalf("underlying saw %d packets, want 200", got)
	}
}

// TestScanThroughRingMatchesDirect: end to end, a scan through a
// RingDriver-wrapped simulator finds exactly what the direct scan finds.
func TestScanThroughRingMatchesDirect(t *testing.T) {
	fDirect := buildFixture(t)
	statsDirect, direct := runScan(t,
		Config{Window: window(t, fDirect), Seed: []byte("ring"), DedupExact: true}, fDirect.drv)

	fRing := buildFixture(t)
	rd := NewRingDriver(fRing.drv, 256)
	statsRing, ringed := runScan(t,
		Config{Window: window(t, fRing), Seed: []byte("ring"), DedupExact: true}, rd)
	rd.Close()

	if statsRing.Sent != statsDirect.Sent {
		t.Errorf("sent: ring %d, direct %d", statsRing.Sent, statsDirect.Sent)
	}
	if statsRing.Unique != statsDirect.Unique {
		t.Errorf("unique: ring %d, direct %d", statsRing.Unique, statsDirect.Unique)
	}
	if rd.Failed() != 0 {
		t.Errorf("ring failed %d packets against a lossless simulator", rd.Failed())
	}
	set := func(rs []Response) map[ipv6.Addr]bool {
		m := map[ipv6.Addr]bool{}
		for _, r := range rs {
			m[r.Responder] = true
		}
		return m
	}
	a, b := set(direct), set(ringed)
	if len(a) != len(b) {
		t.Fatalf("responder sets differ: direct %d, ring %d", len(a), len(b))
	}
	for addr := range a {
		if !b[addr] {
			t.Errorf("ring scan missed %s", addr)
		}
	}
}

// TestScanParallelWithRings: the RingSize config knob wires a ring per
// shard; results match the ringless sharded scan.
func TestScanParallelWithRings(t *testing.T) {
	fPlain := buildFixture(t)
	statsPlain, err := ScanParallel(context.Background(),
		Config{Window: window(t, fPlain), Seed: []byte("pr")}, fPlain.drv, 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	fRing := buildFixture(t)
	statsRing, err := ScanParallel(context.Background(),
		Config{Window: window(t, fRing), Seed: []byte("pr"), RingSize: 64}, fRing.drv, 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	if statsRing.Sent != statsPlain.Sent {
		t.Errorf("sent: ring %d, plain %d", statsRing.Sent, statsPlain.Sent)
	}
	if statsRing.Unique != statsPlain.Unique {
		t.Errorf("unique: ring %d, plain %d", statsRing.Unique, statsPlain.Unique)
	}
	if statsRing.SendErrors != 0 {
		t.Errorf("send errors = %d against a lossless simulator", statsRing.SendErrors)
	}
}
