package xmap

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestTelemetryMatchesStats: the telemetry counters are a second,
// independently maintained account of a scan — on a clean fixture they
// must agree with Stats slot for slot, and the flight recorder must
// carry one probe event per target.
func TestTelemetryMatchesStats(t *testing.T) {
	f := buildFixture(t)
	reg := telemetry.New(telemetry.Options{Shards: 1, TraceDepth: 2048})
	f.drv.RegisterTelemetry(reg)
	stats, results := runScan(t, Config{
		Window: window(t, f), Seed: []byte("tel"), Telemetry: reg,
	}, f.drv)

	snap := reg.Snapshot()
	for _, chk := range []struct {
		counter telemetry.Counter
		want    uint64
	}{
		{telemetry.ScanTargets, stats.Targets},
		{telemetry.ScanSent, stats.Sent},
		{telemetry.ScanSendErrors, stats.SendErrors},
		{telemetry.ScanReceived, stats.Received},
		{telemetry.ScanInvalid, stats.Invalid},
		{telemetry.ScanDuplicates, stats.Duplicates},
		{telemetry.ScanUnique, stats.Unique},
		{telemetry.ScanBlocked, stats.Blocked},
		{telemetry.ScanRetried, stats.Retried},
		{telemetry.ScanRateUp, stats.RateUp},
		{telemetry.ScanRateDown, stats.RateDown},
	} {
		if got := snap.Counters[chk.counter.String()]; got != chk.want {
			t.Errorf("counter %s = %d, stats say %d", chk.counter, got, chk.want)
		}
	}
	if stats.Unique != uint64(len(results)) {
		t.Fatalf("fixture sanity: Unique %d != %d results", stats.Unique, len(results))
	}
	// The engine collector registered by the driver contributes the
	// simulated network's totals to the same snapshot.
	if snap.Counters[telemetry.SimTransmissions.String()] == 0 {
		t.Error("sim.transmissions = 0: engine collector not folded in")
	}
	if snap.Counters[telemetry.SimBytes.String()] == 0 {
		t.Error("sim.bytes = 0")
	}
	// Every probe left a flight-recorder event carrying its target.
	var probes, replies uint64
	for _, e := range reg.Events() {
		switch e.Kind {
		case telemetry.EvProbeSent:
			probes++
			if e.Addr == ([16]byte{}) {
				t.Error("probe event without a target address")
			}
		case telemetry.EvReply, telemetry.EvICMPError:
			replies++
		}
	}
	if probes != stats.Targets {
		t.Errorf("%d probe events for %d targets", probes, stats.Targets)
	}
	if replies != stats.Received {
		t.Errorf("%d reply events for %d received responses", replies, stats.Received)
	}
	// The hop-limit histogram saw every validated response.
	hh := snap.Histograms[telemetry.HistReplyHopLimit.String()]
	if hh == nil || hh.Count != stats.Received {
		t.Errorf("hop-limit histogram = %+v, want count %d", hh, stats.Received)
	}
	if snap.Gauges[telemetry.GaugeWindow.String()] == 0 {
		t.Error("scan.window gauge never set")
	}
}

// TestScanUnaffectedByTelemetry: attaching a registry must not change
// what a seeded scan finds — instrumentation observes, never steers.
func TestScanUnaffectedByTelemetry(t *testing.T) {
	f1 := buildFixture(t)
	bare, bareResults := runScan(t, Config{Window: window(t, f1), Seed: []byte("same")}, f1.drv)
	f2 := buildFixture(t)
	reg := telemetry.New(telemetry.Options{Shards: 1})
	inst, instResults := runScan(t,
		Config{Window: window(t, f2), Seed: []byte("same"), Telemetry: reg}, f2.drv)
	if bare.Sent != inst.Sent || bare.Received != inst.Received || bare.Unique != inst.Unique {
		t.Errorf("stats diverge with telemetry attached: %+v vs %+v", bare, inst)
	}
	if len(bareResults) != len(instResults) {
		t.Fatalf("result counts diverge: %d vs %d", len(bareResults), len(instResults))
	}
	for i := range bareResults {
		if bareResults[i].Responder != instResults[i].Responder {
			t.Errorf("result %d diverges: %s vs %s", i, bareResults[i].Responder, instResults[i].Responder)
		}
	}
}

// TestStatsMerge: counts sum, Elapsed takes the slowest shard, and
// Unique stays untouched (aggregators count uniqueness across their own
// cross-shard dedup).
func TestStatsMerge(t *testing.T) {
	a := Stats{Targets: 10, Sent: 12, Received: 5, Duplicates: 1, Unique: 4,
		Retried: 2, RateUp: 1, Elapsed: 3 * time.Second}
	b := Stats{Targets: 20, Sent: 21, Received: 9, Duplicates: 2, Unique: 7,
		Retried: 1, RateDown: 2, Elapsed: 2 * time.Second}
	a.Merge(b)
	if a.Targets != 30 || a.Sent != 33 || a.Received != 14 || a.Duplicates != 3 ||
		a.Retried != 3 || a.RateUp != 1 || a.RateDown != 2 {
		t.Errorf("merged counts wrong: %+v", a)
	}
	if a.Unique != 4 {
		t.Errorf("Unique = %d after merge, want the receiver's own 4", a.Unique)
	}
	if a.Elapsed != 3*time.Second {
		t.Errorf("Elapsed = %v, want the max 3s", a.Elapsed)
	}
}
