package xmap

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ipv6"
	"repro/internal/netsim"
	"repro/internal/uint128"
	"repro/internal/wire"
)

// scanFixture is a miniature ISP: block 2001:db8::/56, /64 sub-prefixes,
// a few CPEs, one with a LAN delegation elsewhere in the block.
type scanFixture struct {
	eng   *netsim.Engine
	edge  *netsim.Edge
	drv   *SimDriver
	wans  []ipv6.Addr // CPE WAN addresses
	block ipv6.Prefix
}

const fixtureCPEs = 5

func buildFixture(t *testing.T) *scanFixture {
	t.Helper()
	f := &scanFixture{
		eng:   netsim.New(42),
		block: ipv6.MustParsePrefix("2001:db8::/56"),
	}
	f.edge = netsim.NewEdge("scanner", ipv6.MustParseAddr("2001:beef::100"))
	core := netsim.NewRouter("core", netsim.ErrorPolicy{})
	isp := netsim.NewISPRouter("isp", f.block, netsim.ErrorPolicy{})

	coreScan := core.AddIface(ipv6.MustParseAddr("2001:beef::1"), "core:scan")
	coreISP := core.AddIface(ipv6.MustParseAddr("2001:feed::1"), "core:isp")
	ispUp := isp.AddIface(ipv6.MustParseAddr("2001:feed::2"), "isp:up")
	f.eng.Connect(f.edge.Iface(), coreScan, 0)
	f.eng.Connect(coreISP, ispUp, 0)
	core.AddRoute(f.block, coreISP)
	core.AddRoute(ipv6.MustParsePrefix("2001:beef::/64"), coreScan)
	isp.SetUpstream(ispUp)

	// CPE i: WAN /64 at sub-prefix index i (0..4); CPE 0 additionally
	// holds a LAN /64 delegated at index 200.
	for i := 0; i < fixtureCPEs; i++ {
		wanPrefix, err := f.block.Sub(64, uint128.From64(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		wanAddr := ipv6.SLAAC(wanPrefix, 0x0211_22ff_fe00_0000|uint64(i))
		cfg := netsim.CPEConfig{
			Name:      "cpe",
			WANAddr:   wanAddr,
			WANPrefix: wanPrefix,
		}
		if i == 0 {
			lan, err := f.block.Sub(64, uint128.From64(200))
			if err != nil {
				t.Fatal(err)
			}
			cfg.Delegated = lan
		}
		cpe := netsim.NewCPE(cfg)
		down := isp.AddIface(ipv6.SLAAC(wanPrefix, 1), "isp:down")
		f.eng.Connect(down, cpe.WAN(), 0)
		if err := isp.Delegate(wanPrefix, down); err != nil {
			t.Fatal(err)
		}
		if cfg.Delegated.Bits() > 0 {
			if err := isp.Delegate(cfg.Delegated, down); err != nil {
				t.Fatal(err)
			}
		}
		f.wans = append(f.wans, wanAddr)
	}
	f.drv = NewSimDriver(f.eng, f.edge)
	return f
}

func window(t *testing.T, f *scanFixture) ipv6.Window {
	t.Helper()
	w, err := ipv6.NewWindow(f.block, 64)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func runScan(t *testing.T, cfg Config, drv Driver) (Stats, []Response) {
	t.Helper()
	s, err := New(cfg, drv)
	if err != nil {
		t.Fatal(err)
	}
	var results []Response
	stats, err := s.Run(context.Background(), func(r Response) { results = append(results, r) })
	if err != nil {
		t.Fatal(err)
	}
	return stats, results
}

func TestScanDiscoversAllCPEs(t *testing.T) {
	f := buildFixture(t)
	stats, results := runScan(t, Config{Window: window(t, f), Seed: []byte("s1")}, f.drv)

	if stats.Sent != 256 {
		t.Errorf("sent = %d, want 256", stats.Sent)
	}
	found := map[ipv6.Addr]Response{}
	for _, r := range results {
		found[r.Responder] = r
	}
	for _, wan := range f.wans {
		r, ok := found[wan]
		if !ok {
			t.Errorf("CPE %s not discovered", wan)
			continue
		}
		if r.Kind != KindDestUnreach {
			t.Errorf("CPE %s found via %s", wan, r.Kind)
		}
	}
	// The ISP router's unassigned-space errors dedup to one responder.
	ispAddr := ipv6.MustParseAddr("2001:feed::2")
	if _, ok := found[ispAddr]; !ok {
		t.Error("ISP router not among responders")
	}
	// CPEs + ISP router; nothing else (LAN delegation answered by CPE 0's WAN).
	if len(found) != fixtureCPEs+1 {
		t.Errorf("unique responders = %d, want %d", len(found), fixtureCPEs+1)
	}
	if stats.Unique != uint64(len(results)) {
		t.Errorf("stats.Unique = %d, results = %d", stats.Unique, len(results))
	}
	if stats.Received != 256 {
		t.Errorf("received = %d, want 256 (every probe answered)", stats.Received)
	}
}

func TestSameDiffClassification(t *testing.T) {
	f := buildFixture(t)
	_, results := runScan(t, Config{Window: window(t, f), Seed: []byte("s2")}, f.drv)
	var sameCPE, diffCPE int
	for _, r := range results {
		if r.Responder != f.wans[0] {
			continue
		}
		if r.SamePrefix64() {
			sameCPE++
		} else {
			diffCPE++
		}
	}
	// CPE 0 is discovered once (dedup): either by its WAN /64 probe
	// (same) or its LAN delegation probe (diff), whichever the
	// permutation reached first.
	if sameCPE+diffCPE != 1 {
		t.Errorf("CPE0 discovered %d times", sameCPE+diffCPE)
	}
}

func TestScanDeterministicAcrossRuns(t *testing.T) {
	f1 := buildFixture(t)
	_, r1 := runScan(t, Config{Window: window(t, f1), Seed: []byte("same-seed")}, f1.drv)
	f2 := buildFixture(t)
	_, r2 := runScan(t, Config{Window: window(t, f2), Seed: []byte("same-seed")}, f2.drv)
	if len(r1) != len(r2) {
		t.Fatalf("runs differ: %d vs %d responders", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Responder != r2[i].Responder || r1[i].ProbeDst != r2[i].ProbeDst {
			t.Fatalf("result %d differs", i)
		}
	}
}

// countingDriver records how often each probe destination is sent and
// never produces responses; it lets shard-coverage properties run over
// windows far larger than any simulated topology.
type countingDriver struct {
	counts map[ipv6.Addr]int
}

func (d *countingDriver) Send(pkt []byte) error {
	if len(pkt) >= 40 && pkt[0]>>4 == 6 {
		d.counts[ipv6.AddrFrom128(uint128.FromBytes(pkt[24:40]))]++
	}
	return nil
}
func (d *countingDriver) Recv() [][]byte        { return nil }
func (d *countingDriver) SourceAddr() ipv6.Addr { return ipv6.MustParseAddr("2001:beef::100") }

// TestShardsTogetherCoverSpace is a property test: for random window
// widths and shard counts, the shards' target sets must partition the
// window — together complete (every address probed) and pairwise
// disjoint (no address probed twice).
func TestShardsTogetherCoverSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5ba2d))
	base := ipv6.MustParsePrefix("2001:db8::/48")
	for iter := 0; iter < 24; iter++ {
		width := 1 + rng.Intn(10)
		shards := 1 + rng.Intn(7)
		seed := []byte(fmt.Sprintf("shard-seed-%d", iter))
		w, err := ipv6.NewWindow(base, base.Bits()+width)
		if err != nil {
			t.Fatal(err)
		}
		counter := &countingDriver{counts: map[ipv6.Addr]int{}}
		drv := AdaptPacketDriver(counter)
		var sentTotal uint64
		for shard := 0; shard < shards; shard++ {
			stats, _ := runScan(t, Config{
				Window: w, Seed: seed,
				ShardIndex: shard, Shards: shards,
			}, drv)
			sentTotal += stats.Sent
		}
		space := uint64(1) << width
		if sentTotal != space {
			t.Errorf("width=%d shards=%d: sent %d total probes, want %d", width, shards, sentTotal, space)
		}
		if uint64(len(counter.counts)) != space {
			t.Errorf("width=%d shards=%d: %d distinct targets, want %d (incomplete cover)",
				width, shards, len(counter.counts), space)
		}
		for a, n := range counter.counts {
			if n != 1 {
				t.Errorf("width=%d shards=%d: target %s probed %d times (overlapping shards)",
					width, shards, a, n)
			}
		}
	}

	// End to end: sharded scans over the live fixture still find every
	// responder exactly once across shards.
	all := map[ipv6.Addr]bool{}
	var sentTotal uint64
	for shard := 0; shard < 4; shard++ {
		f := buildFixture(t)
		stats, results := runScan(t, Config{
			Window: window(t, f), Seed: []byte("shard-seed"),
			ShardIndex: shard, Shards: 4,
		}, f.drv)
		sentTotal += stats.Sent
		for _, r := range results {
			all[r.Responder] = true
		}
	}
	if sentTotal != 256 {
		t.Errorf("shards sent %d total probes, want 256", sentTotal)
	}
	if len(all) != fixtureCPEs+1 {
		t.Errorf("shards found %d responders, want %d", len(all), fixtureCPEs+1)
	}
}

func TestBlocklistSkips(t *testing.T) {
	f := buildFixture(t)
	blocked, err := f.block.Sub(64, uint128.From64(0))
	if err != nil {
		t.Fatal(err)
	}
	stats, results := runScan(t, Config{
		Window: window(t, f), Seed: []byte("s"),
		Blocklist: []ipv6.Prefix{blocked},
	}, f.drv)
	if stats.Blocked != 1 {
		t.Errorf("blocked = %d, want 1", stats.Blocked)
	}
	for _, r := range results {
		if blocked.Contains(r.ProbeDst) {
			t.Errorf("blocklisted prefix probed: %s", r.ProbeDst)
		}
	}
}

// TestBlockRuntimeSkipCounts: a prefix folded in via BlockRuntime (the
// alias detector's feedback path) skips exactly its window-cell count —
// inserted before the scan, the whole /60 (16 cells of the 256-cell
// window) is charged to Stats.Blocked and never probed.
func TestBlockRuntimeSkipCounts(t *testing.T) {
	f := buildFixture(t)
	blocked, err := f.block.Sub(60, uint128.From64(3))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Window: window(t, f), Seed: []byte("s")}, f.drv)
	if err != nil {
		t.Fatal(err)
	}
	s.BlockRuntime(blocked)
	var results []Response
	stats, err := s.Run(context.Background(), func(r Response) { results = append(results, r) })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blocked != 16 {
		t.Errorf("blocked = %d, want the region's 16 window cells", stats.Blocked)
	}
	if stats.Sent != 256-16 {
		t.Errorf("sent = %d, want %d", stats.Sent, 256-16)
	}
	for _, r := range results {
		if blocked.Contains(r.ProbeDst) {
			t.Errorf("runtime-blocklisted prefix probed: %s", r.ProbeDst)
		}
	}
}

// TestBlockRuntimeMidScan: insertion from inside the scan loop (a
// response handler, exactly where the alias detector sits) takes effect
// for every target the permutation has not yet visited — skipped and
// sent cells still partition the window.
func TestBlockRuntimeMidScan(t *testing.T) {
	f := buildFixture(t)
	blocked, err := f.block.Sub(58, uint128.From64(1)) // 64 cells
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Window: window(t, f), Seed: []byte("s"), DrainEvery: 8}, f.drv)
	if err != nil {
		t.Fatal(err)
	}
	inserted := false
	stats, err := s.Run(context.Background(), func(r Response) {
		if !inserted {
			s.BlockRuntime(blocked)
			inserted = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !inserted {
		t.Fatal("no response ever arrived; insertion never exercised")
	}
	if stats.Blocked == 0 {
		t.Error("mid-scan insertion skipped nothing")
	}
	if stats.Sent+stats.Blocked != 256 {
		t.Errorf("sent %d + blocked %d = %d, want the full 256-cell window",
			stats.Sent, stats.Blocked, stats.Sent+stats.Blocked)
	}
}

func TestAllowlistRestricts(t *testing.T) {
	f := buildFixture(t)
	allowed, err := f.block.Sub(60, uint128.From64(0)) // first 16 /64s
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := runScan(t, Config{
		Window: window(t, f), Seed: []byte("s"),
		Allowlist: []ipv6.Prefix{allowed},
	}, f.drv)
	if stats.Sent != 16 {
		t.Errorf("sent = %d, want 16", stats.Sent)
	}
	if stats.Blocked != 240 {
		t.Errorf("blocked = %d, want 240", stats.Blocked)
	}
}

func TestMaxTargets(t *testing.T) {
	f := buildFixture(t)
	stats, _ := runScan(t, Config{Window: window(t, f), Seed: []byte("s"), MaxTargets: 10}, f.drv)
	if stats.Sent != 10 {
		t.Errorf("sent = %d, want 10", stats.Sent)
	}
}

func TestContextCancellation(t *testing.T) {
	f := buildFixture(t)
	s, err := New(Config{Window: window(t, f), Seed: []byte("s")}, f.drv)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx, nil); err == nil {
		t.Error("cancelled run returned nil error")
	}
}

func TestConfigValidation(t *testing.T) {
	f := buildFixture(t)
	w := window(t, f)
	cases := []Config{
		{}, // no window
		{Window: w, Shards: 2, ShardIndex: 2},
		{Window: w, Shards: 2, ShardIndex: -1},
	}
	for i, cfg := range cases {
		if _, err := New(cfg, f.drv); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := New(Config{Window: w}, nil); err == nil {
		t.Error("nil driver accepted")
	}
}

func TestValidationRejectsForgedReplies(t *testing.T) {
	// A driver that answers every echo probe with a mis-validated reply
	// (wrong id/seq) plus one honest reply.
	src := ipv6.MustParseAddr("2001:beef::100")
	honest := ipv6.MustParseAddr("2001:db8::aa")
	drv := &ChanDriver{Src: src, Fn: func(pkt []byte) [][]byte {
		sum, err := wire.ParsePacket(pkt)
		if err != nil || sum.ICMP == nil {
			return nil
		}
		e, err := wire.ParseEcho(sum.ICMP.Body)
		if err != nil {
			return nil
		}
		forged, err := wire.BuildEchoReply(sum.IP.Dst, src, 64, e.ID+1, e.Seq, nil)
		if err != nil {
			return nil
		}
		var out [][]byte
		out = append(out, forged)
		if sum.IP.Dst == honest {
			good, err := wire.BuildEchoReply(sum.IP.Dst, src, 64, e.ID, e.Seq, e.Data)
			if err != nil {
				return nil
			}
			out = append(out, good)
		}
		return out
	}}
	w, err := ipv6.NewWindow(ipv6.MustParsePrefix("2001:db8::/120"), 128)
	if err != nil {
		t.Fatal(err)
	}
	stats, results := runScan(t, Config{Window: w, Seed: []byte("v")}, drv)
	if stats.Invalid != 256 {
		t.Errorf("invalid = %d, want 256 forged rejections", stats.Invalid)
	}
	if len(results) != 1 || results[0].Responder != honest {
		t.Errorf("results = %+v", results)
	}
}

func TestTCPSynProbeAgainstStack(t *testing.T) {
	// One CPE with an open port 80 via a synthetic service stack is
	// covered in the services package; here validate the module's
	// classification against hand-built replies.
	p := &TCPSynProbe{Port: 80}
	src := ipv6.MustParseAddr("2001:beef::100")
	dst := ipv6.MustParseAddr("2001:db8::1")
	val := uint32(0xcafe1234)
	probe, err := p.MakeProbe(src, dst, val)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := wire.ParsePacket(probe)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TCP.Seq != val || sum.TCP.Flags != wire.TCPSyn {
		t.Fatalf("probe TCP = %+v", sum.TCP)
	}
	// SYN/ACK response.
	synack := wire.TCPHeader{
		SrcPort: 80, DstPort: sum.TCP.SrcPort,
		Seq: 999, Ack: val + 1, Flags: wire.TCPSyn | wire.TCPAck,
	}
	reply, err := wire.BuildTCP(dst, src, 64, synack, nil)
	if err != nil {
		t.Fatal(err)
	}
	rsum, err := wire.ParsePacket(reply)
	if err != nil {
		t.Fatal(err)
	}
	validate := func(a ipv6.Addr) uint32 {
		if a == dst {
			return val
		}
		return 0
	}
	resp, ok := p.Classify(rsum, validate)
	if !ok || resp.Kind != KindTCPSynAck {
		t.Errorf("classify = %+v, %v", resp, ok)
	}
	// Wrong ack must fail validation.
	synack.Ack = val + 2
	reply2, err := wire.BuildTCP(dst, src, 64, synack, nil)
	if err != nil {
		t.Fatal(err)
	}
	rsum2, err := wire.ParsePacket(reply2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Classify(rsum2, validate); ok {
		t.Error("mis-acked SYN/ACK accepted")
	}
}

func TestDedupExactMatchesBloom(t *testing.T) {
	f1 := buildFixture(t)
	s1, _ := runScan(t, Config{Window: window(t, f1), Seed: []byte("d"), DedupExact: true}, f1.drv)
	f2 := buildFixture(t)
	s2, _ := runScan(t, Config{Window: window(t, f2), Seed: []byte("d")}, f2.drv)
	if s1.Unique != s2.Unique {
		t.Errorf("exact dedup found %d, bloom %d", s1.Unique, s2.Unique)
	}
}

func TestCSVAndJSONOutput(t *testing.T) {
	r := Response{
		Responder: ipv6.MustParseAddr("2001:db8::1"),
		ProbeDst:  ipv6.MustParseAddr("2001:db8::2"),
		Kind:      KindDestUnreach,
		Code:      3,
	}
	var cbuf bytes.Buffer
	co, err := NewCSVOutput(&cbuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Write(r); err != nil {
		t.Fatal(err)
	}
	if err := co.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cbuf.String(), "dest-unreach") || !strings.Contains(cbuf.String(), "true") {
		t.Errorf("csv = %q", cbuf.String())
	}

	var jbuf bytes.Buffer
	jo := NewJSONOutput(&jbuf)
	if err := jo.Write(r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jbuf.String(), `"kind":"dest-unreach"`) {
		t.Errorf("json = %q", jbuf.String())
	}
}

func TestRateLimiterPacing(t *testing.T) {
	rl := newRateLimiter(1000) // 1ms interval
	start := time.Now()
	for i := 0; i < 20; i++ {
		rl.wait()
	}
	elapsed := time.Since(start)
	if elapsed < 15*time.Millisecond {
		t.Errorf("20 waits at 1kpps took %v, want >=15ms", elapsed)
	}
}

func TestHitRate(t *testing.T) {
	s := Stats{Sent: 200, Unique: 10}
	if s.HitRate() != 0.05 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("zero-sent HitRate not 0")
	}
}

// buildLossyFixture is buildFixture with loss on the scanner uplink.
func buildLossyFixture(t *testing.T, loss float64) *scanFixture {
	t.Helper()
	f := &scanFixture{
		eng:   netsim.New(1234),
		block: ipv6.MustParsePrefix("2001:db8::/56"),
	}
	f.edge = netsim.NewEdge("scanner", ipv6.MustParseAddr("2001:beef::100"))
	core := netsim.NewRouter("core", netsim.ErrorPolicy{})
	isp := netsim.NewISPRouter("isp", f.block, netsim.ErrorPolicy{})

	coreScan := core.AddIface(ipv6.MustParseAddr("2001:beef::1"), "core:scan")
	coreISP := core.AddIface(ipv6.MustParseAddr("2001:feed::1"), "core:isp")
	ispUp := isp.AddIface(ipv6.MustParseAddr("2001:feed::2"), "isp:up")
	f.eng.Connect(f.edge.Iface(), coreScan, loss)
	f.eng.Connect(coreISP, ispUp, 0)
	core.AddRoute(f.block, coreISP)
	core.AddRoute(ipv6.MustParsePrefix("2001:beef::/64"), coreScan)
	isp.SetUpstream(ispUp)

	for i := 0; i < fixtureCPEs; i++ {
		wanPrefix, err := f.block.Sub(64, uint128.From64(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		wanAddr := ipv6.SLAAC(wanPrefix, 0x0211_22ff_fe00_0000|uint64(i))
		cpe := netsim.NewCPE(netsim.CPEConfig{
			Name: "cpe", WANAddr: wanAddr, WANPrefix: wanPrefix,
		})
		down := isp.AddIface(ipv6.SLAAC(wanPrefix, 1), "isp:down")
		f.eng.Connect(down, cpe.WAN(), 0)
		if err := isp.Delegate(wanPrefix, down); err != nil {
			t.Fatal(err)
		}
		f.wans = append(f.wans, wanAddr)
	}
	f.drv = NewSimDriver(f.eng, f.edge)
	return f
}

// TestScanSurvivesPacketLoss is the failure-injection case: a lossy
// vantage uplink degrades the hit rate but never corrupts results.
func TestScanSurvivesPacketLoss(t *testing.T) {
	f := buildLossyFixture(t, 0.3)
	stats, results := runScan(t, Config{Window: window(t, f), Seed: []byte("loss")}, f.drv)
	if stats.Sent != 256 {
		t.Errorf("sent = %d", stats.Sent)
	}
	// With 30% loss each way, roughly half the responses survive; the
	// scanner must not inflate Unique beyond what it received.
	if stats.Received < 50 || stats.Received > 220 {
		t.Errorf("received = %d at 30%% loss", stats.Received)
	}
	if stats.Unique > stats.Received {
		t.Errorf("unique %d > received %d", stats.Unique, stats.Received)
	}
	for _, r := range results {
		if !f.block.Contains(r.ProbeDst) && !r.ProbeDst.IsUnspecified() {
			t.Errorf("result outside window: %s", r.ProbeDst)
		}
	}
}

// TestScanTotalLoss: a black-holed uplink yields zero results, not an
// error.
func TestScanTotalLoss(t *testing.T) {
	f := buildLossyFixture(t, 1.0)
	stats, results := runScan(t, Config{Window: window(t, f), Seed: []byte("dead")}, f.drv)
	if stats.Received != 0 || len(results) != 0 {
		t.Errorf("received %d results through a dead link", stats.Received)
	}
}

func TestRetriesRecoverLoss(t *testing.T) {
	// At 40% one-way loss, a single probe sees ~36% of responders;
	// 8 probes per target nearly all of them.
	single := func(probes int) uint64 {
		f := buildLossyFixture(t, 0.4)
		stats, _ := runScan(t, Config{
			Window: window(t, f), Seed: []byte("retry"),
			ProbesPerTarget: probes,
		}, f.drv)
		return stats.Unique
	}
	one := single(1)
	eight := single(8)
	if eight <= one {
		t.Errorf("retries did not help: 1 probe -> %d unique, 8 probes -> %d", one, eight)
	}
	if eight < fixtureCPEs {
		t.Errorf("8 probes/target found only %d of %d CPEs (+ISP)", eight, fixtureCPEs)
	}
}

func TestProbesPerTargetValidation(t *testing.T) {
	f := buildFixture(t)
	if _, err := New(Config{Window: window(t, f), ProbesPerTarget: 99}, f.drv); err == nil {
		t.Error("absurd ProbesPerTarget accepted")
	}
}

func TestParseBlocklist(t *testing.T) {
	input := `
# reserved space
2001:db8::/32   # documentation
fe80::/10
::1
10.0.0.0/8
192.0.2.1
`
	prefixes, err := ParseBlocklist(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(prefixes) != 5 {
		t.Fatalf("parsed %d prefixes: %v", len(prefixes), prefixes)
	}
	want := []string{
		"2001:db8::/32", "fe80::/10", "::1/128",
		"::ffff:10.0.0.0/104", "::ffff:192.0.2.1/128",
	}
	for i, w := range want {
		if prefixes[i].String() != w {
			t.Errorf("prefix %d = %s, want %s", i, prefixes[i], w)
		}
	}
}

func TestParseBlocklistRejects(t *testing.T) {
	for _, bad := range []string{
		"2001:db8::/200",
		"10.0.0.0/40",
		"300.1.1.1",
		"1.2.3",
		"zzz::/12::",
	} {
		if _, err := ParseBlocklist(strings.NewReader(bad)); err == nil {
			t.Errorf("blocklist %q accepted", bad)
		}
	}
}

func TestBlocklistFileEndToEnd(t *testing.T) {
	f := buildFixture(t)
	prefixes, err := ParseBlocklist(strings.NewReader(f.block.String() + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	stats, results := runScan(t, Config{
		Window: window(t, f), Seed: []byte("bl"), Blocklist: prefixes,
	}, f.drv)
	if stats.Blocked != 256 || len(results) != 0 {
		t.Errorf("blocked=%d results=%d", stats.Blocked, len(results))
	}
}

// TestUDPDriverAsync runs the scanner over real loopback sockets: the
// responder bridges into a netsim engine, and replies arrive
// asynchronously across drains.
func TestUDPDriverAsync(t *testing.T) {
	f := buildFixture(t) // provides the engine and edge
	handler := func(pkt []byte) [][]byte {
		f.eng.Inject(f.edge.Iface(), pkt)
		return f.edge.Drain()
	}
	drv, err := NewUDPDriver(ipv6.MustParseAddr("2001:beef::100"), handler)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := drv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	s, err := New(Config{Window: window(t, f), Seed: []byte("udp"), DrainEvery: 16}, drv)
	if err != nil {
		t.Fatal(err)
	}
	found := map[ipv6.Addr]bool{}
	deadline := time.Now().Add(10 * time.Second)
	// UDP delivery is asynchronous: re-drain until all CPEs are seen or
	// the deadline passes.
	if _, err := s.Run(context.Background(), func(r Response) { found[r.Responder] = true }); err != nil {
		t.Fatal(err)
	}
	for len(found) < fixtureCPEs+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		for _, raw := range drv.Recv() {
			sum, err := wire.ParsePacket(raw)
			if err != nil {
				continue
			}
			if resp, ok := (&ICMPEchoProbe{}).Classify(sum, s.Validation); ok {
				found[resp.Responder] = true
			}
		}
	}
	for _, wan := range f.wans {
		if !found[wan] {
			t.Errorf("CPE %s not discovered over UDP driver", wan)
		}
	}
}

func TestScanParallelMatchesSerial(t *testing.T) {
	fSerial := buildFixture(t)
	_, serialResults := runScan(t, Config{Window: window(t, fSerial), Seed: []byte("par")}, fSerial.drv)
	serial := map[ipv6.Addr]bool{}
	for _, r := range serialResults {
		serial[r.Responder] = true
	}

	fPar := buildFixture(t)
	parallel := map[ipv6.Addr]bool{}
	var mu sync.Mutex
	stats, err := ScanParallel(context.Background(), Config{
		Window: window(t, fPar), Seed: []byte("par"),
	}, fPar.drv, 4, func(r Response) {
		mu.Lock()
		parallel[r.Responder] = true
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != 256 {
		t.Errorf("parallel sent %d", stats.Sent)
	}
	if len(parallel) != len(serial) {
		t.Errorf("parallel found %d responders, serial %d", len(parallel), len(serial))
	}
	for a := range serial {
		if !parallel[a] {
			t.Errorf("parallel missed %s", a)
		}
	}
	if stats.Unique != uint64(len(parallel)) {
		t.Errorf("Unique = %d, handler saw %d", stats.Unique, len(parallel))
	}
}

func TestScanParallelCancellation(t *testing.T) {
	f := buildFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ScanParallel(ctx, Config{Window: window(t, f), Seed: []byte("c")}, f.drv, 2, nil); err == nil {
		t.Error("cancelled parallel scan returned nil error")
	}
}

func TestFilteredOutput(t *testing.T) {
	r1 := Response{
		Responder: ipv6.MustParseAddr("2001:db8::1"),
		ProbeDst:  ipv6.MustParseAddr("2001:db8::2"),
		Kind:      KindDestUnreach, Code: 3,
	}
	r2 := Response{
		Responder: ipv6.MustParseAddr("2001:db8:1::1"),
		ProbeDst:  ipv6.MustParseAddr("2001:db8:1::1"),
		Kind:      KindEchoReply,
	}
	var buf bytes.Buffer
	jo := NewJSONOutput(&buf)
	fo, err := NewFilteredOutput(`kind == "dest-unreach"`, jo)
	if err != nil {
		t.Fatal(err)
	}
	if err := fo.Write(r1); err != nil {
		t.Fatal(err)
	}
	if err := fo.Write(r2); err != nil {
		t.Fatal(err)
	}
	if err := fo.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") != 1 {
		t.Errorf("filter passed %q", buf.String())
	}
	// Bad expression at construction.
	if _, err := NewFilteredOutput(`(((`, jo); err == nil {
		t.Error("bad filter accepted")
	}
	// Eval error (unknown field) surfaces from Write.
	fo2, err := NewFilteredOutput(`nonexistent == 1`, jo)
	if err != nil {
		t.Fatal(err)
	}
	if err := fo2.Write(r1); err == nil {
		t.Error("unknown field evaluated silently")
	}
}

func TestResponseRecordFields(t *testing.T) {
	r := Response{
		Responder: ipv6.MustParseAddr("2001:db8::1"),
		ProbeDst:  ipv6.MustParseAddr("2001:db8::99"),
		Kind:      KindTimeExceeded, Code: 0,
	}
	rec := r.Record()
	for _, field := range []string{"responder", "probe_dst", "kind", "code", "same_prefix64"} {
		if _, ok := rec.Field(field); !ok {
			t.Errorf("field %q missing", field)
		}
	}
	if v, _ := rec.Field("same_prefix64"); v != true {
		t.Errorf("same_prefix64 = %v", v)
	}
}

func TestResponseKindStrings(t *testing.T) {
	for k, want := range map[ResponseKind]string{
		KindEchoReply: "echo-reply", KindDestUnreach: "dest-unreach",
		KindTimeExceeded: "time-exceeded", KindTCPSynAck: "tcp-synack",
		KindTCPRst: "tcp-rst", KindUDPData: "udp-data",
	} {
		if k.String() != want {
			t.Errorf("String(%d) = %q", k, k.String())
		}
	}
	if ResponseKind(99).String() != "kind(99)" {
		t.Errorf("unknown kind = %q", ResponseKind(99).String())
	}
}

func TestProbeNames(t *testing.T) {
	if (&ICMPEchoProbe{}).Name() != "icmp6_echoscan" ||
		(&TCPSynProbe{}).Name() != "tcp_synscan" ||
		NewDNSProbe("x").Name() != "dnsscan" ||
		NewNTPProbe().Name() != "ntpscan" ||
		(&ICMPEcho4Probe{}).Name() != "icmp4_echoscan" {
		t.Error("probe names changed")
	}
	// Non-default hop limits apply.
	p := &ICMPEchoProbe{HopLimit: 32}
	pkt, err := p.MakeProbe(ipv6.MustParseAddr("::1"), ipv6.MustParseAddr("::2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pkt[7] != 32 {
		t.Errorf("hop limit = %d", pkt[7])
	}
	t4 := &TCPSynProbe{Port: 80, HopLimit: 40}
	pkt, err = t4.MakeProbe(ipv6.MustParseAddr("::1"), ipv6.MustParseAddr("::2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pkt[7] != 40 {
		t.Errorf("tcp hop limit = %d", pkt[7])
	}
}
