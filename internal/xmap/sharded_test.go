package xmap

import (
	"context"
	"sync"
	"testing"

	"repro/internal/ipv6"
	"repro/internal/uint128"
)

// sendOnlyDriver hides SimDriver's batch entry points so tests can
// force the per-packet compatibility path through AdaptPacketDriver.
type sendOnlyDriver struct {
	d *SimDriver
}

func (s *sendOnlyDriver) Send(pkt []byte) error { return s.d.Send(pkt) }
func (s *sendOnlyDriver) Recv() [][]byte        { return s.d.Recv() }
func (s *sendOnlyDriver) SourceAddr() ipv6.Addr { return s.d.SourceAddr() }

// TestScanBatchedMatchesUnbatched: the batched fast path must be
// invisible in results — same responders, same send count as a scan
// forced through the per-packet adapter.
func TestScanBatchedMatchesUnbatched(t *testing.T) {
	fPlain := buildFixture(t)
	statsPlain, plain := runScan(t,
		Config{Window: window(t, fPlain), Seed: []byte("batch"), DedupExact: true},
		AdaptPacketDriver(&sendOnlyDriver{d: fPlain.drv}))

	fBatch := buildFixture(t)
	statsBatch, batched := runScan(t,
		Config{Window: window(t, fBatch), Seed: []byte("batch"), DedupExact: true},
		fBatch.drv)

	if statsPlain.Sent != statsBatch.Sent {
		t.Errorf("sent: plain %d, batched %d", statsPlain.Sent, statsBatch.Sent)
	}
	if statsPlain.Unique != statsBatch.Unique {
		t.Errorf("unique: plain %d, batched %d", statsPlain.Unique, statsBatch.Unique)
	}
	set := func(rs []Response) map[ipv6.Addr]bool {
		m := map[ipv6.Addr]bool{}
		for _, r := range rs {
			m[r.Responder] = true
		}
		return m
	}
	a, b := set(plain), set(batched)
	for addr := range a {
		if !b[addr] {
			t.Errorf("batched scan missed %s", addr)
		}
	}
	if len(a) != len(b) {
		t.Errorf("responder sets differ: %d vs %d", len(a), len(b))
	}
}

// TestScanBatchRespectsMaxTargets: the flush path must not lose probes
// accumulated before an early exit.
func TestScanBatchRespectsMaxTargets(t *testing.T) {
	f := buildFixture(t)
	stats, _ := runScan(t, Config{
		Window: window(t, f), Seed: []byte("mt"), MaxTargets: 10, DrainEvery: 64,
	}, f.drv)
	if stats.Targets != 10 {
		t.Errorf("targets = %d, want 10", stats.Targets)
	}
	if stats.Sent != 10 {
		t.Errorf("sent = %d, want 10 (batch not flushed on MaxTargets exit?)", stats.Sent)
	}
}

// TestScanParallelSumsShardDuplicates pins the accounting identity the
// old code violated by dropping per-scanner duplicate counts: every
// validated response is first-seen exactly once, so
// Received == Unique + Duplicates must hold across shards.
func TestScanParallelSumsShardDuplicates(t *testing.T) {
	f := buildFixture(t)
	// The ISP router answers unreachable for all ~250 unassigned
	// sub-prefixes, so each shard's scanner records many duplicates of
	// its own, and the first shard to see the ISP makes the others
	// record cross-shard ones.
	stats, err := ScanParallel(context.Background(),
		Config{Window: window(t, f), Seed: []byte("dup")}, f.drv, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Duplicates == 0 {
		t.Fatal("no duplicates recorded on a window dominated by one responder")
	}
	if got := stats.Unique + stats.Duplicates; got != stats.Received {
		t.Errorf("Unique(%d) + Duplicates(%d) = %d, want Received(%d)",
			stats.Unique, stats.Duplicates, got, stats.Received)
	}
}

// TestScanParallelHandlerSerialized: the documented contract — the
// handler needs no synchronization of its own — must survive the
// striped dedup rework.
func TestScanParallelHandlerSerialized(t *testing.T) {
	f := buildFixture(t)
	inHandler := 0
	var maxSeen int
	var mu sync.Mutex // only to make the race detector's job honest
	_, err := ScanParallel(context.Background(),
		Config{Window: window(t, f), Seed: []byte("ser")}, f.drv, 4,
		func(r Response) {
			mu.Lock()
			inHandler++
			if inHandler > maxSeen {
				maxSeen = inHandler
			}
			mu.Unlock()
			mu.Lock()
			inHandler--
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	if maxSeen > 1 {
		t.Errorf("handler ran %d-way concurrent; contract promises serialization", maxSeen)
	}
}

// TestValidationAndTargetForStable: the reusable HMAC state must not
// leak between calls — interleaved Validation/TargetFor calls on one
// scanner agree with a fresh scanner computing each value in isolation.
func TestValidationAndTargetForStable(t *testing.T) {
	f := buildFixture(t)
	cfg := Config{Window: window(t, f), Seed: []byte("stable")}
	s1, err := New(cfg, f.drv)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 32; i++ {
		target, err := s1.TargetFor(uint128.From64(i))
		if err != nil {
			t.Fatal(err)
		}
		val := s1.Validation(target)

		fresh, err := New(cfg, f.drv)
		if err != nil {
			t.Fatal(err)
		}
		wantTarget, err := fresh.TargetFor(uint128.From64(i))
		if err != nil {
			t.Fatal(err)
		}
		if target != wantTarget {
			t.Fatalf("idx %d: target %s, fresh scanner says %s", i, target, wantTarget)
		}
		fresh2, err := New(cfg, f.drv)
		if err != nil {
			t.Fatal(err)
		}
		if want := fresh2.Validation(target); val != want {
			t.Fatalf("idx %d: validation %08x, fresh scanner says %08x", i, val, want)
		}
	}
}
