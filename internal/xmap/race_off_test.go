//go:build !race

package xmap

// raceEnabled lets heavyweight stress tests scale down under the race
// detector's ~10x slowdown.
const raceEnabled = false
