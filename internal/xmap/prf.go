package xmap

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// subPRF derives each sub-prefix's pseudo-random material — the host IID
// the probe targets (Section III-B's nonexistent-address IID) and the
// 32-bit stateless validation value. The scan seed is expanded once
// through HMAC-SHA256 into four 64-bit subkeys; per sub-prefix the
// derivation is a keyed splitmix64-style mixer (multiply-xorshift
// avalanche rounds over the keyed address limbs). The previous
// implementation ran the full HMAC per sub-prefix, which was over a
// quarter of the entire send path's CPU; the mixer is a few
// nanoseconds.
//
// The mixer is not a cryptographic MAC. For the simulator that trade is
// free — validation only needs to reject accidental and replayed
// traffic deterministically, and the adversary is the test suite. A
// production raw-socket driver wanting HMAC-grade validation against
// active spoofing swaps derive for a keyed MAC without touching the
// scanner: the cache and call sites are unchanged.
type subPRF struct {
	k0, k1, k2, k3 uint64
}

// prfLabel domain-separates the subkey expansion from other uses of the
// scan seed (the permutation derives its own keys independently).
var prfLabel = []byte("xmap-sub-prf-v1")

// newSubPRF expands seed into the mixer subkeys.
func newSubPRF(seed []byte) subPRF {
	mac := hmac.New(sha256.New, seed)
	mac.Write(prfLabel)
	sum := mac.Sum(nil)
	return subPRF{
		k0: binary.BigEndian.Uint64(sum[0:8]),
		k1: binary.BigEndian.Uint64(sum[8:16]),
		k2: binary.BigEndian.Uint64(sum[16:24]),
		k3: binary.BigEndian.Uint64(sum[24:32]),
	}
}

// mix64 is the splitmix64 finalizer: a bijective avalanche on 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// derive maps one sub-prefix base address (as 128-bit limbs) to the
// host-IID limbs and the validation value. Both address limbs feed the
// shared core x, then each output word gets its own subkey and final
// avalanche so the words are pairwise independent.
func (p subPRF) derive(hi, lo uint64) (iidHi, iidLo uint64, val uint32) {
	x := mix64(mix64(hi^p.k0) ^ lo ^ p.k1)
	iidHi = mix64(x ^ p.k2)
	iidLo = mix64(x ^ p.k3)
	val = uint32(mix64(x + p.k0))
	return
}
