package xmap

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// RawProbeModule is implemented by probe modules that parse received
// packets themselves — the IPv4 modules, whose wire format the default
// IPv6 receive path cannot decode. XMap treats IPv4 targets as
// IPv4-mapped IPv6 addresses internally, so the iterator, validation and
// dedup machinery is shared across families (Section IV-B: the address
// generation module permutes "any address space ... such as
// 192.168.0.0/20-25").
type RawProbeModule interface {
	ProbeModule
	// ClassifyRaw inspects an undecoded packet.
	ClassifyRaw(raw []byte, validate Validator) (Response, bool)
}

// ICMPEcho4Probe is the IPv4 counterpart of icmp6_echoscan. Targets and
// responders are carried as IPv4-mapped IPv6 addresses.
type ICMPEcho4Probe struct {
	// TTL of outgoing probes (default 64).
	TTL uint8
}

var _ RawProbeModule = (*ICMPEcho4Probe)(nil)

// Name implements ProbeModule.
func (p *ICMPEcho4Probe) Name() string { return "icmp4_echoscan" }

func (p *ICMPEcho4Probe) ttl() uint8 {
	if p.TTL == 0 {
		return 64
	}
	return p.TTL
}

// MakeProbe implements ProbeModule. src and dst must be IPv4-mapped.
func (p *ICMPEcho4Probe) MakeProbe(src, dst ipv6.Addr, val uint32) ([]byte, error) {
	s4, ok := src.AsV4()
	if !ok {
		return nil, fmt.Errorf("xmap: icmp4 probe source %s not IPv4-mapped", src)
	}
	d4, ok := dst.AsV4()
	if !ok {
		return nil, fmt.Errorf("xmap: icmp4 probe target %s not IPv4-mapped", dst)
	}
	return wire.BuildEchoRequest4(wire.IPv4Addr(s4), wire.IPv4Addr(d4), p.ttl(),
		uint16(val>>16), uint16(val), nil)
}

// Classify implements ProbeModule; the v6-decoded path never matches.
func (p *ICMPEcho4Probe) Classify(*wire.Summary, Validator) (Response, bool) {
	return Response{}, false
}

// ClassifyRaw implements RawProbeModule.
func (p *ICMPEcho4Probe) ClassifyRaw(raw []byte, validate Validator) (Response, bool) {
	sum, err := wire.ParsePacket4(raw)
	if err != nil || sum.ICMP == nil {
		return Response{}, false
	}
	switch sum.ICMP.Type {
	case wire.ICMP4EchoReply:
		responder := ipv6.V4Mapped(uint32(sum.IP.Src))
		val := validate(responder)
		if sum.EchoID != uint16(val>>16) || sum.EchoSeq != uint16(val) {
			return Response{}, false
		}
		return Response{Responder: responder, ProbeDst: responder, Kind: KindEchoReply}, true

	case wire.ICMP4DestUnreach, wire.ICMP4TimeExceeded:
		if sum.Quoted == nil || !sum.QuotedEchoValid {
			return Response{}, false
		}
		probeDst := ipv6.V4Mapped(uint32(sum.Quoted.Dst))
		val := validate(probeDst)
		if sum.QuotedEchoID != uint16(val>>16) || sum.QuotedEchoSeq != uint16(val) {
			return Response{}, false
		}
		kind := KindDestUnreach
		if sum.ICMP.Type == wire.ICMP4TimeExceeded {
			kind = KindTimeExceeded
		}
		return Response{
			Responder: ipv6.V4Mapped(uint32(sum.IP.Src)),
			ProbeDst:  probeDst,
			Kind:      kind,
			Code:      sum.ICMP.Code,
		}, true
	}
	return Response{}, false
}

// V4Window builds the scan window for dotted-quad notation, e.g.
// V4Window("10.0.0.0", 8, 24) is the paper's "10.0.0.0/8-24": iterate
// every /24 of 10/8. Internally it is the IPv4-mapped IPv6 window
// ::ffff:a00:0/104-120.
func V4Window(base wire.IPv4Addr, from, to int) (ipv6.Window, error) {
	if from < 0 || from >= to || to > 32 {
		return ipv6.Window{}, fmt.Errorf("xmap: v4 window /%d-%d invalid", from, to)
	}
	prefix, err := ipv6.NewPrefix(ipv6.V4Mapped(uint32(base)), 96+from)
	if err != nil {
		return ipv6.Window{}, err
	}
	return ipv6.NewWindow(prefix, 96+to)
}

// ParseV4Window parses "a.b.c.d/from-to" notation, the paper's IPv4
// window syntax (e.g. "192.168.0.0/20-25").
func ParseV4Window(s string) (ipv6.Window, error) {
	addrPart, rangePart, ok := strings.Cut(s, "/")
	if !ok {
		return ipv6.Window{}, fmt.Errorf("xmap: v4 window %q missing '/'", s)
	}
	fromS, toS, ok := strings.Cut(rangePart, "-")
	if !ok {
		return ipv6.Window{}, fmt.Errorf("xmap: v4 window %q missing '-'", s)
	}
	from, err := strconv.Atoi(fromS)
	if err != nil {
		return ipv6.Window{}, fmt.Errorf("xmap: bad v4 window lower bound in %q", s)
	}
	to, err := strconv.Atoi(toS)
	if err != nil {
		return ipv6.Window{}, fmt.Errorf("xmap: bad v4 window upper bound in %q", s)
	}
	octets := strings.Split(addrPart, ".")
	if len(octets) != 4 {
		return ipv6.Window{}, fmt.Errorf("xmap: bad v4 address in %q", s)
	}
	var v4 uint32
	for _, o := range octets {
		v, err := strconv.Atoi(o)
		if err != nil || v < 0 || v > 255 {
			return ipv6.Window{}, fmt.Errorf("xmap: bad v4 octet %q in %q", o, s)
		}
		v4 = v4<<8 | uint32(v)
	}
	return V4Window(wire.IPv4Addr(v4), from, to)
}
