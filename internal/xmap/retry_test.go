package xmap

import (
	"testing"
	"time"

	"repro/internal/ipv6"
	"repro/internal/uint128"
)

func retryAddr(i uint64) ipv6.Addr {
	return ipv6.AddrFrom128(uint128.New(0x2001_0db8_0000_0000, i))
}

func TestRetryRingFIFOAndDueGating(t *testing.T) {
	r := newRetryRing(8)
	for i := uint64(0); i < 4; i++ {
		if !r.push(retryEntry{idx: uint128.From64(i), dst: retryAddr(i), due: 10 * (i + 1), attempts: 1}) {
			t.Fatalf("push %d refused", i)
		}
	}
	if _, ok := r.popDue(9); ok {
		t.Fatal("entry popped before its due tick")
	}
	e, ok := r.popDue(10)
	if !ok || e.dst != retryAddr(0) {
		t.Fatalf("popDue(10) = %v %v, want first entry", e.dst, ok)
	}
	// Head gating is FIFO: entry 1 (due 20) blocks entry 2 even at
	// clock 25... but once popped, 2 (due 30) is not yet due.
	e, ok = r.popDue(25)
	if !ok || e.dst != retryAddr(1) {
		t.Fatalf("popDue(25) = %v %v, want second entry", e.dst, ok)
	}
	if _, ok := r.popDue(25); ok {
		t.Fatal("entry with due 30 popped at clock 25")
	}
	if due, ok := r.nextDue(); !ok || due != 30 {
		t.Fatalf("nextDue = %d %v, want 30", due, ok)
	}
}

func TestRetryRingAnsweredTombstones(t *testing.T) {
	r := newRetryRing(4)
	for i := uint64(0); i < 3; i++ {
		r.push(retryEntry{idx: uint128.From64(i), dst: retryAddr(i), due: 1, attempts: 1})
	}
	e0, ok0 := r.answered(retryAddr(0))
	_, ok2 := r.answered(retryAddr(2))
	if !ok0 || !ok2 {
		t.Fatal("answered() did not find pending entries")
	}
	if e0.dst != retryAddr(0) || e0.due != 1 {
		t.Fatalf("answered() returned entry %+v, want the resolved one", e0)
	}
	if _, ok := r.answered(retryAddr(0)); ok {
		t.Fatal("answered() resolved the same entry twice")
	}
	if r.pending != 1 {
		t.Fatalf("pending = %d, want 1", r.pending)
	}
	e, ok := r.popDue(100)
	if !ok || e.dst != retryAddr(1) {
		t.Fatalf("popDue skipped to %v %v, want the unanswered middle entry", e.dst, ok)
	}
	if _, ok := r.popDue(100); ok {
		t.Fatal("tombstoned entries popped as due")
	}
}

func TestRetryRingOverflowDrops(t *testing.T) {
	r := newRetryRing(2)
	r.push(retryEntry{dst: retryAddr(0), due: 1, attempts: 1})
	r.push(retryEntry{dst: retryAddr(1), due: 1, attempts: 1})
	if r.push(retryEntry{dst: retryAddr(2), due: 1, attempts: 1}) {
		t.Fatal("push into a full ring succeeded")
	}
	if r.dropped != 1 {
		t.Fatalf("dropped = %d, want 1", r.dropped)
	}
	// Tombstones still occupy slots until reclaimed at the head; a
	// reclaim makes room again.
	r.answered(retryAddr(0))
	r.skipAnswered()
	if !r.push(retryEntry{dst: retryAddr(3), due: 1, attempts: 1}) {
		t.Fatal("push refused after head reclaim")
	}
}

func TestRetryRingStateRoundTrip(t *testing.T) {
	s := mustScanner(t)
	r := newRetryRing(8)
	it := s.cycle.Shard(0, 1)
	for i := 0; i < 3; i++ {
		idx, _ := it.Next()
		dst, err := s.TargetFor(idx)
		if err != nil {
			t.Fatal(err)
		}
		r.push(retryEntry{idx: idx, dst: dst, due: uint64(100 + i), attempts: uint8(i + 1)})
	}
	// A tombstone must not survive serialization.
	idx, _ := it.Next()
	dst, _ := s.TargetFor(idx)
	r.push(retryEntry{idx: idx, dst: dst, due: 999, attempts: 1})
	r.answered(dst)

	state := r.appendState(nil)
	restored := newRetryRing(8)
	if err := restored.restoreState(state, s.TargetFor); err != nil {
		t.Fatal(err)
	}
	if restored.pending != 3 {
		t.Fatalf("restored pending = %d, want 3", restored.pending)
	}
	for i := 0; i < 3; i++ {
		want, _ := r.popDue(^uint64(0))
		got, ok := restored.popDue(^uint64(0))
		if !ok || got != want {
			t.Fatalf("entry %d: restored %+v, want %+v", i, got, want)
		}
	}
}

func TestRetryRingRestoreRejects(t *testing.T) {
	s := mustScanner(t)
	good := func() []byte {
		r := newRetryRing(8)
		it := s.cycle.Shard(0, 1)
		idx, _ := it.Next()
		dst, _ := s.TargetFor(idx)
		r.push(retryEntry{idx: idx, dst: dst, due: 5, attempts: 2})
		return r.appendState(nil)
	}()
	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:2],
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte{}, good...), 0xff),
	}
	for name, data := range cases {
		r := newRetryRing(8)
		if err := r.restoreState(data, s.TargetFor); err == nil {
			t.Errorf("%s input accepted", name)
		}
	}
	// Zero attempts is never serialized; reject it.
	bad := append([]byte{}, good...)
	bad[len(bad)-1] = 0
	if err := newRetryRing(8).restoreState(bad, s.TargetFor); err == nil {
		t.Error("zero-attempts entry accepted")
	}
	// More entries than the ring can hold.
	if err := newRetryRing(0).restoreState(good, s.TargetFor); err == nil {
		t.Error("state larger than ring capacity accepted")
	}
}

// mustScanner builds a scanner over the fixture window purely for
// TargetFor/cycle access.
func mustScanner(t *testing.T) *Scanner {
	t.Helper()
	f := buildFixture(t)
	s, err := New(Config{Window: window(t, f), Seed: []byte("ring")}, f.drv)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRetrySchedulerRecoversLossEfficiently: adaptive retries reach the
// blind multi-probe hit count while spending probes only on silent
// targets.
func TestRetrySchedulerRecoversLossEfficiently(t *testing.T) {
	blind := func() Stats {
		f := buildLossyFixture(t, 0.4)
		stats, _ := runScan(t, Config{
			Window: window(t, f), Seed: []byte("retry"),
			ProbesPerTarget: 4,
		}, f.drv)
		return stats
	}()
	adaptive := func() Stats {
		f := buildLossyFixture(t, 0.4)
		stats, _ := runScan(t, Config{
			Window: window(t, f), Seed: []byte("retry"),
			Retries: 3,
		}, f.drv)
		return stats
	}()
	if adaptive.Unique < uint64(fixtureCPEs) {
		t.Errorf("adaptive scan found %d responders, want >= %d", adaptive.Unique, fixtureCPEs)
	}
	if adaptive.Sent >= blind.Sent {
		t.Errorf("adaptive sent %d probes, blind %d — retries are not saving probes", adaptive.Sent, blind.Sent)
	}
	if adaptive.Retried == 0 {
		t.Error("no retries fired at 40% loss")
	}
	if adaptive.HitRate() < blind.HitRate() {
		t.Errorf("adaptive hit rate %.4f below blind %.4f", adaptive.HitRate(), blind.HitRate())
	}
}

// TestRetryTerminalAccounting: under total loss every target resolves to
// exactly one terminal counter — dropped at the ring, exhausted after
// every retry, or abandoned at the cooldown deadline.
func TestRetryTerminalAccounting(t *testing.T) {
	f := buildLossyFixture(t, 1.0)
	stats, _ := runScan(t, Config{
		Window: window(t, f), Seed: []byte("dead"),
		Retries: 2, RetryRing: 8,
	}, f.drv)
	if stats.Targets != 256 {
		t.Fatalf("targets = %d", stats.Targets)
	}
	if stats.RetryDropped == 0 {
		t.Error("a ring of 8 never overflowed across 256 dead targets")
	}
	got := stats.RetryDropped + stats.RetryExhausted + stats.RetryAbandoned
	if got != 256 {
		t.Errorf("dropped %d + exhausted %d + abandoned %d = %d, want 256",
			stats.RetryDropped, stats.RetryExhausted, stats.RetryAbandoned, got)
	}
}

// TestRetryNoFalseRetries: on a clean link every target answers, so the
// scheduler should fire (almost) nothing.
func TestRetryNoFalseRetries(t *testing.T) {
	f := buildFixture(t)
	stats, _ := runScan(t, Config{
		Window: window(t, f), Seed: []byte("clean"),
		Retries: 3,
	}, f.drv)
	if stats.Sent != 256 {
		t.Errorf("sent = %d, want 256 (no retries on a clean link)", stats.Sent)
	}
	if stats.Retried != 0 || stats.RetryExhausted != 0 || stats.RetryAbandoned != 0 {
		t.Errorf("clean link produced retry activity: %+v", stats)
	}
}

func TestAIMDController(t *testing.T) {
	a := newAIMD(64)
	w := a.update(64, 60) // healthy window establishes the baseline
	if w <= 64 {
		t.Fatalf("clean window did not grow: %d", w)
	}
	w = a.update(uint64(w), 1) // collapse: ratio far below best/2
	if w >= 64 {
		t.Fatalf("lossy window did not shrink: %d", w)
	}
	if a.downs != 1 || a.ups != 1 {
		t.Fatalf("ups/downs = %d/%d, want 1/1", a.ups, a.downs)
	}
	// Repeated collapse bottoms out at the floor.
	for i := 0; i < 10; i++ {
		w = a.update(64, 0)
	}
	if w != a.min {
		t.Fatalf("window %d did not clamp to min %d", w, a.min)
	}
	// Recovery ramps additively back to the cap.
	for i := 0; i < 100; i++ {
		w = a.update(uint64(w), uint64(w))
	}
	if w != a.max {
		t.Fatalf("window %d did not ramp to max %d", w, a.max)
	}
	// Sub-sample windows are ignored.
	before := a.window
	if got := a.update(aimdMinSample-1, 0); got != before {
		t.Fatalf("tiny window changed the rate: %d -> %d", before, got)
	}
}

func TestAIMDBacksOffUnderRateLimit(t *testing.T) {
	// An ICMPv6-rate-limited path answers in bursts then goes silent;
	// AIMD must record multiplicative decreases while a clean path must
	// not.
	clean := func() Stats {
		f := buildFixture(t)
		stats, _ := runScan(t, Config{
			Window: window(t, f), Seed: []byte("aimd"), AIMD: true,
		}, f.drv)
		return stats
	}()
	if clean.RateDown != 0 {
		t.Errorf("clean link triggered %d backoffs", clean.RateDown)
	}
	if clean.RateUp == 0 {
		t.Error("clean link never ramped up")
	}
	lossy := func() Stats {
		f := buildLossyFixture(t, 0.9)
		stats, _ := runScan(t, Config{
			Window: window(t, f), Seed: []byte("aimd"), AIMD: true, DrainEvery: 16,
		}, f.drv)
		return stats
	}()
	if lossy.RateDown == 0 {
		t.Error("90% loss never triggered a backoff")
	}
}

func TestRateLimiterBatchedRefill(t *testing.T) {
	// At high rates the limiter must not sleep per probe: 10k sends at
	// 10 Mpps are 1ms of traffic and must finish in far less than the
	// 10k-sleep worst case (even a 50µs-granularity timer would need
	// 500ms).
	rl := newRateLimiter(10_000_000)
	if rl.batch < 1000 {
		t.Fatalf("batch = %d at 10Mpps, want >= 1000", rl.batch)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10_000; i++ {
			rl.wait()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("10k rate-limited sends at 10Mpps did not finish in time")
	}
}
