package xmap

// aimdController adapts the scanner's send window — the burst of probes
// between receive drains, the simulator-visible notion of send rate — by
// additive increase, multiplicative decrease over the reply rate. Real
// networks signal overload the same way ICMPv6 rate limiting (RFC 4443
// §2.4) does: replies stop coming back. Each drain closes a measurement
// window; a reply ratio collapsing below half of the recent best marks
// the window lossy and halves the send window, while a clean window
// grows it linearly back toward the cap. Against a wall-clock rate
// limiter the same decisions scale the pacing interval, so AIMD governs
// both operation modes with one signal.
type aimdController struct {
	window   int     // current probes per drain window
	min, max int     // window bounds
	step     int     // additive increase per clean window
	best     float64 // decaying best reply ratio observed
	ups      uint64  // clean-window (additive-increase) decisions
	downs    uint64  // lossy-window (multiplicative-decrease) decisions
}

// aimdMinSample is the fewest probes a window needs before its reply
// ratio is trusted; tiny windows are pure noise.
const aimdMinSample = 8

// bestDecay lets the baseline forget a lucky early window, so a
// permanently degraded path stops reading as lossy.
const bestDecay = 0.995

func newAIMD(initial int) *aimdController {
	a := &aimdController{window: initial, min: 16, max: 4 * initial, step: 8}
	if a.min > initial {
		a.min = initial
	}
	return a
}

// update closes a measurement window of sent probes and recv validated
// replies, and returns the next send window.
func (a *aimdController) update(sent, recv uint64) int {
	if sent < aimdMinSample {
		return a.window
	}
	ratio := float64(recv) / float64(sent)
	if ratio > a.best {
		a.best = ratio
	} else {
		a.best *= bestDecay
	}
	if a.best > 0 && ratio < a.best/2 {
		a.downs++
		a.window /= 2
		if a.window < a.min {
			a.window = a.min
		}
		return a.window
	}
	a.ups++
	a.window += a.step
	if a.window > a.max {
		a.window = a.max
	}
	return a.window
}
