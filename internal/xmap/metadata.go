package xmap

import (
	"encoding/json"
	"io"
	"time"
)

// Metadata is the end-of-scan summary record, the analogue of ZMap's
// scan metadata output: enough to audit a measurement after the fact.
type Metadata struct {
	Window          string    `json:"window"`
	Probe           string    `json:"probe"`
	Shards          int       `json:"shards"`
	ShardIndex      int       `json:"shard_index"`
	ProbesPerTarget int       `json:"probes_per_target"`
	Rate            int       `json:"rate_pps"`
	Start           time.Time `json:"start"`
	End             time.Time `json:"end"`

	Targets    uint64  `json:"targets"`
	Sent       uint64  `json:"sent"`
	SendErrors uint64  `json:"send_errors"`
	Received   uint64  `json:"received"`
	Invalid    uint64  `json:"invalid"`
	Duplicates uint64  `json:"duplicates"`
	Unique     uint64  `json:"unique_responders"`
	Blocked    uint64  `json:"blocked_targets"`
	HitRate    float64 `json:"hit_rate"`
}

// BuildMetadata assembles the record for a finished run.
func (s *Scanner) BuildMetadata(stats Stats, end time.Time) Metadata {
	return Metadata{
		Window:          s.cfg.Window.String(),
		Probe:           s.probe.Name(),
		Shards:          s.cfg.Shards,
		ShardIndex:      s.cfg.ShardIndex,
		ProbesPerTarget: s.cfg.ProbesPerTarget,
		Rate:            s.cfg.Rate,
		Start:           end.Add(-stats.Elapsed),
		End:             end,
		Targets:         stats.Targets,
		Sent:            stats.Sent,
		SendErrors:      stats.SendErrors,
		Received:        stats.Received,
		Invalid:         stats.Invalid,
		Duplicates:      stats.Duplicates,
		Unique:          stats.Unique,
		Blocked:         stats.Blocked,
		HitRate:         stats.HitRate(),
	}
}

// WriteJSON emits the record as one indented JSON object.
func (m Metadata) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
