package xmap

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/bloom"
	"repro/internal/ipv6"
	"repro/internal/uint128"
)

// Dedup state kinds, as serialized into checkpoints.
const (
	dedupKindExact byte = 1
	dedupKindBloom byte = 2
)

// dedupSet suppresses duplicate responders. Two implementations back the
// ablation in DESIGN.md: an exact map (unbounded memory, no false
// positives) and a Bloom filter (fixed memory, responders may very
// rarely be dropped as presumed duplicates). Both serialize into the
// scan checkpoint so a resumed scan keeps suppressing responders it
// already reported.
type dedupSet interface {
	seen(a ipv6.Addr) bool
	add(a ipv6.Addr)
	// checkAdd is the fused seen-then-add of the receive hot path: it
	// records a and reports whether it was new (one hashing/probing pass
	// instead of two).
	checkAdd(a ipv6.Addr) bool
	kind() byte
	appendState(dst []byte) []byte
}

// mapDedup is the exact-set implementation. It also counts responses per
// responder, which downstream analysis uses to separate infrastructure
// (which answers for thousands of probe destinations) from peripheries
// (which answer for one or two).
type mapDedup map[ipv6.Addr]uint64

var _ dedupSet = (mapDedup)(nil)

func (m mapDedup) seen(a ipv6.Addr) bool { return m[a] > 0 }

func (m mapDedup) add(a ipv6.Addr) { m[a]++ }

func (m mapDedup) checkAdd(a ipv6.Addr) bool {
	c := m[a]
	m[a] = c + 1
	return c == 0
}

func (m mapDedup) kind() byte { return dedupKindExact }

// appendState serializes the map sorted by address, so equal sets
// checkpoint to equal bytes.
func (m mapDedup) appendState(dst []byte) []byte {
	addrs := make([]ipv6.Addr, 0, len(m))
	for a := range m {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(addrs)))
	for _, a := range addrs {
		b := a.Bytes()
		dst = append(dst, b[:]...)
		dst = binary.BigEndian.AppendUint64(dst, m[a])
	}
	return dst
}

// mapDedupFromState decodes an appendState payload.
func mapDedupFromState(data []byte) (mapDedup, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("xmap: exact dedup state truncated: %d bytes", len(data))
	}
	n := binary.BigEndian.Uint32(data[:4])
	data = data[4:]
	if uint64(len(data)) != uint64(n)*24 {
		return nil, fmt.Errorf("xmap: exact dedup state %d bytes for %d entries", len(data), n)
	}
	m := make(mapDedup, n)
	for i := uint32(0); i < n; i++ {
		off := int(i) * 24
		a := ipv6.AddrFromBytes(data[off : off+16])
		c := binary.BigEndian.Uint64(data[off+16 : off+24])
		if c == 0 {
			return nil, fmt.Errorf("xmap: exact dedup state has zero count for %s", a)
		}
		if _, dup := m[a]; dup {
			return nil, fmt.Errorf("xmap: exact dedup state repeats %s", a)
		}
		m[a] = c
	}
	return m, nil
}

// bloomDedup wraps the Bloom filter.
type bloomDedup struct {
	f *bloom.Filter
}

var _ dedupSet = (*bloomDedup)(nil)

// newBloomDedup sizes the filter for the scan space (capped: responders
// cannot outnumber probes, and beyond 16M entries the map of a real scan
// would be replaced by this filter anyway). The filter's hash seeds are
// derived from the scan seed, so replayed scans dedup identically.
func newBloomDedup(space uint128.Uint128, scanSeed []byte) (*bloomDedup, error) {
	n := uint64(1 << 24)
	if space.Hi == 0 && space.Lo < n {
		n = space.Lo
	}
	if n < 1024 {
		n = 1024
	}
	sum := sha256.Sum256(append([]byte("xmap-dedup-"), scanSeed...))
	f, err := bloom.NewSeeded(n, 1e-4, binary.BigEndian.Uint64(sum[:8]))
	if err != nil {
		return nil, err
	}
	return &bloomDedup{f: f}, nil
}

func (b *bloomDedup) seen(a ipv6.Addr) bool {
	u := a.Uint128()
	return b.f.ContainsUint64Pair(u.Hi, u.Lo)
}

func (b *bloomDedup) add(a ipv6.Addr) {
	u := a.Uint128()
	b.f.AddUint64Pair(u.Hi, u.Lo)
}

func (b *bloomDedup) checkAdd(a ipv6.Addr) bool {
	u := a.Uint128()
	return b.f.AddIfAbsentUint64Pair(u.Hi, u.Lo)
}

func (b *bloomDedup) kind() byte { return dedupKindBloom }

func (b *bloomDedup) appendState(dst []byte) []byte { return b.f.AppendMarshal(dst) }

// dedupFromState reconstructs a serialized dedup set, rejecting kind
// skew (a checkpoint taken with one implementation cannot resume under
// the other: the bloom filter cannot be converted back to exact counts).
func dedupFromState(kind byte, data []byte) (dedupSet, error) {
	switch kind {
	case dedupKindExact:
		return mapDedupFromState(data)
	case dedupKindBloom:
		f, err := bloom.Unmarshal(data)
		if err != nil {
			return nil, err
		}
		return &bloomDedup{f: f}, nil
	default:
		return nil, fmt.Errorf("xmap: unknown dedup kind %d", kind)
	}
}
