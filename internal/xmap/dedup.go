package xmap

import (
	"repro/internal/bloom"
	"repro/internal/ipv6"
	"repro/internal/uint128"
)

// dedupSet suppresses duplicate responders. Two implementations back the
// ablation in DESIGN.md: an exact map (unbounded memory, no false
// positives) and a Bloom filter (fixed memory, responders may very
// rarely be dropped as presumed duplicates).
type dedupSet interface {
	seen(a ipv6.Addr) bool
	add(a ipv6.Addr)
}

// mapDedup is the exact-set implementation. It also counts responses per
// responder, which downstream analysis uses to separate infrastructure
// (which answers for thousands of probe destinations) from peripheries
// (which answer for one or two).
type mapDedup map[ipv6.Addr]uint64

var _ dedupSet = (mapDedup)(nil)

func (m mapDedup) seen(a ipv6.Addr) bool { return m[a] > 0 }

func (m mapDedup) add(a ipv6.Addr) { m[a]++ }

// bloomDedup wraps the Bloom filter.
type bloomDedup struct {
	f *bloom.Filter
}

var _ dedupSet = (*bloomDedup)(nil)

// newBloomDedup sizes the filter for the scan space (capped: responders
// cannot outnumber probes, and beyond 16M entries the map of a real scan
// would be replaced by this filter anyway).
func newBloomDedup(space uint128.Uint128) (*bloomDedup, error) {
	n := uint64(1 << 24)
	if space.Hi == 0 && space.Lo < n {
		n = space.Lo
	}
	if n < 1024 {
		n = 1024
	}
	f, err := bloom.New(n, 1e-4)
	if err != nil {
		return nil, err
	}
	return &bloomDedup{f: f}, nil
}

func (b *bloomDedup) seen(a ipv6.Addr) bool {
	u := a.Uint128()
	return b.f.ContainsUint64Pair(u.Hi, u.Lo)
}

func (b *bloomDedup) add(a ipv6.Addr) {
	u := a.Uint128()
	b.f.AddUint64Pair(u.Hi, u.Lo)
}
