package xmap

import (
	"errors"
	"testing"

	"repro/internal/ipv6"
)

// throttleDriver accepts at most maxPerCall packets per SendBatch — a
// deterministic ENOBUFS-style short-write driver. Everything accepted
// reaches the wrapped simulator.
type throttleDriver struct {
	d          *SimDriver
	maxPerCall int
	calls      int
}

func (t *throttleDriver) SendBatch(pkts [][]byte) (int, error) {
	t.calls++
	n := len(pkts)
	if n > t.maxPerCall {
		n = t.maxPerCall
	}
	return t.d.SendBatch(pkts[:n])
}
func (t *throttleDriver) RecvBatch(buf [][]byte) [][]byte { return t.d.RecvBatch(buf) }
func (t *throttleDriver) SourceAddr() ipv6.Addr           { return t.d.SourceAddr() }

// TestScanRetriesShortWrites: a driver that accepts only a couple of
// packets per call must not cost the scan anything — the scanner retries
// the unsent tail until the whole burst is through, with no drops, no
// double counts, and no spurious send errors.
func TestScanRetriesShortWrites(t *testing.T) {
	fRef := buildFixture(t)
	statsRef, refResults := runScan(t,
		Config{Window: window(t, fRef), Seed: []byte("sw"), DedupExact: true}, fRef.drv)

	f := buildFixture(t)
	throttled := &throttleDriver{d: f.drv, maxPerCall: 3}
	stats, results := runScan(t,
		Config{Window: window(t, f), Seed: []byte("sw"), DedupExact: true}, throttled)

	if stats.Sent != statsRef.Sent {
		t.Errorf("sent = %d, reference %d (short writes dropped or double-counted probes)",
			stats.Sent, statsRef.Sent)
	}
	if stats.SendErrors != 0 {
		t.Errorf("send errors = %d, want 0: short writes are backpressure, not errors", stats.SendErrors)
	}
	if stats.Unique != statsRef.Unique {
		t.Errorf("unique = %d, reference %d", stats.Unique, statsRef.Unique)
	}
	if len(results) != len(refResults) {
		t.Errorf("results = %d, reference %d", len(results), len(refResults))
	}
	if throttled.calls <= int(stats.Sent)/throttled.maxPerCall {
		t.Errorf("driver saw %d calls for %d probes; the tail was not retried per-burst",
			throttled.calls, stats.Sent)
	}
}

// faultyDriver fails every failEvery-th packet (1-based, counted across
// calls) with a hard error, following the SendBatch contract: pkts[:n]
// sent, pkts[n] is the failed one.
type faultyDriver struct {
	d         *SimDriver
	failEvery int
	seen      int
	failed    int
}

var errInjected = errors.New("injected send failure")

func (f *faultyDriver) SendBatch(pkts [][]byte) (int, error) {
	for i := range pkts {
		f.seen++
		if f.seen%f.failEvery == 0 {
			if n, err := f.d.SendBatch(pkts[:i]); err != nil {
				return n, err
			}
			f.failed++
			return i, errInjected
		}
	}
	return f.d.SendBatch(pkts)
}
func (f *faultyDriver) RecvBatch(buf [][]byte) [][]byte { return f.d.RecvBatch(buf) }
func (f *faultyDriver) SourceAddr() ipv6.Addr           { return f.d.SourceAddr() }

// TestScanCountsFailedSendsOnce: a hard per-packet error costs exactly
// that packet — one SendError, no retry of it, and the rest of the burst
// still goes out. Sent + SendErrors must equal the probes the scan
// attempted.
func TestScanCountsFailedSendsOnce(t *testing.T) {
	f := buildFixture(t)
	faulty := &faultyDriver{d: f.drv, failEvery: 5}
	stats, _ := runScan(t,
		Config{Window: window(t, f), Seed: []byte("err"), DedupExact: true}, faulty)

	attempted := stats.Targets // ProbesPerTarget = 1
	if got := stats.Sent + stats.SendErrors; got != attempted {
		t.Errorf("Sent(%d) + SendErrors(%d) = %d, want attempted %d",
			stats.Sent, stats.SendErrors, got, attempted)
	}
	if uint64(faulty.failed) != stats.SendErrors {
		t.Errorf("driver failed %d packets, scanner counted %d send errors",
			faulty.failed, stats.SendErrors)
	}
	if stats.SendErrors == 0 {
		t.Fatal("fault injection never fired")
	}
	if stats.Unique == 0 {
		t.Error("no responders found; surviving packets were not transmitted")
	}
}

// wedgedDriver accepts nothing, forever: the pathological peer the
// maxSendStalls bound exists for.
type wedgedDriver struct {
	d *SimDriver
}

func (w *wedgedDriver) SendBatch(pkts [][]byte) (int, error) { return 0, nil }
func (w *wedgedDriver) RecvBatch(buf [][]byte) [][]byte      { return buf }
func (w *wedgedDriver) SourceAddr() ipv6.Addr                { return w.d.SourceAddr() }

// TestScanSurvivesWedgedDriver: a driver stuck at zero progress must not
// hang the scan; the stall bound declares the burst failed and the scan
// completes with every probe accounted as a send error.
func TestScanSurvivesWedgedDriver(t *testing.T) {
	f := buildFixture(t)
	stats, _ := runScan(t, Config{
		Window: window(t, f), Seed: []byte("wedge"), MaxTargets: 4, DrainEvery: 4,
	}, &wedgedDriver{d: f.drv})
	if stats.Sent != 0 {
		t.Errorf("sent = %d through a driver that accepts nothing", stats.Sent)
	}
	if stats.SendErrors != stats.Targets {
		t.Errorf("send errors = %d, want %d (every probe)", stats.SendErrors, stats.Targets)
	}
}

// TestAdapterReportsPartialBatch pins the adapter half of the contract:
// a failing per-packet Send surfaces as (packets-before-failure, err).
func TestAdapterReportsPartialBatch(t *testing.T) {
	fails := 0
	pd := &funcPacketDriver{
		send: func(pkt []byte) error {
			fails++
			if fails == 3 {
				return errInjected
			}
			return nil
		},
	}
	drv := AdaptPacketDriver(pd)
	n, err := drv.SendBatch([][]byte{{1}, {2}, {3}, {4}})
	if n != 2 || !errors.Is(err, errInjected) {
		t.Errorf("SendBatch = (%d, %v), want (2, errInjected)", n, err)
	}
}

// funcPacketDriver is a closure-backed PacketDriver for contract tests.
type funcPacketDriver struct {
	send func(pkt []byte) error
	recv func() [][]byte
}

func (f *funcPacketDriver) Send(pkt []byte) error {
	if f.send == nil {
		return nil
	}
	return f.send(pkt)
}
func (f *funcPacketDriver) Recv() [][]byte {
	if f.recv == nil {
		return nil
	}
	return f.recv()
}
func (f *funcPacketDriver) SourceAddr() ipv6.Addr { return ipv6.Addr{} }
