package xmap

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/ipv6"
	"repro/internal/lpm"
	"repro/internal/perm"
	"repro/internal/telemetry"
	"repro/internal/uint128"
	"repro/internal/wire"
)

// Config parameterizes one scan.
type Config struct {
	// Window is the target space: all sub-prefixes of the given length
	// within the base prefix, each probed once at a pseudo-random
	// interface identifier (Section III-B).
	Window ipv6.Window
	// Probe is the probe module; nil means ICMPv6 echo.
	Probe ProbeModule
	// Seed keys the permutation, the per-target IIDs and the stateless
	// validation. Scans with equal seeds are identical.
	Seed []byte
	// ShardIndex/Shards split the permutation across scanner instances
	// (ZMap-style sharding); Shards=0 means 1.
	ShardIndex, Shards int
	// Rate caps probes per second; 0 disables limiting (the simulator
	// runs faster than any real link).
	Rate int
	// MaxTargets stops after probing this many sub-prefixes (0 = all).
	MaxTargets uint64
	// Blocklist prefixes are never probed; Allowlist, when non-empty,
	// restricts probing to within it.
	Blocklist []ipv6.Prefix
	Allowlist []ipv6.Prefix
	// ProbesPerTarget sends this many copies of each probe (ZMap's -P),
	// recovering hit rate on lossy paths; default 1. Duplicate replies
	// are absorbed by responder dedup.
	ProbesPerTarget int
	// DrainEvery pumps the receive path after this many probes
	// (default 64).
	DrainEvery int
	// RingSize, under ScanParallel, inserts a lock-free SPSC
	// transmission ring of this capacity (rounded up to a power of two)
	// between each shard's scanner and the driver: probe generation and
	// driver transmission then run pipelined in separate goroutines, a
	// full ring acting as backpressure on the generator. 0 sends
	// directly. Single scanners wanting the same pipeline wrap their
	// driver in NewRingDriver themselves.
	RingSize int
	// DedupExact uses an exact map for responder dedup instead of the
	// default Bloom filter — the ablation knob of DESIGN.md.
	DedupExact bool
	// Retries re-probes each target that stays unanswered past its
	// timeout, up to this many extra probes with exponential backoff
	// (0 = off). Unlike ProbesPerTarget, which sends blind copies to
	// everyone, retries spend probes only on the silent fraction.
	Retries int
	// RetryRing bounds the retry scheduler's memory: at most this many
	// targets are tracked at once; overflow is dropped and counted in
	// Stats.RetryDropped (default 1024).
	RetryRing int
	// RetryTimeout is the probe-clock delay (in probes sent) before an
	// unanswered target's first retry; retry k waits RetryTimeout<<k
	// (default 2*DrainEvery).
	RetryTimeout int
	// AIMD adapts the send window — probes between receive drains — to
	// the observed reply rate: additive increase on clean windows,
	// multiplicative decrease when the reply ratio collapses (the
	// back-pressure signal of ICMPv6 rate limiting, RFC 4443 §2.4).
	AIMD bool
	// CooldownDrains bounds the drain phase at scan end, when stragglers
	// and pending retries are collected (default 3, or 8 with retries).
	CooldownDrains int
	// CheckpointEvery emits a resumable ShardState through OnCheckpoint
	// after roughly this many targets (0 = only at exit).
	CheckpointEvery uint64
	// OnCheckpoint, when set, receives checkpoint states: periodically
	// per CheckpointEvery, and at every exit including cancellation.
	OnCheckpoint func(ShardState)
	// Resume restores a previous run's ShardState — permutation cursor,
	// cumulative statistics, dedup and retry state — and continues the
	// scan mid-cycle.
	Resume *ShardState
	// CheckpointPath, under ScanParallel, persists the assembled scan
	// checkpoint to this file (atomic replace) on every shard update.
	CheckpointPath string
	// ResumeFrom, under ScanParallel, resumes a checkpoint written via
	// CheckpointPath; its config digest is verified first.
	ResumeFrom *Checkpoint
	// Telemetry, when set, receives live counters, histograms and
	// flight-recorder events as the scan runs; the scanner writes to the
	// registry shard matching ShardIndex. The instrumentation is
	// allocation-free and, when Telemetry is nil, costs one predictable
	// branch per event.
	Telemetry *telemetry.Registry
	// Monitor, when set, is ticked on the probe clock once per drain
	// window, driving the periodic ZMap-style status line.
	Monitor *telemetry.Monitor

	// Defend enables the adversarial defenses: the cooldown alias
	// detector (saturated prefixes are re-probed and, if confirmed,
	// folded into the runtime blocklist), strict embedded-quote
	// validation, reply quarantine, and drain-window overload shedding.
	// Off by default; the hot path then carries no defense state.
	Defend bool
	// AliasPrefixLen is the detect-prefix granularity of the alias
	// detector, in [16,64] (default 60 — one detect-prefix per 16
	// window /64s, the aliased-delegation size the periphery papers
	// report most often).
	AliasPrefixLen int
	// CooldownProbes is j, the number of deterministic pseudo-random
	// re-probes sent into a suspicious prefix (default 3).
	CooldownProbes int
	// CooldownWindow is the cooldown length in drain windows before an
	// unconfirmed suspicious prefix is cleared (default 4).
	CooldownWindow int
	// AliasConfirm is the cooldown evidence needed to blocklist a
	// suspicious prefix (default 2).
	AliasConfirm int
	// ShedBudget caps the replies processed per drain under Defend:
	// when RecvBatch floods past it, lowest-value replies are dropped
	// deterministically instead of stalling the send path (default
	// 4*DrainEvery; ignored without Defend).
	ShedBudget int

	// Tracer, when set, records sampled probe-lifecycle spans: the
	// scanner writes span stream TraceStream and fires anomaly
	// exemplars on quarantine, alias detection, retry exhaustion and
	// shedding. Nil costs one predictable branch per hook.
	Tracer *telemetry.Tracer
	// TraceStream is the tracer span stream this scanner writes
	// (its shard index under ScanParallel).
	TraceStream int
	// Watchdog, when set, receives this shard's stage transitions and
	// one progress beat per drain window for stall diagnosis.
	Watchdog *telemetry.Watchdog

	// cycle, when set, is a pre-built permutation shared between the
	// scanners of one ScanParallel call (a Cycle is immutable, and its
	// construction — safe-prime search, generator selection — is the
	// dominant per-scanner setup cost).
	cycle *perm.Cycle
}

// Stats summarizes a finished scan.
type Stats struct {
	// Targets is the number of sub-prefixes probed.
	Targets    uint64
	Sent       uint64
	SendErrors uint64
	Received   uint64 // validated responses, including duplicates
	Invalid    uint64 // packets failing parse or validation
	Duplicates uint64 // validated responses from already-seen responders
	Unique     uint64 // unique responders handed to the handler
	Blocked    uint64 // targets skipped by blocklist/allowlist
	// Retry scheduler accounting.
	Retried        uint64 // retry probes sent
	RetryDropped   uint64 // targets untracked because the retry ring was full
	RetryExhausted uint64 // targets still silent after every allowed retry
	RetryAbandoned uint64 // pending retries given up at the cooldown deadline
	// AIMD rate-controller accounting.
	RateUp   uint64 // additive-increase decisions (clean windows)
	RateDown uint64 // multiplicative-decrease decisions (lossy windows)
	// Adversarial-defense accounting (Config.Defend).
	AliasDetected uint64 // prefixes entering an alias cooldown window
	AliasCooldown uint64 // cooldown re-probes sent
	AliasBlocked  uint64 // prefixes confirmed saturated and blocklisted
	Quarantined   uint64 // unvalidatable replies quarantined
	Shed          uint64 // buffered replies shed under overload
	Elapsed       time.Duration
}

// HitRate is unique responders per probe sent.
func (s Stats) HitRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Unique) / float64(s.Sent)
}

// Merge folds one shard scanner's stats into an aggregate: counts sum,
// Elapsed takes the slowest shard (the shards run concurrently). Unique
// is deliberately NOT merged — shard-local uniqueness double-counts a
// responder first seen by two shards, so aggregators (ScanParallel)
// count uniqueness across their own cross-shard dedup instead.
func (s *Stats) Merge(o Stats) {
	s.Targets += o.Targets
	s.Sent += o.Sent
	s.SendErrors += o.SendErrors
	s.Received += o.Received
	s.Invalid += o.Invalid
	s.Duplicates += o.Duplicates
	s.Blocked += o.Blocked
	s.Retried += o.Retried
	s.RetryDropped += o.RetryDropped
	s.RetryExhausted += o.RetryExhausted
	s.RetryAbandoned += o.RetryAbandoned
	s.RateUp += o.RateUp
	s.RateDown += o.RateDown
	s.AliasDetected += o.AliasDetected
	s.AliasCooldown += o.AliasCooldown
	s.AliasBlocked += o.AliasBlocked
	s.Quarantined += o.Quarantined
	s.Shed += o.Shed
	if o.Elapsed > s.Elapsed {
		s.Elapsed = o.Elapsed
	}
}

// Handler consumes one first-seen responder.
type Handler func(Response)

// Scanner executes scans against a Driver. A Scanner is not safe for
// concurrent use: Validation, TargetFor and Run share reusable PRF and
// buffer scratch state (ScanParallel gives each goroutine its own
// Scanner).
type Scanner struct {
	cfg     Config
	drv     Driver
	flusher Flusher // drv's Flusher capability, if any
	probe   ProbeModule
	cycle   *perm.Cycle
	block   *lpm.Table[bool]
	allow   *lpm.Table[bool]
	dedup   dedupSet
	retry   *retryRing      // nil unless Config.Retries > 0
	aimd    *aimdController // nil unless Config.AIMD
	alias   *aliasDetector  // nil unless Config.Defend
	tel     *telemetry.Shard

	// Probe-lifecycle tracing (nil tracer/watchdog = detached).
	tracer   *telemetry.Tracer
	trStream int
	wd       *telemetry.Watchdog

	// prf derives per-sub-prefix material; one derivation feeds both the
	// target IID and the validation value, and the lastSub cache means
	// the send path — TargetFor immediately followed by Validation on
	// the resulting target — derives once, not twice.
	prf          subPRF
	lastSub      ipv6.Addr
	haveSub      bool
	subHi, subLo uint64 // cached host-IID limbs for lastSub
	subVal       uint32 // cached validation value for lastSub
	// validate is the bound Validation method, constructed once —
	// passing s.Validation at a call site would allocate a closure per
	// packet.
	validate Validator
	batch    [][]byte
	// one is the single-probe batch for the paced send path.
	one [1][]byte
	// free holds probe buffers whose batch has been sent (the Driver
	// contract: SendBatch does not retain them); recycle stages drained
	// receive buffers for return to a Releaser driver; rx is the reused
	// RecvBatch drain slice. Together they make the steady-state probe
	// loop allocation-free against the simulator drivers.
	free    [][]byte
	recycle [][]byte
	rx      [][]byte
	// sum is the receive path's reusable packet decoder.
	sum wire.Summary
}

// defaultSeed is applied when Config.Seed is empty.
var defaultSeed = []byte("xmap-default-seed")

func seedOrDefault(seed []byte) []byte {
	if len(seed) == 0 {
		return defaultSeed
	}
	return seed
}

// New validates the configuration and prepares a scanner.
func New(cfg Config, drv Driver) (*Scanner, error) {
	if drv == nil {
		return nil, fmt.Errorf("xmap: nil driver")
	}
	if cfg.Window.To == 0 {
		return nil, fmt.Errorf("xmap: no scan window configured")
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.Shards {
		return nil, fmt.Errorf("xmap: shard %d of %d invalid", cfg.ShardIndex, cfg.Shards)
	}
	if cfg.DrainEvery <= 0 {
		cfg.DrainEvery = 64
	}
	if cfg.ProbesPerTarget <= 0 {
		cfg.ProbesPerTarget = 1
	}
	if cfg.ProbesPerTarget > 16 {
		return nil, fmt.Errorf("xmap: %d probes per target is unreasonable", cfg.ProbesPerTarget)
	}
	if cfg.Retries < 0 || cfg.Retries > 16 {
		return nil, fmt.Errorf("xmap: %d retries out of [0,16]", cfg.Retries)
	}
	if cfg.Retries > 0 {
		if cfg.RetryRing <= 0 {
			cfg.RetryRing = 1024
		}
		if cfg.RetryTimeout <= 0 {
			cfg.RetryTimeout = 2 * cfg.DrainEvery
		}
	}
	if cfg.CooldownDrains <= 0 {
		if cfg.Retries > 0 {
			// Retries need headroom: each cooldown round both drains and
			// fires the next backoff tier.
			cfg.CooldownDrains = 8
		} else {
			cfg.CooldownDrains = 3
		}
	}
	if cfg.Defend {
		if cfg.AliasPrefixLen == 0 {
			cfg.AliasPrefixLen = 60
		}
		if cfg.AliasPrefixLen < 16 || cfg.AliasPrefixLen > 64 {
			return nil, fmt.Errorf("xmap: alias prefix length /%d out of [16,64]", cfg.AliasPrefixLen)
		}
		if cfg.CooldownProbes <= 0 {
			cfg.CooldownProbes = 3
		}
		if cfg.CooldownWindow <= 0 {
			cfg.CooldownWindow = 4
		}
		if cfg.AliasConfirm <= 0 {
			cfg.AliasConfirm = 2
		}
		if cfg.ShedBudget <= 0 {
			cfg.ShedBudget = 4 * cfg.DrainEvery
		}
	}
	cfg.Seed = seedOrDefault(cfg.Seed)
	size, ok := cfg.Window.Size()
	if !ok {
		return nil, fmt.Errorf("xmap: window %s too large", cfg.Window)
	}
	cycle := cfg.cycle
	if cycle == nil {
		var err error
		cycle, err = perm.NewCycle(size, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("xmap: building permutation: %w", err)
		}
	}
	s := &Scanner{cfg: cfg, drv: drv, cycle: cycle}
	s.flusher, _ = drv.(Flusher)
	s.tel = cfg.Telemetry.Shard(cfg.ShardIndex)
	s.tracer = cfg.Tracer
	s.trStream = cfg.TraceStream
	s.wd = cfg.Watchdog
	s.prf = newSubPRF(cfg.Seed)
	s.validate = s.Validation
	s.probe = cfg.Probe
	if s.probe == nil {
		s.probe = &ICMPEchoProbe{}
	}
	if cfg.Defend {
		s.alias = newAliasDetector(&s.cfg)
		// Strict embedded-quote validation: error replies must quote an
		// invoking packet sourced from this scanner, closing the forged
		// verbatim-quote hole the malformed responder exploits.
		if ep, ok := s.probe.(*ICMPEchoProbe); ok && ep.StrictSource == (ipv6.Addr{}) {
			ep.StrictSource = drv.SourceAddr()
		}
	}
	if len(cfg.Blocklist) > 0 {
		s.block = lpm.New[bool]()
		for _, p := range cfg.Blocklist {
			s.block.Insert(p, true)
		}
	}
	if len(cfg.Allowlist) > 0 {
		s.allow = lpm.New[bool]()
		for _, p := range cfg.Allowlist {
			s.allow.Insert(p, true)
		}
	}
	if cfg.DedupExact {
		s.dedup = make(mapDedup)
	} else {
		// A sharded scanner only probes its slice of the space, so its
		// filter needs capacity for that slice, not the whole window.
		shardSpace := size
		if cfg.Shards > 1 {
			shardSpace, _ = size.Add64(uint64(cfg.Shards) - 1).Div64(uint64(cfg.Shards))
		}
		bf, err := newBloomDedup(shardSpace, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("xmap: sizing dedup filter: %w", err)
		}
		s.dedup = bf
	}
	if cfg.Retries > 0 {
		s.retry = newRetryRing(cfg.RetryRing)
	}
	if cfg.AIMD {
		s.aimd = newAIMD(cfg.DrainEvery)
	}
	if r := cfg.Resume; r != nil {
		if r.Shard != cfg.ShardIndex {
			return nil, fmt.Errorf("xmap: resume state is for shard %d, scanner is shard %d", r.Shard, cfg.ShardIndex)
		}
		if len(r.Dedup) > 0 {
			if r.DedupKind != s.dedup.kind() {
				return nil, fmt.Errorf("xmap: resume dedup kind %d, configuration wants %d (DedupExact changed?)", r.DedupKind, s.dedup.kind())
			}
			restored, err := dedupFromState(r.DedupKind, r.Dedup)
			if err != nil {
				return nil, fmt.Errorf("xmap: restoring dedup state: %w", err)
			}
			s.dedup = restored
		}
		if len(r.Retry) > 4 { // 4 bytes is an empty ring's count header
			if s.retry == nil {
				return nil, fmt.Errorf("xmap: resume state has pending retries but retries are disabled")
			}
			if err := s.retry.restoreState(r.Retry, s.TargetFor); err != nil {
				return nil, fmt.Errorf("xmap: restoring retry state: %w", err)
			}
		}
	}
	return s, nil
}

// ResponderCounts returns per-responder response counts when the exact
// dedup set is in use (Config.DedupExact), nil otherwise. Infrastructure
// routers answer for many destinations; peripheries for few — the
// distinction Section IV-E's periphery validation leans on.
func (s *Scanner) ResponderCounts() map[ipv6.Addr]uint64 {
	if m, ok := s.dedup.(mapDedup); ok {
		return m
	}
	return nil
}

// subDerive computes (or returns from the one-entry cache) the PRF
// material for one sub-prefix base address.
func (s *Scanner) subDerive(sub ipv6.Addr) {
	if s.haveSub && sub == s.lastSub {
		return
	}
	u := sub.Uint128()
	s.subHi, s.subLo, s.subVal = s.prf.derive(u.Hi, u.Lo)
	s.lastSub, s.haveSub = sub, true
}

// Validation derives the stateless validation value for dst, exposed so
// cooperating tools (the loop scanner) can pre-compute expected values.
// The value is bound to the sub-prefix containing dst (a scan probes one
// address per sub, so this loses no discrimination) and comes from the
// same keyed derivation that generates the target IID — one PRF call
// covers the whole send path.
func (s *Scanner) Validation(dst ipv6.Addr) uint32 {
	p, err := ipv6.NewPrefix(dst, s.cfg.Window.To)
	if err != nil {
		return 0
	}
	s.subDerive(p.Addr())
	return s.subVal
}

// TargetFor returns the probe address for a window index: the sub-prefix
// base combined with a pseudo-random host part (the nonexistent-address
// IID of Section III-B).
func (s *Scanner) TargetFor(idx uint128.Uint128) (ipv6.Addr, error) {
	sub, err := s.cfg.Window.Sub(idx)
	if err != nil {
		return ipv6.Addr{}, err
	}
	hostBits := uint(128 - s.cfg.Window.To)
	if hostBits == 0 {
		return sub.Addr(), nil
	}
	s.subDerive(sub.Addr())
	host := uint128.New(s.subHi, s.subLo)
	if hostBits < 128 {
		host = host.And(uint128.Max.Rsh(128 - hostBits))
	}
	if host.IsZero() {
		host = uint128.One // never probe the subnet-router anycast address
	}
	return ipv6.AddrFrom128(sub.Addr().Uint128().Or(host)), nil
}

// maxSendStalls bounds how many consecutive zero-progress short writes
// the scanner tolerates before declaring the rest of the burst failed —
// a wedged driver must not hang the scan.
const maxSendStalls = 1 << 16

// Run executes the scan, invoking handler for each first-seen responder.
// It honors ctx cancellation between probes.
//
// The send path is batch-first: probes accumulate and flush once per
// drain window through Driver.SendBatch, amortizing driver entry across
// the burst. A rate limit forces per-probe pacing, so the paced path
// sends each probe as a one-packet burst instead.
//
// With Config.Resume set, the scan continues mid-cycle: the permutation
// cursor fast-forwards past the probed prefix of the shard's sequence,
// statistics accumulate on top of the restored ones, and the restored
// dedup state keeps already-reported responders suppressed.
func (s *Scanner) Run(ctx context.Context, handler Handler) (Stats, error) {
	var stats Stats
	var priorElapsed time.Duration
	start := time.Now()
	var it *perm.Iterator
	if r := s.cfg.Resume; r != nil {
		stats = r.Stats
		priorElapsed = r.Stats.Elapsed
		it = s.cycle.ShardAt(s.cfg.ShardIndex, s.cfg.Shards, r.Consumed)
	} else {
		it = s.cycle.Shard(s.cfg.ShardIndex, s.cfg.Shards)
	}
	src := s.drv.SourceAddr()
	s.wd.Stage(s.cfg.ShardIndex, "send")
	defer s.wd.Stage(s.cfg.ShardIndex, telemetry.StageDone)
	// pender exposes a pipelined driver's queued depth for watchdog beats.
	pender, _ := s.drv.(interface{ Pending() int })
	// traceSpan records one sampled probe-lifecycle span keyed by the
	// probe target; the address-hash sampler makes the decision, so the
	// same targets are traced here and in every other layer.
	traceSpan := func(kind telemetry.SpanKind, dst ipv6.Addr, arg uint64) {
		if s.tracer != nil {
			if b := dst.Bytes(); s.tracer.SampleAddr(b) {
				s.tracer.Span(s.trStream, kind, stats.Sent, b, arg)
			}
		}
	}

	var limiter *rateLimiter
	if s.cfg.Rate > 0 {
		limiter = newRateLimiter(s.cfg.Rate)
	}
	// Probe-buffer recycling needs the append-building probe module; the
	// Driver contract already guarantees SendBatch does not retain.
	appender, _ := s.probe.(AppendProbeModule)
	// sendAll pushes a burst through the driver with the SendBatch
	// short-write protocol: retry the unsent tail on transient
	// backpressure, count an errored packet once and move on. Probes are
	// neither dropped silently nor double-counted — Sent advances by
	// exactly what the driver accepted.
	sendAll := func(pkts [][]byte) {
		idle := 0
		for len(pkts) > 0 {
			n, err := s.drv.SendBatch(pkts)
			stats.Sent += uint64(n)
			s.tel.Add(telemetry.ScanSent, uint64(n))
			pkts = pkts[n:]
			if len(pkts) == 0 {
				return
			}
			if err != nil {
				// pkts[0] is the packet the driver rejected.
				stats.SendErrors++
				s.tel.Inc(telemetry.ScanSendErrors)
				pkts = pkts[1:]
				continue
			}
			// Short write without error: ENOBUFS-style pushback. Yield so
			// whatever drains the packet layer can run, then retry.
			if idle++; idle > maxSendStalls {
				stats.SendErrors += uint64(len(pkts))
				s.tel.Add(telemetry.ScanSendErrors, uint64(len(pkts)))
				return
			}
			runtime.Gosched()
		}
	}
	flush := func() {
		if len(s.batch) == 0 {
			return
		}
		sendAll(s.batch)
		if appender != nil {
			for i, p := range s.batch {
				// ProbesPerTarget copies are the same slice appended
				// consecutively; recycle each buffer once.
				if i > 0 && len(p) > 0 && len(s.batch[i-1]) > 0 && &p[0] == &s.batch[i-1][0] {
					continue
				}
				s.free = append(s.free, p)
			}
		}
		clear(s.batch)
		s.batch = s.batch[:0]
	}
	// send stages one built probe into the current batch, or — when a
	// rate limit is set, since pacing is inherently per-probe — pushes it
	// through the driver immediately as a one-probe burst.
	send := func(pkt []byte) {
		if limiter == nil {
			s.batch = append(s.batch, pkt)
			return
		}
		limiter.wait()
		if s.tracer != nil && len(pkt) >= wire.HeaderLen && pkt[0]>>4 == 6 {
			var dst [16]byte
			copy(dst[:], pkt[24:40])
			if s.tracer.SampleAddr(dst) {
				s.tracer.Span(s.trStream, telemetry.SpanRateGate, stats.Sent, dst, 0)
			}
		}
		s.one[0] = pkt
		sendAll(s.one[:])
		s.one[0] = nil
		if appender != nil {
			s.free = append(s.free, pkt)
		}
	}
	buildProbe := func(target ipv6.Addr) ([]byte, error) {
		if appender != nil {
			var buf []byte
			if l := len(s.free); l > 0 {
				buf, s.free[l-1] = s.free[l-1], nil
				s.free = s.free[:l-1]
			}
			return appender.AppendProbe(buf, src, target, s.Validation(target))
		}
		return s.probe.MakeProbe(src, target, s.Validation(target))
	}

	// The drain cadence: a counter against the send window, which is
	// DrainEvery fixed, or AIMD-adjusted between drains. Counting locally
	// (not stats.Targets%DrainEvery) keeps the cadence correct across
	// resume offsets and retry traffic.
	window := s.cfg.DrainEvery
	sinceDrain := 0
	lastSent, lastRecv := stats.Sent, stats.Received
	baseUp, baseDown := stats.RateUp, stats.RateDown
	s.tel.SetGauge(telemetry.GaugeWindow, int64(window))
	var nextCkpt uint64
	if s.cfg.CheckpointEvery > 0 {
		nextCkpt = stats.Targets + s.cfg.CheckpointEvery
	}
	// emit hands the current resumable state to the checkpoint sink. It
	// runs only after a flush+drain, so the serialized dedup set reflects
	// every response collected so far.
	emit := func(done bool) {
		if s.cfg.OnCheckpoint == nil {
			return
		}
		stats.Elapsed = priorElapsed + time.Since(start)
		st := ShardState{
			Shard:     s.cfg.ShardIndex,
			Done:      done,
			Consumed:  it.Consumed(),
			Stats:     stats,
			DedupKind: s.dedup.kind(),
			Dedup:     s.dedup.appendState(nil),
		}
		if s.retry != nil {
			st.Retry = s.retry.appendState(nil)
		}
		s.cfg.OnCheckpoint(st)
		s.tel.Inc(telemetry.ScanCheckpoints)
		s.tel.Trace(telemetry.EvCheckpoint, stats.Sent, zeroAddr, stats.Targets)
	}
	// pumpDue reports whether the send window should close now: it is
	// full, or a checkpoint interval expired (a checkpoint needs the
	// flush+drain for a consistent dedup snapshot, so it forces one).
	pumpDue := func() bool {
		return sinceDrain >= window || (nextCkpt > 0 && stats.Targets >= nextCkpt)
	}
	// sendCooldown fires the alias detector's queued re-probes and
	// flushes them immediately: cooldown evidence must arrive within the
	// cooldown window regardless of how full the next send window is.
	sendCooldown := func() {
		if s.alias == nil {
			return
		}
		pending := s.alias.takePending()
		if len(pending) == 0 {
			return
		}
		for _, dst := range pending {
			pkt, err := buildProbe(dst)
			if err != nil {
				continue
			}
			send(pkt)
			stats.AliasCooldown++
			s.tel.Inc(telemetry.ScanAliasCooldown)
			traceSpan(telemetry.SpanAliasCooldown, dst, 0)
		}
		flush()
	}
	// pump closes a send window: flush, drain, let AIMD reconsider the
	// window, and checkpoint if the interval has passed.
	pump := func() {
		if s.wd != nil {
			depth := 0
			if pender != nil {
				depth = pender.Pending()
			}
			s.wd.Beat(s.cfg.ShardIndex, stats.Sent, depth, uint64(sinceDrain))
		}
		flush()
		s.tel.Observe(telemetry.HistDrainBatch, uint64(sinceDrain))
		s.wd.Stage(s.cfg.ShardIndex, "drain")
		s.drain(&stats, handler)
		sendCooldown()
		s.wd.Stage(s.cfg.ShardIndex, "send")
		sinceDrain = 0
		if s.aimd != nil {
			prevWindow := window
			prevUp, prevDown := stats.RateUp, stats.RateDown
			window = s.aimd.update(stats.Sent-lastSent, stats.Received-lastRecv)
			lastSent, lastRecv = stats.Sent, stats.Received
			stats.RateUp = baseUp + s.aimd.ups
			stats.RateDown = baseDown + s.aimd.downs
			s.tel.Add(telemetry.ScanRateUp, stats.RateUp-prevUp)
			s.tel.Add(telemetry.ScanRateDown, stats.RateDown-prevDown)
			if window != prevWindow {
				s.tel.Trace(telemetry.EvAIMD, stats.Sent, zeroAddr, uint64(window))
				s.tel.SetGauge(telemetry.GaugeWindow, int64(window))
				// Window changes are rare and concern every target, so the
				// span is recorded unsampled.
				if s.tracer != nil {
					s.tracer.Span(s.trStream, telemetry.SpanAIMD, stats.Sent, zeroAddr, uint64(window))
				}
			}
		}
		if s.retry != nil {
			s.tel.SetGauge(telemetry.GaugeRetryPending, int64(s.retry.pending))
		}
		if nextCkpt > 0 && stats.Targets >= nextCkpt {
			emit(false)
			nextCkpt = stats.Targets + s.cfg.CheckpointEvery
		}
		s.cfg.Monitor.Tick()
	}
	// sendRetry re-probes a due entry (one probe, not ProbesPerTarget
	// copies) and reschedules it with exponential backoff.
	sendRetry := func(e retryEntry) error {
		pkt, err := buildProbe(e.dst)
		if err != nil {
			return fmt.Errorf("xmap: building retry probe for %s: %w", e.dst, err)
		}
		send(pkt)
		stats.Retried++
		sinceDrain++
		e.attempts++
		e.due = stats.Sent + uint64(s.cfg.RetryTimeout)<<(e.attempts-1)
		s.tel.Inc(telemetry.ScanRetried)
		s.tel.Trace(telemetry.EvRetry, stats.Sent, e.dst.Bytes(), uint64(e.attempts))
		traceSpan(telemetry.SpanRetry, e.dst, uint64(e.attempts))
		if !s.retry.push(e) {
			stats.RetryDropped++
			s.tel.Inc(telemetry.ScanRetryDropped)
		}
		return nil
	}

	ranOut := false
	for {
		if err := ctx.Err(); err != nil {
			flush()
			if s.cfg.OnCheckpoint != nil {
				// Collect what the driver already has, then leave a
				// resumable state behind: cancellation is the crash-safe
				// shutdown path.
				s.drain(&stats, handler)
				emit(false)
			}
			stats.Elapsed = priorElapsed + time.Since(start)
			return stats, err
		}
		// Service due retries ahead of fresh targets: their backoff
		// deadline has passed, and resolving them frees ring capacity.
		if s.retry != nil {
			for {
				e, ok := s.retry.popDue(stats.Sent)
				if !ok {
					break
				}
				if int(e.attempts) >= 1+s.cfg.Retries {
					stats.RetryExhausted++
					s.tel.Inc(telemetry.ScanRetryExhausted)
					s.tracer.Anomaly(telemetry.AnomalyRetryExhausted, s.trStream, stats.Sent, e.dst.Bytes())
					continue
				}
				if err := sendRetry(e); err != nil {
					flush()
					stats.Elapsed = priorElapsed + time.Since(start)
					return stats, err
				}
				if pumpDue() {
					pump()
				}
			}
		}
		if s.cfg.MaxTargets > 0 && stats.Targets >= s.cfg.MaxTargets {
			break
		}
		idx, ok := it.Next()
		if !ok {
			ranOut = true
			break
		}
		target, err := s.TargetFor(idx)
		if err != nil {
			flush()
			stats.Elapsed = priorElapsed + time.Since(start)
			return stats, err
		}
		if s.skipTarget(target) {
			stats.Blocked++
			s.tel.Inc(telemetry.ScanBlocked)
			continue
		}
		pkt, err := buildProbe(target)
		if err != nil {
			flush()
			stats.Elapsed = priorElapsed + time.Since(start)
			return stats, fmt.Errorf("xmap: building probe for %s: %w", target, err)
		}
		for copyN := 0; copyN < s.cfg.ProbesPerTarget; copyN++ {
			send(pkt)
		}
		if s.retry != nil {
			if !s.retry.push(retryEntry{
				idx:      idx,
				dst:      target,
				due:      stats.Sent + uint64(s.cfg.RetryTimeout),
				attempts: 1,
			}) {
				stats.RetryDropped++
				s.tel.Inc(telemetry.ScanRetryDropped)
			}
		}
		stats.Targets++
		sinceDrain++
		s.tel.Inc(telemetry.ScanTargets)
		s.tel.Trace(telemetry.EvProbeSent, stats.Sent, target.Bytes(), stats.Targets)
		traceSpan(telemetry.SpanSent, target, stats.Targets)
		if pumpDue() {
			pump()
		}
	}
	flush()

	// Cooldown: a bounded sequence of drain rounds collects stragglers (a
	// real driver may deliver late). Between rounds the probe clock jumps
	// to the next retry deadline, so pending retries get their backoff
	// tiers fired before the deadline expires; the final round only
	// drains.
	s.wd.Stage(s.cfg.ShardIndex, "cooldown")
	for round := 0; round < s.cfg.CooldownDrains; round++ {
		s.drain(&stats, handler)
		sendCooldown()
		if s.retry == nil || round == s.cfg.CooldownDrains-1 {
			continue
		}
		clock := stats.Sent
		if due, ok := s.retry.nextDue(); ok && due > clock {
			clock = due
		}
		for {
			e, ok := s.retry.popDue(clock)
			if !ok {
				break
			}
			if int(e.attempts) >= 1+s.cfg.Retries {
				stats.RetryExhausted++
				s.tel.Inc(telemetry.ScanRetryExhausted)
				s.tracer.Anomaly(telemetry.AnomalyRetryExhausted, s.trStream, stats.Sent, e.dst.Bytes())
				continue
			}
			if err := sendRetry(e); err != nil {
				stats.Elapsed = priorElapsed + time.Since(start)
				return stats, err
			}
		}
		flush()
	}
	// Account for whatever the deadline left unresolved.
	if s.retry != nil {
		for {
			e, ok := s.retry.popDue(^uint64(0))
			if !ok {
				break
			}
			if int(e.attempts) >= 1+s.cfg.Retries {
				stats.RetryExhausted++
				s.tel.Inc(telemetry.ScanRetryExhausted)
				s.tracer.Anomaly(telemetry.AnomalyRetryExhausted, s.trStream, stats.Sent, e.dst.Bytes())
			} else {
				stats.RetryAbandoned++
				s.tel.Inc(telemetry.ScanRetryAbandoned)
			}
		}
		s.tel.SetGauge(telemetry.GaugeRetryPending, 0)
	}
	emit(ranOut)
	stats.Elapsed = priorElapsed + time.Since(start)
	return stats, nil
}

// zeroAddr is the all-zero trace address for events that concern no
// particular target (window changes, checkpoints).
var zeroAddr [16]byte

// skipTarget applies allowlist then blocklist.
func (s *Scanner) skipTarget(a ipv6.Addr) bool {
	if s.allow != nil {
		if _, ok := s.allow.Lookup(a); !ok {
			return true
		}
	}
	if s.block != nil {
		if _, ok := s.block.Lookup(a); ok {
			return true
		}
	}
	return false
}

// drain pumps the receive path through classification, validation and
// dedup. A pipelined driver is flushed first, so the drain window is a
// barrier: every probe accepted before it has reached the packet layer,
// which keeps checkpoints (emitted only after a drain) and the
// batch-vs-per-packet oracle sound. Buffers that no Response retains
// (only KindUDPData keeps a Payload reference) go back to a Releaser
// driver afterwards.
func (s *Scanner) drain(stats *Stats, handler Handler) {
	rawMod, isRaw := s.probe.(RawProbeModule)
	releaser, _ := s.drv.(Releaser)
	if s.flusher != nil {
		s.flusher.Flush()
	}
	s.rx = s.drv.RecvBatch(s.rx[:0])
	if s.alias != nil && len(s.rx) > s.cfg.ShedBudget {
		s.shed(stats, releaser)
	}
	for _, raw := range s.rx {
		var (
			resp   Response
			ok     bool
			parsed bool
		)
		if isRaw {
			resp, ok = rawMod.ClassifyRaw(raw, s.validate)
		} else if err := s.sum.Parse(raw); err == nil {
			resp, ok = s.probe.Classify(&s.sum, s.validate)
			parsed = true
		}
		if releaser != nil && resp.Payload == nil {
			s.recycle = append(s.recycle, raw)
		}
		if !ok {
			stats.Invalid++
			s.tel.Inc(telemetry.ScanInvalid)
			if s.alias != nil {
				s.aliasQuarantine(raw, stats)
			}
			continue
		}
		stats.Received++
		s.tel.Inc(telemetry.ScanReceived)
		var hop uint64
		if parsed {
			hop = uint64(s.sum.IP.HopLimit)
			s.tel.Observe(telemetry.HistReplyHopLimit, hop)
		}
		ev := telemetry.EvReply
		if resp.Kind == KindDestUnreach || resp.Kind == KindTimeExceeded {
			ev = telemetry.EvICMPError
		}
		s.tel.Trace(ev, stats.Sent, resp.Responder.Bytes(), hop)
		// Spans key by the probed target (not the responder) so the
		// reply stitches onto the target's sent/hop spans.
		if s.tracer != nil {
			if b := resp.ProbeDst.Bytes(); s.tracer.SampleAddr(b) {
				kind := telemetry.SpanReply
				if ev == telemetry.EvICMPError {
					kind = telemetry.SpanICMPError
				}
				s.tracer.Span(s.trStream, kind, stats.Sent, b, hop)
			}
		}
		if s.retry != nil {
			// Any validated response resolves the probed target, even a
			// duplicate responder or an ICMP error: the path answered. The
			// resolved entry dates the probe, yielding the reply latency in
			// probe-clock ticks.
			if e, answered := s.retry.answered(resp.ProbeDst); answered {
				sentAt := e.due - uint64(s.cfg.RetryTimeout)<<(e.attempts-1)
				s.tel.Observe(telemetry.HistReplyLatency, stats.Sent-sentAt)
			}
		}
		if s.alias != nil && s.aliasObserve(&resp, stats) {
			// Detector traffic (cooldown-probe replies, saturation
			// chatter from prefixes under suspicion): consumed, never
			// dedup'd or handed to the handler.
			continue
		}
		if !s.dedup.checkAdd(resp.Responder) {
			stats.Duplicates++
			s.tel.Inc(telemetry.ScanDuplicates)
			if s.tracer != nil {
				if b := resp.ProbeDst.Bytes(); s.tracer.SampleAddr(b) {
					s.tracer.Span(s.trStream, telemetry.SpanDedup, stats.Sent, b, 0)
				}
			}
			continue
		}
		stats.Unique++
		s.tel.Inc(telemetry.ScanUnique)
		if handler != nil {
			handler(resp)
		}
	}
	if releaser != nil && len(s.recycle) > 0 {
		// Deferred past the loop: s.sum still references the most
		// recently parsed buffer until the next Parse.
		releaser.Release(s.recycle)
		clear(s.recycle)
		s.recycle = s.recycle[:0]
	}
	// Drop the drain slice's references so released buffers are not
	// pinned until the next drain.
	clear(s.rx)
	s.rx = s.rx[:0]
	if s.alias != nil {
		s.aliasTick()
	}
}

// rateLimiter is a token bucket over wall-clock time. Tokens refill in
// batches of ~1ms worth of probes rather than one per probe: at high
// rates a per-probe time.Sleep would need sub-microsecond precision the
// OS timer cannot deliver, silently capping throughput near the timer
// frequency. Batched refills sleep at most once per batch and keep the
// long-run average at the configured rate.
type rateLimiter struct {
	interval time.Duration // wall-clock budget per token batch
	batch    int           // tokens granted per refill
	tokens   int           // sends remaining before the next refill
	next     time.Time     // when the next refill is due
}

func newRateLimiter(rate int) *rateLimiter {
	batch := rate / 1000
	if batch < 1 {
		batch = 1
	}
	return &rateLimiter{
		interval: time.Duration(batch) * time.Second / time.Duration(rate),
		batch:    batch,
		next:     time.Now(),
	}
}

func (r *rateLimiter) wait() {
	if r.tokens > 0 {
		r.tokens--
		return
	}
	now := time.Now()
	if now.Before(r.next) {
		time.Sleep(r.next.Sub(now))
	}
	r.next = r.next.Add(r.interval)
	if r.next.Before(now.Add(-time.Second)) {
		// Deep deficit (slow sender); don't accumulate unbounded burst.
		r.next = now
	}
	r.tokens = r.batch - 1
}
