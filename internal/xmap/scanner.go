package xmap

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"time"

	"repro/internal/ipv6"
	"repro/internal/lpm"
	"repro/internal/perm"
	"repro/internal/uint128"
	"repro/internal/wire"
)

// Config parameterizes one scan.
type Config struct {
	// Window is the target space: all sub-prefixes of the given length
	// within the base prefix, each probed once at a pseudo-random
	// interface identifier (Section III-B).
	Window ipv6.Window
	// Probe is the probe module; nil means ICMPv6 echo.
	Probe ProbeModule
	// Seed keys the permutation, the per-target IIDs and the stateless
	// validation. Scans with equal seeds are identical.
	Seed []byte
	// ShardIndex/Shards split the permutation across scanner instances
	// (ZMap-style sharding); Shards=0 means 1.
	ShardIndex, Shards int
	// Rate caps probes per second; 0 disables limiting (the simulator
	// runs faster than any real link).
	Rate int
	// MaxTargets stops after probing this many sub-prefixes (0 = all).
	MaxTargets uint64
	// Blocklist prefixes are never probed; Allowlist, when non-empty,
	// restricts probing to within it.
	Blocklist []ipv6.Prefix
	Allowlist []ipv6.Prefix
	// ProbesPerTarget sends this many copies of each probe (ZMap's -P),
	// recovering hit rate on lossy paths; default 1. Duplicate replies
	// are absorbed by responder dedup.
	ProbesPerTarget int
	// DrainEvery pumps the receive path after this many probes
	// (default 64).
	DrainEvery int
	// DedupExact uses an exact map for responder dedup instead of the
	// default Bloom filter — the ablation knob of DESIGN.md.
	DedupExact bool
}

// Stats summarizes a finished scan.
type Stats struct {
	// Targets is the number of sub-prefixes probed.
	Targets    uint64
	Sent       uint64
	SendErrors uint64
	Received   uint64 // validated responses, including duplicates
	Invalid    uint64 // packets failing parse or validation
	Duplicates uint64 // validated responses from already-seen responders
	Unique     uint64 // unique responders handed to the handler
	Blocked    uint64 // targets skipped by blocklist/allowlist
	Elapsed    time.Duration
}

// HitRate is unique responders per probe sent.
func (s Stats) HitRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Unique) / float64(s.Sent)
}

// Handler consumes one first-seen responder.
type Handler func(Response)

// Scanner executes scans against a Driver.
type Scanner struct {
	cfg   Config
	drv   Driver
	probe ProbeModule
	cycle *perm.Cycle
	block *lpm.Table[bool]
	allow *lpm.Table[bool]
	dedup dedupSet
}

// New validates the configuration and prepares a scanner.
func New(cfg Config, drv Driver) (*Scanner, error) {
	if drv == nil {
		return nil, fmt.Errorf("xmap: nil driver")
	}
	if cfg.Window.To == 0 {
		return nil, fmt.Errorf("xmap: no scan window configured")
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.Shards {
		return nil, fmt.Errorf("xmap: shard %d of %d invalid", cfg.ShardIndex, cfg.Shards)
	}
	if cfg.DrainEvery <= 0 {
		cfg.DrainEvery = 64
	}
	if cfg.ProbesPerTarget <= 0 {
		cfg.ProbesPerTarget = 1
	}
	if cfg.ProbesPerTarget > 16 {
		return nil, fmt.Errorf("xmap: %d probes per target is unreasonable", cfg.ProbesPerTarget)
	}
	if len(cfg.Seed) == 0 {
		cfg.Seed = []byte("xmap-default-seed")
	}
	size, ok := cfg.Window.Size()
	if !ok {
		return nil, fmt.Errorf("xmap: window %s too large", cfg.Window)
	}
	cycle, err := perm.NewCycle(size, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("xmap: building permutation: %w", err)
	}
	s := &Scanner{cfg: cfg, drv: drv, cycle: cycle}
	s.probe = cfg.Probe
	if s.probe == nil {
		s.probe = &ICMPEchoProbe{}
	}
	if len(cfg.Blocklist) > 0 {
		s.block = lpm.New[bool]()
		for _, p := range cfg.Blocklist {
			s.block.Insert(p, true)
		}
	}
	if len(cfg.Allowlist) > 0 {
		s.allow = lpm.New[bool]()
		for _, p := range cfg.Allowlist {
			s.allow.Insert(p, true)
		}
	}
	if cfg.DedupExact {
		s.dedup = make(mapDedup)
	} else {
		bf, err := newBloomDedup(size)
		if err != nil {
			return nil, fmt.Errorf("xmap: sizing dedup filter: %w", err)
		}
		s.dedup = bf
	}
	return s, nil
}

// ResponderCounts returns per-responder response counts when the exact
// dedup set is in use (Config.DedupExact), nil otherwise. Infrastructure
// routers answer for many destinations; peripheries for few — the
// distinction Section IV-E's periphery validation leans on.
func (s *Scanner) ResponderCounts() map[ipv6.Addr]uint64 {
	if m, ok := s.dedup.(mapDedup); ok {
		return m
	}
	return nil
}

// Validation derives the stateless validation value for dst, exposed so
// cooperating tools (the loop scanner) can pre-compute expected values.
func (s *Scanner) Validation(dst ipv6.Addr) uint32 {
	mac := hmac.New(sha256.New, s.cfg.Seed)
	mac.Write([]byte("validate"))
	b := dst.Bytes()
	mac.Write(b[:])
	sum := mac.Sum(nil)
	return uint32(sum[0])<<24 | uint32(sum[1])<<16 | uint32(sum[2])<<8 | uint32(sum[3])
}

// TargetFor returns the probe address for a window index: the sub-prefix
// base combined with a pseudo-random host part (the nonexistent-address
// IID of Section III-B).
func (s *Scanner) TargetFor(idx uint128.Uint128) (ipv6.Addr, error) {
	sub, err := s.cfg.Window.Sub(idx)
	if err != nil {
		return ipv6.Addr{}, err
	}
	hostBits := uint(128 - s.cfg.Window.To)
	if hostBits == 0 {
		return sub.Addr(), nil
	}
	mac := hmac.New(sha256.New, s.cfg.Seed)
	mac.Write([]byte("iid"))
	b := sub.Addr().Bytes()
	mac.Write(b[:])
	sum := mac.Sum(nil)
	host := uint128.FromBytes(sum[:16])
	if hostBits < 128 {
		host = host.And(uint128.Max.Rsh(128 - hostBits))
	}
	if host.IsZero() {
		host = uint128.One // never probe the subnet-router anycast address
	}
	return ipv6.AddrFrom128(sub.Addr().Uint128().Or(host)), nil
}

// Run executes the scan, invoking handler for each first-seen responder.
// It honors ctx cancellation between probes.
func (s *Scanner) Run(ctx context.Context, handler Handler) (Stats, error) {
	var stats Stats
	start := time.Now()
	it := s.cycle.Shard(s.cfg.ShardIndex, s.cfg.Shards)
	src := s.drv.SourceAddr()

	var limiter *rateLimiter
	if s.cfg.Rate > 0 {
		limiter = newRateLimiter(s.cfg.Rate)
	}

	for {
		if err := ctx.Err(); err != nil {
			stats.Elapsed = time.Since(start)
			return stats, err
		}
		if s.cfg.MaxTargets > 0 && stats.Targets >= s.cfg.MaxTargets {
			break
		}
		idx, ok := it.Next()
		if !ok {
			break
		}
		target, err := s.TargetFor(idx)
		if err != nil {
			return stats, err
		}
		if s.skipTarget(target) {
			stats.Blocked++
			continue
		}
		pkt, err := s.probe.MakeProbe(src, target, s.Validation(target))
		if err != nil {
			return stats, fmt.Errorf("xmap: building probe for %s: %w", target, err)
		}
		for copyN := 0; copyN < s.cfg.ProbesPerTarget; copyN++ {
			if limiter != nil {
				limiter.wait()
			}
			if err := s.drv.Send(pkt); err != nil {
				stats.SendErrors++
			} else {
				stats.Sent++
			}
		}
		stats.Targets++
		if stats.Targets%uint64(s.cfg.DrainEvery) == 0 {
			s.drain(&stats, handler)
		}
	}
	// Final drains: catch stragglers (a real driver may deliver late).
	for i := 0; i < 3; i++ {
		s.drain(&stats, handler)
	}
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// skipTarget applies allowlist then blocklist.
func (s *Scanner) skipTarget(a ipv6.Addr) bool {
	if s.allow != nil {
		if _, ok := s.allow.Lookup(a); !ok {
			return true
		}
	}
	if s.block != nil {
		if _, ok := s.block.Lookup(a); ok {
			return true
		}
	}
	return false
}

// drain pumps the receive path through classification, validation and
// dedup.
func (s *Scanner) drain(stats *Stats, handler Handler) {
	rawMod, isRaw := s.probe.(RawProbeModule)
	for _, raw := range s.drv.Recv() {
		var (
			resp Response
			ok   bool
		)
		if isRaw {
			resp, ok = rawMod.ClassifyRaw(raw, s.Validation)
		} else {
			sum, err := wire.ParsePacket(raw)
			if err != nil {
				stats.Invalid++
				continue
			}
			resp, ok = s.probe.Classify(sum, s.Validation)
		}
		if !ok {
			stats.Invalid++
			continue
		}
		stats.Received++
		if s.dedup.seen(resp.Responder) {
			stats.Duplicates++
			s.dedup.add(resp.Responder) // keep per-responder counts exact
			continue
		}
		s.dedup.add(resp.Responder)
		stats.Unique++
		if handler != nil {
			handler(resp)
		}
	}
}

// rateLimiter is a token bucket over wall-clock time.
type rateLimiter struct {
	interval time.Duration
	next     time.Time
}

func newRateLimiter(rate int) *rateLimiter {
	return &rateLimiter{interval: time.Second / time.Duration(rate), next: time.Now()}
}

func (r *rateLimiter) wait() {
	now := time.Now()
	if now.Before(r.next) {
		time.Sleep(r.next.Sub(now))
	}
	r.next = r.next.Add(r.interval)
	if r.next.Before(now.Add(-time.Second)) {
		// Deep deficit (slow sender); don't accumulate unbounded burst.
		r.next = now
	}
}
