package xmap

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"hash"
	"time"

	"repro/internal/ipv6"
	"repro/internal/lpm"
	"repro/internal/perm"
	"repro/internal/uint128"
	"repro/internal/wire"
)

// Config parameterizes one scan.
type Config struct {
	// Window is the target space: all sub-prefixes of the given length
	// within the base prefix, each probed once at a pseudo-random
	// interface identifier (Section III-B).
	Window ipv6.Window
	// Probe is the probe module; nil means ICMPv6 echo.
	Probe ProbeModule
	// Seed keys the permutation, the per-target IIDs and the stateless
	// validation. Scans with equal seeds are identical.
	Seed []byte
	// ShardIndex/Shards split the permutation across scanner instances
	// (ZMap-style sharding); Shards=0 means 1.
	ShardIndex, Shards int
	// Rate caps probes per second; 0 disables limiting (the simulator
	// runs faster than any real link).
	Rate int
	// MaxTargets stops after probing this many sub-prefixes (0 = all).
	MaxTargets uint64
	// Blocklist prefixes are never probed; Allowlist, when non-empty,
	// restricts probing to within it.
	Blocklist []ipv6.Prefix
	Allowlist []ipv6.Prefix
	// ProbesPerTarget sends this many copies of each probe (ZMap's -P),
	// recovering hit rate on lossy paths; default 1. Duplicate replies
	// are absorbed by responder dedup.
	ProbesPerTarget int
	// DrainEvery pumps the receive path after this many probes
	// (default 64).
	DrainEvery int
	// DedupExact uses an exact map for responder dedup instead of the
	// default Bloom filter — the ablation knob of DESIGN.md.
	DedupExact bool

	// cycle, when set, is a pre-built permutation shared between the
	// scanners of one ScanParallel call (a Cycle is immutable, and its
	// construction — safe-prime search, generator selection — is the
	// dominant per-scanner setup cost).
	cycle *perm.Cycle
}

// Stats summarizes a finished scan.
type Stats struct {
	// Targets is the number of sub-prefixes probed.
	Targets    uint64
	Sent       uint64
	SendErrors uint64
	Received   uint64 // validated responses, including duplicates
	Invalid    uint64 // packets failing parse or validation
	Duplicates uint64 // validated responses from already-seen responders
	Unique     uint64 // unique responders handed to the handler
	Blocked    uint64 // targets skipped by blocklist/allowlist
	Elapsed    time.Duration
}

// HitRate is unique responders per probe sent.
func (s Stats) HitRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Unique) / float64(s.Sent)
}

// Handler consumes one first-seen responder.
type Handler func(Response)

// Scanner executes scans against a Driver. A Scanner is not safe for
// concurrent use: Validation, TargetFor and Run share reusable HMAC
// scratch state (ScanParallel gives each goroutine its own Scanner).
type Scanner struct {
	cfg   Config
	drv   Driver
	probe ProbeModule
	cycle *perm.Cycle
	block *lpm.Table[bool]
	allow *lpm.Table[bool]
	dedup dedupSet

	// iidMac is keyed once at construction and Reset per use: Go's HMAC
	// caches the marshaled keyed state after the first Sum, so the
	// per-target path allocates nothing. One digest per sub-prefix feeds
	// both the target IID (bytes 0:16) and the validation value (bytes
	// 16:20); lastSub caches it so the send path — TargetFor immediately
	// followed by Validation on the resulting target — computes the HMAC
	// once, not twice.
	iidMac  hash.Hash
	macSum  [sha256.Size]byte
	lastSub ipv6.Addr
	haveSub bool
	// macIn stages address bytes for the HMACs: writing a local array
	// through the hash.Hash interface would force a heap copy per call.
	macIn [16]byte
	// validate is the bound Validation method, constructed once —
	// passing s.Validation at a call site would allocate a closure per
	// packet.
	validate Validator
	batch    [][]byte
	// free holds probe buffers whose batch has been sent (BatchSender
	// does not retain them); recycle stages drained receive buffers for
	// return to a Releaser driver. Together they make the steady-state
	// probe loop allocation-free against the simulator drivers.
	free    [][]byte
	recycle [][]byte
	// sum is the receive path's reusable packet decoder.
	sum wire.Summary
}

// labelIID prefixes the per-sub HMAC input, hoisted to avoid a
// string-to-bytes conversion per target.
var labelIID = []byte("iid")

// defaultSeed is applied when Config.Seed is empty.
var defaultSeed = []byte("xmap-default-seed")

func seedOrDefault(seed []byte) []byte {
	if len(seed) == 0 {
		return defaultSeed
	}
	return seed
}

// New validates the configuration and prepares a scanner.
func New(cfg Config, drv Driver) (*Scanner, error) {
	if drv == nil {
		return nil, fmt.Errorf("xmap: nil driver")
	}
	if cfg.Window.To == 0 {
		return nil, fmt.Errorf("xmap: no scan window configured")
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.Shards {
		return nil, fmt.Errorf("xmap: shard %d of %d invalid", cfg.ShardIndex, cfg.Shards)
	}
	if cfg.DrainEvery <= 0 {
		cfg.DrainEvery = 64
	}
	if cfg.ProbesPerTarget <= 0 {
		cfg.ProbesPerTarget = 1
	}
	if cfg.ProbesPerTarget > 16 {
		return nil, fmt.Errorf("xmap: %d probes per target is unreasonable", cfg.ProbesPerTarget)
	}
	cfg.Seed = seedOrDefault(cfg.Seed)
	size, ok := cfg.Window.Size()
	if !ok {
		return nil, fmt.Errorf("xmap: window %s too large", cfg.Window)
	}
	cycle := cfg.cycle
	if cycle == nil {
		var err error
		cycle, err = perm.NewCycle(size, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("xmap: building permutation: %w", err)
		}
	}
	s := &Scanner{cfg: cfg, drv: drv, cycle: cycle}
	s.iidMac = hmac.New(sha256.New, cfg.Seed)
	s.validate = s.Validation
	s.probe = cfg.Probe
	if s.probe == nil {
		s.probe = &ICMPEchoProbe{}
	}
	if len(cfg.Blocklist) > 0 {
		s.block = lpm.New[bool]()
		for _, p := range cfg.Blocklist {
			s.block.Insert(p, true)
		}
	}
	if len(cfg.Allowlist) > 0 {
		s.allow = lpm.New[bool]()
		for _, p := range cfg.Allowlist {
			s.allow.Insert(p, true)
		}
	}
	if cfg.DedupExact {
		s.dedup = make(mapDedup)
	} else {
		// A sharded scanner only probes its slice of the space, so its
		// filter needs capacity for that slice, not the whole window.
		shardSpace := size
		if cfg.Shards > 1 {
			shardSpace, _ = size.Add64(uint64(cfg.Shards) - 1).Div64(uint64(cfg.Shards))
		}
		bf, err := newBloomDedup(shardSpace)
		if err != nil {
			return nil, fmt.Errorf("xmap: sizing dedup filter: %w", err)
		}
		s.dedup = bf
	}
	return s, nil
}

// ResponderCounts returns per-responder response counts when the exact
// dedup set is in use (Config.DedupExact), nil otherwise. Infrastructure
// routers answer for many destinations; peripheries for few — the
// distinction Section IV-E's periphery validation leans on.
func (s *Scanner) ResponderCounts() map[ipv6.Addr]uint64 {
	if m, ok := s.dedup.(mapDedup); ok {
		return m
	}
	return nil
}

// subDigest computes (or returns the cached) keyed digest for one
// sub-prefix base address.
func (s *Scanner) subDigest(sub ipv6.Addr) []byte {
	if !s.haveSub || sub != s.lastSub {
		s.iidMac.Reset()
		s.iidMac.Write(labelIID)
		s.macIn = sub.Bytes()
		s.iidMac.Write(s.macIn[:])
		s.iidMac.Sum(s.macSum[:0])
		s.lastSub, s.haveSub = sub, true
	}
	return s.macSum[:]
}

// Validation derives the stateless validation value for dst, exposed so
// cooperating tools (the loop scanner) can pre-compute expected values.
// The value is bound to the sub-prefix containing dst (a scan probes one
// address per sub, so this loses no discrimination) and comes from the
// same keyed digest that generates the target IID — halving HMAC work on
// the send path.
func (s *Scanner) Validation(dst ipv6.Addr) uint32 {
	p, err := ipv6.NewPrefix(dst, s.cfg.Window.To)
	if err != nil {
		return 0
	}
	sum := s.subDigest(p.Addr())
	return uint32(sum[16])<<24 | uint32(sum[17])<<16 | uint32(sum[18])<<8 | uint32(sum[19])
}

// TargetFor returns the probe address for a window index: the sub-prefix
// base combined with a pseudo-random host part (the nonexistent-address
// IID of Section III-B).
func (s *Scanner) TargetFor(idx uint128.Uint128) (ipv6.Addr, error) {
	sub, err := s.cfg.Window.Sub(idx)
	if err != nil {
		return ipv6.Addr{}, err
	}
	hostBits := uint(128 - s.cfg.Window.To)
	if hostBits == 0 {
		return sub.Addr(), nil
	}
	sum := s.subDigest(sub.Addr())
	host := uint128.FromBytes(sum[:16])
	if hostBits < 128 {
		host = host.And(uint128.Max.Rsh(128 - hostBits))
	}
	if host.IsZero() {
		host = uint128.One // never probe the subnet-router anycast address
	}
	return ipv6.AddrFrom128(sub.Addr().Uint128().Or(host)), nil
}

// Run executes the scan, invoking handler for each first-seen responder.
// It honors ctx cancellation between probes.
//
// When the driver implements BatchSender and no rate limit is set
// (pacing is inherently per-probe), probes accumulate and flush once
// per DrainEvery window, amortizing driver entry across the burst.
func (s *Scanner) Run(ctx context.Context, handler Handler) (Stats, error) {
	var stats Stats
	start := time.Now()
	it := s.cycle.Shard(s.cfg.ShardIndex, s.cfg.Shards)
	src := s.drv.SourceAddr()

	var limiter *rateLimiter
	if s.cfg.Rate > 0 {
		limiter = newRateLimiter(s.cfg.Rate)
	}
	batcher, _ := s.drv.(BatchSender)
	if limiter != nil {
		batcher = nil
	}
	// Probe-buffer recycling needs both the append-building probe module
	// and the batch driver's no-retention guarantee.
	appender, _ := s.probe.(AppendProbeModule)
	if batcher == nil {
		appender = nil
	}
	flush := func() {
		if batcher == nil || len(s.batch) == 0 {
			return
		}
		sent, err := batcher.SendBatch(s.batch)
		stats.Sent += uint64(sent)
		if err != nil {
			stats.SendErrors += uint64(len(s.batch) - sent)
		}
		if appender != nil {
			for i, p := range s.batch {
				// ProbesPerTarget copies are the same slice appended
				// consecutively; recycle each buffer once.
				if i > 0 && len(p) > 0 && len(s.batch[i-1]) > 0 && &p[0] == &s.batch[i-1][0] {
					continue
				}
				s.free = append(s.free, p)
			}
		}
		clear(s.batch)
		s.batch = s.batch[:0]
	}

	for {
		if err := ctx.Err(); err != nil {
			flush()
			stats.Elapsed = time.Since(start)
			return stats, err
		}
		if s.cfg.MaxTargets > 0 && stats.Targets >= s.cfg.MaxTargets {
			break
		}
		idx, ok := it.Next()
		if !ok {
			break
		}
		target, err := s.TargetFor(idx)
		if err != nil {
			flush()
			return stats, err
		}
		if s.skipTarget(target) {
			stats.Blocked++
			continue
		}
		var pkt []byte
		if appender != nil {
			var buf []byte
			if l := len(s.free); l > 0 {
				buf, s.free[l-1] = s.free[l-1], nil
				s.free = s.free[:l-1]
			}
			pkt, err = appender.AppendProbe(buf, src, target, s.Validation(target))
		} else {
			pkt, err = s.probe.MakeProbe(src, target, s.Validation(target))
		}
		if err != nil {
			flush()
			return stats, fmt.Errorf("xmap: building probe for %s: %w", target, err)
		}
		for copyN := 0; copyN < s.cfg.ProbesPerTarget; copyN++ {
			if batcher != nil {
				s.batch = append(s.batch, pkt)
				continue
			}
			if limiter != nil {
				limiter.wait()
			}
			if err := s.drv.Send(pkt); err != nil {
				stats.SendErrors++
			} else {
				stats.Sent++
			}
		}
		stats.Targets++
		if stats.Targets%uint64(s.cfg.DrainEvery) == 0 {
			flush()
			s.drain(&stats, handler)
		}
	}
	flush()
	// Final drains: catch stragglers (a real driver may deliver late).
	for i := 0; i < 3; i++ {
		s.drain(&stats, handler)
	}
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// skipTarget applies allowlist then blocklist.
func (s *Scanner) skipTarget(a ipv6.Addr) bool {
	if s.allow != nil {
		if _, ok := s.allow.Lookup(a); !ok {
			return true
		}
	}
	if s.block != nil {
		if _, ok := s.block.Lookup(a); ok {
			return true
		}
	}
	return false
}

// drain pumps the receive path through classification, validation and
// dedup. Buffers that no Response retains (only KindUDPData keeps a
// Payload reference) go back to a Releaser driver afterwards.
func (s *Scanner) drain(stats *Stats, handler Handler) {
	rawMod, isRaw := s.probe.(RawProbeModule)
	releaser, _ := s.drv.(Releaser)
	for _, raw := range s.drv.Recv() {
		var (
			resp Response
			ok   bool
		)
		if isRaw {
			resp, ok = rawMod.ClassifyRaw(raw, s.validate)
		} else if err := s.sum.Parse(raw); err == nil {
			resp, ok = s.probe.Classify(&s.sum, s.validate)
		}
		if releaser != nil && resp.Payload == nil {
			s.recycle = append(s.recycle, raw)
		}
		if !ok {
			stats.Invalid++
			continue
		}
		stats.Received++
		if s.dedup.seen(resp.Responder) {
			stats.Duplicates++
			s.dedup.add(resp.Responder) // keep per-responder counts exact
			continue
		}
		s.dedup.add(resp.Responder)
		stats.Unique++
		if handler != nil {
			handler(resp)
		}
	}
	if releaser != nil && len(s.recycle) > 0 {
		// Deferred past the loop: s.sum still references the most
		// recently parsed buffer until the next Parse.
		releaser.Release(s.recycle)
		clear(s.recycle)
		s.recycle = s.recycle[:0]
	}
}

// rateLimiter is a token bucket over wall-clock time.
type rateLimiter struct {
	interval time.Duration
	next     time.Time
}

func newRateLimiter(rate int) *rateLimiter {
	return &rateLimiter{interval: time.Second / time.Duration(rate), next: time.Now()}
}

func (r *rateLimiter) wait() {
	now := time.Now()
	if now.Before(r.next) {
		time.Sleep(r.next.Sub(now))
	}
	r.next = r.next.Add(r.interval)
	if r.next.Before(now.Add(-time.Second)) {
		// Deep deficit (slow sender); don't accumulate unbounded burst.
		r.next = now
	}
}
