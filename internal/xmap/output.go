package xmap

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/filter"
)

// Record exposes a response to the output-filter expression language
// (Section IV-B's field-filter module).
func (r Response) Record() filter.MapRecord {
	return filter.MapRecord{
		"responder":     r.Responder.String(),
		"probe_dst":     r.ProbeDst.String(),
		"kind":          r.Kind.String(),
		"code":          int64(r.Code),
		"same_prefix64": r.SamePrefix64(),
	}
}

// OutputModule consumes scan results, mirroring ZMap's output modules.
type OutputModule interface {
	// Write records one responder.
	Write(r Response) error
	// Flush finalizes buffered output.
	Flush() error
}

// CSVOutput streams results as CSV rows:
// responder,probe_dst,kind,code,same_prefix64.
type CSVOutput struct {
	mu sync.Mutex
	w  *csv.Writer
}

var _ OutputModule = (*CSVOutput)(nil)

// NewCSVOutput writes the header and returns the module.
func NewCSVOutput(w io.Writer) (*CSVOutput, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"responder", "probe_dst", "kind", "code", "same_prefix64"}); err != nil {
		return nil, fmt.Errorf("xmap: writing CSV header: %w", err)
	}
	return &CSVOutput{w: cw}, nil
}

// Write implements OutputModule.
func (o *CSVOutput) Write(r Response) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.w.Write([]string{
		r.Responder.String(),
		r.ProbeDst.String(),
		r.Kind.String(),
		fmt.Sprintf("%d", r.Code),
		fmt.Sprintf("%t", r.SamePrefix64()),
	})
}

// Flush implements OutputModule.
func (o *CSVOutput) Flush() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.w.Flush()
	return o.w.Error()
}

// JSONOutput streams results as one JSON object per line.
type JSONOutput struct {
	mu  sync.Mutex
	enc *json.Encoder
}

var _ OutputModule = (*JSONOutput)(nil)

// NewJSONOutput returns an NDJSON writer.
func NewJSONOutput(w io.Writer) *JSONOutput {
	return &JSONOutput{enc: json.NewEncoder(w)}
}

// jsonRecord is the serialized row shape.
type jsonRecord struct {
	Responder    string `json:"responder"`
	ProbeDst     string `json:"probe_dst"`
	Kind         string `json:"kind"`
	Code         uint8  `json:"code"`
	SamePrefix64 bool   `json:"same_prefix64"`
}

// Write implements OutputModule.
func (o *JSONOutput) Write(r Response) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.enc.Encode(jsonRecord{
		Responder:    r.Responder.String(),
		ProbeDst:     r.ProbeDst.String(),
		Kind:         r.Kind.String(),
		Code:         r.Code,
		SamePrefix64: r.SamePrefix64(),
	})
}

// Flush implements OutputModule.
func (o *JSONOutput) Flush() error { return nil }

// FilteredOutput gates an output module behind a filter expression.
type FilteredOutput struct {
	Expr *filter.Expr
	Next OutputModule
}

var _ OutputModule = (*FilteredOutput)(nil)

// NewFilteredOutput compiles src and wraps next.
func NewFilteredOutput(src string, next OutputModule) (*FilteredOutput, error) {
	e, err := filter.Parse(src)
	if err != nil {
		return nil, err
	}
	return &FilteredOutput{Expr: e, Next: next}, nil
}

// Write implements OutputModule.
func (o *FilteredOutput) Write(r Response) error {
	ok, err := o.Expr.Eval(r.Record())
	if err != nil {
		return fmt.Errorf("xmap: filter %q: %w", o.Expr, err)
	}
	if !ok {
		return nil
	}
	return o.Next.Write(r)
}

// Flush implements OutputModule.
func (o *FilteredOutput) Flush() error { return o.Next.Flush() }
