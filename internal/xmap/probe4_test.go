package xmap

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/ipv6"
	"repro/internal/netsim"
	"repro/internal/uint128"
	"repro/internal/wire"
)

// v4Fixture: a provider /24 with a handful of NAT gateways on distinct
// public addresses.
type v4Fixture struct {
	eng     *netsim.Engine
	edge    *netsim.Edge
	drv     *SimDriver
	publics []wire.IPv4Addr
}

func buildV4Fixture(t *testing.T) *v4Fixture {
	t.Helper()
	f := &v4Fixture{eng: netsim.New(77)}
	scanV4 := wire.IPv4AddrFrom(198, 51, 100, 7)
	f.edge = netsim.NewEdge("scanner4", ipv6.V4Mapped(uint32(scanV4)))
	isp := netsim.NewV4Router("isp4")
	up := isp.AddIface4(wire.IPv4AddrFrom(198, 51, 100, 1), "isp:up")
	f.eng.Connect(f.edge.Iface(), up, 0)
	isp.AddRoute4(scanV4, 32, up)

	for i := 0; i < 6; i++ {
		public := wire.IPv4AddrFrom(203, 0, 113, byte(10+i*7))
		nat := netsim.NewNATGateway("nat", public, []wire.IPv4Addr{wire.IPv4AddrFrom(192, 168, 1, 10)})
		down := isp.AddIface4(wire.IPv4AddrFrom(10, 0, 0, byte(2+i)), "isp:down")
		f.eng.Connect(down, nat.WAN(), 0)
		isp.AddRoute4(public, 32, down)
		f.publics = append(f.publics, public)
	}
	f.drv = NewSimDriver(f.eng, f.edge)
	return f
}

func TestV4WindowValidation(t *testing.T) {
	if _, err := V4Window(wire.IPv4AddrFrom(10, 0, 0, 0), 8, 8); err == nil {
		t.Error("degenerate window accepted")
	}
	if _, err := V4Window(wire.IPv4AddrFrom(10, 0, 0, 0), 8, 33); err == nil {
		t.Error("overlong window accepted")
	}
	w, err := V4Window(wire.IPv4AddrFrom(192, 168, 0, 0), 20, 25)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's own example: 192.168.0.0/20-25 has 32 sub-prefixes.
	if w.Width() != 5 {
		t.Errorf("width = %d", w.Width())
	}
}

// TestV4ScanFindsNATGateways scans 203.0.113.0/24 address by address
// (window /24-32): only the public NAT addresses answer — the IPv4
// world's entire visible periphery is one address per home (and brute
// force over the full space is what makes that feasible at all).
func TestV4ScanFindsNATGateways(t *testing.T) {
	f := buildV4Fixture(t)
	w, err := V4Window(wire.IPv4AddrFrom(203, 0, 113, 0), 24, 32)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Window: w, Probe: &ICMPEcho4Probe{}, Seed: []byte("v4")}, f.drv)
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint32]ResponseKind{}
	stats, err := s.Run(context.Background(), func(r Response) {
		v4, ok := r.Responder.AsV4()
		if !ok {
			t.Errorf("non-v4 responder %s", r.Responder)
			return
		}
		found[v4] = r.Kind
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != 256 {
		t.Errorf("sent = %d", stats.Sent)
	}
	for _, pub := range f.publics {
		kind, ok := found[uint32(pub)]
		if !ok {
			t.Errorf("NAT gateway %s not found", pub)
			continue
		}
		if kind != KindEchoReply {
			t.Errorf("gateway %s found via %s", pub, kind)
		}
	}
	// Nothing from private space ever appears.
	for v4 := range found {
		if byte(v4>>24) == 192 {
			t.Errorf("private address leaked: %s", wire.IPv4Addr(v4))
		}
	}
}

// TestV4TargetForStaysMapped verifies the iterator emits v4-mapped
// addresses for v4 windows.
func TestV4TargetForStaysMapped(t *testing.T) {
	f := buildV4Fixture(t)
	w, err := V4Window(wire.IPv4AddrFrom(10, 0, 0, 0), 8, 24)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Window: w, Probe: &ICMPEcho4Probe{}, Seed: []byte("v4t")}, f.drv)
	if err != nil {
		t.Fatal(err)
	}
	it := 0
	cycleProbe := func() {
		target, err := s.TargetFor(uint128.From64(uint64(it)))
		if err != nil {
			t.Fatal(err)
		}
		v4, ok := target.AsV4()
		if !ok {
			t.Fatalf("target %s not v4-mapped", target)
		}
		if byte(v4>>24) != 10 {
			t.Fatalf("target %s outside 10/8", wire.IPv4Addr(v4))
		}
		it++
	}
	for i := 0; i < 100; i++ {
		cycleProbe()
	}
}

func TestICMPEcho4ProbeRejectsNonMapped(t *testing.T) {
	p := &ICMPEcho4Probe{}
	if _, err := p.MakeProbe(ipv6.MustParseAddr("2001:db8::1"), ipv6.V4Mapped(1), 0); err == nil {
		t.Error("v6 source accepted")
	}
	if _, err := p.MakeProbe(ipv6.V4Mapped(1), ipv6.MustParseAddr("2001:db8::1"), 0); err == nil {
		t.Error("v6 target accepted")
	}
}

func TestParseV4Window(t *testing.T) {
	w, err := ParseV4Window("192.168.0.0/20-25")
	if err != nil {
		t.Fatal(err)
	}
	if w.Width() != 5 {
		t.Errorf("width = %d", w.Width())
	}
	for _, bad := range []string{
		"192.168.0.0", "192.168.0.0/20", "192.168.0.0/25-20",
		"300.0.0.0/8-16", "1.2.3/8-16", "a.b.c.d/8-16",
	} {
		if _, err := ParseV4Window(bad); err == nil {
			t.Errorf("ParseV4Window(%q) accepted", bad)
		}
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	f := buildV4Fixture(t)
	w, err := V4Window(wire.IPv4AddrFrom(203, 0, 113, 0), 24, 32)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Window: w, Probe: &ICMPEcho4Probe{}, Seed: []byte("md")}, f.drv)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	md := s.BuildMetadata(stats, time.Now())
	if md.Probe != "icmp4_echoscan" || md.Sent != 256 || md.Unique == 0 {
		t.Errorf("metadata = %+v", md)
	}
	var buf bytes.Buffer
	if err := md.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"unique_responders"`) {
		t.Errorf("json = %s", buf.String())
	}
}
