package xmap

import "sync/atomic"

// SPSC is a bounded lock-free single-producer/single-consumer queue — the
// handoff between a shard's probe-generation goroutine and its
// transmission pump (RingDriver). One goroutine may call Push/PushBatch,
// one other goroutine may call Pop/PopBatch; Len and Cap are safe from
// anywhere. The implementation is the classic power-of-two ring with
// monotonic head/tail counters: the producer owns tail, the consumer owns
// head, and each side caches its last view of the other's counter so the
// steady state costs one atomic store per operation and touches the
// opposing cache line only when its cached view goes stale.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	// head is the next slot to pop; only the consumer advances it.
	// cachedTail is the consumer's last observed tail.
	_          [64]byte // keep the counters on separate cache lines
	head       atomic.Uint64
	cachedTail uint64

	// tail is the next slot to push; only the producer advances it.
	// cachedHead is the producer's last observed head.
	_          [64]byte
	tail       atomic.Uint64
	cachedHead uint64
	_          [64]byte
}

// NewSPSC creates a queue holding up to capacity elements; capacity is
// rounded up to a power of two (minimum 2).
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the queue capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len returns the number of queued elements. It is a racy snapshot when
// both sides are running, exact when either side is quiescent.
func (q *SPSC[T]) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// Push appends v, returning false when the queue is full. Producer side
// only.
func (q *SPSC[T]) Push(v T) bool {
	t := q.tail.Load()
	if t-q.cachedHead > q.mask {
		q.cachedHead = q.head.Load()
		if t-q.cachedHead > q.mask {
			return false
		}
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	return true
}

// PushBatch appends as many of vs as fit and returns how many it took.
// Producer side only.
func (q *SPSC[T]) PushBatch(vs []T) int {
	t := q.tail.Load()
	free := q.mask + 1 - (t - q.cachedHead)
	if uint64(len(vs)) > free {
		q.cachedHead = q.head.Load()
		free = q.mask + 1 - (t - q.cachedHead)
	}
	n := len(vs)
	if uint64(n) > free {
		n = int(free)
	}
	for i := 0; i < n; i++ {
		q.buf[(t+uint64(i))&q.mask] = vs[i]
	}
	if n > 0 {
		q.tail.Store(t + uint64(n))
	}
	return n
}

// Pop removes and returns the oldest element, reporting false on an
// empty queue. Consumer side only.
func (q *SPSC[T]) Pop() (T, bool) {
	var zero T
	h := q.head.Load()
	if h == q.cachedTail {
		q.cachedTail = q.tail.Load()
		if h == q.cachedTail {
			return zero, false
		}
	}
	v := q.buf[h&q.mask]
	q.buf[h&q.mask] = zero // release the element's references
	q.head.Store(h + 1)
	return v, true
}

// PopBatch fills dst with up to len(dst) queued elements and returns how
// many it took. Consumer side only.
func (q *SPSC[T]) PopBatch(dst []T) int {
	var zero T
	h := q.head.Load()
	avail := q.cachedTail - h
	if uint64(len(dst)) > avail {
		q.cachedTail = q.tail.Load()
		avail = q.cachedTail - h
		if avail == 0 {
			return 0
		}
	}
	n := len(dst)
	if uint64(n) > avail {
		n = int(avail)
	}
	for i := 0; i < n; i++ {
		dst[i] = q.buf[(h+uint64(i))&q.mask]
		q.buf[(h+uint64(i))&q.mask] = zero
	}
	q.head.Store(h + uint64(n))
	return n
}
