package xmap

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ipv6"
	"repro/internal/uint128"
)

// retryEntry is one probed sub-prefix awaiting an answer. due is a
// probe-clock tick (probes sent so far); when the clock passes it
// without a validated response for dst, the target is re-probed.
type retryEntry struct {
	idx      uint128.Uint128 // window index of the sub-prefix
	dst      ipv6.Addr       // probe destination (recomputable from idx)
	due      uint64          // probe-clock tick the retry fires at
	attempts uint8           // probes already sent for this target
	answered bool            // tombstone set by a validated response
}

// retryRing is the bounded retry scheduler: a FIFO ring of unanswered
// targets, ordered by first-probe time. Ordering by due time is
// approximate — a backoff retry re-enters at the tail — which keeps
// every operation O(1); head-of-line entries gate dispatch. When the
// ring is full, new targets are dropped (and counted), bounding the
// scheduler's memory however lossy the path: the paper's week-long scans
// cannot afford per-target state proportional to the window.
type retryRing struct {
	entries []retryEntry
	head    int                 // slot of the oldest entry
	n       int                 // occupied slots (tombstones included)
	pending int                 // occupied minus tombstones
	byDst   map[ipv6.Addr]int32 // destination -> occupied slot
	dropped uint64              // pushes refused because the ring was full
}

func newRetryRing(capacity int) *retryRing {
	return &retryRing{
		entries: make([]retryEntry, capacity),
		byDst:   make(map[ipv6.Addr]int32, capacity),
	}
}

// push enqueues a pending target; false (and a drop count) if full.
func (r *retryRing) push(e retryEntry) bool {
	if r.n == len(r.entries) {
		r.dropped++
		return false
	}
	slot := (r.head + r.n) % len(r.entries)
	r.entries[slot] = e
	r.byDst[e.dst] = int32(slot)
	r.n++
	r.pending++
	return true
}

// answered marks dst's entry as resolved and returns a copy of it (the
// caller dates the original probe from due and attempts); the tombstone
// is reclaimed when it reaches the head.
func (r *retryRing) answered(dst ipv6.Addr) (retryEntry, bool) {
	slot, ok := r.byDst[dst]
	if !ok {
		return retryEntry{}, false
	}
	e := r.entries[slot]
	r.entries[slot].answered = true
	delete(r.byDst, dst)
	r.pending--
	return e, true
}

// skipAnswered reclaims tombstones at the head.
func (r *retryRing) skipAnswered() {
	for r.n > 0 && r.entries[r.head].answered {
		r.entries[r.head] = retryEntry{}
		r.head = (r.head + 1) % len(r.entries)
		r.n--
	}
}

// popDue dequeues the head entry if its retry time has passed.
func (r *retryRing) popDue(clock uint64) (retryEntry, bool) {
	r.skipAnswered()
	if r.n == 0 || r.entries[r.head].due > clock {
		return retryEntry{}, false
	}
	e := r.entries[r.head]
	delete(r.byDst, e.dst)
	r.entries[r.head] = retryEntry{}
	r.head = (r.head + 1) % len(r.entries)
	r.n--
	r.pending--
	return e, true
}

// nextDue returns the head entry's retry tick, if any entry is pending.
func (r *retryRing) nextDue() (uint64, bool) {
	r.skipAnswered()
	if r.n == 0 {
		return 0, false
	}
	return r.entries[r.head].due, true
}

// appendState serializes the pending entries in FIFO order: count, then
// (index, due, attempts) per entry. Destinations are recomputed from the
// window index on restore.
func (r *retryRing) appendState(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.pending))
	for i := 0; i < r.n; i++ {
		e := &r.entries[(r.head+i)%len(r.entries)]
		if e.answered {
			continue
		}
		dst = binary.BigEndian.AppendUint64(dst, e.idx.Hi)
		dst = binary.BigEndian.AppendUint64(dst, e.idx.Lo)
		dst = binary.BigEndian.AppendUint64(dst, e.due)
		dst = append(dst, e.attempts)
	}
	return dst
}

// retryEntrySize is the serialized size of one pending entry.
const retryEntrySize = 8 + 8 + 8 + 1

// restoreState refills the ring from an appendState payload. targetFor
// recomputes each entry's probe destination (and thereby revalidates the
// stored index against the configured window).
func (r *retryRing) restoreState(data []byte, targetFor func(uint128.Uint128) (ipv6.Addr, error)) error {
	if len(data) < 4 {
		return fmt.Errorf("xmap: retry state truncated: %d bytes", len(data))
	}
	n := binary.BigEndian.Uint32(data[:4])
	data = data[4:]
	if uint64(len(data)) != uint64(n)*retryEntrySize {
		return fmt.Errorf("xmap: retry state %d bytes for %d entries", len(data), n)
	}
	if int(n) > len(r.entries) {
		return fmt.Errorf("xmap: retry state holds %d entries, ring capacity %d", n, len(r.entries))
	}
	for i := uint32(0); i < n; i++ {
		off := int(i) * retryEntrySize
		e := retryEntry{
			idx: uint128.New(binary.BigEndian.Uint64(data[off:]),
				binary.BigEndian.Uint64(data[off+8:])),
			due:      binary.BigEndian.Uint64(data[off+16:]),
			attempts: data[off+24],
		}
		if e.attempts == 0 {
			return fmt.Errorf("xmap: retry state entry %d has zero attempts", i)
		}
		dst, err := targetFor(e.idx)
		if err != nil {
			return fmt.Errorf("xmap: retry state entry %d: %w", i, err)
		}
		e.dst = dst
		if _, dup := r.byDst[dst]; dup {
			return fmt.Errorf("xmap: retry state repeats target %s", dst)
		}
		if !r.push(e) {
			return fmt.Errorf("xmap: retry state overflows ring")
		}
	}
	return nil
}
