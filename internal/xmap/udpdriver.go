package xmap

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/ipv6"
)

// UDPDriver tunnels scanner packets through a real loopback UDP socket
// pair: probes leave as UDP payloads, a responder process answers on its
// own schedule, and replies arrive asynchronously — the behavior a raw
// socket driver has in production, which the lock-step simulator driver
// cannot exhibit. It exists to prove the scanner's receive path handles
// late and bursty delivery.
type UDPDriver struct {
	src      ipv6.Addr
	conn     *net.UDPConn
	respSide *net.UDPConn
	peer     *net.UDPAddr

	mu     sync.Mutex
	buf    [][]byte
	closed bool

	done chan struct{} // reader goroutine exit
}

var _ Driver = (*UDPDriver)(nil)
var _ PacketDriver = (*UDPDriver)(nil)

// Responder consumes one tunneled packet and returns reply packets.
type Responder func(pkt []byte) [][]byte

// maxTunnelPacket bounds one tunneled frame.
const maxTunnelPacket = 64 << 10

// NewUDPDriver opens a loopback socket pair; handler runs in a
// responder goroutine, answering every packet the scanner sends. Call
// Close to stop both sides and release the sockets.
func NewUDPDriver(src ipv6.Addr, handler Responder) (*UDPDriver, error) {
	scanSide, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("xmap: udp driver listen: %w", err)
	}
	respSide, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		closeErr := scanSide.Close()
		return nil, errors.Join(fmt.Errorf("xmap: udp responder listen: %w", err), closeErr)
	}

	d := &UDPDriver{
		src:      src,
		conn:     scanSide,
		respSide: respSide,
		peer:     respSide.LocalAddr().(*net.UDPAddr),
		done:     make(chan struct{}),
	}

	// Responder: read, handle, reply to the sender.
	go func() {
		defer close(d.done)
		buf := make([]byte, maxTunnelPacket)
		for {
			n, from, err := respSide.ReadFromUDP(buf)
			if err != nil {
				return // socket closed
			}
			pkt := append([]byte(nil), buf[:n]...)
			for _, reply := range handler(pkt) {
				if _, err := respSide.WriteToUDP(reply, from); err != nil {
					return
				}
			}
		}
	}()

	// Receiver: drain the scanner-side socket into the buffer.
	go func() {
		buf := make([]byte, maxTunnelPacket)
		for {
			n, err := scanSide.Read(buf)
			if err != nil {
				return
			}
			pkt := append([]byte(nil), buf[:n]...)
			d.mu.Lock()
			if !d.closed {
				d.buf = append(d.buf, pkt)
			}
			d.mu.Unlock()
		}
	}()

	return d, nil
}

// Send implements PacketDriver.
func (d *UDPDriver) Send(pkt []byte) error {
	_, err := d.conn.WriteToUDP(pkt, d.peer)
	return err
}

// SendBatch implements Driver: one datagram per packet. The first write
// error reports the failing packet's position per the Driver contract.
func (d *UDPDriver) SendBatch(pkts [][]byte) (int, error) {
	for i, pkt := range pkts {
		if _, err := d.conn.WriteToUDP(pkt, d.peer); err != nil {
			return i, err
		}
	}
	return len(pkts), nil
}

// Recv implements PacketDriver.
func (d *UDPDriver) Recv() [][]byte {
	d.mu.Lock()
	out := d.buf
	d.buf = nil
	d.mu.Unlock()
	return out
}

// RecvBatch implements Driver.
func (d *UDPDriver) RecvBatch(buf [][]byte) [][]byte {
	d.mu.Lock()
	buf = append(buf, d.buf...)
	clear(d.buf)
	d.buf = d.buf[:0]
	d.mu.Unlock()
	return buf
}

// SourceAddr implements Driver.
func (d *UDPDriver) SourceAddr() ipv6.Addr { return d.src }

// Close stops both sides and waits for the responder goroutine to exit.
// Safe to call once.
func (d *UDPDriver) Close() error {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	err := errors.Join(d.conn.Close(), d.respSide.Close())
	<-d.done
	return err
}
