package xmap

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/ipv6"
	"repro/internal/lpm"
)

// BlockRuntime inserts a prefix into the scanner's blocklist while a
// scan runs — the alias detector's feedback path: confirmed-saturated
// prefixes are folded in so the permutation skips their remaining
// targets (counted in Stats.Blocked, exactly like configured entries).
// Not safe to call concurrently with Run from another goroutine; the
// detector calls it from within the scan loop.
func (s *Scanner) BlockRuntime(p ipv6.Prefix) {
	if s.block == nil {
		s.block = lpm.New[bool]()
	}
	s.block.Insert(p, true)
}

// ParseBlocklist reads a ZMap-style blocklist: one prefix per line,
// with `#` comments and blank lines ignored. Bare addresses are treated
// as /128 (or /32 for dotted quads, returned v4-mapped).
//
// Research scanners ship with a blocklist of reserved and opt-out space;
// the paper's ethics section (IV-D) requires honoring it.
func ParseBlocklist(r io.Reader) ([]ipv6.Prefix, error) {
	var out []ipv6.Prefix
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		p, err := parseBlockEntry(line)
		if err != nil {
			return nil, fmt.Errorf("xmap: blocklist line %d: %w", lineNo, err)
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("xmap: reading blocklist: %w", err)
	}
	return out, nil
}

func parseBlockEntry(s string) (ipv6.Prefix, error) {
	if strings.Contains(s, ":") {
		if strings.Contains(s, "/") {
			return ipv6.ParsePrefix(s)
		}
		a, err := ipv6.ParseAddr(s)
		if err != nil {
			return ipv6.Prefix{}, err
		}
		return ipv6.NewPrefix(a, 128)
	}
	// Dotted quad, possibly with /len: map into ::ffff:0:0/96.
	addrPart, lenPart, hasLen := strings.Cut(s, "/")
	v4, err := parseDottedQuad(addrPart)
	if err != nil {
		return ipv6.Prefix{}, err
	}
	bits := 32
	if hasLen {
		if _, err := fmt.Sscanf(lenPart, "%d", &bits); err != nil || bits < 0 || bits > 32 {
			return ipv6.Prefix{}, fmt.Errorf("bad IPv4 prefix length %q", lenPart)
		}
	}
	return ipv6.NewPrefix(ipv6.V4Mapped(v4), 96+bits)
}

func parseDottedQuad(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	var v uint32
	for _, p := range parts {
		var o int
		if _, err := fmt.Sscanf(p, "%d", &o); err != nil || o < 0 || o > 255 || fmt.Sprintf("%d", o) != p {
			return 0, fmt.Errorf("bad IPv4 octet %q in %q", p, s)
		}
		v = v<<8 | uint32(o)
	}
	return v, nil
}
