// Package xmap implements the paper's primary contribution: the XMap
// fast IPv6 network scanner. It re-creates the ZMap architecture the
// paper extends — modular probes, stateless validation, random address
// permutation, sharding, rate limiting — with the key generalization that
// the target space is an arbitrary bit window of the IPv6 space (e.g.
// the /32-64 sub-prefix window of one ISP block), per Section IV-B.
package xmap

import (
	"repro/internal/ipv6"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// Driver abstracts the packet layer under the scanner. The production
// analogue is a raw socket (or PF_RING); this repository provides the
// simulator driver and an in-memory loopback for tests.
type Driver interface {
	// Send transmits one raw IPv6 packet.
	Send(pkt []byte) error
	// Recv drains packets that have arrived since the last call. It
	// never blocks.
	Recv() [][]byte
	// SourceAddr is the scanner's source address.
	SourceAddr() ipv6.Addr
}

// BatchSender is an optional Driver capability: a burst of probes
// enters the packet layer in one call, amortizing per-entry overhead
// (for the simulator drivers, one engine lock acquisition and one
// quiescence pump per batch instead of per probe). It returns the
// number of packets transmitted. The driver must not retain the packet
// slices after SendBatch returns — callers recycle them.
type BatchSender interface {
	SendBatch(pkts [][]byte) (int, error)
}

// Releaser is an optional Driver capability: hand packet buffers
// obtained from Recv back to the packet layer once the caller has fully
// processed them, letting the simulator engines reuse the memory. The
// caller must drop every reference into the released buffers.
type Releaser interface {
	Release(pkts [][]byte)
}

// SimDriver runs the scanner against a netsim topology through an edge
// node.
type SimDriver struct {
	eng  *netsim.Engine
	edge *netsim.Edge
}

var _ Driver = (*SimDriver)(nil)

// NewSimDriver wires a driver to the engine at the given edge.
func NewSimDriver(eng *netsim.Engine, edge *netsim.Edge) *SimDriver {
	return &SimDriver{eng: eng, edge: edge}
}

// Send implements Driver. The simulator is lock-step: by the time Send
// returns, every packet the probe will ever trigger has been delivered.
func (d *SimDriver) Send(pkt []byte) error {
	d.eng.Inject(d.edge.Iface(), pkt)
	return nil
}

// SendBatch implements BatchSender.
func (d *SimDriver) SendBatch(pkts [][]byte) (int, error) {
	d.eng.InjectBatch(d.edge.Iface(), pkts)
	return len(pkts), nil
}

// Recv implements Driver.
func (d *SimDriver) Recv() [][]byte { return d.edge.Drain() }

// Release implements Releaser.
func (d *SimDriver) Release(pkts [][]byte) { d.eng.ReleaseBufs(pkts) }

// SourceAddr implements Driver.
func (d *SimDriver) SourceAddr() ipv6.Addr { return d.edge.Addr() }

// RegisterTelemetry folds the engine's traffic totals into reg's
// snapshots. netsim deliberately does not import telemetry; the driver
// is the layer that knows both sides, so the glue lives here. The
// engine counts under its own lock and the collector reads at snapshot
// time — the simulation hot path pays nothing.
func (d *SimDriver) RegisterTelemetry(reg *telemetry.Registry) {
	reg.Register(engineCollector(d.eng.Counters))
}

// GroupDriver runs the scanner against a sharded netsim.EngineGroup:
// every probe is routed to the engine shard owning its destination
// prefix, so concurrent senders (ScanParallel) pump disjoint
// serialization domains in parallel instead of convoying on one engine
// lock. All shards deliver responses to the same edge.
type GroupDriver struct {
	grp  *netsim.EngineGroup
	edge *netsim.Edge
}

var _ Driver = (*GroupDriver)(nil)
var _ BatchSender = (*GroupDriver)(nil)

// NewGroupDriver wires a driver to the engine group at the given edge.
// The edge must be attached to every shard (topo.Build deployments are).
func NewGroupDriver(grp *netsim.EngineGroup, edge *netsim.Edge) *GroupDriver {
	return &GroupDriver{grp: grp, edge: edge}
}

// Send implements Driver.
func (d *GroupDriver) Send(pkt []byte) error {
	d.grp.Inject(pkt)
	return nil
}

// SendBatch implements BatchSender.
func (d *GroupDriver) SendBatch(pkts [][]byte) (int, error) {
	d.grp.InjectBatch(pkts)
	return len(pkts), nil
}

// Recv implements Driver.
func (d *GroupDriver) Recv() [][]byte { return d.edge.Drain() }

// Release implements Releaser.
func (d *GroupDriver) Release(pkts [][]byte) { d.grp.ReleaseBufs(pkts) }

// SourceAddr implements Driver.
func (d *GroupDriver) SourceAddr() ipv6.Addr { return d.edge.Addr() }

// RegisterTelemetry folds the group's summed engine totals into reg's
// snapshots (see SimDriver.RegisterTelemetry).
func (d *GroupDriver) RegisterTelemetry(reg *telemetry.Registry) {
	reg.Register(engineCollector(d.grp.Counters))
}

// engineCollector adapts a netsim counter source to a telemetry
// collector.
func engineCollector(counters func() netsim.Counters) telemetry.Collector {
	return func(add func(telemetry.Counter, uint64)) {
		c := counters()
		add(telemetry.SimEvents, c.Events)
		add(telemetry.SimTransmissions, c.Transmissions)
		add(telemetry.SimBytes, c.Bytes)
		add(telemetry.SimDropped, c.Dropped)
	}
}

// ChanDriver is a test driver connecting the scanner to a handler
// function: every sent packet is answered by fn (nil = drop).
type ChanDriver struct {
	Src ipv6.Addr
	Fn  func(pkt []byte) [][]byte

	buf [][]byte
}

var _ Driver = (*ChanDriver)(nil)

// Send implements Driver.
func (d *ChanDriver) Send(pkt []byte) error {
	if d.Fn != nil {
		d.buf = append(d.buf, d.Fn(pkt)...)
	}
	return nil
}

// Recv implements Driver.
func (d *ChanDriver) Recv() [][]byte {
	out := d.buf
	d.buf = nil
	return out
}

// SourceAddr implements Driver.
func (d *ChanDriver) SourceAddr() ipv6.Addr { return d.Src }
