// Package xmap implements the paper's primary contribution: the XMap
// fast IPv6 network scanner. It re-creates the ZMap architecture the
// paper extends — modular probes, stateless validation, random address
// permutation, sharding, rate limiting — with the key generalization that
// the target space is an arbitrary bit window of the IPv6 space (e.g.
// the /32-64 sub-prefix window of one ISP block), per Section IV-B.
package xmap

import (
	"repro/internal/ipv6"
	"repro/internal/netsim"
)

// Driver abstracts the packet layer under the scanner. The production
// analogue is a raw socket (or PF_RING); this repository provides the
// simulator driver and an in-memory loopback for tests.
type Driver interface {
	// Send transmits one raw IPv6 packet.
	Send(pkt []byte) error
	// Recv drains packets that have arrived since the last call. It
	// never blocks.
	Recv() [][]byte
	// SourceAddr is the scanner's source address.
	SourceAddr() ipv6.Addr
}

// SimDriver runs the scanner against a netsim topology through an edge
// node.
type SimDriver struct {
	eng  *netsim.Engine
	edge *netsim.Edge
}

var _ Driver = (*SimDriver)(nil)

// NewSimDriver wires a driver to the engine at the given edge.
func NewSimDriver(eng *netsim.Engine, edge *netsim.Edge) *SimDriver {
	return &SimDriver{eng: eng, edge: edge}
}

// Send implements Driver. The simulator is lock-step: by the time Send
// returns, every packet the probe will ever trigger has been delivered.
func (d *SimDriver) Send(pkt []byte) error {
	d.eng.Inject(d.edge.Iface(), pkt)
	return nil
}

// Recv implements Driver.
func (d *SimDriver) Recv() [][]byte { return d.edge.Drain() }

// SourceAddr implements Driver.
func (d *SimDriver) SourceAddr() ipv6.Addr { return d.edge.Addr() }

// ChanDriver is a test driver connecting the scanner to a handler
// function: every sent packet is answered by fn (nil = drop).
type ChanDriver struct {
	Src ipv6.Addr
	Fn  func(pkt []byte) [][]byte

	buf [][]byte
}

var _ Driver = (*ChanDriver)(nil)

// Send implements Driver.
func (d *ChanDriver) Send(pkt []byte) error {
	if d.Fn != nil {
		d.buf = append(d.buf, d.Fn(pkt)...)
	}
	return nil
}

// Recv implements Driver.
func (d *ChanDriver) Recv() [][]byte {
	out := d.buf
	d.buf = nil
	return out
}

// SourceAddr implements Driver.
func (d *ChanDriver) SourceAddr() ipv6.Addr { return d.Src }
