// Package xmap implements the paper's primary contribution: the XMap
// fast IPv6 network scanner. It re-creates the ZMap architecture the
// paper extends — modular probes, stateless validation, random address
// permutation, sharding, rate limiting — with the key generalization that
// the target space is an arbitrary bit window of the IPv6 space (e.g.
// the /32-64 sub-prefix window of one ISP block), per Section IV-B.
package xmap

import (
	"repro/internal/ipv6"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// Driver abstracts the packet layer under the scanner. The contract is
// batch-first, mirroring how fast scanners actually talk to the kernel
// (sendmmsg/recvmmsg bursts): per-packet entry costs dominate at
// millions of probes per second, so the scanner always hands the driver
// a burst. The production analogue is a raw socket (or PF_RING); this
// repository provides the simulator drivers and an in-memory loopback
// for tests. Per-packet tools use the PacketDriver shim instead.
type Driver interface {
	// SendBatch transmits a burst of raw IPv6 packets and returns how
	// many entered the packet layer. pkts[:n] were sent. A short write
	// with err == nil is transient backpressure (ENOBUFS-style): the
	// caller retries pkts[n:]. With err != nil, pkts[n] is the packet
	// that failed; the caller counts it as a send error and continues
	// with pkts[n+1:]. The driver must not retain the packet slices
	// after SendBatch returns — callers recycle them.
	SendBatch(pkts [][]byte) (int, error)
	// RecvBatch appends every packet that has arrived since the last
	// call to buf and returns the extended slice. It never blocks. The
	// caller owns buf and reuses it across calls (pass buf[:0] to
	// drain into the same backing array), so a steady-state receive
	// loop allocates nothing.
	RecvBatch(buf [][]byte) [][]byte
	// SourceAddr is the scanner's source address.
	SourceAddr() ipv6.Addr
}

// PacketDriver is the pre-batching per-packet contract, kept as a
// compatibility shim for tools that genuinely work one packet at a time
// (the subnet walker, the loop tracer, zgrab-style service probes) and
// for the batch-vs-per-packet differential oracle. Send must not retain
// pkt. All bundled drivers implement both interfaces; wrap any other
// PacketDriver with AdaptPacketDriver to run the scanner over it.
type PacketDriver interface {
	// Send transmits one raw IPv6 packet.
	Send(pkt []byte) error
	// Recv drains packets that have arrived since the last call. It
	// never blocks.
	Recv() [][]byte
	// SourceAddr is the scanner's source address.
	SourceAddr() ipv6.Addr
}

// Releaser is an optional Driver capability: hand packet buffers
// obtained from RecvBatch back to the packet layer once the caller has
// fully processed them, letting the simulator engines reuse the memory.
// The caller must drop every reference into the released buffers.
type Releaser interface {
	Release(pkts [][]byte)
}

// Flusher is an optional Driver capability for pipelined drivers
// (RingDriver): block until every packet accepted by SendBatch has
// entered the underlying packet layer. The scanner flushes before each
// receive drain and before emitting a checkpoint, so a resumable state
// never has probes parked invisibly in a ring.
type Flusher interface {
	Flush()
}

// AdaptPacketDriver wraps a per-packet driver as a batch Driver: the
// batch entry points degrade to per-packet calls. The scanner run over
// the result is the old per-packet send path — which is exactly what
// the batch-vs-per-packet differential oracle runs as its reference
// leg.
func AdaptPacketDriver(p PacketDriver) Driver { return &packetAdapter{p: p} }

type packetAdapter struct{ p PacketDriver }

// SendBatch implements Driver: packets go out one Send at a time; the
// first failure reports how many preceded it.
func (a *packetAdapter) SendBatch(pkts [][]byte) (int, error) {
	for i, pkt := range pkts {
		if err := a.p.Send(pkt); err != nil {
			return i, err
		}
	}
	return len(pkts), nil
}

// RecvBatch implements Driver.
func (a *packetAdapter) RecvBatch(buf [][]byte) [][]byte {
	return append(buf, a.p.Recv()...)
}

// SourceAddr implements Driver.
func (a *packetAdapter) SourceAddr() ipv6.Addr { return a.p.SourceAddr() }

// SimDriver runs the scanner against a netsim topology through an edge
// node.
type SimDriver struct {
	eng  *netsim.Engine
	edge *netsim.Edge
}

var _ Driver = (*SimDriver)(nil)
var _ PacketDriver = (*SimDriver)(nil)

// NewSimDriver wires a driver to the engine at the given edge.
func NewSimDriver(eng *netsim.Engine, edge *netsim.Edge) *SimDriver {
	return &SimDriver{eng: eng, edge: edge}
}

// Send implements PacketDriver. The simulator is lock-step: by the time
// Send returns, every packet the probe will ever trigger has been
// delivered.
func (d *SimDriver) Send(pkt []byte) error {
	d.eng.Inject(d.edge.Iface(), pkt)
	return nil
}

// SendBatch implements Driver: one engine lock acquisition for the whole
// burst.
func (d *SimDriver) SendBatch(pkts [][]byte) (int, error) {
	d.eng.InjectBatch(d.edge.Iface(), pkts)
	return len(pkts), nil
}

// Recv implements PacketDriver.
func (d *SimDriver) Recv() [][]byte { return d.edge.Drain() }

// RecvBatch implements Driver.
func (d *SimDriver) RecvBatch(buf [][]byte) [][]byte { return d.edge.DrainInto(buf) }

// Release implements Releaser.
func (d *SimDriver) Release(pkts [][]byte) { d.eng.ReleaseBufs(pkts) }

// SourceAddr implements Driver.
func (d *SimDriver) SourceAddr() ipv6.Addr { return d.edge.Addr() }

// RegisterTelemetry folds the engine's traffic totals into reg's
// snapshots. netsim deliberately does not import telemetry; the driver
// is the layer that knows both sides, so the glue lives here. The
// engine counts under its own lock and the collector reads at snapshot
// time — the simulation hot path pays nothing.
func (d *SimDriver) RegisterTelemetry(reg *telemetry.Registry) {
	reg.Register(engineCollector(d.eng.Counters))
}

// RegisterTracer attaches the probe-lifecycle tracer to the engine:
// sampled flows record their hop-level link crossings on the tracer's
// first simulator stream. Like RegisterTelemetry, the glue lives here
// so netsim never imports telemetry.
func (d *SimDriver) RegisterTracer(tr *telemetry.Tracer) {
	if tr == nil {
		return
	}
	d.eng.SetFlowTracer(engineTracer{tr: tr, stream: tr.SimStream(0)})
}

// GroupDriver runs the scanner against a sharded netsim.EngineGroup:
// every probe is routed to the engine shard owning its destination
// prefix, so concurrent senders (ScanParallel) pump disjoint
// serialization domains in parallel instead of convoying on one engine
// lock. All shards deliver responses to the same edge.
type GroupDriver struct {
	grp  *netsim.EngineGroup
	edge *netsim.Edge
}

var _ Driver = (*GroupDriver)(nil)
var _ PacketDriver = (*GroupDriver)(nil)

// NewGroupDriver wires a driver to the engine group at the given edge.
// The edge must be attached to every shard (topo.Build deployments are).
func NewGroupDriver(grp *netsim.EngineGroup, edge *netsim.Edge) *GroupDriver {
	return &GroupDriver{grp: grp, edge: edge}
}

// Send implements PacketDriver.
func (d *GroupDriver) Send(pkt []byte) error {
	d.grp.Inject(pkt)
	return nil
}

// SendBatch implements Driver.
func (d *GroupDriver) SendBatch(pkts [][]byte) (int, error) {
	d.grp.InjectBatch(pkts)
	return len(pkts), nil
}

// Recv implements PacketDriver.
func (d *GroupDriver) Recv() [][]byte { return d.edge.Drain() }

// RecvBatch implements Driver.
func (d *GroupDriver) RecvBatch(buf [][]byte) [][]byte { return d.edge.DrainInto(buf) }

// Release implements Releaser.
func (d *GroupDriver) Release(pkts [][]byte) { d.grp.ReleaseBufs(pkts) }

// SourceAddr implements Driver.
func (d *GroupDriver) SourceAddr() ipv6.Addr { return d.edge.Addr() }

// RegisterTelemetry folds the group's summed engine totals into reg's
// snapshots (see SimDriver.RegisterTelemetry).
func (d *GroupDriver) RegisterTelemetry(reg *telemetry.Registry) {
	reg.Register(engineCollector(d.grp.Counters))
}

// RegisterTracer attaches the probe-lifecycle tracer to every engine
// shard, each on its own simulator stream (engine shards serialize
// independently, so per-shard streams keep single-writer ordering).
func (d *GroupDriver) RegisterTracer(tr *telemetry.Tracer) {
	if tr == nil {
		return
	}
	for i := 0; i < d.grp.NumShards(); i++ {
		d.grp.Shard(i).SetFlowTracer(engineTracer{tr: tr, stream: tr.SimStream(i)})
	}
}

// engineTracer adapts the telemetry tracer to netsim's FlowTracer
// observer: the shared sampler decides flow membership, and each
// crossing lands as a hop span on the engine shard's stream.
type engineTracer struct {
	tr     *telemetry.Tracer
	stream int
}

func (t engineTracer) SampleFlow(hi, lo uint64) bool { return t.tr.Sample(hi, lo) }

func (t engineTracer) HopCrossing(hi, lo uint64, node, iface string, hopLimit uint8, dropped bool) {
	t.tr.Hop(t.stream, hi, lo, node, iface, hopLimit, dropped)
}

// engineCollector adapts a netsim counter source to a telemetry
// collector.
func engineCollector(counters func() netsim.Counters) telemetry.Collector {
	return func(add func(telemetry.Counter, uint64)) {
		c := counters()
		add(telemetry.SimEvents, c.Events)
		add(telemetry.SimTransmissions, c.Transmissions)
		add(telemetry.SimBytes, c.Bytes)
		add(telemetry.SimDropped, c.Dropped)
		add(telemetry.SimFastPathHits, c.FastPathHits)
		add(telemetry.SimFastPathMisses, c.FastPathMisses)
		add(telemetry.SimFastPathInvalidations, c.FastPathInvalidations)
		add(telemetry.SimFastPathBatched, c.FastPathBatched)
	}
}

// ChanDriver is a test driver connecting the scanner to a handler
// function: every sent packet is answered by fn (nil = drop).
type ChanDriver struct {
	Src ipv6.Addr
	Fn  func(pkt []byte) [][]byte

	buf [][]byte
}

var _ Driver = (*ChanDriver)(nil)
var _ PacketDriver = (*ChanDriver)(nil)

// Send implements PacketDriver.
func (d *ChanDriver) Send(pkt []byte) error {
	if d.Fn != nil {
		d.buf = append(d.buf, d.Fn(pkt)...)
	}
	return nil
}

// SendBatch implements Driver.
func (d *ChanDriver) SendBatch(pkts [][]byte) (int, error) {
	for _, pkt := range pkts {
		if d.Fn != nil {
			d.buf = append(d.buf, d.Fn(pkt)...)
		}
	}
	return len(pkts), nil
}

// Recv implements PacketDriver.
func (d *ChanDriver) Recv() [][]byte {
	out := d.buf
	d.buf = nil
	return out
}

// RecvBatch implements Driver.
func (d *ChanDriver) RecvBatch(buf [][]byte) [][]byte {
	buf = append(buf, d.buf...)
	clear(d.buf)
	d.buf = d.buf[:0]
	return buf
}

// SourceAddr implements Driver.
func (d *ChanDriver) SourceAddr() ipv6.Addr { return d.Src }
