package xmap

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/dnswire"
	"repro/internal/ipv6"
	"repro/internal/ntpwire"
	"repro/internal/wire"
)

// ResponseKind classifies what came back for a probe.
type ResponseKind int

// Response kinds.
const (
	KindEchoReply ResponseKind = iota + 1
	KindDestUnreach
	KindTimeExceeded
	KindTCPSynAck
	KindTCPRst
	KindUDPData
)

// String names the kind.
func (k ResponseKind) String() string {
	switch k {
	case KindEchoReply:
		return "echo-reply"
	case KindDestUnreach:
		return "dest-unreach"
	case KindTimeExceeded:
		return "time-exceeded"
	case KindTCPSynAck:
		return "tcp-synack"
	case KindTCPRst:
		return "tcp-rst"
	case KindUDPData:
		return "udp-data"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Response is one validated scan response.
type Response struct {
	// Responder is the address that answered — for unreachable errors,
	// the periphery's own (WAN/UE) address.
	Responder ipv6.Addr
	// ProbeDst is the address the probe was sent to.
	ProbeDst ipv6.Addr
	Kind     ResponseKind
	// Code is the ICMPv6 code for error kinds.
	Code uint8
	// Payload is the application payload for KindUDPData.
	Payload []byte
}

// SamePrefix64 reports whether responder and probe destination share a
// /64 — the "same"/"diff" split of the paper's Table II.
func (r Response) SamePrefix64() bool {
	return r.Responder.Prefix64() == r.ProbeDst.Prefix64()
}

// Validator derives the per-target stateless validation value, ZMap-style
// (an HMAC of the destination keyed by the scan seed).
type Validator func(dst ipv6.Addr) uint32

// ProbeModule builds probes and classifies responses; implementations
// mirror ZMap's probe modules.
type ProbeModule interface {
	// Name is the module identifier (e.g. "icmp6_echoscan").
	Name() string
	// MakeProbe builds the raw probe packet.
	MakeProbe(src, dst ipv6.Addr, val uint32) ([]byte, error)
	// Classify inspects a received packet; ok=false if the packet is not
	// a validated response to this module's probes.
	Classify(sum *wire.Summary, validate Validator) (Response, bool)
}

// AppendProbeModule is an optional ProbeModule capability: build the
// probe into buf when its capacity suffices, so the scanner can recycle
// probe buffers through the driver (which, per the Driver contract,
// does not retain them past SendBatch).
type AppendProbeModule interface {
	AppendProbe(buf []byte, src, dst ipv6.Addr, val uint32) ([]byte, error)
}

// ICMPEchoProbe is the icmp6_echoscan module — the paper's discovery
// workhorse. The validation value rides in the echo identifier and
// sequence fields. HopLimit and Data are configuration: set them before
// the scan starts and leave them fixed while probes are being built.
type ICMPEchoProbe struct {
	// HopLimit of outgoing probes (default 64). The routing-loop scan
	// uses elevated values per Section VI-B.
	HopLimit uint8
	// Data is the echo payload.
	Data []byte
	// StrictSource, when non-zero, hardens error-reply validation: the
	// embedded (quoted) invoking packet must carry this exact source
	// address — the scanner's own — or the reply is rejected. Closes
	// the forged-quote hole where a hostile responder fabricates an
	// error quoting a probe it never received verbatim (Config.Defend
	// sets it to the driver's source address).
	StrictSource ipv6.Addr

	// tmpl caches the probe image for the current (src, hop limit,
	// payload): only the destination, id/seq and checksum vary probe to
	// probe, so AppendProbe copies the image and patches those four
	// fields instead of re-marshaling the packet. Atomic because shards
	// share the module instance.
	tmpl atomic.Pointer[echoTmpl]
}

// echoTmpl is an immutable compiled probe image. sum carries the
// checksum partial over everything that does not vary per probe: the
// pseudo-header minus the destination, the type/code word, and the
// payload (the checksum, id and seq fields count as zero).
type echoTmpl struct {
	src     ipv6.Addr
	hop     uint8
	dataLen int
	pkt     []byte
	sum     uint64
}

var _ ProbeModule = (*ICMPEchoProbe)(nil)
var _ AppendProbeModule = (*ICMPEchoProbe)(nil)

// Name implements ProbeModule.
func (p *ICMPEchoProbe) Name() string { return "icmp6_echoscan" }

func (p *ICMPEchoProbe) hopLimit() uint8 {
	if p.HopLimit == 0 {
		return 64
	}
	return p.HopLimit
}

// MakeProbe implements ProbeModule.
func (p *ICMPEchoProbe) MakeProbe(src, dst ipv6.Addr, val uint32) ([]byte, error) {
	return wire.BuildEchoRequest(src, dst, p.hopLimit(), uint16(val>>16), uint16(val), p.Data)
}

// AppendProbe implements AppendProbeModule.
func (p *ICMPEchoProbe) AppendProbe(buf []byte, src, dst ipv6.Addr, val uint32) ([]byte, error) {
	t := p.tmpl.Load()
	if t == nil || t.src != src || t.hop != p.hopLimit() || t.dataLen != len(p.Data) {
		// Template fields that vary per probe are patched below, so the
		// placeholder destination/id/seq baked in here never escape.
		pkt, err := wire.BuildEchoRequest(src, ipv6.Addr{}, p.hopLimit(), 0, 0, p.Data)
		if err != nil {
			return nil, err
		}
		t = &echoTmpl{
			src:     src,
			hop:     p.hopLimit(),
			dataLen: len(p.Data),
			pkt:     pkt,
			sum: wire.PseudoSum(src, ipv6.Addr{}, wire.ProtoICMPv6, 8+len(p.Data)) +
				uint64(wire.ICMPEchoRequest)<<8 + wire.SumWords(p.Data),
		}
		p.tmpl.Store(t)
	}
	n := len(t.pkt)
	var out []byte
	if cap(buf) >= n {
		out = buf[:n]
	} else {
		out = make([]byte, n)
	}
	copy(out, t.pkt)
	db := dst.Bytes()
	copy(out[24:40], db[:])
	id, seq := uint16(val>>16), uint16(val)
	binary.BigEndian.PutUint16(out[wire.HeaderLen+4:wire.HeaderLen+6], id)
	binary.BigEndian.PutUint16(out[wire.HeaderLen+6:wire.HeaderLen+8], seq)
	cs := wire.FoldSum(t.sum + wire.SumWords(out[24:40]) + uint64(id) + uint64(seq))
	binary.BigEndian.PutUint16(out[wire.HeaderLen+2:wire.HeaderLen+4], cs)
	return out, nil
}

// Classify implements ProbeModule.
func (p *ICMPEchoProbe) Classify(sum *wire.Summary, validate Validator) (Response, bool) {
	if sum.ICMP == nil {
		return Response{}, false
	}
	switch sum.ICMP.Type {
	case wire.ICMPEchoReply:
		e, err := wire.ParseEcho(sum.ICMP.Body)
		if err != nil {
			return Response{}, false
		}
		// The responder is the probed address itself.
		val := validate(sum.IP.Src)
		if e.ID != uint16(val>>16) || e.Seq != uint16(val) {
			return Response{}, false
		}
		return Response{Responder: sum.IP.Src, ProbeDst: sum.IP.Src, Kind: KindEchoReply}, true

	case wire.ICMPDestUnreach, wire.ICMPTimeExceeded:
		inv, err := wire.ParseInvoking(sum.ICMP.Body)
		if err != nil || inv.IP.NextHeader != wire.ProtoICMPv6 {
			return Response{}, false
		}
		if p.StrictSource != (ipv6.Addr{}) && inv.IP.Src != p.StrictSource {
			return Response{}, false
		}
		val := validate(inv.IP.Dst)
		if inv.EchoID != uint16(val>>16) || inv.EchoSeq != uint16(val) {
			return Response{}, false
		}
		kind := KindDestUnreach
		if sum.ICMP.Type == wire.ICMPTimeExceeded {
			kind = KindTimeExceeded
		}
		return Response{
			Responder: sum.IP.Src,
			ProbeDst:  inv.IP.Dst,
			Kind:      kind,
			Code:      sum.ICMP.Code,
		}, true
	}
	return Response{}, false
}

// TCPSynProbe is the tcp_synscan module: a SYN whose sequence number is
// the validation value.
type TCPSynProbe struct {
	Port     uint16
	HopLimit uint8
}

var _ ProbeModule = (*TCPSynProbe)(nil)

// Name implements ProbeModule.
func (p *TCPSynProbe) Name() string { return "tcp_synscan" }

func (p *TCPSynProbe) hopLimit() uint8 {
	if p.HopLimit == 0 {
		return 64
	}
	return p.HopLimit
}

// srcPortBase spreads flows while keeping the port derivable.
const srcPortBase = 32768

// MakeProbe implements ProbeModule.
func (p *TCPSynProbe) MakeProbe(src, dst ipv6.Addr, val uint32) ([]byte, error) {
	t := wire.TCPHeader{
		SrcPort: srcPortBase + uint16(val%8192),
		DstPort: p.Port,
		Seq:     val,
		Flags:   wire.TCPSyn,
		Window:  65535,
	}
	return wire.BuildTCP(src, dst, p.hopLimit(), t, nil)
}

// Classify implements ProbeModule.
func (p *TCPSynProbe) Classify(sum *wire.Summary, validate Validator) (Response, bool) {
	switch {
	case sum.TCP != nil:
		if sum.TCP.SrcPort != p.Port {
			return Response{}, false
		}
		val := validate(sum.IP.Src)
		if sum.TCP.DstPort != srcPortBase+uint16(val%8192) {
			return Response{}, false
		}
		if sum.TCP.Ack != val+1 {
			return Response{}, false
		}
		kind := KindTCPRst
		if sum.TCP.Flags&wire.TCPSyn != 0 && sum.TCP.Flags&wire.TCPAck != 0 {
			kind = KindTCPSynAck
		}
		return Response{Responder: sum.IP.Src, ProbeDst: sum.IP.Src, Kind: kind}, true

	case sum.ICMP != nil && (sum.ICMP.Type == wire.ICMPDestUnreach || sum.ICMP.Type == wire.ICMPTimeExceeded):
		inv, err := wire.ParseInvoking(sum.ICMP.Body)
		if err != nil || inv.IP.NextHeader != wire.ProtoTCP {
			return Response{}, false
		}
		val := validate(inv.IP.Dst)
		if inv.SrcPort != srcPortBase+uint16(val%8192) || inv.DstPort != p.Port {
			return Response{}, false
		}
		kind := KindDestUnreach
		if sum.ICMP.Type == wire.ICMPTimeExceeded {
			kind = KindTimeExceeded
		}
		return Response{Responder: sum.IP.Src, ProbeDst: inv.IP.Dst, Kind: kind, Code: sum.ICMP.Code}, true
	}
	return Response{}, false
}

// UDPProbe is the udpscan module with a pluggable payload builder; the
// DNS and NTP probe constructors below specialize it. The validation
// value selects the source port.
type UDPProbe struct {
	ModName  string
	Port     uint16
	HopLimit uint8
	// Payload builds the datagram body for a validation value.
	Payload func(val uint32) ([]byte, error)
	// ValidPayload checks an application response (already port-matched).
	ValidPayload func(val uint32, body []byte) bool
}

var _ ProbeModule = (*UDPProbe)(nil)

// Name implements ProbeModule.
func (p *UDPProbe) Name() string { return p.ModName }

func (p *UDPProbe) hopLimit() uint8 {
	if p.HopLimit == 0 {
		return 64
	}
	return p.HopLimit
}

func (p *UDPProbe) srcPort(val uint32) uint16 { return srcPortBase + uint16(val%8192) }

// MakeProbe implements ProbeModule.
func (p *UDPProbe) MakeProbe(src, dst ipv6.Addr, val uint32) ([]byte, error) {
	body, err := p.Payload(val)
	if err != nil {
		return nil, err
	}
	return wire.BuildUDP(src, dst, p.hopLimit(), p.srcPort(val), p.Port, body)
}

// Classify implements ProbeModule.
func (p *UDPProbe) Classify(sum *wire.Summary, validate Validator) (Response, bool) {
	switch {
	case sum.UDP != nil:
		if sum.UDP.SrcPort != p.Port {
			return Response{}, false
		}
		val := validate(sum.IP.Src)
		if sum.UDP.DstPort != p.srcPort(val) {
			return Response{}, false
		}
		if p.ValidPayload != nil && !p.ValidPayload(val, sum.Payload) {
			return Response{}, false
		}
		return Response{Responder: sum.IP.Src, ProbeDst: sum.IP.Src, Kind: KindUDPData, Payload: sum.Payload}, true

	case sum.ICMP != nil && (sum.ICMP.Type == wire.ICMPDestUnreach || sum.ICMP.Type == wire.ICMPTimeExceeded):
		inv, err := wire.ParseInvoking(sum.ICMP.Body)
		if err != nil || inv.IP.NextHeader != wire.ProtoUDP {
			return Response{}, false
		}
		val := validate(inv.IP.Dst)
		if inv.SrcPort != p.srcPort(val) || inv.DstPort != p.Port {
			return Response{}, false
		}
		kind := KindDestUnreach
		if sum.ICMP.Type == wire.ICMPTimeExceeded {
			kind = KindTimeExceeded
		}
		return Response{Responder: sum.IP.Src, ProbeDst: inv.IP.Dst, Kind: kind, Code: sum.ICMP.Code}, true
	}
	return Response{}, false
}

// NewDNSProbe returns a udpscan module sending an A query ("A" query of
// Table VI); the query ID carries the low validation bits.
func NewDNSProbe(qname string) *UDPProbe {
	return &UDPProbe{
		ModName: "dnsscan",
		Port:    53,
		Payload: func(val uint32) ([]byte, error) {
			return dnswire.NewQuery(uint16(val), qname, dnswire.TypeA, dnswire.ClassIN).Marshal()
		},
		ValidPayload: func(val uint32, body []byte) bool {
			m, err := dnswire.Parse(body)
			return err == nil && m.ID == uint16(val) && m.Flags&dnswire.FlagQR != 0
		},
	}
}

// NewNTPProbe returns a udpscan module sending an NTP version query.
func NewNTPProbe() *UDPProbe {
	return &UDPProbe{
		ModName: "ntpscan",
		Port:    123,
		Payload: func(val uint32) ([]byte, error) {
			return ntpwire.NewClientQuery(uint64(val)<<32 | uint64(val)).Marshal()
		},
		ValidPayload: func(val uint32, body []byte) bool {
			pkt, err := ntpwire.Parse(body)
			return err == nil && pkt.Mode == ntpwire.ModeServer &&
				pkt.OrigTimestamp == uint64(val)<<32|uint64(val)
		},
	}
}
