package zgrab

import (
	"strings"
	"testing"

	"repro/internal/services"
	"repro/internal/topo"
	"repro/internal/xmap"
)

// fixture returns a deployment of China Mobile broadband (the ISP with
// the richest service exposure) plus a prober attached to it.
func fixture(t *testing.T) (*topo.Deployment, *Prober) {
	t.Helper()
	dep, err := topo.Build(topo.Config{
		Seed: 31, Scale: 0.00003, WindowWidth: 10,
		MaxDevicesPerISP: 150, OnlyISPs: []int{13},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dep, New(xmap.NewSimDriver(dep.Engine, dep.Edge))
}

func TestProbeMatchesGroundTruth(t *testing.T) {
	dep, p := fixture(t)
	devs := dep.ISPs[0].Devices
	withServices := 0
	for _, dev := range devs {
		res, err := p.ProbeDevice(dev.WANAddr, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, svc := range services.All {
			_, want := dev.Services[svc]
			got := res.Results[svc].Alive
			if want != got {
				t.Errorf("device %s (%s) service %s: alive=%v, ground truth %v",
					dev.WANAddr, dev.Vendor, svc, got, want)
			}
		}
		if len(dev.Services) > 0 {
			withServices++
		}
	}
	if withServices == 0 {
		t.Fatal("sample has no devices with services; enlarge fixture")
	}
}

func TestSoftwareExtraction(t *testing.T) {
	dep, p := fixture(t)
	checked := map[services.ID]bool{}
	for _, dev := range dep.ISPs[0].Devices {
		for svc, sw := range dev.Services {
			res, err := p.ProbeDevice(dev.WANAddr, []services.ID{svc})
			if err != nil {
				t.Fatal(err)
			}
			got := res.Results[svc]
			if !got.Alive {
				t.Errorf("%s on %s not alive", svc, dev.WANAddr)
				continue
			}
			switch svc {
			case services.SvcDNS, services.SvcFTP, services.SvcSSH, services.SvcHTTP80, services.SvcHTTP8080:
				if got.Software != sw {
					t.Errorf("%s software = %q, deployed %q", svc, got.Software, sw)
				}
			case services.SvcNTP:
				if got.Software != "NTPv4" {
					t.Errorf("NTP software = %q", got.Software)
				}
			}
			checked[svc] = true
		}
	}
	for _, svc := range []services.ID{services.SvcDNS, services.SvcHTTP8080} {
		if !checked[svc] {
			t.Errorf("fixture exposed no %s to verify", svc)
		}
	}
}

func TestVendorEvidence(t *testing.T) {
	dep, p := fixture(t)
	matched, withEvidence := 0, 0
	for _, dev := range dep.ISPs[0].Devices {
		if len(dev.Services) == 0 {
			continue
		}
		res, err := p.ProbeDevice(dev.WANAddr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Vendor == "" {
			continue
		}
		withEvidence++
		if res.Vendor == dev.Vendor {
			matched++
		}
	}
	if withEvidence == 0 {
		t.Skip("no vendor evidence in sample")
	}
	if matched*10 < withEvidence*8 {
		t.Errorf("vendor evidence matched %d/%d", matched, withEvidence)
	}
}

func TestLoginPageDetection(t *testing.T) {
	dep, p := fixture(t)
	for _, dev := range dep.ISPs[0].Devices {
		if _, ok := dev.Services[services.SvcHTTP80]; !ok {
			continue
		}
		res, err := p.ProbeDevice(dev.WANAddr, []services.ID{services.SvcHTTP80})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Results[services.SvcHTTP80].LoginPage {
			t.Errorf("management page on %s not flagged as login page", dev.WANAddr)
		}
		return
	}
	t.Skip("no HTTP-80 device in sample")
}

func TestDeadDeviceAllSilent(t *testing.T) {
	dep, p := fixture(t)
	var quiet *topo.Device
	for _, dev := range dep.ISPs[0].Devices {
		if len(dev.Services) == 0 {
			quiet = dev
			break
		}
	}
	if quiet == nil {
		t.Skip("every device has services")
	}
	res, err := p.ProbeDevice(quiet.WANAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.AliveCount() != 0 {
		t.Errorf("service-less device reported %d alive services", res.AliveCount())
	}
}

func TestStripTelnetIAC(t *testing.T) {
	in := []byte{255, 251, 1, 255, 251, 3, 'h', 'i'}
	if got := stripTelnetIAC(in); got != "hi" {
		t.Errorf("stripTelnetIAC = %q", got)
	}
}

func TestCutBetween(t *testing.T) {
	if v, ok := cutBetween("CN=Acme router,O=Acme", "O=", ","); !ok || v != "Acme" {
		t.Errorf("cutBetween = %q,%v", v, ok)
	}
	if v, ok := cutBetween("CN=Acme router", "CN=", " router"); !ok || v != "Acme" {
		t.Errorf("cutBetween = %q,%v", v, ok)
	}
	if _, ok := cutBetween("nothing", "O=", ","); ok {
		t.Error("cutBetween matched absent marker")
	}
}

func TestTelnetVendorParsing(t *testing.T) {
	var res ServiceResult
	banner := append([]byte{255, 251, 1}, []byte("HG6543C\r\nYouhua Tech login: ")...)
	parseTelnet(banner, nil, &res)
	if res.Vendor != "Youhua Tech" {
		t.Errorf("vendor = %q", res.Vendor)
	}
	if !strings.Contains(res.Software, "HG6543C") {
		t.Errorf("software = %q", res.Software)
	}
}
