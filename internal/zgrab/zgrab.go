// Package zgrab implements the application-layer prober of Section V —
// the ZGrab2 analogue. For each discovered periphery it performs exactly
// the Table VI exchanges (one probe per service, never more than one
// service concurrently per target), collects banners, and extracts the
// software version and vendor evidence behind Tables VII/VIII and
// Figures 2/3.
package zgrab

import (
	"fmt"
	"strings"

	"repro/internal/dnswire"
	"repro/internal/ipv6"
	"repro/internal/minitcp"
	"repro/internal/ntpwire"
	"repro/internal/services"
	"repro/internal/tlswire"
	"repro/internal/wire"
	"repro/internal/xmap"
)

// ServiceResult is the outcome of probing one service on one device.
type ServiceResult struct {
	Service  services.ID
	Alive    bool
	Software string // extracted software/version string, if any
	Vendor   string // vendor evidence from pages/banners/certificates
	// LoginPage marks an HTTP management login form (Section V's
	// "web management pages accessible" finding).
	LoginPage bool
}

// DeviceResult aggregates one device's probes.
type DeviceResult struct {
	Addr    ipv6.Addr
	Results map[services.ID]ServiceResult
	// Vendor is the consensus application-level vendor (most frequent
	// non-empty evidence), or "".
	Vendor string
}

// AliveCount returns how many probed services answered.
func (d *DeviceResult) AliveCount() int {
	n := 0
	for _, r := range d.Results {
		if r.Alive {
			n++
		}
	}
	return n
}

// Prober drives service probes through a scan driver.
type Prober struct {
	drv      xmap.PacketDriver
	nextPort uint16
	// maxRounds bounds each TCP exchange (lock-step drivers need few).
	maxRounds int
}

// New creates a prober.
func New(drv xmap.PacketDriver) *Prober {
	return &Prober{drv: drv, nextPort: 33000, maxRounds: 4}
}

// conn adapts the scan driver to minitcp.Conn.
type conn struct{ drv xmap.PacketDriver }

func (c conn) Send(pkt []byte) error { return c.drv.Send(pkt) }
func (c conn) Recv() [][]byte        { return c.drv.Recv() }

// srcPort hands out distinct client ports so flows never collide.
func (p *Prober) srcPort() uint16 {
	p.nextPort++
	if p.nextPort < 33000 {
		p.nextPort = 33000
	}
	return p.nextPort
}

// ProbeDevice probes the given services (all eight when svcs is nil).
func (p *Prober) ProbeDevice(addr ipv6.Addr, svcs []services.ID) (*DeviceResult, error) {
	if svcs == nil {
		svcs = services.All
	}
	out := &DeviceResult{Addr: addr, Results: make(map[services.ID]ServiceResult, len(svcs))}
	vendorVotes := map[string]int{}
	for _, svc := range svcs {
		res, err := p.probeService(addr, svc)
		if err != nil {
			return nil, fmt.Errorf("zgrab: probing %s on %s: %w", svc, addr, err)
		}
		out.Results[svc] = res
		if res.Vendor != "" {
			vendorVotes[res.Vendor]++
		}
	}
	best := 0
	for v, n := range vendorVotes {
		if n > best || (n == best && v < out.Vendor) {
			out.Vendor, best = v, n
		}
	}
	return out, nil
}

// probeService performs one Table VI exchange.
func (p *Prober) probeService(addr ipv6.Addr, svc services.ID) (ServiceResult, error) {
	res := ServiceResult{Service: svc}
	switch svc {
	case services.SvcDNS:
		return p.probeDNS(addr)
	case services.SvcNTP:
		return p.probeNTP(addr)
	case services.SvcFTP:
		return p.probeBanner(addr, svc, nil, parseFTP)
	case services.SvcSSH:
		return p.probeBanner(addr, svc, []byte("SSH-2.0-XMapProbe\r\n"), parseSSH)
	case services.SvcTelnet:
		return p.probeBanner(addr, svc, nil, parseTelnet)
	case services.SvcHTTP80, services.SvcHTTP8080:
		return p.probeHTTP(addr, svc)
	case services.SvcTLS:
		return p.probeTLS(addr)
	}
	return res, fmt.Errorf("zgrab: unknown service %v", svc)
}

// udpRoundTrip sends one datagram and returns the matching reply payload.
func (p *Prober) udpRoundTrip(addr ipv6.Addr, dstPort uint16, payload []byte) ([]byte, error) {
	sp := p.srcPort()
	pkt, err := wire.BuildUDP(p.drv.SourceAddr(), addr, 64, sp, dstPort, payload)
	if err != nil {
		return nil, err
	}
	if err := p.drv.Send(pkt); err != nil {
		return nil, err
	}
	for _, raw := range p.drv.Recv() {
		sum, err := wire.ParsePacket(raw)
		if err != nil || sum.UDP == nil {
			continue
		}
		if sum.IP.Src != addr || sum.UDP.SrcPort != dstPort || sum.UDP.DstPort != sp {
			continue
		}
		return sum.Payload, nil
	}
	return nil, nil
}

func (p *Prober) probeDNS(addr ipv6.Addr) (ServiceResult, error) {
	res := ServiceResult{Service: services.SvcDNS}
	q, err := dnswire.NewQuery(0x1a2b, "connectivity.xmap.example", dnswire.TypeA, dnswire.ClassIN).Marshal()
	if err != nil {
		return res, err
	}
	reply, err := p.udpRoundTrip(addr, 53, q)
	if err != nil {
		return res, err
	}
	if reply == nil {
		return res, nil
	}
	m, err := dnswire.Parse(reply)
	if err != nil || m.ID != 0x1a2b || m.Flags&dnswire.FlagQR == 0 {
		return res, nil
	}
	res.Alive = true

	// Follow up with the version fingerprint.
	vq, err := dnswire.NewVersionBindQuery(0x1a2c).Marshal()
	if err != nil {
		return res, err
	}
	vreply, err := p.udpRoundTrip(addr, 53, vq)
	if err != nil || vreply == nil {
		return res, err
	}
	vm, err := dnswire.Parse(vreply)
	if err != nil || len(vm.Answers) == 0 {
		return res, nil
	}
	strs, err := dnswire.ParseTXTData(vm.Answers[0].Data)
	if err == nil && len(strs) > 0 {
		res.Software = strs[0]
	}
	return res, nil
}

func (p *Prober) probeNTP(addr ipv6.Addr) (ServiceResult, error) {
	res := ServiceResult{Service: services.SvcNTP}
	q, err := ntpwire.NewClientQuery(0x58aa_77cc_1122_3344).Marshal()
	if err != nil {
		return res, err
	}
	reply, err := p.udpRoundTrip(addr, 123, q)
	if err != nil {
		return res, err
	}
	if reply == nil {
		return res, nil
	}
	pkt, err := ntpwire.Parse(reply)
	if err != nil || pkt.Mode != ntpwire.ModeServer || pkt.OrigTimestamp != 0x58aa_77cc_1122_3344 {
		return res, nil
	}
	res.Alive = true
	res.Software = fmt.Sprintf("NTPv%d", pkt.Version)
	return res, nil
}

// bannerParser extracts software/vendor evidence from banner+data.
type bannerParser func(banner, data []byte, res *ServiceResult)

func (p *Prober) probeBanner(addr ipv6.Addr, svc services.ID, req []byte, parse bannerParser) (ServiceResult, error) {
	res := ServiceResult{Service: svc}
	x, err := minitcp.Exchange(conn{p.drv}, p.drv.SourceAddr(), addr, p.srcPort(), svc.Port(), req, p.maxRounds)
	if err != nil {
		return res, err
	}
	if !x.Open {
		return res, nil
	}
	if len(x.Banner) == 0 && len(x.Data) == 0 {
		// Open but mute: count as alive only for request-first probes
		// that got nothing back — the paper requires a valid response.
		return res, nil
	}
	res.Alive = true
	parse(x.Banner, x.Data, &res)
	return res, nil
}

func parseFTP(banner, _ []byte, res *ServiceResult) {
	line := strings.TrimSpace(string(banner))
	if !strings.HasPrefix(line, "220") {
		res.Alive = false
		return
	}
	if i := strings.IndexByte(line, '('); i >= 0 {
		if j := strings.IndexByte(line[i:], ')'); j > 0 {
			res.Software = line[i+1 : i+j]
		}
	}
}

func parseSSH(banner, data []byte, res *ServiceResult) {
	line := strings.TrimSpace(string(banner))
	if !strings.HasPrefix(line, "SSH-") {
		res.Alive = false
		return
	}
	if rest, ok := strings.CutPrefix(line, "SSH-2.0-"); ok {
		res.Software = strings.Fields(rest)[0]
	}
	_ = data
}

func parseTelnet(banner, _ []byte, res *ServiceResult) {
	text := stripTelnetIAC(banner)
	if !strings.Contains(text, "login:") && !strings.Contains(text, "Login") {
		res.Alive = false
		return
	}
	// "<device>\r\n<vendor> login: " — the token before "login:" names
	// the vendor.
	if i := strings.Index(text, " login:"); i > 0 {
		head := strings.TrimSpace(text[:i])
		if j := strings.LastIndexAny(head, "\r\n"); j >= 0 {
			head = strings.TrimSpace(head[j+1:])
		}
		res.Vendor = head
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) > 0 {
		res.Software = strings.TrimSpace(lines[0])
	}
}

// stripTelnetIAC removes IAC negotiation sequences.
func stripTelnetIAC(b []byte) string {
	var out []byte
	for i := 0; i < len(b); {
		if b[i] == 255 && i+2 < len(b) && b[i+1] >= 251 {
			i += 3
			continue
		}
		out = append(out, b[i])
		i++
	}
	return string(out)
}

func (p *Prober) probeHTTP(addr ipv6.Addr, svc services.ID) (ServiceResult, error) {
	res := ServiceResult{Service: svc}
	req := []byte("GET / HTTP/1.1\r\nHost: [" + addr.String() + "]\r\nUser-Agent: XMap-research-scan\r\nConnection: close\r\n\r\n")
	x, err := minitcp.Exchange(conn{p.drv}, p.drv.SourceAddr(), addr, p.srcPort(), svc.Port(), req, p.maxRounds)
	if err != nil {
		return res, err
	}
	if !x.Open || len(x.Data) == 0 {
		return res, nil
	}
	text := string(x.Data)
	if !strings.HasPrefix(text, "HTTP/") {
		return res, nil
	}
	res.Alive = true
	for _, line := range strings.Split(text, "\r\n") {
		if v, ok := strings.CutPrefix(line, "Server: "); ok {
			res.Software = v
		}
		if line == "" {
			break
		}
	}
	body := text
	if i := strings.Index(text, "\r\n\r\n"); i >= 0 {
		body = text[i+4:]
	}
	lower := strings.ToLower(body)
	res.LoginPage = strings.Contains(lower, "login") &&
		(strings.Contains(lower, "password") || strings.Contains(lower, "pwd"))
	if i := strings.Index(body, "vendor: "); i >= 0 {
		rest := body[i+len("vendor: "):]
		if j := strings.Index(rest, " -->"); j >= 0 {
			res.Vendor = rest[:j]
		}
	}
	return res, nil
}

func (p *Prober) probeTLS(addr ipv6.Addr) (ServiceResult, error) {
	res := ServiceResult{Service: services.SvcTLS}
	hello, err := tlswire.MarshalClientHello(&tlswire.ClientHello{
		CipherSuites: []uint16{tlswire.TLSECDHERSAWithAES128GCMSHA256, tlswire.TLSRSAWithAES128CBCSHA},
	})
	if err != nil {
		return res, err
	}
	x, err := minitcp.Exchange(conn{p.drv}, p.drv.SourceAddr(), addr, p.srcPort(), 443, hello, p.maxRounds)
	if err != nil {
		return res, err
	}
	if !x.Open || len(x.Data) == 0 {
		return res, nil
	}
	flight, err := tlswire.ParseServerFlight(x.Data)
	if err != nil {
		return res, nil
	}
	res.Alive = true
	res.Software = fmt.Sprintf("TLS cipher %04x", flight.Cipher)
	cert := string(flight.Certificate)
	if v, ok := cutBetween(cert, "O=", ","); ok {
		res.Vendor = v
	} else if v, ok := cutBetween(cert, "CN=", " router"); ok {
		res.Vendor = v
	}
	return res, nil
}

// cutBetween extracts the text between the first occurrence of start and
// the next occurrence of end (or end-of-string when end is absent).
func cutBetween(s, start, end string) (string, bool) {
	i := strings.Index(s, start)
	if i < 0 {
		return "", false
	}
	rest := s[i+len(start):]
	if j := strings.Index(rest, end); j >= 0 {
		return rest[:j], true
	}
	return rest, true
}
