// Package perm implements the XMap address-generation module: a random
// permutation of an arbitrary-size scan space realized as iteration over
// the multiplicative group of integers modulo a prime, the same
// construction ZMap uses for the 32-bit IPv4 space and the paper's XMap
// generalizes to arbitrary bit windows at any position of the 128-bit
// IPv6 space (Section IV-B).
//
// The paper links against GMP for the big-integer work; here the per-scan
// setup (prime search, generator selection) uses math/big and the hot
// iteration path uses the repository's fixed-size uint128 arithmetic.
//
// For a space of size N, the smallest safe prime p >= N+1 is chosen.
// The group Z_p* is cyclic with order p-1 = 2q; an element g is a
// generator iff g^2 != 1 and g^q != 1 (mod p). Iterating x <- x*g (mod p)
// visits every element of [1, p-1] exactly once; elements x with
// x-1 >= N are skipped, leaving a uniform-feeling permutation of [0, N).
package perm

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
	"sync"

	"repro/internal/uint128"
)

// Cycle is a multiplicative-group permutation of the space [0, N).
// A Cycle is immutable after creation and safe for concurrent use; each
// goroutine iterates through its own Iterator.
type Cycle struct {
	size  uint128.Uint128 // N
	prime uint128.Uint128 // smallest safe prime >= N+1
	q     uint128.Uint128 // (prime-1)/2
	gen   uint128.Uint128 // generator of Z_p*
	start uint128.Uint128 // random first element in [1, p-1]
}

// safePrimeCache memoizes the (expensive) safe-prime search per space
// size. Guarded by its own mutex; the cache only grows.
var safePrimeCache = struct {
	sync.Mutex
	m map[uint128.Uint128]uint128.Uint128
}{m: make(map[uint128.Uint128]uint128.Uint128)}

// NewCycle creates a permutation of [0, size) seeded deterministically
// from seed. size must be at least 2 and at most 2^127.
func NewCycle(size uint128.Uint128, seed []byte) (*Cycle, error) {
	if size.Cmp(uint128.From64(2)) < 0 {
		return nil, fmt.Errorf("perm: space size %s too small", size)
	}
	if size.Bit(127) == 1 {
		return nil, fmt.Errorf("perm: space size %s exceeds 2^127", size)
	}
	p, err := safePrimeAtLeast(size.Add64(1))
	if err != nil {
		return nil, err
	}
	q, _ := p.Sub64(1).Div64(2)

	c := &Cycle{size: size, prime: p, q: q}
	c.gen = c.findGenerator(seed)
	c.start = c.element(seed, "start")
	return c, nil
}

// Size returns the size of the permuted space.
func (c *Cycle) Size() uint128.Uint128 { return c.size }

// Prime returns the group modulus (exposed for tests and diagnostics).
func (c *Cycle) Prime() uint128.Uint128 { return c.prime }

// Generator returns the group generator (exposed for tests).
func (c *Cycle) Generator() uint128.Uint128 { return c.gen }

// element derives a deterministic group element in [1, p-1] from the
// seed and a label, via HMAC-SHA256 rejection sampling.
func (c *Cycle) element(seed []byte, label string) uint128.Uint128 {
	pm1 := c.prime.Sub64(1)
	for ctr := uint64(0); ; ctr++ {
		mac := hmac.New(sha256.New, seed)
		mac.Write([]byte(label))
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], ctr)
		mac.Write(b[:])
		sum := mac.Sum(nil)
		v := uint128.FromBytes(sum[:16])
		// Map into [1, p-1] with negligible bias for our use.
		v = v.Mod(pm1).Add64(1)
		if !v.IsZero() {
			return v
		}
	}
}

// findGenerator derives a deterministic generator of Z_p* from the seed.
func (c *Cycle) findGenerator(seed []byte) uint128.Uint128 {
	for ctr := 0; ; ctr++ {
		g := c.element(seed, fmt.Sprintf("gen-%d", ctr))
		if g.Cmp(uint128.One) == 0 {
			continue
		}
		// g is a generator iff g^2 != 1 and g^q != 1 (order divides 2q).
		if g.MulMod(g, c.prime).Cmp(uint128.One) == 0 {
			continue
		}
		if g.ExpMod(c.q, c.prime).Cmp(uint128.One) == 0 {
			continue
		}
		return g
	}
}

// Iterator walks one shard of the permutation. Not safe for concurrent
// use; create one per goroutine via Shard or Iterate.
type Iterator struct {
	c         *Cycle
	cur       uint128.Uint128 // current group element
	step      uint128.Uint128 // g^nshards
	remaining uint128.Uint128 // group elements left to visit in this shard
	consumed  uint128.Uint128 // group elements visited (skips included)
	first     bool
}

// Iterate returns an iterator over the whole permutation.
func (c *Cycle) Iterate() *Iterator { return c.Shard(0, 1) }

// Shard returns an iterator over shard i of n: the elements at positions
// i, i+n, i+2n, ... of the full group walk. The n shards partition the
// space exactly. Panics if i >= n or n <= 0.
func (c *Cycle) Shard(i, n int) *Iterator {
	if n <= 0 || i < 0 || i >= n {
		panic(fmt.Sprintf("perm: invalid shard %d of %d", i, n))
	}
	order := c.prime.Sub64(1) // group order
	if order.Hi == 0 && uint64(i) >= order.Lo {
		// More shards than group elements; this shard is empty.
		return &Iterator{c: c}
	}
	// Elements in this shard: ceil((order - i) / n).
	cnt, _ := order.Sub64(uint64(i)).Add64(uint64(n) - 1).Div64(uint64(n))
	cur := c.start.MulMod(c.gen.ExpMod(uint128.From64(uint64(i)), c.prime), c.prime)
	step := c.gen.ExpMod(uint128.From64(uint64(n)), c.prime)
	return &Iterator{c: c, cur: cur, step: step, remaining: cnt, first: true}
}

// Next returns the next value of the permutation in [0, size), and false
// when the shard is exhausted.
func (it *Iterator) Next() (uint128.Uint128, bool) {
	for {
		if it.remaining.IsZero() {
			return uint128.Zero, false
		}
		if it.first {
			it.first = false
		} else {
			it.cur = it.cur.MulMod(it.step, it.c.prime)
		}
		it.remaining = it.remaining.Sub64(1)
		it.consumed = it.consumed.Add64(1)
		v := it.cur.Sub64(1)
		if v.Cmp(it.c.size) < 0 {
			return v, true
		}
		// Out-of-range group element (v in [N, p-2]); skip, like ZMap.
	}
}

// Consumed returns the number of group elements this iterator has
// visited, counting out-of-range skips. The value is a resumable cursor:
// Cycle.ShardAt(i, n, consumed) reconstructs an iterator that continues
// exactly where this one stands.
func (it *Iterator) Consumed() uint128.Uint128 { return it.consumed }

// ShardAt returns the Shard(i, n) iterator fast-forwarded past the first
// consumed group elements — the checkpoint/resume entry point. The walk
// position is recomputed with one modular exponentiation, so resuming
// deep into a scan costs O(log consumed), not O(consumed).
func (c *Cycle) ShardAt(i, n int, consumed uint128.Uint128) *Iterator {
	it := c.Shard(i, n)
	if consumed.IsZero() {
		return it
	}
	if it.remaining.Cmp(consumed) <= 0 {
		// Cursor at or past the end: the shard is exhausted.
		it.remaining = uint128.Zero
		it.consumed = consumed
		it.first = false
		return it
	}
	// After k visits the current element is start·g^i·step^(k-1); Next
	// multiplies by step once more before returning element k+1.
	it.cur = it.cur.MulMod(it.step.ExpMod(consumed.Sub64(1), c.prime), c.prime)
	it.remaining = it.remaining.Sub(consumed)
	it.consumed = consumed
	it.first = false
	return it
}

// Sequential is the ablation baseline: iterate [0, size) in order.
type Sequential struct {
	next, size uint128.Uint128
}

// NewSequential returns an in-order iterator over [0, size).
func NewSequential(size uint128.Uint128) *Sequential {
	return &Sequential{size: size}
}

// Next returns the next value, and false when exhausted.
func (s *Sequential) Next() (uint128.Uint128, bool) {
	if s.next.Cmp(s.size) >= 0 {
		return uint128.Zero, false
	}
	v := s.next
	s.next = s.next.Add64(1)
	return v, true
}

// safePrimeAtLeast returns the smallest safe prime p >= min, memoized.
func safePrimeAtLeast(min uint128.Uint128) (uint128.Uint128, error) {
	safePrimeCache.Lock()
	if p, ok := safePrimeCache.m[min]; ok {
		safePrimeCache.Unlock()
		return p, nil
	}
	safePrimeCache.Unlock()

	p, err := searchSafePrime(min)
	if err != nil {
		return uint128.Zero, err
	}

	safePrimeCache.Lock()
	safePrimeCache.m[min] = p
	safePrimeCache.Unlock()
	return p, nil
}

// smallSafePrimes covers moduli below the searchable range (p = 2q+1 with
// q prime): 5, 7, 11, 23, 47, 59, 83, 107, ...
var smallSafePrimes = []uint64{5, 7, 11, 23, 47, 59, 83, 107, 167, 179, 227, 263, 347, 359, 383, 467, 479, 503, 563, 587, 719, 839, 863, 887, 983, 1019, 1187, 1283}

func searchSafePrime(min uint128.Uint128) (uint128.Uint128, error) {
	if min.Hi == 0 && min.Lo <= smallSafePrimes[len(smallSafePrimes)-1] {
		for _, sp := range smallSafePrimes {
			if sp >= min.Lo {
				return uint128.From64(sp), nil
			}
		}
	}
	// Safe primes (other than 5) satisfy p ≡ 11 (mod 12): p ≡ 3 (mod 4)
	// because q is odd, and p ≡ 2 (mod 3) because q ≢ 0,1 forces it.
	// March candidates at that residue.
	cand := min
	rem := cand.Mod(uint128.From64(12)).Lo
	if rem <= 11 {
		cand = cand.Add64(11 - rem)
	}
	one := big.NewInt(1)
	two := big.NewInt(2)
	for i := 0; i < 1_000_000; i++ {
		if quickComposite(cand) {
			cand = cand.Add64(12)
			continue
		}
		p := cand.Big()
		q := new(big.Int).Sub(p, one)
		q.Div(q, two)
		if p.ProbablyPrime(20) && q.ProbablyPrime(20) {
			return cand, nil
		}
		cand = cand.Add64(12)
	}
	return uint128.Zero, fmt.Errorf("perm: no safe prime found above %s", min)
}

// smallPrimes is a trial-division filter applied to both p and (p-1)/2.
var smallPrimes = []uint64{5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113}

func quickComposite(p uint128.Uint128) bool {
	for _, sp := range smallPrimes {
		_, r := p.Div64(sp)
		if r == 0 && !(p.Hi == 0 && p.Lo == sp) {
			return true
		}
		// (p-1)/2 divisible by sp also disqualifies the safe-prime shape.
		q, _ := p.Sub64(1).Div64(2)
		_, r = q.Div64(sp)
		if r == 0 && !(q.Hi == 0 && q.Lo == sp) {
			return true
		}
	}
	return false
}
