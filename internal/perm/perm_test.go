package perm

import (
	"fmt"
	"math/big"
	"testing"

	"repro/internal/uint128"
)

func collect(t *testing.T, it *Iterator) []uint128.Uint128 {
	t.Helper()
	var out []uint128.Uint128
	for {
		v, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func TestCycleIsPermutation(t *testing.T) {
	for _, size := range []uint64{2, 3, 5, 16, 100, 256, 1000, 4096} {
		t.Run(fmt.Sprintf("size=%d", size), func(t *testing.T) {
			c, err := NewCycle(uint128.From64(size), []byte("seed"))
			if err != nil {
				t.Fatal(err)
			}
			vals := collect(t, c.Iterate())
			if uint64(len(vals)) != size {
				t.Fatalf("emitted %d values, want %d", len(vals), size)
			}
			seen := make(map[uint128.Uint128]bool, size)
			for _, v := range vals {
				if v.Cmp(uint128.From64(size)) >= 0 {
					t.Fatalf("value %s out of range", v)
				}
				if seen[v] {
					t.Fatalf("value %s emitted twice", v)
				}
				seen[v] = true
			}
		})
	}
}

func TestCycleDeterministic(t *testing.T) {
	mk := func(seed string) []uint128.Uint128 {
		c, err := NewCycle(uint128.From64(500), []byte(seed))
		if err != nil {
			t.Fatal(err)
		}
		return collect(t, c.Iterate())
	}
	a, b := mk("alpha"), mk("alpha")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	cvals := mk("beta")
	same := 0
	for i := range a {
		if a[i] == cvals[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical order")
	}
}

func TestCycleNotSequential(t *testing.T) {
	c, err := NewCycle(uint128.From64(1000), []byte("seed"))
	if err != nil {
		t.Fatal(err)
	}
	vals := collect(t, c.Iterate())
	ascending := 0
	for i := 1; i < len(vals); i++ {
		if vals[i].Cmp(vals[i-1]) > 0 {
			ascending++
		}
	}
	// A random permutation ascends about half the time; sequential always.
	if ascending > 700 {
		t.Errorf("permutation looks sequential: %d/999 ascending steps", ascending)
	}
}

func TestShardsPartitionSpace(t *testing.T) {
	for _, nshards := range []int{1, 2, 3, 7, 8} {
		const size = 1000
		c, err := NewCycle(uint128.From64(size), []byte("shard-seed"))
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[uint128.Uint128]int)
		for i := 0; i < nshards; i++ {
			for _, v := range collect(t, c.Shard(i, nshards)) {
				seen[v]++
			}
		}
		if len(seen) != size {
			t.Fatalf("nshards=%d: %d unique values, want %d", nshards, len(seen), size)
		}
		for v, n := range seen {
			if n != 1 {
				t.Fatalf("nshards=%d: value %s seen %d times", nshards, v, n)
			}
		}
	}
}

func TestShardMoreShardsThanElements(t *testing.T) {
	c, err := NewCycle(uint128.From64(2), []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 64; i++ {
		total += len(collect(t, c.Shard(i, 64)))
	}
	if total != 2 {
		t.Errorf("total emitted = %d, want 2", total)
	}
}

func TestShardPanicsOnBadArgs(t *testing.T) {
	c, err := NewCycle(uint128.From64(16), []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]int{{0, 0}, {-1, 2}, {2, 2}, {5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Shard(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			c.Shard(bad[0], bad[1])
		}()
	}
}

func TestNewCycleRejectsBadSizes(t *testing.T) {
	if _, err := NewCycle(uint128.Zero, []byte("s")); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewCycle(uint128.One, []byte("s")); err == nil {
		t.Error("size 1 accepted")
	}
	if _, err := NewCycle(uint128.One.Lsh(127), []byte("s")); err == nil {
		t.Error("size 2^127 accepted")
	}
}

func TestPrimeIsSafePrime(t *testing.T) {
	for _, size := range []uint64{2, 100, 65536, 1 << 20} {
		c, err := NewCycle(uint128.From64(size), []byte("s"))
		if err != nil {
			t.Fatal(err)
		}
		p := c.Prime().Big()
		if !p.ProbablyPrime(30) {
			t.Errorf("size %d: modulus %s not prime", size, p)
		}
		q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1)
		if !q.ProbablyPrime(30) {
			t.Errorf("size %d: (p-1)/2 = %s not prime", size, q)
		}
		if c.Prime().Cmp(uint128.From64(size)) <= 0 {
			t.Errorf("size %d: modulus %s not above space", size, c.Prime())
		}
	}
}

func TestGeneratorHasFullOrder(t *testing.T) {
	c, err := NewCycle(uint128.From64(1000), []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	p := c.Prime()
	g := c.Generator()
	q, _ := p.Sub64(1).Div64(2)
	if g.MulMod(g, p).Cmp(uint128.One) == 0 {
		t.Error("generator has order 2")
	}
	if g.ExpMod(q, p).Cmp(uint128.One) == 0 {
		t.Error("generator has order q")
	}
	if g.ExpMod(p.Sub64(1), p).Cmp(uint128.One) != 0 {
		t.Error("generator^order != 1")
	}
}

func TestWideSpacePermutationPrefix(t *testing.T) {
	// A 2^40 space cannot be exhausted in a test; check the first chunk
	// is in range and duplicate-free.
	c, err := NewCycle(uint128.One.Lsh(40), []byte("wide"))
	if err != nil {
		t.Fatal(err)
	}
	it := c.Iterate()
	seen := make(map[uint128.Uint128]bool)
	for i := 0; i < 10000; i++ {
		v, ok := it.Next()
		if !ok {
			t.Fatal("iterator ended early")
		}
		if v.Cmp(uint128.One.Lsh(40)) >= 0 {
			t.Fatalf("value %s out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate %s", v)
		}
		seen[v] = true
	}
}

func TestVeryWideSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("safe prime search above 2^64 is slow")
	}
	// Exercise the >64-bit modulus path (mod256 reduction).
	c, err := NewCycle(uint128.One.Lsh(80), []byte("huge"))
	if err != nil {
		t.Fatal(err)
	}
	it := c.Iterate()
	seen := make(map[uint128.Uint128]bool)
	for i := 0; i < 200; i++ {
		v, ok := it.Next()
		if !ok {
			t.Fatal("iterator ended early")
		}
		if v.Cmp(uint128.One.Lsh(80)) >= 0 || seen[v] {
			t.Fatalf("bad value %s", v)
		}
		seen[v] = true
	}
}

func TestSequential(t *testing.T) {
	s := NewSequential(uint128.From64(5))
	want := []uint64{0, 1, 2, 3, 4}
	for _, w := range want {
		v, ok := s.Next()
		if !ok || v != uint128.From64(w) {
			t.Fatalf("Next() = %s, %v; want %d", v, ok, w)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("sequential iterator did not terminate")
	}
}

func BenchmarkCycleNext24(b *testing.B) {
	c, err := NewCycle(uint128.One.Lsh(24), []byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	it := c.Iterate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := it.Next(); !ok {
			it = c.Iterate()
		}
	}
}

func BenchmarkCycleNext48(b *testing.B) {
	c, err := NewCycle(uint128.One.Lsh(48), []byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	it := c.Iterate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := it.Next(); !ok {
			it = c.Iterate()
		}
	}
}

// TestShardAtResumesExactly: for every shard layout and cut point, an
// iterator fast-forwarded with ShardAt produces exactly the values the
// original iterator had left — the property checkpoint/resume depends on.
func TestShardAtResumesExactly(t *testing.T) {
	c, err := NewCycle(uint128.From64(300), []byte("resume"))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 4} {
		for sh := 0; sh < shards; sh++ {
			ref := c.Shard(sh, shards)
			var values []uint128.Uint128
			var cursors []uint128.Uint128
			for {
				cursors = append(cursors, ref.Consumed())
				v, ok := ref.Next()
				if !ok {
					break
				}
				values = append(values, v)
			}
			// Resume from the cursor before every k-th value and from
			// the exhausted cursor.
			for k := 0; k <= len(values); k++ {
				var cur uint128.Uint128
				if k < len(cursors) {
					cur = cursors[k]
				} else {
					cur = ref.Consumed()
				}
				it := c.ShardAt(sh, shards, cur)
				for j := k; j < len(values); j++ {
					v, ok := it.Next()
					if !ok {
						t.Fatalf("shard %d/%d resumed at %d: exhausted at %d, want %d values",
							sh, shards, k, j, len(values))
					}
					if v != values[j] {
						t.Fatalf("shard %d/%d resumed at %d: value %d = %s, want %s",
							sh, shards, k, j, v, values[j])
					}
				}
				if v, ok := it.Next(); ok {
					t.Fatalf("shard %d/%d resumed at %d: extra value %s", sh, shards, k, v)
				}
			}
		}
	}
}

// TestShardAtPastEnd: a cursor at or beyond the shard's group walk yields
// an exhausted iterator, not a wrapped one.
func TestShardAtPastEnd(t *testing.T) {
	c, err := NewCycle(uint128.From64(50), []byte("resume-end"))
	if err != nil {
		t.Fatal(err)
	}
	ref := c.Shard(0, 2)
	for {
		if _, ok := ref.Next(); !ok {
			break
		}
	}
	for _, cur := range []uint128.Uint128{ref.Consumed(), ref.Consumed().Add64(7)} {
		it := c.ShardAt(0, 2, cur)
		if v, ok := it.Next(); ok {
			t.Fatalf("cursor %s past end yielded %s", cur, v)
		}
	}
}

// TestConsumedCountsSkips: the cursor advances on out-of-range group
// elements too, so it indexes the group walk, not the emitted values.
func TestConsumedCountsSkips(t *testing.T) {
	// Size 40 -> prime 47: 6 of the 46 group elements are skipped.
	c, err := NewCycle(uint128.From64(40), []byte("skips"))
	if err != nil {
		t.Fatal(err)
	}
	it := c.Iterate()
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if n != 40 {
		t.Fatalf("emitted %d values, want 40", n)
	}
	want := c.Prime().Sub64(1)
	if it.Consumed() != want {
		t.Fatalf("consumed %s group elements, want %s", it.Consumed(), want)
	}
}
