package edgy

import (
	"context"
	"testing"

	"repro/internal/ipv6"
	"repro/internal/topo"
	"repro/internal/uint128"
	"repro/internal/wire"
	"repro/internal/xmap"
)

func fixture(t *testing.T) (*topo.Deployment, *Tracer) {
	t.Helper()
	dep, err := topo.Build(topo.Config{
		Seed: 51, Scale: 0.0001, WindowWidth: 10,
		MaxDevicesPerISP: 60, OnlyISPs: []int{13},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dep, NewTracer(xmap.NewSimDriver(dep.Engine, dep.Edge))
}

func TestTraceReachesCPE(t *testing.T) {
	dep, tr := fixture(t)
	dev := dep.ISPs[0].Devices[0]
	// Target a nonexistent address inside the device's delegation.
	deleg := dev.CPE.Delegated()
	n, _ := deleg.NumSub(64)
	sub, err := deleg.Sub(64, n.Sub64(2))
	if err != nil {
		t.Fatal(err)
	}
	dst := ipv6.SLAAC(sub, 0x4242)

	path, probes, err := tr.Trace(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 {
		t.Fatal("empty path")
	}
	last := path[len(path)-1]
	if !last.Terminal {
		t.Errorf("path did not terminate: %+v", path)
	}
	if last.Addr != dev.WANAddr {
		t.Errorf("last hop = %s, want CPE %s", last.Addr, dev.WANAddr)
	}
	// Path: core, border, ISP, CPE -> at least 4 hops, >= 4 probes.
	if len(path) < 4 || probes < len(path) {
		t.Errorf("path %d hops, %d probes", len(path), probes)
	}
	// Hop distances ascend.
	for i := 1; i < len(path); i++ {
		if path[i].Distance <= path[i-1].Distance {
			t.Errorf("distances not ascending: %+v", path)
		}
	}
	// Intermediate hops are Time Exceeded.
	for _, hop := range path[:len(path)-1] {
		if hop.Kind != wire.ICMPTimeExceeded || hop.Terminal {
			t.Errorf("intermediate hop %+v", hop)
		}
	}
}

func TestTraceToSilentSpace(t *testing.T) {
	_, tr := fixture(t)
	// Unrouted space: hop limit 1 dies at the core (Time Exceeded);
	// hop limit 2 gets routed and draws the core's no-route unreachable.
	// The walk terminates at depth 2.
	path, probes, err := tr.Trace(ipv6.MustParseAddr("3fff::1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || !path[1].Terminal || path[0].Terminal {
		t.Errorf("path = %+v", path)
	}
	if probes != 2 {
		t.Errorf("probes = %d", probes)
	}
}

func TestTraceEchoTerminal(t *testing.T) {
	dep, tr := fixture(t)
	dev := dep.ISPs[0].Devices[0]
	path, _, err := tr.Trace(dev.WANAddr)
	if err != nil {
		t.Fatal(err)
	}
	last := path[len(path)-1]
	if last.Addr != dev.WANAddr || last.Kind != wire.ICMPEchoReply {
		t.Errorf("last = %+v", last)
	}
}

// TestBaselineVsXMapEfficiency reproduces the paper's Section III claim:
// per discovered periphery, the traceroute baseline spends several times
// the probes the unreachable-message technique needs, and buries the
// result in transit-interface noise.
func TestBaselineVsXMapEfficiency(t *testing.T) {
	dep, tr := fixture(t)
	isp := dep.ISPs[0]

	// Baseline: trace toward one random address per sub-prefix.
	var targets []ipv6.Addr
	size, _ := isp.Window.Size()
	for i := uint64(0); i < size.Lo; i++ {
		sub, err := isp.Window.Sub(uint128.From64(i))
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, ipv6.SLAAC(sub, 0x7777_0000|i))
	}
	census, err := tr.Discover(targets)
	if err != nil {
		t.Fatal(err)
	}

	// XMap on the identical window.
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	scanner, err := xmap.New(xmap.Config{Window: isp.Window, Seed: []byte("cmp")}, drv)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	stats, err := scanner.Run(context.Background(), func(r xmap.Response) {
		if _, ok := dep.DeviceByWAN(r.Responder); ok {
			found++
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	if found == 0 {
		t.Fatal("xmap found nothing")
	}
	// Same peripheries discovered by both...
	peris := 0
	for addr := range census.LastHops {
		if _, ok := dep.DeviceByWAN(addr); ok {
			peris++
		}
	}
	if peris < found*9/10 {
		t.Errorf("baseline found %d peripheries, xmap %d", peris, found)
	}
	// ...but the baseline pays several probes per target.
	if census.Probes < 2*int(stats.Sent) {
		t.Errorf("baseline probes %d not substantially above xmap %d", census.Probes, stats.Sent)
	}
	// And collects transit interfaces as noise.
	if len(census.Interfaces) <= len(census.LastHops) {
		t.Errorf("interfaces %d, last hops %d", len(census.Interfaces), len(census.LastHops))
	}
}

func TestProbesPerLastHop(t *testing.T) {
	c := &Census{Probes: 100, LastHops: map[ipv6.Addr]int{
		ipv6.MustParseAddr("::1"): 1,
		ipv6.MustParseAddr("::2"): 1,
	}}
	if got := c.ProbesPerLastHop(); got != 50 {
		t.Errorf("ProbesPerLastHop = %v", got)
	}
	if (&Census{}).ProbesPerLastHop() != 0 {
		t.Error("empty census not 0")
	}
}
