// Package edgy implements the traceroute-based IPv6 periphery discovery
// baseline the paper compares against (Rye & Beverly, "Discovering the
// IPv6 Network Periphery", PAM 2020; the paper's reference [77]): send
// hop-limited probes toward a target, walk the Time Exceeded chain, and
// take the final responder as the periphery candidate.
//
// The comparison the paper's Section III makes is about efficiency: the
// traceroute approach spends one probe per hop of every path and
// rediscovers the same transit routers constantly, whereas XMap's
// unreachable-message technique spends exactly one probe per sub-prefix.
// The BenchmarkBaselineComparison harness quantifies this on identical
// topologies.
package edgy

import (
	"fmt"

	"repro/internal/ipv6"
	"repro/internal/wire"
	"repro/internal/xmap"
)

// Hop is one row of a trace.
type Hop struct {
	Distance int // hop limit that elicited this responder
	Addr     ipv6.Addr
	// Terminal marks the end of the path: a Destination Unreachable or
	// an Echo Reply rather than a Time Exceeded.
	Terminal bool
	// Kind is the ICMPv6 type observed.
	Kind uint8
}

// Tracer performs hop-limited path walks through a scan driver.
type Tracer struct {
	drv xmap.PacketDriver
	// MaxHops bounds each trace (default 16).
	MaxHops int
	seq     uint16
}

// NewTracer creates a tracer.
func NewTracer(drv xmap.PacketDriver) *Tracer {
	return &Tracer{drv: drv, MaxHops: 16}
}

// Trace walks toward dst, one probe per hop limit, stopping at the first
// terminal response or silence. It returns the responding path and the
// number of probes spent.
func (t *Tracer) Trace(dst ipv6.Addr) ([]Hop, int, error) {
	var path []Hop
	probes := 0
	silent := 0
	for h := 1; h <= t.MaxHops; h++ {
		t.seq++
		pkt, err := wire.BuildEchoRequest(t.drv.SourceAddr(), dst, uint8(h), 0xed97, t.seq, nil)
		if err != nil {
			return nil, probes, fmt.Errorf("edgy: building probe: %w", err)
		}
		if err := t.drv.Send(pkt); err != nil {
			return nil, probes, err
		}
		probes++
		hop, ok := t.await(dst, h)
		if !ok {
			// One unresponsive hop is tolerated (real traces see
			// rate-limited routers); two consecutive end the walk.
			silent++
			if silent >= 2 {
				break
			}
			continue
		}
		silent = 0
		path = append(path, hop)
		if hop.Terminal {
			break
		}
	}
	return path, probes, nil
}

// await drains the driver for a response to our probe.
func (t *Tracer) await(dst ipv6.Addr, distance int) (Hop, bool) {
	for _, raw := range t.drv.Recv() {
		sum, err := wire.ParsePacket(raw)
		if err != nil || sum.ICMP == nil {
			continue
		}
		switch sum.ICMP.Type {
		case wire.ICMPTimeExceeded:
			inv, err := wire.ParseInvoking(sum.ICMP.Body)
			if err != nil || inv.IP.Dst != dst || inv.EchoID != 0xed97 {
				continue
			}
			return Hop{Distance: distance, Addr: sum.IP.Src, Kind: sum.ICMP.Type}, true
		case wire.ICMPDestUnreach:
			inv, err := wire.ParseInvoking(sum.ICMP.Body)
			if err != nil || inv.IP.Dst != dst || inv.EchoID != 0xed97 {
				continue
			}
			return Hop{Distance: distance, Addr: sum.IP.Src, Kind: sum.ICMP.Type, Terminal: true}, true
		case wire.ICMPEchoReply:
			if sum.IP.Src == dst {
				return Hop{Distance: distance, Addr: sum.IP.Src, Kind: sum.ICMP.Type, Terminal: true}, true
			}
		}
	}
	return Hop{}, false
}

// Census aggregates a discovery campaign.
type Census struct {
	// Targets traced and probes spent.
	Targets, Probes int
	// LastHops maps every distinct final responder to how often it
	// terminated a trace.
	LastHops map[ipv6.Addr]int
	// Interfaces is every distinct responder seen at any depth (the
	// topology-mapping byproduct of tracerouting).
	Interfaces map[ipv6.Addr]int
}

// Discover traces every target and aggregates the last hops — the
// baseline's periphery-discovery mode.
func (t *Tracer) Discover(targets []ipv6.Addr) (*Census, error) {
	c := &Census{
		LastHops:   make(map[ipv6.Addr]int),
		Interfaces: make(map[ipv6.Addr]int),
	}
	for _, dst := range targets {
		path, probes, err := t.Trace(dst)
		if err != nil {
			return nil, err
		}
		c.Targets++
		c.Probes += probes
		for _, hop := range path {
			c.Interfaces[hop.Addr]++
		}
		if len(path) > 0 {
			c.LastHops[path[len(path)-1].Addr]++
		}
	}
	return c, nil
}

// ProbesPerLastHop is the efficiency metric the comparison reports.
func (c *Census) ProbesPerLastHop() float64 {
	if len(c.LastHops) == 0 {
		return 0
	}
	return float64(c.Probes) / float64(len(c.LastHops))
}
