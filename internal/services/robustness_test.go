package services

import (
	"math/rand"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/wire"
)

// TestStackSurvivesGarbage feeds the full device stack arbitrary bytes
// and mutated-valid packets: a periphery on the open Internet sees
// exactly this, and must not crash.
func TestStackSurvivesGarbage(t *testing.T) {
	st := newStack(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		b := make([]byte, rng.Intn(300))
		rng.Read(b)
		_ = st.HandleLocal(devAddr, b)
	}
}

func TestStackSurvivesMutatedProtocols(t *testing.T) {
	st := newStack(t)
	rng := rand.New(rand.NewSource(5))
	q, err := dnswire.NewQuery(1, "example.com", dnswire.TypeA, dnswire.ClassIN).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		// Mutate the DNS payload, rewrap in a valid UDP packet (the
		// checksums are recomputed, so the application parser is hit).
		qq := append([]byte(nil), q...)
		for k := 0; k < 1+rng.Intn(6); k++ {
			qq[rng.Intn(len(qq))] ^= byte(1 << rng.Intn(8))
		}
		pkt, err := wire.BuildUDP(clientAddr, devAddr, 64, 40000, 53, qq)
		if err != nil {
			t.Fatal(err)
		}
		_ = st.HandleLocal(devAddr, pkt)
	}
	// Truncated TCP segments through the valid-checksum path.
	for i := 0; i < 3000; i++ {
		payload := make([]byte, rng.Intn(64))
		rng.Read(payload)
		th := wire.TCPHeader{
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: []uint16{21, 22, 23, 53, 80, 443, 8080, 9999}[rng.Intn(8)],
			Seq:     rng.Uint32(), Ack: rng.Uint32(),
			Flags: uint8(rng.Intn(32)),
		}
		pkt, err := wire.BuildTCP(clientAddr, devAddr, 64, th, payload)
		if err != nil {
			t.Fatal(err)
		}
		_ = st.HandleLocal(devAddr, pkt)
	}
}

// FuzzStackHandleLocal runs arbitrary bytes through the stack.
func FuzzStackHandleLocal(f *testing.F) {
	st := NewStack(fullConfig(), []byte("fuzz"))
	ping, err := wire.BuildEchoRequest(clientAddr, devAddr, 64, 1, 1, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ping)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = st.HandleLocal(devAddr, data)
	})
}

// FuzzDNSForwarder targets the forwarder's parser/response path.
func FuzzDNSForwarder(f *testing.F) {
	d := &DNSForwarder{Software: "dnsmasq-2.45"}
	q, err := dnswire.NewQuery(1, "a.example", dnswire.TypeA, dnswire.ClassIN).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(q)
	vb, err := dnswire.NewVersionBindQuery(2).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(vb)
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = d.Handle(data)
	})
}
