package services

import (
	"strings"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/ipv6"
	"repro/internal/minitcp"
	"repro/internal/ntpwire"
	"repro/internal/tlswire"
	"repro/internal/wire"
)

var (
	devAddr    = ipv6.MustParseAddr("2001:db8:1234:5678::1")
	clientAddr = ipv6.MustParseAddr("2001:beef::5")
)

func fullConfig() Config {
	return Config{
		Vendor: "Youhua Tech",
		Software: map[ID]string{
			SvcDNS:      "dnsmasq-2.45",
			SvcNTP:      "ntpd-4",
			SvcFTP:      "GNU Inetutils 1.4.1",
			SvcSSH:      "dropbear_0.46",
			SvcTelnet:   "HG6543C",
			SvcHTTP80:   "MiniWeb HTTP Server",
			SvcTLS:      "embedded-tls",
			SvcHTTP8080: "Jetty 6.1.26",
		},
	}
}

func newStack(t *testing.T) *Stack {
	t.Helper()
	return NewStack(fullConfig(), []byte("seed"))
}

// stackConn adapts a Stack to minitcp.Conn for client exchanges.
type stackConn struct {
	st  *Stack
	buf [][]byte
}

func (c *stackConn) Send(pkt []byte) error {
	c.buf = append(c.buf, c.st.HandleLocal(devAddr, pkt)...)
	return nil
}

func (c *stackConn) Recv() [][]byte {
	out := c.buf
	c.buf = nil
	return out
}

func udpRoundTrip(t *testing.T, st *Stack, port uint16, payload []byte) []byte {
	t.Helper()
	pkt, err := wire.BuildUDP(clientAddr, devAddr, 64, 40000, port, payload)
	if err != nil {
		t.Fatal(err)
	}
	replies := st.HandleLocal(devAddr, pkt)
	if len(replies) == 0 {
		return nil
	}
	if len(replies) != 1 {
		t.Fatalf("got %d replies", len(replies))
	}
	s, err := wire.ParsePacket(replies[0])
	if err != nil {
		t.Fatal(err)
	}
	if s.UDP == nil {
		// Possibly an ICMP error; return the raw marker.
		return nil
	}
	return s.Payload
}

func TestServiceIDBasics(t *testing.T) {
	wantPorts := map[ID]uint16{
		SvcDNS: 53, SvcNTP: 123, SvcFTP: 21, SvcSSH: 22,
		SvcTelnet: 23, SvcHTTP80: 80, SvcTLS: 443, SvcHTTP8080: 8080,
	}
	for id, port := range wantPorts {
		if id.Port() != port {
			t.Errorf("%s Port() = %d", id, id.Port())
		}
	}
	if !SvcDNS.IsUDP() || !SvcNTP.IsUDP() || SvcFTP.IsUDP() {
		t.Error("IsUDP misclassifies")
	}
	if SvcDNS.String() != "DNS-53" || SvcHTTP8080.String() != "HTTP-8080" {
		t.Error("String labels wrong")
	}
	if len(All) != 8 {
		t.Errorf("All has %d services", len(All))
	}
}

func TestEchoReply(t *testing.T) {
	st := newStack(t)
	pkt, err := wire.BuildEchoRequest(clientAddr, devAddr, 64, 7, 9, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	replies := st.HandleLocal(devAddr, pkt)
	if len(replies) != 1 {
		t.Fatalf("replies = %d", len(replies))
	}
	s, err := wire.ParsePacket(replies[0])
	if err != nil {
		t.Fatal(err)
	}
	if s.ICMP.Type != wire.ICMPEchoReply || s.IP.Src != devAddr {
		t.Errorf("reply = %+v", s)
	}
}

func TestDNSAQuery(t *testing.T) {
	st := newStack(t)
	q, err := dnswire.NewQuery(42, "example.com", dnswire.TypeA, dnswire.ClassIN).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	resp := udpRoundTrip(t, st, 53, q)
	if resp == nil {
		t.Fatal("no DNS response")
	}
	m, err := dnswire.Parse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 42 || m.Flags&dnswire.FlagQR == 0 || m.Flags&dnswire.FlagRA == 0 {
		t.Errorf("flags = %04x", m.Flags)
	}
	if len(m.Answers) != 1 || m.Answers[0].Type != dnswire.TypeA {
		t.Errorf("answers = %+v", m.Answers)
	}
}

func TestDNSVersionBind(t *testing.T) {
	st := newStack(t)
	q, err := dnswire.NewVersionBindQuery(1).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	resp := udpRoundTrip(t, st, 53, q)
	m, err := dnswire.Parse(resp)
	if err != nil {
		t.Fatal(err)
	}
	strs, err := dnswire.ParseTXTData(m.Answers[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(strs) != 1 || strs[0] != "dnsmasq-2.45" {
		t.Errorf("version.bind = %v", strs)
	}
}

func TestDNSIgnoresResponses(t *testing.T) {
	st := newStack(t)
	m := dnswire.NewQuery(1, "x.com", dnswire.TypeA, dnswire.ClassIN)
	m.Flags |= dnswire.FlagQR
	b, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if resp := udpRoundTrip(t, st, 53, b); resp != nil {
		t.Error("forwarder answered a response packet")
	}
}

func TestNTPReply(t *testing.T) {
	st := newStack(t)
	q, err := ntpwire.NewClientQuery(0x123456789).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	resp := udpRoundTrip(t, st, 123, q)
	if resp == nil {
		t.Fatal("no NTP response")
	}
	p, err := ntpwire.Parse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != ntpwire.ModeServer || p.OrigTimestamp != 0x123456789 {
		t.Errorf("reply = %+v", p)
	}
}

func TestClosedUDPPortUnreachable(t *testing.T) {
	st := newStack(t)
	pkt, err := wire.BuildUDP(clientAddr, devAddr, 64, 40000, 9999, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	replies := st.HandleLocal(devAddr, pkt)
	if len(replies) != 1 {
		t.Fatalf("replies = %d", len(replies))
	}
	s, err := wire.ParsePacket(replies[0])
	if err != nil {
		t.Fatal(err)
	}
	if s.ICMP == nil || s.ICMP.Type != wire.ICMPDestUnreach || s.ICMP.Code != wire.UnreachPort {
		t.Errorf("reply = %+v", s)
	}
}

func TestFTPBannerAndUser(t *testing.T) {
	st := newStack(t)
	c := &stackConn{st: st}
	res, err := minitcp.Exchange(c, clientAddr, devAddr, 40000, 21, []byte("USER anonymous\r\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Banner), "GNU Inetutils 1.4.1") {
		t.Errorf("banner = %q", res.Banner)
	}
	if !strings.HasPrefix(string(res.Data), "331") {
		t.Errorf("data = %q", res.Data)
	}
}

func TestSSHVersionExchange(t *testing.T) {
	st := newStack(t)
	c := &stackConn{st: st}
	res, err := minitcp.Exchange(c, clientAddr, devAddr, 40001, 22, []byte("SSH-2.0-probe\r\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(res.Banner), "SSH-2.0-dropbear_0.46") {
		t.Errorf("banner = %q", res.Banner)
	}
	if !strings.Contains(string(res.Data), "hostkey") {
		t.Errorf("data = %q", res.Data)
	}
}

func TestTelnetLoginPrompt(t *testing.T) {
	st := newStack(t)
	c := &stackConn{st: st}
	res, err := minitcp.Exchange(c, clientAddr, devAddr, 40002, 23, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Banner), "login:") || !strings.Contains(string(res.Banner), "Youhua Tech") {
		t.Errorf("banner = %q", res.Banner)
	}
	if res.Banner[0] != 255 {
		t.Error("missing IAC prologue")
	}
}

func TestHTTPLoginPage(t *testing.T) {
	st := newStack(t)
	c := &stackConn{st: st}
	res, err := minitcp.Exchange(c, clientAddr, devAddr, 40003, 80,
		[]byte("GET / HTTP/1.1\r\nHost: router\r\n\r\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	body := string(res.Data)
	if !strings.Contains(body, "Server: MiniWeb HTTP Server") {
		t.Errorf("missing server header: %q", body)
	}
	if !strings.Contains(body, "Login") || !strings.Contains(body, "password") {
		t.Errorf("not a login page: %q", body)
	}
}

func TestHTTP8080NoLogin(t *testing.T) {
	st := newStack(t)
	c := &stackConn{st: st}
	res, err := minitcp.Exchange(c, clientAddr, devAddr, 40004, 8080,
		[]byte("GET / HTTP/1.1\r\n\r\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Data), "Server: Jetty 6.1.26") {
		t.Errorf("data = %q", res.Data)
	}
}

func TestHTTPBadRequest(t *testing.T) {
	st := newStack(t)
	c := &stackConn{st: st}
	res, err := minitcp.Exchange(c, clientAddr, devAddr, 40005, 80, []byte("NONSENSE\r\n\r\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(res.Data), "HTTP/1.1 400") {
		t.Errorf("data = %q", res.Data)
	}
}

func TestTLSHandshake(t *testing.T) {
	st := newStack(t)
	c := &stackConn{st: st}
	hello, err := tlswire.MarshalClientHello(&tlswire.ClientHello{
		CipherSuites: []uint16{tlswire.TLSECDHERSAWithAES128GCMSHA256},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := minitcp.Exchange(c, clientAddr, devAddr, 40006, 443, hello, 4)
	if err != nil {
		t.Fatal(err)
	}
	flight, err := tlswire.ParseServerFlight(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(flight.Certificate), "Youhua Tech") {
		t.Errorf("cert = %q", flight.Certificate)
	}
}

func TestDisabledServicesClosed(t *testing.T) {
	st := NewStack(Config{Vendor: "Bare", Software: map[ID]string{SvcHTTP80: "httpd"}}, []byte("s"))
	if st.Enabled(SvcDNS) || !st.Enabled(SvcHTTP80) {
		t.Error("Enabled() wrong")
	}
	c := &stackConn{st: st}
	res, err := minitcp.Exchange(c, clientAddr, devAddr, 40007, 22, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Open {
		t.Error("disabled SSH port open")
	}
}

func TestFTPCommandVariants(t *testing.T) {
	f := &FTPService{Software: "vsftpd 2.3.4"}
	if got := string(f.Respond([]byte("QUIT\r\n"))); !strings.HasPrefix(got, "221") {
		t.Errorf("QUIT -> %q", got)
	}
	if got := string(f.Respond([]byte("SYST\r\n"))); !strings.HasPrefix(got, "502") {
		t.Errorf("SYST -> %q", got)
	}
}

func TestSSHIgnoresNonSSHRequest(t *testing.T) {
	s := &SSHService{Software: "dropbear_0.46"}
	if s.Respond([]byte("GET / HTTP/1.1")) != nil {
		t.Error("SSH answered an HTTP request")
	}
}

func TestTelnetRespondPassword(t *testing.T) {
	tl := &TelnetService{Vendor: "V", DeviceName: "D"}
	if got := string(tl.Respond([]byte("admin\r\n"))); got != "Password: " {
		t.Errorf("Respond = %q", got)
	}
}

func TestTLSIgnoresGarbage(t *testing.T) {
	ts := &TLSService{Vendor: "V"}
	if ts.Respond([]byte("not a client hello")) != nil {
		t.Error("TLS answered garbage")
	}
}

func TestHTTPHeadRequest(t *testing.T) {
	h := &HTTPService{Server: "micro_httpd", Vendor: "V"}
	resp := string(h.Respond([]byte("HEAD / HTTP/1.1\r\n\r\n")))
	if !strings.HasPrefix(resp, "HTTP/1.1 200") {
		t.Errorf("HEAD -> %q", resp)
	}
}

func TestServiceIDUnknownString(t *testing.T) {
	if got := ID(42).String(); got != "Service(42)" {
		t.Errorf("unknown = %q", got)
	}
	if ID(42).Port() != 0 {
		t.Error("unknown port != 0")
	}
}

func TestDNSUnsupportedQueryType(t *testing.T) {
	st := newStack(t)
	q, err := dnswire.NewQuery(5, "x.example", dnswire.TypePTR, dnswire.ClassIN).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	resp := udpRoundTrip(t, st, 53, q)
	m, err := dnswire.Parse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rcode() != dnswire.RcodeNotImp {
		t.Errorf("rcode = %d", m.Rcode())
	}
}

func TestDNSAAAAQuery(t *testing.T) {
	st := newStack(t)
	q, err := dnswire.NewQuery(6, "v6.example", dnswire.TypeAAAA, dnswire.ClassIN).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	resp := udpRoundTrip(t, st, 53, q)
	m, err := dnswire.Parse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 1 || m.Answers[0].Type != dnswire.TypeAAAA || len(m.Answers[0].Data) != 16 {
		t.Errorf("answers = %+v", m.Answers)
	}
}
