// Package services implements the application services running on
// simulated periphery devices — the 8 services of the paper's Table VI
// (DNS, NTP, FTP, SSH, TELNET, HTTP/80, TLS/443, HTTP/8080) — and the
// device stack that exposes them over the simulated network. The paper
// measures these as "unintended exposed services": home-router daemons
// reachable over global IPv6 because nothing filters them.
package services

import (
	"fmt"
	"strings"

	"repro/internal/dnswire"
	"repro/internal/ipv6"
	"repro/internal/minitcp"
	"repro/internal/ntpwire"
	"repro/internal/tlswire"
	"repro/internal/wire"
)

// ID identifies one of the measured services.
type ID int

// The eight probed services, in the paper's table order.
const (
	SvcDNS ID = iota + 1
	SvcNTP
	SvcFTP
	SvcSSH
	SvcTelnet
	SvcHTTP80
	SvcTLS
	SvcHTTP8080
)

// All lists every service in table order.
var All = []ID{SvcDNS, SvcNTP, SvcFTP, SvcSSH, SvcTelnet, SvcHTTP80, SvcTLS, SvcHTTP8080}

// Port returns the service's transport port.
func (s ID) Port() uint16 {
	switch s {
	case SvcDNS:
		return 53
	case SvcNTP:
		return 123
	case SvcFTP:
		return 21
	case SvcSSH:
		return 22
	case SvcTelnet:
		return 23
	case SvcHTTP80:
		return 80
	case SvcTLS:
		return 443
	case SvcHTTP8080:
		return 8080
	}
	return 0
}

// IsUDP reports whether the service runs over UDP.
func (s ID) IsUDP() bool { return s == SvcDNS || s == SvcNTP }

// String returns the paper's label, e.g. "DNS-53".
func (s ID) String() string {
	switch s {
	case SvcDNS:
		return "DNS-53"
	case SvcNTP:
		return "NTP-123"
	case SvcFTP:
		return "FTP-21"
	case SvcSSH:
		return "SSH-22"
	case SvcTelnet:
		return "TELNET-23"
	case SvcHTTP80:
		return "HTTP-80"
	case SvcTLS:
		return "TLS-443"
	case SvcHTTP8080:
		return "HTTP-8080"
	}
	return fmt.Sprintf("Service(%d)", int(s))
}

// Config describes a device's exposed services: a vendor name and the
// software (with version) behind each enabled service.
type Config struct {
	Vendor   string
	Software map[ID]string
}

// UDPService handles one UDP request datagram.
type UDPService interface {
	// Handle returns the response payload, or nil for silence.
	Handle(req []byte) []byte
}

// Stack is a periphery device's transport/application stack. It
// implements netsim.LocalStack.
type Stack struct {
	cfg Config
	tcp *minitcp.Server
	udp map[uint16]UDPService
}

// NewStack assembles the stack for cfg. The seed keys the TCP cookies.
func NewStack(cfg Config, seed []byte) *Stack {
	s := &Stack{cfg: cfg, tcp: minitcp.NewServer(seed), udp: make(map[uint16]UDPService)}
	for id, sw := range cfg.Software {
		switch id {
		case SvcDNS:
			s.udp[53] = &DNSForwarder{Software: sw}
		case SvcNTP:
			s.udp[123] = &NTPService{}
		case SvcFTP:
			s.tcp.Register(21, &FTPService{Software: sw})
		case SvcSSH:
			s.tcp.Register(22, &SSHService{Software: sw})
		case SvcTelnet:
			s.tcp.Register(23, &TelnetService{Vendor: cfg.Vendor, DeviceName: sw})
		case SvcHTTP80:
			s.tcp.Register(80, &HTTPService{Server: sw, Vendor: cfg.Vendor, LoginPage: true})
		case SvcTLS:
			s.tcp.Register(443, &TLSService{Vendor: cfg.Vendor})
		case SvcHTTP8080:
			s.tcp.Register(8080, &HTTPService{Server: sw, Vendor: cfg.Vendor})
		}
	}
	return s
}

// Enabled reports whether the given service is configured.
func (s *Stack) Enabled(id ID) bool {
	_, ok := s.cfg.Software[id]
	return ok
}

// HandleLocal implements the device side of every probe: ICMPv6 echo,
// UDP services (with port-unreachable for closed ports), and TCP via the
// embedded mini-TCP server.
func (s *Stack) HandleLocal(self ipv6.Addr, pkt []byte) [][]byte {
	sum, err := wire.ParsePacket(pkt)
	if err != nil {
		return nil
	}
	switch {
	case sum.ICMP != nil:
		if sum.ICMP.Type != wire.ICMPEchoRequest {
			return nil
		}
		e, err := wire.ParseEcho(sum.ICMP.Body)
		if err != nil {
			return nil
		}
		reply, err := wire.BuildEchoReply(self, sum.IP.Src, 64, e.ID, e.Seq, e.Data)
		if err != nil {
			return nil
		}
		return [][]byte{reply}

	case sum.UDP != nil:
		svc, ok := s.udp[sum.UDP.DstPort]
		if !ok {
			// RFC 4443: port unreachable.
			errPkt, err := wire.BuildDestUnreach(self, sum.IP.Src, 64, wire.UnreachPort, pkt)
			if err != nil {
				return nil
			}
			return [][]byte{errPkt}
		}
		resp := svc.Handle(sum.Payload)
		if resp == nil {
			return nil
		}
		out, err := wire.BuildUDP(self, sum.IP.Src, 64, sum.UDP.DstPort, sum.UDP.SrcPort, resp)
		if err != nil {
			return nil
		}
		return [][]byte{out}

	case sum.TCP != nil:
		return s.tcp.HandleSegment(self, sum.IP.Src, *sum.TCP, sum.Payload)
	}
	return nil
}

// DNSForwarder models the dnsmasq-style forwarder on home routers: it
// "resolves" A/AAAA queries (synthetically), answers version.bind, and
// sets RA — which is exactly what makes it an open resolver when exposed.
type DNSForwarder struct {
	Software string // e.g. "dnsmasq-2.45"
}

var _ UDPService = (*DNSForwarder)(nil)

// Handle implements UDPService.
func (d *DNSForwarder) Handle(req []byte) []byte {
	q, err := dnswire.Parse(req)
	if err != nil || q.Flags&dnswire.FlagQR != 0 || len(q.Questions) == 0 {
		return nil
	}
	question := q.Questions[0]
	resp := &dnswire.Message{
		ID:        q.ID,
		Flags:     dnswire.FlagQR | dnswire.FlagRA | dnswire.FlagRD,
		Questions: q.Questions,
	}
	switch {
	case question.Class == dnswire.ClassCH && question.Type == dnswire.TypeTXT &&
		strings.EqualFold(question.Name, "version.bind"):
		txt, err := dnswire.TXTData(d.Software)
		if err != nil {
			return nil
		}
		resp.Answers = []dnswire.RR{{
			Name: question.Name, Type: dnswire.TypeTXT, Class: dnswire.ClassCH, TTL: 0, Data: txt,
		}}
	case question.Class == dnswire.ClassIN && question.Type == dnswire.TypeA:
		// The forwarder "recurses" to its upstream; the simulation
		// answers with a deterministic synthetic address.
		resp.Answers = []dnswire.RR{{
			Name: question.Name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300,
			Data: []byte{93, 184, 216, 34},
		}}
	case question.Class == dnswire.ClassIN && question.Type == dnswire.TypeAAAA:
		resp.Answers = []dnswire.RR{{
			Name: question.Name, Type: dnswire.TypeAAAA, Class: dnswire.ClassIN, TTL: 300,
			Data: []byte{0x26, 0x06, 0x28, 0x00, 0x02, 0x20, 0, 1, 0x02, 0x48, 0x18, 0x93, 0x25, 0xc8, 0x19, 0x46},
		}}
	default:
		resp.Flags |= dnswire.RcodeNotImp
	}
	out, err := resp.Marshal()
	if err != nil {
		return nil
	}
	return out
}

// NTPService answers NTPv4 mode-3 queries with a mode-4 reply.
type NTPService struct{}

var _ UDPService = (*NTPService)(nil)

// Handle implements UDPService.
func (NTPService) Handle(req []byte) []byte {
	q, err := ntpwire.Parse(req)
	if err != nil || q.Mode != ntpwire.ModeClient {
		return nil
	}
	// Deterministic timestamps: the measurement cares about
	// reachability and version, not clock quality.
	reply := ntpwire.NewServerReply(q, q.XmitTimestamp+1, q.XmitTimestamp+2)
	out, err := reply.Marshal()
	if err != nil {
		return nil
	}
	return out
}

// FTPService greets with the software banner, the "successful response"
// of Table VI.
type FTPService struct {
	Software string // e.g. "GNU Inetutils 1.4.1"
}

var _ minitcp.Service = (*FTPService)(nil)

// Banner implements minitcp.Service.
func (f *FTPService) Banner() []byte {
	return []byte("220 router FTP server (" + f.Software + ") ready.\r\n")
}

// Respond implements minitcp.Service.
func (f *FTPService) Respond(req []byte) []byte {
	cmd := strings.ToUpper(strings.TrimSpace(string(req)))
	switch {
	case strings.HasPrefix(cmd, "USER"):
		return []byte("331 Password required.\r\n")
	case strings.HasPrefix(cmd, "QUIT"):
		return []byte("221 Goodbye.\r\n")
	default:
		return []byte("502 Command not implemented.\r\n")
	}
}

// SSHService speaks the version-exchange half of SSH: the banner carries
// the software version, and any client identification is answered with a
// key-exchange-init-shaped blob (the "version, key" of Table VI).
type SSHService struct {
	Software string // e.g. "dropbear_0.46" or "OpenSSH_3.5"
}

var _ minitcp.Service = (*SSHService)(nil)

// Banner implements minitcp.Service.
func (s *SSHService) Banner() []byte {
	return []byte("SSH-2.0-" + s.Software + "\r\n")
}

// Respond implements minitcp.Service.
func (s *SSHService) Respond(req []byte) []byte {
	if !strings.HasPrefix(string(req), "SSH-") {
		return nil
	}
	// A stand-in SSH_MSG_KEXINIT packet: length, padding, type 20, then
	// an opaque host-key marker the prober can recognize.
	body := []byte("\x00\x00\x00\x2c\x0a\x14ssh-rsa-hostkey-fingerprint-synthetic")
	return body
}

// TelnetService negotiates nothing and prints a login prompt carrying the
// vendor banner.
type TelnetService struct {
	Vendor     string
	DeviceName string // e.g. "BCM96338 ADSL Router" or "OpenWrt"
}

var _ minitcp.Service = (*TelnetService)(nil)

// iac constructs the WILL ECHO / WILL SGA negotiation prologue real
// telnetds emit.
var telnetIAC = []byte{255, 251, 1, 255, 251, 3}

// Banner implements minitcp.Service.
func (t *TelnetService) Banner() []byte {
	b := append([]byte(nil), telnetIAC...)
	b = append(b, []byte(t.DeviceName+"\r\n"+t.Vendor+" login: ")...)
	return b
}

// Respond implements minitcp.Service.
func (t *TelnetService) Respond(req []byte) []byte {
	return []byte("Password: ")
}

// HTTPService serves the embedded management web application. With
// LoginPage set it renders the router admin login form (the pages the
// paper found reachable on 1.3M devices).
type HTTPService struct {
	Server    string // Server header, e.g. "MiniWeb HTTP Server", "Jetty 6.1.26"
	Vendor    string
	LoginPage bool
}

var _ minitcp.Service = (*HTTPService)(nil)

// Banner implements minitcp.Service.
func (h *HTTPService) Banner() []byte { return nil }

// Respond implements minitcp.Service.
func (h *HTTPService) Respond(req []byte) []byte {
	line, _, _ := strings.Cut(string(req), "\r\n")
	fields := strings.Fields(line)
	if len(fields) < 3 || (fields[0] != "GET" && fields[0] != "HEAD") {
		return []byte("HTTP/1.1 400 Bad Request\r\nConnection: close\r\n\r\n")
	}
	var body string
	if h.LoginPage {
		body = "<html><head><title>" + h.Vendor + " Router - Login</title></head>" +
			"<body><form action=\"/login.cgi\" method=\"post\">" +
			"Username: <input name=\"user\"> Password: <input type=\"password\" name=\"pwd\">" +
			"<input type=\"submit\" value=\"Login\"></form>" +
			"<!-- vendor: " + h.Vendor + " --></body></html>"
	} else {
		body = "<html><head><title>" + h.Vendor + "</title></head>" +
			"<body><h1>It works</h1><!-- vendor: " + h.Vendor + " --></body></html>"
	}
	resp := fmt.Sprintf(
		"HTTP/1.1 200 OK\r\nServer: %s\r\nContent-Type: text/html\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s",
		h.Server, len(body), body)
	return []byte(resp)
}

// TLSService answers a ClientHello with a ServerHello + a synthetic
// certificate naming the vendor.
type TLSService struct {
	Vendor string
}

var _ minitcp.Service = (*TLSService)(nil)

// Banner implements minitcp.Service.
func (t *TLSService) Banner() []byte { return nil }

// Respond implements minitcp.Service.
func (t *TLSService) Respond(req []byte) []byte {
	if _, err := tlswire.ParseClientHello(req); err != nil {
		return nil
	}
	cert := []byte("CN=" + t.Vendor + " router,O=" + t.Vendor)
	out, err := tlswire.MarshalServerFlight(tlswire.TLSECDHERSAWithAES128GCMSHA256, cert)
	if err != nil {
		return nil
	}
	return out
}
