package subnet

import (
	"testing"

	"repro/internal/topo"
	"repro/internal/uint128"
	"repro/internal/xmap"
)

func inferISP(t *testing.T, index int) Result {
	t.Helper()
	dep, err := topo.Build(topo.Config{
		Seed: 21, Scale: 0.001, WindowWidth: 10,
		MaxDevicesPerISP: 120, OnlyISPs: []int{index},
	})
	if err != nil {
		t.Fatal(err)
	}
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	res, err := Infer(drv, isp.Window.Base, Options{Seed: 5, MaxPreliminary: 4096})
	if err != nil {
		t.Fatalf("ISP %d (%s): %v", index, isp.Spec.Name, err)
	}
	return res
}

func TestInferBoundaryPerISPFamily(t *testing.T) {
	cases := []struct {
		isp  int
		want int
	}{
		{1, 64},  // Reliance Jio: /64
		{5, 56},  // Comcast: /56
		{6, 60},  // AT&T: /60
		{13, 60}, // China Mobile broadband: /60
		{15, 64}, // China Mobile mobile: /64
	}
	for _, c := range cases {
		res := inferISP(t, c.isp)
		if res.Length != c.want {
			t.Errorf("ISP %d inferred /%d, want /%d (samples %v)", c.isp, res.Length, c.want, res.Samples)
		}
	}
}

func TestInferRejectsLongBlock(t *testing.T) {
	dep, err := topo.Build(topo.Config{Seed: 1, Scale: 0.0001, WindowWidth: 10, MaxDevicesPerISP: 20, OnlyISPs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	sub64, err := dep.ISPs[0].Window.Base.Sub(64, uint128.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Infer(drv, sub64, Options{Seed: 1}); err == nil {
		t.Error("accepted a /64 block")
	}
}

func TestInferFailsOnEmptyBlock(t *testing.T) {
	// An ISP with a tiny population and a huge preliminary budget still
	// succeeds; an empty region fails cleanly.
	dep, err := topo.Build(topo.Config{Seed: 2, Scale: 0.0001, WindowWidth: 10, MaxDevicesPerISP: 10, OnlyISPs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	// Probe the second window-size region: reserved for WAN prefixes of
	// delegated ISPs, empty for ISP 1.
	empty, err := dep.ISPs[0].Block.Sub(54, uint128.One)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Infer(drv, empty, Options{Seed: 1, MaxPreliminary: 64}); err == nil {
		t.Error("inference in empty space succeeded")
	}
}
