// Package subnet implements the paper's Section IV-A sub-prefix length
// inference: find one periphery by probing random /64s of an ISP block,
// then flip target-address bits from the 64th toward the 32nd and watch
// when the responder changes — the first differing bit position is the
// delegation boundary (Table I's "Length" column).
package subnet

import (
	"fmt"
	"math/rand"

	"repro/internal/ipv6"
	"repro/internal/uint128"
	"repro/internal/wire"
	"repro/internal/xmap"
)

// Options tunes the inference.
type Options struct {
	// Seed keys target selection.
	Seed int64
	// MaxPreliminary bounds the number of random /64 probes used to find
	// the first periphery (default 512).
	MaxPreliminary int
	// Repeats is how many independent inferences are combined by
	// majority (default 3), the paper's "replicate the test several
	// times".
	Repeats int
	// MinLength is the shallowest boundary probed (default 32).
	MinLength int
}

func (o *Options) fill() {
	if o.MaxPreliminary == 0 {
		o.MaxPreliminary = 512
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	if o.MinLength == 0 {
		o.MinLength = 32
	}
}

// Result is one block's inference outcome.
type Result struct {
	Block  ipv6.Prefix
	Length int
	// Samples lists each repeat's individual answer.
	Samples []int
	// Periphery is the (last) periphery the walk anchored on.
	Periphery ipv6.Addr
}

// Infer determines the delegated sub-prefix length for end users of the
// given ISP block, scanning through drv.
func Infer(drv xmap.PacketDriver, block ipv6.Prefix, opts Options) (Result, error) {
	opts.fill()
	if block.Bits() >= 64 {
		return Result{}, fmt.Errorf("subnet: block %s too long to infer within", block)
	}
	if opts.MinLength <= block.Bits() {
		opts.MinLength = block.Bits() + 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	res := Result{Block: block, Length: -1}

	counts := map[int]int{}
	for r := 0; r < opts.Repeats; r++ {
		target, responder, err := findPeriphery(drv, block, rng, opts.MaxPreliminary)
		if err != nil {
			return res, err
		}
		length, err := walkBoundary(drv, target, responder, opts.MinLength)
		if err != nil {
			return res, err
		}
		res.Samples = append(res.Samples, length)
		res.Periphery = responder
		counts[length]++
	}
	best, bestN := -1, 0
	for l, n := range counts {
		if n > bestN || (n == bestN && l > best) {
			best, bestN = l, n
		}
	}
	res.Length = best
	return res, nil
}

// probeOnce sends one echo request and returns the first ICMPv6 error
// response matching the probed target (nil responder if silence).
func probeOnce(drv xmap.PacketDriver, dst ipv6.Addr) (responder ipv6.Addr, code uint8, errType uint8, ok bool, err error) {
	pkt, err := wire.BuildEchoRequest(drv.SourceAddr(), dst, 64, 0x5bac, 0x0001, nil)
	if err != nil {
		return ipv6.Addr{}, 0, 0, false, err
	}
	if err := drv.Send(pkt); err != nil {
		return ipv6.Addr{}, 0, 0, false, err
	}
	for _, raw := range drv.Recv() {
		sum, perr := wire.ParsePacket(raw)
		if perr != nil || sum.ICMP == nil {
			continue
		}
		switch sum.ICMP.Type {
		case wire.ICMPDestUnreach, wire.ICMPTimeExceeded:
			inv, perr := wire.ParseInvoking(sum.ICMP.Body)
			if perr != nil || inv.IP.Dst != dst {
				continue
			}
			return sum.IP.Src, sum.ICMP.Code, sum.ICMP.Type, true, nil
		case wire.ICMPEchoReply:
			if sum.IP.Src == dst {
				// Astonishing luck: the random IID exists. Treat the
				// reply as the periphery itself.
				return sum.IP.Src, 0, wire.ICMPEchoReply, true, nil
			}
		}
	}
	return ipv6.Addr{}, 0, 0, false, nil
}

// findPeriphery probes random /64 sub-prefixes of the block until an
// error arrives from a periphery-like address. Following the paper, a
// responder qualifies when its interface identifier is EUI-64 format,
// when the error is the NDP address-unreachable signature, or when the
// responder is not one of the provider's infrastructure addresses (which
// betray themselves by answering for many unrelated sub-prefixes).
func findPeriphery(drv xmap.PacketDriver, block ipv6.Prefix, rng *rand.Rand, maxProbes int) (target, responder ipv6.Addr, err error) {
	n64, _ := block.NumSub(64)
	seen := map[ipv6.Addr]int{}
	const infraThreshold = 3
	for i := 0; i < maxProbes; i++ {
		idx := uint128.From64(rng.Uint64()).Mod(n64)
		sub, serr := block.Sub(64, idx)
		if serr != nil {
			return ipv6.Addr{}, ipv6.Addr{}, serr
		}
		dst := ipv6.SLAAC(sub, rng.Uint64()|1)
		from, code, typ, ok, perr := probeOnce(drv, dst)
		if perr != nil {
			return ipv6.Addr{}, ipv6.Addr{}, perr
		}
		if !ok || typ == wire.ICMPEchoReply {
			continue
		}
		seen[from]++
		switch {
		case typ == wire.ICMPDestUnreach && code == wire.UnreachAddress:
			return dst, from, nil
		case ipv6.Classify(from) == ipv6.IIDEUI64:
			return dst, from, nil
		case i >= 8 && seen[from] < infraThreshold:
			// A fresh responder once the infrastructure addresses have
			// revealed themselves by repetition.
			return dst, from, nil
		}
	}
	return ipv6.Addr{}, ipv6.Addr{}, fmt.Errorf("subnet: no periphery found in %s after %d probes", block, maxProbes)
}

// walkBoundary flips target bits from position 64 upward (toward shorter
// prefixes) until the responder changes; the first differing position is
// the boundary length.
func walkBoundary(drv xmap.PacketDriver, target, responder ipv6.Addr, minLength int) (int, error) {
	for b := 64; b > minLength; b-- {
		// Bit b in prefix-notation is bit (128-b) counting from the LSB.
		flipped := ipv6.AddrFrom128(target.Uint128().Xor(uint128.One.Lsh(uint(128 - b))))
		from, _, _, ok, err := probeOnce(drv, flipped)
		if err != nil {
			return 0, err
		}
		if !ok || from != responder {
			return b, nil
		}
	}
	return minLength, nil
}
