package netsim

import (
	"sync"

	"repro/internal/ipv6"
)

// Edge is the attachment point for external software — the scanner's
// vantage. Every packet delivered to it is buffered for the driver to
// drain. It never forwards or replies.
type Edge struct {
	name string
	ifc  *Iface

	mu  sync.Mutex
	buf [][]byte
	// notify is created lazily by Wait and closed on the next arrival,
	// so the hot delivery path pays for a channel only when a reader is
	// actually blocked.
	notify chan struct{}
}

var _ Node = (*Edge)(nil)

// NewEdge creates an edge node whose interface has the given address.
func NewEdge(name string, addr ipv6.Addr) *Edge {
	e := &Edge{name: name}
	e.ifc = NewIface(e, addr, name+":if")
	return e
}

// Name implements Node.
func (e *Edge) Name() string { return e.name }

// Iface returns the edge interface to connect into the topology.
func (e *Edge) Iface() *Iface { return e.ifc }

// AddIface returns an additional interface with the edge's address, so
// one vantage can attach into several shards of an EngineGroup (an
// interface can only be connected inside a single engine).
func (e *Edge) AddIface(name string) *Iface {
	return NewIface(e, e.ifc.addr, name)
}

// RetainsPackets implements PacketRetainer: delivered buffers are
// handed to the driver through Drain and must never be recycled.
func (e *Edge) RetainsPackets() bool { return true }

// Addr returns the edge's address (the scanner's source address).
func (e *Edge) Addr() ipv6.Addr { return e.ifc.addr }

// Handle implements Node: buffer everything.
func (e *Edge) Handle(_ *Iface, pkt []byte) []Emission {
	e.mu.Lock()
	e.buf = append(e.buf, pkt)
	if e.notify != nil {
		close(e.notify)
		e.notify = nil
	}
	e.mu.Unlock()
	return nil
}

// handleBatch is Handle for a burst: the batched fast path (inject.go)
// delivers a whole group's packets under one lock acquisition and one
// notify, in the same order k sequential Handle calls would append
// them.
func (e *Edge) handleBatch(pkts [][]byte) {
	if len(pkts) == 0 {
		return
	}
	e.mu.Lock()
	e.buf = append(e.buf, pkts...)
	if e.notify != nil {
		close(e.notify)
		e.notify = nil
	}
	e.mu.Unlock()
}

// Drain returns and clears all buffered packets. The returned slice is
// surrendered (the next arrival starts a fresh one); drain loops that
// want to reuse their own slice use DrainInto.
func (e *Edge) Drain() [][]byte {
	e.mu.Lock()
	out := e.buf
	e.buf = nil
	e.mu.Unlock()
	return out
}

// DrainInto appends all buffered packets to dst and returns the
// extended slice, keeping the internal buffer's backing array for
// reuse — the steady-state drain path allocates nothing on either side.
func (e *Edge) DrainInto(dst [][]byte) [][]byte {
	e.mu.Lock()
	dst = append(dst, e.buf...)
	clear(e.buf)
	e.buf = e.buf[:0]
	e.mu.Unlock()
	return dst
}

// Pending returns the number of buffered packets.
func (e *Edge) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.buf)
}

// Wait returns a channel that is closed when a packet arrives after the
// call. Use together with Drain for blocking reads.
func (e *Edge) Wait() <-chan struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.notify == nil {
		e.notify = make(chan struct{})
	}
	return e.notify
}
