package netsim

import (
	"sync"

	"repro/internal/ipv6"
)

// Edge is the attachment point for external software — the scanner's
// vantage. Every packet delivered to it is buffered for the driver to
// drain. It never forwards or replies.
type Edge struct {
	name string
	ifc  *Iface

	mu  sync.Mutex
	buf [][]byte
	// notify, when non-nil, is closed-and-replaced on each arrival so a
	// blocked reader can wake without polling.
	notify chan struct{}
}

var _ Node = (*Edge)(nil)

// NewEdge creates an edge node whose interface has the given address.
func NewEdge(name string, addr ipv6.Addr) *Edge {
	e := &Edge{name: name, notify: make(chan struct{})}
	e.ifc = NewIface(e, addr, name+":if")
	return e
}

// Name implements Node.
func (e *Edge) Name() string { return e.name }

// Iface returns the edge interface to connect into the topology.
func (e *Edge) Iface() *Iface { return e.ifc }

// Addr returns the edge's address (the scanner's source address).
func (e *Edge) Addr() ipv6.Addr { return e.ifc.addr }

// Handle implements Node: buffer everything.
func (e *Edge) Handle(_ *Iface, pkt []byte) []Emission {
	e.mu.Lock()
	e.buf = append(e.buf, pkt)
	close(e.notify)
	e.notify = make(chan struct{})
	e.mu.Unlock()
	return nil
}

// Drain returns and clears all buffered packets.
func (e *Edge) Drain() [][]byte {
	e.mu.Lock()
	out := e.buf
	e.buf = nil
	e.mu.Unlock()
	return out
}

// Pending returns the number of buffered packets.
func (e *Edge) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.buf)
}

// Wait returns a channel that is closed when a packet arrives after the
// call. Use together with Drain for blocking reads.
func (e *Edge) Wait() <-chan struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.notify
}
