package netsim

import (
	"fmt"
	"testing"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// groupNet is a two-shard fixture: one edge attached to both shards,
// each shard holding one echo-answering router that owns a /32.
type groupNet struct {
	grp   *EngineGroup
	edge  *Edge
	addrs []ipv6.Addr // router address per shard
}

func buildGroupNet(t *testing.T, shards int) *groupNet {
	t.Helper()
	n := &groupNet{
		grp:  NewEngineGroup(1, shards),
		edge: NewEdge("scanner", ipv6.MustParseAddr("2001:beef::100")),
	}
	for s := 0; s < shards; s++ {
		prefix := ipv6.MustParsePrefix(fmt.Sprintf("2001:%d00::/32", s+1))
		addr := ipv6.SLAAC(prefix, 1)
		r := NewRouter(fmt.Sprintf("r%d", s), ErrorPolicy{})
		rif := r.AddIface(addr, "r:up")
		edgeIf := n.edge.Iface()
		if s > 0 {
			edgeIf = n.edge.AddIface(fmt.Sprintf("scanner:if%d", s))
		}
		n.grp.Shard(s).Connect(edgeIf, rif, 0)
		n.grp.SetEntry(s, edgeIf)
		n.grp.Route(prefix, s)
		n.addrs = append(n.addrs, addr)
	}
	return n
}

func echoTo(t *testing.T, dst ipv6.Addr, seq uint16) []byte {
	t.Helper()
	pkt, err := wire.BuildEchoRequest(ipv6.MustParseAddr("2001:beef::100"), dst, 64, 7, seq, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// TestGroupRoutesByDestination: an injection reaches the shard owning
// the destination prefix and only that shard.
func TestGroupRoutesByDestination(t *testing.T) {
	n := buildGroupNet(t, 4)
	for s, addr := range n.addrs {
		before := make([]uint64, 4)
		for i := range before {
			before[i] = n.grp.Shard(i).Steps()
		}
		n.grp.Inject(echoTo(t, addr, uint16(s)))
		replies := n.edge.Drain()
		if len(replies) != 1 {
			t.Fatalf("shard %d: %d replies, want 1", s, len(replies))
		}
		sum, err := wire.ParsePacket(replies[0])
		if err != nil {
			t.Fatal(err)
		}
		if sum.IP.Src != addr {
			t.Errorf("reply from %s, want %s", sum.IP.Src, addr)
		}
		for i := range before {
			moved := n.grp.Shard(i).Steps() - before[i]
			if i == s && moved == 0 {
				t.Errorf("owning shard %d processed no events", i)
			}
			if i != s && moved != 0 {
				t.Errorf("foreign shard %d processed %d events", i, moved)
			}
		}
	}
	if got := n.grp.Steps(); got == 0 {
		t.Error("group Steps() = 0")
	}
}

// TestGroupRouteMissFallsToShardZero: unrouted and non-IPv6 injections
// land on shard 0 instead of being dropped.
func TestGroupRouteMissFallsToShardZero(t *testing.T) {
	n := buildGroupNet(t, 2)
	before := n.grp.Shard(0).Steps()
	n.grp.Inject(echoTo(t, ipv6.MustParseAddr("2001:dead::1"), 1))
	if n.grp.Shard(0).Steps() == before {
		t.Error("unrouted destination did not reach shard 0")
	}
	if n.grp.shardForPacket([]byte{0x40, 0x00}) != 0 {
		t.Error("malformed packet not routed to shard 0")
	}
}

// TestGroupInjectBatchPartitions: one batch fans out to every owning
// shard and all replies come back.
func TestGroupInjectBatchPartitions(t *testing.T) {
	n := buildGroupNet(t, 4)
	var batch [][]byte
	for rep := 0; rep < 3; rep++ {
		for s, addr := range n.addrs {
			batch = append(batch, echoTo(t, addr, uint16(rep*4+s)))
		}
	}
	if events := n.grp.InjectBatch(batch); events == 0 {
		t.Fatal("batch processed no events")
	}
	replies := n.edge.Drain()
	if len(replies) != len(batch) {
		t.Fatalf("%d replies to a %d-packet batch", len(replies), len(batch))
	}
	perShard := map[ipv6.Addr]int{}
	for _, r := range replies {
		sum, err := wire.ParsePacket(r)
		if err != nil {
			t.Fatal(err)
		}
		perShard[sum.IP.Src]++
	}
	for _, addr := range n.addrs {
		if perShard[addr] != 3 {
			t.Errorf("router %s answered %d times, want 3", addr, perShard[addr])
		}
	}
}

// TestGroupTapSeesEveryShard: a group-installed tap observes crossings
// on all shards.
func TestGroupTapSeesEveryShard(t *testing.T) {
	n := buildGroupNet(t, 2)
	seen := map[ipv6.Addr]int{}
	n.grp.SetTap(func(from *Iface, pkt []byte, dropped bool) {
		if len(pkt) >= 40 {
			seen[ipv6.AddrFromBytes(pkt[24:40])]++
		}
	})
	for _, addr := range n.addrs {
		n.grp.Inject(echoTo(t, addr, 1))
	}
	for _, addr := range n.addrs {
		if seen[addr] == 0 {
			t.Errorf("tap never saw traffic to %s", addr)
		}
	}
	n.grp.SetTap(nil)
}

// TestGroupShardZeroMatchesSingleEngine: shard 0 of a group uses
// exactly the group seed, so its loss stream replays a plain engine's —
// the property that keeps seeded goldens valid when a deployment moves
// onto a group of one.
func TestGroupShardZeroMatchesSingleEngine(t *testing.T) {
	run := func(eng *Engine) []int {
		edge := NewEdge("e", ipv6.MustParseAddr("2001:beef::100"))
		r := NewRouter("r", ErrorPolicy{})
		rif := r.AddIface(ipv6.MustParseAddr("2001:100::1"), "r:up")
		eng.Connect(edge.Iface(), rif, 0.4)
		var got []int
		for i := 0; i < 200; i++ {
			pkt, err := wire.BuildEchoRequest(edge.Addr(), rif.Addr(), 64, 7, uint16(i), nil)
			if err != nil {
				t.Fatal(err)
			}
			eng.Inject(edge.Iface(), pkt)
			got = append(got, len(edge.Drain()))
		}
		return got
	}
	single := run(New(99))
	sharded := run(NewEngineGroup(99, 3).Shard(0))
	for i := range single {
		if single[i] != sharded[i] {
			t.Fatalf("loss streams diverge at injection %d: %d vs %d", i, single[i], sharded[i])
		}
	}
}
