package netsim

import (
	"math/rand"
	"testing"
	"unsafe"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// TestFlowEntryLayout pins the hot/cold entry split the batched resolve
// pass depends on: the hot header — everything the lookup guards and
// the replay dispatch read — must be exactly one 64-byte cache line, so
// a resolve run touches one tag word and one hot line per probe and
// nothing else until the probe is known to replay. The compile-time
// assertions in flowcache.go enforce the same bound; this test exists
// to name the failure when a field lands in the wrong half.
func TestFlowEntryLayout(t *testing.T) {
	if got := unsafe.Sizeof(flowHot{}); got != flowHotSize {
		t.Errorf("flowHot is %d bytes, want %d (one cache line)", got, flowHotSize)
	}
	if flowHotSize != 64 {
		t.Errorf("flowHotSize = %d, want 64", flowHotSize)
	}
	if a := unsafe.Alignof(flowHot{}); flowHotSize%a != 0 {
		t.Errorf("flowHot alignment %d does not pack line-aligned arrays", a)
	}
}

// TestFlowCacheTagCollisionProperty is the tag-prefilter soundness
// property: a colliding tag — the 8-byte prefilter word matching a
// probe whose flow the slot does not hold — may cost a wasted hot-line
// load, but must never produce a wrong hit. The test plants forged tags
// in the exact probe windows random destinations hash to, over live
// slots holding other flows, and verifies every lookup result still
// genuinely covers the destination.
func TestFlowCacheTagCollisionProperty(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	for i, dst := range []ipv6.Addr{
		wanAddr, lanHost,
		ipv6.MustParseAddr("2001:db8:aaaa:bbbb::1"),
		ipv6.MustParseAddr("2001:db8:cccc::99"),
	} {
		pkt, err := wire.BuildEchoRequest(scannerAddr, dst, 64, 0xbeef, uint16(i+1), nil)
		if err != nil {
			t.Fatal(err)
		}
		n.eng.Inject(n.scanner.Iface(), pkt)
	}
	fp := &n.eng.fp
	if fp.tags == nil || fp.nWidths == 0 {
		t.Fatal("no compiled flows to collide with")
	}
	var ifid uint32
	for j := range fp.tags {
		if fp.tags[j] != 0 && fp.hot[j].gen == fp.gen {
			ifid = fp.hot[j].ifid
			break
		}
	}
	if ifid == 0 {
		t.Fatal("no live entry found")
	}

	rng := rand.New(rand.NewSource(7))
	wrong := func(s *flowHot, cold *flowCold, hi, lo uint64) bool {
		if s.gen != fp.gen || s.ifid != ifid {
			return true
		}
		if hi&fpMask(s.width) != s.hi {
			return true
		}
		if !s.wide() {
			return s.width != 64 || s.lo != lo
		}
		// A wide region hit must not sit in a hole or exclusion.
		return s.nExcl|s.nHole != 0 && shadowed(s, cold, hi, lo)
	}
	for trial := 0; trial < 5000; trial++ {
		hi, lo := rng.Uint64(), rng.Uint64()
		w := fp.widths[rng.Intn(int(fp.nWidths))]
		h := slotHash(ifid, w, hi&fpMask(w))
		j := (h + uint64(rng.Intn(fpProbe))) & fp.mask
		tag := fpTagWide(h)
		if w == 64 && rng.Intn(2) == 0 {
			tag = fpTagExact(h, lo)
		}
		old := fp.tags[j]
		fp.tags[j] = tag
		if got := fp.lookup(ifid, hi, lo); got >= 0 {
			if wrong(&fp.hot[got], &fp.cold[got], hi, lo) {
				t.Fatalf("trial %d: forged tag %#x at slot %d made lookup(%#x, %#x) return slot %d holding width=%d hi=%#x",
					trial, tag, j, hi, lo, got, fp.hot[got].width, fp.hot[got].hi)
			}
		}
		fp.tags[j] = old
	}
}
