package netsim

import (
	"testing"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// TestRingWrapAndGrow pushes enough to force wrap-around and a grow
// mid-stream, expecting strict FIFO throughout.
func TestRingWrapAndGrow(t *testing.T) {
	var r ring
	next, popped := uint64(0), uint64(0)
	push := func(k int) {
		for i := 0; i < k; i++ {
			r.push(delivery{seq: next})
			next++
		}
	}
	pop := func(k int) {
		for i := 0; i < k; i++ {
			d := r.pop()
			if d.seq != popped {
				t.Fatalf("popped seq %d, want %d", d.seq, popped)
			}
			popped++
		}
	}
	push(10)
	pop(7)   // head advances into the middle
	push(20) // wraps, then grows past the initial 16
	pop(23)
	if r.len() != 0 {
		t.Fatalf("ring len %d after draining", r.len())
	}
}

// TestHeapOrdersByDueThenSeq: equal dues (which odd deferred dues can
// produce) must resolve to the earliest enqueue, reproducing the old
// linear scan's tie-break.
func TestHeapOrdersByDueThenSeq(t *testing.T) {
	var h dheap
	in := []delivery{
		{due: 9, seq: 3},
		{due: 4, seq: 1},
		{due: 9, seq: 2},
		{due: 12, seq: 5},
		{due: 4, seq: 4},
	}
	for _, d := range in {
		h.push(d)
	}
	want := []uint64{1, 4, 2, 3, 5}
	for i, w := range want {
		if got := h.pop().seq; got != w {
			t.Fatalf("pop %d: seq %d, want %d", i, got, w)
		}
	}
	if h.len() != 0 {
		t.Fatalf("heap len %d after draining", h.len())
	}
}

// TestPooledBuffersDoNotCorruptEdge: the edge retains delivered buffers
// (PacketRetainer), so replies accumulated across many injections —
// while the pool recycles every intermediate buffer — must stay intact.
func TestPooledBuffersDoNotCorruptEdge(t *testing.T) {
	eng := New(5)
	edge := NewEdge("e", ipv6.MustParseAddr("2001:beef::100"))
	r := NewRouter("r", ErrorPolicy{})
	rif := r.AddIface(ipv6.MustParseAddr("2001:100::1"), "r:up")
	eng.Connect(edge.Iface(), rif, 0)

	const probes = 100
	for i := 0; i < probes; i++ {
		pkt, err := wire.BuildEchoRequest(edge.Addr(), rif.Addr(), 64, 7, uint16(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		eng.Inject(edge.Iface(), pkt)
	}
	replies := edge.Drain()
	if len(replies) != probes {
		t.Fatalf("%d replies, want %d", len(replies), probes)
	}
	seen := map[uint16]bool{}
	for _, raw := range replies {
		s, err := wire.ParsePacket(raw)
		if err != nil {
			t.Fatalf("retained reply corrupted: %v", err)
		}
		e, err := wire.ParseEcho(s.ICMP.Body)
		if err != nil {
			t.Fatal(err)
		}
		if seen[e.Seq] {
			t.Fatalf("echo seq %d delivered twice — buffer aliasing", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// TestPoolRecyclesBuffers: after a pumped run the freelist holds
// buffers, and a second run reuses them instead of allocating.
func TestPoolRecyclesBuffers(t *testing.T) {
	eng := New(5)
	edge := NewEdge("e", ipv6.MustParseAddr("2001:beef::100"))
	r := NewRouter("r", ErrorPolicy{})
	rif := r.AddIface(ipv6.MustParseAddr("2001:100::1"), "r:up")
	eng.Connect(edge.Iface(), rif, 0)

	// Probe an address the router has no route for: the request buffer
	// is consumed at the router (fresh error reply comes back), so it
	// must land in the pool.
	pkt, err := wire.BuildEchoRequest(edge.Addr(), ipv6.MustParseAddr("2001:dead::1"), 64, 7, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Inject(edge.Iface(), pkt)
	eng.mu.Lock()
	pooled := len(eng.pool)
	eng.mu.Unlock()
	if pooled == 0 {
		t.Fatal("no buffers recycled after a consumed delivery")
	}
	edge.Drain()
}
