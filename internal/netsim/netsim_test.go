package netsim

import (
	"testing"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// testNet is the canonical small topology of the paper's Figure 1a:
//
//	scanner(edge) -- core(router) -- isp(ISPRouter) -- cpe(CPE)
//
// The ISP block is 2001:db8::/32; the CPE holds WAN /64
// 2001:db8:1234:5678::/64 and delegated LAN /60 2001:db8:4321:8760::/60
// with in-use subnet 2001:db8:4321:8765::/64 — the paper's running
// example addresses.
type testNet struct {
	eng     *Engine
	scanner *Edge
	core    *Router
	isp     *ISPRouter
	cpe     *CPE
	ispLink *Link // core <-> isp
	cpeLink *Link // isp <-> cpe
}

var (
	scannerAddr = ipv6.MustParseAddr("2001:beef::100")
	ispBlock    = ipv6.MustParsePrefix("2001:db8::/32")
	wanPrefix   = ipv6.MustParsePrefix("2001:db8:1234:5678::/64")
	wanAddr     = ipv6.MustParseAddr("2001:db8:1234:5678:0211:22ff:fe33:4455")
	lanDeleg    = ipv6.MustParsePrefix("2001:db8:4321:8760::/60")
	lanSubnet   = ipv6.MustParsePrefix("2001:db8:4321:8765::/64")
	lanAddr     = ipv6.MustParseAddr("2001:db8:4321:8765::1")
	lanHost     = ipv6.MustParseAddr("2001:db8:4321:8765::42")
)

func buildTestNet(t *testing.T, behavior CPEBehavior, ispPolicy ErrorPolicy) *testNet {
	t.Helper()
	n := &testNet{eng: New(1)}

	n.scanner = NewEdge("scanner", scannerAddr)
	n.core = NewRouter("core", ErrorPolicy{})
	n.isp = NewISPRouter("isp", ispBlock, ispPolicy)
	n.cpe = NewCPE(CPEConfig{
		Name:      "cpe-1",
		WANAddr:   wanAddr,
		WANPrefix: wanPrefix,
		Delegated: lanDeleg,
		Subnets:   []ipv6.Prefix{lanSubnet},
		LANAddr:   lanAddr,
		Hosts:     []ipv6.Addr{lanHost},
		Behavior:  behavior,
	})

	coreToScan := n.core.AddIface(ipv6.MustParseAddr("2001:beef::1"), "core:scan")
	coreToISP := n.core.AddIface(ipv6.MustParseAddr("2001:db8:fffe::1"), "core:isp")
	ispUp := n.isp.AddIface(ipv6.MustParseAddr("2001:db8:fffe::2"), "isp:up")
	// The provider-side address of the WAN point-to-point subnet.
	ispDown := n.isp.AddIface(ipv6.MustParseAddr("2001:db8:1234:5678::1"), "isp:cpe1")

	n.eng.Connect(n.scanner.Iface(), coreToScan, 0)
	n.ispLink = n.eng.Connect(coreToISP, ispUp, 0)
	n.cpeLink = n.eng.Connect(ispDown, n.cpe.WAN(), 0)

	n.core.AddRoute(ispBlock, coreToISP)
	n.core.AddRoute(ipv6.MustParsePrefix("2001:beef::/64"), coreToScan)
	n.isp.SetUpstream(ispUp)
	if err := n.isp.Delegate(wanPrefix, ispDown); err != nil {
		t.Fatal(err)
	}
	if err := n.isp.Delegate(lanDeleg, ispDown); err != nil {
		t.Fatal(err)
	}
	return n
}

// probe sends an echo request from the scanner and returns decoded
// replies received back at the scanner.
func (n *testNet) probe(t *testing.T, dst ipv6.Addr, hopLimit uint8) []*wire.Summary {
	t.Helper()
	pkt, err := wire.BuildEchoRequest(scannerAddr, dst, hopLimit, 0xbeef, 1, []byte("probe"))
	if err != nil {
		t.Fatal(err)
	}
	n.eng.Inject(n.scanner.Iface(), pkt)
	var out []*wire.Summary
	for _, raw := range n.scanner.Drain() {
		s, err := wire.ParsePacket(raw)
		if err != nil {
			t.Fatalf("undecodable packet at scanner: %v", err)
		}
		out = append(out, s)
	}
	return out
}

func TestProbeNXLANAddressExposesCPE(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	// Paper: NX Host Address within the delegated LAN subnet.
	nx := ipv6.SLAAC(lanSubnet, 0xdeadbeefcafef00d)
	replies := n.probe(t, nx, 64)
	if len(replies) != 1 {
		t.Fatalf("got %d replies, want 1", len(replies))
	}
	r := replies[0]
	if r.ICMP == nil || r.ICMP.Type != wire.ICMPDestUnreach {
		t.Fatalf("reply type %+v, want dest unreachable", r.ICMP)
	}
	if r.IP.Src != wanAddr {
		t.Errorf("error source = %s, want CPE WAN address %s", r.IP.Src, wanAddr)
	}
	inv, err := wire.ParseInvoking(r.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if inv.IP.Dst != nx || inv.EchoID != 0xbeef {
		t.Errorf("invoking packet mismatch: %+v", inv)
	}
}

func TestProbeNXWANAddressExposesCPE(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	nx := ipv6.SLAAC(wanPrefix, 0x1122334455667788)
	replies := n.probe(t, nx, 64)
	if len(replies) != 1 {
		t.Fatalf("got %d replies, want 1", len(replies))
	}
	if replies[0].IP.Src != wanAddr {
		t.Errorf("error source = %s, want %s", replies[0].IP.Src, wanAddr)
	}
	if replies[0].ICMP.Code != wire.UnreachAddress {
		t.Errorf("code = %d, want address-unreachable", replies[0].ICMP.Code)
	}
}

func TestProbeNotUsedPrefixCorrectCPE(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	// An address in the delegated /60 but outside the in-use subnet.
	notUsed := ipv6.MustParseAddr("2001:db8:4321:8769::77")
	replies := n.probe(t, notUsed, 64)
	if len(replies) != 1 {
		t.Fatalf("got %d replies, want 1", len(replies))
	}
	if replies[0].ICMP.Type != wire.ICMPDestUnreach {
		t.Errorf("type = %d", replies[0].ICMP.Type)
	}
	// Correct CPE: no loop, exactly one traversal each way on the access link.
	if got := n.cpeLink.TotalPackets(); got != 2 {
		t.Errorf("access link carried %d packets, want 2", got)
	}
}

func TestRoutingLoopOnNotUsedPrefix(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{VulnLAN: true}, ErrorPolicy{})
	notUsed := ipv6.MustParseAddr("2001:db8:4321:8769::77")
	replies := n.probe(t, notUsed, 255)
	// The packet ping-pongs until hop limit exhaustion, then a Time
	// Exceeded error comes back.
	if len(replies) != 1 {
		t.Fatalf("got %d replies, want 1 time-exceeded", len(replies))
	}
	if replies[0].ICMP.Type != wire.ICMPTimeExceeded {
		t.Errorf("reply type = %d, want time exceeded", replies[0].ICMP.Type)
	}
	// Hops scanner->core->isp consume 2; ~253 remain for the loop, so the
	// access link carries ~253 copies of the probe (plus nothing else).
	if got := n.cpeLink.TotalPackets(); got < 200 {
		t.Errorf("access link carried %d packets, want >200 (amplification)", got)
	}
}

func TestRoutingLoopOnWANPrefix(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{VulnWAN: true}, ErrorPolicy{})
	nx := ipv6.SLAAC(wanPrefix, 0xdeadbeef00112233)
	n.probe(t, nx, 255)
	if got := n.cpeLink.TotalPackets(); got < 200 {
		t.Errorf("access link carried %d packets, want >200", got)
	}
}

func TestLoopCapBoundsForwarding(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{VulnLAN: true, LoopCap: 10}, ErrorPolicy{})
	notUsed := ipv6.MustParseAddr("2001:db8:4321:8769::77")
	n.probe(t, notUsed, 255)
	got := n.cpeLink.TotalPackets()
	// Inbound copies: initial + cap re-entries; outbound: cap. Expect far
	// fewer than the unbounded ~253, but more than 10.
	if got < 11 || got > 30 {
		t.Errorf("access link carried %d packets with LoopCap=10", got)
	}
}

func TestEchoToCPEWANAddress(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	replies := n.probe(t, wanAddr, 64)
	if len(replies) != 1 || replies[0].ICMP.Type != wire.ICMPEchoReply {
		t.Fatalf("replies = %+v", replies)
	}
	if replies[0].IP.Src != wanAddr {
		t.Errorf("echo reply source = %s", replies[0].IP.Src)
	}
}

func TestEchoToLANHost(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	replies := n.probe(t, lanHost, 64)
	if len(replies) != 1 || replies[0].ICMP.Type != wire.ICMPEchoReply {
		t.Fatalf("replies = %+v", replies)
	}
	if replies[0].IP.Src != lanHost {
		t.Errorf("host reply source = %s", replies[0].IP.Src)
	}
}

func TestUnassignedSpaceAnsweredByISP(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	// A /64 in the block delegated to nobody.
	replies := n.probe(t, ipv6.MustParseAddr("2001:db8:aaaa:bbbb::1"), 64)
	if len(replies) != 1 {
		t.Fatalf("got %d replies", len(replies))
	}
	if replies[0].IP.Src != ipv6.MustParseAddr("2001:db8:fffe::2") {
		t.Errorf("error source = %s, want ISP upstream iface", replies[0].IP.Src)
	}
}

func TestISPErrorSuppression(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{Suppress: true})
	replies := n.probe(t, ipv6.MustParseAddr("2001:db8:aaaa:bbbb::1"), 64)
	if len(replies) != 0 {
		t.Fatalf("suppressed ISP still replied: %d", len(replies))
	}
	// CPE-originated errors still flow.
	replies = n.probe(t, ipv6.SLAAC(lanSubnet, 12345), 64)
	if len(replies) != 1 {
		t.Fatalf("CPE error did not arrive: %d", len(replies))
	}
}

func TestISPErrorBudget(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{Budget: 3})
	got := 0
	for i := 0; i < 10; i++ {
		a := ipv6.MustParseAddr("2001:db8:aaaa::1").WithIID(uint64(i))
		got += len(n.probe(t, a, 64))
	}
	if got != 3 {
		t.Errorf("received %d errors with budget 3", got)
	}
}

func TestHopLimitExhaustionMidPath(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	// Hop limit 1: dies at the core router.
	replies := n.probe(t, wanAddr, 1)
	if len(replies) != 1 || replies[0].ICMP.Type != wire.ICMPTimeExceeded {
		t.Fatalf("replies = %+v", replies)
	}
	if replies[0].IP.Src != ipv6.MustParseAddr("2001:beef::1") {
		t.Errorf("time exceeded from %s, want core", replies[0].IP.Src)
	}
	// Hop limit 2: dies at the ISP router.
	replies = n.probe(t, wanAddr, 2)
	if len(replies) != 1 || replies[0].IP.Src != ipv6.MustParseAddr("2001:db8:fffe::2") {
		t.Fatalf("replies = %+v", replies)
	}
	// Hop limit 3: reaches the CPE.
	replies = n.probe(t, wanAddr, 3)
	if len(replies) != 1 || replies[0].ICMP.Type != wire.ICMPEchoReply {
		t.Fatalf("replies = %+v", replies)
	}
}

func TestNoErrorForICMPError(t *testing.T) {
	// An ICMPv6 error to a nonexistent destination must not trigger
	// another error (RFC 4443 2.4e) — otherwise loops would storm.
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	inner, err := wire.BuildEchoRequest(scannerAddr, lanHost, 64, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	errPkt, err := wire.BuildDestUnreach(scannerAddr, ipv6.SLAAC(lanSubnet, 999), 64, 0, inner)
	if err != nil {
		t.Fatal(err)
	}
	n.eng.Inject(n.scanner.Iface(), errPkt)
	if got := n.scanner.Pending(); got != 0 {
		t.Errorf("received %d replies to an ICMP error probe", got)
	}
}

func TestEchoToISPAndCoreInterfaces(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	for _, target := range []string{"2001:beef::1", "2001:db8:fffe::2", "2001:db8:1234:5678::1"} {
		replies := n.probe(t, ipv6.MustParseAddr(target), 64)
		if len(replies) != 1 || replies[0].ICMP.Type != wire.ICMPEchoReply {
			t.Errorf("ping %s: replies = %+v", target, replies)
		}
	}
}

func TestLinkLossDropsPackets(t *testing.T) {
	eng := New(7)
	edgeA := NewEdge("a", ipv6.MustParseAddr("fd00::1"))
	edgeB := NewEdge("b", ipv6.MustParseAddr("fd00::2"))
	eng.Connect(edgeA.Iface(), edgeB.Iface(), 0.5)
	pkt, err := wire.BuildEchoRequest(edgeA.Addr(), edgeB.Addr(), 64, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 1000
	for i := 0; i < trials; i++ {
		eng.Inject(edgeA.Iface(), pkt)
	}
	got := len(edgeB.Drain())
	if got < 400 || got > 600 {
		t.Errorf("delivered %d/%d at 50%% loss", got, trials)
	}
}

func TestUEUnreachableAndEcho(t *testing.T) {
	eng := New(3)
	uePrefix := ipv6.MustParsePrefix("2001:db8:abcd:ef12::/64")
	ueAddr := ipv6.SLAAC(uePrefix, 0x0211_22ff_fe33_4455)
	ue := NewUE("ue-1", ueAddr, uePrefix, nil, ErrorPolicy{})
	scan := NewEdge("scan", scannerAddr)
	bs := NewRouter("base-station", ErrorPolicy{})
	bsUp := bs.AddIface(ipv6.MustParseAddr("2001:db8:abcd::1"), "bs:up")
	bsDown := bs.AddIface(ipv6.MustParseAddr("2001:db8:abcd::2"), "bs:ue")
	eng.Connect(scan.Iface(), bsUp, 0)
	eng.Connect(bsDown, ue.Iface(), 0)
	bs.AddRoute(uePrefix, bsDown)
	bs.AddRoute(ipv6.MustParsePrefix("2001:beef::/64"), bsUp)

	// NX address in the UE prefix -> unreachable from the UE itself.
	nx := ipv6.SLAAC(uePrefix, 0x9999888877776666)
	pkt, err := wire.BuildEchoRequest(scannerAddr, nx, 64, 5, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Inject(scan.Iface(), pkt)
	drained := scan.Drain()
	if len(drained) != 1 {
		t.Fatalf("got %d replies", len(drained))
	}
	s, err := wire.ParsePacket(drained[0])
	if err != nil {
		t.Fatal(err)
	}
	if s.IP.Src != ueAddr || s.ICMP.Type != wire.ICMPDestUnreach {
		t.Errorf("reply = src %s type %d", s.IP.Src, s.ICMP.Type)
	}

	// Echo to the UE's own address.
	pkt, err = wire.BuildEchoRequest(scannerAddr, ueAddr, 64, 6, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Inject(scan.Iface(), pkt)
	drained = scan.Drain()
	if len(drained) != 1 {
		t.Fatalf("got %d replies", len(drained))
	}
	s, err = wire.ParsePacket(drained[0])
	if err != nil {
		t.Fatal(err)
	}
	if s.ICMP.Type != wire.ICMPEchoReply {
		t.Errorf("type = %d", s.ICMP.Type)
	}
}

func TestDelegateValidation(t *testing.T) {
	isp := NewISPRouter("isp", ispBlock, ErrorPolicy{})
	out := isp.AddIface(ipv6.MustParseAddr("2001:db8::1"), "x")
	if err := isp.Delegate(ipv6.MustParsePrefix("2001:db9::/48"), out); err == nil {
		t.Error("delegation outside block accepted")
	}
	if err := isp.Delegate(ipv6.MustParsePrefix("2001:db8::/32"), out); err == nil {
		t.Error("delegation of whole block accepted")
	}
	if err := isp.Delegate(wanPrefix, out); err != nil {
		t.Errorf("valid delegation rejected: %v", err)
	}
	if isp.DelegationCount() != 1 {
		t.Errorf("DelegationCount = %d", isp.DelegationCount())
	}
}

// TestEventBudgetBoundsRunaway: even a deliberately unterminated loop
// (max hop limit, vulnerable CPE, huge event budget not needed) cannot
// exceed the engine's budget.
func TestEventBudgetBounds(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{VulnLAN: true}, ErrorPolicy{})
	before := n.eng.Steps()
	n.probe(t, ipv6.MustParseAddr("2001:db8:4321:8769::77"), 255)
	used := n.eng.Steps() - before
	// 255 hop limit bounds the loop regardless of budget.
	if used > 600 {
		t.Errorf("one loop probe consumed %d events", used)
	}
}

// TestEngineDeterminism: identical injections produce identical traffic
// counters.
func TestEngineDeterminism(t *testing.T) {
	run := func() uint64 {
		n := buildTestNet(t, CPEBehavior{VulnLAN: true}, ErrorPolicy{})
		for i := 0; i < 20; i++ {
			n.probe(t, ipv6.SLAAC(lanSubnet, uint64(1000+i)), 64)
		}
		return n.cpeLink.TotalPackets()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("runs diverged: %d vs %d packets", a, b)
	}
}

// TestUnconnectedIfaceDropsSilently: emissions into the void must not
// crash or enqueue.
func TestUnconnectedIfaceDrops(t *testing.T) {
	eng := New(1)
	edge := NewEdge("lonely", ipv6.MustParseAddr("fd00::1"))
	pkt, err := wire.BuildEchoRequest(edge.Addr(), ipv6.MustParseAddr("fd00::2"), 64, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := eng.Inject(edge.Iface(), pkt); n != 0 {
		t.Errorf("processed %d events on an unconnected interface", n)
	}
}

// TestGarbageThroughRouters: malformed frames traverse without panics.
func TestGarbageThroughRouters(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	for i := 0; i < 2000; i++ {
		b := make([]byte, i%120)
		for j := range b {
			b[j] = byte(i * 31 / (j + 1))
		}
		n.eng.Inject(n.scanner.Iface(), b)
	}
	n.scanner.Drain()
}

func TestInjectBatch(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	var pkts [][]byte
	for i := 0; i < 5; i++ {
		pkt, err := wire.BuildEchoRequest(scannerAddr, wanAddr, 64, uint16(i), 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, pkt)
	}
	n.eng.InjectBatch(n.scanner.Iface(), pkts)
	if got := len(n.scanner.Drain()); got != 5 {
		t.Errorf("batch got %d replies", got)
	}
}

func TestEdgeWaitSignals(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	ch := n.scanner.Wait()
	select {
	case <-ch:
		t.Fatal("Wait fired before any arrival")
	default:
	}
	n.probe(t, wanAddr, 64)
	select {
	case <-ch:
	default:
		t.Error("Wait did not fire after arrival")
	}
}

func TestRejectRoute(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	n.core.AddRejectRoute(ipv6.MustParsePrefix("2001:bad::/32"))
	replies := n.probe(t, ipv6.MustParseAddr("2001:bad::1"), 64)
	if len(replies) != 1 || replies[0].ICMP.Type != wire.ICMPDestUnreach {
		t.Fatalf("replies = %+v", replies)
	}
}

func TestIfaceAccessors(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	ifc := n.scanner.Iface()
	if ifc.Node() != n.scanner || ifc.Addr() != scannerAddr {
		t.Error("iface accessors broken")
	}
	if ifc.Name() == "" || ifc.Peer() == nil {
		t.Error("name/peer broken")
	}
	if ifc.Peer().Node().Name() != "core" {
		t.Errorf("peer node = %s", ifc.Peer().Node().Name())
	}
	lonely := NewIface(n.scanner, scannerAddr, "x")
	if lonely.Peer() != nil {
		t.Error("unconnected iface has a peer")
	}
	// Link accessors.
	ends := n.cpeLink.Ends()
	st := n.cpeLink.StatsFrom(ends[0])
	_ = st
	defer func() {
		if recover() == nil {
			t.Error("StatsFrom on foreign iface did not panic")
		}
	}()
	n.cpeLink.StatsFrom(lonely)
}

func TestNodeNames(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	if n.core.Name() != "core" || n.isp.Name() != "isp" || n.cpe.Name() != "cpe-1" || n.scanner.Name() != "scanner" {
		t.Error("names broken")
	}
	if n.isp.Block() != ispBlock {
		t.Error("Block() broken")
	}
	if n.cpe.WANAddr() != wanAddr || n.cpe.Behavior() != (CPEBehavior{}) {
		t.Error("CPE accessors broken")
	}
	v4r := NewV4Router("r4")
	if v4r.Name() != "r4" {
		t.Error("v4 router name")
	}
	nat := NewNATGateway("nat", wire.IPv4AddrFrom(1, 2, 3, 4), nil)
	if nat.Name() != "nat" || nat.Public() != wire.IPv4AddrFrom(1, 2, 3, 4) {
		t.Error("NAT accessors broken")
	}
}

func TestUEDropsTransitAndExhaustsHops(t *testing.T) {
	eng := New(5)
	uePrefix := ipv6.MustParsePrefix("2001:db8:abcd:ef12::/64")
	ueAddr := ipv6.SLAAC(uePrefix, 0x1234)
	ue := NewUE("ue", ueAddr, uePrefix, nil, ErrorPolicy{})
	scan := NewEdge("s", scannerAddr)
	eng.Connect(scan.Iface(), ue.Iface(), 0)

	// Hop limit 1 to an in-prefix NX address: time exceeded from the UE.
	pkt, err := wire.BuildEchoRequest(scannerAddr, ipv6.SLAAC(uePrefix, 0x9999), 1, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Inject(scan.Iface(), pkt)
	got := scan.Drain()
	if len(got) != 1 {
		t.Fatalf("got %d replies", len(got))
	}
	s, err := wire.ParsePacket(got[0])
	if err != nil || s.ICMP.Type != wire.ICMPTimeExceeded {
		t.Fatalf("reply = %+v, %v", s, err)
	}

	// A destination outside the UE prefix: dropped (UEs do not transit).
	pkt, err = wire.BuildEchoRequest(scannerAddr, ipv6.MustParseAddr("2001:db9::1"), 64, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Inject(scan.Iface(), pkt)
	if got := len(scan.Drain()); got != 0 {
		t.Errorf("UE transited %d packets", got)
	}
}

func TestV4MaskEdges(t *testing.T) {
	a := wire.IPv4AddrFrom(10, 1, 2, 3)
	if maskV4(a, 0) != 0 {
		t.Error("mask 0")
	}
	if maskV4(a, 32) != a {
		t.Error("mask 32")
	}
	if maskV4(a, 8) != wire.IPv4AddrFrom(10, 0, 0, 0) {
		t.Error("mask 8")
	}
}
