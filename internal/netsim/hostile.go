package netsim

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/ipv6"
	"repro/internal/uint128"
	"repro/internal/wire"
)

// HostileMode selects which adversarial responder model a Hostile node
// plays. The four models cover the false-hit and robustness threats the
// periphery papers report against Internet-scale scans: aliased prefixes
// that answer every address, spoofed-source reflectors, malformed
// ICMPv6 generators, and reply-storm amplifiers.
type HostileMode uint8

// Hostile responder models.
const (
	// HostileAliased answers every probe inside the claimed prefix as if
	// the probed address itself replied: echo requests draw an Echo Reply
	// from the probed target, everything else a plausible Destination
	// Unreachable quoting the probe verbatim. Every reply validates at
	// the scanner, so an undefended scan records one phantom responder
	// per probed address — the dominant false-hit source in real scans.
	HostileAliased HostileMode = iota + 1
	// HostileSpoofer reflects probes as ICMPv6 errors whose source is a
	// random IID inside one fixed /64 of the claimed region (a NAT box or
	// middlebox pool rewriting its own source), never the probed target.
	// The quoted probe is verbatim, so the replies pass HMAC validation
	// and pollute dedup with phantom responders that were never probed.
	// A fraction of probes instead draw a spoofed-source Echo Reply,
	// which fails validation (the echo id/seq commit to the probed
	// target) and exercises the quarantine path.
	HostileSpoofer
	// HostileMalformed answers with broken ICMPv6: corrupted checksums,
	// truncated bodies shorter than the ICMPv6 header, and well-formed
	// errors quoting a forged invoking packet (wrong embedded source).
	// Nothing it sends may crash the parser or reach the scan's result
	// set; the forged quote in particular passes checksum validation and
	// is only caught by strict embedded-source checking.
	HostileMalformed
	// HostileStorm answers each probe with StormFactor duplicate valid
	// replies from the probed target — an amplifier that floods the
	// receive path to force overload shedding.
	HostileStorm
)

// String names the mode for logs and profile labels.
func (m HostileMode) String() string {
	switch m {
	case HostileAliased:
		return "aliased"
	case HostileSpoofer:
		return "spoof"
	case HostileMalformed:
		return "malformed"
	case HostileStorm:
		return "storm"
	}
	return fmt.Sprintf("hostile(%d)", uint8(m))
}

// HostileConfig assembles a Hostile node.
type HostileConfig struct {
	Name   string
	Prefix ipv6.Prefix // claimed region, /56../64; delegate it to the node at the ISP router
	Mode   HostileMode
	Seed   int64
	// StormFactor is the reply multiplier for HostileStorm; default 4.
	StormFactor int
}

// Hostile is an adversarial responder claiming a whole delegated prefix.
// It is a terminal node like a CPE — single upstream interface, drops
// anything outside its prefix — and deliberately implements none of the
// flow-compilation hooks: the engine negative-caches flows through it,
// so every probe into the region takes the interpreted per-packet path
// while honest flows still compile. Its randomness is a private seeded
// stream drawn once per handled probe in arrival order, which is
// identical with the fast path on or off, keeping the compiled-vs-
// interpreted oracle exact under every hostile model.
type Hostile struct {
	name      string
	prefix    ipv6.Prefix
	mode      HostileMode
	storm     int
	addr      ipv6.Addr
	reflector ipv6.Prefix // spoofed-source pool: one /64 of the region
	ifc       *Iface
	rng       *rand.Rand
	sc        emitScratch
	pkts      [][]byte

	// CountReplies tallies reply packets emitted, for amplification
	// accounting in tests.
	CountReplies uint64
}

var _ Node = (*Hostile)(nil)

// NewHostile builds a hostile responder; connect Iface() upstream and
// delegate the claimed prefix to it.
func NewHostile(cfg HostileConfig) *Hostile {
	h := &Hostile{
		name:   cfg.Name,
		prefix: cfg.Prefix,
		mode:   cfg.Mode,
		storm:  cfg.StormFactor,
		rng:    rand.New(rand.NewSource(cfg.Seed ^ 0x0b57_11e5)),
	}
	if h.storm <= 0 {
		h.storm = 4
	}
	// The node's own address sits in the region's first /64; the
	// spoofed-source pool is that same /64 (or the whole region when the
	// region already is a /64).
	h.addr = ipv6.AddrFrom128(cfg.Prefix.First().Uint128().Or(uint128.From64(0xbad1)))
	h.reflector = cfg.Prefix
	if cfg.Prefix.Bits() < 64 {
		h.reflector, _ = cfg.Prefix.Sub(64, uint128.Zero)
	}
	h.ifc = NewIface(h, h.addr, cfg.Name+":wan")
	return h
}

// Name implements Node.
func (h *Hostile) Name() string { return h.name }

// Iface returns the node's single upstream interface.
func (h *Hostile) Iface() *Iface { return h.ifc }

// Prefix returns the claimed region.
func (h *Hostile) Prefix() ipv6.Prefix { return h.prefix }

// Mode returns the responder model.
func (h *Hostile) Mode() HostileMode { return h.mode }

// hostileAddrIn returns an address inside p with host bits drawn from
// iid. Regions are /56 or narrower, so host bits always fit in 64.
func hostileAddrIn(p ipv6.Prefix, iid uint64) ipv6.Addr {
	host := 128 - p.Bits()
	mask := ^uint64(0)
	if host < 64 {
		mask = 1<<uint(host) - 1
	}
	return ipv6.AddrFrom128(p.First().Uint128().Or(uint128.From64(iid & mask)))
}

// isEchoRequest reports whether pkt is an ICMPv6 Echo Request without a
// full parse.
func isEchoRequest(pkt []byte) bool {
	return len(pkt) >= wire.HeaderLen+8 &&
		pkt[6] == wire.ProtoICMPv6 && pkt[wire.HeaderLen] == wire.ICMPEchoRequest
}

// Handle implements Node.
func (h *Hostile) Handle(in *Iface, pkt []byte) []Emission {
	dst, ok := wire.ForwardDst(pkt)
	if !ok || !h.prefix.Contains(dst) {
		return nil
	}
	// Even a hostile box must not answer ICMPv6 errors: error storms
	// would make scenarios diverge on unrelated error traffic.
	if isICMPError(pkt) {
		return nil
	}
	var ems []Emission
	switch h.mode {
	case HostileAliased:
		ems = h.replyAliased(in, dst, pkt)
	case HostileSpoofer:
		ems = h.replySpoofed(in, dst, pkt)
	case HostileMalformed:
		ems = h.replyMalformed(in, dst, pkt)
	case HostileStorm:
		ems = h.replyStorm(in, dst, pkt)
	}
	h.CountReplies += uint64(len(ems))
	return ems
}

// echoReplyFrom mirrors an echo request as a reply sourced from src,
// built into a pooled engine buffer; nil if pkt is not an echo request.
func (h *Hostile) echoReplyFrom(in *Iface, src ipv6.Addr, pkt []byte) []byte {
	s := &h.sc.sum
	if err := s.Parse(pkt); err != nil || s.ICMP == nil || s.ICMP.Type != wire.ICMPEchoRequest {
		return nil
	}
	e, err := wire.ParseEcho(s.ICMP.Body)
	if err != nil {
		return nil
	}
	var scratch []byte
	if in != nil && in.eng != nil {
		scratch = in.eng.getBufLocked(len(pkt))
	}
	out, err := wire.AppendEchoReply(scratch, src, s.IP.Src, 64, e.ID, e.Seq, e.Data)
	if err != nil {
		return nil
	}
	return out
}

// replyAliased: the probed address itself appears to answer.
func (h *Hostile) replyAliased(in *Iface, dst ipv6.Addr, pkt []byte) []Emission {
	if isEchoRequest(pkt) {
		if out := h.echoReplyFrom(in, dst, pkt); out != nil {
			return h.sc.emit(in, out)
		}
		return nil
	}
	if out := icmpError(in, dst, pkt, wire.ICMPDestUnreach, wire.UnreachAddress); out != nil {
		return h.sc.emit(in, out)
	}
	return nil
}

// replySpoofed: errors (and occasional echo replies) sourced from the
// reflector pool, never the probed target. Exactly two RNG draws per
// probe regardless of branch, so the stream stays aligned across runs.
func (h *Hostile) replySpoofed(in *Iface, dst ipv6.Addr, pkt []byte) []Emission {
	iid := h.rng.Uint64()
	variant := h.rng.Intn(4)
	src := hostileAddrIn(h.reflector, iid)
	if variant == 0 && isEchoRequest(pkt) {
		// Spoofed-source echo reply: fails the scanner's HMAC check
		// (id/seq commit to the probed target) — quarantine fodder.
		if out := h.echoReplyFrom(in, src, pkt); out != nil {
			return h.sc.emit(in, out)
		}
		return nil
	}
	if out := icmpError(in, src, pkt, wire.ICMPDestUnreach, wire.UnreachNoRoute); out != nil {
		return h.sc.emit(in, out)
	}
	return nil
}

// replyMalformed: three rotating corruption variants, all sourced from
// inside the probed target's /64 so the scanner's quarantine detector
// can attribute them to the hostile region.
func (h *Hostile) replyMalformed(in *Iface, dst ipv6.Addr, pkt []byte) []Emission {
	iid := h.rng.Uint64()
	iid2 := h.rng.Uint64()
	variant := h.rng.Intn(3)
	switch variant {
	case 0:
		// Corrupted checksum: a valid reply from the target with one
		// checksum byte flipped. Fails ParseICMPv6's checksum verify.
		out := h.echoReplyFrom(in, dst, pkt)
		if out == nil {
			return nil
		}
		out[wire.HeaderLen+2] ^= 0xff
		return h.sc.emit(in, out)
	case 1:
		// Truncated: outer IPv6 header intact, payload length patched to
		// a 4-byte stub — shorter than the ICMPv6 header itself.
		out := h.echoReplyFrom(in, dst, pkt)
		if out == nil || len(out) < wire.HeaderLen+4 {
			return nil
		}
		out = out[:wire.HeaderLen+4]
		binary.BigEndian.PutUint16(out[4:6], 4)
		return h.sc.emit(in, out)
	default:
		// Wrong embedded quote: a checksum-valid Destination Unreachable
		// quoting a forged invoking packet whose inner source is not the
		// scanner. Passes legacy validation (the inner dst/id/seq are
		// real); only a strict embedded-source check rejects it.
		s := &h.sc.sum
		if err := s.Parse(pkt); err != nil || s.ICMP == nil || s.ICMP.Type != wire.ICMPEchoRequest {
			return nil
		}
		e, err := wire.ParseEcho(s.ICMP.Body)
		if err != nil {
			return nil
		}
		scanner := s.IP.Src
		inner, err := wire.BuildEchoRequest(hostileAddrIn(dst.Prefix64(), iid2), dst, 64, e.ID, e.Seq, e.Data)
		if err != nil {
			return nil
		}
		var scratch []byte
		if in != nil && in.eng != nil {
			scratch = in.eng.getBufLocked(wire.ErrorLen(inner))
		}
		out, err := wire.AppendDestUnreach(scratch, hostileAddrIn(dst.Prefix64(), iid), scanner,
			wire.MaxHopLimit, wire.UnreachAddress, inner)
		if err != nil {
			return nil
		}
		return h.sc.emit(in, out)
	}
}

// replyStorm: StormFactor identical valid replies from the probed
// target, each in its own buffer (in-flight hop-limit decrements mutate
// packets in place, so duplicates must not share storage).
func (h *Hostile) replyStorm(in *Iface, dst ipv6.Addr, pkt []byte) []Emission {
	var base []byte
	if isEchoRequest(pkt) {
		base = h.echoReplyFrom(in, dst, pkt)
	} else {
		base = icmpError(in, dst, pkt, wire.ICMPDestUnreach, wire.UnreachAddress)
	}
	if base == nil {
		return nil
	}
	h.pkts = append(h.pkts[:0], base)
	for i := 1; i < h.storm; i++ {
		var dup []byte
		if in != nil && in.eng != nil {
			dup = in.eng.getBufLocked(len(base))
		} else {
			dup = make([]byte, len(base))
		}
		copy(dup, base)
		h.pkts = append(h.pkts, dup)
	}
	return h.sc.emitAll(in, h.pkts)
}
