package netsim

// The engine's event queue has two regimes. While deliveries are in
// FIFO order (no fault layer deferring anything) pops come from a ring
// buffer in O(1) — the common case, and the scan hot path. The moment a
// deferred delivery is enqueued the ring's contents migrate into a
// binary min-heap ordered by (due, seq) and pops cost O(log n) until
// the queue drains, after which the engine falls back to the ring.

// ring is a growable FIFO ring buffer of deliveries.
type ring struct {
	buf  []delivery
	head int
	n    int
}

func (r *ring) len() int { return r.n }

func (r *ring) push(d delivery) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = d
	r.n++
}

// pop removes and returns the oldest delivery. It must not be called on
// an empty ring.
func (r *ring) pop() delivery {
	d := r.buf[r.head]
	r.buf[r.head] = delivery{} // release the pkt reference
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return d
}

// grow doubles capacity (kept a power of two so indexing is a mask).
func (r *ring) grow() {
	nb := make([]delivery, max(16, 2*len(r.buf)))
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}

// reset drops all queued deliveries but keeps the backing array.
func (r *ring) reset() {
	for i := range r.buf {
		r.buf[i] = delivery{}
	}
	r.head, r.n = 0, 0
}

// dheap is a binary min-heap of deliveries ordered by (due, seq): the
// seq tie-break reproduces the old linear scan's earliest-enqueued-wins
// rule, so reordered replays stay bit-identical.
type dheap struct {
	d []delivery
}

func dless(a, b delivery) bool {
	return a.due < b.due || (a.due == b.due && a.seq < b.seq)
}

func (h *dheap) len() int { return len(h.d) }

func (h *dheap) push(d delivery) {
	h.d = append(h.d, d)
	i := len(h.d) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !dless(h.d[i], h.d[p]) {
			break
		}
		h.d[i], h.d[p] = h.d[p], h.d[i]
		i = p
	}
}

// pop removes and returns the smallest delivery. It must not be called
// on an empty heap.
func (h *dheap) pop() delivery {
	top := h.d[0]
	last := len(h.d) - 1
	h.d[0] = h.d[last]
	h.d[last] = delivery{} // release the pkt reference
	h.d = h.d[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h.d) && dless(h.d[l], h.d[s]) {
			s = l
		}
		if r < len(h.d) && dless(h.d[r], h.d[s]) {
			s = r
		}
		if s == i {
			break
		}
		h.d[i], h.d[s] = h.d[s], h.d[i]
		i = s
	}
	return top
}

// reset drops all queued deliveries but keeps the backing array.
func (h *dheap) reset() {
	for i := range h.d {
		h.d[i] = delivery{}
	}
	h.d = h.d[:0]
}
