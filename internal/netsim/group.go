package netsim

import (
	"fmt"
	"sync"

	"repro/internal/ipv6"
	"repro/internal/lpm"
)

// EngineGroup shards one simulated internet across several independent
// Engines so injections can pump concurrently. Each shard is its own
// serialization domain holding a disjoint subtree of the topology
// (topo.Build replicates the core/border spine per shard and assigns
// subscriber prefixes round-robin); a prefix table routes each injected
// packet to the shard owning its destination, where it is injected at
// that shard's entry interface.
//
// Determinism contract: each shard is a deterministic engine — the
// same per-shard injection sequence replays bit-identically. A
// single-goroutine caller therefore gets fully deterministic runs.
// Concurrent callers (xmap.ScanParallel) interleave injections
// nondeterministically across goroutines, but because shards share no
// state the multiset of per-shard outcomes — responder sets, link
// counters, step totals — is unchanged on lossless, fault-free
// topologies; only arrival order at the edge varies.
//
// The routing table is built before pumping starts and read-only
// afterwards, so ShardFor needs no lock.
type EngineGroup struct {
	shards  []*Engine
	entries []*Iface
	routes  *lpm.Table[int]
	// pin64 holds exactly-/64 routes keyed by their masked address.
	// topo.Build pins one /64 per simulated device, so with large
	// topologies these dominate the table; keeping them out of the LPM
	// leaves it with only the coarse window routes (its small-table
	// linear path) and turns the per-packet longest-match walk into one
	// map probe. A /64 is the longest prefix topo installs, so checking
	// pin64 first preserves longest-match order; if a caller ever
	// installs a route longer than /64 the pins migrate into the LPM
	// and pin64 is retired (see Route).
	pin64 map[ipv6.Addr]int
	// bucketPool recycles InjectBatch's per-shard partition scratch
	// across concurrent callers.
	bucketPool sync.Pool
}

// NewEngineGroup creates n independent shard engines. Shard 0 uses
// exactly seed — a group of one is loss-stream-compatible with a plain
// New(seed) engine — and further shards derive their loss streams from
// seed deterministically.
func NewEngineGroup(seed int64, n int) *EngineGroup {
	if n < 1 {
		n = 1
	}
	g := &EngineGroup{routes: lpm.New[int](), pin64: make(map[ipv6.Addr]int)}
	for i := 0; i < n; i++ {
		s := seed
		if i > 0 {
			s = seed + int64(i)*1_000_003
		}
		g.shards = append(g.shards, New(s))
	}
	g.entries = make([]*Iface, n)
	return g
}

// NumShards returns the number of shard engines.
func (g *EngineGroup) NumShards() int { return len(g.shards) }

// Shard returns shard engine i.
func (g *EngineGroup) Shard(i int) *Engine { return g.shards[i] }

// SetEntry declares the interface injections destined for shard i enter
// through (the edge's attachment in that shard).
func (g *EngineGroup) SetEntry(shard int, ifc *Iface) {
	g.entries[shard] = ifc
}

// Entry returns shard i's injection interface.
func (g *EngineGroup) Entry(shard int) *Iface { return g.entries[shard] }

// Route assigns a destination prefix to a shard. Must not be called
// concurrently with injection.
func (g *EngineGroup) Route(p ipv6.Prefix, shard int) {
	if shard < 0 || shard >= len(g.shards) {
		panic(fmt.Sprintf("netsim: Route to nonexistent shard %d", shard))
	}
	if p.Bits() == 64 && g.pin64 != nil {
		g.pin64[p.Addr()] = shard
		return
	}
	if p.Bits() > 64 && g.pin64 != nil {
		// A route longer than /64 can shadow a pin, so the map-first
		// shortcut is no longer sound: fold the pins back into the LPM
		// and retire the map.
		for a, s := range g.pin64 {
			p64, _ := ipv6.NewPrefix(a, 64)
			g.routes.Insert(p64, s)
		}
		g.pin64 = nil
	}
	g.routes.Insert(p, shard)
}

// ShardFor returns the shard owning dst (longest-prefix match; shard 0
// on a miss).
func (g *EngineGroup) ShardFor(dst ipv6.Addr) int {
	if g.pin64 != nil {
		if s, ok := g.pin64[dst.Prefix64().Addr()]; ok {
			return s
		}
	}
	if s, ok := g.routes.Lookup(dst); ok {
		return s
	}
	return 0
}

// shardForPacket routes a raw packet by its destination address field.
// Malformed packets fall through to shard 0.
func (g *EngineGroup) shardForPacket(pkt []byte) int {
	if len(pkt) < 40 || pkt[0]>>4 != 6 {
		return 0
	}
	return g.ShardFor(ipv6.AddrFromBytes(pkt[24:40]))
}

// Inject routes pkt to the shard owning its destination and injects it
// at that shard's entry interface, pumping the shard to quiescence. It
// returns the events processed. Safe for concurrent use; injections to
// different shards proceed in parallel.
func (g *EngineGroup) Inject(pkt []byte) int {
	s := g.shardForPacket(pkt)
	return g.shards[s].Inject(g.entries[s], pkt)
}

// InjectBatch partitions pkts by owning shard, preserving per-shard
// order, and injects each partition as one batch.
func (g *EngineGroup) InjectBatch(pkts [][]byte) int {
	if len(g.shards) == 1 {
		return g.shards[0].InjectBatch(g.entries[0], pkts)
	}
	n := 0
	bp, _ := g.bucketPool.Get().(*[][][]byte)
	if bp == nil {
		b := make([][][]byte, len(g.shards))
		bp = &b
	}
	buckets := *bp
	for _, pkt := range pkts {
		s := g.shardForPacket(pkt)
		buckets[s] = append(buckets[s], pkt)
	}
	for s, b := range buckets {
		if len(b) > 0 {
			n += g.shards[s].InjectBatch(g.entries[s], b)
			clear(b)
			buckets[s] = b[:0]
		}
	}
	g.bucketPool.Put(bp)
	return n
}

// ReleaseBufs spreads exhausted packet buffers across the shard
// freelists (buffer ownership is not tracked per shard; any shard can
// reuse any buffer).
func (g *EngineGroup) ReleaseBufs(pkts [][]byte) {
	per := (len(pkts) + len(g.shards) - 1) / len(g.shards)
	for i := 0; i < len(g.shards) && len(pkts) > 0; i++ {
		n := min(per, len(pkts))
		g.shards[i].ReleaseBufs(pkts[:n])
		pkts = pkts[n:]
	}
}

// SetFault installs the fault layer on every shard. The fault func must
// be safe for concurrent calls when shards pump in parallel.
func (g *EngineGroup) SetFault(f FaultFunc) {
	for _, e := range g.shards {
		e.SetFault(f)
	}
}

// SetTap installs the tap on every shard. The tap must be safe for
// concurrent calls when shards pump in parallel.
func (g *EngineGroup) SetTap(t TapFunc) {
	for _, e := range g.shards {
		e.SetTap(t)
	}
}

// SetFastPath toggles the compiled forwarding fast path on every shard.
func (g *EngineGroup) SetFastPath(on bool) {
	for _, e := range g.shards {
		e.SetFastPath(on)
	}
}

// Steps sums events processed across all shards.
func (g *EngineGroup) Steps() uint64 {
	var n uint64
	for _, e := range g.shards {
		n += e.Steps()
	}
	return n
}

// Counters sums the engine totals across all shards.
func (g *EngineGroup) Counters() Counters {
	var c Counters
	for _, e := range g.shards {
		sc := e.Counters()
		c.Events += sc.Events
		c.Transmissions += sc.Transmissions
		c.Bytes += sc.Bytes
		c.Dropped += sc.Dropped
		c.FastPathHits += sc.FastPathHits
		c.FastPathMisses += sc.FastPathMisses
		c.FastPathInvalidations += sc.FastPathInvalidations
		c.FastPathBatched += sc.FastPathBatched
	}
	return c
}
