package netsim

import (
	"encoding/binary"
	"math/bits"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// This file is the compiled forwarding fast path: a per-engine flow
// cache that records, on first delivery, the traversal a packet class
// takes through statically-forwarding nodes — the ordered links
// crossed, the per-hop hop-limit decrements, and the terminal action —
// and replays it for subsequent packets of the same flow as one fused
// event. Replay charges per-link stats and consumes per-link fault-RNG
// draws in exactly the order sequential forwarding would, so loss,
// duplication, reordering and rate-limiting behave identically (pinned
// by simtest.RunFastPathOracle). Flows are keyed by (ingress interface,
// destination); entries whose every forwarding decision is uniform
// across the destination's /64 are stored wide, so the scanner's
// random-IID probes into one window /64 share a single entry.
//
// Only nodes that opt in via CompilableHop participate; anything with
// per-packet state (a CPE in a vulnerable-loop mode, a UE, a node
// behind a rate limiter whose decision isn't a pure error gate) falls
// back to the interpreted path. Entries are validated against a
// generation counter bumped on topology mutation, fault-layer change,
// or fast-path toggle — a stale compiled path is never replayed.

// CompiledStep is one statically-forwarding hop recorded by route
// compilation: the egress interface a packet to dst leaves through and
// the node's transit counter to charge per replayed packet.
type CompiledStep struct {
	Out *Iface
	// Forwarded, when non-nil, is incremented once per replayed packet
	// (the node's CountForwarded).
	Forwarded *uint64
	// Width, when non-zero, declares the decision uniform across every
	// destination sharing dst's first Width bits (1..64) — minus the
	// exclusions below. The flow entry is then shared across that
	// region: a provider-edge router whose delegations are /60s
	// declares Width 60, and one cache entry serves the scanner's
	// probes into all sixteen /64s of the cell. Width 0 means the
	// decision holds for this exact destination only.
	Width uint8
	// Excl[:NExcl] lists addresses inside the region the decision does
	// NOT cover (the node's own addresses, operated hosts); a wide
	// entry's lookup hands those back to the interpreter.
	NExcl uint8
	// Holes[:NHole] lists sub-prefixes of the region the decision does
	// not cover (an operated subnet inside a delegated prefix);
	// lookups to them miss, so they compile their own narrower entry.
	NHole uint8
	Excl  [fpExclCap]ipv6.Addr
	Holes [fpHoleCap]ipv6.Prefix
}

// CompilableHop is the capability interface a node implements to let
// the engine compile its forwarding decision into a flow entry. The
// contract: if CompileStep(in, dst) returns ok, then for any packet
// arriving on in whose destination is dst (or any address sharing
// dst's first Width bits, outside the exclusions, when Width > 0),
// Handle would decrement the hop limit, increment *Forwarded, and emit
// the packet unchanged out Out — with no other state change. Nodes
// with per-packet state must not implement it (or must return
// ok=false).
type CompilableHop interface {
	Node
	CompileStep(in *Iface, dst ipv6.Addr) (CompiledStep, bool)
}

// fpExclCap bounds the per-entry exclusion list: addresses inside a
// wide entry's region that the path treats specially (a CPE's own WAN
// address, LAN hosts). Lookups to them miss into the interpreter.
const fpExclCap = 4

// fpHoleCap bounds the per-entry excluded-sub-prefix list: regions a
// wide entry does not cover (operated subnets, the WAN /64 inside a
// delegation). Lookups to them miss and compile their own entry.
const fpHoleCap = 3

// compiledTerm is a terminal node's compiled decision: every
// non-special address in the region draws one ICMPv6 error, subject to
// the node's error gate.
type compiledTerm struct {
	typ, code uint8
	// width: same contract as CompiledStep.Width (0 = exact only).
	width uint8
	nExcl uint8
	nHole uint8
	src   ipv6.Addr
	gate  *errorGate
	excl  [fpExclCap]ipv6.Addr
	holes [fpHoleCap]ipv6.Prefix
}

// terminalCompiler is the package-private capability of nodes whose
// terminal action (for the given destination) is a pure ICMPv6 error:
// Router reject/no-route, ISPRouter unassigned space, and the
// correct-behavior CPE error regions. ok=false means the terminal is
// not compilable for dst and the flow stays interpreted from this node.
type terminalCompiler interface {
	CompileTerminal(in *Iface, dst ipv6.Addr) (compiledTerm, bool)
}

// hopExpirer is the package-private capability of nodes whose response
// to an exhausted hop limit is a pure Time Exceeded error: it describes
// the error a packet arriving on in addressed to dst would draw when
// the node cannot decrement the hop limit. ok=false when dst is special
// to the node (delivered locally before the hop-limit check).
type hopExpirer interface {
	compileExpiry(in *Iface, dst ipv6.Addr) (compiledTerm, bool)
}

// entryKind discriminates flow-cache entries.
type entryKind uint8

const (
	// entryNeg: compilation failed; the flow is interpreted (cached so
	// the walk isn't retried per packet). Always exact-match.
	entryNeg entryKind = iota
	// entryNode: fused transit crossings, then interpreted delivery to
	// the terminal node.
	entryNode
	// entryEdge: fused transit ending in inline delivery to an Edge.
	entryEdge
	// entryError: fused transit, compiled ICMPv6 error at the terminal,
	// fused reply path, inline delivery to the Edge.
	entryError
	// entryLoop: the path ends in hop-limit exhaustion — either a
	// routing loop (the paper's flawed-CPE bounce, ISP↔CPE until TTL
	// death) or a short initial hop limit. The entry records the prefix
	// crossings, one unrolled cycle, the total crossing count to expiry,
	// the expiring node's Time Exceeded, and the fused reply path; the
	// dozens of bounce crossings replay as one event with batched
	// charging. Valid only for the exact compiled incoming hop limit.
	entryLoop
)

// maxCompiledHops bounds recorded path length in each direction; longer
// paths replay their prefix fused and continue interpreted.
const maxCompiledHops = 6

// fpTmplLen is the inline error-template length: exactly the error's
// 40-byte IPv6 header plus the 8-byte ICMPv6 header. The invoking
// packet that follows is spliced in from the live probe at replay, so
// only the constant header needs caching.
const fpTmplLen = wire.HeaderLen + 8

// compiledHop is one recorded link crossing.
type compiledHop struct {
	out *Iface
	fwd *uint64 // transit counter to charge, may be nil
}

// flowEntry is one compiled flow. Everything is inline (fixed-size
// arrays, no pointers to per-entry heap data) so compiling flows during
// a benchmark loop costs zero steady-state allocations. Field order is
// replay order: the steady-state hit path reads the struct roughly
// front to back (one hardware-prefetch-friendly stream), with the
// compile-time region bookkeeping (exclusions, holes) at the tail where
// only shadow checks touch it.
type flowEntry struct {
	ifid  uint32
	kind  entryKind
	wide  bool
	// width is the entry's key granularity: hi is masked to its top
	// `width` bits and the entry serves every destination sharing them
	// (minus excl/holes). Exact entries use width 64 with lo compared.
	width uint8
	// lossless: no crossed link has built-in loss, so replay under a
	// nil fault layer consumes no RNG draws (matching the interpreter,
	// which only draws when loss > 0) and can charge stats directly.
	lossless bool
	nf, nr   uint8
	nExcl    uint8
	nHole    uint8
	errType  uint8
	errCode  uint8
	// entryLoop geometry: valid for packets arriving with hop limit
	// hlIn; fwd[:loopStart] is the acyclic prefix, fwd[loopStart:nf]
	// one turn of the cycle, loopCross the total crossings until the
	// hop limit expires at term.
	hlIn      uint8
	loopStart uint8
	loopLen   uint8
	loopCross uint16
	// probeLen validates the error template below: the header splice is
	// only byte-exact for invoking packets of the compiled length.
	probeLen uint16
	// Shadow pre-filter: the region's /64 cells (≤16 of them when width
	// ≥ 60; cellShift = 64-width) that contain a hole or an exclusion.
	// A destination in an unmarked cell is definitely not shadowed, so
	// the hit path skips the hole/exclusion walk at the entry tail.
	// Regions wider than 16 cells mark everything (always walk).
	cellShift  uint8
	shadowCell uint16
	hi, lo     uint64 // destination (hi masked to width); lo ignored when wide
	gen      uint64
	term     *Iface // terminal ingress (entryNode) / error emitter (entryError)
	edge     *Iface // edge ingress for the reply (entryError) or packet (entryEdge)
	gate     *errorGate
	replySrc ipv6.Addr // reply path below is valid only for this probe source
	fwd      [maxCompiledHops]compiledHop
	// Error header template, captured on first replay: the error's IPv6
	// + ICMPv6 headers for a probe of probeLen bytes, plus the partial
	// checksum of the constant region. Replay copies the header, splices
	// the invoking packet after it, and finishes the checksum
	// incrementally.
	tmplSum uint64
	tmpl    [fpTmplLen]byte
	hasTmpl bool
	errSrc  ipv6.Addr
	rev     [maxCompiledHops]compiledHop
	// Excluded sub-prefixes of a wide region, pre-split for the lookup
	// path: holeBits ≤ 64 compares masked hi only, longer holes compare
	// hi exactly plus masked lo.
	holeBits [fpHoleCap]uint8
	holeHi   [fpHoleCap]uint64
	holeLo   [fpHoleCap]uint64
	excl     [fpExclCap]ipv6.Addr
}

// Flow-table sizing: open-addressed, fixed slot count per generation,
// grown ×4 up to fpMaxSlots when fill passes 40%. A lookup probes
// fpProbe consecutive slots; insert evicts within the same window, so a
// hot flow displaced by a collision is simply recompiled.
const (
	fpMinSlots = 1 << 10
	fpMaxSlots = 1 << 16
	fpProbe    = 4
)

// fpWidthCap bounds how many distinct entry widths one cache tracks; a
// lookup probes once per live width, so topologies keep this tiny (64
// for exact and /64 entries plus the ISP delegation granularities).
const fpWidthCap = 8

// flowCache is the per-engine compiled-flow table.
//
// tags is a parallel array of one 8-byte hash tag per slot (eight per
// cache line), so a lookup's probe window costs one dense line load
// instead of touching the ~half-KiB flowEntry payloads; the payload is
// read only on a tag match, which the slot's own key fields then
// confirm (a colliding tag is a wasted slot load, never a wrong hit).
// Tag zero means the slot has never been written.
type flowCache struct {
	enabled bool
	tags    []uint64
	slots   []flowEntry
	mask    uint64
	fill    int
	// gen validates entries: a slot is live iff slot.gen == gen.
	// Bumping gen invalidates every compiled flow at once.
	gen    uint64
	nextID uint32

	// widths lists the distinct key widths of live entries. Probe order
	// is a perf knob, not a correctness one — a wide entry refuses
	// destinations in its exclusions/holes (shadowed), so any entry a
	// lookup matches is safe to replay — and lookups bubble the width
	// that hits toward the front, keeping the workload's dominant
	// granularity first. Reset on bump along with the entries.
	widths  [fpWidthCap]uint8
	nWidths uint8

	hits          uint64
	misses        uint64
	invalidations uint64
}

// bumpLocked invalidates all compiled flows.
func (fp *flowCache) bumpLocked() {
	fp.gen++
	fp.fill = 0
	fp.nWidths = 0
	fp.invalidations++
}

// assignIDLocked gives an interface its engine-local flow-key id.
func (fp *flowCache) assignIDLocked(i *Iface) {
	if i.fpID == 0 {
		fp.nextID++
		i.fpID = fp.nextID
	}
}

func fpHash(ifid uint32, hi uint64) uint64 {
	x := hi ^ uint64(ifid)*0x9E3779B97F4A7C15
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 29
	return x
}

// fpMask is the hi-bits mask of a key width in 1..64.
func fpMask(w uint8) uint64 { return ^uint64(0) << (64 - w) }

// slotHash keys a slot by (interface, width, masked destination bits);
// mixing the width keeps one cell's entries at different granularities
// in distinct probe windows.
func slotHash(ifid uint32, w uint8, hw uint64) uint64 {
	return fpHash(ifid, hw) ^ uint64(w)*0x9FB21C651E98DF25
}

// fpTagWide is the tag of a wide entry: the slot hash itself, with the
// low bit claimed so live tags are never zero. The hash's high bits
// discriminate between flows whose windows overlap (the window index
// consumes only the low bits).
func fpTagWide(h uint64) uint64 { return h | 1 }

// fpTagExact is the tag of an exact (/128) entry, folding the low
// destination word in so two addresses in one /64 get distinct tags.
func fpTagExact(h, lo uint64) uint64 {
	x := h ^ lo*0x9E3779B97F4A7C15
	x ^= x >> 29
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 32
	return x | 1
}

// registerWidth records a live entry width. ok=false when the width
// table is full — the caller must then key the entry exactly.
func (fp *flowCache) registerWidth(w uint8) bool {
	for pos := uint8(0); pos < fp.nWidths; pos++ {
		if fp.widths[pos] == w {
			return true
		}
	}
	if int(fp.nWidths) == fpWidthCap {
		return false
	}
	fp.widths[fp.nWidths] = w
	fp.nWidths++
	return true
}

// buildShadowCells precomputes a wide entry's shadow pre-filter: one
// bit per /64 cell of the region that holds a hole or an exclusion.
// Marking too much is sound (a marked cell just walks the full lists),
// so anything unexpressible marks everything.
func (s *flowEntry) buildShadowCells() {
	shift := 64 - int(s.width)
	if shift > 4 {
		s.cellShift = 4
		s.shadowCell = ^uint16(0)
		return
	}
	s.cellShift = uint8(shift)
	mask := uint64(1)<<shift - 1
	var cells uint16
	for k := uint8(0); k < s.nHole; k++ {
		hb := int(s.holeBits[k])
		base := s.holeHi[k] & mask
		switch {
		case hb >= 64:
			cells |= 1 << (base & 15)
		case hb < int(s.width):
			cells = ^uint16(0) // hole coarser than the region: mark all
		default:
			for c := uint64(0); c < uint64(1)<<(64-hb); c++ {
				cells |= 1 << ((base + c) & 15)
			}
		}
	}
	for k := uint8(0); k < s.nExcl; k++ {
		cells |= 1 << (s.excl[k].Uint128().Hi & mask & 15)
	}
	s.shadowCell = cells
}

// shadowed reports whether dst (hi, lo) falls in one of a wide entry's
// exclusions — a special address or a carved-out sub-prefix. Such
// lookups miss, so the excluded destination compiles its own (more
// specific) entry rather than replaying the wide one.
func (s *flowEntry) shadowed(hi, lo uint64) bool {
	for k := uint8(0); k < s.nHole; k++ {
		hb := s.holeBits[k]
		if hb <= 64 {
			if (hi^s.holeHi[k])&fpMask(hb) == 0 {
				return true
			}
		} else if hi == s.holeHi[k] && (lo^s.holeLo[k])&fpMask(hb-64) == 0 {
			return true
		}
	}
	for k := uint8(0); k < s.nExcl; k++ {
		if u := s.excl[k].Uint128(); u.Hi == hi && u.Lo == lo {
			return true
		}
	}
	return false
}

// lookup finds a live entry for (ifid, dst), probing once per live key
// width. Wide entries match any address sharing the masked hi bits
// outside their exclusions; exact entries require the full destination.
// The width that hits bubbles one position forward, so steady-state
// traffic resolves against its dominant granularity on the first probe.
func (fp *flowCache) lookup(ifid uint32, hi, lo uint64) *flowEntry {
	if fp.tags == nil {
		return nil
	}
	gen := fp.gen
	for wi := uint8(0); wi < fp.nWidths; wi++ {
		w := fp.widths[wi]
		hw := hi & fpMask(w)
		h := slotHash(ifid, w, hw)
		// Entries narrower than /64 are always wide; at exactly 64 the
		// slot may hold either a wide /64 region or an exact address.
		want, wantExact := fpTagWide(h), fpTagWide(h)
		if w == 64 {
			wantExact = fpTagExact(h, lo)
		}
		for i := uint64(0); i < fpProbe; i++ {
			j := (h + i) & fp.mask
			t := fp.tags[j]
			if t != want && t != wantExact {
				continue
			}
			s := &fp.slots[j]
			if s.gen != gen || s.hi != hw || s.ifid != ifid || s.width != w ||
				(!s.wide && s.lo != lo) {
				continue
			}
			if s.wide && s.nExcl|s.nHole != 0 {
				cell := uint16(1) << (hi & (uint64(1)<<s.cellShift - 1))
				if s.shadowCell&cell != 0 && s.shadowed(hi, lo) {
					continue
				}
			}
			if wi > 0 {
				fp.widths[wi-1], fp.widths[wi] = fp.widths[wi], fp.widths[wi-1]
			}
			return s
		}
	}
	return nil
}

// insert stores ent and returns its table slot. The table grows when
// fill passes 40% — or, crucially, whenever a probe window is full of
// live entries: evictions don't raise fill, so without the second
// trigger a saturated table would stall below the threshold and churn
// (every insert killing a live flow) instead of growing.
func (fp *flowCache) insert(ent *flowEntry) *flowEntry {
	if fp.slots == nil {
		fp.tags = make([]uint64, fpMinSlots)
		fp.slots = make([]flowEntry, fpMinSlots)
		fp.mask = fpMinSlots - 1
	} else if (fp.fill+1)*5 > len(fp.slots)*2 && len(fp.slots) < fpMaxSlots {
		fp.grow()
	}
	for {
		if slot, ok := fp.tryPlace(ent); ok {
			return slot
		}
		if len(fp.slots) >= fpMaxSlots {
			return fp.place(ent) // capped: evict within the window
		}
		fp.grow()
	}
}

// fpTag is the tag ent will carry, given its slot hash.
func (ent *flowEntry) fpTag(h uint64) uint64 {
	if ent.wide {
		return fpTagWide(h)
	}
	return fpTagExact(h, ent.lo)
}

// setSlot writes ent into slot j, keeping tag and payload in sync.
func (fp *flowCache) setSlot(j uint64, ent *flowEntry) *flowEntry {
	fp.tags[j] = ent.fpTag(slotHash(ent.ifid, ent.width, ent.hi))
	s := &fp.slots[j]
	*s = *ent
	s.gen = fp.gen
	return s
}

// tryPlace stores ent if its probe window has a dead slot or already
// holds the same flow; ok=false when placing would evict a live entry.
func (fp *flowCache) tryPlace(ent *flowEntry) (*flowEntry, bool) {
	h := slotHash(ent.ifid, ent.width, ent.hi)
	tag := ent.fpTag(h)
	victim := uint64(1) << 63
	for i := uint64(0); i < fpProbe; i++ {
		j := (h + i) & fp.mask
		s := &fp.slots[j]
		if fp.tags[j] != 0 && s.gen == fp.gen {
			if fp.tags[j] == tag && s.ifid == ent.ifid && s.width == ent.width &&
				s.hi == ent.hi && s.wide == ent.wide && (s.wide || s.lo == ent.lo) {
				return fp.setSlot(j, ent), true // recompile of the same flow
			}
			continue
		}
		if victim == uint64(1)<<63 {
			victim = j
		}
	}
	if victim == uint64(1)<<63 {
		return nil, false
	}
	fp.fill++
	return fp.setSlot(victim, ent), true
}

func (fp *flowCache) place(ent *flowEntry) *flowEntry {
	if slot, ok := fp.tryPlace(ent); ok {
		return slot
	}
	h := slotHash(ent.ifid, ent.width, ent.hi)
	return fp.setSlot(h&fp.mask, ent) // window full: evict
}

func (fp *flowCache) grow() {
	oldTags, old := fp.tags, fp.slots
	gen := fp.gen
	fp.tags = make([]uint64, len(old)*4)
	fp.slots = make([]flowEntry, len(old)*4)
	fp.mask = uint64(len(fp.slots) - 1)
	fp.fill = 0
	for i := range old {
		if oldTags[i] != 0 && old[i].gen == gen {
			fp.place(&old[i])
		}
	}
}

// avoidAddrs returns the width (≥ width) of the largest claimable
// region around dst that keeps every element of addrs out of it;
// addresses sharing dst's full /64 cannot be widened past and join the
// exclusion list instead. ok=false when the exclusion list overflows
// (the claim must then be exact). Routers use this to bound region
// claims by their own interface addresses.
func avoidAddrs(width uint8, dst ipv6.Addr, addrs []ipv6.Addr, excl *[fpExclCap]ipv6.Addr, nExcl *uint8) (uint8, bool) {
	dh := dst.Uint128().Hi
	for _, a := range addrs {
		c := bits.LeadingZeros64(dh ^ a.Uint128().Hi)
		if c >= 64 {
			if a == dst {
				continue // the caller already handled dst itself
			}
			if int(*nExcl) == fpExclCap {
				return width, false
			}
			excl[*nExcl] = a
			*nExcl++
			continue
		}
		if w := uint8(c + 1); w > width {
			width = w
		}
	}
	return width, true
}

// prefixWidth converts a region prefix into a width claim: its length
// when expressible in the top 64 bits, else 0 (exact).
func prefixWidth(p ipv6.Prefix) uint8 {
	if b := p.Bits(); b >= 1 && b <= 64 {
		return uint8(b)
	}
	return 0
}

// fpResult is the outcome of a fast-path attempt.
type fpResult uint8

const (
	// fpMiss: nothing was replayed and no state changed; the caller
	// interprets the delivery normally.
	fpMiss fpResult = iota
	// fpDone: the flow was fully replayed as one fused event.
	fpDone
	// fpContinue: a fused prefix of the path was replayed as one event;
	// the returned delivery continues on the interpreted path.
	fpContinue
)

// fpAttempt tries to serve delivery d from the flow cache, compiling
// the flow on a miss. Called from the pump with the engine lock held
// and the event queue empty.
func (e *Engine) fpAttempt(d delivery) (fpResult, delivery) {
	pkt := d.pkt
	// Same validation as wire.ForwardDst: anything else takes the
	// interpreted path (nodes drop it without touching the cache).
	if len(pkt) < wire.HeaderLen || pkt[0]>>4 != 6 ||
		len(pkt)-wire.HeaderLen < int(binary.BigEndian.Uint16(pkt[4:6])) {
		return fpMiss, d
	}
	ifid := d.to.fpID
	if ifid == 0 {
		return fpMiss, d
	}
	hi := binary.BigEndian.Uint64(pkt[24:32])
	lo := binary.BigEndian.Uint64(pkt[32:40])
	ent := e.fp.lookup(ifid, hi, lo)
	cold := ent == nil
	if cold {
		ent = e.compileFlow(d.to, pkt)
	}
	if ent.kind == entryNeg {
		e.fp.misses++
		return fpMiss, d
	}
	res, cont := e.fpReplay(ent, d)
	switch {
	case res == fpMiss || cold:
		e.fp.misses++
	default:
		e.fp.hits++
	}
	return res, cont
}

// compileFlow dry-walks the path a packet delivered at `to` takes to
// dst, recording compilable hops, and installs the resulting entry
// (negative if nothing compiled). No Handle is executed and no state
// mutated: the walk queries CompileStep/CompileTerminal only. The
// entry is built in the engine's scratch slot, so even a flow that
// cannot be cached is compiled without allocating.
func (e *Engine) compileFlow(to *Iface, pkt []byte) *flowEntry {
	dst := ipv6.AddrFromBytes(pkt[24:40])
	u := dst.Uint128()
	ent := &e.fpScratch
	*ent = flowEntry{}
	ent.ifid = to.fpID
	ent.hi, ent.lo = u.Hi, u.Lo
	ent.kind = entryNeg
	ent.wide = true
	ent.width = 1
	ent.lossless = true
	hlIn := pkt[7]
	hl := hlIn
	// Visited ingress interfaces, for routing-cycle detection: ins[i]
	// is where the packet is after i crossings.
	var ins [maxCompiledHops + 1]*Iface
	ins[0] = to
	in := to
	for {
		node := in.node
		if _, isEdge := node.(*Edge); isEdge {
			if ent.nf > 0 {
				ent.kind = entryEdge
				ent.term = in
			}
			break
		}
		if hl <= 1 {
			// The hop limit expires at this node before any forwarding.
			if he, ok := node.(hopExpirer); ok {
				if term, ok := he.compileExpiry(in, dst); ok {
					e.compileLoopTerm(ent, in, term, pkt, hlIn,
						int(ent.nf), 0, int(ent.nf))
					break
				}
			}
			ent.wide = false
			if ent.nf > 0 {
				ent.kind = entryNode
				ent.term = in
			}
			break
		}
		if ch, ok := node.(CompilableHop); ok {
			if step, ok := ch.CompileStep(in, dst); ok {
				if int(ent.nf) == maxCompiledHops || step.Out.link == nil {
					// Path too long (replay the recorded prefix fused)
					// or egress unconnected (interpreted: vanishes).
					if int(ent.nf) == maxCompiledHops {
						ent.kind = entryNode
						ent.term = in
					}
					break
				}
				applyStepRegion(ent, &step)
				if step.Out.link.loss != 0 {
					ent.lossless = false
				}
				ent.fwd[ent.nf] = compiledHop{out: step.Out, fwd: step.Forwarded}
				ent.nf++
				hl--
				next := step.Out.link.ends[1-step.Out.end]
				cycle := -1
				for j := 0; j < int(ent.nf); j++ {
					if ins[j] == next {
						cycle = j
						break
					}
				}
				if cycle >= 0 {
					// A routing loop: the packet bounces around the
					// cycle until its hop limit dies. One decrement per
					// crossing, so expiry lands after hlIn-1 crossings
					// at a node fixed by cycle arithmetic.
					p, l := cycle, int(ent.nf)-cycle
					k := int(hlIn) - 1
					exp := ins[p+(k-p)%l]
					if he, ok := exp.node.(hopExpirer); ok {
						if term, ok := he.compileExpiry(exp, dst); ok {
							e.compileLoopTerm(ent, exp, term, pkt, hlIn, p, l, k)
							break
						}
					}
					// Expiry node uncompilable: replay the recorded
					// crossings fused, bounce on interpreted.
					ent.kind = entryNode
					ent.term = next
					break
				}
				ins[ent.nf] = next
				in = next
				continue
			}
		}
		if tc, ok := node.(terminalCompiler); ok {
			if term, ok := tc.CompileTerminal(in, dst); ok {
				e.compileErrorTerm(ent, in, term, pkt)
				break
			}
			// Terminal refused (special address, vulnerable behavior):
			// cache the transit prefix for this destination only.
			ent.wide = false
		}
		if ent.nf > 0 {
			ent.kind = entryNode
			ent.term = in
		}
		break
	}
	if ent.kind == entryNeg || ent.kind == entryNode && ent.term != nil && !compilableTerm(ent.term.node) {
		// A terminal outside the capability interfaces may treat
		// different addresses of one region differently; stay exact.
		ent.wide = false
	}
	if ent.kind == entryNeg {
		ent.nf = 0
	}
	if ent.wide && !e.fp.registerWidth(ent.width) {
		ent.wide = false // width table saturated: key exactly
	}
	if ent.wide {
		ent.hi &= fpMask(ent.width)
		ent.buildShadowCells()
	} else {
		// Exact entries are keyed at /64 with the low half compared,
		// and never match a special address or hole.
		ent.width = 64
		ent.nExcl, ent.nHole = 0, 0
		if !e.fp.registerWidth(64) {
			return ent // unkeyable: serve this delivery uncached
		}
	}
	return e.fp.insert(ent)
}

// applyStepRegion folds one compiled hop's region claim into the
// entry: the width narrows to the step's (larger width = smaller
// region), exclusions and holes accumulate; any overflow forces the
// entry exact.
func applyStepRegion(ent *flowEntry, step *CompiledStep) {
	if step.Width == 0 {
		ent.wide = false
	} else if step.Width > ent.width {
		ent.width = step.Width
	}
	if step.NExcl > 0 && !mergeExcl(ent, step.Excl[:step.NExcl]) {
		ent.wide = false
	}
	for k := uint8(0); k < step.NHole; k++ {
		if !mergeHole(ent, step.Holes[k]) {
			ent.wide = false
		}
	}
}

// applyTermRegion is applyStepRegion for a compiled terminal.
func applyTermRegion(ent *flowEntry, term *compiledTerm) {
	if term.width == 0 {
		ent.wide = false
	} else if term.width > ent.width {
		ent.width = term.width
	}
	if term.nExcl > 0 && !mergeExcl(ent, term.excl[:term.nExcl]) {
		ent.wide = false
	}
	for k := uint8(0); k < term.nHole; k++ {
		if !mergeHole(ent, term.holes[k]) {
			ent.wide = false
		}
	}
}

// mergeHole folds an excluded sub-prefix into the entry,
// deduplicating; false when the inline list overflows (the entry must
// then be exact).
func mergeHole(ent *flowEntry, p ipv6.Prefix) bool {
	b := p.Bits()
	if b < 1 || b > 128 {
		return false
	}
	u := p.Addr().Uint128()
	for k := uint8(0); k < ent.nHole; k++ {
		if ent.holeBits[k] == uint8(b) && ent.holeHi[k] == u.Hi && ent.holeLo[k] == u.Lo {
			return true
		}
	}
	if int(ent.nHole) == fpHoleCap {
		return false
	}
	ent.holeBits[ent.nHole] = uint8(b)
	ent.holeHi[ent.nHole] = u.Hi
	ent.holeLo[ent.nHole] = u.Lo
	ent.nHole++
	return true
}

// mergeExcl folds addrs into the entry's exclusion list, deduplicating;
// false when the inline list overflows (the entry must then be exact).
func mergeExcl(ent *flowEntry, addrs []ipv6.Addr) bool {
outer:
	for _, a := range addrs {
		for k := uint8(0); k < ent.nExcl; k++ {
			if ent.excl[k] == a {
				continue outer
			}
		}
		if int(ent.nExcl) == fpExclCap {
			return false
		}
		ent.excl[ent.nExcl] = a
		ent.nExcl++
	}
	return true
}

func compilableTerm(n Node) bool {
	_, ok := n.(terminalCompiler)
	return ok
}

// compileReply records the error's return path from termIn back to an
// Edge into ent.rev (rev[0] is the emission out the arrival interface,
// the rest forwarding crossings). false when any reverse hop is
// uncompilable; ent.lossless may have been cleared regardless, which is
// safe (the transmit-path replay is exact, just slower).
func compileReply(ent *flowEntry, termIn *Iface, rdst ipv6.Addr) bool {
	if termIn.link == nil {
		return false
	}
	ent.rev[0] = compiledHop{out: termIn}
	if termIn.link.loss != 0 {
		ent.lossless = false
	}
	nr := 1
	rin := termIn.link.ends[1-termIn.end]
	for {
		node := rin.node
		if _, isEdge := node.(*Edge); isEdge {
			ent.edge = rin
			break
		}
		ch, ok := node.(CompilableHop)
		if !ok {
			return false
		}
		step, ok := ch.CompileStep(rin, rdst)
		if !ok || nr == maxCompiledHops || step.Out.link == nil {
			return false
		}
		if step.Out.link.loss != 0 {
			ent.lossless = false
		}
		ent.rev[nr] = compiledHop{out: step.Out, fwd: step.Forwarded}
		nr++
		rin = step.Out.link.ends[1-step.Out.end]
	}
	ent.nr = uint8(nr)
	return true
}

// compileErrorTerm upgrades ent to a fully fused error round trip: the
// terminal's compiled ICMPv6 error plus the compiled reply path back to
// an Edge. Any obstacle downgrades to entryNode (interpreted terminal).
func (e *Engine) compileErrorTerm(ent *flowEntry, termIn *Iface, term compiledTerm, pkt []byte) {
	// The reply path is compiled for this probe's source; replay guards
	// on it and falls back to the interpreted terminal for other
	// sources.
	rdst := ipv6.AddrFromBytes(pkt[8:24])
	if !compileReply(ent, termIn, rdst) {
		if ent.nf > 0 {
			ent.kind = entryNode
			ent.term = termIn
		}
		return
	}
	ent.kind = entryError
	ent.term = termIn
	ent.errType, ent.errCode = term.typ, term.code
	ent.errSrc = term.src
	ent.gate = term.gate
	ent.replySrc = rdst
	applyTermRegion(ent, &term)
}

// compileLoopTerm upgrades ent to a fused hop-limit-expiry round trip:
// prefix crossings (fwd[:p]), a cycle of l crossings (fwd[p:p+l], zero
// for a plain short-hop-limit path), cross total crossings until the
// Time Exceeded fires at expIn's node, and the compiled reply. Only
// valid for packets arriving with exactly hlIn; replay guards on it.
// Any obstacle downgrades to entryNode (bounces stay interpreted).
func (e *Engine) compileLoopTerm(ent *flowEntry, expIn *Iface, term compiledTerm, pkt []byte, hlIn uint8, p, l, cross int) {
	rdst := ipv6.AddrFromBytes(pkt[8:24])
	if !compileReply(ent, expIn, rdst) {
		if ent.nf > 0 {
			ent.kind = entryNode
			ent.term = expIn
		}
		return
	}
	ent.kind = entryLoop
	ent.term = expIn
	ent.errType, ent.errCode = term.typ, term.code
	ent.errSrc = term.src
	ent.gate = term.gate
	ent.replySrc = rdst
	ent.hlIn = hlIn
	ent.loopStart, ent.loopLen = uint8(p), uint8(l)
	ent.loopCross = uint16(cross)
	applyTermRegion(ent, &term)
}

// fpReplay replays a compiled entry for delivery d. The contract with
// the interpreter: every link-stat charge, RNG draw, fault consult, tap
// call, hop-limit decrement, transit-counter increment, error-gate
// decision and buffer-pool movement happens in exactly the order
// sequential forwarding would produce.
func (e *Engine) fpReplay(ent *flowEntry, d delivery) (fpResult, delivery) {
	pkt := d.pkt
	if ent.kind == entryLoop {
		return e.fpReplayLoop(ent, d)
	}
	// One fused event can use the pure-add charging loop only when
	// nothing can observe or perturb individual crossings.
	plain := ent.lossless && e.fault == nil && e.tap == nil

	in := d.to
	for j := uint8(0); j < ent.nf; j++ {
		if pkt[7] <= 1 {
			// Hop limit expires at this node: its interpreted Handle
			// emits the Time Exceeded.
			if j == 0 {
				return fpMiss, d
			}
			return fpContinue, delivery{to: in, pkt: pkt}
		}
		pkt[7]--
		h := &ent.fwd[j]
		if h.fwd != nil {
			*h.fwd++
		}
		if plain {
			l := h.out.link
			st := &l.stats[h.out.end]
			n := uint64(len(pkt))
			st.Packets++
			st.Bytes += n
			e.txPackets++
			e.txBytes += n
			e.seq++
			in = l.ends[1-h.out.end]
		} else {
			nd, ok := e.transmitLocked(h.out, pkt, true)
			if !ok {
				// Dropped, deferred or duplicated: the queue owns
				// whatever survives; the fused event ends here.
				return fpDone, delivery{}
			}
			pkt = nd.pkt
			in = nd.to
		}
	}

	switch ent.kind {
	case entryEdge:
		ent.term.node.Handle(ent.term, pkt) // Edge retains; returns nil
		return fpDone, delivery{}
	case entryNode:
		return fpContinue, delivery{to: in, pkt: pkt}
	}

	// entryError: the terminal's guards, in Handle's order. Bailing
	// here hands the packet to the terminal's interpreted Handle, which
	// reaches the same decision point with identical state.
	bail := func() (fpResult, delivery) {
		if ent.nf == 0 {
			return fpMiss, d
		}
		return fpContinue, delivery{to: in, pkt: pkt}
	}
	if pkt[7] <= 1 {
		return bail() // interpreted Time Exceeded at the terminal
	}
	if binary.BigEndian.Uint64(pkt[8:16]) != ent.replySrc.Uint128().Hi ||
		binary.BigEndian.Uint64(pkt[16:24]) != ent.replySrc.Uint128().Lo {
		return bail() // reply path compiled for a different source
	}
	pkt[7]--
	if !ent.gate.allow() {
		e.putBufLocked(pkt)
		return fpDone, delivery{}
	}
	if isICMPError(pkt) {
		// RFC 4443 2.4(e): no errors about errors; the interpreter
		// refunds the gate budget in this case.
		ent.gate.generated--
		e.putBufLocked(pkt)
		return fpDone, delivery{}
	}
	reply := e.fpBuildError(ent, pkt)
	e.putBufLocked(pkt) // the probe's delivery lifecycle ends at the terminal
	return e.fpReplayReverse(ent, reply, plain)
}

// fpReplayReverse drives the compiled error reply from the terminal
// back to the Edge and delivers it inline.
func (e *Engine) fpReplayReverse(ent *flowEntry, reply []byte, plain bool) (fpResult, delivery) {
	rin := ent.term
	for j := uint8(0); j < ent.nr; j++ {
		if j > 0 {
			if reply[7] <= 1 {
				return fpContinue, delivery{to: rin, pkt: reply}
			}
			reply[7]--
			if ent.rev[j].fwd != nil {
				*ent.rev[j].fwd++
			}
		}
		h := &ent.rev[j]
		if plain {
			l := h.out.link
			st := &l.stats[h.out.end]
			n := uint64(len(reply))
			st.Packets++
			st.Bytes += n
			e.txPackets++
			e.txBytes += n
			e.seq++
			rin = l.ends[1-h.out.end]
		} else {
			nd, ok := e.transmitLocked(h.out, reply, true)
			if !ok {
				return fpDone, delivery{}
			}
			reply = nd.pkt
			rin = nd.to
		}
	}
	ent.edge.node.Handle(ent.edge, reply) // Edge retains; returns nil
	return fpDone, delivery{}
}

// fpReplayLoop replays a hop-limit-expiry entry: the acyclic prefix
// plus however many turns of the recorded cycle the packet's hop limit
// affords, the expiring node's Time Exceeded, and the fused reply. On a
// lossless fault-free engine the dozens of bounce crossings are charged
// arithmetically — per recorded hop, not per crossing — in one fused
// event; otherwise each crossing runs through transmitLocked so every
// fault consult, RNG draw and tap call happens in interpreted order.
func (e *Engine) fpReplayLoop(ent *flowEntry, d delivery) (fpResult, delivery) {
	pkt := d.pkt
	if pkt[7] != ent.hlIn {
		// Compiled for a different incoming hop limit (expiry would
		// land elsewhere): interpret this packet.
		return fpMiss, d
	}
	if binary.BigEndian.Uint64(pkt[8:16]) != ent.replySrc.Uint128().Hi ||
		binary.BigEndian.Uint64(pkt[16:24]) != ent.replySrc.Uint128().Lo {
		return fpMiss, d // reply path compiled for a different source
	}
	cross := int(ent.loopCross)
	plain := ent.lossless && e.fault == nil && e.tap == nil
	if plain {
		p, l := int(ent.loopStart), int(ent.loopLen)
		n := uint64(len(pkt))
		for i := 0; i < int(ent.nf); i++ {
			var cnt uint64
			if i < p {
				if i < cross {
					cnt = 1
				}
			} else {
				q := cross - p
				cnt = uint64(q / l)
				if i-p < q%l {
					cnt++
				}
			}
			if cnt == 0 {
				continue
			}
			h := &ent.fwd[i]
			if h.fwd != nil {
				*h.fwd += cnt
			}
			lk := h.out.link
			st := &lk.stats[h.out.end]
			st.Packets += cnt
			st.Bytes += cnt * n
			e.txPackets += cnt
			e.txBytes += cnt * n
		}
		e.seq += uint64(cross)
		pkt[7] = ent.hlIn - uint8(cross) // what the expiring node sees
	} else {
		for j := 0; j < cross; j++ {
			i := j
			if p := int(ent.loopStart); j >= p {
				i = p + (j-p)%int(ent.loopLen)
			}
			pkt[7]--
			h := &ent.fwd[i]
			if h.fwd != nil {
				*h.fwd++
			}
			nd, ok := e.transmitLocked(h.out, pkt, true)
			if !ok {
				// Dropped, deferred or duplicated mid-bounce: the queue
				// owns whatever survives.
				return fpDone, delivery{}
			}
			pkt = nd.pkt
		}
	}
	// The expiring node's guards, in Handle's order (the hop limit is
	// exhausted by construction, so the error path is unconditional).
	if !ent.gate.allow() {
		e.putBufLocked(pkt)
		return fpDone, delivery{}
	}
	if isICMPError(pkt) {
		// RFC 4443 2.4(e): no errors about errors; the interpreter
		// refunds the gate budget in this case.
		ent.gate.generated--
		e.putBufLocked(pkt)
		return fpDone, delivery{}
	}
	reply := e.fpBuildError(ent, pkt)
	e.putBufLocked(pkt)
	return e.fpReplayReverse(ent, reply, plain)
}

// fpBuildError produces the terminal's ICMPv6 error for the invoking
// packet. The first replay builds it through the wire builders
// (byte-exact by construction) and captures its headers as the entry's
// template; later replays copy the 48-byte header, splice the invoking
// packet after it, and finish the checksum from the cached
// constant-region sum.
func (e *Engine) fpBuildError(ent *flowEntry, pkt []byte) []byte {
	const invOff = fpTmplLen
	n := len(pkt)
	if ent.hasTmpl && int(ent.probeLen) == n {
		out := e.getBufLocked(invOff + n)
		copy(out[:invOff], ent.tmpl[:])
		copy(out[invOff:], pkt)
		cs := wire.FoldSum(ent.tmplSum + wire.SumWords(pkt))
		binary.BigEndian.PutUint16(out[invOff-6:invOff-4], cs)
		return out
	}
	scratch := e.getBufLocked(wire.ErrorLen(pkt))
	rdst := ipv6.AddrFromBytes(pkt[8:24])
	var out []byte
	if ent.errType == wire.ICMPTimeExceeded {
		out, _ = wire.AppendTimeExceeded(scratch, ent.errSrc, rdst, wire.MaxHopLimit, pkt)
	} else {
		out, _ = wire.AppendDestUnreach(scratch, ent.errSrc, rdst, wire.MaxHopLimit, ent.errCode, pkt)
	}
	if len(out) == invOff+n {
		// Untruncated: cache the headers as the template. The constant
		// checksum region is the pseudo-header plus the 8-byte ICMPv6
		// header with a zeroed checksum — of which only type and code
		// are non-zero.
		copy(ent.tmpl[:], out[:invOff])
		ent.hasTmpl = true
		ent.probeLen = uint16(n)
		ent.tmplSum = wire.PseudoSum(ent.errSrc, rdst, wire.ProtoICMPv6, len(out)-wire.HeaderLen) +
			uint64(ent.errType)<<8 + uint64(ent.errCode)
	}
	return out
}
