package netsim

import (
	"encoding/binary"
	"math/bits"
	"unsafe"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// This file is the compiled forwarding fast path: a per-engine flow
// cache that records, on first delivery, the traversal a packet class
// takes through statically-forwarding nodes — the ordered links
// crossed, the per-hop hop-limit decrements, and the terminal action —
// and replays it for subsequent packets of the same flow as one fused
// event. Replay charges per-link stats and consumes per-link fault-RNG
// draws in exactly the order sequential forwarding would, so loss,
// duplication, reordering and rate-limiting behave identically (pinned
// by simtest.RunFastPathOracle). Flows are keyed by (ingress interface,
// destination); entries whose every forwarding decision is uniform
// across the destination's /64 are stored wide, so the scanner's
// random-IID probes into one window /64 share a single entry.
//
// Only nodes that opt in via CompilableHop participate; anything with
// per-packet state (a CPE in a vulnerable-loop mode, a UE, a node
// behind a rate limiter whose decision isn't a pure error gate) falls
// back to the interpreted path. Entries are validated against a
// generation counter bumped on topology mutation, fault-layer change,
// or fast-path toggle — a stale compiled path is never replayed.

// CompiledStep is one statically-forwarding hop recorded by route
// compilation: the egress interface a packet to dst leaves through and
// the node's transit counter to charge per replayed packet.
type CompiledStep struct {
	Out *Iface
	// Forwarded, when non-nil, is incremented once per replayed packet
	// (the node's CountForwarded).
	Forwarded *uint64
	// Width, when non-zero, declares the decision uniform across every
	// destination sharing dst's first Width bits (1..64) — minus the
	// exclusions below. The flow entry is then shared across that
	// region: a provider-edge router whose delegations are /60s
	// declares Width 60, and one cache entry serves the scanner's
	// probes into all sixteen /64s of the cell. Width 0 means the
	// decision holds for this exact destination only.
	Width uint8
	// Excl[:NExcl] lists addresses inside the region the decision does
	// NOT cover (the node's own addresses, operated hosts); a wide
	// entry's lookup hands those back to the interpreter.
	NExcl uint8
	// Holes[:NHole] lists sub-prefixes of the region the decision does
	// not cover (an operated subnet inside a delegated prefix);
	// lookups to them miss, so they compile their own narrower entry.
	NHole uint8
	Excl  [fpExclCap]ipv6.Addr
	Holes [fpHoleCap]ipv6.Prefix
}

// CompilableHop is the capability interface a node implements to let
// the engine compile its forwarding decision into a flow entry. The
// contract: if CompileStep(in, dst) returns ok, then for any packet
// arriving on in whose destination is dst (or any address sharing
// dst's first Width bits, outside the exclusions, when Width > 0),
// Handle would decrement the hop limit, increment *Forwarded, and emit
// the packet unchanged out Out — with no other state change. Nodes
// with per-packet state must not implement it (or must return
// ok=false).
type CompilableHop interface {
	Node
	CompileStep(in *Iface, dst ipv6.Addr) (CompiledStep, bool)
}

// fpExclCap bounds the per-entry exclusion list: addresses inside a
// wide entry's region that the path treats specially (a CPE's own WAN
// address, LAN hosts). Lookups to them miss into the interpreter.
const fpExclCap = 4

// fpHoleCap bounds the per-entry excluded-sub-prefix list: regions a
// wide entry does not cover (operated subnets, the WAN /64 inside a
// delegation). Lookups to them miss and compile their own entry.
const fpHoleCap = 3

// compiledTerm is a terminal node's compiled decision: every
// non-special address in the region draws one ICMPv6 error, subject to
// the node's error gate.
type compiledTerm struct {
	typ, code uint8
	// width: same contract as CompiledStep.Width (0 = exact only).
	width uint8
	nExcl uint8
	nHole uint8
	src   ipv6.Addr
	gate  *errorGate
	excl  [fpExclCap]ipv6.Addr
	holes [fpHoleCap]ipv6.Prefix
}

// terminalCompiler is the package-private capability of nodes whose
// terminal action (for the given destination) is a pure ICMPv6 error:
// Router reject/no-route, ISPRouter unassigned space, and the
// correct-behavior CPE error regions. ok=false means the terminal is
// not compilable for dst and the flow stays interpreted from this node.
type terminalCompiler interface {
	CompileTerminal(in *Iface, dst ipv6.Addr) (compiledTerm, bool)
}

// hopExpirer is the package-private capability of nodes whose response
// to an exhausted hop limit is a pure Time Exceeded error: it describes
// the error a packet arriving on in addressed to dst would draw when
// the node cannot decrement the hop limit. ok=false when dst is special
// to the node (delivered locally before the hop-limit check).
type hopExpirer interface {
	compileExpiry(in *Iface, dst ipv6.Addr) (compiledTerm, bool)
}

// entryKind discriminates flow-cache entries.
type entryKind uint8

const (
	// entryNeg: compilation failed; the flow is interpreted (cached so
	// the walk isn't retried per packet). Always exact-match.
	entryNeg entryKind = iota
	// entryNode: fused transit crossings, then interpreted delivery to
	// the terminal node.
	entryNode
	// entryEdge: fused transit ending in inline delivery to an Edge.
	entryEdge
	// entryError: fused transit, compiled ICMPv6 error at the terminal,
	// fused reply path, inline delivery to the Edge.
	entryError
	// entryLoop: the path ends in hop-limit exhaustion — either a
	// routing loop (the paper's flawed-CPE bounce, ISP↔CPE until TTL
	// death) or a short initial hop limit. The entry records the prefix
	// crossings, one unrolled cycle, the total crossing count to expiry,
	// the expiring node's Time Exceeded, and the fused reply path; the
	// dozens of bounce crossings replay as one event with batched
	// charging. Valid only for the exact compiled incoming hop limit.
	entryLoop
)

// maxCompiledHops bounds recorded path length in each direction; longer
// paths replay their prefix fused and continue interpreted.
const maxCompiledHops = 6

// fpTmplLen is the inline error-template length: exactly the error's
// 40-byte IPv6 header plus the 8-byte ICMPv6 header. The invoking
// packet that follows is spliced in from the live probe at replay, so
// only the constant header needs caching.
const fpTmplLen = wire.HeaderLen + 8

// compiledHop is one recorded link crossing. st caches &out.link.
// stats[out.end] so replay charges the crossing with one load from the
// hop list instead of chasing out -> link -> stats through two cold
// lines per hop; the pointer stays valid because links never reallocate
// their stats and every topology mutation invalidates compiled flows.
type compiledHop struct {
	out *Iface
	fwd *uint64    // transit counter to charge, may be nil
	st  *LinkStats // out's per-direction stat block
}

// hopTo builds the compiled crossing out of an interface.
func hopTo(out *Iface, fwd *uint64) compiledHop {
	return compiledHop{out: out, fwd: fwd, st: &out.link.stats[out.end]}
}

// flowHot flag bits.
const (
	// fpFlagWide: the entry serves every destination sharing its masked
	// hi bits (minus the cold tail's exclusions/holes).
	fpFlagWide = 1 << 0
	// fpFlagLossless: no crossed link has built-in loss, so replay under
	// a nil fault layer consumes no RNG draws (matching the interpreter,
	// which only draws when loss > 0) and can charge stats directly.
	fpFlagLossless = 1 << 1
	// fpFlagTmpl: the cold tail's error template is valid.
	fpFlagTmpl = 1 << 2
)

// flowHot is the hot header of one compiled flow: everything the
// lookup's key confirmation and the replay dispatch decision need,
// packed into exactly one 64-byte cache line. A warm probe touches one
// tag line and this line before committing to a replay; the cold tail
// (flowCold, a parallel array) is reached only once the entry is going
// to be used. The layout is pinned by a compile-time assertion below
// and by TestFlowEntryLayout — widening it past a cache line is a
// silent ~30% lookup regression, so it fails the build instead.
type flowHot struct {
	hi, lo uint64 // destination (hi masked to width); lo ignored when wide
	// gen validates the slot: live iff gen == flowCache.gen.
	gen  uint64
	term *Iface // terminal ingress (entryNode) / error emitter (entryError)
	gate *errorGate
	ifid uint32
	// Shadow pre-filter: the region's /64 cells (≤16 of them when width
	// ≥ 60; cellShift = 64-width) that contain a hole or an exclusion.
	// A destination in an unmarked cell is definitely not shadowed, so
	// the hit path skips the hole/exclusion walk in the cold tail.
	// Regions wider than 16 cells mark everything (always walk).
	shadowCell uint16
	loopCross  uint16 // entryLoop: total crossings until expiry
	// probeLen validates the cold error template: the header splice is
	// only byte-exact for invoking packets of the compiled length.
	probeLen uint16
	kind     entryKind
	flags    uint8 // fpFlag* bits
	// width is the entry's key granularity: hi is masked to its top
	// `width` bits and the entry serves every destination sharing them
	// (minus excl/holes). Exact entries use width 64 with lo compared.
	width  uint8
	nf, nr uint8
	nExcl  uint8
	nHole  uint8
	// entryLoop geometry: valid for packets arriving with hop limit
	// hlIn; fwd[:loopStart] is the acyclic prefix, fwd[loopStart:nf]
	// one turn of the cycle.
	cellShift uint8
	errType   uint8
	errCode   uint8
	hlIn      uint8
	loopStart uint8
	loopLen   uint8
	_         [1]byte // explicit pad: 64 bytes total, asserted below
}

// flowHotSize pins flowHot to one cache line; either assertion failing
// to compile means a field change altered the hot layout.
const flowHotSize = 64

var _ [flowHotSize - unsafe.Sizeof(flowHot{})]byte
var _ [unsafe.Sizeof(flowHot{}) - flowHotSize]byte

func (h *flowHot) wide() bool     { return h.flags&fpFlagWide != 0 }
func (h *flowHot) lossless() bool { return h.flags&fpFlagLossless != 0 }
func (h *flowHot) hasTmpl() bool  { return h.flags&fpFlagTmpl != 0 }

// flowCold is the cold tail of one compiled flow, held in an array
// parallel to the hot headers: the forward/reverse hop lists, the reply
// path metadata, the cached error template and the wide-region
// exclusion bookkeeping. Field order is replay order — the batched
// resolve guard (replySrc), the delivery target (edge) and the template
// checksum share the tail's first cache line, which the batched warm
// pass pulls alongside the hot header — with the shadow-walk data
// (holes, exclusions) last, touched only for destinations whose /64
// cell the hot pre-filter marked.
type flowCold struct {
	replySrc ipv6.Addr // reply path below is valid only for this probe source
	edge     *Iface    // edge ingress for the reply (entryError) or packet (entryEdge)
	// Error header template, captured on first replay: the error's IPv6
	// + ICMPv6 headers for a probe of probeLen bytes, plus the partial
	// checksum of the constant region. Replay copies the header, splices
	// the invoking packet after it, and finishes the checksum
	// incrementally.
	tmplSum uint64
	tmpl    [fpTmplLen]byte
	rev     [maxCompiledHops]compiledHop
	fwd     [maxCompiledHops]compiledHop
	errSrc  ipv6.Addr
	// Excluded sub-prefixes of a wide region, pre-split for the lookup
	// path: holeBits ≤ 64 compares masked hi only, longer holes compare
	// hi exactly plus masked lo.
	holeBits [fpHoleCap]uint8
	holeHi   [fpHoleCap]uint64
	holeLo   [fpHoleCap]uint64
	excl     [fpExclCap]ipv6.Addr
}

// Flow-table sizing: open-addressed, fixed slot count per generation,
// grown ×4 up to fpMaxSlots when fill passes 40%. A lookup probes
// fpProbe consecutive slots; insert evicts within the same window, so a
// hot flow displaced by a collision is simply recompiled.
const (
	fpMinSlots = 1 << 10
	fpMaxSlots = 1 << 16
	fpProbe    = 4
)

// fpWidthCap bounds how many distinct entry widths one cache tracks; a
// lookup probes once per live width, so topologies keep this tiny (64
// for exact and /64 entries plus the ISP delegation granularities).
const fpWidthCap = 8

// flowCache is the per-engine compiled-flow table.
//
// tags is a parallel array of one 8-byte hash tag per slot (eight per
// cache line), so a lookup's probe window costs one dense line load
// instead of touching the entry payloads; a tag match reads the 64-byte
// hot header, whose own key fields confirm it (a colliding tag is a
// wasted slot load, never a wrong hit). Tag zero means the slot has
// never been written. The payload itself is split hot/cold into two
// further parallel arrays (flowHot, flowCold), so the per-probe line
// budget of a warm error replay is tags + hot + the cold tail's first
// line instead of the ~8 lines a single monolithic struct cost.
type flowCache struct {
	enabled bool
	tags    []uint64
	hot     []flowHot
	cold    []flowCold
	mask    uint64
	fill    int
	// gen validates entries: a slot is live iff hot.gen == gen.
	// Bumping gen invalidates every compiled flow at once.
	gen    uint64
	nextID uint32

	// widths lists the distinct key widths of live entries. Probe order
	// is a perf knob, not a correctness one — a wide entry refuses
	// destinations in its exclusions/holes (shadowed), so any entry a
	// lookup matches is safe to replay — and lookups bubble the width
	// that hits toward the front, keeping the workload's dominant
	// granularity first. Reset on bump along with the entries.
	widths  [fpWidthCap]uint8
	nWidths uint8

	hits          uint64
	misses        uint64
	invalidations uint64
	// batched counts the hits served by the batched injection path
	// (inject.go) — a subset of hits, surfaced so telemetry can show
	// how much of a scan ran batch-grained.
	batched uint64
}

// bumpLocked invalidates all compiled flows.
func (fp *flowCache) bumpLocked() {
	fp.gen++
	fp.fill = 0
	fp.nWidths = 0
	fp.invalidations++
}

// assignIDLocked gives an interface its engine-local flow-key id.
func (fp *flowCache) assignIDLocked(i *Iface) {
	if i.fpID == 0 {
		fp.nextID++
		i.fpID = fp.nextID
	}
}

func fpHash(ifid uint32, hi uint64) uint64 {
	x := hi ^ uint64(ifid)*0x9E3779B97F4A7C15
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 29
	return x
}

// fpMask is the hi-bits mask of a key width in 1..64.
func fpMask(w uint8) uint64 { return ^uint64(0) << (64 - w) }

// slotHash keys a slot by (interface, width, masked destination bits);
// mixing the width keeps one cell's entries at different granularities
// in distinct probe windows.
func slotHash(ifid uint32, w uint8, hw uint64) uint64 {
	return fpHash(ifid, hw) ^ uint64(w)*0x9FB21C651E98DF25
}

// fpTagWide is the tag of a wide entry: the slot hash itself, with the
// low bit claimed so live tags are never zero. The hash's high bits
// discriminate between flows whose windows overlap (the window index
// consumes only the low bits).
func fpTagWide(h uint64) uint64 { return h | 1 }

// fpTagExact is the tag of an exact (/128) entry, folding the low
// destination word in so two addresses in one /64 get distinct tags.
func fpTagExact(h, lo uint64) uint64 {
	x := h ^ lo*0x9E3779B97F4A7C15
	x ^= x >> 29
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 32
	return x | 1
}

// registerWidth records a live entry width. ok=false when the width
// table is full — the caller must then key the entry exactly.
func (fp *flowCache) registerWidth(w uint8) bool {
	for pos := uint8(0); pos < fp.nWidths; pos++ {
		if fp.widths[pos] == w {
			return true
		}
	}
	if int(fp.nWidths) == fpWidthCap {
		return false
	}
	fp.widths[fp.nWidths] = w
	fp.nWidths++
	return true
}

// buildShadowCells precomputes a wide entry's shadow pre-filter: one
// bit per /64 cell of the region that holds a hole or an exclusion.
// Marking too much is sound (a marked cell just walks the full lists),
// so anything unexpressible marks everything.
func buildShadowCells(h *flowHot, c *flowCold) {
	shift := 64 - int(h.width)
	if shift > 4 {
		h.cellShift = 4
		h.shadowCell = ^uint16(0)
		return
	}
	h.cellShift = uint8(shift)
	mask := uint64(1)<<shift - 1
	var cells uint16
	for k := uint8(0); k < h.nHole; k++ {
		hb := int(c.holeBits[k])
		base := c.holeHi[k] & mask
		switch {
		case hb >= 64:
			cells |= 1 << (base & 15)
		case hb < int(h.width):
			cells = ^uint16(0) // hole coarser than the region: mark all
		default:
			for cc := uint64(0); cc < uint64(1)<<(64-hb); cc++ {
				cells |= 1 << ((base + cc) & 15)
			}
		}
	}
	for k := uint8(0); k < h.nExcl; k++ {
		cells |= 1 << (c.excl[k].Uint128().Hi & mask & 15)
	}
	h.shadowCell = cells
}

// shadowed reports whether dst (hi, lo) falls in one of a wide entry's
// exclusions — a special address or a carved-out sub-prefix. Such
// lookups miss, so the excluded destination compiles its own (more
// specific) entry rather than replaying the wide one.
func shadowed(h *flowHot, c *flowCold, hi, lo uint64) bool {
	for k := uint8(0); k < h.nHole; k++ {
		hb := c.holeBits[k]
		if hb <= 64 {
			if (hi^c.holeHi[k])&fpMask(hb) == 0 {
				return true
			}
		} else if hi == c.holeHi[k] && (lo^c.holeLo[k])&fpMask(hb-64) == 0 {
			return true
		}
	}
	for k := uint8(0); k < h.nExcl; k++ {
		if u := c.excl[k].Uint128(); u.Hi == hi && u.Lo == lo {
			return true
		}
	}
	return false
}

// lookup finds a live entry for (ifid, dst), probing once per live key
// width, and returns its slot index (-1 on miss). Wide entries match
// any address sharing the masked hi bits outside their exclusions;
// exact entries require the full destination. The width that hits
// bubbles one position forward, so steady-state traffic resolves
// against its dominant granularity on the first probe.
func (fp *flowCache) lookup(ifid uint32, hi, lo uint64) int {
	if fp.tags == nil {
		return -1
	}
	gen := fp.gen
	for wi := uint8(0); wi < fp.nWidths; wi++ {
		w := fp.widths[wi]
		hw := hi & fpMask(w)
		h := slotHash(ifid, w, hw)
		// Entries narrower than /64 are always wide; at exactly 64 the
		// slot may hold either a wide /64 region or an exact address.
		want, wantExact := fpTagWide(h), fpTagWide(h)
		if w == 64 {
			wantExact = fpTagExact(h, lo)
		}
		for i := uint64(0); i < fpProbe; i++ {
			j := (h + i) & fp.mask
			t := fp.tags[j]
			if t != want && t != wantExact {
				continue
			}
			s := &fp.hot[j]
			if s.gen != gen || s.hi != hw || s.ifid != ifid || s.width != w ||
				(s.flags&fpFlagWide == 0 && s.lo != lo) {
				continue
			}
			if s.flags&fpFlagWide != 0 && s.nExcl|s.nHole != 0 {
				cell := uint16(1) << (hi & (uint64(1)<<s.cellShift - 1))
				if s.shadowCell&cell != 0 && shadowed(s, &fp.cold[j], hi, lo) {
					continue
				}
			}
			if wi > 0 {
				fp.widths[wi-1], fp.widths[wi] = fp.widths[wi], fp.widths[wi-1]
			}
			return int(j)
		}
	}
	return -1
}

// insert stores the (hot, cold) pair and returns its table slot index.
// The table grows when fill passes 40% — or, crucially, whenever a
// probe window is full of live entries: evictions don't raise fill, so
// without the second trigger a saturated table would stall below the
// threshold and churn (every insert killing a live flow) instead of
// growing.
func (fp *flowCache) insert(h *flowHot, c *flowCold) int {
	if fp.hot == nil {
		fp.tags = make([]uint64, fpMinSlots)
		fp.hot = make([]flowHot, fpMinSlots)
		fp.cold = make([]flowCold, fpMinSlots)
		fp.mask = fpMinSlots - 1
	} else if (fp.fill+1)*5 > len(fp.hot)*2 && len(fp.hot) < fpMaxSlots {
		fp.grow()
	}
	for {
		if j, ok := fp.tryPlace(h, c); ok {
			return j
		}
		if len(fp.hot) >= fpMaxSlots {
			return fp.place(h, c) // capped: evict within the window
		}
		fp.grow()
	}
}

// fpTag is the tag the entry will carry, given its slot hash.
func (h *flowHot) fpTag(hash uint64) uint64 {
	if h.wide() {
		return fpTagWide(hash)
	}
	return fpTagExact(hash, h.lo)
}

// setSlot writes the entry into slot j, keeping tag and payload in sync.
func (fp *flowCache) setSlot(j uint64, h *flowHot, c *flowCold) int {
	fp.tags[j] = h.fpTag(slotHash(h.ifid, h.width, h.hi))
	s := &fp.hot[j]
	*s = *h
	s.gen = fp.gen
	fp.cold[j] = *c
	return int(j)
}

// tryPlace stores the entry if its probe window has a dead slot or
// already holds the same flow; ok=false when placing would evict a live
// entry.
func (fp *flowCache) tryPlace(h *flowHot, c *flowCold) (int, bool) {
	hash := slotHash(h.ifid, h.width, h.hi)
	tag := h.fpTag(hash)
	victim := uint64(1) << 63
	for i := uint64(0); i < fpProbe; i++ {
		j := (hash + i) & fp.mask
		s := &fp.hot[j]
		if fp.tags[j] != 0 && s.gen == fp.gen {
			if fp.tags[j] == tag && s.ifid == h.ifid && s.width == h.width &&
				s.hi == h.hi && s.flags&fpFlagWide == h.flags&fpFlagWide &&
				(h.wide() || s.lo == h.lo) {
				return fp.setSlot(j, h, c), true // recompile of the same flow
			}
			continue
		}
		if victim == uint64(1)<<63 {
			victim = j
		}
	}
	if victim == uint64(1)<<63 {
		return 0, false
	}
	fp.fill++
	return fp.setSlot(victim, h, c), true
}

func (fp *flowCache) place(h *flowHot, c *flowCold) int {
	if j, ok := fp.tryPlace(h, c); ok {
		return j
	}
	hash := slotHash(h.ifid, h.width, h.hi)
	return fp.setSlot(hash&fp.mask, h, c) // window full: evict
}

func (fp *flowCache) grow() {
	oldTags, oldHot, oldCold := fp.tags, fp.hot, fp.cold
	gen := fp.gen
	fp.tags = make([]uint64, len(oldHot)*4)
	fp.hot = make([]flowHot, len(oldHot)*4)
	fp.cold = make([]flowCold, len(oldHot)*4)
	fp.mask = uint64(len(fp.hot) - 1)
	fp.fill = 0
	for i := range oldHot {
		if oldTags[i] != 0 && oldHot[i].gen == gen {
			fp.place(&oldHot[i], &oldCold[i])
		}
	}
}

// avoidAddrs returns the width (≥ width) of the largest claimable
// region around dst that keeps every element of addrs out of it;
// addresses sharing dst's full /64 cannot be widened past and join the
// exclusion list instead. ok=false when the exclusion list overflows
// (the claim must then be exact). Routers use this to bound region
// claims by their own interface addresses.
func avoidAddrs(width uint8, dst ipv6.Addr, addrs []ipv6.Addr, excl *[fpExclCap]ipv6.Addr, nExcl *uint8) (uint8, bool) {
	dh := dst.Uint128().Hi
	for _, a := range addrs {
		c := bits.LeadingZeros64(dh ^ a.Uint128().Hi)
		if c >= 64 {
			if a == dst {
				continue // the caller already handled dst itself
			}
			if int(*nExcl) == fpExclCap {
				return width, false
			}
			excl[*nExcl] = a
			*nExcl++
			continue
		}
		if w := uint8(c + 1); w > width {
			width = w
		}
	}
	return width, true
}

// prefixWidth converts a region prefix into a width claim: its length
// when expressible in the top 64 bits, else 0 (exact).
func prefixWidth(p ipv6.Prefix) uint8 {
	if b := p.Bits(); b >= 1 && b <= 64 {
		return uint8(b)
	}
	return 0
}

// fpResult is the outcome of a fast-path attempt.
type fpResult uint8

const (
	// fpMiss: nothing was replayed and no state changed; the caller
	// interprets the delivery normally.
	fpMiss fpResult = iota
	// fpDone: the flow was fully replayed as one fused event.
	fpDone
	// fpContinue: a fused prefix of the path was replayed as one event;
	// the returned delivery continues on the interpreted path.
	fpContinue
)

// fpAttempt tries to serve delivery d from the flow cache, compiling
// the flow on a miss. Called from the pump with the engine lock held
// and the event queue empty.
func (e *Engine) fpAttempt(d delivery) (fpResult, delivery) {
	pkt := d.pkt
	// Same validation as wire.ForwardDst: anything else takes the
	// interpreted path (nodes drop it without touching the cache).
	if len(pkt) < wire.HeaderLen || pkt[0]>>4 != 6 ||
		len(pkt)-wire.HeaderLen < int(binary.BigEndian.Uint16(pkt[4:6])) {
		return fpMiss, d
	}
	ifid := d.to.fpID
	if ifid == 0 {
		return fpMiss, d
	}
	hi := binary.BigEndian.Uint64(pkt[24:32])
	lo := binary.BigEndian.Uint64(pkt[32:40])
	j := e.fp.lookup(ifid, hi, lo)
	cold := j < 0
	var h *flowHot
	var c *flowCold
	if cold {
		h, c = e.compileFlow(d.to, pkt)
	} else {
		h, c = &e.fp.hot[j], &e.fp.cold[j]
	}
	if h.kind == entryNeg {
		e.fp.misses++
		return fpMiss, d
	}
	res, cont := e.fpReplay(h, c, d)
	switch {
	case res == fpMiss || cold:
		e.fp.misses++
	default:
		e.fp.hits++
	}
	return res, cont
}

// compileFlow dry-walks the path a packet delivered at `to` takes to
// dst, recording compilable hops, and installs the resulting entry
// (negative if nothing compiled). No Handle is executed and no state
// mutated: the walk queries CompileStep/CompileTerminal only. The
// entry is built in the engine's scratch pair, so even a flow that
// cannot be cached is compiled without allocating.
func (e *Engine) compileFlow(to *Iface, pkt []byte) (*flowHot, *flowCold) {
	dst := ipv6.AddrFromBytes(pkt[24:40])
	u := dst.Uint128()
	ent := &e.fpScratchH
	cld := &e.fpScratchC
	*ent = flowHot{}
	*cld = flowCold{}
	ent.ifid = to.fpID
	ent.hi, ent.lo = u.Hi, u.Lo
	ent.kind = entryNeg
	ent.flags = fpFlagWide | fpFlagLossless
	ent.width = 1
	hlIn := pkt[7]
	hl := hlIn
	// Visited ingress interfaces, for routing-cycle detection: ins[i]
	// is where the packet is after i crossings.
	var ins [maxCompiledHops + 1]*Iface
	ins[0] = to
	in := to
	for {
		node := in.node
		if _, isEdge := node.(*Edge); isEdge {
			if ent.nf > 0 {
				ent.kind = entryEdge
				ent.term = in
			}
			break
		}
		if hl <= 1 {
			// The hop limit expires at this node before any forwarding.
			if he, ok := node.(hopExpirer); ok {
				if term, ok := he.compileExpiry(in, dst); ok {
					e.compileLoopTerm(ent, cld, in, term, pkt, hlIn,
						int(ent.nf), 0, int(ent.nf))
					break
				}
			}
			ent.flags &^= fpFlagWide
			if ent.nf > 0 {
				ent.kind = entryNode
				ent.term = in
			}
			break
		}
		if ch, ok := node.(CompilableHop); ok {
			if step, ok := ch.CompileStep(in, dst); ok {
				if int(ent.nf) == maxCompiledHops || step.Out.link == nil {
					// Path too long (replay the recorded prefix fused)
					// or egress unconnected (interpreted: vanishes).
					if int(ent.nf) == maxCompiledHops {
						ent.kind = entryNode
						ent.term = in
					}
					break
				}
				applyStepRegion(ent, cld, &step)
				if step.Out.link.loss != 0 {
					ent.flags &^= fpFlagLossless
				}
				cld.fwd[ent.nf] = hopTo(step.Out, step.Forwarded)
				ent.nf++
				hl--
				next := step.Out.link.ends[1-step.Out.end]
				cycle := -1
				for j := 0; j < int(ent.nf); j++ {
					if ins[j] == next {
						cycle = j
						break
					}
				}
				if cycle >= 0 {
					// A routing loop: the packet bounces around the
					// cycle until its hop limit dies. One decrement per
					// crossing, so expiry lands after hlIn-1 crossings
					// at a node fixed by cycle arithmetic.
					p, l := cycle, int(ent.nf)-cycle
					k := int(hlIn) - 1
					exp := ins[p+(k-p)%l]
					if he, ok := exp.node.(hopExpirer); ok {
						if term, ok := he.compileExpiry(exp, dst); ok {
							e.compileLoopTerm(ent, cld, exp, term, pkt, hlIn, p, l, k)
							break
						}
					}
					// Expiry node uncompilable: replay the recorded
					// crossings fused, bounce on interpreted.
					ent.kind = entryNode
					ent.term = next
					break
				}
				ins[ent.nf] = next
				in = next
				continue
			}
		}
		if tc, ok := node.(terminalCompiler); ok {
			if term, ok := tc.CompileTerminal(in, dst); ok {
				e.compileErrorTerm(ent, cld, in, term, pkt)
				break
			}
			// Terminal refused (special address, vulnerable behavior):
			// cache the transit prefix for this destination only.
			ent.flags &^= fpFlagWide
		}
		if ent.nf > 0 {
			ent.kind = entryNode
			ent.term = in
		}
		break
	}
	if ent.kind == entryNeg || ent.kind == entryNode && ent.term != nil && !compilableTerm(ent.term.node) {
		// A terminal outside the capability interfaces may treat
		// different addresses of one region differently; stay exact.
		ent.flags &^= fpFlagWide
	}
	if ent.kind == entryNeg {
		ent.nf = 0
	}
	if ent.wide() && !e.fp.registerWidth(ent.width) {
		ent.flags &^= fpFlagWide // width table saturated: key exactly
	}
	if ent.wide() {
		ent.hi &= fpMask(ent.width)
		buildShadowCells(ent, cld)
	} else {
		// Exact entries are keyed at /64 with the low half compared,
		// and never match a special address or hole.
		ent.width = 64
		ent.nExcl, ent.nHole = 0, 0
		if !e.fp.registerWidth(64) {
			return ent, cld // unkeyable: serve this delivery uncached
		}
	}
	j := e.fp.insert(ent, cld)
	return &e.fp.hot[j], &e.fp.cold[j]
}

// applyStepRegion folds one compiled hop's region claim into the
// entry: the width narrows to the step's (larger width = smaller
// region), exclusions and holes accumulate; any overflow forces the
// entry exact.
func applyStepRegion(h *flowHot, c *flowCold, step *CompiledStep) {
	if step.Width == 0 {
		h.flags &^= fpFlagWide
	} else if step.Width > h.width {
		h.width = step.Width
	}
	if step.NExcl > 0 && !mergeExcl(h, c, step.Excl[:step.NExcl]) {
		h.flags &^= fpFlagWide
	}
	for k := uint8(0); k < step.NHole; k++ {
		if !mergeHole(h, c, step.Holes[k]) {
			h.flags &^= fpFlagWide
		}
	}
}

// applyTermRegion is applyStepRegion for a compiled terminal.
func applyTermRegion(h *flowHot, c *flowCold, term *compiledTerm) {
	if term.width == 0 {
		h.flags &^= fpFlagWide
	} else if term.width > h.width {
		h.width = term.width
	}
	if term.nExcl > 0 && !mergeExcl(h, c, term.excl[:term.nExcl]) {
		h.flags &^= fpFlagWide
	}
	for k := uint8(0); k < term.nHole; k++ {
		if !mergeHole(h, c, term.holes[k]) {
			h.flags &^= fpFlagWide
		}
	}
}

// mergeHole folds an excluded sub-prefix into the entry,
// deduplicating; false when the inline list overflows (the entry must
// then be exact).
func mergeHole(h *flowHot, c *flowCold, p ipv6.Prefix) bool {
	b := p.Bits()
	if b < 1 || b > 128 {
		return false
	}
	u := p.Addr().Uint128()
	for k := uint8(0); k < h.nHole; k++ {
		if c.holeBits[k] == uint8(b) && c.holeHi[k] == u.Hi && c.holeLo[k] == u.Lo {
			return true
		}
	}
	if int(h.nHole) == fpHoleCap {
		return false
	}
	c.holeBits[h.nHole] = uint8(b)
	c.holeHi[h.nHole] = u.Hi
	c.holeLo[h.nHole] = u.Lo
	h.nHole++
	return true
}

// mergeExcl folds addrs into the entry's exclusion list, deduplicating;
// false when the inline list overflows (the entry must then be exact).
func mergeExcl(h *flowHot, c *flowCold, addrs []ipv6.Addr) bool {
outer:
	for _, a := range addrs {
		for k := uint8(0); k < h.nExcl; k++ {
			if c.excl[k] == a {
				continue outer
			}
		}
		if int(h.nExcl) == fpExclCap {
			return false
		}
		c.excl[h.nExcl] = a
		h.nExcl++
	}
	return true
}

func compilableTerm(n Node) bool {
	_, ok := n.(terminalCompiler)
	return ok
}

// compileReply records the error's return path from termIn back to an
// Edge into the cold tail's rev list (rev[0] is the emission out the
// arrival interface, the rest forwarding crossings). false when any
// reverse hop is uncompilable; the lossless flag may have been cleared
// regardless, which is safe (the transmit-path replay is exact, just
// slower).
func compileReply(h *flowHot, c *flowCold, termIn *Iface, rdst ipv6.Addr) bool {
	if termIn.link == nil {
		return false
	}
	c.rev[0] = hopTo(termIn, nil)
	if termIn.link.loss != 0 {
		h.flags &^= fpFlagLossless
	}
	nr := 1
	rin := termIn.link.ends[1-termIn.end]
	for {
		node := rin.node
		if _, isEdge := node.(*Edge); isEdge {
			c.edge = rin
			break
		}
		ch, ok := node.(CompilableHop)
		if !ok {
			return false
		}
		step, ok := ch.CompileStep(rin, rdst)
		if !ok || nr == maxCompiledHops || step.Out.link == nil {
			return false
		}
		if step.Out.link.loss != 0 {
			h.flags &^= fpFlagLossless
		}
		c.rev[nr] = hopTo(step.Out, step.Forwarded)
		nr++
		rin = step.Out.link.ends[1-step.Out.end]
	}
	h.nr = uint8(nr)
	return true
}

// compileErrorTerm upgrades the entry to a fully fused error round
// trip: the terminal's compiled ICMPv6 error plus the compiled reply
// path back to an Edge. Any obstacle downgrades to entryNode
// (interpreted terminal).
func (e *Engine) compileErrorTerm(h *flowHot, c *flowCold, termIn *Iface, term compiledTerm, pkt []byte) {
	// The reply path is compiled for this probe's source; replay guards
	// on it and falls back to the interpreted terminal for other
	// sources.
	rdst := ipv6.AddrFromBytes(pkt[8:24])
	if !compileReply(h, c, termIn, rdst) {
		if h.nf > 0 {
			h.kind = entryNode
			h.term = termIn
		}
		return
	}
	h.kind = entryError
	h.term = termIn
	h.errType, h.errCode = term.typ, term.code
	c.errSrc = term.src
	h.gate = term.gate
	c.replySrc = rdst
	applyTermRegion(h, c, &term)
}

// compileLoopTerm upgrades the entry to a fused hop-limit-expiry round
// trip: prefix crossings (fwd[:p]), a cycle of l crossings (fwd[p:p+l],
// zero for a plain short-hop-limit path), cross total crossings until
// the Time Exceeded fires at expIn's node, and the compiled reply. Only
// valid for packets arriving with exactly hlIn; replay guards on it.
// Any obstacle downgrades to entryNode (bounces stay interpreted).
func (e *Engine) compileLoopTerm(h *flowHot, c *flowCold, expIn *Iface, term compiledTerm, pkt []byte, hlIn uint8, p, l, cross int) {
	rdst := ipv6.AddrFromBytes(pkt[8:24])
	if !compileReply(h, c, expIn, rdst) {
		if h.nf > 0 {
			h.kind = entryNode
			h.term = expIn
		}
		return
	}
	h.kind = entryLoop
	h.term = expIn
	h.errType, h.errCode = term.typ, term.code
	c.errSrc = term.src
	h.gate = term.gate
	c.replySrc = rdst
	h.hlIn = hlIn
	h.loopStart, h.loopLen = uint8(p), uint8(l)
	h.loopCross = uint16(cross)
	applyTermRegion(h, c, &term)
}

// fpReplay replays a compiled entry for delivery d. The contract with
// the interpreter: every link-stat charge, RNG draw, fault consult, tap
// call, hop-limit decrement, transit-counter increment, error-gate
// decision and buffer-pool movement happens in exactly the order
// sequential forwarding would produce.
func (e *Engine) fpReplay(ent *flowHot, cld *flowCold, d delivery) (fpResult, delivery) {
	pkt := d.pkt
	// A flow tracer never forces the interpreted path: the plain loops
	// below synthesize the crossing sequence from the compiled entry.
	e.traceFlowStart(pkt)
	if ent.kind == entryLoop {
		return e.fpReplayLoop(ent, cld, d)
	}
	// One fused event can use the pure-add charging loop only when
	// nothing can observe or perturb individual crossings.
	plain := ent.lossless() && e.fault == nil && e.tap == nil

	in := d.to
	for j := uint8(0); j < ent.nf; j++ {
		if pkt[7] <= 1 {
			// Hop limit expires at this node: its interpreted Handle
			// emits the Time Exceeded.
			if j == 0 {
				return fpMiss, d
			}
			return fpContinue, delivery{to: in, pkt: pkt}
		}
		pkt[7]--
		h := &cld.fwd[j]
		if h.fwd != nil {
			*h.fwd++
		}
		if plain {
			l := h.out.link
			st := &l.stats[h.out.end]
			n := uint64(len(pkt))
			st.Packets++
			st.Bytes += n
			e.txPackets++
			e.txBytes += n
			e.seq++
			if e.trOn {
				e.traceSynthLocked(h.out, pkt[7])
			}
			in = l.ends[1-h.out.end]
		} else {
			nd, ok := e.transmitLocked(h.out, pkt, true)
			if !ok {
				// Dropped, deferred or duplicated: the queue owns
				// whatever survives; the fused event ends here.
				return fpDone, delivery{}
			}
			pkt = nd.pkt
			in = nd.to
		}
	}

	switch ent.kind {
	case entryEdge:
		ent.term.node.Handle(ent.term, pkt) // Edge retains; returns nil
		return fpDone, delivery{}
	case entryNode:
		return fpContinue, delivery{to: in, pkt: pkt}
	}

	// entryError: the terminal's guards, in Handle's order. Bailing
	// here hands the packet to the terminal's interpreted Handle, which
	// reaches the same decision point with identical state.
	bail := func() (fpResult, delivery) {
		if ent.nf == 0 {
			return fpMiss, d
		}
		return fpContinue, delivery{to: in, pkt: pkt}
	}
	if pkt[7] <= 1 {
		return bail() // interpreted Time Exceeded at the terminal
	}
	if binary.BigEndian.Uint64(pkt[8:16]) != cld.replySrc.Uint128().Hi ||
		binary.BigEndian.Uint64(pkt[16:24]) != cld.replySrc.Uint128().Lo {
		return bail() // reply path compiled for a different source
	}
	pkt[7]--
	if !ent.gate.allow() {
		e.putBufLocked(pkt)
		return fpDone, delivery{}
	}
	if isICMPError(pkt) {
		// RFC 4443 2.4(e): no errors about errors; the interpreter
		// refunds the gate budget in this case.
		ent.gate.generated--
		e.putBufLocked(pkt)
		return fpDone, delivery{}
	}
	reply := e.fpBuildError(ent, cld, pkt)
	e.putBufLocked(pkt) // the probe's delivery lifecycle ends at the terminal
	return e.fpReplayReverse(ent, cld, reply, plain)
}

// fpReplayReverse drives the compiled error reply from the terminal
// back to the Edge and delivers it inline.
func (e *Engine) fpReplayReverse(ent *flowHot, cld *flowCold, reply []byte, plain bool) (fpResult, delivery) {
	rin := ent.term
	for j := uint8(0); j < ent.nr; j++ {
		if j > 0 {
			if reply[7] <= 1 {
				return fpContinue, delivery{to: rin, pkt: reply}
			}
			reply[7]--
			if cld.rev[j].fwd != nil {
				*cld.rev[j].fwd++
			}
		}
		h := &cld.rev[j]
		if plain {
			l := h.out.link
			st := &l.stats[h.out.end]
			n := uint64(len(reply))
			st.Packets++
			st.Bytes += n
			e.txPackets++
			e.txBytes += n
			e.seq++
			if e.trOn {
				e.traceSynthLocked(h.out, reply[7])
			}
			rin = l.ends[1-h.out.end]
		} else {
			nd, ok := e.transmitLocked(h.out, reply, true)
			if !ok {
				return fpDone, delivery{}
			}
			reply = nd.pkt
			rin = nd.to
		}
	}
	cld.edge.node.Handle(cld.edge, reply) // Edge retains; returns nil
	return fpDone, delivery{}
}

// fpReplayLoop replays a hop-limit-expiry entry: the acyclic prefix
// plus however many turns of the recorded cycle the packet's hop limit
// affords, the expiring node's Time Exceeded, and the fused reply. On a
// lossless fault-free engine the dozens of bounce crossings are charged
// arithmetically — per recorded hop, not per crossing — in one fused
// event; otherwise each crossing runs through transmitLocked so every
// fault consult, RNG draw and tap call happens in interpreted order.
func (e *Engine) fpReplayLoop(ent *flowHot, cld *flowCold, d delivery) (fpResult, delivery) {
	pkt := d.pkt
	if pkt[7] != ent.hlIn {
		// Compiled for a different incoming hop limit (expiry would
		// land elsewhere): interpret this packet.
		return fpMiss, d
	}
	if binary.BigEndian.Uint64(pkt[8:16]) != cld.replySrc.Uint128().Hi ||
		binary.BigEndian.Uint64(pkt[16:24]) != cld.replySrc.Uint128().Lo {
		return fpMiss, d // reply path compiled for a different source
	}
	cross := int(ent.loopCross)
	plain := ent.lossless() && e.fault == nil && e.tap == nil
	if plain {
		p, l := int(ent.loopStart), int(ent.loopLen)
		n := uint64(len(pkt))
		for i := 0; i < int(ent.nf); i++ {
			cnt := loopHopCount(i, p, l, cross)
			if cnt == 0 {
				continue
			}
			h := &cld.fwd[i]
			if h.fwd != nil {
				*h.fwd += cnt
			}
			lk := h.out.link
			st := &lk.stats[h.out.end]
			st.Packets += cnt
			st.Bytes += cnt * n
			e.txPackets += cnt
			e.txBytes += cnt * n
		}
		e.seq += uint64(cross)
		if e.trOn {
			e.traceLoopCrossingsLocked(ent, cld, ent.hlIn, cross)
		}
		pkt[7] = ent.hlIn - uint8(cross) // what the expiring node sees
	} else {
		for j := 0; j < cross; j++ {
			i := j
			if p := int(ent.loopStart); j >= p {
				i = p + (j-p)%int(ent.loopLen)
			}
			pkt[7]--
			h := &cld.fwd[i]
			if h.fwd != nil {
				*h.fwd++
			}
			nd, ok := e.transmitLocked(h.out, pkt, true)
			if !ok {
				// Dropped, deferred or duplicated mid-bounce: the queue
				// owns whatever survives.
				return fpDone, delivery{}
			}
			pkt = nd.pkt
		}
	}
	// The expiring node's guards, in Handle's order (the hop limit is
	// exhausted by construction, so the error path is unconditional).
	if !ent.gate.allow() {
		e.putBufLocked(pkt)
		return fpDone, delivery{}
	}
	if isICMPError(pkt) {
		// RFC 4443 2.4(e): no errors about errors; the interpreter
		// refunds the gate budget in this case.
		ent.gate.generated--
		e.putBufLocked(pkt)
		return fpDone, delivery{}
	}
	reply := e.fpBuildError(ent, cld, pkt)
	e.putBufLocked(pkt)
	return e.fpReplayReverse(ent, cld, reply, plain)
}

// loopHopCount is how many times recorded hop i is crossed when a loop
// entry with acyclic prefix p and cycle length l expires after cross
// total crossings.
func loopHopCount(i, p, l, cross int) uint64 {
	if i < p {
		if i < cross {
			return 1
		}
		return 0
	}
	q := cross - p
	cnt := uint64(q / l)
	if i-p < q%l {
		cnt++
	}
	return cnt
}

// fpBuildError produces the terminal's ICMPv6 error for the invoking
// packet. The first replay builds it through the wire builders
// (byte-exact by construction) and captures its headers as the entry's
// template; later replays copy the 48-byte header, splice the invoking
// packet after it, and finish the checksum from the cached
// constant-region sum.
func (e *Engine) fpBuildError(ent *flowHot, cld *flowCold, pkt []byte) []byte {
	const invOff = fpTmplLen
	n := len(pkt)
	if ent.hasTmpl() && int(ent.probeLen) == n {
		out := e.getBufLocked(invOff + n)
		copy(out[:invOff], cld.tmpl[:])
		copy(out[invOff:], pkt)
		cs := wire.FoldSum(cld.tmplSum + wire.SumWords(pkt))
		binary.BigEndian.PutUint16(out[invOff-6:invOff-4], cs)
		return out
	}
	scratch := e.getBufLocked(wire.ErrorLen(pkt))
	rdst := ipv6.AddrFromBytes(pkt[8:24])
	var out []byte
	if ent.errType == wire.ICMPTimeExceeded {
		out, _ = wire.AppendTimeExceeded(scratch, cld.errSrc, rdst, wire.MaxHopLimit, pkt)
	} else {
		out, _ = wire.AppendDestUnreach(scratch, cld.errSrc, rdst, wire.MaxHopLimit, ent.errCode, pkt)
	}
	if len(out) == invOff+n {
		// Untruncated: cache the headers as the template. The constant
		// checksum region is the pseudo-header plus the 8-byte ICMPv6
		// header with a zeroed checksum — of which only type and code
		// are non-zero.
		copy(cld.tmpl[:], out[:invOff])
		ent.flags |= fpFlagTmpl
		ent.probeLen = uint16(n)
		cld.tmplSum = wire.PseudoSum(cld.errSrc, rdst, wire.ProtoICMPv6, len(out)-wire.HeaderLen) +
			uint64(ent.errType)<<8 + uint64(ent.errCode)
	}
	return out
}
