package netsim

import (
	"testing"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// v4Net: scanner(edge) -- v4 ISP router -- NAT gateway (public addr,
// private hosts behind it).
type v4Net struct {
	eng     *Engine
	scanner *Edge
	isp     *V4Router
	nat     *NATGateway
	public  wire.IPv4Addr
	private wire.IPv4Addr
	scanV4  wire.IPv4Addr
}

func buildV4Net(t *testing.T) *v4Net {
	t.Helper()
	n := &v4Net{
		eng:     New(9),
		public:  wire.IPv4AddrFrom(203, 0, 113, 42),
		private: wire.IPv4AddrFrom(192, 168, 1, 10),
		scanV4:  wire.IPv4AddrFrom(198, 51, 100, 7),
	}
	n.scanner = NewEdge("scanner4", ipv6.V4Mapped(uint32(n.scanV4)))
	n.isp = NewV4Router("isp4")
	n.nat = NewNATGateway("home-nat", n.public, []wire.IPv4Addr{n.private})

	up := n.isp.AddIface4(wire.IPv4AddrFrom(198, 51, 100, 1), "isp:up")
	down := n.isp.AddIface4(wire.IPv4AddrFrom(203, 0, 113, 1), "isp:down")
	n.eng.Connect(n.scanner.Iface(), up, 0)
	n.eng.Connect(down, n.nat.WAN(), 0)
	n.isp.AddRoute4(n.public, 32, down)
	n.isp.AddRoute4(n.scanV4, 32, up)
	return n
}

func (n *v4Net) ping(t *testing.T, dst wire.IPv4Addr, ttl uint8) []*wire.Summary4 {
	t.Helper()
	pkt, err := wire.BuildEchoRequest4(n.scanV4, dst, ttl, 0x77, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	n.eng.Inject(n.scanner.Iface(), pkt)
	var out []*wire.Summary4
	for _, raw := range n.scanner.Drain() {
		s, err := wire.ParsePacket4(raw)
		if err != nil {
			t.Fatalf("bad packet: %v", err)
		}
		out = append(out, s)
	}
	return out
}

func TestNATPublicAddressAnswers(t *testing.T) {
	n := buildV4Net(t)
	replies := n.ping(t, n.public, 64)
	if len(replies) != 1 || replies[0].ICMP.Type != wire.ICMP4EchoReply {
		t.Fatalf("replies = %+v", replies)
	}
	if replies[0].IP.Src != n.public {
		t.Errorf("reply from %s", replies[0].IP.Src)
	}
}

// TestNATHidesPrivateHosts is the paper's Section II contrast: with NAT
// "there is no way to send a packet directly to an internal address from
// outside" — the probe draws at most a network-unreachable from the
// provider, never anything from the home network.
func TestNATHidesPrivateHosts(t *testing.T) {
	n := buildV4Net(t)
	replies := n.ping(t, n.private, 64)
	for _, r := range replies {
		if r.IP.Src == n.public || r.IP.Src == n.private {
			t.Errorf("home network leaked a reply from %s", r.IP.Src)
		}
		if r.ICMP.Type == wire.ICMP4EchoReply {
			t.Errorf("private host answered through NAT")
		}
	}
}

func TestV4RouterUnreachable(t *testing.T) {
	n := buildV4Net(t)
	replies := n.ping(t, wire.IPv4AddrFrom(203, 0, 113, 99), 64)
	if len(replies) != 1 || replies[0].ICMP.Type != wire.ICMP4DestUnreach {
		t.Fatalf("replies = %+v", replies)
	}
}

func TestV4TTLExceeded(t *testing.T) {
	n := buildV4Net(t)
	replies := n.ping(t, n.public, 1)
	if len(replies) != 1 || replies[0].ICMP.Type != wire.ICMP4TimeExceeded {
		t.Fatalf("replies = %+v", replies)
	}
	// TTL 2 reaches the gateway.
	replies = n.ping(t, n.public, 2)
	if len(replies) != 1 || replies[0].ICMP.Type != wire.ICMP4EchoReply {
		t.Fatalf("replies = %+v", replies)
	}
}

func TestV4RouterOwnAddress(t *testing.T) {
	n := buildV4Net(t)
	replies := n.ping(t, wire.IPv4AddrFrom(198, 51, 100, 1), 64)
	if len(replies) != 1 || replies[0].ICMP.Type != wire.ICMP4EchoReply {
		t.Fatalf("replies = %+v", replies)
	}
}

func TestNATDropsNonEcho(t *testing.T) {
	n := buildV4Net(t)
	// A UDP packet (protocol 17) to the public address: no mapping, no
	// reply, no error (consumer NATs drop silently).
	h := wire.IPv4Header{TTL: 64, Protocol: 17, Src: n.scanV4, Dst: n.public}
	pkt, err := h.Marshal([]byte{0, 53, 0, 53, 0, 8, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	n.eng.Inject(n.scanner.Iface(), pkt)
	if got := len(n.scanner.Drain()); got != 0 {
		t.Errorf("NAT answered a UDP probe with %d packets", got)
	}
}

func TestDecTTLKeepsChecksumValid(t *testing.T) {
	pkt, err := wire.BuildEchoRequest4(wire.IPv4AddrFrom(1, 2, 3, 4), wire.IPv4AddrFrom(5, 6, 7, 8), 64, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		decTTL(pkt)
		if _, _, err := wire.ParseIPv4(pkt); err != nil {
			t.Fatalf("after %d decrements: %v", i+1, err)
		}
	}
	h, _, err := wire.ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.TTL != 54 {
		t.Errorf("TTL = %d", h.TTL)
	}
}
