package netsim

import (
	"repro/internal/ipv6"
	"repro/internal/lpm"
	"repro/internal/wire"
)

// isICMPError reports whether pkt is an ICMPv6 error message (type <
// 128); RFC 4443 section 2.4(e) forbids generating errors in response to
// them, which is what prevents error storms in loop scenarios.
func isICMPError(pkt []byte) bool {
	if len(pkt) < wire.HeaderLen+1 {
		return false
	}
	return pkt[6] == wire.ProtoICMPv6 && pkt[wire.HeaderLen] < 128
}

// decrementHopLimit applies RFC 8200 section 3 hop-limit processing in
// place. It returns false if the packet must be discarded (hop limit
// exhausted); the caller is then responsible for the Time Exceeded error.
func decrementHopLimit(pkt []byte) bool {
	if pkt[7] <= 1 {
		return false
	}
	pkt[7]--
	return true
}

// icmpError builds an ICMPv6 error packet from the given source address
// in response to the invoking packet, or nil if policy forbids one. The
// error is built into a buffer borrowed from the engine pool of the
// interface it arrived on (node handlers run with the engine lock held);
// the buffer re-enters the pool through the normal delivery lifecycle.
func icmpError(in *Iface, src ipv6.Addr, invoking []byte, typ, code uint8) []byte {
	if isICMPError(invoking) {
		return nil
	}
	hdr, _, err := wire.ParseIPv6(invoking)
	if err != nil {
		return nil
	}
	var scratch []byte
	if in != nil && in.eng != nil {
		scratch = in.eng.getBufLocked(wire.ErrorLen(invoking))
	}
	var out []byte
	switch typ {
	case wire.ICMPDestUnreach:
		out, err = wire.AppendDestUnreach(scratch, src, hdr.Src, wire.MaxHopLimit, code, invoking)
	case wire.ICMPTimeExceeded:
		out, err = wire.AppendTimeExceeded(scratch, src, hdr.Src, wire.MaxHopLimit, invoking)
	default:
		return nil
	}
	if err != nil {
		return nil
	}
	return out
}

// ErrorPolicy controls a node's ICMPv6 error generation, modelling the
// ISP filtering and rate-limiting policies the paper's Section IV-C
// discusses as discovery limitations.
type ErrorPolicy struct {
	// Suppress drops all locally generated ICMPv6 errors (an ISP that
	// filters outbound unreachables).
	Suppress bool
	// Budget, when positive, caps the number of errors the node will
	// generate over its lifetime (a crude rate limiter; RFC 4443 2.4(f)).
	Budget int
}

// errorGate tracks policy state for one node.
type errorGate struct {
	policy    ErrorPolicy
	generated int
}

// allow reports whether one more error may be generated, consuming
// budget.
func (g *errorGate) allow() bool {
	if g.policy.Suppress {
		return false
	}
	if g.policy.Budget > 0 && g.generated >= g.policy.Budget {
		return false
	}
	g.generated++
	return true
}

// allowN is allow for a batch of k error draws against one gate: it
// returns how many of the k may be generated — budget is consumed in
// order, so the first allowN(k) callers' probes draw errors and the
// rest are suppressed, exactly as k sequential allow calls would
// decide.
func (g *errorGate) allowN(k int) int {
	if g.policy.Suppress || k <= 0 {
		return 0
	}
	if g.policy.Budget > 0 {
		rem := g.policy.Budget - g.generated
		if rem <= 0 {
			return 0
		}
		if k > rem {
			k = rem
		}
	}
	g.generated += k
	return k
}

// RouteKind discriminates routing-table entries.
type RouteKind int

// Route entry kinds.
const (
	RouteForward RouteKind = iota + 1 // send out Iface
	RouteReject                       // respond destination unreachable (no route)
)

// Route is one entry in a Router's table.
type Route struct {
	Kind RouteKind
	Out  *Iface // for RouteForward
}

// Router is a generic LPM-table router: the model for Internet core and
// transit routers. It answers echo requests addressed to its interfaces
// and generates RFC 4443 errors.
type Router struct {
	name  string
	table *lpm.Table[Route]
	ifs   []*Iface
	addrs []ipv6.Addr // interface addresses; linear scan beats a map at router arity
	gate  errorGate
	sc    emitScratch

	// CountForwarded tallies transit packets, used by the loop-attack
	// experiments to measure amplification.
	CountForwarded uint64
}

var _ Node = (*Router)(nil)

// NewRouter creates a router with an empty routing table.
func NewRouter(name string, policy ErrorPolicy) *Router {
	return &Router{
		name:  name,
		table: lpm.New[Route](),
		gate:  errorGate{policy: policy},
	}
}

// Name implements Node.
func (r *Router) Name() string { return r.name }

// AddIface registers (and returns) a new interface with the given
// address. Connect it via Engine.Connect.
func (r *Router) AddIface(addr ipv6.Addr, name string) *Iface {
	ifc := NewIface(r, addr, name)
	r.ifs = append(r.ifs, ifc)
	r.addrs = append(r.addrs, addr)
	bumpFlows(r.ifs)
	return ifc
}

// AddRoute installs a forwarding route.
func (r *Router) AddRoute(p ipv6.Prefix, out *Iface) {
	r.table.Insert(p, Route{Kind: RouteForward, Out: out})
	bumpFlows(r.ifs)
}

// AddRejectRoute installs an unreachable route.
func (r *Router) AddRejectRoute(p ipv6.Prefix) {
	r.table.Insert(p, Route{Kind: RouteReject})
	bumpFlows(r.ifs)
}

// bumpFlows invalidates compiled flows on every engine the node's
// interfaces are connected to, deduplicating the common single-engine
// case. Node mutators call it so a routing change can never let a stale
// compiled path replay.
func bumpFlows(ifs []*Iface) {
	var last *Engine
	for _, ifc := range ifs {
		if ifc.eng != nil && ifc.eng != last {
			ifc.eng.InvalidateFlows()
			last = ifc.eng
		}
	}
}

// isLocal reports whether dst is one of the router's interface addresses.
func (r *Router) isLocal(dst ipv6.Addr) bool {
	for _, a := range r.addrs {
		if a == dst {
			return true
		}
	}
	return false
}

// Handle implements Node.
func (r *Router) Handle(in *Iface, pkt []byte) []Emission {
	dst, ok := wire.ForwardDst(pkt)
	if !ok {
		return nil
	}
	if r.isLocal(dst) {
		return respondLocalEcho(&r.sc, in, dst, pkt)
	}
	if !decrementHopLimit(pkt) {
		return r.emitError(in, pkt, wire.ICMPTimeExceeded, wire.TimeExceedHopLimit)
	}
	route, ok := r.table.Lookup(dst)
	if !ok || route.Kind == RouteReject {
		return r.emitError(in, pkt, wire.ICMPDestUnreach, wire.UnreachNoRoute)
	}
	r.CountForwarded++
	return r.sc.emit(route.Out, pkt)
}

// regionClaim computes the width of the largest region around dst over
// which the routing table's decision is uniform, bounded away from the
// router's own addresses (same-/64 ones are excluded instead). 0 means
// the claim must be exact.
func (r *Router) regionClaim(dst ipv6.Addr, excl *[fpExclCap]ipv6.Addr, nExcl *uint8) uint8 {
	w := r.table.UniformWidth(dst)
	if w > 64 {
		return 0
	}
	width, ok := avoidAddrs(uint8(w), dst, r.addrs, excl, nExcl)
	if !ok {
		*nExcl = 0
		return 0
	}
	return width
}

// CompileStep implements CompilableHop: a Router is statically
// forwarding for dst when dst is not local and the table yields a
// forwarding route. The claimed region is the uniform neighborhood of
// dst in the routing table — the whole matched prefix when nothing
// more specific is installed nearby.
func (r *Router) CompileStep(in *Iface, dst ipv6.Addr) (CompiledStep, bool) {
	if r.isLocal(dst) {
		return CompiledStep{}, false
	}
	route, ok := r.table.Lookup(dst)
	if !ok || route.Kind != RouteForward || route.Out == nil {
		return CompiledStep{}, false
	}
	step := CompiledStep{Out: route.Out, Forwarded: &r.CountForwarded}
	step.Width = r.regionClaim(dst, &step.Excl, &step.NExcl)
	return step, true
}

// CompileTerminal implements terminalCompiler: a destination with no
// route (or a reject route) draws Destination Unreachable / no route.
func (r *Router) CompileTerminal(in *Iface, dst ipv6.Addr) (compiledTerm, bool) {
	if r.isLocal(dst) {
		return compiledTerm{}, false
	}
	route, ok := r.table.Lookup(dst)
	if ok && route.Kind != RouteReject {
		return compiledTerm{}, false
	}
	t := compiledTerm{
		typ:  wire.ICMPDestUnreach,
		code: wire.UnreachNoRoute,
		src:  in.addr,
		gate: &r.gate,
	}
	t.width = r.regionClaim(dst, &t.excl, &t.nExcl)
	return t, true
}

// compileExpiry implements hopExpirer: Time Exceeded from the arrival
// interface's address for any non-local destination. The decision
// precedes routing entirely, so the claim is bounded only by the
// router's own addresses.
func (r *Router) compileExpiry(in *Iface, dst ipv6.Addr) (compiledTerm, bool) {
	if r.isLocal(dst) {
		return compiledTerm{}, false
	}
	t := compiledTerm{
		typ: wire.ICMPTimeExceeded, code: wire.TimeExceedHopLimit,
		src:  in.addr,
		gate: &r.gate,
	}
	if width, ok := avoidAddrs(1, dst, r.addrs, &t.excl, &t.nExcl); ok {
		t.width = width
	} else {
		t.nExcl = 0
	}
	return t, true
}

// emitError generates an ICMPv6 error from the incoming interface's
// address, subject to the node's error policy.
func (r *Router) emitError(in *Iface, invoking []byte, typ, code uint8) []Emission {
	if !r.gate.allow() {
		return nil
	}
	out := icmpError(in, in.addr, invoking, typ, code)
	if out == nil {
		r.gate.generated-- // nothing was sent; refund the budget
		return nil
	}
	return r.sc.emit(in, out)
}

// respondLocalEcho answers an ICMPv6 Echo Request addressed to self with
// an Echo Reply out the arrival interface. Non-echo local traffic is
// silently dropped (core routers in this simulator expose no services).
func respondLocalEcho(sc *emitScratch, in *Iface, self ipv6.Addr, pkt []byte) []Emission {
	s := &sc.sum
	if err := s.Parse(pkt); err != nil || s.ICMP == nil || s.ICMP.Type != wire.ICMPEchoRequest {
		return nil
	}
	e, err := wire.ParseEcho(s.ICMP.Body)
	if err != nil {
		return nil
	}
	// Build the reply into a pooled engine buffer (the reply mirrors the
	// request, so the request's length is exactly the reply's).
	var scratch []byte
	if in != nil && in.eng != nil {
		scratch = in.eng.getBufLocked(len(pkt))
	}
	reply, err := wire.AppendEchoReply(scratch, self, s.IP.Src, 64, e.ID, e.Seq, e.Data)
	if err != nil {
		return nil
	}
	return sc.emit(in, reply)
}
