package netsim

import (
	"testing"

	"repro/internal/ipv6"
)

// recorder is a sink node that remembers payloads in arrival order.
type recorder struct {
	name string
	got  [][]byte
}

func (r *recorder) Name() string { return r.name }
func (r *recorder) Handle(in *Iface, pkt []byte) []Emission {
	r.got = append(r.got, append([]byte(nil), pkt...))
	return nil
}

// hookPair wires an injector interface to a recorder node.
func hookPair(e *Engine) (*Iface, *recorder) {
	src := &recorder{name: "src"}
	sink := &recorder{name: "sink"}
	a := NewIface(src, ipv6.MustParseAddr("fd00::1"), "a")
	b := NewIface(sink, ipv6.MustParseAddr("fd00::2"), "b")
	e.Connect(a, b, 0)
	return a, sink
}

func TestTapObservesTransmissions(t *testing.T) {
	e := New(1)
	a, sink := hookPair(e)
	var seen, dropped int
	e.SetTap(func(from *Iface, pkt []byte, wasDropped bool) {
		seen++
		if wasDropped {
			dropped++
		}
	})
	e.Inject(a, []byte{1})
	e.Inject(a, []byte{2})
	if seen != 2 || dropped != 0 {
		t.Errorf("tap saw %d transmissions (%d dropped), want 2 (0)", seen, dropped)
	}
	if len(sink.got) != 2 {
		t.Errorf("sink received %d packets", len(sink.got))
	}
	// Removing the tap stops observation.
	e.SetTap(nil)
	e.Inject(a, []byte{3})
	if seen != 2 {
		t.Errorf("tap saw %d after removal", seen)
	}
}

func TestFaultDropDiscardsButCountsStats(t *testing.T) {
	e := New(1)
	a, sink := hookPair(e)
	e.SetFault(func(from *Iface, pkt []byte) FaultOutcome {
		return FaultOutcome{Drop: true}
	})
	var taggedDropped bool
	e.SetTap(func(from *Iface, pkt []byte, wasDropped bool) { taggedDropped = wasDropped })
	e.Inject(a, []byte{1})
	if len(sink.got) != 0 {
		t.Errorf("dropped packet delivered")
	}
	if !taggedDropped {
		t.Error("tap not told about the drop")
	}
	if got := a.link.StatsFrom(a).Packets; got != 1 {
		t.Errorf("link stats = %d, want 1 (drop still counted as carried)", got)
	}
}

func TestFaultDuplicateDeliversCopies(t *testing.T) {
	e := New(1)
	a, sink := hookPair(e)
	e.SetFault(func(from *Iface, pkt []byte) FaultOutcome {
		return FaultOutcome{Deliveries: []int{0, 0}}
	})
	e.Inject(a, []byte{7})
	if len(sink.got) != 2 {
		t.Fatalf("duplication delivered %d packets, want 2", len(sink.got))
	}
	// Copies must be independent buffers: mutating one must not affect
	// the other (nodes mutate packets in place).
	sink.got[0][0] = 99
	if sink.got[1][0] != 7 {
		t.Error("duplicate shares the original packet buffer")
	}
	if got := a.link.StatsFrom(a).Packets; got != 2 {
		t.Errorf("link stats = %d, want 2 (each copy crosses the link)", got)
	}
}

func TestFaultReorderDefersDelivery(t *testing.T) {
	e := New(1)
	a, sink := hookPair(e)
	// Defer only the first packet past the next two deliveries.
	first := true
	e.SetFault(func(from *Iface, pkt []byte) FaultOutcome {
		if first {
			first = false
			return FaultOutcome{Deliveries: []int{2}}
		}
		return FaultOutcome{}
	})
	e.InjectBatch(a, [][]byte{{1}, {2}, {3}})
	want := []byte{2, 3, 1}
	if len(sink.got) != 3 {
		t.Fatalf("delivered %d packets", len(sink.got))
	}
	for i, w := range want {
		if sink.got[i][0] != w {
			t.Errorf("arrival %d = %d, want %d", i, sink.got[i][0], w)
		}
	}
}

func TestNoFaultKeepsFIFO(t *testing.T) {
	e := New(1)
	a, sink := hookPair(e)
	e.InjectBatch(a, [][]byte{{1}, {2}, {3}, {4}})
	for i, pkt := range sink.got {
		if pkt[0] != byte(i+1) {
			t.Fatalf("FIFO broken without faults: arrival %d = %d", i, pkt[0])
		}
	}
}
