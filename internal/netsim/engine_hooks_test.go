package netsim

import (
	"testing"

	"repro/internal/ipv6"
)

// recorder is a sink node that remembers payloads in arrival order.
type recorder struct {
	name string
	got  [][]byte
}

func (r *recorder) Name() string { return r.name }
func (r *recorder) Handle(in *Iface, pkt []byte) []Emission {
	r.got = append(r.got, append([]byte(nil), pkt...))
	return nil
}

// hookPair wires an injector interface to a recorder node.
func hookPair(e *Engine) (*Iface, *recorder) {
	src := &recorder{name: "src"}
	sink := &recorder{name: "sink"}
	a := NewIface(src, ipv6.MustParseAddr("fd00::1"), "a")
	b := NewIface(sink, ipv6.MustParseAddr("fd00::2"), "b")
	e.Connect(a, b, 0)
	return a, sink
}

func TestTapObservesTransmissions(t *testing.T) {
	e := New(1)
	a, sink := hookPair(e)
	var seen, dropped int
	e.SetTap(func(from *Iface, pkt []byte, wasDropped bool) {
		seen++
		if wasDropped {
			dropped++
		}
	})
	e.Inject(a, []byte{1})
	e.Inject(a, []byte{2})
	if seen != 2 || dropped != 0 {
		t.Errorf("tap saw %d transmissions (%d dropped), want 2 (0)", seen, dropped)
	}
	if len(sink.got) != 2 {
		t.Errorf("sink received %d packets", len(sink.got))
	}
	// Removing the tap stops observation.
	e.SetTap(nil)
	e.Inject(a, []byte{3})
	if seen != 2 {
		t.Errorf("tap saw %d after removal", seen)
	}
}

func TestFaultDropDiscardsButCountsStats(t *testing.T) {
	e := New(1)
	a, sink := hookPair(e)
	e.SetFault(func(from *Iface, pkt []byte) FaultOutcome {
		return FaultOutcome{Drop: true}
	})
	var taggedDropped bool
	e.SetTap(func(from *Iface, pkt []byte, wasDropped bool) { taggedDropped = wasDropped })
	e.Inject(a, []byte{1})
	if len(sink.got) != 0 {
		t.Errorf("dropped packet delivered")
	}
	if !taggedDropped {
		t.Error("tap not told about the drop")
	}
	if got := a.link.StatsFrom(a).Packets; got != 1 {
		t.Errorf("link stats = %d, want 1 (drop still counted as carried)", got)
	}
}

func TestFaultDuplicateDeliversCopies(t *testing.T) {
	e := New(1)
	a, sink := hookPair(e)
	e.SetFault(func(from *Iface, pkt []byte) FaultOutcome {
		return FaultOutcome{Deliveries: []int{0, 0}}
	})
	e.Inject(a, []byte{7})
	if len(sink.got) != 2 {
		t.Fatalf("duplication delivered %d packets, want 2", len(sink.got))
	}
	// Copies must be independent buffers: mutating one must not affect
	// the other (nodes mutate packets in place).
	sink.got[0][0] = 99
	if sink.got[1][0] != 7 {
		t.Error("duplicate shares the original packet buffer")
	}
	if got := a.link.StatsFrom(a).Packets; got != 2 {
		t.Errorf("link stats = %d, want 2 (each copy crosses the link)", got)
	}
}

// fanout emits three fixed packets toward out when poked from any other
// interface.
type fanout struct {
	name string
	out  *Iface
}

func (f *fanout) Name() string { return f.name }
func (f *fanout) Handle(in *Iface, pkt []byte) []Emission {
	if in == f.out {
		return nil
	}
	return []Emission{
		{Out: f.out, Pkt: []byte{1}},
		{Out: f.out, Pkt: []byte{2}},
		{Out: f.out, Pkt: []byte{3}},
	}
}

func TestFaultReorderDefersDelivery(t *testing.T) {
	// Deferral is relative to deliveries enqueued later in the same
	// cascade, so the reorder must happen among emissions of one Handle:
	// poke a fanout node that emits 1,2,3 and defer the first past the
	// next two.
	e := New(1)
	src := &recorder{name: "src"}
	fan := &fanout{name: "fan"}
	sink := &recorder{name: "sink"}
	a := NewIface(src, ipv6.MustParseAddr("fd00::1"), "a")
	fin := NewIface(fan, ipv6.MustParseAddr("fd00::2"), "fan-in")
	fout := NewIface(fan, ipv6.MustParseAddr("fd00::3"), "fan-out")
	fan.out = fout
	b := NewIface(sink, ipv6.MustParseAddr("fd00::4"), "b")
	e.Connect(a, fin, 0)
	e.Connect(fout, b, 0)
	first := true
	e.SetFault(func(from *Iface, pkt []byte) FaultOutcome {
		if from == fout && first {
			first = false
			return FaultOutcome{Deliveries: []int{2}}
		}
		return FaultOutcome{}
	})
	e.Inject(a, []byte{9})
	want := []byte{2, 3, 1}
	if len(sink.got) != 3 {
		t.Fatalf("delivered %d packets", len(sink.got))
	}
	for i, w := range want {
		if sink.got[i][0] != w {
			t.Errorf("arrival %d = %d, want %d", i, sink.got[i][0], w)
		}
	}
}

// TestInjectBatchMatchesSequentialInject pins the equivalence the
// batch-vs-per-packet differential oracle relies on: under an identical
// seeded fault layer, a batch injection and the same packets injected
// one at a time produce the same arrivals in the same order.
func TestInjectBatchMatchesSequentialInject(t *testing.T) {
	run := func(batch bool) [][]byte {
		e := New(7)
		a, sink := hookPair(e)
		n := 0
		e.SetFault(func(from *Iface, pkt []byte) FaultOutcome {
			n++
			switch n % 4 {
			case 1:
				return FaultOutcome{Deliveries: []int{1}}
			case 2:
				return FaultOutcome{Drop: true}
			case 3:
				return FaultOutcome{Deliveries: []int{0, 0}}
			}
			return FaultOutcome{}
		})
		pkts := [][]byte{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
		if batch {
			e.InjectBatch(a, pkts)
		} else {
			for _, p := range pkts {
				e.Inject(a, p)
			}
		}
		return sink.got
	}
	one, many := run(false), run(true)
	if len(one) != len(many) {
		t.Fatalf("sequential delivered %d, batch %d", len(one), len(many))
	}
	for i := range one {
		if one[i][0] != many[i][0] {
			t.Errorf("arrival %d: sequential %d, batch %d", i, one[i][0], many[i][0])
		}
	}
}

func TestNoFaultKeepsFIFO(t *testing.T) {
	e := New(1)
	a, sink := hookPair(e)
	e.InjectBatch(a, [][]byte{{1}, {2}, {3}, {4}})
	for i, pkt := range sink.got {
		if pkt[0] != byte(i+1) {
			t.Fatalf("FIFO broken without faults: arrival %d = %d", i, pkt[0])
		}
	}
}
