package netsim

import (
	"testing"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// benchNet is edge <-> core <-> responder: two hops each way, so one
// probe costs four events — enough to exercise the queue and the pool.
func buildBenchNet(b *testing.B) (*Engine, *Edge, ipv6.Addr) {
	b.Helper()
	eng := New(1)
	edge := NewEdge("e", ipv6.MustParseAddr("2001:beef::100"))
	core := NewRouter("core", ErrorPolicy{})
	dst := NewRouter("dst", ErrorPolicy{})
	coreScan := core.AddIface(ipv6.MustParseAddr("2001:beef::1"), "core:scan")
	coreDst := core.AddIface(ipv6.MustParseAddr("2001:face::1"), "core:dst")
	dstUp := dst.AddIface(ipv6.MustParseAddr("2001:100::1"), "dst:up")
	eng.Connect(edge.Iface(), coreScan, 0)
	eng.Connect(coreDst, dstUp, 0)
	core.AddRoute(ipv6.MustParsePrefix("2001:100::/32"), coreDst)
	core.AddRoute(ipv6.MustParsePrefix("2001:beef::/64"), coreScan)
	return eng, edge, dstUp.Addr()
}

// BenchmarkEnginePump measures the event pump on the FIFO fast path
// (ordered) and with the fault layer deferring deliveries so the pump
// runs on the heap (disordered).
func BenchmarkEnginePump(b *testing.B) {
	run := func(b *testing.B, disorder bool) {
		eng, edge, dst := buildBenchNet(b)
		if disorder {
			flip := false
			defer2 := []int{2} // hoisted: the engine reads, never retains
			eng.SetFault(func(from *Iface, pkt []byte) FaultOutcome {
				flip = !flip
				if flip {
					return FaultOutcome{Deliveries: defer2}
				}
				return FaultOutcome{}
			})
		}
		pkt, err := wire.BuildEchoRequest(edge.Addr(), dst, 64, 7, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		// Drain like the scanner does: into a reused slice, handing the
		// exhausted reply buffers back to the engine pool, so the steady
		// state is allocation-free end to end.
		var rx [][]byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Inject(edge.Iface(), pkt)
			if i%256 == 0 {
				rx = edge.DrainInto(rx[:0])
				eng.ReleaseBufs(rx)
			}
		}
		b.StopTimer()
		edge.Drain()
	}
	b.Run("ordered", func(b *testing.B) { run(b, false) })
	b.Run("disordered", func(b *testing.B) { run(b, true) })
}
