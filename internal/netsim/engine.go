// Package netsim is the packet-level IPv6 network simulator the scanner
// runs against: the substitute for the real Internet vantage the paper
// used. Nodes (routers, customer-premises equipment, user equipment)
// exchange raw IPv6 packets over point-to-point links; forwarding,
// hop-limit handling and ICMPv6 error generation follow RFC 8200 and
// RFC 4443, including the flawed CPE routing implementations the paper
// measures (Section VI).
package netsim

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/ipv6"
)

// Emission is a packet a node wants to transmit out of one of its
// interfaces.
type Emission struct {
	Out *Iface
	Pkt []byte
}

// Node is anything attached to the network.
type Node interface {
	// Name identifies the node in diagnostics.
	Name() string
	// Handle processes a packet that arrived on in and returns the
	// packets to transmit. Implementations may retain or mutate pkt.
	Handle(in *Iface, pkt []byte) []Emission
}

// Iface is one end of a point-to-point link, bound to a node and holding
// the interface's unicast address.
type Iface struct {
	node Node
	addr ipv6.Addr
	name string
	link *Link
	end  int // which end of link this iface is (0 or 1)
}

// NewIface creates an unbound interface for node with the given unicast
// address. Bind it with Engine.Connect.
func NewIface(node Node, addr ipv6.Addr, name string) *Iface {
	return &Iface{node: node, addr: addr, name: name}
}

// Node returns the owning node.
func (i *Iface) Node() Node { return i.node }

// Addr returns the interface's unicast address.
func (i *Iface) Addr() ipv6.Addr { return i.addr }

// Name returns the interface label.
func (i *Iface) Name() string { return i.name }

// Peer returns the interface at the other end of the link, or nil if the
// interface is not connected.
func (i *Iface) Peer() *Iface {
	if i.link == nil {
		return nil
	}
	return i.link.ends[1-i.end]
}

// Link is a point-to-point link between two interfaces.
type Link struct {
	ends  [2]*Iface
	loss  float64
	stats [2]LinkStats
}

// LinkStats counts traffic sent from one end of a link.
type LinkStats struct {
	Packets uint64
	Bytes   uint64
}

// StatsFrom returns the counters for traffic transmitted by iface into
// the link. It panics if iface is not an endpoint.
func (l *Link) StatsFrom(iface *Iface) LinkStats {
	switch iface {
	case l.ends[0]:
		return l.stats[0]
	case l.ends[1]:
		return l.stats[1]
	}
	panic("netsim: StatsFrom on foreign interface")
}

// Ends returns the two endpoint interfaces of the link.
func (l *Link) Ends() [2]*Iface { return l.ends }

// TotalPackets returns the packets carried in both directions.
func (l *Link) TotalPackets() uint64 {
	return l.stats[0].Packets + l.stats[1].Packets
}

// delivery is a queued packet arrival.
type delivery struct {
	to  *Iface
	pkt []byte
}

// Engine owns the simulation: links, the event queue, and the virtual
// pump. All methods are safe for concurrent use; the engine serializes
// internally, so a run is deterministic for a given seed and injection
// order.
type Engine struct {
	mu     sync.Mutex
	queue  []delivery
	links  []*Link
	rng    *rand.Rand
	steps  uint64
	budget int
}

// DefaultEventBudget bounds a single Run; loop-attack packets terminate
// via hop limit well before this.
const DefaultEventBudget = 1 << 22

// New creates an engine with a deterministic random source for loss
// decisions.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), budget: DefaultEventBudget}
}

// Connect joins two interfaces with a link that drops each packet with
// probability loss. It panics if either interface is already connected.
func (e *Engine) Connect(a, b *Iface, loss float64) *Link {
	if a.link != nil || b.link != nil {
		panic(fmt.Sprintf("netsim: interface %s or %s already connected", a.name, b.name))
	}
	l := &Link{ends: [2]*Iface{a, b}, loss: loss}
	a.link, a.end = l, 0
	b.link, b.end = l, 1
	e.mu.Lock()
	e.links = append(e.links, l)
	e.mu.Unlock()
	return l
}

// Inject copies pkt and delivers it as if transmitted by from into its
// link, then pumps the network to quiescence. It returns the number of
// events processed.
func (e *Engine) Inject(from *Iface, pkt []byte) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := append([]byte(nil), pkt...)
	e.transmitLocked(from, cp)
	return e.runLocked()
}

// InjectBatch is Inject for multiple packets from the same interface,
// pumping once at the end.
func (e *Engine) InjectBatch(from *Iface, pkts [][]byte) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, pkt := range pkts {
		cp := append([]byte(nil), pkt...)
		e.transmitLocked(from, cp)
	}
	return e.runLocked()
}

// Steps returns the total events processed since creation.
func (e *Engine) Steps() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.steps
}

// transmitLocked pushes pkt from iface onto its link (applying loss) and
// enqueues the arrival at the peer.
func (e *Engine) transmitLocked(from *Iface, pkt []byte) {
	l := from.link
	if l == nil {
		return // unconnected interface: packet vanishes
	}
	st := &l.stats[from.end]
	st.Packets++
	st.Bytes += uint64(len(pkt))
	if l.loss > 0 && e.rng.Float64() < l.loss {
		return
	}
	e.queue = append(e.queue, delivery{to: l.ends[1-from.end], pkt: pkt})
}

// runLocked pumps queued deliveries until the network is quiescent or the
// event budget is exhausted, returning events processed.
func (e *Engine) runLocked() int {
	n := 0
	for len(e.queue) > 0 && n < e.budget {
		d := e.queue[0]
		e.queue = e.queue[1:]
		n++
		e.steps++
		for _, em := range d.to.node.Handle(d.to, d.pkt) {
			e.transmitLocked(em.Out, em.Pkt)
		}
	}
	if len(e.queue) > 0 {
		e.queue = e.queue[:0] // budget exceeded: drop the remainder
	}
	return n
}
