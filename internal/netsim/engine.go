// Package netsim is the packet-level IPv6 network simulator the scanner
// runs against: the substitute for the real Internet vantage the paper
// used. Nodes (routers, customer-premises equipment, user equipment)
// exchange raw IPv6 packets over point-to-point links; forwarding,
// hop-limit handling and ICMPv6 error generation follow RFC 8200 and
// RFC 4443, including the flawed CPE routing implementations the paper
// measures (Section VI).
package netsim

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/ipv6"
)

// Emission is a packet a node wants to transmit out of one of its
// interfaces. Ownership of Pkt passes to the engine, which may recycle
// the buffer once it has been consumed.
type Emission struct {
	Out *Iface
	Pkt []byte
}

// Node is anything attached to the network.
type Node interface {
	// Name identifies the node in diagnostics.
	Name() string
	// Handle processes a packet that arrived on in and returns the
	// packets to transmit. Implementations may mutate pkt in place and
	// may pass it on inside an Emission (the whole slice, not a
	// re-slice), but must not keep a reference past the call unless
	// they implement PacketRetainer: the engine recycles delivered
	// buffers.
	Handle(in *Iface, pkt []byte) []Emission
}

// PacketRetainer marks nodes whose Handle keeps delivered packet
// buffers past the call (the Edge does: it hands them to the driver via
// Drain). The engine never recycles buffers delivered to such nodes.
type PacketRetainer interface {
	RetainsPackets() bool
}

func retainsPackets(n Node) bool {
	r, ok := n.(PacketRetainer)
	return ok && r.RetainsPackets()
}

// Iface is one end of a point-to-point link, bound to a node and holding
// the interface's unicast address.
type Iface struct {
	node Node
	addr ipv6.Addr
	name string
	link *Link
	end  int // which end of link this iface is (0 or 1)
	// eng is set by Connect; node handlers use it to build reply packets
	// into pooled buffers (they run with the engine lock held).
	eng *Engine
	// fpID is the engine-local flow-cache key component, assigned by
	// Connect (0 = never connected).
	fpID uint32
}

// NewIface creates an unbound interface for node with the given unicast
// address. Bind it with Engine.Connect.
func NewIface(node Node, addr ipv6.Addr, name string) *Iface {
	return &Iface{node: node, addr: addr, name: name}
}

// Node returns the owning node.
func (i *Iface) Node() Node { return i.node }

// Addr returns the interface's unicast address.
func (i *Iface) Addr() ipv6.Addr { return i.addr }

// Name returns the interface label.
func (i *Iface) Name() string { return i.name }

// Peer returns the interface at the other end of the link, or nil if the
// interface is not connected.
func (i *Iface) Peer() *Iface {
	if i.link == nil {
		return nil
	}
	return i.link.ends[1-i.end]
}

// Link is a point-to-point link between two interfaces.
type Link struct {
	ends  [2]*Iface
	loss  float64
	stats [2]LinkStats
}

// LinkStats counts traffic sent from one end of a link.
type LinkStats struct {
	Packets uint64
	Bytes   uint64
}

// StatsFrom returns the counters for traffic transmitted by iface into
// the link. It panics if iface is not an endpoint.
func (l *Link) StatsFrom(iface *Iface) LinkStats {
	switch iface {
	case l.ends[0]:
		return l.stats[0]
	case l.ends[1]:
		return l.stats[1]
	}
	panic("netsim: StatsFrom on foreign interface")
}

// Ends returns the two endpoint interfaces of the link.
func (l *Link) Ends() [2]*Iface { return l.ends }

// TotalPackets returns the packets carried in both directions.
func (l *Link) TotalPackets() uint64 {
	return l.stats[0].Packets + l.stats[1].Packets
}

// delivery is a queued packet arrival. due orders deliveries: it is
// derived from the enqueue sequence number, optionally pushed forward
// by a fault layer to model reordering; seq breaks due ties in favor of
// the earliest enqueue.
type delivery struct {
	to  *Iface
	pkt []byte
	due uint64
	seq uint64
}

// FaultOutcome is a fault layer's decision for one transmission.
type FaultOutcome struct {
	// Drop discards the packet after link stats are counted, exactly
	// like built-in link loss.
	Drop bool
	// Deliveries, when non-empty, replaces the single in-order delivery:
	// one copy of the packet is enqueued per element, deferred past that
	// many subsequently enqueued deliveries (0 = in order). A
	// multi-element slice models duplication; a single positive element
	// models reordering. Empty means one in-order delivery.
	Deliveries []int
}

// FaultFunc inspects one link transmission and decides its fate. It is
// called with the engine lock held and must not call back into the
// engine or retain pkt. Built-in link loss is applied first; dropped
// packets are not offered to the fault layer.
type FaultFunc func(from *Iface, pkt []byte) FaultOutcome

// TapFunc observes every link transmission, after loss and fault
// decisions; dropped reports whether the packet was discarded. Taps run
// with the engine lock held and must not call back into the engine or
// retain pkt (copy what you need: buffers are recycled).
type TapFunc func(from *Iface, pkt []byte, dropped bool)

// Engine owns one simulation shard: links, the event queue, and the
// virtual pump. All methods are safe for concurrent use; the engine
// serializes internally, so a run is deterministic for a given seed and
// injection order. For multi-core scaling across disjoint subtrees, see
// EngineGroup.
type Engine struct {
	mu     sync.Mutex
	fifo   ring  // FIFO fast path
	ordq   dheap // ordered path, used only while disordered
	links  []*Link
	rng    *rand.Rand
	steps  uint64
	budget int
	seq    uint64
	fault  FaultFunc
	tap    TapFunc
	// Engine-wide traffic totals (the LinkStats aggregate). Kept as
	// plain counters under mu — transmissions far outnumber probes, so
	// per-transmission atomics would be measurable; telemetry folds
	// these in at snapshot time via a collector (merge-on-read).
	txPackets uint64
	txBytes   uint64
	txDropped uint64
	// disordered is set while any queued delivery was deferred, forcing
	// the pump onto the ordered (min-due) pop path.
	disordered bool

	// pool is the packet-buffer freelist. Buffers never escape the
	// engine's serialization domain, so a plain slice under mu beats
	// sync.Pool (which would allocate a boxed header per Put).
	pool [][]byte
	// owner identifies the buffer of the delivery currently inside
	// Handle; ownerReused is set when the node re-emits that buffer, in
	// which case the pump must not recycle it.
	owner       *byte
	ownerReused bool

	// ftr observes sampled flow crossings (trace.go). trOn/trHi/trLo
	// latch one fused replay's sampling decision so the plain charging
	// loops synthesize crossings without re-deriving the flow key.
	ftr  FlowTracer
	trOn bool
	trHi uint64
	trLo uint64

	// fp is the compiled forwarding fast path (flowcache.go);
	// fpScratchH/fpScratchC are the hot/cold halves of the entry under
	// compilation, kept off the stack so flows that turn out unkeyable
	// can still be served from them without the compile allocating.
	fp         flowCache
	fpScratchH flowHot
	fpScratchC flowCold
	// inj is the batched-injection scratch (inject.go).
	inj injScratch
}

// DefaultEventBudget bounds a single Run; loop-attack packets terminate
// via hop limit well before this.
const DefaultEventBudget = 1 << 22

// maxPooledBuffers bounds the freelist so a one-off burst does not pin
// memory forever.
const maxPooledBuffers = 256

// New creates an engine with a deterministic random source for loss
// decisions.
func New(seed int64) *Engine {
	return &Engine{
		rng:    rand.New(rand.NewSource(seed)),
		budget: DefaultEventBudget,
		fp:     flowCache{enabled: true, gen: 1},
	}
}

// Connect joins two interfaces with a link that drops each packet with
// probability loss. It panics if either interface is already connected.
func (e *Engine) Connect(a, b *Iface, loss float64) *Link {
	if a.link != nil || b.link != nil {
		panic(fmt.Sprintf("netsim: interface %s or %s already connected", a.name, b.name))
	}
	l := &Link{ends: [2]*Iface{a, b}, loss: loss}
	a.link, a.end = l, 0
	b.link, b.end = l, 1
	a.eng, b.eng = e, e
	e.mu.Lock()
	e.links = append(e.links, l)
	e.fp.assignIDLocked(a)
	e.fp.assignIDLocked(b)
	e.fp.bumpLocked() // topology changed: compiled paths are stale
	e.mu.Unlock()
	return l
}

// Links returns the engine's links in connection order (read-only view
// for observers; per-direction stats via Link.StatsFrom).
func (e *Engine) Links() []*Link {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.links
}

// SetFault installs (or, with nil, removes) a fault-injection layer
// consulted on every link transmission. Simulation tests use it for
// seeded loss, duplication, reordering and outage windows.
func (e *Engine) SetFault(f FaultFunc) {
	e.mu.Lock()
	e.fault = f
	// Replay consults the live fault layer, but compiled entries also
	// cache fault-independent facts (losslessness); recompile.
	e.fp.bumpLocked()
	e.mu.Unlock()
}

// SetFastPath enables or disables the compiled forwarding fast path
// (flowcache.go). Enabled by default; disabling frees the flow table
// and forces every delivery onto the interpreted path.
func (e *Engine) SetFastPath(on bool) {
	e.mu.Lock()
	if e.fp.enabled != on {
		e.fp.enabled = on
		e.fp.bumpLocked()
		if !on {
			e.fp.tags = nil
			e.fp.hot = nil
			e.fp.cold = nil
			e.fp.mask = 0
		}
	}
	e.mu.Unlock()
}

// InvalidateFlows discards every compiled flow. Nodes call it (via
// their mutators) when routing state changes; tests use it to pin
// invalidation behavior.
func (e *Engine) InvalidateFlows() {
	e.mu.Lock()
	e.fp.bumpLocked()
	e.mu.Unlock()
}

// SetTap installs (or, with nil, removes) an observer of every link
// transmission. Invariant checkers hook in here.
func (e *Engine) SetTap(t TapFunc) {
	e.mu.Lock()
	e.tap = t
	e.mu.Unlock()
}

// Inject copies pkt and delivers it as if transmitted by from into its
// link, then pumps the network to quiescence. It returns the number of
// events processed.
func (e *Engine) Inject(from *Iface, pkt []byte) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := e.getBufLocked(len(pkt))
	copy(cp, pkt)
	e.transmitLocked(from, cp, false)
	return e.runLocked()
}

// InjectBatch is Inject for multiple packets from the same interface
// under one lock acquisition. Observable behavior is exactly as if the
// packets were injected one Inject call at a time — every stat charge,
// seeded loss and fault decision lands identically — which is what lets
// the batched scanner path be diffed against the per-packet path under
// fault injection. Runs of packets that resolve to warm lossless flow
// entries are replayed batch-at-a-time (inject.go); everything else
// falls back to the per-packet transmit-and-pump loop.
func (e *Engine) InjectBatch(from *Iface, pkts [][]byte) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	i := 0
	for i < len(pkts) {
		if k, ev := e.injectFastLocked(from, pkts[i:]); k > 0 {
			n += ev
			i += k
			continue
		}
		pkt := pkts[i]
		cp := e.getBufLocked(len(pkt))
		copy(cp, pkt)
		e.transmitLocked(from, cp, false)
		n += e.runLocked()
		i++
	}
	return n
}

// Steps returns the total events processed since creation.
func (e *Engine) Steps() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.steps
}

// Counters is an engine's cumulative traffic view: events pumped plus
// the all-links transmission totals. It exists so observers (telemetry
// collectors) read one consistent aggregate instead of walking links.
type Counters struct {
	// Events is the deliveries pumped (Steps).
	Events uint64
	// Transmissions counts packets pushed onto any link, duplicates
	// included; Bytes is their payload total.
	Transmissions uint64
	Bytes         uint64
	// Dropped counts transmissions discarded by link loss or a fault
	// layer's Drop decision.
	Dropped uint64
	// FastPathHits counts deliveries served as fused replays from a
	// warm compiled flow; FastPathMisses counts deliveries that had to
	// compile first or fall back to the interpreter;
	// FastPathInvalidations counts generation bumps (each discards
	// every compiled flow). FastPathBatched is the subset of hits
	// served by the batched injection path (group-charged replays).
	FastPathHits          uint64
	FastPathMisses        uint64
	FastPathInvalidations uint64
	FastPathBatched       uint64
}

// Counters returns the engine totals, consistent under the engine lock.
func (e *Engine) Counters() Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Counters{
		Events:                e.steps,
		Transmissions:         e.txPackets,
		Bytes:                 e.txBytes,
		Dropped:               e.txDropped,
		FastPathHits:          e.fp.hits,
		FastPathMisses:        e.fp.misses,
		FastPathInvalidations: e.fp.invalidations,
		FastPathBatched:       e.fp.batched,
	}
}

// getBufLocked returns a packet buffer of length n, reusing a pooled
// buffer when one fits.
func (e *Engine) getBufLocked(n int) []byte {
	if l := len(e.pool); l > 0 {
		b := e.pool[l-1]
		e.pool[l-1] = nil
		e.pool = e.pool[:l-1]
		if cap(b) >= n {
			return b[:n]
		}
		// Too small: let it go and allocate fresh below, so the pool
		// self-cleans when the workload's packet size grows.
	}
	const minBuf = 128
	if n < minBuf {
		return make([]byte, n, minBuf)
	}
	return make([]byte, n)
}

// putBufLocked returns a buffer to the freelist.
func (e *Engine) putBufLocked(b []byte) {
	if cap(b) == 0 || len(e.pool) >= maxPooledBuffers {
		return
	}
	e.pool = append(e.pool, b[:0])
}

// ReleaseBufs returns packet buffers to the engine's freelist. Callers
// that drain a retaining node (an Edge) use it to hand exhausted buffers
// back instead of leaving them to the garbage collector; the buffers
// must no longer be referenced.
func (e *Engine) ReleaseBufs(pkts [][]byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, p := range pkts {
		e.putBufLocked(p)
	}
}

// bufBase identifies a packet buffer by the address of its first
// element (nil for empty buffers, which are never pooled).
func bufBase(b []byte) *byte {
	if len(b) == 0 {
		return nil
	}
	return &b[0]
}

// discardLocked recycles a dropped packet's buffer unless it is the
// delivery currently being handled — that one is reclaimed by runLocked
// after the node returns, and may still be re-emitted.
func (e *Engine) discardLocked(pkt []byte) {
	if b := bufBase(pkt); b != nil && b != e.owner {
		e.putBufLocked(pkt)
	}
}

// transmitLocked pushes pkt from iface onto its link (applying loss and
// the fault layer) and hands the arrival at the peer to the event
// queue. The engine owns pkt from here on. With chain set, a plain
// in-order single delivery is returned to the caller instead of
// enqueued — the pump's chained fast path, which forwards a packet hop
// to hop without queue traffic. Drops and fault-layer rewrites
// (duplication, deferral) never chain.
func (e *Engine) transmitLocked(from *Iface, pkt []byte, chain bool) (delivery, bool) {
	l := from.link
	if l == nil {
		return delivery{}, false // unconnected interface: packet vanishes
	}
	st := &l.stats[from.end]
	st.Packets++
	st.Bytes += uint64(len(pkt))
	e.txPackets++
	e.txBytes += uint64(len(pkt))
	drop := l.loss > 0 && e.rng.Float64() < l.loss
	var out FaultOutcome
	if !drop && e.fault != nil {
		out = e.fault(from, pkt)
		drop = out.Drop
	}
	if e.tap != nil {
		e.tap(from, pkt, drop)
	}
	if e.ftr != nil {
		e.traceCrossingLocked(from, pkt, drop)
	}
	if drop {
		e.txDropped++
		e.discardLocked(pkt)
		return delivery{}, false
	}
	to := l.ends[1-from.end]
	if len(out.Deliveries) == 0 {
		if chain {
			// Mirror enqueueLocked without the queue: advance the
			// sequence (so deferral math is unchanged by chaining) and
			// keep the owner-reuse check.
			e.seq++
			if b := bufBase(pkt); b != nil && b == e.owner {
				e.ownerReused = true
			}
			return delivery{to: to, pkt: pkt, due: 2 * e.seq, seq: e.seq}, true
		}
		e.enqueueLocked(to, pkt, 0)
		return delivery{}, false
	}
	for i, delay := range out.Deliveries {
		cp := pkt
		if i > 0 {
			// Nodes may mutate delivered packets, so every duplicate
			// needs its own copy; it also crosses the link.
			cp = e.getBufLocked(len(pkt))
			copy(cp, pkt)
			st.Packets++
			st.Bytes += uint64(len(pkt))
			e.txPackets++
			e.txBytes += uint64(len(pkt))
		}
		e.enqueueLocked(to, cp, delay)
	}
	return delivery{}, false
}

// enqueueLocked adds one delivery, deferred past delay subsequently
// enqueued deliveries.
func (e *Engine) enqueueLocked(to *Iface, pkt []byte, delay int) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	// Dues advance in steps of two so a deferred delivery can land
	// strictly after the delay-th subsequent enqueue (the +1 breaks the
	// tie against it).
	due := 2 * e.seq
	if delay > 0 {
		due += 2*uint64(delay) + 1
		if !e.disordered {
			// FIFO no longer holds: migrate the ring into the heap.
			e.disordered = true
			for e.fifo.len() > 0 {
				e.ordq.push(e.fifo.pop())
			}
		}
	}
	if b := bufBase(pkt); b != nil && b == e.owner {
		e.ownerReused = true
	}
	d := delivery{to: to, pkt: pkt, due: due, seq: e.seq}
	if e.disordered {
		e.ordq.push(d)
	} else {
		e.fifo.push(d)
	}
}

// queuedLocked returns the number of pending deliveries.
func (e *Engine) queuedLocked() int {
	return e.fifo.len() + e.ordq.len()
}

// runLocked pumps queued deliveries until the network is quiescent or the
// event budget is exhausted, returning events processed.
//
// The common simulated event is a single-emission forward: a packet
// walks router to router, one Handle producing exactly one next-hop
// transmission. When that happens with nothing else queued, the next
// delivery is chained — handled immediately, never touching the event
// queue — so a probe's whole round trip costs zero queue operations.
// Chained deliveries are counted (steps, budget) exactly as queued ones,
// and the chain breaks the moment ordering could matter: multiple
// emissions, other queued deliveries, or a fault-layer rewrite.
func (e *Engine) runLocked() int {
	n := 0
	for e.queuedLocked() > 0 && n < e.budget {
		var d delivery
		if e.disordered {
			d = e.ordq.pop()
			if e.ordq.len() == 0 {
				e.disordered = false
			}
		} else {
			d = e.fifo.pop()
		}
		// lookupFP gates the fast path per delivery: after a fused
		// replay hands a packet back to the interpreter (fpContinue),
		// that delivery runs interpreted once before lookups resume.
		lookupFP := true
		for {
			if lookupFP && e.fp.enabled && e.queuedLocked() == 0 && n < e.budget {
				res, cont := e.fpAttempt(d)
				if res != fpMiss {
					// The fused replay is one event, charged exactly
					// like a queued delivery.
					n++
					e.steps++
					if res == fpDone {
						break
					}
					d = cont
					lookupFP = false
					continue
				}
			}
			lookupFP = true
			n++
			e.steps++
			e.owner, e.ownerReused = bufBase(d.pkt), false
			ems := d.to.node.Handle(d.to, d.pkt)
			var next delivery
			chained := false
			if len(ems) == 1 && e.queuedLocked() == 0 && n < e.budget {
				next, chained = e.transmitLocked(ems[0].Out, ems[0].Pkt, true)
			} else {
				for _, em := range ems {
					e.transmitLocked(em.Out, em.Pkt, false)
				}
			}
			if e.owner != nil && !e.ownerReused && !retainsPackets(d.to.node) {
				e.putBufLocked(d.pkt)
			}
			e.owner = nil
			if !chained {
				break
			}
			d = next
		}
	}
	if e.queuedLocked() > 0 {
		// Budget exceeded: drop the remainder. The buffers are left to
		// the garbage collector — this path only fires on runaway loops.
		e.fifo.reset()
		e.ordq.reset()
	}
	e.disordered = false
	return n
}
