package netsim

import (
	"repro/internal/ipv6"
	"repro/internal/wire"
)

// LocalStack is the transport/application stack of a periphery device.
// The services package provides an implementation with DNS, HTTP, and the
// other periphery services; netsim itself ships an echo-only stack.
type LocalStack interface {
	// HandleLocal processes a packet addressed to self and returns any
	// reply packets (already fully marshalled, source = self).
	HandleLocal(self ipv6.Addr, pkt []byte) [][]byte
}

// EchoStack answers ICMPv6 echo requests and nothing else: a periphery
// with no exposed services.
type EchoStack struct{}

var _ LocalStack = EchoStack{}

// HandleLocal implements LocalStack.
func (EchoStack) HandleLocal(self ipv6.Addr, pkt []byte) [][]byte {
	s, err := wire.ParsePacket(pkt)
	if err != nil || s.ICMP == nil || s.ICMP.Type != wire.ICMPEchoRequest {
		return nil
	}
	e, err := wire.ParseEcho(s.ICMP.Body)
	if err != nil {
		return nil
	}
	reply, err := wire.BuildEchoReply(self, s.IP.Src, 64, e.ID, e.Seq, e.Data)
	if err != nil {
		return nil
	}
	return [][]byte{reply}
}

// CPEBehavior captures how a CPE's routing module handles addresses it
// has no specific route for — the implementation property the paper's
// Section VI measures.
type CPEBehavior struct {
	// VulnWAN: the CPE installs only a host route for its own WAN
	// address; other (nonexistent) addresses within the WAN /64 match
	// the default route and bounce back to the ISP — a routing loop.
	VulnWAN bool
	// VulnLAN: the CPE lacks the RFC 7084 unreachable route for the
	// delegated-but-unassigned LAN prefixes; packets to a Not-used
	// Prefix match the default route and bounce back — a routing loop.
	VulnLAN bool
	// LoopCap, when positive, bounds how many times the CPE forwards
	// packets of one looping destination before dropping (the partial
	// mitigation observed on Xiaomi/OpenWrt-family devices, which
	// forward such packets only >10 times rather than (255-n)/2).
	LoopCap int
}

// CPE is a customer-premises-edge router: WAN interface toward the ISP,
// a delegated LAN prefix, one or more in-use subnets, and optionally a
// set of LAN host addresses that answer pings.
type CPE struct {
	name      string
	wan       *Iface
	wanPrefix ipv6.Prefix // the point-to-point /64 containing the WAN address
	delegated ipv6.Prefix // LAN prefix delegated by the ISP (may be zero-width: none)
	subnets   []ipv6.Prefix
	lanAddr   ipv6.Addr // CPE's own address inside the first subnet
	hosts     map[ipv6.Addr]bool
	behavior  CPEBehavior
	stack     LocalStack
	gate      errorGate
	hasLAN    bool
	sc        emitScratch

	loopCount map[ipv6.Addr]int

	// CountForwarded tallies packets the CPE sent back out its WAN
	// interface in a loop; used for amplification accounting.
	CountForwarded uint64
}

var _ Node = (*CPE)(nil)

// CPEConfig assembles a CPE.
type CPEConfig struct {
	Name      string
	WANAddr   ipv6.Addr   // address on the WAN /64
	WANPrefix ipv6.Prefix // the WAN point-to-point /64
	Delegated ipv6.Prefix // LAN delegated prefix; leave zero for none
	Subnets   []ipv6.Prefix
	LANAddr   ipv6.Addr // CPE address within Subnets[0]; zero for none
	Hosts     []ipv6.Addr
	Behavior  CPEBehavior
	Stack     LocalStack // nil means EchoStack
	Policy    ErrorPolicy
}

// NewCPE builds a CPE node; its WAN interface is returned by WAN().
func NewCPE(cfg CPEConfig) *CPE {
	c := &CPE{
		name:      cfg.Name,
		wanPrefix: cfg.WANPrefix,
		delegated: cfg.Delegated,
		subnets:   cfg.Subnets,
		lanAddr:   cfg.LANAddr,
		behavior:  cfg.Behavior,
		stack:     cfg.Stack,
		gate:      errorGate{policy: cfg.Policy},
		hasLAN:    cfg.Delegated.Bits() > 0,
	}
	if c.stack == nil {
		c.stack = EchoStack{}
	}
	if len(cfg.Hosts) > 0 {
		c.hosts = make(map[ipv6.Addr]bool, len(cfg.Hosts))
		for _, h := range cfg.Hosts {
			c.hosts[h] = true
		}
	}
	c.wan = NewIface(c, cfg.WANAddr, cfg.Name+":wan")
	return c
}

// Name implements Node.
func (c *CPE) Name() string { return c.name }

// WAN returns the WAN interface to connect to the ISP router.
func (c *CPE) WAN() *Iface { return c.wan }

// WANAddr returns the CPE's WAN interface address.
func (c *CPE) WANAddr() ipv6.Addr { return c.wan.addr }

// Behavior returns the CPE's routing behavior (for ground-truth checks).
func (c *CPE) Behavior() CPEBehavior { return c.behavior }

// Delegated returns the delegated LAN prefix (zero Prefix if none).
func (c *CPE) Delegated() ipv6.Prefix { return c.delegated }

// Handle implements Node, realizing the routing table of the paper's
// Figure 4 — correct or flawed depending on Behavior.
func (c *CPE) Handle(in *Iface, pkt []byte) []Emission {
	dst, ok := wire.ForwardDst(pkt)
	if !ok {
		return nil
	}

	// Local delivery: WAN address, LAN interface address.
	if dst == c.wan.addr || (c.lanAddr != (ipv6.Addr{}) && dst == c.lanAddr) {
		return c.deliverLocal(in, dst, pkt)
	}
	// A LAN host the subscriber actually operates: answers pings.
	if c.hosts[dst] {
		return hostEcho(&c.sc, in, dst, pkt)
	}

	if !decrementHopLimit(pkt) {
		return c.emitError(in, pkt, wire.ICMPTimeExceeded, wire.TimeExceedHopLimit)
	}

	switch {
	case c.wanPrefix.Contains(dst):
		// Nonexistent address in the WAN point-to-point /64.
		if c.behavior.VulnWAN {
			return c.loopForward(in, dst, pkt)
		}
		// Correct: neighbor discovery fails; address unreachable.
		return c.emitError(in, pkt, wire.ICMPDestUnreach, wire.UnreachAddress)

	case c.inSubnet(dst):
		// In an operated subnet but no such host: NDP failure.
		return c.emitError(in, pkt, wire.ICMPDestUnreach, wire.UnreachAddress)

	case c.hasLAN && c.delegated.Contains(dst):
		// Delegated-but-unassigned space: the Not-used Prefix.
		if c.behavior.VulnLAN {
			return c.loopForward(in, dst, pkt)
		}
		// Correct per RFC 7084: a discard/unreachable route.
		return c.emitError(in, pkt, wire.ICMPDestUnreach, wire.UnreachNoRoute)

	default:
		// Default route: egress toward the ISP.
		c.CountForwarded++
		return c.sc.emit(c.wan, pkt)
	}
}

// loopForward sends the packet back out the WAN default route, applying
// any per-destination loop cap.
func (c *CPE) loopForward(in *Iface, dst ipv6.Addr, pkt []byte) []Emission {
	if limit := c.behavior.LoopCap; limit > 0 {
		if c.loopCount == nil {
			c.loopCount = make(map[ipv6.Addr]int)
		}
		if len(c.loopCount) > 4096 { // bound state like a real embedded table
			c.loopCount = make(map[ipv6.Addr]int)
		}
		c.loopCount[dst]++
		if c.loopCount[dst] > limit {
			return nil
		}
	}
	c.CountForwarded++
	return c.sc.emit(c.wan, pkt)
}

// inSubnet reports whether dst falls in an operated subnet.
func (c *CPE) inSubnet(dst ipv6.Addr) bool {
	for _, s := range c.subnets {
		if s.Contains(dst) {
			return true
		}
	}
	return false
}

// deliverLocal hands the packet to the device stack.
func (c *CPE) deliverLocal(in *Iface, self ipv6.Addr, pkt []byte) []Emission {
	return c.sc.emitAll(in, c.stack.HandleLocal(self, pkt))
}

func (c *CPE) emitError(in *Iface, invoking []byte, typ, code uint8) []Emission {
	if !c.gate.allow() {
		return nil
	}
	// RFC 4443 source selection: the error leaves the WAN interface, so
	// it carries the WAN address — this is what exposes the periphery.
	out := icmpError(in, c.wan.addr, invoking, typ, code)
	if out == nil {
		c.gate.generated--
		return nil
	}
	return c.sc.emit(in, out)
}

// hostEcho answers a ping to an existing LAN host on its behalf (the
// host is modelled inside the CPE rather than as a separate node).
func hostEcho(sc *emitScratch, in *Iface, self ipv6.Addr, pkt []byte) []Emission {
	var s wire.Summary
	if err := s.Parse(pkt); err != nil || s.ICMP == nil || s.ICMP.Type != wire.ICMPEchoRequest {
		return nil
	}
	e, err := wire.ParseEcho(s.ICMP.Body)
	if err != nil {
		return nil
	}
	reply, err := wire.BuildEchoReply(self, s.IP.Src, 64, e.ID, e.Seq, e.Data)
	if err != nil {
		return nil
	}
	return sc.emit(in, reply)
}

// UE is a user-equipment periphery (paper Figure 1b): a device holding a
// single /64 prefix on its radio interface. Nonexistent addresses inside
// the prefix draw an address-unreachable error from the UE itself.
type UE struct {
	name   string
	ifc    *Iface
	prefix ipv6.Prefix
	stack  LocalStack
	gate   errorGate
	sc     emitScratch
}

var _ Node = (*UE)(nil)

// NewUE builds a UE holding prefix, answering at addr.
func NewUE(name string, addr ipv6.Addr, prefix ipv6.Prefix, stack LocalStack, policy ErrorPolicy) *UE {
	u := &UE{name: name, prefix: prefix, stack: stack, gate: errorGate{policy: policy}}
	if u.stack == nil {
		u.stack = EchoStack{}
	}
	u.ifc = NewIface(u, addr, name+":radio")
	return u
}

// Name implements Node.
func (u *UE) Name() string { return u.name }

// Iface returns the radio interface to connect to the base station.
func (u *UE) Iface() *Iface { return u.ifc }

// Addr returns the UE's own address.
func (u *UE) Addr() ipv6.Addr { return u.ifc.addr }

// Handle implements Node.
func (u *UE) Handle(in *Iface, pkt []byte) []Emission {
	dst, ok := wire.ForwardDst(pkt)
	if !ok {
		return nil
	}
	if dst == u.ifc.addr {
		return u.sc.emitAll(in, u.stack.HandleLocal(u.ifc.addr, pkt))
	}
	if !decrementHopLimit(pkt) {
		if !u.gate.allow() {
			return nil
		}
		if e := icmpError(in, u.ifc.addr, pkt, wire.ICMPTimeExceeded, wire.TimeExceedHopLimit); e != nil {
			return u.sc.emit(in, e)
		}
		u.gate.generated--
		return nil
	}
	if u.prefix.Contains(dst) {
		// Nonexistent address within the UE prefix.
		if !u.gate.allow() {
			return nil
		}
		if e := icmpError(in, u.ifc.addr, pkt, wire.ICMPDestUnreach, wire.UnreachAddress); e != nil {
			return u.sc.emit(in, e)
		}
		u.gate.generated--
		return nil
	}
	// A UE is not a transit router: anything else is dropped.
	return nil
}
