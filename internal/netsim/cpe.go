package netsim

import (
	"math/bits"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// LocalStack is the transport/application stack of a periphery device.
// The services package provides an implementation with DNS, HTTP, and the
// other periphery services; netsim itself ships an echo-only stack.
type LocalStack interface {
	// HandleLocal processes a packet addressed to self and returns any
	// reply packets (already fully marshalled, source = self).
	HandleLocal(self ipv6.Addr, pkt []byte) [][]byte
}

// EchoStack answers ICMPv6 echo requests and nothing else: a periphery
// with no exposed services.
type EchoStack struct{}

var _ LocalStack = EchoStack{}

// HandleLocal implements LocalStack.
func (EchoStack) HandleLocal(self ipv6.Addr, pkt []byte) [][]byte {
	s, err := wire.ParsePacket(pkt)
	if err != nil || s.ICMP == nil || s.ICMP.Type != wire.ICMPEchoRequest {
		return nil
	}
	e, err := wire.ParseEcho(s.ICMP.Body)
	if err != nil {
		return nil
	}
	reply, err := wire.BuildEchoReply(self, s.IP.Src, 64, e.ID, e.Seq, e.Data)
	if err != nil {
		return nil
	}
	return [][]byte{reply}
}

// CPEBehavior captures how a CPE's routing module handles addresses it
// has no specific route for — the implementation property the paper's
// Section VI measures.
type CPEBehavior struct {
	// VulnWAN: the CPE installs only a host route for its own WAN
	// address; other (nonexistent) addresses within the WAN /64 match
	// the default route and bounce back to the ISP — a routing loop.
	VulnWAN bool
	// VulnLAN: the CPE lacks the RFC 7084 unreachable route for the
	// delegated-but-unassigned LAN prefixes; packets to a Not-used
	// Prefix match the default route and bounce back — a routing loop.
	VulnLAN bool
	// LoopCap, when positive, bounds how many times the CPE forwards
	// packets of one looping destination before dropping (the partial
	// mitigation observed on Xiaomi/OpenWrt-family devices, which
	// forward such packets only >10 times rather than (255-n)/2).
	LoopCap int
}

// CPE is a customer-premises-edge router: WAN interface toward the ISP,
// a delegated LAN prefix, one or more in-use subnets, and optionally a
// set of LAN host addresses that answer pings.
type CPE struct {
	name      string
	wan       *Iface
	wanPrefix ipv6.Prefix // the point-to-point /64 containing the WAN address
	delegated ipv6.Prefix // LAN prefix delegated by the ISP (may be zero-width: none)
	subnets   []ipv6.Prefix
	lanAddr   ipv6.Addr // CPE's own address inside the first subnet
	hosts     map[ipv6.Addr]bool
	behavior  CPEBehavior
	stack     LocalStack
	gate      errorGate
	hasLAN    bool
	sc        emitScratch

	loopCount map[ipv6.Addr]int

	// CountForwarded tallies packets the CPE sent back out its WAN
	// interface in a loop; used for amplification accounting.
	CountForwarded uint64
}

var _ Node = (*CPE)(nil)

// CPEConfig assembles a CPE.
type CPEConfig struct {
	Name      string
	WANAddr   ipv6.Addr   // address on the WAN /64
	WANPrefix ipv6.Prefix // the WAN point-to-point /64
	Delegated ipv6.Prefix // LAN delegated prefix; leave zero for none
	Subnets   []ipv6.Prefix
	LANAddr   ipv6.Addr // CPE address within Subnets[0]; zero for none
	Hosts     []ipv6.Addr
	Behavior  CPEBehavior
	Stack     LocalStack // nil means EchoStack
	Policy    ErrorPolicy
}

// NewCPE builds a CPE node; its WAN interface is returned by WAN().
func NewCPE(cfg CPEConfig) *CPE {
	c := &CPE{
		name:      cfg.Name,
		wanPrefix: cfg.WANPrefix,
		delegated: cfg.Delegated,
		subnets:   cfg.Subnets,
		lanAddr:   cfg.LANAddr,
		behavior:  cfg.Behavior,
		stack:     cfg.Stack,
		gate:      errorGate{policy: cfg.Policy},
		hasLAN:    cfg.Delegated.Bits() > 0,
	}
	if c.stack == nil {
		c.stack = EchoStack{}
	}
	if len(cfg.Hosts) > 0 {
		c.hosts = make(map[ipv6.Addr]bool, len(cfg.Hosts))
		for _, h := range cfg.Hosts {
			c.hosts[h] = true
		}
	}
	c.wan = NewIface(c, cfg.WANAddr, cfg.Name+":wan")
	return c
}

// Name implements Node.
func (c *CPE) Name() string { return c.name }

// WAN returns the WAN interface to connect to the ISP router.
func (c *CPE) WAN() *Iface { return c.wan }

// WANAddr returns the CPE's WAN interface address.
func (c *CPE) WANAddr() ipv6.Addr { return c.wan.addr }

// Behavior returns the CPE's routing behavior (for ground-truth checks).
func (c *CPE) Behavior() CPEBehavior { return c.behavior }

// Delegated returns the delegated LAN prefix (zero Prefix if none).
func (c *CPE) Delegated() ipv6.Prefix { return c.delegated }

// Handle implements Node, realizing the routing table of the paper's
// Figure 4 — correct or flawed depending on Behavior.
func (c *CPE) Handle(in *Iface, pkt []byte) []Emission {
	dst, ok := wire.ForwardDst(pkt)
	if !ok {
		return nil
	}

	// Local delivery: WAN address, LAN interface address.
	if dst == c.wan.addr || (c.lanAddr != (ipv6.Addr{}) && dst == c.lanAddr) {
		return c.deliverLocal(in, dst, pkt)
	}
	// A LAN host the subscriber actually operates: answers pings.
	if c.hosts[dst] {
		return hostEcho(&c.sc, in, dst, pkt)
	}

	if !decrementHopLimit(pkt) {
		return c.emitError(in, pkt, wire.ICMPTimeExceeded, wire.TimeExceedHopLimit)
	}

	switch {
	case c.wanPrefix.Contains(dst):
		// Nonexistent address in the WAN point-to-point /64.
		if c.behavior.VulnWAN {
			return c.loopForward(in, dst, pkt)
		}
		// Correct: neighbor discovery fails; address unreachable.
		return c.emitError(in, pkt, wire.ICMPDestUnreach, wire.UnreachAddress)

	case c.inSubnet(dst):
		// In an operated subnet but no such host: NDP failure.
		return c.emitError(in, pkt, wire.ICMPDestUnreach, wire.UnreachAddress)

	case c.hasLAN && c.delegated.Contains(dst):
		// Delegated-but-unassigned space: the Not-used Prefix.
		if c.behavior.VulnLAN {
			return c.loopForward(in, dst, pkt)
		}
		// Correct per RFC 7084: a discard/unreachable route.
		return c.emitError(in, pkt, wire.ICMPDestUnreach, wire.UnreachNoRoute)

	default:
		// Default route: egress toward the ISP.
		c.CountForwarded++
		return c.sc.emit(c.wan, pkt)
	}
}

// CompileStep implements CompilableHop for the CPE's statically
// forwarding regions: the vulnerable loop behaviors (a flawed route
// sends the packet straight back out the WAN — the paper's routing
// loop) and the default route. Both are stateless single-decision
// forwards unless a LoopCap bounds the bounce with per-destination
// state, which stays interpreted.
func (c *CPE) CompileStep(in *Iface, dst ipv6.Addr) (CompiledStep, bool) {
	if dst == c.wan.addr || (c.lanAddr != (ipv6.Addr{}) && dst == c.lanAddr) || c.hosts[dst] {
		return CompiledStep{}, false
	}
	step := CompiledStep{Out: c.wan, Forwarded: &c.CountForwarded}
	loopOK := c.behavior.LoopCap == 0
	switch {
	case c.wanPrefix.Contains(dst):
		if !c.behavior.VulnWAN || !loopOK {
			return CompiledStep{}, false
		}
		if c.hasLAN && c.behavior.VulnLAN && c.delegated.Contains(dst) {
			// The WAN /64 sits inside the delegation and both flawed
			// routes bounce out the WAN identically: one region spans
			// the whole delegated prefix (minus operated subnets).
			step.Width = c.loopRegion(dst, &step.Holes, &step.NHole)
		} else {
			step.Width = prefixWidth(c.wanPrefix)
		}
	case c.inSubnet(dst):
		return CompiledStep{}, false // error terminal, not a forward
	case c.hasLAN && c.delegated.Contains(dst):
		if !c.behavior.VulnLAN || !loopOK {
			return CompiledStep{}, false
		}
		step.Width = c.loopRegion(dst, &step.Holes, &step.NHole)
	default:
		// Default route toward the ISP (e.g. a reply transiting the CPE
		// after an ISP-side hop-limit expiry): uniform up to the nearest
		// special prefix.
		step.Width = c.defaultRegion(dst, &step.Holes, &step.NHole)
	}
	if step.Width != 0 && !c.exclSpecials(step.Width, dst, &step.Excl, &step.NExcl) {
		step.Width = 0
	}
	if step.Width == 0 {
		step.NExcl, step.NHole = 0, 0
	}
	return step, true
}

// compileExpiry implements hopExpirer: any non-special destination
// whose hop limit dies here draws Time Exceeded sourced from the WAN
// address — how a looping probe ultimately exposes the flawed CPE.
// Expiry precedes all routing, so the decision is uniform over
// everything except the CPE's own addresses and operated hosts.
func (c *CPE) compileExpiry(in *Iface, dst ipv6.Addr) (compiledTerm, bool) {
	if dst == c.wan.addr || (c.lanAddr != (ipv6.Addr{}) && dst == c.lanAddr) || c.hosts[dst] {
		return compiledTerm{}, false
	}
	t := compiledTerm{
		typ: wire.ICMPTimeExceeded, code: wire.TimeExceedHopLimit,
		src: c.wan.addr, gate: &c.gate, width: 1,
	}
	if !c.exclSpecials(1, dst, &t.excl, &t.nExcl) {
		t.width = 0
		t.nExcl = 0
	}
	return t, true
}

// CompileTerminal implements terminalCompiler for the correct-behavior
// error regions of the paper's Figure 4 routing table: nonexistent WAN
// /64 addresses and operated-subnet addresses draw address-unreachable,
// the Not-used Prefix draws no-route. Vulnerable behaviors (VulnWAN,
// VulnLAN) loop with per-destination state and stay interpreted, as do
// local deliveries and the default route.
func (c *CPE) CompileTerminal(in *Iface, dst ipv6.Addr) (compiledTerm, bool) {
	if dst == c.wan.addr || (c.lanAddr != (ipv6.Addr{}) && dst == c.lanAddr) || c.hosts[dst] {
		return compiledTerm{}, false
	}
	t := compiledTerm{typ: wire.ICMPDestUnreach, src: c.wan.addr, gate: &c.gate}
	switch {
	case c.wanPrefix.Contains(dst):
		if c.behavior.VulnWAN {
			return compiledTerm{}, false
		}
		t.code = wire.UnreachAddress
		t.width = prefixWidth(c.wanPrefix)
	case c.inSubnet(dst):
		t.code = wire.UnreachAddress
		// The region is the containing subnet; the WAN prefix is holed
		// out if it reaches inside (its branch wins in Handle).
		for _, s := range c.subnets {
			if !s.Contains(dst) {
				continue
			}
			t.width = prefixWidth(s)
			if t.width != 0 && c.wanPrefix.Overlaps(s) {
				t.holes[0] = c.wanPrefix
				t.nHole = 1
			}
			break
		}
	case c.hasLAN && c.delegated.Contains(dst):
		if c.behavior.VulnLAN {
			return compiledTerm{}, false
		}
		t.code = wire.UnreachNoRoute
		// One region per delegation: the whole Not-used Prefix draws
		// the same error, with the operated subnets and the WAN /64
		// (different error code) carved out.
		t.width = c.loopRegion(dst, &t.holes, &t.nHole)
	default:
		return compiledTerm{}, false // default route: the CPE forwards, per-packet
	}
	if t.width != 0 && !c.exclSpecials(t.width, dst, &t.excl, &t.nExcl) {
		t.width = 0
	}
	if t.width == 0 {
		t.nExcl, t.nHole = 0, 0
	}
	return t, true
}

// loopRegion claims the whole delegated prefix as one region, holing
// out the operated subnets and — unless the flawed WAN route behaves
// identically — the WAN /64. Holing is conservative: a holed
// destination compiles its own narrower entry, so over-holing costs
// only reuse, never correctness. Returns 0 (exact) when the region is
// unexpressible or the holes overflow.
func (c *CPE) loopRegion(dst ipv6.Addr, holes *[fpHoleCap]ipv6.Prefix, nHole *uint8) uint8 {
	w := prefixWidth(c.delegated)
	if w == 0 {
		return 0
	}
	add := func(p ipv6.Prefix) bool {
		if p.Contains(dst) {
			// dst's own branch outranks the hole (Handle checks the
			// WAN prefix before subnets); holing it would shadow the
			// entry's own destination.
			return true
		}
		if int(*nHole) == fpHoleCap {
			return false
		}
		holes[*nHole] = p
		*nHole++
		return true
	}
	for _, s := range c.subnets {
		if !add(s) {
			return 0
		}
	}
	sameBehavior := c.behavior.VulnWAN && c.behavior.VulnLAN && c.behavior.LoopCap == 0
	if !sameBehavior && c.wanPrefix.Overlaps(c.delegated) && !add(c.wanPrefix) {
		return 0
	}
	return w
}

// defaultRegion claims the largest region around dst inside the CPE's
// default-route space: it stops at the first bit where dst diverges
// from each special prefix, and carves out special prefixes narrower
// than dst's /64.
func (c *CPE) defaultRegion(dst ipv6.Addr, holes *[fpHoleCap]ipv6.Prefix, nHole *uint8) uint8 {
	w := uint8(1)
	dh := dst.Uint128().Hi
	avoid := func(p ipv6.Prefix) bool {
		if p.Bits() == 0 {
			return true
		}
		cb := bits.LeadingZeros64(dh ^ p.Addr().Uint128().Hi)
		if cb >= 64 {
			// p lives inside dst's /64 (it cannot contain dst — dst is
			// in the default region): carve it out instead of
			// narrowing below /64.
			if int(*nHole) == fpHoleCap {
				return false
			}
			holes[*nHole] = p
			*nHole++
			return true
		}
		if uint8(cb+1) > w {
			w = uint8(cb + 1)
		}
		return true
	}
	if !avoid(c.wanPrefix) {
		return 0
	}
	if c.hasLAN && !avoid(c.delegated) {
		return 0
	}
	for _, s := range c.subnets {
		if !avoid(s) {
			return 0
		}
	}
	return w
}

// exclSpecials folds the CPE's own addresses and operated hosts that
// fall inside prefix(dst, width) into the exclusion list — lookups to
// them miss into the interpreter. ok=false on overflow.
func (c *CPE) exclSpecials(width uint8, dst ipv6.Addr, excl *[fpExclCap]ipv6.Addr, nExcl *uint8) bool {
	dh := dst.Uint128().Hi
	add := func(a ipv6.Addr) bool {
		if a == dst || (dh^a.Uint128().Hi)&fpMask(width) != 0 {
			return true // dst itself, or outside the region
		}
		if int(*nExcl) == fpExclCap {
			return false
		}
		excl[*nExcl] = a
		*nExcl++
		return true
	}
	if !add(c.wan.addr) {
		return false
	}
	if c.lanAddr != (ipv6.Addr{}) && !add(c.lanAddr) {
		return false
	}
	for h := range c.hosts {
		if !add(h) {
			return false
		}
	}
	return true
}

// loopForward sends the packet back out the WAN default route, applying
// any per-destination loop cap.
func (c *CPE) loopForward(in *Iface, dst ipv6.Addr, pkt []byte) []Emission {
	if limit := c.behavior.LoopCap; limit > 0 {
		if c.loopCount == nil {
			c.loopCount = make(map[ipv6.Addr]int)
		}
		if len(c.loopCount) > 4096 { // bound state like a real embedded table
			c.loopCount = make(map[ipv6.Addr]int)
		}
		c.loopCount[dst]++
		if c.loopCount[dst] > limit {
			return nil
		}
	}
	c.CountForwarded++
	return c.sc.emit(c.wan, pkt)
}

// inSubnet reports whether dst falls in an operated subnet.
func (c *CPE) inSubnet(dst ipv6.Addr) bool {
	for _, s := range c.subnets {
		if s.Contains(dst) {
			return true
		}
	}
	return false
}

// deliverLocal hands the packet to the device stack.
func (c *CPE) deliverLocal(in *Iface, self ipv6.Addr, pkt []byte) []Emission {
	return c.sc.emitAll(in, c.stack.HandleLocal(self, pkt))
}

func (c *CPE) emitError(in *Iface, invoking []byte, typ, code uint8) []Emission {
	if !c.gate.allow() {
		return nil
	}
	// RFC 4443 source selection: the error leaves the WAN interface, so
	// it carries the WAN address — this is what exposes the periphery.
	out := icmpError(in, c.wan.addr, invoking, typ, code)
	if out == nil {
		c.gate.generated--
		return nil
	}
	return c.sc.emit(in, out)
}

// hostEcho answers a ping to an existing LAN host on its behalf (the
// host is modelled inside the CPE rather than as a separate node).
func hostEcho(sc *emitScratch, in *Iface, self ipv6.Addr, pkt []byte) []Emission {
	var s wire.Summary
	if err := s.Parse(pkt); err != nil || s.ICMP == nil || s.ICMP.Type != wire.ICMPEchoRequest {
		return nil
	}
	e, err := wire.ParseEcho(s.ICMP.Body)
	if err != nil {
		return nil
	}
	reply, err := wire.BuildEchoReply(self, s.IP.Src, 64, e.ID, e.Seq, e.Data)
	if err != nil {
		return nil
	}
	return sc.emit(in, reply)
}

// UE is a user-equipment periphery (paper Figure 1b): a device holding a
// single /64 prefix on its radio interface. Nonexistent addresses inside
// the prefix draw an address-unreachable error from the UE itself.
type UE struct {
	name   string
	ifc    *Iface
	prefix ipv6.Prefix
	stack  LocalStack
	gate   errorGate
	sc     emitScratch
}

var _ Node = (*UE)(nil)

// NewUE builds a UE holding prefix, answering at addr.
func NewUE(name string, addr ipv6.Addr, prefix ipv6.Prefix, stack LocalStack, policy ErrorPolicy) *UE {
	u := &UE{name: name, prefix: prefix, stack: stack, gate: errorGate{policy: policy}}
	if u.stack == nil {
		u.stack = EchoStack{}
	}
	u.ifc = NewIface(u, addr, name+":radio")
	return u
}

// Name implements Node.
func (u *UE) Name() string { return u.name }

// Iface returns the radio interface to connect to the base station.
func (u *UE) Iface() *Iface { return u.ifc }

// Addr returns the UE's own address.
func (u *UE) Addr() ipv6.Addr { return u.ifc.addr }

// CompileTerminal implements terminalCompiler: a nonexistent address
// inside the UE's prefix draws address-unreachable from the UE itself
// (paper Figure 1b). The UE's own address is the only special case.
func (u *UE) CompileTerminal(in *Iface, dst ipv6.Addr) (compiledTerm, bool) {
	if dst == u.ifc.addr || !u.prefix.Contains(dst) {
		return compiledTerm{}, false
	}
	t := compiledTerm{
		typ: wire.ICMPDestUnreach, code: wire.UnreachAddress,
		src: u.ifc.addr, gate: &u.gate,
		width: prefixWidth(u.prefix),
	}
	if t.width != 0 {
		t.excl[0] = u.ifc.addr
		t.nExcl = 1
	}
	return t, true
}

// Handle implements Node.
func (u *UE) Handle(in *Iface, pkt []byte) []Emission {
	dst, ok := wire.ForwardDst(pkt)
	if !ok {
		return nil
	}
	if dst == u.ifc.addr {
		return u.sc.emitAll(in, u.stack.HandleLocal(u.ifc.addr, pkt))
	}
	if !decrementHopLimit(pkt) {
		if !u.gate.allow() {
			return nil
		}
		if e := icmpError(in, u.ifc.addr, pkt, wire.ICMPTimeExceeded, wire.TimeExceedHopLimit); e != nil {
			return u.sc.emit(in, e)
		}
		u.gate.generated--
		return nil
	}
	if u.prefix.Contains(dst) {
		// Nonexistent address within the UE prefix.
		if !u.gate.allow() {
			return nil
		}
		if e := icmpError(in, u.ifc.addr, pkt, wire.ICMPDestUnreach, wire.UnreachAddress); e != nil {
			return u.sc.emit(in, e)
		}
		u.gate.generated--
		return nil
	}
	// A UE is not a transit router: anything else is dropped.
	return nil
}
