package netsim

import (
	"encoding/binary"

	"repro/internal/wire"
)

// Flow tracing: an optional observer of sampled per-flow link
// crossings, the netsim half of the probe-lifecycle tracer. Every
// packet belongs to a flow identified by the *probed target* address —
// a forward probe by its destination, an ICMPv6 error by the
// destination of the quoted invoking packet, an echo reply by its
// source — so one target's entire round trip stitches into a single
// hop sequence however many packets realize it.
//
// The interpreted path records crossings from transmitLocked, right
// where the tap runs. The compiled fast path does NOT fall back to the
// interpreter when a tracer is attached: its plain (pure-arithmetic)
// replays synthesize the identical crossing sequence from the compiled
// entry — same (node, iface, hop-limit) triples, same order — and its
// non-plain replays route through transmitLocked anyway. The batched
// injection path (fpReplayRun) likewise synthesizes per traced probe
// during the strict-probe-order delivery pass. Parity between the two
// is pinned by simtest.RunFastPathOracle's trace leg.

// FlowTracer receives sampled flow crossings. Implementations decide
// sampling via SampleFlow — called per packet on the interpreted path
// and per replayed probe on the fast path, so it must be cheap and
// pure (same key, same answer) — and record crossings via HopCrossing.
// Both run with the engine lock held and must not call back into the
// engine.
type FlowTracer interface {
	// SampleFlow reports whether the flow keyed by (hi, lo) — the two
	// halves of the probed target address — is traced.
	SampleFlow(hi, lo uint64) bool
	// HopCrossing records one link crossing of a traced flow: the
	// transmitting node and interface, the hop limit on the wire, and
	// whether loss or a fault dropped the packet.
	HopCrossing(hi, lo uint64, node, iface string, hopLimit uint8, dropped bool)
}

// SetFlowTracer installs (or, with nil, removes) the flow-crossing
// observer. Unlike SetTap it does not perturb the compiled fast path:
// plain replays stay fused and synthesize their crossings.
func (e *Engine) SetFlowTracer(t FlowTracer) {
	e.mu.Lock()
	e.ftr = t
	e.mu.Unlock()
}

// flowTraceKey derives a packet's flow key: the probed target address
// as two big-endian 64-bit halves. ok=false for packets that cannot be
// attributed to a flow (non-IPv6, truncated); those are never traced,
// identically on both paths.
func flowTraceKey(pkt []byte) (hi, lo uint64, ok bool) {
	if len(pkt) < wire.HeaderLen+1 || pkt[0]>>4 != 6 {
		return 0, 0, false
	}
	if pkt[6] == wire.ProtoICMPv6 {
		switch t := pkt[wire.HeaderLen]; {
		case t < 128:
			// ICMPv6 error: the flow is the quoted invoking packet's
			// destination (IPv6 header at 48, dst at +24).
			const qdst = wire.HeaderLen + 8 + 24
			if len(pkt) < qdst+16 {
				return 0, 0, false
			}
			return binary.BigEndian.Uint64(pkt[qdst : qdst+8]),
				binary.BigEndian.Uint64(pkt[qdst+8 : qdst+16]), true
		case t == wire.ICMPEchoReply:
			// Echo reply: the flow is the responding target, the source.
			return binary.BigEndian.Uint64(pkt[8:16]),
				binary.BigEndian.Uint64(pkt[16:24]), true
		}
	}
	return binary.BigEndian.Uint64(pkt[24:32]),
		binary.BigEndian.Uint64(pkt[32:40]), true
}

// traceCrossingLocked is the interpreted path's recording point, called
// from transmitLocked after the drop decision.
func (e *Engine) traceCrossingLocked(from *Iface, pkt []byte, drop bool) {
	if hi, lo, ok := flowTraceKey(pkt); ok && e.ftr.SampleFlow(hi, lo) {
		e.ftr.HopCrossing(hi, lo, from.node.Name(), from.name, pkt[7], drop)
	}
}

// traceFlowStart latches the sampling decision for one fused replay, so
// the plain charging loops (including fpReplayReverse, which has no
// access to the probe) can synthesize crossings without re-keying.
func (e *Engine) traceFlowStart(pkt []byte) {
	e.trOn = false
	if e.ftr == nil {
		return
	}
	if hi, lo, ok := flowTraceKey(pkt); ok && e.ftr.SampleFlow(hi, lo) {
		e.trOn, e.trHi, e.trLo = true, hi, lo
	}
}

// traceSynthLocked records one synthesized crossing of the latched flow
// out of iface `out` at hop limit hl — what transmitLocked would have
// recorded had the replay run interpreted (plain replays never drop).
func (e *Engine) traceSynthLocked(out *Iface, hl uint8) {
	e.ftr.HopCrossing(e.trHi, e.trLo, out.node.Name(), out.name, hl, false)
}

// traceLoopCrossingsLocked synthesizes a loop entry's bounce crossings:
// crossing j leaves recorded hop i (prefix then cycle arithmetic, the
// same index fpReplayLoop's non-plain path walks) at hop limit hlIn-1-j.
func (e *Engine) traceLoopCrossingsLocked(h *flowHot, c *flowCold, hlIn uint8, cross int) {
	p, l := int(h.loopStart), int(h.loopLen)
	hl := hlIn
	for j := 0; j < cross; j++ {
		i := j
		if j >= p {
			i = p + (j-p)%l
		}
		hl--
		e.traceSynthLocked(c.fwd[i].out, hl)
	}
}

// traceRunStretch synthesizes, per traced probe of one batched-replay
// stretch, the crossings k sequential per-packet replays would have
// produced: the injection crossing out of `from`, the forward crossings
// (every probe reaches the terminal — the stretch pre-resolved), and
// the reply crossings for the first `granted` probes the error gate
// admitted. entryEdge stretches pass granted=0 (delivery, no reply).
func (e *Engine) traceRunStretch(from *Iface, h *flowHot, c *flowCold, pkts [][]byte, granted int) {
	for t, pkt := range pkts {
		hi, lo, ok := flowTraceKey(pkt)
		if !ok || !e.ftr.SampleFlow(hi, lo) {
			continue
		}
		e.ftr.HopCrossing(hi, lo, from.node.Name(), from.name, pkt[7], false)
		switch h.kind {
		case entryEdge, entryError:
			hl := pkt[7]
			for j := uint8(0); j < h.nf; j++ {
				hl--
				out := c.fwd[j].out
				e.ftr.HopCrossing(hi, lo, out.node.Name(), out.name, hl, false)
			}
		case entryLoop:
			cross := int(h.loopCross)
			p, l := int(h.loopStart), int(h.loopLen)
			hl := pkt[7]
			for j := 0; j < cross; j++ {
				i := j
				if j >= p {
					i = p + (j-p)%l
				}
				hl--
				out := c.fwd[i].out
				e.ftr.HopCrossing(hi, lo, out.node.Name(), out.name, hl, false)
			}
		}
		if t < granted {
			hl := uint8(wire.MaxHopLimit)
			for j := uint8(0); j < h.nr; j++ {
				if j > 0 {
					hl--
				}
				out := c.rev[j].out
				e.ftr.HopCrossing(hi, lo, out.node.Name(), out.name, hl, false)
			}
		}
	}
}
