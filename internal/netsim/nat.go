package netsim

import (
	"repro/internal/ipv6"
	"repro/internal/wire"
)

// The IPv4 side of the simulator exists for the paper's Section II
// contrast: the same home network behind a NAT'd IPv4 CPE versus
// globally addressed IPv6. The IPv4 nodes speak real IPv4/ICMPv4 wire
// format over the same Engine.

// V4Router forwards IPv4 packets by longest-prefix match over
// (address, masklen) pairs and answers pings to its own addresses.
type V4Router struct {
	name   string
	ifs    []*Iface
	local  map[wire.IPv4Addr]bool
	routes []v4Route
}

type v4Route struct {
	addr wire.IPv4Addr
	bits int
	out  *Iface
}

var _ Node = (*V4Router)(nil)

// NewV4Router creates an IPv4 router.
func NewV4Router(name string) *V4Router {
	return &V4Router{name: name, local: make(map[wire.IPv4Addr]bool)}
}

// Name implements Node.
func (r *V4Router) Name() string { return r.name }

// AddIface4 registers an interface. IPv4 nodes reuse Iface with a zero
// IPv6 address; the v4 address lives in the router's own table.
func (r *V4Router) AddIface4(addr wire.IPv4Addr, name string) *Iface {
	ifc := NewIface(r, addrOfV4(addr), name)
	r.ifs = append(r.ifs, ifc)
	r.local[addr] = true
	return ifc
}

// AddRoute4 installs a route.
func (r *V4Router) AddRoute4(addr wire.IPv4Addr, bits int, out *Iface) {
	r.routes = append(r.routes, v4Route{addr: maskV4(addr, bits), bits: bits, out: out})
}

func maskV4(a wire.IPv4Addr, bits int) wire.IPv4Addr {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return a
	}
	return a & wire.IPv4Addr(^uint32(0)<<(32-bits))
}

func (r *V4Router) lookup(dst wire.IPv4Addr) (*Iface, bool) {
	best := -1
	var out *Iface
	for _, rt := range r.routes {
		if maskV4(dst, rt.bits) == rt.addr && rt.bits > best {
			best, out = rt.bits, rt.out
		}
	}
	return out, best >= 0
}

// Handle implements Node: TTL processing, forwarding, ICMPv4 errors.
func (r *V4Router) Handle(in *Iface, pkt []byte) []Emission {
	h, _, err := wire.ParseIPv4(pkt)
	if err != nil {
		return nil
	}
	srcAddr := v4OfAddr(in.addr)
	if r.local[h.Dst] {
		return v4Echo(in, h.Dst, pkt)
	}
	if h.TTL <= 1 {
		if isICMP4Error(pkt) {
			return nil
		}
		e, err := wire.BuildICMP4Error(srcAddr, h.Src, wire.ICMP4TimeExceeded, 0, pkt)
		if err != nil {
			return nil
		}
		return []Emission{{Out: in, Pkt: e}}
	}
	decTTL(pkt)
	if out, ok := r.lookup(h.Dst); ok {
		return []Emission{{Out: out, Pkt: pkt}}
	}
	if isICMP4Error(pkt) {
		return nil
	}
	e, err := wire.BuildICMP4Error(srcAddr, h.Src, wire.ICMP4DestUnreach, wire.Unreach4Net, pkt)
	if err != nil {
		return nil
	}
	return []Emission{{Out: in, Pkt: e}}
}

// NATGateway is the IPv4 home router of the Section II contrast: one
// public address, private space behind it. Unsolicited inbound traffic
// to anything but the public address's ICMP echo is dropped — the
// "protection" NAT incidentally provides, which global IPv6 addressing
// removes.
type NATGateway struct {
	name   string
	wan    *Iface
	public wire.IPv4Addr
	// lanHosts are the private addresses inside (never reachable from
	// the WAN side; they exist so tests can assert the asymmetry).
	lanHosts map[wire.IPv4Addr]bool
}

var _ Node = (*NATGateway)(nil)

// NewNATGateway creates the gateway with its single public address.
func NewNATGateway(name string, public wire.IPv4Addr, lanHosts []wire.IPv4Addr) *NATGateway {
	g := &NATGateway{name: name, public: public, lanHosts: make(map[wire.IPv4Addr]bool)}
	for _, h := range lanHosts {
		g.lanHosts[h] = true
	}
	g.wan = NewIface(g, addrOfV4(public), name+":wan")
	return g
}

// Name implements Node.
func (g *NATGateway) Name() string { return g.name }

// WAN returns the interface toward the provider.
func (g *NATGateway) WAN() *Iface { return g.wan }

// Public returns the gateway's public address.
func (g *NATGateway) Public() wire.IPv4Addr { return g.public }

// Handle implements Node: answer pings to the public address; drop
// everything else arriving unsolicited (no port mappings exist).
func (g *NATGateway) Handle(in *Iface, pkt []byte) []Emission {
	h, _, err := wire.ParseIPv4(pkt)
	if err != nil {
		return nil
	}
	if h.Dst != g.public {
		// Private space is not routed to the gateway in the first
		// place; anything else is silently dropped, exactly like a
		// consumer NAT with no mappings.
		return nil
	}
	return v4Echo(in, g.public, pkt)
}

// v4Echo answers an ICMPv4 echo request to self.
func v4Echo(in *Iface, self wire.IPv4Addr, pkt []byte) []Emission {
	s, err := wire.ParsePacket4(pkt)
	if err != nil || s.ICMP == nil || s.ICMP.Type != wire.ICMP4EchoRequest {
		return nil
	}
	reply, err := wire.BuildEchoReply4(self, s.IP.Src, 64, s.EchoID, s.EchoSeq, nil)
	if err != nil {
		return nil
	}
	return []Emission{{Out: in, Pkt: reply}}
}

// isICMP4Error reports whether pkt is an ICMPv4 error message.
func isICMP4Error(pkt []byte) bool {
	if len(pkt) < wire.IPv4HeaderLen+1 || pkt[9] != 1 {
		return false
	}
	t := pkt[wire.IPv4HeaderLen]
	return t == wire.ICMP4DestUnreach || t == wire.ICMP4TimeExceeded
}

// decTTL decrements the TTL and fixes the header checksum incrementally
// (RFC 1624).
func decTTL(pkt []byte) {
	pkt[8]--
	// Recompute the header checksum from scratch: simplest and safe.
	pkt[10], pkt[11] = 0, 0
	ihl := int(pkt[0]&0xf) * 4
	c := headerChecksum(pkt[:ihl])
	pkt[10], pkt[11] = byte(c>>8), byte(c)
}

func headerChecksum(b []byte) uint16 {
	var sum uint64
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint64(b[i])<<8 | uint64(b[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// addrOfV4 embeds a v4 address in the Iface's v6 slot as a v4-mapped
// address (::ffff:a.b.c.d) purely for diagnostics.
func addrOfV4(a wire.IPv4Addr) ipv6.Addr { return ipv6.V4Mapped(uint32(a)) }

// v4OfAddr recovers the v4 address from a v4-mapped interface address.
func v4OfAddr(a ipv6.Addr) wire.IPv4Addr {
	v4, _ := a.AsV4()
	return wire.IPv4Addr(v4)
}
