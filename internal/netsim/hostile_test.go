package netsim

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ipv6"
	"repro/internal/uint128"
	"repro/internal/wire"
)

var (
	hostileScanner = ipv6.MustParseAddr("2001:beef::100")
	hostileRegion  = ipv6.MustParsePrefix("2001:db8:0:50::/60")
)

func hostileProbe(t *testing.T, dst ipv6.Addr, seq uint16) []byte {
	t.Helper()
	pkt, err := wire.BuildEchoRequest(hostileScanner, dst, 64, 0x4242, seq, []byte("probe"))
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func hostileTarget(t *testing.T, i uint64) ipv6.Addr {
	t.Helper()
	sub, err := hostileRegion.Sub(64, uint128.From64(i%16))
	if err != nil {
		t.Fatal(err)
	}
	return ipv6.SLAAC(sub, 0x1000+i)
}

func newTestHostile(mode HostileMode, storm int) *Hostile {
	return NewHostile(HostileConfig{
		Name: "h", Prefix: hostileRegion, Mode: mode, Seed: 7, StormFactor: storm,
	})
}

// TestHostileIgnoresOutOfRegionAndErrors: a hostile node only answers
// forwardable non-error packets inside its claimed region.
func TestHostileIgnoresOutOfRegionAndErrors(t *testing.T) {
	h := newTestHostile(HostileAliased, 0)
	outside := hostileProbe(t, ipv6.MustParseAddr("2001:db8::1"), 1)
	if ems := h.Handle(h.Iface(), outside); len(ems) != 0 {
		t.Errorf("replied to a probe outside the region: %d emissions", len(ems))
	}
	inside := hostileTarget(t, 0)
	errPkt := icmpError(nil, inside, hostileProbe(t, inside, 2), wire.ICMPDestUnreach, wire.UnreachNoRoute)
	if ems := h.Handle(h.Iface(), errPkt); len(ems) != 0 {
		t.Errorf("replied to an ICMPv6 error: %d emissions", len(ems))
	}
}

// TestHostileAliased: every probed address appears to answer itself with
// a validating echo reply.
func TestHostileAliased(t *testing.T) {
	h := newTestHostile(HostileAliased, 0)
	for i := uint64(0); i < 8; i++ {
		dst := hostileTarget(t, i)
		ems := h.Handle(h.Iface(), hostileProbe(t, dst, uint16(i)))
		if len(ems) != 1 {
			t.Fatalf("probe %d: %d emissions, want 1", i, len(ems))
		}
		var s wire.Summary
		if err := s.Parse(ems[0].Pkt); err != nil {
			t.Fatalf("probe %d: reply does not parse: %v", i, err)
		}
		if s.IP.Src != dst || s.IP.Dst != hostileScanner {
			t.Errorf("probe %d: reply %s->%s, want %s->%s", i, s.IP.Src, s.IP.Dst, dst, hostileScanner)
		}
		if s.ICMP == nil || s.ICMP.Type != wire.ICMPEchoReply {
			t.Errorf("probe %d: reply is not an echo reply", i)
		}
	}
	if h.CountReplies != 8 {
		t.Errorf("CountReplies = %d, want 8", h.CountReplies)
	}
}

// TestHostileSpoofer: replies are sourced from the reflector /64, never
// the probed target, and the error variant quotes the probe verbatim.
func TestHostileSpoofer(t *testing.T) {
	h := newTestHostile(HostileSpoofer, 0)
	reflector, err := hostileRegion.Sub(64, uint128.Zero)
	if err != nil {
		t.Fatal(err)
	}
	sawError := false
	for i := uint64(0); i < 32; i++ {
		dst := hostileTarget(t, i)
		probe := hostileProbe(t, dst, uint16(i))
		ems := h.Handle(h.Iface(), probe)
		if len(ems) != 1 {
			t.Fatalf("probe %d: %d emissions, want 1", i, len(ems))
		}
		var s wire.Summary
		if err := s.Parse(ems[0].Pkt); err != nil {
			t.Fatalf("probe %d: reply does not parse: %v", i, err)
		}
		if s.IP.Src == dst {
			t.Errorf("probe %d: spoofer answered as the probed target", i)
		}
		if !reflector.Contains(s.IP.Src) {
			t.Errorf("probe %d: source %s outside reflector pool %s", i, s.IP.Src, reflector)
		}
		if s.ICMP != nil && s.ICMP.Type < 128 {
			sawError = true
			inv, err := wire.ParseInvoking(s.ICMP.Body)
			if err != nil {
				t.Fatalf("probe %d: quoted packet does not parse: %v", i, err)
			}
			if inv.IP.Src != hostileScanner || inv.IP.Dst != dst {
				t.Errorf("probe %d: quote %s->%s, want the verbatim probe", i, inv.IP.Src, inv.IP.Dst)
			}
		}
	}
	if !sawError {
		t.Error("spoofer never produced an ICMPv6 error reply")
	}
}

// TestHostileMalformed: every reply is either unparseable (bad checksum,
// truncation) or a checksum-valid error quoting a forged inner source —
// nothing it emits may both parse and quote the scanner.
func TestHostileMalformed(t *testing.T) {
	h := newTestHostile(HostileMalformed, 0)
	sawBroken, sawForged := false, false
	for i := uint64(0); i < 32; i++ {
		dst := hostileTarget(t, i)
		ems := h.Handle(h.Iface(), hostileProbe(t, dst, uint16(i)))
		if len(ems) != 1 {
			t.Fatalf("probe %d: %d emissions, want 1", i, len(ems))
		}
		var s wire.Summary
		if err := s.Parse(ems[0].Pkt); err != nil {
			sawBroken = true
			continue
		}
		if s.ICMP == nil || s.ICMP.Type >= 128 {
			t.Fatalf("probe %d: parseable non-error reply from malformed responder", i)
		}
		inv, err := wire.ParseInvoking(s.ICMP.Body)
		if err != nil {
			t.Fatalf("probe %d: valid error with unparseable quote: %v", i, err)
		}
		if inv.IP.Src == hostileScanner {
			t.Fatalf("probe %d: forged-quote variant quoted the real scanner", i)
		}
		sawForged = true
	}
	if !sawBroken || !sawForged {
		t.Errorf("variant coverage incomplete: broken=%v forged=%v", sawBroken, sawForged)
	}
}

// TestHostileStorm: each probe draws StormFactor byte-identical valid
// replies in distinct buffers.
func TestHostileStorm(t *testing.T) {
	const k = 6
	h := newTestHostile(HostileStorm, k)
	dst := hostileTarget(t, 3)
	ems := h.Handle(h.Iface(), hostileProbe(t, dst, 9))
	if len(ems) != k {
		t.Fatalf("%d emissions, want %d", len(ems), k)
	}
	for i, e := range ems {
		if !bytes.Equal(e.Pkt, ems[0].Pkt) {
			t.Errorf("duplicate %d differs from the first reply", i)
		}
		if i > 0 && &e.Pkt[0] == &ems[0].Pkt[0] {
			t.Errorf("duplicate %d shares storage with the first reply", i)
		}
	}
	var s wire.Summary
	if err := s.Parse(ems[0].Pkt); err != nil {
		t.Fatalf("storm reply does not parse: %v", err)
	}
	if s.IP.Src != dst {
		t.Errorf("storm reply sourced from %s, want %s", s.IP.Src, dst)
	}
	if h.CountReplies != k {
		t.Errorf("CountReplies = %d, want %d", h.CountReplies, k)
	}
}

// TestHostileDeterminism: the RNG stream is positional — the same seed
// and probe sequence yields byte-identical replies, the property the
// compiled-vs-interpreted oracle rests on.
func TestHostileDeterminism(t *testing.T) {
	for _, mode := range []HostileMode{HostileAliased, HostileSpoofer, HostileMalformed, HostileStorm} {
		run := func() []string {
			h := newTestHostile(mode, 3)
			var out []string
			for i := uint64(0); i < 16; i++ {
				ems := h.Handle(h.Iface(), hostileProbe(t, hostileTarget(t, i), uint16(i)))
				for _, e := range ems {
					out = append(out, fmt.Sprintf("%x", e.Pkt))
				}
			}
			return out
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("%s: reply counts diverged: %d vs %d", mode, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: reply %d diverged across identical runs", mode, i)
			}
		}
	}
}
