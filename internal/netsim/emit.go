package netsim

import "repro/internal/wire"

// emitScratch is embedded in node types so Handle can return its
// (almost always single-element) Emission slice without allocating.
// Reuse is safe because the engine consumes the returned slice before
// the node's next Handle call, and every emitting node belongs to
// exactly one engine — the Edge, which attaches to several shards of an
// EngineGroup, never emits. The embedded Summary gives receive-side
// handlers a reusable decoder for the same reason (a stack Summary
// escapes: its layer-4 pointers alias its own storage).
type emitScratch struct {
	ems []Emission
	sum wire.Summary
}

// emit returns the reused slice holding a single emission.
func (s *emitScratch) emit(out *Iface, pkt []byte) []Emission {
	s.ems = append(s.ems[:0], Emission{Out: out, Pkt: pkt})
	return s.ems
}

// emitAll returns the reused slice sending every packet out the same
// interface.
func (s *emitScratch) emitAll(out *Iface, pkts [][]byte) []Emission {
	s.ems = s.ems[:0]
	for _, p := range pkts {
		s.ems = append(s.ems, Emission{Out: out, Pkt: p})
	}
	return s.ems
}
